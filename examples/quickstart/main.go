// Quickstart: a DeltaCFS client and cloud in one process.
//
// The program mounts an in-memory file system behind the DeltaCFS engine,
// performs a few file operations through it, lets the Sync Queue delay pass
// on the logical clock, and shows what reached the cloud and what it cost.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	deltacfs "repro"
)

func main() {
	// The cloud: a thin server that applies incremental updates.
	serverMeter := deltacfs.NewCPUMeter()
	srv := deltacfs.NewServer(serverMeter)

	// The client: DeltaCFS over an in-memory backing store, bound to the
	// server in-process.
	clientMeter := deltacfs.NewCPUMeter()
	traffic := &deltacfs.TrafficMeter{}
	clk := &deltacfs.Clock{}
	eng, err := deltacfs.NewEngine(deltacfs.Config{
		Backing:  deltacfs.NewMemFS(),
		Endpoint: deltacfs.NewLoopback(srv, clientMeter, traffic),
		Clock:    clk,
		Meter:    clientMeter,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Applications write through the engine: this is the FUSE position.
	fs := eng.FS()
	must(fs.Create("notes.txt"))
	must(fs.WriteAt("notes.txt", 0, []byte("DeltaCFS synchronizes incrementally.\n")))
	must(fs.WriteAt("notes.txt", 37, []byte("Only written bytes cross the wire.\n")))
	must(fs.Close("notes.txt"))

	// Nothing uploads until the Sync Queue delay (3 s) passes.
	fmt.Printf("before delay: cloud has %d files, %d B uploaded\n",
		len(srv.Files()), traffic.Uploaded())

	clk.Advance(5 * time.Second)
	eng.Tick(clk.Now())

	content, _ := srv.FileContent("notes.txt")
	fmt.Printf("after delay:  cloud has %q\n", content)
	fmt.Printf("traffic:      %d B uploaded for %d B of writes\n",
		traffic.Uploaded(), len(content))
	fmt.Printf("client CPU:   %d ticks; server CPU: %d ticks\n",
		clientMeter.Ticks(), serverMeter.Ticks())
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

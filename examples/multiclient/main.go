// Multi-client sharing: two devices syncing one cloud namespace (§III-D).
//
// Client A edits a shared file; the cloud applies the incremental data and
// forwards the same bytes to client B without recomputation. Then both
// clients edit concurrently: the first write wins, and the loser's update is
// preserved as a conflict file on the cloud (§III-C).
//
//	go run ./examples/multiclient
package main

import (
	"fmt"
	"log"
	"time"

	deltacfs "repro"
)

func main() {
	srv := deltacfs.NewServer(nil)
	clk := &deltacfs.Clock{}

	newClient := func(name string) (*deltacfs.Engine, *deltacfs.MemFS, *deltacfs.TrafficMeter) {
		backing := deltacfs.NewMemFS()
		traffic := &deltacfs.TrafficMeter{}
		eng, err := deltacfs.NewEngine(deltacfs.Config{
			Backing:  backing,
			Endpoint: deltacfs.NewLoopback(srv, nil, traffic),
			Clock:    clk,
		})
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		return eng, backing, traffic
	}
	a, _, _ := newClient("A")
	b, bFS, bTraffic := newClient("B")

	settle := func(engines ...*deltacfs.Engine) {
		clk.Advance(30 * time.Second)
		for _, e := range engines {
			e.Tick(clk.Now())
			if err := e.Drain(); err != nil {
				log.Fatal(err)
			}
		}
		// One more round so forwarded updates are polled.
		clk.Advance(30 * time.Second)
		for _, e := range engines {
			e.Tick(clk.Now())
		}
	}

	// A shares a 1 MB file.
	doc := make([]byte, 1<<20)
	for i := range doc {
		doc[i] = byte(i * 7)
	}
	must(a.FS().Create("shared.bin"))
	must(a.FS().WriteAt("shared.bin", 0, doc))
	must(a.FS().Close("shared.bin"))
	settle(a, b)

	got, err := bFS.ReadFile("shared.bin")
	fmt.Printf("B received shared.bin: %d bytes (err=%v)\n", len(got), err)

	// A makes a small edit; B receives only the increment.
	before := bTraffic.Downloaded()
	must(a.FS().WriteAt("shared.bin", 512<<10, []byte("edited by A")))
	must(a.FS().Close("shared.bin"))
	settle(a, b)
	fmt.Printf("B downloaded %d B for A's 11-byte edit (forwarded increment)\n",
		bTraffic.Downloaded()-before)

	// Concurrent edits: A wins the race, B's version becomes a conflict
	// file on the cloud.
	must(a.FS().WriteAt("shared.bin", 0, []byte("AAAA")))
	must(a.FS().Close("shared.bin"))
	must(b.FS().WriteAt("shared.bin", 0, []byte("BBBB")))
	must(b.FS().Close("shared.bin"))
	clk.Advance(30 * time.Second)
	a.Tick(clk.Now())
	must(a.Drain()) // A reaches the cloud first
	b.Tick(clk.Now())
	must(b.Drain()) // B's base version is stale now

	content, _ := srv.FileContent("shared.bin")
	fmt.Printf("cloud kept the first write: %q...\n", content[:4])
	for _, f := range srv.Files() {
		if len(f) > len("shared.bin") && f[:10] == "shared.bin" {
			fmt.Printf("conflict version preserved as %s\n", f)
		}
	}
	fmt.Printf("B records %d conflict(s)\n", b.Stats().Conflicts+b.Stats().RemoteConflicts)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

// Word editor: the transactional-update scenario from the paper's Fig 3.
//
// A 4 MB "document" is saved the way Microsoft Word saves: the old version
// is renamed aside, the full new content is written to a temp file, the temp
// file is renamed into place, and the old version is deleted. A naive sync
// client would ship the whole 4 MB every save; DeltaCFS's relation table
// identifies the pattern and delta-encodes against the preserved old
// version, so only the edit crosses the wire.
//
//	go run ./examples/wordeditor
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	deltacfs "repro"
)

const docSize = 4 << 20

func main() {
	srv := deltacfs.NewServer(nil)
	traffic := &deltacfs.TrafficMeter{}
	clk := &deltacfs.Clock{}
	backing := deltacfs.NewMemFS()
	eng, err := deltacfs.NewEngine(deltacfs.Config{
		Backing:  backing,
		Endpoint: deltacfs.NewLoopback(srv, nil, traffic),
		Clock:    clk,
	})
	if err != nil {
		log.Fatal(err)
	}
	fs := eng.FS()

	// Create and sync the initial document.
	rng := rand.New(rand.NewSource(1))
	doc := make([]byte, docSize)
	rng.Read(doc)
	must(fs.Create("report.docx"))
	must(fs.WriteAt("report.docx", 0, doc))
	must(fs.Close("report.docx"))
	settle(eng, clk)
	baseline := traffic.Uploaded()
	fmt.Printf("initial sync: %.2f MB uploaded (full document)\n",
		float64(baseline)/(1<<20))

	// Now "edit and save" five times, Word style.
	for save := 1; save <= 5; save++ {
		// The edit: 2 KB changed somewhere in the document.
		off := rng.Intn(docSize - 2048)
		rng.Read(doc[off : off+2048])

		tmpOld := fmt.Sprintf("~WRL%04d.tmp", save)
		tmpNew := fmt.Sprintf("~WRD%04d.tmp", save)
		before := traffic.Uploaded()

		must(fs.Rename("report.docx", tmpOld)) // 1: preserve old version
		must(fs.Create(tmpNew))                // 2: temp file
		must(fs.WriteAt(tmpNew, 0, doc))       // 3: full rewrite
		must(fs.Close(tmpNew))
		must(fs.Rename(tmpNew, "report.docx")) // 4: atomic replace (delta triggers here)
		must(fs.Unlink(tmpOld))                // 5: drop old version
		settle(eng, clk)

		fmt.Printf("save %d: rewrote %.2f MB, uploaded %6.1f KB (delta triggers so far: %d)\n",
			save, float64(docSize)/(1<<20),
			float64(traffic.Uploaded()-before)/1024,
			eng.Stats().DeltaTriggers)
	}

	// The cloud converged to the local content.
	local, _ := backing.ReadFile("report.docx")
	remote, _ := srv.FileContent("report.docx")
	fmt.Printf("cloud in sync: %v (%d bytes)\n", string(localHash(local)) == string(localHash(remote)), len(remote))
}

func settle(eng *deltacfs.Engine, clk *deltacfs.Clock) {
	clk.Advance(30 * time.Second)
	eng.Tick(clk.Now())
	if err := eng.Drain(); err != nil {
		log.Fatal(err)
	}
}

// localHash is a tiny content fingerprint for the equality print.
func localHash(p []byte) []byte {
	var h uint64 = 1469598103934665603
	for _, b := range p {
		h = (h ^ uint64(b)) * 1099511628211
	}
	out := make([]byte, 8)
	for i := range out {
		out[i] = byte(h >> (8 * i))
	}
	return out
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

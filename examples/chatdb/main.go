// Chat database: the SQLite in-place-update scenario from the paper's
// Fig 3 (the WeChat pattern).
//
// A 16 MB "chat history database" receives small row updates: each commit
// writes a rollback journal, updates a few pages of the database in place,
// and truncates the journal. Delta-sync clients re-scan the whole database
// per commit and ship at least a chunk per touched page; DeltaCFS intercepts
// the writes — they *are* the incremental data — and the truncated journal
// never reaches the wire at all.
//
//	go run ./examples/chatdb
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	deltacfs "repro"
)

const (
	dbSize   = 16 << 20
	pageSize = 4096
)

func main() {
	srv := deltacfs.NewServer(nil)
	traffic := &deltacfs.TrafficMeter{}
	meter := deltacfs.NewCPUMeter()
	clk := &deltacfs.Clock{}
	backing := deltacfs.NewMemFS()
	eng, err := deltacfs.NewEngine(deltacfs.Config{
		Backing:  backing,
		Endpoint: deltacfs.NewLoopback(srv, meter, traffic),
		Clock:    clk,
		Meter:    meter,
	})
	if err != nil {
		log.Fatal(err)
	}
	fs := eng.FS()

	// Build and sync the initial database.
	rng := rand.New(rand.NewSource(2))
	db := make([]byte, dbSize)
	rng.Read(db)
	must(fs.Create("chat.db"))
	must(fs.WriteAt("chat.db", 0, db))
	must(fs.Close("chat.db"))
	settle(eng, clk)
	traffic.Reset()
	meter.Reset()

	// Ten chat messages arrive: each is a SQLite-style commit.
	var updateBytes int64
	journal := make([]byte, 2*pageSize+512)
	row := make([]byte, 600)
	for msg := 0; msg < 10; msg++ {
		// 1-2: rollback journal (old page images).
		rng.Read(journal)
		must(fs.Create("chat.db-journal"))
		must(fs.WriteAt("chat.db-journal", 0, journal))

		// 3: the row lands inside an existing page, plus the header
		// counter changes.
		rng.Read(row)
		page := rng.Intn(dbSize / pageSize)
		off := int64(page)*pageSize + int64(rng.Intn(pageSize-len(row)))
		must(fs.WriteAt("chat.db", off, row))
		must(fs.WriteAt("chat.db", 24, []byte{byte(msg), 1, 2, 3}))
		updateBytes += int64(len(row)) + 4

		// 4: commit — the journal dies before it could ever upload.
		must(fs.Truncate("chat.db-journal", 0))

		clk.Advance(2 * time.Second)
		eng.Tick(clk.Now())
	}
	settle(eng, clk)

	fmt.Printf("10 commits: %d B of row updates\n", updateBytes)
	fmt.Printf("uploaded:   %d B (TUE %.2f — near 1 is optimal)\n",
		traffic.Uploaded(), float64(traffic.Uploaded())/float64(updateBytes))
	fmt.Printf("client CPU: %d ticks — no scanning, chunking or fingerprinting ran\n",
		meter.Ticks())
	st := eng.Stats()
	fmt.Printf("deltas:     %d triggered (none needed for in-place updates)\n", st.DeltaTriggers)

	local, _ := backing.ReadFile("chat.db")
	remote, _ := srv.FileContent("chat.db")
	same := len(local) == len(remote)
	for i := range local {
		if !same || local[i] != remote[i] {
			same = false
			break
		}
	}
	fmt.Printf("cloud in sync: %v\n", same)
}

func settle(eng *deltacfs.Engine, clk *deltacfs.Clock) {
	clk.Advance(30 * time.Second)
	eng.Tick(clk.Now())
	if err := eng.Drain(); err != nil {
		log.Fatal(err)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

package wire

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
)

// noSleep substitutes the backoff sleeper so retry tests run instantly.
func noSleep(time.Duration) {}

func testPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond,
		MaxDelay: 4 * time.Millisecond, Seed: 1, Sleep: noSleep}
}

func TestResilientBasicOps(t *testing.T) {
	backend := newFakeBackend()
	addr, stop := startServer(t, backend)
	defer stop()

	sm := &metrics.SyncMeter{}
	rc, err := DialResilient(context.Background(), addr, DialOpts{}, testPolicy(), sm)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	id, _ := rc.Register()
	if id == 0 {
		t.Fatal("no client id after DialResilient")
	}
	if _, err := rc.Push(&Batch{Nodes: []*Node{{Kind: NFull, Path: "f", Full: []byte("x")}}}); err != nil {
		t.Fatal(err)
	}
	fr, err := rc.Fetch("f")
	if err != nil || !fr.Exists {
		t.Fatalf("Fetch = %+v, %v", fr, err)
	}
	if _, _, err := rc.Head("f"); err != nil {
		t.Fatal(err)
	}
	if _, err := rc.FetchRange("f", 0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := rc.Poll(); err != nil {
		t.Fatal(err)
	}
	if sm.Retries() != 0 || sm.Reconnects() != 0 {
		t.Fatalf("healthy path metered retries=%d reconnects=%d", sm.Retries(), sm.Reconnects())
	}
}

func TestResilientSeqAssignment(t *testing.T) {
	backend := newFakeBackend()
	addr, stop := startServer(t, backend)
	defer stop()

	rc, err := DialResilient(context.Background(), addr, DialOpts{}, testPolicy(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	for i := 0; i < 3; i++ {
		b := &Batch{Nodes: []*Node{{Kind: NCreate, Path: "f"}}}
		if _, err := rc.Push(b); err != nil {
			t.Fatal(err)
		}
		if b.Seq != uint64(i+1) {
			t.Fatalf("push %d assigned Seq %d", i, b.Seq)
		}
	}
	// A sticky caller-assigned key is kept, and advances the counter.
	b := &Batch{Seq: 9, Nodes: []*Node{{Kind: NCreate, Path: "g"}}}
	if _, err := rc.Push(b); err != nil {
		t.Fatal(err)
	}
	if b.Seq != 9 {
		t.Fatalf("caller-assigned Seq rewritten to %d", b.Seq)
	}
	b2 := &Batch{Nodes: []*Node{{Kind: NCreate, Path: "h"}}}
	if _, err := rc.Push(b2); err != nil {
		t.Fatal(err)
	}
	if b2.Seq != 10 {
		t.Fatalf("counter did not advance past caller key: Seq=%d", b2.Seq)
	}
}

func TestResilientReconnectKeepsIdentity(t *testing.T) {
	backend := newFakeBackend()
	addr, stop := startServer(t, backend)
	defer stop()

	sm := &metrics.SyncMeter{}
	rc, err := DialResilient(context.Background(), addr, DialOpts{}, testPolicy(), sm)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	id0, _ := rc.Register()

	// Sever the live connection out from under the client.
	rc.mu.Lock()
	rc.cur.Close()
	rc.mu.Unlock()

	if _, err := rc.Push(&Batch{Nodes: []*Node{{Kind: NCreate, Path: "f"}}}); err != nil {
		t.Fatalf("push across reconnect: %v", err)
	}
	if id, _ := rc.Register(); id != id0 {
		t.Fatalf("identity changed across reconnect: %d -> %d", id0, id)
	}
	if sm.Reconnects() == 0 || sm.Retries() == 0 {
		t.Fatalf("reconnect not metered: %+v", sm.Snapshot())
	}
}

func TestResilientGivesUpAfterMaxAttempts(t *testing.T) {
	var sleeps []time.Duration
	var mu sync.Mutex
	p := testPolicy()
	p.Sleep = func(d time.Duration) {
		mu.Lock()
		sleeps = append(sleeps, d)
		mu.Unlock()
	}
	// Reserve a port and close it so dials fail fast.
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := lis.Addr().String()
	lis.Close()

	_, err = DialResilient(context.Background(), addr, DialOpts{}, p, nil)
	if err == nil {
		t.Fatal("DialResilient to a dead address succeeded")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(sleeps) != p.MaxAttempts-1 {
		t.Fatalf("slept %d times, want %d", len(sleeps), p.MaxAttempts-1)
	}
	for _, d := range sleeps {
		if d <= 0 {
			t.Fatalf("non-positive backoff %v", d)
		}
	}
}

func TestResilientContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := lis.Addr().String()
	lis.Close()
	if _, err := DialResilient(ctx, addr, DialOpts{}, testPolicy(), nil); err == nil {
		t.Fatal("cancelled DialResilient succeeded")
	}
}

// connTracker remembers the most recently accepted connection so a backend
// wrapper can sever it at a precise protocol point.
type connTracker struct {
	net.Listener
	mu   sync.Mutex
	last net.Conn
}

func (l *connTracker) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	l.last = c
	l.mu.Unlock()
	return c, nil
}

// killOnFirstPush applies the first pushed batch and then severs the
// client's connection before the reply can be written — a deterministic
// ambiguous failure (request applied, reply lost).
type killOnFirstPush struct {
	*fakeBackend
	tr   *connTracker
	once sync.Once
}

func (k *killOnFirstPush) PushEncoded(from uint32, eb *EncodedBatch) *PushReply {
	r := k.fakeBackend.PushEncoded(from, eb)
	k.once.Do(func() {
		k.tr.mu.Lock()
		if k.tr.last != nil {
			k.tr.last.Close()
		}
		k.tr.mu.Unlock()
	})
	return r
}

func TestResilientRetransmitsAmbiguousPushWithSameSeq(t *testing.T) {
	backend := newFakeBackend()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	tr := &connTracker{Listener: lis}
	go Serve(tr, &killOnFirstPush{fakeBackend: backend, tr: tr})
	defer lis.Close()

	sm := &metrics.SyncMeter{}
	rc, err := DialResilient(context.Background(), lis.Addr().String(), DialOpts{}, testPolicy(), sm)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	b := &Batch{Nodes: []*Node{{Kind: NFull, Path: "f", Full: []byte("x")}}}
	if _, err := rc.Push(b); err != nil {
		t.Fatalf("push through ambiguous failure: %v", err)
	}

	// The fake backend has no dedup, so it must have seen the batch twice —
	// both times under the same idempotency key.
	backend.mu.Lock()
	defer backend.mu.Unlock()
	if len(backend.pushed) != 2 {
		t.Fatalf("backend saw %d pushes, want 2 (original + retransmit)", len(backend.pushed))
	}
	if backend.pushed[0].Seq != b.Seq || backend.pushed[1].Seq != b.Seq || b.Seq == 0 {
		t.Fatalf("retransmit changed idempotency key: %d, %d",
			backend.pushed[0].Seq, backend.pushed[1].Seq)
	}
	if sm.Retries() == 0 || sm.Reconnects() == 0 {
		t.Fatalf("ambiguous retry not metered: %+v", sm.Snapshot())
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want ErrClass
	}{
		{&TransportError{Phase: "dial", Err: net.ErrClosed}, ClassRetryable},
		{&TransportError{Phase: "send", Err: net.ErrClosed}, ClassAmbiguous},
		{&TransportError{Phase: "recv", Err: net.ErrClosed}, ClassAmbiguous},
		{net.ErrClosed, ClassFatal},
		{nil, ClassFatal},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Fatalf("Classify(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

package wire

import (
	"testing"

	"repro/internal/rsync"
	"repro/internal/version"
)

func TestNodeKindString(t *testing.T) {
	cases := map[NodeKind]string{
		NCreate: "create", NWrite: "write", NDelta: "delta",
		NFull: "full", NCDC: "cdc", NodeKind(99): "node(?)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", k, got, want)
		}
	}
}

func TestNodePayloadBytes(t *testing.T) {
	n := &Node{
		Kind:    NWrite,
		Extents: []Extent{{Off: 0, Data: make([]byte, 100)}, {Off: 200, Data: make([]byte, 50)}},
	}
	if got := n.PayloadBytes(); got != 150 {
		t.Fatalf("write payload = %d, want 150", got)
	}

	full := &Node{Kind: NFull, Full: make([]byte, 999)}
	if got := full.PayloadBytes(); got != 999 {
		t.Fatalf("full payload = %d", got)
	}

	cdcNode := &Node{Kind: NCDC, Chunks: []ChunkRef{
		{Len: 100, Data: make([]byte, 100)}, // carried
		{Len: 100},                          // dedup reference
	}}
	// Each ref costs hash+len (24 B); only the carried chunk adds data.
	if got := cdcNode.PayloadBytes(); got != 24*2+100 {
		t.Fatalf("cdc payload = %d, want %d", got, 24*2+100)
	}

	d := &Node{Kind: NDelta, Delta: &rsync.Delta{
		Ops: []rsync.Op{{Kind: rsync.OpData, Data: make([]byte, 64)}},
	}}
	if d.PayloadBytes() < 64 {
		t.Fatalf("delta payload = %d, want >= 64", d.PayloadBytes())
	}
}

func TestNodeWireSizeOverride(t *testing.T) {
	n := &Node{Kind: NFull, Path: "f", Full: make([]byte, 1000)}
	plain := n.WireSize()
	if plain < 1000 {
		t.Fatalf("WireSize = %d, want >= payload", plain)
	}
	n.PayloadWire = 10 // compressed to 10 bytes
	if got := n.WireSize(); got >= plain || got < 10 {
		t.Fatalf("overridden WireSize = %d (plain %d)", got, plain)
	}
}

func TestBatchWireSizeSumsNodes(t *testing.T) {
	b := &Batch{Nodes: []*Node{
		{Kind: NCreate, Path: "a"},
		{Kind: NWrite, Path: "a", Extents: []Extent{{Data: make([]byte, 10)}}},
	}}
	want := int64(16) + b.Nodes[0].WireSize() + b.Nodes[1].WireSize()
	if got := b.WireSize(); got != want {
		t.Fatalf("batch WireSize = %d, want %d", got, want)
	}
}

func TestPushReplyWireSize(t *testing.T) {
	r := &PushReply{
		Statuses:  []ApplyStatus{StatusOK, StatusConflict},
		Conflicts: []string{"f.conflict-1-2"},
	}
	if r.WireSize() <= 16 {
		t.Fatalf("reply WireSize = %d", r.WireSize())
	}
}

func TestFetchReplyWireSize(t *testing.T) {
	r := &FetchReply{Content: make([]byte, 500), Ver: version.ID{Client: 1, Count: 2}, Exists: true}
	if got := r.WireSize(); got != 532 {
		t.Fatalf("fetch reply WireSize = %d, want 532", got)
	}
}

func TestSelfSignedTLSConfigsMatch(t *testing.T) {
	serverConf, clientConf, err := SelfSignedTLS()
	if err != nil {
		t.Fatal(err)
	}
	if len(serverConf.Certificates) != 1 {
		t.Fatal("server config missing certificate")
	}
	if clientConf.RootCAs == nil || clientConf.ServerName != "localhost" {
		t.Fatalf("client config incomplete: %+v", clientConf)
	}
}

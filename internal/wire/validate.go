package wire

import (
	"fmt"
	"path"
	"strings"
)

// Validation of wire-decoded values. Everything in a Batch arrives from the
// network and is attacker-controlled; the server validates at the Push
// boundary and clients validate forwarded batches before applying them, so
// interior code (apply paths, shard routing, backing stores) can trust path
// shape and value signs. deltavet's wiretaint analyzer enforces the
// discipline: wire-derived lengths, offsets and paths must pass an ordered
// bounds check or a Valid*-style call before they size an allocation, index
// a buffer, or reach the filesystem layer.

// Validation limits. Large enough that no legitimate engine ever hits them,
// small enough that a hostile peer cannot use a single decoded integer to
// exhaust server memory.
const (
	// MaxPathLen bounds any path carried on the wire (Linux PATH_MAX).
	MaxPathLen = 4096
	// MaxBatchNodes bounds the node count of one batch.
	MaxBatchNodes = 1 << 16
)

// ValidatePath rejects paths that could escape the sync root or smuggle
// separators into map keys shared with real filesystems: empty, overlong,
// absolute, unclean, NUL-bearing, or parent-traversing paths.
func ValidatePath(p string) error {
	switch {
	case p == "":
		return fmt.Errorf("wire: empty path")
	case len(p) > MaxPathLen:
		return fmt.Errorf("wire: path length %d exceeds %d", len(p), MaxPathLen)
	case strings.ContainsRune(p, 0):
		return fmt.Errorf("wire: path %q contains NUL", p)
	case strings.HasPrefix(p, "/"):
		return fmt.Errorf("wire: absolute path %q", p)
	case path.Clean(p) != p:
		return fmt.Errorf("wire: unclean path %q", p)
	case p == ".." || strings.HasPrefix(p, "../"):
		return fmt.Errorf("wire: path %q escapes the sync root", p)
	}
	return nil
}

// Validate checks every wire-decoded field of n: path shape, extent offsets,
// sizes, delta target length, and chunk lengths. It does not consult any
// store state — pure shape validation, callable at any trust boundary.
func (n *Node) Validate() error {
	if n.Kind < NCreate || n.Kind > NCDC {
		return fmt.Errorf("wire: unknown node kind %d", n.Kind)
	}
	if err := ValidatePath(n.Path); err != nil {
		return err
	}
	switch n.Kind {
	case NRename, NLink:
		if err := ValidatePath(n.Dst); err != nil {
			return fmt.Errorf("wire: %s destination: %w", n.Kind, err)
		}
	}
	if n.BasePath != "" {
		if err := ValidatePath(n.BasePath); err != nil {
			return fmt.Errorf("wire: delta base: %w", err)
		}
	}
	for i, e := range n.Extents {
		if e.Off < 0 {
			return fmt.Errorf("wire: %s extent %d: negative offset %d", n.Path, i, e.Off)
		}
	}
	if n.Size < 0 {
		return fmt.Errorf("wire: %s: negative size %d", n.Path, n.Size)
	}
	if n.Kind == NDelta {
		if n.Delta == nil {
			return fmt.Errorf("wire: %s: delta node without a delta", n.Path)
		}
		if n.Delta.TargetLen < 0 {
			return fmt.Errorf("wire: %s: negative delta target length %d", n.Path, n.Delta.TargetLen)
		}
	}
	for i, c := range n.Chunks {
		if c.Len < 0 {
			return fmt.Errorf("wire: %s chunk %d: negative length %d", n.Path, i, c.Len)
		}
		if c.Data != nil && int64(len(c.Data)) != c.Len {
			return fmt.Errorf("wire: %s chunk %d: carried %d bytes but claims %d", n.Path, i, len(c.Data), c.Len)
		}
	}
	return nil
}

// Validate checks a whole batch: a bounded node count and every node's
// shape. Receivers must reject an invalid batch before applying any part
// of it.
func (b *Batch) Validate() error {
	if len(b.Nodes) > MaxBatchNodes {
		return fmt.Errorf("wire: batch of %d nodes exceeds %d", len(b.Nodes), MaxBatchNodes)
	}
	for i, n := range b.Nodes {
		if n == nil {
			return fmt.Errorf("wire: batch node %d is nil", i)
		}
		if err := n.Validate(); err != nil {
			return fmt.Errorf("wire: batch node %d: %w", i, err)
		}
	}
	return nil
}

package wire

import (
	"bytes"
	"crypto/tls"
	"net"
	"sync"
	"testing"

	"repro/internal/metrics"
	"repro/internal/version"
)

// fakeBackend is a minimal in-memory Backend for transport tests.
type fakeBackend struct {
	mu      sync.Mutex
	nextID  uint32
	files   map[string][]byte
	vers    map[string]version.ID
	outbox  map[uint32][]*Batch
	groups  map[uint32]uint32
	pushed  []*Batch
	pushErr string
}

func newFakeBackend() *fakeBackend {
	return &fakeBackend{
		files:  make(map[string][]byte),
		vers:   make(map[string]version.ID),
		outbox: make(map[uint32][]*Batch),
		groups: make(map[uint32]uint32),
	}
}

func (f *fakeBackend) RegisterGroup(group uint32) uint32 {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.nextID++
	f.groups[f.nextID] = group
	return f.nextID
}

func (f *fakeBackend) Attach(client uint32) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if client > f.nextID {
		f.nextID = client
	}
}

func (f *fakeBackend) Push(from uint32, b *Batch) *PushReply {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.pushed = append(f.pushed, b)
	for _, n := range b.Nodes {
		if n.Kind == NFull {
			f.files[n.Path] = append([]byte(nil), n.Full...)
			f.vers[n.Path] = n.Ver
		}
	}
	return &PushReply{Statuses: make([]ApplyStatus, len(b.Nodes)), Err: f.pushErr}
}

func (f *fakeBackend) Fetch(path string) *FetchReply {
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.files[path]
	return &FetchReply{Content: c, Ver: f.vers[path], Exists: ok}
}

func (f *fakeBackend) Head(path string) (version.ID, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	_, ok := f.files[path]
	return f.vers[path], ok
}

func (f *fakeBackend) FetchRange(path string, off, n int64) ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	c := f.files[path]
	if off >= int64(len(c)) {
		return nil, nil
	}
	end := off + n
	if end > int64(len(c)) {
		end = int64(len(c))
	}
	return c[off:end], nil
}

func (f *fakeBackend) Poll(client uint32) []*Batch {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := f.outbox[client]
	f.outbox[client] = nil
	return out
}

// PushEncoded/PollEncoded adapt the legacy-shaped fake to the encoded
// Backend interface the transport dispatches into.
func (f *fakeBackend) PushEncoded(from uint32, eb *EncodedBatch) *PushReply {
	return f.Push(from, eb.Batch())
}

func (f *fakeBackend) PollEncoded(client uint32) []*EncodedBatch {
	bs := f.Poll(client)
	if bs == nil {
		return nil
	}
	out := make([]*EncodedBatch, len(bs))
	for i, b := range bs {
		out[i] = NewEncodedBatch(b)
	}
	return out
}

func startServer(t *testing.T, backend Backend) (addr string, stop func()) {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go Serve(lis, backend)
	return lis.Addr().String(), func() { lis.Close() }
}

func TestTransportAllOps(t *testing.T) {
	backend := newFakeBackend()
	addr, stop := startServer(t, backend)
	defer stop()

	meter := metrics.NewCPUMeter(metrics.PC)
	traffic := &metrics.TrafficMeter{}
	c, err := Dial(addr, nil, meter, traffic)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	id, err := c.Register()
	if err != nil || id == 0 {
		t.Fatalf("Register = %d, %v", id, err)
	}

	// Push a full-file node and read it back through every read op.
	content := []byte("transported content, long enough to range over")
	rep, err := c.Push(&Batch{Nodes: []*Node{{
		Kind: NFull, Path: "f", Full: content, Ver: version.ID{Client: id, Count: 1},
	}}})
	if err != nil || len(rep.Statuses) != 1 {
		t.Fatalf("Push = %+v, %v", rep, err)
	}

	fr, err := c.Fetch("f")
	if err != nil || !fr.Exists || !bytes.Equal(fr.Content, content) {
		t.Fatalf("Fetch = %+v, %v", fr, err)
	}
	if fr2, err := c.Fetch("missing"); err != nil || fr2.Exists {
		t.Fatalf("Fetch(missing) = %+v, %v", fr2, err)
	}

	v, exists, err := c.Head("f")
	if err != nil || !exists || v != (version.ID{Client: id, Count: 1}) {
		t.Fatalf("Head = %v, %v, %v", v, exists, err)
	}
	if _, exists, err := c.Head("missing"); err != nil || exists {
		t.Fatalf("Head(missing) exists=%v err=%v", exists, err)
	}

	part, err := c.FetchRange("f", 12, 7)
	if err != nil || !bytes.Equal(part, content[12:19]) {
		t.Fatalf("FetchRange = %q, %v", part, err)
	}

	batches, err := c.Poll()
	if err != nil || len(batches) != 0 {
		t.Fatalf("Poll = %v, %v", batches, err)
	}

	if traffic.Uploaded() == 0 || traffic.Downloaded() == 0 {
		t.Fatal("traffic meters uncharged")
	}
}

func TestTransportPollDeliversForwarded(t *testing.T) {
	backend := newFakeBackend()
	addr, stop := startServer(t, backend)
	defer stop()

	c, err := Dial(addr, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	id, _ := c.Register()

	backend.mu.Lock()
	backend.outbox[id] = []*Batch{{Client: 99, Nodes: []*Node{{Kind: NCreate, Path: "fwd"}}}}
	backend.mu.Unlock()

	batches, err := c.Poll()
	if err != nil || len(batches) != 1 || batches[0].Nodes[0].Path != "fwd" {
		t.Fatalf("Poll = %+v, %v", batches, err)
	}
	// Drained.
	batches, err = c.Poll()
	if err != nil || len(batches) != 0 {
		t.Fatalf("second Poll = %+v, %v", batches, err)
	}
}

func TestTransportConcurrentClients(t *testing.T) {
	backend := newFakeBackend()
	addr, stop := startServer(t, backend)
	defer stop()

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(addr, nil, nil, nil)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for j := 0; j < 20; j++ {
				if _, err := c.Push(&Batch{Nodes: []*Node{{Kind: NFull,
					Path: "f", Full: []byte{byte(i), byte(j)}}}}); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	backend.mu.Lock()
	defer backend.mu.Unlock()
	if len(backend.pushed) != 80 {
		t.Fatalf("backend saw %d pushes, want 80", len(backend.pushed))
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1", nil, nil, nil); err == nil {
		t.Fatal("Dial to a closed port succeeded")
	}
}

func TestTransportOverTLS(t *testing.T) {
	serverConf, clientConf, err := SelfSignedTLS()
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	backend := newFakeBackend()
	go Serve(tls.NewListener(lis, serverConf), backend)

	c, err := Dial(lis.Addr().String(), clientConf, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Fetch("x"); err != nil {
		t.Fatal(err)
	}
}

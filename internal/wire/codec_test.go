package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"math"
	"net"
	"reflect"
	"testing"

	"repro/internal/rsync"
	"repro/internal/version"
)

// exerciseBatch builds a batch touching every node kind and every payload
// shape the codec distinguishes: nil vs empty slices, extents, a delta with
// both op kinds, whole-file content, and CDC chunk refs.
func exerciseBatch() *Batch {
	return &Batch{
		Client: 7,
		Seq:    math.MaxUint64 - 3,
		Atomic: true,
		Nodes: []*Node{
			{Kind: NCreate, Path: "dir/a.txt", Ver: version.ID{Client: 7, Count: 1}},
			{Kind: NWrite, Path: "dir/a.txt", Size: 42,
				Base: version.ID{Client: 7, Count: 1},
				Ver:  version.ID{Client: 7, Count: 2},
				Extents: []Extent{
					{Off: 0, Data: []byte("hello")},
					{Off: 37, Data: []byte{0x00, 0xff}},
					{Off: 40, Data: []byte{}}, // empty, not nil
				}},
			{Kind: NTruncate, Path: "dir/a.txt", Size: 40,
				Base: version.ID{Client: 7, Count: 2},
				Ver:  version.ID{Client: 7, Count: 3}},
			{Kind: NRename, Path: "dir/a.txt", Dst: "dir/b.txt"},
			{Kind: NLink, Path: "dir/b.txt", Dst: "dir/hard"},
			{Kind: NUnlink, Path: "dir/hard"},
			{Kind: NMkdir, Path: "sub"},
			{Kind: NRmdir, Path: "sub"},
			{Kind: NDelta, Path: "dir/b.txt", BasePath: "dir/b.txt",
				Size: 1000, PayloadWire: 64,
				Base: version.ID{Client: 7, Count: 3},
				Ver:  version.ID{Client: 7, Count: 4},
				Delta: &rsync.Delta{
					BlockSize: 512, BaseLen: 900, TargetLen: 1000,
					Ops: []rsync.Op{
						{Kind: rsync.OpCopy, Off: 0, Len: 512},
						{Kind: rsync.OpData, Data: []byte("literal tail")},
					},
				}},
			{Kind: NFull, Path: "dir/full.bin", Size: 3,
				Ver:  version.ID{Client: 7, Count: 5},
				Full: []byte{1, 2, 3}},
			{Kind: NCDC, Path: "dir/cdc.bin", Size: 8,
				Ver: version.ID{Client: 7, Count: 6},
				Chunks: []ChunkRef{
					{Hash: [16]byte{0xaa, 0xbb}, Len: 4, Data: []byte("abcd")},
					{Hash: [16]byte{0x01}, Len: 4}, // ref without data
				}},
			{Kind: NWrite, Path: "nilfields"}, // everything nil/zero
		},
	}
}

func TestBatchPayloadRoundTrip(t *testing.T) {
	for _, alias := range []bool{false, true} {
		t.Run(fmt.Sprintf("alias=%v", alias), func(t *testing.T) {
			in := exerciseBatch()
			raw := AppendBatch(nil, in)
			out, err := DecodeBatchPayload(raw, alias)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(in, out) {
				t.Fatalf("round trip mismatch:\n in=%+v\nout=%+v", in, out)
			}
		})
	}
}

// The gob codec is the cross-version oracle: a batch that round-trips
// through gob must decode identically through the binary codec (and vice
// versa), since both codecs must mean the same thing on the wire.
func TestBatchGobOracle(t *testing.T) {
	in := exerciseBatch()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(in); err != nil {
		t.Fatal(err)
	}
	viaGob := &Batch{}
	if err := gob.NewDecoder(&buf).Decode(viaGob); err != nil {
		t.Fatal(err)
	}
	viaBinary, err := DecodeBatchPayload(AppendBatch(nil, in), false)
	if err != nil {
		t.Fatal(err)
	}
	// gob flattens empty slices to nil; the binary codec preserves the
	// distinction. Compare field-by-field on the lossless side: everything
	// gob kept must match what the binary codec kept.
	if viaBinary.Client != viaGob.Client || viaBinary.Seq != viaGob.Seq ||
		viaBinary.Atomic != viaGob.Atomic || len(viaBinary.Nodes) != len(viaGob.Nodes) {
		t.Fatalf("header mismatch: gob=%+v binary=%+v", viaGob, viaBinary)
	}
	for i := range viaGob.Nodes {
		g, b := viaGob.Nodes[i], viaBinary.Nodes[i]
		if g.Kind != b.Kind || g.Path != b.Path || g.Dst != b.Dst ||
			g.BasePath != b.BasePath || g.Size != b.Size ||
			g.Base != b.Base || g.Ver != b.Ver ||
			!bytes.Equal(g.Full, b.Full) {
			t.Fatalf("node %d mismatch:\n gob=%+v\n bin=%+v", i, g, b)
		}
	}
}

func TestNilVsEmptyRoundTrip(t *testing.T) {
	cases := []*Batch{
		{Nodes: nil},
		{Nodes: []*Node{}},
		{Nodes: []*Node{{Kind: NWrite, Extents: []Extent{}}}},
		{Nodes: []*Node{{Kind: NFull, Full: []byte{}}}},
		{Nodes: []*Node{{Kind: NFull, Full: nil}}},
		{Nodes: []*Node{{Kind: NDelta, Delta: &rsync.Delta{Ops: []rsync.Op{}}}}},
	}
	for i, in := range cases {
		out, err := DecodeBatchPayload(AppendBatch(nil, in), false)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !reflect.DeepEqual(in, out) {
			t.Fatalf("case %d: nil/empty not preserved:\n in=%#v\nout=%#v", i, in, out)
		}
	}
}

func TestRequestRoundTrip(t *testing.T) {
	cases := []request{
		{Op: "register", Group: 42},
		{Op: "attach", Client: 9},
		{Op: "push", B: exerciseBatch()},
		{Op: "fetch", Path: "some/file"},
		{Op: "head", Path: ""},
		{Op: "fetchrange", Path: "f", Off: 1 << 40, N: -1},
		{Op: "poll"},
	}
	for _, in := range cases {
		t.Run(in.Op, func(t *testing.T) {
			payload, err := appendRequest(nil, &in)
			if err != nil {
				t.Fatal(err)
			}
			var out request
			raw, err := decodeRequest(payload, &out)
			if err != nil {
				t.Fatal(err)
			}
			if in.Op == "push" {
				// The decoder hands back the batch's raw sub-slice for
				// retention; it must itself decode to the same batch.
				again, err := DecodeBatchPayload(raw, false)
				if err != nil || !reflect.DeepEqual(again, in.B) {
					t.Fatalf("retained raw does not re-decode: %v", err)
				}
			} else if raw != nil {
				t.Fatalf("non-push op returned batch raw")
			}
			if !reflect.DeepEqual(&in, &out) {
				t.Fatalf("mismatch:\n in=%+v\nout=%+v", in, out)
			}
		})
	}
}

func TestResponseRoundTrip(t *testing.T) {
	cases := []response{
		{Client: 3},
		{Err: "backend exploded"},
		{Push: &PushReply{
			Statuses:  []ApplyStatus{StatusOK, StatusConflict},
			Conflicts: []string{"a.conflict-1-2"},
			Throttled: true,
			Err:       "partial",
		}},
		{Fetch: &FetchReply{Content: []byte("body"), Ver: version.ID{Client: 1, Count: 9}, Exists: true}},
		{Fetch: &FetchReply{}}, // missing file: nil content, !Exists
		{Ver: version.ID{Client: 2, Count: 5}, Exists: true},
		{Data: []byte{0, 1, 2}},
		{Data: []byte{}},
		{Batches: []*Batch{exerciseBatch(), {Client: 1, Seq: 2}}},
	}
	for i, in := range cases {
		payload := appendResponse(nil, &in, nil)
		var out response
		if err := decodeResponse(payload, &out); err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !reflect.DeepEqual(&in, &out) {
			t.Fatalf("case %d mismatch:\n in=%+v\nout=%+v", i, in, out)
		}
	}
}

// A poll response spliced from pre-encoded batches must decode exactly like
// one encoded from the batch structs — the splice path is the server's
// single-encode fan-out, so the bytes must be indistinguishable.
func TestResponseSpliceMatchesStructEncode(t *testing.T) {
	b1, b2 := exerciseBatch(), &Batch{Client: 5, Seq: 1, Nodes: []*Node{{Kind: NCreate, Path: "x"}}}
	structPayload := appendResponse(nil, &response{Batches: []*Batch{b1, b2}}, nil)
	splicePayload := appendResponse(nil, &response{},
		[]*EncodedBatch{NewEncodedBatch(b1), NewEncodedBatch(b2)})
	if !bytes.Equal(structPayload, splicePayload) {
		t.Fatal("spliced poll payload differs from struct-encoded payload")
	}
}

// frameFor wraps a payload in a syntactically valid frame.
func frameFor(payload []byte) []byte {
	f := make([]byte, frameHeaderSize, frameHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(f[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(f[4:8], crc32.Checksum(payload, crcTable))
	return append(f, payload...)
}

func TestReadFrameRejectsHostileFrames(t *testing.T) {
	good := frameFor([]byte{msgRequest, opPoll})
	if _, err := readFrame(bytes.NewReader(good), nil); err != nil {
		t.Fatalf("good frame rejected: %v", err)
	}

	mut := func(f func(b []byte) []byte) []byte { return f(append([]byte(nil), good...)) }
	cases := map[string][]byte{
		"zero length": mut(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[:4], 0)
			return b
		}),
		"oversized length": mut(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[:4], MaxFrameSize+1)
			return b
		}),
		"huge length, tiny body": mut(func(b []byte) []byte {
			// Claims 256 MiB but carries 2 bytes: must fail as truncated,
			// not allocate-and-hang. (MaxFrameSize itself is legal.)
			binary.LittleEndian.PutUint32(b[:4], MaxFrameSize)
			return b
		}),
		"truncated header":  good[:frameHeaderSize-2],
		"truncated payload": good[:len(good)-1],
		"flipped payload bit": mut(func(b []byte) []byte {
			b[frameHeaderSize] ^= 0x80
			return b
		}),
		"flipped crc": mut(func(b []byte) []byte {
			b[5] ^= 1
			return b
		}),
	}
	for name, f := range cases {
		if _, err := readFrame(bytes.NewReader(f), nil); err == nil {
			t.Errorf("%s: hostile frame accepted", name)
		}
	}
}

func TestDecodeBatchRejectsHostilePayloads(t *testing.T) {
	good := AppendBatch(nil, exerciseBatch())
	mut := func(f func(b []byte) []byte) []byte { return f(append([]byte(nil), good...)) }
	cases := map[string][]byte{
		"empty":     {},
		"truncated": good[:len(good)/2],
		"trailing":  append(append([]byte(nil), good...), 0xde, 0xad),
		"hostile node count": mut(func(b []byte) []byte {
			// Node-count field sits after client(4)+seq(8)+flags(1)+presence(1).
			binary.LittleEndian.PutUint32(b[14:], math.MaxUint32)
			return b
		}),
		"hostile string length": mut(func(b []byte) []byte {
			// First node's Path length, after count(4)+kind(1).
			binary.LittleEndian.PutUint32(b[19:], math.MaxUint32)
			return b
		}),
	}
	for name, payload := range cases {
		if _, err := DecodeBatchPayload(payload, false); err == nil {
			t.Errorf("%s: hostile batch payload accepted", name)
		}
	}
	// A count that is plausible per-element but exceeds MaxBatchNodes must
	// also die: build a payload claiming MaxBatchNodes+1 minimal nodes.
	huge := appendU32(nil, 1)             // client
	huge = appendU64(huge, 1)             // seq
	huge = append(huge, 0)                // flags
	huge = append(huge, 1)                // nodes present
	huge = appendU32(huge, MaxBatchNodes+1)
	huge = append(huge, make([]byte, (MaxBatchNodes+1)*minNodeSize)...)
	if _, err := DecodeBatchPayload(huge, false); err == nil {
		t.Error("batch above MaxBatchNodes accepted")
	}
}

func TestDecodeResponseRejectsHostilePayloads(t *testing.T) {
	good := appendResponse(nil, &response{Batches: []*Batch{{Client: 1, Seq: 1}}}, nil)
	cases := map[string][]byte{
		"wrong kind": append([]byte{msgRequest}, good[1:]...),
		"truncated":  good[:len(good)-3],
		"trailing":   append(append([]byte(nil), good...), 1),
	}
	for name, payload := range cases {
		var resp response
		if err := decodeResponse(payload, &resp); err == nil {
			t.Errorf("%s: hostile response accepted", name)
		}
	}
}

func TestDecodeRequestRejectsHostilePayloads(t *testing.T) {
	cases := map[string][]byte{
		"empty":       {},
		"wrong kind":  {msgResponse, opPoll},
		"unknown op":  {msgRequest, 0xee},
		"trailing":    {msgRequest, opPoll, 0x00},
		"cut attach":  {msgRequest, opAttach, 1, 2},
		"push no batch": {msgRequest, opPush},
	}
	for name, payload := range cases {
		var req request
		if _, err := decodeRequest(payload, &req); err == nil {
			t.Errorf("%s: hostile request accepted", name)
		}
	}
}

// The interop matrix: every client codec against a current server and an
// old-style (gob-only) server. Auto must negotiate binary against a current
// server and fall back to gob against an old one.
func TestCodecInteropMatrix(t *testing.T) {
	servers := []struct {
		name string
		cfg  ServeConfig
	}{
		{"binary-server", ServeConfig{}},
		{"gob-server", ServeConfig{ForceGob: true}},
	}
	clients := []struct {
		codec Codec
		// negotiated codec expected against [current, forced-gob] servers;
		// "" means the dial must fail.
		want [2]string
	}{
		{CodecAuto, [2]string{"binary", "gob"}},
		{CodecBinary, [2]string{"binary", ""}},
		{CodecGob, [2]string{"gob", "gob"}},
	}
	for si, srv := range servers {
		for _, cl := range clients {
			t.Run(fmt.Sprintf("%s/client=%s", srv.name, orAuto(string(cl.codec))), func(t *testing.T) {
				backend := newFakeBackend()
				lis := mustListen(t)
				defer lis.Close()
				go ServeWith(lis, backend, srv.cfg)

				c, err := DialWith(lis.Addr().String(), DialOpts{Codec: cl.codec})
				if cl.want[si] == "" {
					if err == nil {
						c.Close()
						t.Fatal("dial succeeded; want codec rejection")
					}
					return
				}
				if err != nil {
					t.Fatal(err)
				}
				defer c.Close()
				if got := c.Codec(); got != cl.want[si] {
					t.Fatalf("negotiated %q, want %q", got, cl.want[si])
				}
				// A full push/fetch round proves the negotiated session
				// actually works, whatever the codec.
				id, err := c.Register()
				if err != nil {
					t.Fatal(err)
				}
				content := []byte("interop payload")
				if _, err := c.Push(&Batch{Nodes: []*Node{{
					Kind: NFull, Path: "f", Full: content,
					Ver: version.ID{Client: id, Count: 1},
				}}}); err != nil {
					t.Fatal(err)
				}
				fr, err := c.Fetch("f")
				if err != nil || !fr.Exists || !bytes.Equal(fr.Content, content) {
					t.Fatalf("Fetch = %+v, %v", fr, err)
				}
			})
		}
	}
}

func orAuto(s string) string {
	if s == "" {
		return "auto"
	}
	return s
}

func mustListen(t *testing.T) net.Listener {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return lis
}

// Package wire defines the client↔cloud sync protocol shared by DeltaCFS and
// every baseline engine: the transfer node/batch types, their size
// accounting, the endpoint interface engines program against, and a real
// TCP/TLS transport (transport.go). The paper's prototype encrypts all
// client/server messages with OpenSSL; this reproduction uses crypto/tls
// with an in-memory self-signed certificate.
package wire

import (
	"repro/internal/rsync"
	"repro/internal/version"
)

// NodeKind identifies the operation a transfer node carries.
type NodeKind uint8

// Transfer node kinds. The first block mirrors intercepted operations
// (NFS-like file RPC); Delta carries an rsync delta (DeltaCFS, Dropbox);
// Full carries whole-file content (Dropsync); CDC carries a content-defined
// chunk list with data for chunks the server lacks (Seafile).
const (
	NCreate NodeKind = iota + 1
	NWrite
	NTruncate
	NRename
	NLink
	NUnlink
	NMkdir
	NRmdir
	NDelta
	NFull
	NCDC
)

var nodeKindNames = [...]string{
	NCreate: "create", NWrite: "write", NTruncate: "truncate",
	NRename: "rename", NLink: "link", NUnlink: "unlink",
	NMkdir: "mkdir", NRmdir: "rmdir", NDelta: "delta", NFull: "full",
	NCDC: "cdc",
}

func (k NodeKind) String() string {
	if int(k) < len(nodeKindNames) && nodeKindNames[k] != "" {
		return nodeKindNames[k]
	}
	return "node(?)"
}

// Extent is a contiguous run of written bytes.
type Extent struct {
	Off  int64
	Data []byte
}

// ChunkRef references one content-defined chunk of a file. Data is nil when
// the server is expected to already hold the chunk (dedup hit).
type ChunkRef struct {
	Hash [16]byte
	Len  int64
	Data []byte
}

// Node is one operation shipped to the cloud.
type Node struct {
	Kind NodeKind
	Path string
	Dst  string // rename/link destination

	Extents []Extent     // NWrite
	Size    int64        // NTruncate
	Delta   *rsync.Delta // NDelta
	// BasePath names the file whose content (at application time, within
	// the same atomic batch) is the delta base. Empty means Path itself.
	BasePath string
	Full     []byte     // NFull
	Chunks   []ChunkRef // NCDC

	// Base and Ver are the file's version before and after this node.
	Base, Ver version.ID

	// PayloadWire, when positive, overrides the payload's contribution to
	// WireSize — set by engines that compress payloads before transfer
	// (Dropbox's network compression). The uncompressed payload still
	// travels in the struct so the server can apply it; only the size
	// accounting reflects compression.
	PayloadWire int64
}

// nodeHeaderSize approximates the fixed per-node framing cost: kind, sizes,
// two version IDs, offsets.
const nodeHeaderSize = 64

// ChunkStoreBudget bounds the bytes of content-addressed chunks the cloud
// retains for deduplication, evicted FIFO. Clients track which chunks the
// server holds with the same budget and the same insertion order, so a
// chunk a client references is always still resident. (Production services
// retain chunks indefinitely; a reproduction that replays hundreds of
// whole-file re-uploads needs the bound to stay within laptop memory.)
// It is a variable only so tests can exercise eviction cheaply; engines and
// servers must be created after any override.
var ChunkStoreBudget int64 = 512 << 20

// PayloadBytes returns the raw (uncompressed) payload size.
func (n *Node) PayloadBytes() int64 {
	var total int64
	for _, e := range n.Extents {
		total += int64(len(e.Data))
	}
	if n.Delta != nil {
		total += n.Delta.WireSize()
	}
	total += int64(len(n.Full))
	for _, c := range n.Chunks {
		total += 16 + 8 // hash + length reference
		total += int64(len(c.Data))
	}
	return total
}

// WireSize returns the node's serialized size for traffic accounting.
func (n *Node) WireSize() int64 {
	payload := n.PayloadBytes()
	if n.PayloadWire > 0 {
		payload = n.PayloadWire
	}
	return nodeHeaderSize + int64(len(n.Path)+len(n.Dst)+len(n.BasePath)) + payload
}

// Batch is the unit of upload. Atomic batches must be applied
// transactionally by the server (DeltaCFS backindex groups).
type Batch struct {
	Client uint32
	// Seq is the client-assigned idempotency key: together with Client it
	// identifies this batch across retransmissions. Clients assign Seq
	// monotonically in submission order and submit in order, so the server
	// may treat any Seq at or below the highest it has applied for the
	// client as a replay of an ambiguous push, answered from the reply
	// cache without re-applying. Zero means no idempotency tracking
	// (legacy senders, tests).
	Seq    uint64
	Atomic bool
	Nodes  []*Node
}

// WireSize returns the batch's serialized size.
func (b *Batch) WireSize() int64 {
	total := int64(16) // batch framing
	for _, n := range b.Nodes {
		total += n.WireSize()
	}
	return total
}

// ApplyStatus reports the outcome of one node's application.
type ApplyStatus uint8

// Node application outcomes.
const (
	StatusOK ApplyStatus = iota
	// StatusConflict: the node's base version did not match the server's
	// current version; first-write-wins kept the server version and the
	// node's content was materialized as a conflict file.
	StatusConflict
	// StatusError: the node could not be applied (and, in an atomic batch,
	// the whole batch was rolled back).
	StatusError
)

// PushReply acknowledges a batch.
type PushReply struct {
	Statuses []ApplyStatus
	// Conflicts lists the conflict-file paths created, parallel to the
	// StatusConflict entries.
	Conflicts []string
	// Throttled signals forwarding backpressure: when this batch was
	// forwarded, at least one sharing peer's outbox was at its depth bound
	// (forwarded batches were, or are about to be, evicted). The batch
	// itself was applied normally; pushers should slow down so slow
	// pollers can catch up instead of silently losing forwards.
	Throttled bool
	Err       string
}

// WireSize returns the reply's serialized size.
func (r *PushReply) WireSize() int64 {
	n := int64(16 + len(r.Statuses) + len(r.Err))
	for _, c := range r.Conflicts {
		n += int64(len(c)) + 8
	}
	return n
}

// FetchReply returns a file's content and version.
type FetchReply struct {
	Content []byte
	Ver     version.ID
	Exists  bool
}

// WireSize returns the reply's serialized size.
func (r *FetchReply) WireSize() int64 { return 32 + int64(len(r.Content)) }

// Endpoint is the cloud interface sync engines program against. Local
// (in-process) and network (TCP/TLS) implementations exist; both account
// traffic identically via the WireSize methods.
type Endpoint interface {
	// Register obtains this client's ID (used in version stamps).
	Register() (uint32, error)
	// Push uploads one batch.
	Push(b *Batch) (*PushReply, error)
	// Fetch downloads a whole file.
	Fetch(path string) (*FetchReply, error)
	// Head returns a file's current version and existence (metadata only).
	Head(path string) (version.ID, bool, error)
	// FetchRange downloads part of a file (NFS fetch-before-write,
	// DeltaCFS block recovery).
	FetchRange(path string, off, n int64) ([]byte, error)
	// Poll retrieves batches other clients pushed to shared files since
	// the last poll (cloud forwarding, §III-D).
	Poll() ([]*Batch, error)
	Close() error
}

package wire

// ResilientClient wraps the TCP/TLS transport with the retry discipline a
// production sync client needs: reconnection with a stable client identity,
// capped exponential backoff with jitter, error classification (retryable /
// ambiguous / fatal), and idempotency keys on every push so the server can
// absorb replays of ambiguous failures. Retransmitted bytes are charged to
// the traffic meter again on every attempt — retransmission policy dominates
// sync cost under loss, and hiding the cost would falsify the accounting.

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/version"
)

// RetryPolicy parameterizes a ResilientClient's retry loop.
type RetryPolicy struct {
	// MaxAttempts bounds tries per RPC, including the first (default 6).
	MaxAttempts int
	// BaseDelay is the first backoff (default 10ms); each retry doubles it
	// up to MaxDelay (default 1s).
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Jitter is the ± fraction applied to each backoff (default 0.5). The
	// jitter source is seeded by Seed, so a fixed seed replays the same
	// delays.
	Jitter float64
	Seed   int64
	// OpTimeout is the per-attempt connection deadline (default 10s).
	OpTimeout time.Duration
	// Sleep is the backoff sleeper (default time.Sleep; tests substitute).
	Sleep func(time.Duration)
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 6
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 10 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = time.Second
	}
	if p.Jitter <= 0 {
		p.Jitter = 0.5
	}
	if p.OpTimeout <= 0 {
		p.OpTimeout = 10 * time.Second
	}
	if p.Sleep == nil {
		p.Sleep = time.Sleep
	}
	return p
}

// ResilientClient is a reconnecting, retrying Endpoint over the network
// transport. Safe for concurrent use.
type ResilientClient struct {
	addr string
	opts DialOpts
	p    RetryPolicy
	sm   *metrics.SyncMeter
	ctx  context.Context

	mu      sync.Mutex
	cur     *NetClient
	id      uint32
	rng     *rand.Rand
	nextSeq uint64
}

// DialResilient eagerly connects (retrying per policy) and registers,
// returning a client whose identity survives reconnects. ctx cancellation
// aborts in-flight retry loops; sm may be nil.
func DialResilient(ctx context.Context, addr string, opts DialOpts, policy RetryPolicy, sm *metrics.SyncMeter) (*ResilientClient, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	policy = policy.withDefaults()
	opts.OpTimeout = policy.OpTimeout
	opts.AttachID = 0
	rc := &ResilientClient{
		addr: addr,
		opts: opts,
		p:    policy,
		sm:   sm,
		ctx:  ctx,
		rng:  rand.New(rand.NewSource(policy.Seed)),
	}
	// First connection registers; retries here are plain retryable (no
	// server-visible state until register succeeds).
	err := rc.withRetry(true, func(c *NetClient) error { return nil })
	if err != nil {
		return nil, err
	}
	return rc, nil
}

// backoff returns the jittered delay for the given 0-based retry index.
func (rc *ResilientClient) backoff(retry int) time.Duration {
	d := rc.p.BaseDelay << uint(retry)
	if d > rc.p.MaxDelay || d <= 0 {
		d = rc.p.MaxDelay
	}
	rc.mu.Lock()
	f := 1 + rc.p.Jitter*(2*rc.rng.Float64()-1)
	rc.mu.Unlock()
	return time.Duration(float64(d) * f)
}

// conn returns the live connection, dialing (and attaching, after the first
// registration) if necessary.
func (rc *ResilientClient) conn() (*NetClient, error) {
	rc.mu.Lock()
	if rc.cur != nil {
		c := rc.cur
		rc.mu.Unlock()
		return c, nil
	}
	opts := rc.opts
	opts.AttachID = rc.id
	rc.mu.Unlock()

	// Dial with the lock released: a slow or hung dial must not wedge
	// Close, backoff, or any other path that touches rc.mu.
	c, err := DialWith(rc.addr, opts)
	if err != nil {
		return nil, err
	}

	rc.mu.Lock()
	if rc.cur != nil {
		// A concurrent caller connected first; keep theirs, discard ours.
		cur := rc.cur
		rc.mu.Unlock()
		c.Close()
		return cur, nil
	}
	if rc.id == 0 {
		rc.id = c.id
	} else {
		rc.sm.Reconnect()
	}
	rc.cur = c
	rc.mu.Unlock()
	return c, nil
}

// dropConn discards c if it is still the current connection.
func (rc *ResilientClient) dropConn(c *NetClient) {
	rc.mu.Lock()
	if rc.cur == c {
		rc.cur = nil
	}
	rc.mu.Unlock()
	// Close with the lock released: tearing down a dead conn can block.
	c.Close()
}

// withRetry runs op against a live connection, retrying per policy.
// idempotent marks ops safe to retry after ambiguous failures (reads, and
// pushes carrying an idempotency key).
func (rc *ResilientClient) withRetry(idempotent bool, op func(*NetClient) error) error {
	var lastErr error
	for attempt := 0; attempt < rc.p.MaxAttempts; attempt++ {
		if err := rc.ctx.Err(); err != nil {
			return fmt.Errorf("wire: resilient: %w", err)
		}
		if attempt > 0 {
			rc.sm.Retry()
			rc.p.Sleep(rc.backoff(attempt - 1))
		}
		c, err := rc.conn()
		if err != nil {
			lastErr = err
			continue
		}
		err = op(c)
		if err == nil {
			return nil
		}
		lastErr = err
		switch Classify(err) {
		case ClassFatal:
			return err
		case ClassAmbiguous:
			rc.dropConn(c)
			if !idempotent {
				return fmt.Errorf("wire: ambiguous failure on non-idempotent request: %w", err)
			}
		case ClassRetryable:
			rc.dropConn(c)
		case ClassDegraded:
			// The server answered: it is up but read-only (storage
			// failure). Keep the connection — redialing cannot fix a
			// full or poisoned disk — and retry after backoff. If the
			// outage outlasts the attempt budget the typed error
			// surfaces and the engine buffers the batch for later.
		}
	}
	return fmt.Errorf("wire: giving up after %d attempts: %w", rc.p.MaxAttempts, lastErr)
}

// Register implements Endpoint.
func (rc *ResilientClient) Register() (uint32, error) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.id, nil
}

// Push implements Endpoint. Batches without a Seq get one assigned from the
// client's monotone counter, making every push idempotent and therefore
// safely retryable across ambiguous failures.
func (rc *ResilientClient) Push(b *Batch) (*PushReply, error) {
	rc.mu.Lock()
	if b.Seq == 0 {
		rc.nextSeq++
		b.Seq = rc.nextSeq
	} else if b.Seq > rc.nextSeq {
		// Caller-assigned keys move the counter forward so later
		// auto-assigned keys stay monotone.
		rc.nextSeq = b.Seq
	}
	rc.mu.Unlock()
	var reply *PushReply
	err := rc.withRetry(true, func(c *NetClient) error {
		r, err := c.Push(b)
		reply = r
		if err == nil {
			// A degraded refusal arrives as a completed exchange with a
			// marked app-level error: surface it as its typed error so
			// the retry loop (and the caller) can classify it.
			if derr := degradedReplyErr(r); derr != nil {
				return derr
			}
		}
		return err
	})
	return reply, err
}

// Fetch implements Endpoint.
func (rc *ResilientClient) Fetch(path string) (*FetchReply, error) {
	var reply *FetchReply
	err := rc.withRetry(true, func(c *NetClient) error {
		r, err := c.Fetch(path)
		reply = r
		return err
	})
	return reply, err
}

// Head implements Endpoint.
func (rc *ResilientClient) Head(path string) (version.ID, bool, error) {
	var v version.ID
	var ok bool
	err := rc.withRetry(true, func(c *NetClient) error {
		var err error
		v, ok, err = c.Head(path)
		return err
	})
	return v, ok, err
}

// FetchRange implements Endpoint.
func (rc *ResilientClient) FetchRange(path string, off, n int64) ([]byte, error) {
	var data []byte
	err := rc.withRetry(true, func(c *NetClient) error {
		var err error
		data, err = c.FetchRange(path, off, n)
		return err
	})
	return data, err
}

// Poll implements Endpoint.
func (rc *ResilientClient) Poll() ([]*Batch, error) {
	var batches []*Batch
	err := rc.withRetry(true, func(c *NetClient) error {
		var err error
		batches, err = c.Poll()
		return err
	})
	return batches, err
}

// Close implements Endpoint.
func (rc *ResilientClient) Close() error {
	rc.mu.Lock()
	c := rc.cur
	rc.cur = nil
	rc.mu.Unlock()
	if c != nil {
		return c.Close()
	}
	return nil
}

var _ Endpoint = (*ResilientClient)(nil)

package wire

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// The decoder is a trust boundary: whatever bytes arrive, it must either
// return a typed error or a value whose re-encode round-trips — never panic,
// never over-allocate past the frame, never accept trailing garbage.
//
// Seeds live in testdata/fuzz/<FuzzName>/ (the committed corpus); regenerate
// with WRITE_FUZZ_CORPUS=1 go test ./internal/wire -run TestWriteFuzzCorpus.

func FuzzDecodeBatchPayload(f *testing.F) {
	for _, seed := range fuzzSeedsBatch() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := DecodeBatchPayload(data, false)
		if err != nil {
			return
		}
		// Accepted input must re-encode to something that decodes to the
		// same batch (byte-identity can differ: unknown flag bits drop).
		raw := AppendBatch(nil, b)
		b2, err := DecodeBatchPayload(raw, true)
		if err != nil {
			t.Fatalf("re-decode of re-encoded batch failed: %v", err)
		}
		if !reflect.DeepEqual(b, b2) {
			t.Fatalf("encode/decode not stable:\n b=%+v\nb2=%+v", b, b2)
		}
	})
}

func FuzzDecodeRequest(f *testing.F) {
	for _, seed := range fuzzSeedsRequest() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var req request
		raw, err := decodeRequest(data, &req)
		if err != nil {
			return
		}
		if req.Op == "push" {
			// The retained raw sub-slice must itself be a valid payload for
			// the decoded batch — the server journals these exact bytes.
			b, err := DecodeBatchPayload(raw, true)
			if err != nil {
				t.Fatalf("retained push raw does not decode: %v", err)
			}
			if !reflect.DeepEqual(b, req.B) {
				t.Fatal("retained push raw decodes to a different batch")
			}
		}
		if payload, err := appendRequest(nil, &req); err == nil {
			var again request
			if _, err := decodeRequest(payload, &again); err != nil {
				t.Fatalf("re-decode of re-encoded request failed: %v", err)
			}
		}
	})
}

func FuzzDecodeResponse(f *testing.F) {
	for _, seed := range fuzzSeedsResponse() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var resp response
		if err := decodeResponse(data, &resp); err != nil {
			return
		}
		payload := appendResponse(nil, &resp, nil)
		var again response
		if err := decodeResponse(payload, &again); err != nil {
			t.Fatalf("re-decode of re-encoded response failed: %v", err)
		}
	})
}

func FuzzReadFrame(f *testing.F) {
	f.Add(frameFor([]byte{msgRequest, opPoll}))
	f.Add(frameFor(AppendBatch([]byte{msgRequest, opPush}, exerciseBatch())))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := readFrame(bytes.NewReader(data), nil)
		if err != nil {
			return
		}
		// An accepted frame's payload is exactly the bytes after the header.
		if !bytes.Equal(payload, data[frameHeaderSize:frameHeaderSize+len(payload)]) {
			t.Fatal("readFrame returned bytes that are not the frame payload")
		}
	})
}

// --- seed corpus ---

func fuzzSeedsBatch() [][]byte {
	good := AppendBatch(nil, exerciseBatch())
	hostileCount := append([]byte(nil), good...)
	hostileCount[14] = 0xff // node count low byte
	return [][]byte{
		good,
		AppendBatch(nil, &Batch{}),
		AppendBatch(nil, &Batch{Client: 1, Seq: 2, Nodes: []*Node{{Kind: NCreate, Path: "a"}}}),
		good[:len(good)/2],
		hostileCount,
		{},
	}
}

func fuzzSeedsRequest() [][]byte {
	out := [][]byte{{}, {msgRequest, opPush}}
	for _, req := range []request{
		{Op: "register", Group: 1},
		{Op: "attach", Client: 2},
		{Op: "push", B: exerciseBatch()},
		{Op: "fetch", Path: "p"},
		{Op: "head", Path: "p"},
		{Op: "fetchrange", Path: "p", Off: 1, N: 2},
		{Op: "poll"},
	} {
		payload, err := appendRequest(nil, &req)
		if err != nil {
			panic(err)
		}
		out = append(out, payload)
	}
	return out
}

func fuzzSeedsResponse() [][]byte {
	out := [][]byte{{}}
	for _, resp := range []response{
		{Client: 1},
		{Err: "boom"},
		{Push: &PushReply{Statuses: []ApplyStatus{StatusOK, StatusConflict}, Conflicts: []string{"c"}}},
		{Fetch: &FetchReply{Content: []byte("x"), Exists: true}},
		{Data: []byte{1, 2, 3}},
		{Batches: []*Batch{exerciseBatch()}},
	} {
		out = append(out, appendResponse(nil, &resp, nil))
	}
	return out
}

// TestWriteFuzzCorpus regenerates the committed corpus under testdata/fuzz
// in the "go test fuzz v1" format. Skipped unless WRITE_FUZZ_CORPUS=1.
func TestWriteFuzzCorpus(t *testing.T) {
	if os.Getenv("WRITE_FUZZ_CORPUS") != "1" {
		t.Skip("set WRITE_FUZZ_CORPUS=1 to regenerate the fuzz corpus")
	}
	write := func(fuzzName string, seeds [][]byte) {
		dir := filepath.Join("testdata", "fuzz", fuzzName)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for i, seed := range seeds {
			body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", seed)
			name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
			if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	write("FuzzDecodeBatchPayload", fuzzSeedsBatch())
	write("FuzzDecodeRequest", fuzzSeedsRequest())
	write("FuzzDecodeResponse", fuzzSeedsResponse())
	write("FuzzReadFrame", [][]byte{
		frameFor([]byte{msgRequest, opPoll}),
		frameFor(AppendBatch([]byte{msgRequest, opPush}, exerciseBatch())),
		{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0},
	})
}

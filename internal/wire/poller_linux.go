//go:build linux

package wire

import (
	"errors"
	"sync"
	"syscall"
)

// connPoller wraps one epoll descriptor. Registrations are keyed by a
// monotonically increasing token (carried in the epoll event's user data),
// not by file descriptor: a stale event for a closed-and-reused descriptor
// misses the token lookup and is ignored instead of waking the wrong
// connection.
//
// Events are level-triggered with EPOLLONESHOT: a connection fires at most
// once per arm, so exactly one worker owns it until serveReady re-arms via
// EPOLL_CTL_MOD — and level triggering means bytes that arrived between the
// drain check and the re-arm fire immediately.
type connPoller struct {
	epfd   int
	wakeR  int // pipe read end, registered as token 0, to interrupt wait()
	wakeW  int
	mu     sync.Mutex
	conns  map[uint32]*polledConn
	next   uint32
	closed bool
}

const pollerEvents = uint32(syscall.EPOLLIN) | uint32(syscall.EPOLLRDHUP) | uint32(syscall.EPOLLONESHOT)

func newConnPoller() (*connPoller, error) {
	epfd, err := syscall.EpollCreate1(syscall.EPOLL_CLOEXEC)
	if err != nil {
		return nil, err
	}
	var pipe [2]int
	if err := syscall.Pipe2(pipe[:], syscall.O_CLOEXEC|syscall.O_NONBLOCK); err != nil {
		syscall.Close(epfd)
		return nil, err
	}
	p := &connPoller{epfd: epfd, wakeR: pipe[0], wakeW: pipe[1], conns: make(map[uint32]*polledConn)}
	ev := syscall.EpollEvent{Events: uint32(syscall.EPOLLIN), Fd: 0}
	if err := syscall.EpollCtl(epfd, syscall.EPOLL_CTL_ADD, p.wakeR, &ev); err != nil {
		p.closeFDs()
		return nil, err
	}
	return p, nil
}

// add registers a connection (token 0 is reserved for the wake pipe).
func (p *connPoller) add(pc *polledConn) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return errors.New("wire: poller closed")
	}
	p.next++
	token := p.next
	pc.token = token
	p.conns[token] = pc
	p.mu.Unlock()
	ev := syscall.EpollEvent{Events: pollerEvents, Fd: int32(token)}
	if err := syscall.EpollCtl(p.epfd, syscall.EPOLL_CTL_ADD, int(pc.fd), &ev); err != nil {
		p.mu.Lock()
		delete(p.conns, token)
		p.mu.Unlock()
		return err
	}
	return nil
}

// rearm re-enables a one-shot registration after a worker drained the
// connection.
func (p *connPoller) rearm(pc *polledConn) error {
	ev := syscall.EpollEvent{Events: pollerEvents, Fd: int32(pc.token)}
	return syscall.EpollCtl(p.epfd, syscall.EPOLL_CTL_MOD, int(pc.fd), &ev)
}

// remove deregisters a connection. Call before closing the descriptor.
func (p *connPoller) remove(pc *polledConn) {
	p.mu.Lock()
	delete(p.conns, pc.token)
	p.mu.Unlock()
	syscall.EpollCtl(p.epfd, syscall.EPOLL_CTL_DEL, int(pc.fd), nil)
}

// snapshot returns the currently registered connections (idle sweeping).
func (p *connPoller) snapshot() []*polledConn {
	p.mu.Lock()
	out := make([]*polledConn, 0, len(p.conns))
	for _, pc := range p.conns {
		out = append(out, pc)
	}
	p.mu.Unlock()
	return out
}

// wait blocks for readiness events and resolves them to live connections.
// It returns an error once the poller is closed.
func (p *connPoller) wait() ([]*polledConn, error) {
	events := make([]syscall.EpollEvent, 128)
	for {
		n, err := syscall.EpollWait(p.epfd, events, -1)
		if err == syscall.EINTR {
			continue
		}
		if err != nil {
			return nil, err
		}
		var ready []*polledConn
		for i := 0; i < n; i++ {
			token := uint32(events[i].Fd)
			if token == 0 { // wake pipe: closing
				return nil, errors.New("wire: poller closed")
			}
			p.mu.Lock()
			pc := p.conns[token]
			p.mu.Unlock()
			if pc != nil {
				ready = append(ready, pc)
			}
		}
		if len(ready) > 0 {
			return ready, nil
		}
	}
}

// close wakes wait() and releases the poller's descriptors.
func (p *connPoller) close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	syscall.Write(p.wakeW, []byte{1}) // wake the dispatch loop; close(epfd) alone does not
	p.closeFDs()
}

func (p *connPoller) closeFDs() {
	syscall.Close(p.wakeW)
	// wakeR and epfd are closed after the wake byte is delivered; EpollWait
	// returns via the token-0 event, not via the close itself.
	syscall.Close(p.wakeR)
	syscall.Close(p.epfd)
}

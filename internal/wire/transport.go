package wire

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math/big"
	"net"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/version"
)

// Backend is the server-side application the network transport dispatches
// into (implemented by internal/server.Server). It mirrors Endpoint with an
// explicit client ID.
type Backend interface {
	// RegisterGroup assigns a new client ID in the given sharing group
	// (group 0 is the default everyone-shares namespace).
	RegisterGroup(group uint32) uint32
	// Attach re-binds a reconnecting transport to an already-registered
	// client ID, so reconnects keep version stamps and idempotency keys
	// stable instead of minting a fresh identity.
	Attach(client uint32)
	Push(from uint32, b *Batch) *PushReply
	Fetch(path string) *FetchReply
	Head(path string) (version.ID, bool)
	FetchRange(path string, off, n int64) ([]byte, error)
	Poll(client uint32) []*Batch
}

// request is the single on-the-wire request message.
type request struct {
	Op     string // "register", "attach", "push", "fetch", "head", "fetchrange", "poll"
	Client uint32 // attach: the ID to re-bind
	Group  uint32 // register: the sharing group to join
	B      *Batch
	Path   string
	Off    int64
	N      int64
}

// response is the single on-the-wire response message.
type response struct {
	Err     string
	Client  uint32
	Push    *PushReply
	Fetch   *FetchReply
	Ver     version.ID
	Exists  bool
	Data    []byte
	Batches []*Batch
}

// ServeConfig tunes per-connection robustness of Serve.
type ServeConfig struct {
	// WriteTimeout bounds each response write. Without it, a half-dead peer
	// that stops reading wedges its handler forever inside gob.Encode (the
	// kernel send buffer fills and the write never returns). It also bounds
	// each request read once the first byte has arrived, so a trickling
	// client cannot pin a pool worker. Default 30s; negative disables.
	WriteTimeout time.Duration
	// IdleTimeout bounds the wait for the next request on an established
	// connection. Zero means no idle bound (clients legitimately sit idle
	// between sync cycles).
	IdleTimeout time.Duration
	// Workers fixes the size of the shared worker pool that serves
	// multiplexed (readiness-polled) connections. 0 → defaultServeWorkers.
	Workers int
	// Stats, when non-nil, receives the transport's connection and request
	// counters (load harnesses read them to prove goroutine boundedness).
	Stats *ServeStats
}

// DefaultWriteTimeout is the response-write deadline Serve applies when the
// config leaves WriteTimeout zero.
const DefaultWriteTimeout = 30 * time.Second

// Serve accepts connections on lis and dispatches them into backend until
// lis is closed. Each connection serves one client sequentially, with the
// default ServeConfig.
func Serve(lis net.Listener, backend Backend) error {
	return ServeWith(lis, backend, ServeConfig{})
}

// ServeWith is Serve with an explicit configuration. Connections are served
// by a bounded worker/accept model (serve.go): plain TCP connections are
// multiplexed onto an OS readiness poller and a fixed worker pool, so ten
// thousand idle clients cost file descriptors — not ten thousand goroutine
// stacks; connections the poller cannot take (TLS and other wrapped
// net.Conns, platforms without a poller) fall back to a dedicated goroutine
// each. ServeWith returns when lis closes; connections already admitted
// keep being served until they close, after which the pool shuts down.
func ServeWith(lis net.Listener, backend Backend, cfg ServeConfig) error {
	if cfg.WriteTimeout == 0 {
		cfg.WriteTimeout = DefaultWriteTimeout
	}
	srv := newServeState(backend, cfg)
	defer srv.listenerClosed()
	for {
		conn, err := lis.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		srv.admit(conn)
	}
}

// serveConn runs one fallback connection's request loop on its own
// goroutine. It returns (closing the connection) on the first decode or
// response-write failure: a gob stream cannot resynchronize after a short
// write, so continuing would desynchronize every later exchange. The
// returned error reports why the connection ended (nil for a clean EOF).
func serveConn(conn net.Conn, backend Backend, cfg ServeConfig, stats *ServeStats) error {
	defer conn.Close()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	var client uint32
	for {
		if cfg.IdleTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(cfg.IdleTimeout))
		}
		if err := serveOne(conn, dec, enc, backend, cfg, stats, &client); err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return fmt.Errorf("wire: serve: %w", err)
		}
	}
}

// serveOne decodes and answers exactly one request — the dispatch shared by
// the fallback per-connection loop and the pool workers. A clean peer
// shutdown surfaces as io.EOF.
func serveOne(conn net.Conn, dec *gob.Decoder, enc *gob.Encoder, backend Backend, cfg ServeConfig, stats *ServeStats, client *uint32) error {
	var req request
	if err := dec.Decode(&req); err != nil {
		if errors.Is(err, io.EOF) {
			return io.EOF
		}
		return fmt.Errorf("read: %w", err)
	}
	if stats != nil {
		stats.requests.Add(1)
	}
	var resp response
	switch req.Op {
	case "register":
		*client = backend.RegisterGroup(req.Group)
		resp.Client = *client
	case "attach":
		*client = req.Client
		backend.Attach(*client)
		resp.Client = *client
	case "push":
		req.B.Client = *client
		resp.Push = backend.Push(*client, req.B)
	case "fetch":
		resp.Fetch = backend.Fetch(req.Path)
	case "head":
		resp.Ver, resp.Exists = backend.Head(req.Path)
	case "fetchrange":
		data, err := backend.FetchRange(req.Path, req.Off, req.N)
		if err != nil {
			resp.Err = err.Error()
		}
		resp.Data = data
	case "poll":
		resp.Batches = backend.Poll(*client)
	default:
		resp.Err = fmt.Sprintf("unknown op %q", req.Op)
	}
	if cfg.WriteTimeout > 0 {
		conn.SetWriteDeadline(time.Now().Add(cfg.WriteTimeout))
	}
	err := enc.Encode(&resp)
	if cfg.WriteTimeout > 0 {
		conn.SetWriteDeadline(time.Time{})
	}
	if err != nil {
		return fmt.Errorf("write: %w", err)
	}
	return nil
}

// TransportError tags a transport-level failure with the phase of the RPC
// exchange it interrupted, which determines how it may be retried (see
// Classify).
type TransportError struct {
	Phase string // "dial", "send" or "recv"
	Err   error
}

func (e *TransportError) Error() string { return fmt.Sprintf("wire: %s: %v", e.Phase, e.Err) }
func (e *TransportError) Unwrap() error { return e.Err }

// ErrClass classifies an RPC failure for retry purposes.
type ErrClass int

const (
	// ClassFatal errors came back from the application: the exchange
	// completed and retrying would repeat the same answer.
	ClassFatal ErrClass = iota
	// ClassRetryable errors happened before the request could have reached
	// the server (dial failures): retrying is always safe.
	ClassRetryable
	// ClassAmbiguous errors interrupted an exchange in flight (send or
	// receive): the server may or may not have processed the request, so
	// blind retry is only safe for idempotent requests — reads, and pushes
	// carrying an idempotency key the server dedups on.
	ClassAmbiguous
	// ClassDegraded errors are the server's read-only refusal (its
	// storage stack can no longer make writes durable). The exchange
	// completed and the batch was NOT applied; retry after backoff on the
	// same connection — reconnecting won't help, and giving up (fatal)
	// would be wrong because the condition is operator-recoverable.
	ClassDegraded
)

// Classify maps an error from a NetClient RPC onto its retry class.
func Classify(err error) ErrClass {
	if _, ok := AsDegraded(err); ok {
		return ClassDegraded
	}
	var te *TransportError
	if !errors.As(err, &te) {
		return ClassFatal
	}
	if te.Phase == "dial" {
		return ClassRetryable
	}
	// A failed send is still ambiguous: gob buffers, so bytes may have
	// reached the server before the failure surfaced here.
	return ClassAmbiguous
}

// NetClient is a TCP/TLS Endpoint. It is safe for concurrent use (requests
// are serialized on the single connection).
type NetClient struct {
	mu      sync.Mutex
	conn    net.Conn
	enc     *gob.Encoder
	dec     *gob.Decoder
	id      uint32
	timeout time.Duration
	broken  bool
	traffic *metrics.TrafficMeter
	meter   *metrics.CPUMeter
}

// DialOpts configures DialWith.
type DialOpts struct {
	// TLS may be nil for plaintext.
	TLS *tls.Config
	// Meter and Traffic account the client side; either may be nil.
	Meter   *metrics.CPUMeter
	Traffic *metrics.TrafficMeter
	// OpTimeout is the per-RPC deadline applied to the connection for each
	// round trip (send + receive). Zero means no deadline.
	OpTimeout time.Duration
	// AttachID, when nonzero, re-binds this connection to an existing
	// client ID instead of registering a new one — the reconnect path.
	AttachID uint32
	// Group is the sharing group to register into (0 = the default
	// everyone-shares group). Forwarding and conflict history are scoped to
	// the group, which is what lets one server host many isolated tenants.
	Group uint32
	// HardClose makes Close reset the connection (SO_LINGER 0) instead of
	// lingering in TIME_WAIT. Load harnesses churn tens of thousands of
	// loopback connections per run and would otherwise exhaust the local
	// port and TIME_WAIT tables, skewing back-to-back measurements.
	HardClose bool
}

// Dial connects to a Serve listener and registers a new client. tlsConf may
// be nil for plaintext. traffic and meter account the client side and may be
// nil.
func Dial(addr string, tlsConf *tls.Config, meter *metrics.CPUMeter, traffic *metrics.TrafficMeter) (*NetClient, error) {
	return DialWith(addr, DialOpts{TLS: tlsConf, Meter: meter, Traffic: traffic})
}

// DialWith connects to a Serve listener with explicit options. When
// OpTimeout is set it also bounds connection establishment — including the
// TLS handshake, which otherwise blocks forever if the peer (or a fault in
// between) swallows handshake bytes.
func DialWith(addr string, o DialOpts) (*NetClient, error) {
	conn, err := net.DialTimeout("tcp", addr, o.OpTimeout)
	if err != nil {
		return nil, &TransportError{Phase: "dial", Err: fmt.Errorf("%s: %w", addr, err)}
	}
	if o.HardClose {
		if tc, ok := conn.(*net.TCPConn); ok {
			tc.SetLinger(0)
		}
	}
	if o.TLS != nil {
		if o.OpTimeout > 0 {
			conn.SetDeadline(time.Now().Add(o.OpTimeout))
		}
		tc := tls.Client(conn, o.TLS)
		if err := tc.Handshake(); err != nil {
			conn.Close()
			return nil, &TransportError{Phase: "dial", Err: fmt.Errorf("%s: tls: %w", addr, err)}
		}
		conn.SetDeadline(time.Time{})
		conn = tc
	}
	c := &NetClient{
		conn:    conn,
		enc:     gob.NewEncoder(conn),
		dec:     gob.NewDecoder(conn),
		timeout: o.OpTimeout,
		traffic: o.Traffic,
		meter:   o.Meter,
	}
	req := request{Op: "register", Group: o.Group}
	if o.AttachID != 0 {
		req = request{Op: "attach", Client: o.AttachID}
	}
	resp, err := c.roundTrip(req, 0)
	if err != nil {
		conn.Close()
		// The identity exchange is part of connection establishment: a
		// failure here never leaves server-visible state behind, so report
		// it as a dial failure (always retryable).
		return nil, &TransportError{Phase: "dial", Err: err}
	}
	c.id = resp.Client
	return c, nil
}

// roundTrip sends req and waits for the response. wireBytes is the
// accounted request size (0 → requestSize).
func (c *NetClient) roundTrip(req request, wireBytes int64) (*response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.broken {
		return nil, &TransportError{Phase: "send", Err: errors.New("connection previously failed")}
	}
	if wireBytes == 0 {
		wireBytes = 64
	}
	c.meter.RPC(1)
	c.meter.Net(wireBytes)
	c.traffic.Upload(wireBytes)
	if c.timeout > 0 {
		c.conn.SetDeadline(time.Now().Add(c.timeout))
		defer c.conn.SetDeadline(time.Time{})
	}
	if err := c.enc.Encode(&req); err != nil {
		c.broken = true
		return nil, &TransportError{Phase: "send", Err: err}
	}
	var resp response
	if err := c.dec.Decode(&resp); err != nil {
		// A gob stream cannot resynchronize after a torn exchange; poison
		// the connection so later callers fail fast instead of misparsing.
		c.broken = true
		return nil, &TransportError{Phase: "recv", Err: err}
	}
	if resp.Err != "" {
		return nil, errors.New(resp.Err)
	}
	return &resp, nil
}

// Register implements Endpoint.
func (c *NetClient) Register() (uint32, error) { return c.id, nil }

// Push implements Endpoint.
func (c *NetClient) Push(b *Batch) (*PushReply, error) {
	b.Client = c.id
	resp, err := c.roundTrip(request{Op: "push", B: b}, b.WireSize())
	if err != nil {
		return nil, err
	}
	c.meter.Net(resp.Push.WireSize())
	c.traffic.Download(resp.Push.WireSize())
	return resp.Push, nil
}

// Fetch implements Endpoint.
func (c *NetClient) Fetch(path string) (*FetchReply, error) {
	resp, err := c.roundTrip(request{Op: "fetch", Path: path}, 0)
	if err != nil {
		return nil, err
	}
	c.meter.Net(resp.Fetch.WireSize())
	c.traffic.Download(resp.Fetch.WireSize())
	return resp.Fetch, nil
}

// Head implements Endpoint.
func (c *NetClient) Head(path string) (version.ID, bool, error) {
	resp, err := c.roundTrip(request{Op: "head", Path: path}, 0)
	if err != nil {
		return version.ID{}, false, err
	}
	c.meter.Net(32)
	c.traffic.Download(32)
	return resp.Ver, resp.Exists, nil
}

// FetchRange implements Endpoint.
func (c *NetClient) FetchRange(path string, off, n int64) ([]byte, error) {
	resp, err := c.roundTrip(request{Op: "fetchrange", Path: path, Off: off, N: n}, 0)
	if err != nil {
		return nil, err
	}
	c.meter.Net(int64(len(resp.Data)) + 32)
	c.traffic.Download(int64(len(resp.Data)) + 32)
	return resp.Data, nil
}

// Poll implements Endpoint.
func (c *NetClient) Poll() ([]*Batch, error) {
	resp, err := c.roundTrip(request{Op: "poll"}, 0)
	if err != nil {
		return nil, err
	}
	var size int64 = 16
	for _, b := range resp.Batches {
		size += b.WireSize()
	}
	c.meter.Net(size)
	c.traffic.Download(size)
	return resp.Batches, nil
}

// Close implements Endpoint.
func (c *NetClient) Close() error { return c.conn.Close() }

var _ Endpoint = (*NetClient)(nil)

// SelfSignedTLS generates an in-memory self-signed certificate and returns
// matching server and client TLS configurations — the stdlib stand-in for
// the paper's OpenSSL link encryption.
func SelfSignedTLS() (serverConf, clientConf *tls.Config, err error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, nil, err
	}
	tmpl := &x509.Certificate{
		SerialNumber: big.NewInt(1),
		Subject:      pkix.Name{CommonName: "deltacfs"},
		NotBefore:    time.Now().Add(-time.Hour),
		NotAfter:     time.Now().Add(24 * time.Hour),
		KeyUsage:     x509.KeyUsageDigitalSignature | x509.KeyUsageCertSign,
		ExtKeyUsage:  []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
		IsCA:         true,
		DNSNames:     []string{"localhost"},
		IPAddresses:  []net.IP{net.IPv4(127, 0, 0, 1), net.IPv6loopback},
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, &key.PublicKey, key)
	if err != nil {
		return nil, nil, err
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, nil, err
	}
	pool := x509.NewCertPool()
	pool.AddCert(cert)
	serverConf = &tls.Config{
		Certificates: []tls.Certificate{{Certificate: [][]byte{der}, PrivateKey: key}},
		MinVersion:   tls.VersionTLS12,
	}
	clientConf = &tls.Config{RootCAs: pool, ServerName: "localhost", MinVersion: tls.VersionTLS12}
	return serverConf, clientConf, nil
}

package wire

import (
	"bufio"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math/big"
	"net"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/version"
)

// Backend is the server-side application the network transport dispatches
// into (implemented by internal/server.Server). It mirrors Endpoint with an
// explicit client ID. Push and Poll traffic in EncodedBatch so the encoded
// wire payload travels with the batch: a push decoded from the binary
// transport reaches the journal and the forwarding outboxes with its frame
// bytes attached (zero re-encodes), and a poll response splices those same
// bytes back out once per peer.
type Backend interface {
	// RegisterGroup assigns a new client ID in the given sharing group
	// (group 0 is the default everyone-shares namespace).
	RegisterGroup(group uint32) uint32
	// Attach re-binds a reconnecting transport to an already-registered
	// client ID, so reconnects keep version stamps and idempotency keys
	// stable instead of minting a fresh identity.
	Attach(client uint32)
	PushEncoded(from uint32, eb *EncodedBatch) *PushReply
	Fetch(path string) *FetchReply
	Head(path string) (version.ID, bool)
	FetchRange(path string, off, n int64) ([]byte, error)
	PollEncoded(client uint32) []*EncodedBatch
}

// Codec names a wire codec for DialOpts.
type Codec string

// Wire codecs. The zero value negotiates: binary first, falling back to gob
// when the server does not speak the binary preamble (an old peer).
const (
	CodecAuto   Codec = ""
	CodecBinary Codec = "binary"
	CodecGob    Codec = "gob"
)

// request is the single on-the-wire request message.
type request struct {
	Op     string // "register", "attach", "push", "fetch", "head", "fetchrange", "poll"
	Client uint32 // attach: the ID to re-bind
	Group  uint32 // register: the sharing group to join
	B      *Batch
	Path   string
	Off    int64
	N      int64
}

// response is the single on-the-wire response message.
type response struct {
	Err     string
	Client  uint32
	Push    *PushReply
	Fetch   *FetchReply
	Ver     version.ID
	Exists  bool
	Data    []byte
	Batches []*Batch
}

// ServeConfig tunes per-connection robustness of Serve.
type ServeConfig struct {
	// WriteTimeout bounds each response write. Without it, a half-dead peer
	// that stops reading wedges its handler forever inside gob.Encode (the
	// kernel send buffer fills and the write never returns). It also bounds
	// each request read once the first byte has arrived, so a trickling
	// client cannot pin a pool worker. Default 30s; negative disables.
	WriteTimeout time.Duration
	// IdleTimeout bounds the wait for the next request on an established
	// connection. Zero means no idle bound (clients legitimately sit idle
	// between sync cycles).
	IdleTimeout time.Duration
	// Workers fixes the size of the shared worker pool that serves
	// multiplexed (readiness-polled) connections. 0 → defaultServeWorkers.
	Workers int
	// Stats, when non-nil, receives the transport's connection and request
	// counters (load harnesses read them to prove goroutine boundedness).
	Stats *ServeStats
	// ForceGob disables binary-codec negotiation: every connection is served
	// as a gob stream, exactly like a server from before the binary codec
	// existed. Interop tests use it as the old-server stand-in; operationally
	// it is the escape hatch if a codec bug ships.
	ForceGob bool
}

// DefaultWriteTimeout is the response-write deadline Serve applies when the
// config leaves WriteTimeout zero.
const DefaultWriteTimeout = 30 * time.Second

// Serve accepts connections on lis and dispatches them into backend until
// lis is closed. Each connection serves one client sequentially, with the
// default ServeConfig.
func Serve(lis net.Listener, backend Backend) error {
	return ServeWith(lis, backend, ServeConfig{})
}

// ServeWith is Serve with an explicit configuration. Connections are served
// by a bounded worker/accept model (serve.go): plain TCP connections are
// multiplexed onto an OS readiness poller and a fixed worker pool, so ten
// thousand idle clients cost file descriptors — not ten thousand goroutine
// stacks; connections the poller cannot take (TLS and other wrapped
// net.Conns, platforms without a poller) fall back to a dedicated goroutine
// each. ServeWith returns when lis closes; connections already admitted
// keep being served until they close, after which the pool shuts down.
func ServeWith(lis net.Listener, backend Backend, cfg ServeConfig) error {
	if cfg.WriteTimeout == 0 {
		cfg.WriteTimeout = DefaultWriteTimeout
	}
	srv := newServeState(backend, cfg)
	defer srv.listenerClosed()
	for {
		conn, err := lis.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		srv.admit(conn)
	}
}

// serveConn runs one fallback connection's request loop on its own
// goroutine. It returns (closing the connection) on the first decode or
// response-write failure: neither stream can resynchronize after a short
// write (gob has no framing; a binary peer's frame boundary is lost), so
// continuing would desynchronize every later exchange. The returned error
// reports why the connection ended (nil for a clean EOF).
func serveConn(conn net.Conn, backend Backend, cfg ServeConfig, stats *ServeStats) error {
	defer conn.Close()
	cc := newConnCodec(conn, bufio.NewReader(conn), cfg.ForceGob)
	var client uint32
	for {
		if cfg.IdleTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(cfg.IdleTimeout))
		}
		if err := serveOne(cc, backend, cfg, stats, &client); err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return fmt.Errorf("wire: serve: %w", err)
		}
	}
}

// Connection codec modes.
const (
	codecModeUnknown = iota
	codecModeGob
	codecModeBinary
)

// connCodec is one server-side connection's codec state: the sniffed mode
// (binary peers announce themselves with codecMagic before their first
// frame; everything else is a gob stream), the shared buffered reader both
// codecs decode from, and the lazily-built gob machinery.
type connCodec struct {
	conn     net.Conn
	br       *bufio.Reader
	forceGob bool
	mode     int
	dec      *gob.Decoder
	enc      *gob.Encoder
}

func newConnCodec(conn net.Conn, br *bufio.Reader, forceGob bool) *connCodec {
	return &connCodec{conn: conn, br: br, forceGob: forceGob}
}

func (cc *connCodec) useGob() {
	cc.mode = codecModeGob
	cc.dec = gob.NewDecoder(cc.br)
	cc.enc = gob.NewEncoder(cc.conn)
}

// negotiate sniffs the connection's codec from its first byte. A gob stream
// frames every message with a uvarint byte count ≥ 1, so a leading 0x00 can
// only be the binary codec's magic preamble.
func (cc *connCodec) negotiate() error {
	if cc.mode != codecModeUnknown {
		return nil
	}
	if cc.forceGob {
		cc.useGob()
		return nil
	}
	first, err := cc.br.Peek(1)
	if err != nil {
		return err
	}
	if first[0] != codecMagic[0] {
		cc.useGob()
		return nil
	}
	var magic [4]byte
	if _, err := io.ReadFull(cc.br, magic[:]); err != nil {
		return fmt.Errorf("wire: codec preamble: %w", err)
	}
	if magic != codecMagic {
		return fmt.Errorf("wire: unsupported codec preamble %x", magic)
	}
	cc.mode = codecModeBinary
	return nil
}

// name reports the negotiated codec ("" before the first request).
func (cc *connCodec) name() string {
	switch cc.mode {
	case codecModeGob:
		return string(CodecGob)
	case codecModeBinary:
		return string(CodecBinary)
	}
	return ""
}

// readRequest decodes one request. For binary push requests it returns the
// batch's raw payload (retained by the caller in an EncodedBatch — the
// decoded batch aliases it); nil otherwise.
func (cc *connCodec) readRequest(req *request) ([]byte, error) {
	if err := cc.negotiate(); err != nil {
		return nil, err
	}
	if cc.mode == codecModeGob {
		return nil, cc.dec.Decode(req)
	}
	// The frame buffer is allocated fresh, not pooled: push frames are
	// retained for the batch's lifetime (journal + outboxes), and non-push
	// requests are a few dozen bytes.
	payload, err := readFrame(cc.br, nil)
	if err != nil {
		return nil, err
	}
	return decodeRequest(payload, req)
}

// writeResponse encodes one response. ebs carries a poll's batches in
// already-encoded form; the binary codec splices their payloads verbatim,
// while the gob fallback encodes the decoded batches the legacy way.
func (cc *connCodec) writeResponse(resp *response, ebs []*EncodedBatch) error {
	if cc.mode == codecModeGob {
		if ebs != nil {
			resp.Batches = make([]*Batch, len(ebs))
			for i, eb := range ebs {
				resp.Batches[i] = eb.Batch()
			}
		}
		return cc.enc.Encode(resp)
	}
	bp := getFrameBuf()
	buf := beginFrame((*bp)[:0])
	buf = appendResponse(buf, resp, ebs)
	err := finishFrame(buf, 0)
	if err == nil {
		_, err = cc.conn.Write(buf)
	}
	*bp = buf[:0]
	putFrameBuf(bp)
	return err
}

// serveOne decodes and answers exactly one request — the dispatch shared by
// the fallback per-connection loop and the pool workers. A clean peer
// shutdown surfaces as io.EOF.
func serveOne(cc *connCodec, backend Backend, cfg ServeConfig, stats *ServeStats, client *uint32) error {
	var req request
	raw, err := cc.readRequest(&req)
	if err != nil {
		if errors.Is(err, io.EOF) {
			return io.EOF
		}
		return fmt.Errorf("read: %w", err)
	}
	if stats != nil {
		stats.requests.Add(1)
	}
	var resp response
	var ebs []*EncodedBatch
	switch req.Op {
	case "register":
		*client = backend.RegisterGroup(req.Group)
		resp.Client = *client
	case "attach":
		*client = req.Client
		backend.Attach(*client)
		resp.Client = *client
	case "push":
		if req.B == nil {
			resp.Err = "push without batch"
			break
		}
		if req.B.Client != *client {
			req.B.Client = *client
			// The batch payload carries Client at a fixed offset so the
			// server can rebind the claimed identity in the retained frame
			// too — forwarded and journaled bytes must agree with the
			// decoded struct.
			if len(raw) >= 4 {
				binary.LittleEndian.PutUint32(raw[:4], *client)
			}
		}
		var eb *EncodedBatch
		if raw != nil {
			eb = NewEncodedBatchRaw(req.B, raw)
		} else {
			eb = NewEncodedBatch(req.B)
		}
		resp.Push = backend.PushEncoded(*client, eb)
	case "fetch":
		resp.Fetch = backend.Fetch(req.Path)
	case "head":
		resp.Ver, resp.Exists = backend.Head(req.Path)
	case "fetchrange":
		data, err := backend.FetchRange(req.Path, req.Off, req.N)
		if err != nil {
			resp.Err = err.Error()
		}
		resp.Data = data
	case "poll":
		ebs = backend.PollEncoded(*client)
	default:
		resp.Err = fmt.Sprintf("unknown op %q", req.Op)
	}
	if cfg.WriteTimeout > 0 {
		cc.conn.SetWriteDeadline(time.Now().Add(cfg.WriteTimeout))
	}
	err = cc.writeResponse(&resp, ebs)
	if cfg.WriteTimeout > 0 {
		cc.conn.SetWriteDeadline(time.Time{})
	}
	if err != nil {
		return fmt.Errorf("write: %w", err)
	}
	return nil
}

// TransportError tags a transport-level failure with the phase of the RPC
// exchange it interrupted, which determines how it may be retried (see
// Classify).
type TransportError struct {
	Phase string // "dial", "send" or "recv"
	Err   error
}

func (e *TransportError) Error() string { return fmt.Sprintf("wire: %s: %v", e.Phase, e.Err) }
func (e *TransportError) Unwrap() error { return e.Err }

// ErrClass classifies an RPC failure for retry purposes.
type ErrClass int

const (
	// ClassFatal errors came back from the application: the exchange
	// completed and retrying would repeat the same answer.
	ClassFatal ErrClass = iota
	// ClassRetryable errors happened before the request could have reached
	// the server (dial failures): retrying is always safe.
	ClassRetryable
	// ClassAmbiguous errors interrupted an exchange in flight (send or
	// receive): the server may or may not have processed the request, so
	// blind retry is only safe for idempotent requests — reads, and pushes
	// carrying an idempotency key the server dedups on.
	ClassAmbiguous
	// ClassDegraded errors are the server's read-only refusal (its
	// storage stack can no longer make writes durable). The exchange
	// completed and the batch was NOT applied; retry after backoff on the
	// same connection — reconnecting won't help, and giving up (fatal)
	// would be wrong because the condition is operator-recoverable.
	ClassDegraded
)

// Classify maps an error from a NetClient RPC onto its retry class.
func Classify(err error) ErrClass {
	if _, ok := AsDegraded(err); ok {
		return ClassDegraded
	}
	var te *TransportError
	if !errors.As(err, &te) {
		return ClassFatal
	}
	if te.Phase == "dial" {
		return ClassRetryable
	}
	// A failed send is still ambiguous: gob buffers, so bytes may have
	// reached the server before the failure surfaced here.
	return ClassAmbiguous
}

// NetClient is a TCP/TLS Endpoint. It is safe for concurrent use (requests
// are serialized on the single connection).
type NetClient struct {
	mu      sync.Mutex
	conn    net.Conn
	binary  bool
	enc     *gob.Encoder  // gob codec only
	dec     *gob.Decoder  // gob codec only
	br      *bufio.Reader // binary codec frame reads
	rbuf    []byte        // binary codec response scratch (under mu)
	id      uint32
	timeout time.Duration
	broken  bool
	traffic *metrics.TrafficMeter
	meter   *metrics.CPUMeter
}

// Codec reports the codec this connection negotiated ("binary" or "gob").
func (c *NetClient) Codec() string {
	if c.binary {
		return string(CodecBinary)
	}
	return string(CodecGob)
}

// DialOpts configures DialWith.
type DialOpts struct {
	// TLS may be nil for plaintext.
	TLS *tls.Config
	// Meter and Traffic account the client side; either may be nil.
	Meter   *metrics.CPUMeter
	Traffic *metrics.TrafficMeter
	// OpTimeout is the per-RPC deadline applied to the connection for each
	// round trip (send + receive). Zero means no deadline.
	OpTimeout time.Duration
	// AttachID, when nonzero, re-binds this connection to an existing
	// client ID instead of registering a new one — the reconnect path.
	AttachID uint32
	// Group is the sharing group to register into (0 = the default
	// everyone-shares group). Forwarding and conflict history are scoped to
	// the group, which is what lets one server host many isolated tenants.
	Group uint32
	// HardClose makes Close reset the connection (SO_LINGER 0) instead of
	// lingering in TIME_WAIT. Load harnesses churn tens of thousands of
	// loopback connections per run and would otherwise exhaust the local
	// port and TIME_WAIT tables, skewing back-to-back measurements.
	HardClose bool
	// Codec selects the wire codec. CodecAuto (the zero value) tries the
	// binary codec and falls back to gob when the server closes on the
	// preamble — the old-server interop path.
	Codec Codec
}

// Dial connects to a Serve listener and registers a new client. tlsConf may
// be nil for plaintext. traffic and meter account the client side and may be
// nil.
func Dial(addr string, tlsConf *tls.Config, meter *metrics.CPUMeter, traffic *metrics.TrafficMeter) (*NetClient, error) {
	return DialWith(addr, DialOpts{TLS: tlsConf, Meter: meter, Traffic: traffic})
}

// DialWith connects to a Serve listener with explicit options. When
// OpTimeout is set it also bounds connection establishment — including the
// TLS handshake, which otherwise blocks forever if the peer (or a fault in
// between) swallows handshake bytes.
//
// With CodecAuto the binary codec is tried first; if the connection was
// established but the identity exchange died (the signature of an old gob
// server closing on the unrecognized preamble), the dial is repeated
// speaking gob.
func DialWith(addr string, o DialOpts) (*NetClient, error) {
	switch o.Codec {
	case CodecGob:
		c, err, _ := dialCodec(addr, o, false)
		return c, err
	case CodecBinary:
		c, err, _ := dialCodec(addr, o, true)
		return c, err
	}
	c, err, exchangeFailed := dialCodec(addr, o, true)
	if err != nil && exchangeFailed {
		if c2, err2, _ := dialCodec(addr, o, false); err2 == nil {
			return c2, nil
		}
	}
	return c, err
}

// dialCodec performs one connection attempt with a fixed codec.
// exchangeFailed reports that TCP (and TLS) came up but the identity
// exchange then failed — the only case where falling back to the other
// codec can help.
func dialCodec(addr string, o DialOpts, binaryCodec bool) (_ *NetClient, _ error, exchangeFailed bool) {
	conn, err := net.DialTimeout("tcp", addr, o.OpTimeout)
	if err != nil {
		return nil, &TransportError{Phase: "dial", Err: fmt.Errorf("%s: %w", addr, err)}, false
	}
	if o.HardClose {
		if tc, ok := conn.(*net.TCPConn); ok {
			tc.SetLinger(0)
		}
	}
	if o.TLS != nil {
		if o.OpTimeout > 0 {
			conn.SetDeadline(time.Now().Add(o.OpTimeout))
		}
		tc := tls.Client(conn, o.TLS)
		if err := tc.Handshake(); err != nil {
			conn.Close()
			return nil, &TransportError{Phase: "dial", Err: fmt.Errorf("%s: tls: %w", addr, err)}, false
		}
		conn.SetDeadline(time.Time{})
		conn = tc
	}
	c := &NetClient{
		conn:    conn,
		binary:  binaryCodec,
		timeout: o.OpTimeout,
		traffic: o.Traffic,
		meter:   o.Meter,
	}
	if binaryCodec {
		c.br = bufio.NewReader(conn)
		if o.OpTimeout > 0 {
			conn.SetWriteDeadline(time.Now().Add(o.OpTimeout))
		}
		_, err := conn.Write(codecMagic[:])
		if o.OpTimeout > 0 {
			conn.SetWriteDeadline(time.Time{})
		}
		if err != nil {
			conn.Close()
			return nil, &TransportError{Phase: "dial", Err: fmt.Errorf("%s: codec preamble: %w", addr, err)}, true
		}
	} else {
		c.enc = gob.NewEncoder(conn)
		c.dec = gob.NewDecoder(conn)
	}
	req := request{Op: "register", Group: o.Group}
	if o.AttachID != 0 {
		req = request{Op: "attach", Client: o.AttachID}
	}
	resp, err := c.roundTrip(req, 0)
	if err != nil {
		conn.Close()
		// The identity exchange is part of connection establishment: a
		// failure here never leaves server-visible state behind, so report
		// it as a dial failure (always retryable).
		return nil, &TransportError{Phase: "dial", Err: err}, true
	}
	c.id = resp.Client
	return c, nil, false
}

// roundTrip sends req and waits for the response. wireBytes is the
// accounted request size (0 → requestSize).
func (c *NetClient) roundTrip(req request, wireBytes int64) (*response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.broken {
		return nil, &TransportError{Phase: "send", Err: errors.New("connection previously failed")}
	}
	if wireBytes == 0 {
		wireBytes = 64
	}
	c.meter.RPC(1)
	c.meter.Net(wireBytes)
	c.traffic.Upload(wireBytes)
	if c.timeout > 0 {
		c.conn.SetDeadline(time.Now().Add(c.timeout))
		defer c.conn.SetDeadline(time.Time{})
	}
	var resp response
	if c.binary {
		if err := c.exchangeBinary(&req, &resp); err != nil {
			return nil, err
		}
	} else {
		if err := c.enc.Encode(&req); err != nil {
			c.broken = true
			return nil, &TransportError{Phase: "send", Err: err}
		}
		if err := c.dec.Decode(&resp); err != nil {
			// A gob stream cannot resynchronize after a torn exchange; poison
			// the connection so later callers fail fast instead of misparsing.
			c.broken = true
			return nil, &TransportError{Phase: "recv", Err: err}
		}
	}
	if resp.Err != "" {
		return nil, errors.New(resp.Err)
	}
	return &resp, nil
}

// exchangeBinary performs one framed request/response exchange. The caller
// holds c.mu. Any failure — including a frame that fails its checksum or
// bounds checks — poisons the connection: the strict request/response
// pairing is lost either way.
func (c *NetClient) exchangeBinary(req *request, resp *response) error {
	bp := getFrameBuf()
	buf := beginFrame((*bp)[:0])
	buf, err := appendRequest(buf, req)
	if err == nil {
		err = finishFrame(buf, 0)
	}
	if err == nil {
		_, err = c.conn.Write(buf)
	}
	*bp = buf[:0]
	putFrameBuf(bp)
	if err != nil {
		c.broken = true
		return &TransportError{Phase: "send", Err: err}
	}
	payload, err := readFrame(c.br, c.rbuf)
	if err != nil {
		c.broken = true
		return &TransportError{Phase: "recv", Err: err}
	}
	c.rbuf = payload // keep the grown scratch for the next response
	if err := decodeResponse(payload, resp); err != nil {
		c.broken = true
		return &TransportError{Phase: "recv", Err: err}
	}
	return nil
}

// Register implements Endpoint.
func (c *NetClient) Register() (uint32, error) { return c.id, nil }

// Push implements Endpoint.
func (c *NetClient) Push(b *Batch) (*PushReply, error) {
	b.Client = c.id
	resp, err := c.roundTrip(request{Op: "push", B: b}, b.WireSize())
	if err != nil {
		return nil, err
	}
	c.meter.Net(resp.Push.WireSize())
	c.traffic.Download(resp.Push.WireSize())
	return resp.Push, nil
}

// Fetch implements Endpoint.
func (c *NetClient) Fetch(path string) (*FetchReply, error) {
	resp, err := c.roundTrip(request{Op: "fetch", Path: path}, 0)
	if err != nil {
		return nil, err
	}
	c.meter.Net(resp.Fetch.WireSize())
	c.traffic.Download(resp.Fetch.WireSize())
	return resp.Fetch, nil
}

// Head implements Endpoint.
func (c *NetClient) Head(path string) (version.ID, bool, error) {
	resp, err := c.roundTrip(request{Op: "head", Path: path}, 0)
	if err != nil {
		return version.ID{}, false, err
	}
	c.meter.Net(32)
	c.traffic.Download(32)
	return resp.Ver, resp.Exists, nil
}

// FetchRange implements Endpoint.
func (c *NetClient) FetchRange(path string, off, n int64) ([]byte, error) {
	resp, err := c.roundTrip(request{Op: "fetchrange", Path: path, Off: off, N: n}, 0)
	if err != nil {
		return nil, err
	}
	c.meter.Net(int64(len(resp.Data)) + 32)
	c.traffic.Download(int64(len(resp.Data)) + 32)
	return resp.Data, nil
}

// Poll implements Endpoint.
func (c *NetClient) Poll() ([]*Batch, error) {
	resp, err := c.roundTrip(request{Op: "poll"}, 0)
	if err != nil {
		return nil, err
	}
	var size int64 = 16
	for _, b := range resp.Batches {
		size += b.WireSize()
	}
	c.meter.Net(size)
	c.traffic.Download(size)
	return resp.Batches, nil
}

// Close implements Endpoint.
func (c *NetClient) Close() error { return c.conn.Close() }

var _ Endpoint = (*NetClient)(nil)

// SelfSignedTLS generates an in-memory self-signed certificate and returns
// matching server and client TLS configurations — the stdlib stand-in for
// the paper's OpenSSL link encryption.
func SelfSignedTLS() (serverConf, clientConf *tls.Config, err error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, nil, err
	}
	tmpl := &x509.Certificate{
		SerialNumber: big.NewInt(1),
		Subject:      pkix.Name{CommonName: "deltacfs"},
		NotBefore:    time.Now().Add(-time.Hour),
		NotAfter:     time.Now().Add(24 * time.Hour),
		KeyUsage:     x509.KeyUsageDigitalSignature | x509.KeyUsageCertSign,
		ExtKeyUsage:  []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
		IsCA:         true,
		DNSNames:     []string{"localhost"},
		IPAddresses:  []net.IP{net.IPv4(127, 0, 0, 1), net.IPv6loopback},
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, &key.PublicKey, key)
	if err != nil {
		return nil, nil, err
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, nil, err
	}
	pool := x509.NewCertPool()
	pool.AddCert(cert)
	serverConf = &tls.Config{
		Certificates: []tls.Certificate{{Certificate: [][]byte{der}, PrivateKey: key}},
		MinVersion:   tls.VersionTLS12,
	}
	clientConf = &tls.Config{RootCAs: pool, ServerName: "localhost", MinVersion: tls.VersionTLS12}
	return serverConf, clientConf, nil
}

package wire

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/gob"
	"errors"
	"fmt"
	"math/big"
	"net"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/version"
)

// Backend is the server-side application the network transport dispatches
// into (implemented by internal/server.Server). It mirrors Endpoint with an
// explicit client ID.
type Backend interface {
	Register() uint32
	Push(from uint32, b *Batch) *PushReply
	Fetch(path string) *FetchReply
	Head(path string) (version.ID, bool)
	FetchRange(path string, off, n int64) ([]byte, error)
	Poll(client uint32) []*Batch
}

// request is the single on-the-wire request message.
type request struct {
	Op   string // "register", "push", "fetch", "fetchrange", "poll"
	B    *Batch
	Path string
	Off  int64
	N    int64
}

// response is the single on-the-wire response message.
type response struct {
	Err     string
	Client  uint32
	Push    *PushReply
	Fetch   *FetchReply
	Ver     version.ID
	Exists  bool
	Data    []byte
	Batches []*Batch
}

// Serve accepts connections on lis and dispatches them into backend until
// lis is closed. Each connection serves one client sequentially.
func Serve(lis net.Listener, backend Backend) error {
	for {
		conn, err := lis.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go serveConn(conn, backend)
	}
}

func serveConn(conn net.Conn, backend Backend) {
	defer conn.Close()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	var client uint32
	for {
		var req request
		if err := dec.Decode(&req); err != nil {
			return // EOF or broken connection
		}
		var resp response
		switch req.Op {
		case "register":
			client = backend.Register()
			resp.Client = client
		case "push":
			req.B.Client = client
			resp.Push = backend.Push(client, req.B)
		case "fetch":
			resp.Fetch = backend.Fetch(req.Path)
		case "head":
			resp.Ver, resp.Exists = backend.Head(req.Path)
		case "fetchrange":
			data, err := backend.FetchRange(req.Path, req.Off, req.N)
			if err != nil {
				resp.Err = err.Error()
			}
			resp.Data = data
		case "poll":
			resp.Batches = backend.Poll(client)
		default:
			resp.Err = fmt.Sprintf("unknown op %q", req.Op)
		}
		if err := enc.Encode(&resp); err != nil {
			return
		}
	}
}

// NetClient is a TCP/TLS Endpoint. It is safe for concurrent use (requests
// are serialized on the single connection).
type NetClient struct {
	mu      sync.Mutex
	conn    net.Conn
	enc     *gob.Encoder
	dec     *gob.Decoder
	id      uint32
	traffic *metrics.TrafficMeter
	meter   *metrics.CPUMeter
}

// Dial connects to a Serve listener. tlsConf may be nil for plaintext.
// traffic and meter account the client side and may be nil.
func Dial(addr string, tlsConf *tls.Config, meter *metrics.CPUMeter, traffic *metrics.TrafficMeter) (*NetClient, error) {
	var conn net.Conn
	var err error
	if tlsConf != nil {
		conn, err = tls.Dial("tcp", addr, tlsConf)
	} else {
		conn, err = net.Dial("tcp", addr)
	}
	if err != nil {
		return nil, fmt.Errorf("wire: dial %s: %w", addr, err)
	}
	c := &NetClient{
		conn:    conn,
		enc:     gob.NewEncoder(conn),
		dec:     gob.NewDecoder(conn),
		traffic: traffic,
		meter:   meter,
	}
	resp, err := c.roundTrip(request{Op: "register"}, 0)
	if err != nil {
		conn.Close()
		return nil, err
	}
	c.id = resp.Client
	return c, nil
}

// roundTrip sends req and waits for the response. wireBytes is the
// accounted request size (0 → requestSize).
func (c *NetClient) roundTrip(req request, wireBytes int64) (*response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if wireBytes == 0 {
		wireBytes = 64
	}
	c.meter.RPC(1)
	c.meter.Net(wireBytes)
	c.traffic.Upload(wireBytes)
	if err := c.enc.Encode(&req); err != nil {
		return nil, fmt.Errorf("wire: send: %w", err)
	}
	var resp response
	if err := c.dec.Decode(&resp); err != nil {
		return nil, fmt.Errorf("wire: recv: %w", err)
	}
	if resp.Err != "" {
		return nil, errors.New(resp.Err)
	}
	return &resp, nil
}

// Register implements Endpoint.
func (c *NetClient) Register() (uint32, error) { return c.id, nil }

// Push implements Endpoint.
func (c *NetClient) Push(b *Batch) (*PushReply, error) {
	b.Client = c.id
	resp, err := c.roundTrip(request{Op: "push", B: b}, b.WireSize())
	if err != nil {
		return nil, err
	}
	c.meter.Net(resp.Push.WireSize())
	c.traffic.Download(resp.Push.WireSize())
	return resp.Push, nil
}

// Fetch implements Endpoint.
func (c *NetClient) Fetch(path string) (*FetchReply, error) {
	resp, err := c.roundTrip(request{Op: "fetch", Path: path}, 0)
	if err != nil {
		return nil, err
	}
	c.meter.Net(resp.Fetch.WireSize())
	c.traffic.Download(resp.Fetch.WireSize())
	return resp.Fetch, nil
}

// Head implements Endpoint.
func (c *NetClient) Head(path string) (version.ID, bool, error) {
	resp, err := c.roundTrip(request{Op: "head", Path: path}, 0)
	if err != nil {
		return version.ID{}, false, err
	}
	c.meter.Net(32)
	c.traffic.Download(32)
	return resp.Ver, resp.Exists, nil
}

// FetchRange implements Endpoint.
func (c *NetClient) FetchRange(path string, off, n int64) ([]byte, error) {
	resp, err := c.roundTrip(request{Op: "fetchrange", Path: path, Off: off, N: n}, 0)
	if err != nil {
		return nil, err
	}
	c.meter.Net(int64(len(resp.Data)) + 32)
	c.traffic.Download(int64(len(resp.Data)) + 32)
	return resp.Data, nil
}

// Poll implements Endpoint.
func (c *NetClient) Poll() ([]*Batch, error) {
	resp, err := c.roundTrip(request{Op: "poll"}, 0)
	if err != nil {
		return nil, err
	}
	var size int64 = 16
	for _, b := range resp.Batches {
		size += b.WireSize()
	}
	c.meter.Net(size)
	c.traffic.Download(size)
	return resp.Batches, nil
}

// Close implements Endpoint.
func (c *NetClient) Close() error { return c.conn.Close() }

var _ Endpoint = (*NetClient)(nil)

// SelfSignedTLS generates an in-memory self-signed certificate and returns
// matching server and client TLS configurations — the stdlib stand-in for
// the paper's OpenSSL link encryption.
func SelfSignedTLS() (serverConf, clientConf *tls.Config, err error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, nil, err
	}
	tmpl := &x509.Certificate{
		SerialNumber: big.NewInt(1),
		Subject:      pkix.Name{CommonName: "deltacfs"},
		NotBefore:    time.Now().Add(-time.Hour),
		NotAfter:     time.Now().Add(24 * time.Hour),
		KeyUsage:     x509.KeyUsageDigitalSignature | x509.KeyUsageCertSign,
		ExtKeyUsage:  []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
		IsCA:         true,
		DNSNames:     []string{"localhost"},
		IPAddresses:  []net.IP{net.IPv4(127, 0, 0, 1), net.IPv6loopback},
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, &key.PublicKey, key)
	if err != nil {
		return nil, nil, err
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, nil, err
	}
	pool := x509.NewCertPool()
	pool.AddCert(cert)
	serverConf = &tls.Config{
		Certificates: []tls.Certificate{{Certificate: [][]byte{der}, PrivateKey: key}},
		MinVersion:   tls.VersionTLS12,
	}
	clientConf = &tls.Config{RootCAs: pool, ServerName: "localhost", MinVersion: tls.VersionTLS12}
	return serverConf, clientConf, nil
}

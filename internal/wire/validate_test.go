package wire

import (
	"strings"
	"testing"

	"repro/internal/rsync"
)

func TestValidatePath(t *testing.T) {
	good := []string{"a", "a.txt", "dir/file", "deep/ly/nest/ed", ".hidden", "..dots", "a..b"}
	for _, p := range good {
		if err := ValidatePath(p); err != nil {
			t.Errorf("ValidatePath(%q) = %v, want nil", p, err)
		}
	}
	bad := map[string]string{
		"":                        "empty",
		"/etc/passwd":             "absolute",
		"..":                      "escapes",
		"../sibling":              "escapes",
		"a/../../b":               "unclean",
		"a//b":                    "unclean",
		"a/./b":                   "unclean",
		"dir/":                    "unclean",
		"a\x00b":                  "NUL",
		strings.Repeat("x", 4097): "exceeds",
	}
	for p, frag := range bad {
		err := ValidatePath(p)
		if err == nil {
			t.Errorf("ValidatePath(%q) = nil, want error", p)
			continue
		}
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("ValidatePath(%q) = %q, want mention of %q", p, err, frag)
		}
	}
}

func TestNodeValidate(t *testing.T) {
	cases := []struct {
		name string
		n    *Node
		frag string // "" = valid
	}{
		{"ok write", &Node{Kind: NWrite, Path: "f", Extents: []Extent{{Off: 0, Data: []byte("x")}}}, ""},
		{"ok rename", &Node{Kind: NRename, Path: "a", Dst: "b"}, ""},
		{"ok delta", &Node{Kind: NDelta, Path: "f", Delta: &rsync.Delta{TargetLen: 3}}, ""},
		{"ok cdc", &Node{Kind: NCDC, Path: "f", Chunks: []ChunkRef{{Len: 2, Data: []byte("ab")}, {Len: 9}}}, ""},
		{"zero kind", &Node{Path: "f"}, "unknown node kind"},
		{"kind out of range", &Node{Kind: NCDC + 1, Path: "f"}, "unknown node kind"},
		{"traversal path", &Node{Kind: NCreate, Path: "../x"}, "escapes"},
		{"bad rename dst", &Node{Kind: NRename, Path: "a", Dst: "/b"}, "destination"},
		{"bad base path", &Node{Kind: NDelta, Path: "f", BasePath: "../b", Delta: &rsync.Delta{}}, "delta base"},
		{"negative extent off", &Node{Kind: NWrite, Path: "f", Extents: []Extent{{Off: -1}}}, "negative offset"},
		{"negative size", &Node{Kind: NTruncate, Path: "f", Size: -5}, "negative size"},
		{"delta without delta", &Node{Kind: NDelta, Path: "f"}, "without a delta"},
		{"negative target len", &Node{Kind: NDelta, Path: "f", Delta: &rsync.Delta{TargetLen: -1}}, "negative delta target"},
		{"negative chunk len", &Node{Kind: NCDC, Path: "f", Chunks: []ChunkRef{{Len: -1}}}, "negative length"},
		{"lying chunk len", &Node{Kind: NCDC, Path: "f", Chunks: []ChunkRef{{Len: 1 << 40, Data: []byte("ab")}}}, "claims"},
	}
	for _, tc := range cases {
		err := tc.n.Validate()
		if tc.frag == "" {
			if err != nil {
				t.Errorf("%s: Validate() = %v, want nil", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.frag) {
			t.Errorf("%s: Validate() = %v, want mention of %q", tc.name, err, tc.frag)
		}
	}
}

func TestBatchValidate(t *testing.T) {
	ok := &Batch{Nodes: []*Node{{Kind: NCreate, Path: "f"}}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid batch rejected: %v", err)
	}
	if err := (&Batch{Nodes: []*Node{nil}}).Validate(); err == nil || !strings.Contains(err.Error(), "nil") {
		t.Fatalf("nil node: %v", err)
	}
	bad := &Batch{Nodes: []*Node{
		{Kind: NCreate, Path: "f"},
		{Kind: NCreate, Path: "/abs"},
	}}
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "node 1") {
		t.Fatalf("bad node not attributed: %v", err)
	}
	huge := &Batch{Nodes: make([]*Node, MaxBatchNodes+1)}
	if err := huge.Validate(); err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("oversized batch: %v", err)
	}
}

package wire

import (
	"crypto/tls"
	"fmt"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"
)

// Bounded transport: on Linux, plain-TCP connections are multiplexed onto
// the poller and a fixed worker pool — N idle connections must not cost N
// goroutines — and the stats must say so.
func TestServePolledConnectionsBounded(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	stats := &ServeStats{}
	backend := newFakeBackend()
	go ServeWith(lis, backend, ServeConfig{Workers: 4, Stats: stats})

	const conns = 64
	before := runtime.NumGoroutine()
	var clients []*NetClient
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()
	for i := 0; i < conns; i++ {
		c, err := DialWith(lis.Addr().String(), DialOpts{OpTimeout: time.Minute})
		if err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
		clients = append(clients, c)
	}

	if got := stats.Conns(); got != conns {
		t.Fatalf("Conns = %d, want %d", got, conns)
	}
	if got := stats.PeakConns(); got != conns {
		t.Fatalf("PeakConns = %d, want %d", got, conns)
	}
	if runtime.GOOS == "linux" {
		if got := stats.Polled(); got != conns {
			t.Fatalf("Polled = %d, want %d (plain TCP must take the poller path)", got, conns)
		}
		if got := stats.Fallback(); got != 0 {
			t.Fatalf("Fallback = %d, want 0", got)
		}
		// The boundedness claim: goroutine growth is the worker pool plus
		// runtime slack, not one per connection.
		if grew := runtime.NumGoroutine() - before; grew >= conns {
			t.Fatalf("goroutines grew by %d for %d idle conns; transport is not bounded", grew, conns)
		}
	}

	// Every multiplexed connection still works, including concurrently.
	var wg sync.WaitGroup
	errs := make(chan error, conns)
	for i, c := range clients {
		wg.Add(1)
		go func(i int, c *NetClient) {
			defer wg.Done()
			path := fmt.Sprintf("f%d", i)
			if _, err := c.Push(&Batch{Nodes: []*Node{{Kind: NFull, Path: path, Full: []byte{byte(i)}}}}); err != nil {
				errs <- fmt.Errorf("push %d: %w", i, err)
				return
			}
			fr, err := c.Fetch(path)
			if err != nil || !fr.Exists || len(fr.Content) != 1 || fr.Content[0] != byte(i) {
				errs <- fmt.Errorf("fetch %d: %+v, %v", i, fr, err)
			}
		}(i, c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := stats.Requests(); got < conns*3 {
		t.Fatalf("Requests = %d, want >= %d (register+push+fetch per conn)", got, conns*3)
	}

	// Closing the clients drains the server's connection count.
	for _, c := range clients {
		c.Close()
	}
	clients = nil
	deadline := time.Now().Add(5 * time.Second)
	for stats.Conns() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("Conns = %d after close, want 0", stats.Conns())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TLS connections cannot expose a raw fd, so they must take the fallback
// (goroutine-per-conn) path and still work end to end.
func TestServeTLSFallsBack(t *testing.T) {
	serverConf, clientConf, err := SelfSignedTLS()
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	stats := &ServeStats{}
	backend := newFakeBackend()
	go ServeWith(tls.NewListener(lis, serverConf), backend, ServeConfig{Stats: stats})

	c, err := DialWith(lis.Addr().String(), DialOpts{TLS: clientConf, OpTimeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Push(&Batch{Nodes: []*Node{{Kind: NFull, Path: "f", Full: []byte("x")}}}); err != nil {
		t.Fatal(err)
	}
	if got := stats.Fallback(); got != 1 {
		t.Fatalf("Fallback = %d, want 1 (TLS conns cannot be polled)", got)
	}
	if got := stats.Polled(); got != 0 {
		t.Fatalf("Polled = %d, want 0", got)
	}
}

package wire

import (
	"errors"
	"strings"
)

// Degraded mode is the server's graceful answer to a failed storage stack:
// when the push journal can no longer make batches durable (a poisoned WAL
// after a failed fsync, or ENOSPC), the server refuses writes but keeps
// serving reads, and says so with a typed, machine-recognizable error
// instead of a generic failure. Clients must treat it as retryable-after-
// backoff — the operator frees disk or the server restarts onto healthy
// storage — never as fatal: the client's data is safely buffered on its
// side precisely because the server refused to ack it.

// degradedPrefix marks a PushReply.Err as the degraded-mode refusal. The
// marker travels in the existing app-level error string, so the wire format
// (and every older peer) is unchanged.
const degradedPrefix = "degraded: "

// DegradedMsg formats a degraded-mode refusal for PushReply.Err.
func DegradedMsg(reason string) string { return degradedPrefix + reason }

// IsDegradedMsg reports whether a PushReply.Err is a degraded-mode refusal.
func IsDegradedMsg(s string) bool { return strings.HasPrefix(s, degradedPrefix) }

// ErrServerDegraded is the typed form a client-side endpoint surfaces when
// the server refused a write in degraded read-only mode. Classify maps it
// to ClassDegraded: retry with backoff on the same connection.
type ErrServerDegraded struct {
	Reason string
}

func (e *ErrServerDegraded) Error() string {
	return "wire: server degraded (read-only): " + e.Reason
}

// AsDegraded extracts an ErrServerDegraded from err, if any.
func AsDegraded(err error) (*ErrServerDegraded, bool) {
	var de *ErrServerDegraded
	if errors.As(err, &de) {
		return de, true
	}
	return nil, false
}

// degradedReplyErr converts a degraded PushReply into its typed error (nil
// for any other reply).
func degradedReplyErr(r *PushReply) error {
	if r != nil && IsDegradedMsg(r.Err) {
		return &ErrServerDegraded{Reason: strings.TrimPrefix(r.Err, degradedPrefix)}
	}
	return nil
}

package wire

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/version"
)

// benchBatch builds a push-shaped batch: n write nodes carrying extentBytes
// of payload each — small (metadata-dominated), medium (one screenful of
// edits), large (bulk upload) in the benchmarks below.
func benchBatch(n, extentBytes int) *Batch {
	rng := rand.New(rand.NewSource(42))
	b := &Batch{Client: 3, Seq: 99, Nodes: make([]*Node, 0, n)}
	for i := 0; i < n; i++ {
		data := make([]byte, extentBytes)
		rng.Read(data)
		b.Nodes = append(b.Nodes, &Node{
			Kind: NWrite,
			Path: fmt.Sprintf("dir/sub/file-%04d.dat", i),
			Size: int64(extentBytes),
			Base: version.ID{Client: 3, Count: uint64(i)},
			Ver:  version.ID{Client: 3, Count: uint64(i + 1)},
			Extents: []Extent{
				{Off: int64(i * extentBytes), Data: data},
			},
		})
	}
	return b
}

var benchSizes = []struct {
	name         string
	nodes, bytes int
}{
	{"small", 1, 64},        // one tiny edit
	{"medium", 8, 4 << 10},  // a batch of 4 KiB writes
	{"large", 64, 64 << 10}, // bulk upload burst
}

func BenchmarkCodecEncode(b *testing.B) {
	for _, sz := range benchSizes {
		batch := benchBatch(sz.nodes, sz.bytes)
		b.Run("binary/"+sz.name, func(b *testing.B) {
			buf := AppendBatch(nil, batch)
			b.SetBytes(int64(len(buf)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf = AppendBatch(buf[:0], batch)
			}
		})
		b.Run("gob/"+sz.name, func(b *testing.B) {
			var buf bytes.Buffer
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf.Reset()
				// A fresh encoder per message mirrors what the wire does for
				// a request: the per-message cost is what the hot path pays.
				if err := gob.NewEncoder(&buf).Encode(batch); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(int64(buf.Len()))
		})
	}
}

func BenchmarkCodecDecode(b *testing.B) {
	for _, sz := range benchSizes {
		batch := benchBatch(sz.nodes, sz.bytes)
		raw := AppendBatch(nil, batch)
		var gobBuf bytes.Buffer
		if err := gob.NewEncoder(&gobBuf).Encode(batch); err != nil {
			b.Fatal(err)
		}
		gobRaw := gobBuf.Bytes()
		b.Run("binary/"+sz.name, func(b *testing.B) {
			b.SetBytes(int64(len(raw)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := DecodeBatchPayload(raw, true); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("gob/"+sz.name, func(b *testing.B) {
			b.SetBytes(int64(len(gobRaw)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var out Batch
				if err := gob.NewDecoder(bytes.NewReader(gobRaw)).Decode(&out); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

//go:build !linux

package wire

import "errors"

// connPoller is unavailable on platforms without an epoll-style readiness
// interface wired up; every connection takes the fallback dedicated
// goroutine. The methods exist only to satisfy references from serve.go and
// are never reached (serveState keeps poller == nil).
type connPoller struct{}

func newConnPoller() (*connPoller, error) {
	return nil, errors.New("wire: no connection poller on this platform")
}

func (p *connPoller) add(pc *polledConn) error     { return errors.New("wire: no poller") }
func (p *connPoller) rearm(pc *polledConn) error   { return errors.New("wire: no poller") }
func (p *connPoller) remove(pc *polledConn)        {}
func (p *connPoller) snapshot() []*polledConn      { return nil }
func (p *connPoller) wait() ([]*polledConn, error) { return nil, errors.New("wire: no poller") }
func (p *connPoller) close()                       {}

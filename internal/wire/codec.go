package wire

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
	"sync/atomic"

	"repro/internal/rsync"
	"repro/internal/version"
)

// The binary wire codec. gob's reflection and per-message type descriptors
// dominate the per-request CPU and allocation cost past a few thousand
// clients, so the hot path speaks a hand-rolled, length-prefixed
// little-endian format instead: one frame per message, one allocation per
// push (the frame buffer itself, which the decoded batch aliases and the
// server then retains for the journal and forwarding fan-out — encode once,
// reuse everywhere). gob remains the fallback codec and the cross-version
// oracle: a connection's codec is negotiated by a magic preamble the client
// sends after connect (negotiation lives in transport.go), and every message
// has the same meaning in both codecs.
//
// Frame layout (all integers little-endian):
//
//	offset 0  u32  payload length N (1 ≤ N ≤ MaxFrameSize)
//	offset 4  u32  CRC32-C of the payload
//	offset 8  [N]  payload: msgKind u8, then the body
//
// The CRC makes corruption (fault injection flips bytes below the codec) a
// deterministic, typed decode error instead of whatever field the flipped
// byte happened to land in. Within a payload:
//
//   - strings are u32 length + bytes
//   - byte slices are u8 presence (0 = nil) + u32 length + bytes, so nil vs
//     empty round-trips exactly
//   - slices are u8 presence + u32 count + elements
//
// Every wire-derived length and count is bounds-checked against the bytes
// actually remaining in the frame before it sizes an allocation — the
// decoder is a trust boundary and hostile frames (oversized lengths,
// truncated frames, counts past the buffer) must die here, not in an
// allocator or an index expression.

// BinaryCodecVersion is the negotiated frame-format version carried in the
// codec magic. Bump it when the payload layout changes incompatibly; the
// server rejects versions it does not speak and the client falls back to gob.
const BinaryCodecVersion = 1

// codecMagic is the preamble a binary-codec client sends immediately after
// connect. The first byte is 0x00, which can never begin a gob stream (gob
// frames a message with a uvarint byte count ≥ 1), so a server can sniff the
// codec from a single peeked byte without consuming the stream.
var codecMagic = [4]byte{0x00, 'D', 'C', BinaryCodecVersion}

// MaxFrameSize bounds one frame's payload. Large enough for a whole-file
// upload batch at the biggest workload scale (131 MiB), small enough that a
// hostile or corrupted length prefix cannot ask the decoder for gigabytes.
const MaxFrameSize = 1 << 28

// frameHeaderSize is the fixed length+CRC prefix of every frame.
const frameHeaderSize = 8

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Message kinds (payload byte 0).
const (
	msgRequest  = 1
	msgResponse = 2
)

// Request ops (payload byte 1 of a request).
const (
	opRegister = 1
	opAttach   = 2
	opPush     = 3
	opFetch    = 4
	opHead     = 5
	opFetchRange = 6
	opPoll     = 7
)

// batchEncodes counts binary batch-payload encodes process-wide. The
// single-encode discipline is asserted by tests as a delta on this counter:
// a push journaled and fanned out to N peers must cost at most one encode
// (zero when the batch arrived over the binary transport, whose decode
// retains the wire bytes).
var batchEncodes atomic.Int64

// BatchEncodes returns the process-wide count of binary batch-payload
// encodes performed so far.
func BatchEncodes() int64 { return batchEncodes.Load() }

// EncodedBatch pairs a decoded batch with its binary wire payload, encoded
// at most once and shared — immutably — by everything downstream of a push:
// the journal appends these exact bytes, every sharing peer's outbox holds
// this same value, and binary poll responses splice the bytes verbatim.
// Batches that arrive over the binary transport are born with their payload
// (the decoder aliases the frame buffer, so the encode count is zero);
// batches from gob peers or in-process callers encode lazily on first use.
//
// The contract is immutability: neither the Batch nor the payload may be
// mutated after construction. The server's apply path copies extent/chunk
// data out rather than retaining it, and outbox compaction moves only the
// pointers, so sharing is safe.
type EncodedBatch struct {
	b    *Batch
	once sync.Once
	raw  []byte
}

// NewEncodedBatch wraps an in-process batch; the payload is encoded lazily
// on first Bytes call.
func NewEncodedBatch(b *Batch) *EncodedBatch { return &EncodedBatch{b: b} }

// NewEncodedBatchRaw wraps a batch together with its already-encoded binary
// payload (the transport's decode path: raw is the frame payload the batch's
// slices alias, retained so no re-encode is ever needed).
func NewEncodedBatchRaw(b *Batch, raw []byte) *EncodedBatch {
	return &EncodedBatch{b: b, raw: raw}
}

// Batch returns the decoded batch.
func (eb *EncodedBatch) Batch() *Batch { return eb.b }

// Bytes returns the batch's binary payload, encoding it on first call if the
// batch did not arrive with its wire bytes. The returned slice is shared and
// must not be modified.
func (eb *EncodedBatch) Bytes() []byte {
	eb.once.Do(func() {
		if eb.raw == nil {
			eb.raw = AppendBatch(nil, eb.b)
		}
	})
	return eb.raw
}

// frame buffer pool — scratch for encoding frames and reading responses.
// Buffers that end up retained (push frames the server keeps) are allocated
// outside the pool.

var framePool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

func getFrameBuf() *[]byte  { return framePool.Get().(*[]byte) }
func putFrameBuf(p *[]byte) { framePool.Put(p) }

// beginFrame appends the 8-byte frame header placeholder to buf.
func beginFrame(buf []byte) []byte {
	return append(buf, 0, 0, 0, 0, 0, 0, 0, 0)
}

// finishFrame fills in the header of a frame whose payload was appended
// after beginFrame. start is the offset beginFrame was called at.
func finishFrame(buf []byte, start int) error {
	n := len(buf) - start - frameHeaderSize
	if n < 1 || n > MaxFrameSize {
		return fmt.Errorf("wire: frame payload %d bytes out of range", n)
	}
	payload := buf[start+frameHeaderSize:]
	binary.LittleEndian.PutUint32(buf[start:], uint32(n))
	binary.LittleEndian.PutUint32(buf[start+4:], crc32.Checksum(payload, crcTable))
	return nil
}

// readFrame reads one frame from r, reusing scratch when it is big enough,
// and returns the verified payload. The caller owns the returned slice
// (which may be the grown scratch).
func readFrame(r io.Reader, scratch []byte) ([]byte, error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n < 1 || n > MaxFrameSize {
		return nil, fmt.Errorf("wire: frame length %d out of range [1, %d]", n, MaxFrameSize)
	}
	want := binary.LittleEndian.Uint32(hdr[4:])
	var payload []byte
	if uint32(cap(scratch)) >= n {
		payload = scratch[:n]
	} else {
		payload = make([]byte, n)
	}
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, fmt.Errorf("wire: truncated frame: %w", err)
	}
	if got := crc32.Checksum(payload, crcTable); got != want {
		return nil, fmt.Errorf("wire: frame checksum mismatch (got %08x, want %08x)", got, want)
	}
	return payload, nil
}

// --- encoding (append-style, no intermediate allocations) ---

func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendU64(b []byte, v uint64) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

func appendI64(b []byte, v int64) []byte { return appendU64(b, uint64(v)) }

func appendStr(b []byte, s string) []byte {
	b = appendU32(b, uint32(len(s)))
	return append(b, s...)
}

func appendBytes(b []byte, data []byte) []byte {
	if data == nil {
		return append(b, 0)
	}
	b = append(b, 1)
	b = appendU32(b, uint32(len(data)))
	return append(b, data...)
}

// appendSliceHdr writes the presence byte + count for a slice; isNil
// distinguishes nil from empty.
func appendSliceHdr(b []byte, n int, isNil bool) []byte {
	if isNil {
		return append(b, 0)
	}
	b = append(b, 1)
	return appendU32(b, uint32(n))
}

func appendVersion(b []byte, v version.ID) []byte {
	b = appendU32(b, v.Client)
	return appendU64(b, v.Count)
}

// AppendBatch appends b's binary payload to dst and returns the extended
// slice. This is the single place batch payloads are produced; each call
// increments the process-wide encode counter BatchEncodes reports.
func AppendBatch(dst []byte, b *Batch) []byte {
	batchEncodes.Add(1)
	dst = appendU32(dst, b.Client) // fixed offset 0: the server rebinds it in place
	dst = appendU64(dst, b.Seq)
	var flags byte
	if b.Atomic {
		flags |= 1
	}
	dst = append(dst, flags)
	dst = appendSliceHdr(dst, len(b.Nodes), b.Nodes == nil)
	for _, n := range b.Nodes {
		dst = appendNode(dst, n)
	}
	return dst
}

func appendNode(dst []byte, n *Node) []byte {
	dst = append(dst, byte(n.Kind))
	dst = appendStr(dst, n.Path)
	dst = appendStr(dst, n.Dst)
	dst = appendStr(dst, n.BasePath)
	dst = appendI64(dst, n.Size)
	dst = appendI64(dst, n.PayloadWire)
	dst = appendVersion(dst, n.Base)
	dst = appendVersion(dst, n.Ver)
	dst = appendSliceHdr(dst, len(n.Extents), n.Extents == nil)
	for _, e := range n.Extents {
		dst = appendI64(dst, e.Off)
		dst = appendBytes(dst, e.Data)
	}
	if n.Delta == nil {
		dst = append(dst, 0)
	} else {
		dst = append(dst, 1)
		dst = appendI64(dst, int64(n.Delta.BlockSize))
		dst = appendI64(dst, n.Delta.BaseLen)
		dst = appendI64(dst, n.Delta.TargetLen)
		dst = appendSliceHdr(dst, len(n.Delta.Ops), n.Delta.Ops == nil)
		for _, op := range n.Delta.Ops {
			dst = append(dst, byte(op.Kind))
			dst = appendI64(dst, op.Off)
			dst = appendI64(dst, op.Len)
			dst = appendBytes(dst, op.Data)
		}
	}
	dst = appendBytes(dst, n.Full)
	dst = appendSliceHdr(dst, len(n.Chunks), n.Chunks == nil)
	for _, c := range n.Chunks {
		dst = append(dst, c.Hash[:]...)
		dst = appendI64(dst, c.Len)
		dst = appendBytes(dst, c.Data)
	}
	return dst
}

func appendPushReply(dst []byte, r *PushReply) []byte {
	dst = appendSliceHdr(dst, len(r.Statuses), r.Statuses == nil)
	for _, s := range r.Statuses {
		dst = append(dst, byte(s))
	}
	dst = appendSliceHdr(dst, len(r.Conflicts), r.Conflicts == nil)
	for _, c := range r.Conflicts {
		dst = appendStr(dst, c)
	}
	var flags byte
	if r.Throttled {
		flags |= 1
	}
	dst = append(dst, flags)
	return appendStr(dst, r.Err)
}

func appendFetchReply(dst []byte, r *FetchReply) []byte {
	dst = appendBytes(dst, r.Content)
	dst = appendVersion(dst, r.Ver)
	var flags byte
	if r.Exists {
		flags |= 1
	}
	return append(dst, flags)
}

// appendRequest appends the binary payload for req. Push requests encode the
// batch inline (the client side's single encode).
func appendRequest(dst []byte, req *request) ([]byte, error) {
	dst = append(dst, msgRequest)
	switch req.Op {
	case "register":
		dst = append(dst, opRegister)
		dst = appendU32(dst, req.Group)
	case "attach":
		dst = append(dst, opAttach)
		dst = appendU32(dst, req.Client)
	case "push":
		if req.B == nil {
			return nil, fmt.Errorf("wire: push request without batch")
		}
		dst = append(dst, opPush)
		dst = AppendBatch(dst, req.B)
	case "fetch":
		dst = append(dst, opFetch)
		dst = appendStr(dst, req.Path)
	case "head":
		dst = append(dst, opHead)
		dst = appendStr(dst, req.Path)
	case "fetchrange":
		dst = append(dst, opFetchRange)
		dst = appendStr(dst, req.Path)
		dst = appendI64(dst, req.Off)
		dst = appendI64(dst, req.N)
	case "poll":
		dst = append(dst, opPoll)
	default:
		return nil, fmt.Errorf("wire: unknown request op %q", req.Op)
	}
	return dst, nil
}

// appendResponse appends the binary payload for resp. Poll responses splice
// the already-encoded batch payloads from ebs verbatim — the server never
// re-encodes a batch per poller.
func appendResponse(dst []byte, resp *response, ebs []*EncodedBatch) []byte {
	dst = append(dst, msgResponse)
	dst = appendStr(dst, resp.Err)
	dst = appendU32(dst, resp.Client)
	if resp.Push == nil {
		dst = append(dst, 0)
	} else {
		dst = append(dst, 1)
		dst = appendPushReply(dst, resp.Push)
	}
	if resp.Fetch == nil {
		dst = append(dst, 0)
	} else {
		dst = append(dst, 1)
		dst = appendFetchReply(dst, resp.Fetch)
	}
	dst = appendVersion(dst, resp.Ver)
	var flags byte
	if resp.Exists {
		flags |= 1
	}
	dst = append(dst, flags)
	dst = appendBytes(dst, resp.Data)
	switch {
	case ebs != nil:
		dst = appendSliceHdr(dst, len(ebs), false)
		for _, eb := range ebs {
			raw := eb.Bytes()
			dst = appendU32(dst, uint32(len(raw)))
			dst = append(dst, raw...)
		}
	case resp.Batches != nil:
		dst = appendSliceHdr(dst, len(resp.Batches), false)
		for _, b := range resp.Batches {
			// Length placeholder, then the payload, then patch the length.
			at := len(dst)
			dst = appendU32(dst, 0)
			dst = AppendBatch(dst, b)
			binary.LittleEndian.PutUint32(dst[at:], uint32(len(dst)-at-4))
		}
	default:
		dst = append(dst, 0)
	}
	return dst
}

// --- decoding (bounds-checked reader over one frame payload) ---

// reader walks a frame payload. The first decode error sticks; all later
// reads return zero values, so call sites stay linear and the error is
// checked once at the end.
type reader struct {
	data []byte
	off  int
	// copyData forces byte-slice fields to be copied out of the frame
	// buffer (client-side decodes, where the buffer is pooled). When false,
	// decoded slices alias data — the server retains the frame buffer in an
	// EncodedBatch, making the alias safe and the decode copy-free.
	copyData bool
	err      error
}

func (r *reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("wire: decode: "+format, args...)
	}
}

func (r *reader) remaining() int { return len(r.data) - r.off }

// take returns the next n bytes of the payload. n must already be
// non-negative; the remaining-length check here is the single bounds gate
// every field read funnels through.
func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	end := r.off + n
	if n < 0 || end < r.off || end > len(r.data) {
		r.fail("need %d bytes, %d remain", n, r.remaining())
		return nil
	}
	b := r.data[r.off:end]
	r.off = end
	return b
}

func (r *reader) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *reader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *reader) i64() int64 { return int64(r.u64()) }

func (r *reader) str() string {
	n := r.u32()
	if n > uint32(r.remaining()) {
		r.fail("string length %d exceeds %d remaining", n, r.remaining())
		return ""
	}
	return string(r.take(int(n)))
}

func (r *reader) bytes() []byte {
	if r.u8() == 0 {
		return nil
	}
	n := r.u32()
	if n > uint32(r.remaining()) {
		r.fail("byte-slice length %d exceeds %d remaining", n, r.remaining())
		return nil
	}
	b := r.take(int(n))
	if b == nil {
		return nil
	}
	if r.copyData {
		// make (not append to nil) so an empty slice stays non-nil: the
		// nil/empty distinction is part of the format.
		out := make([]byte, len(b))
		copy(out, b)
		return out
	}
	return b
}

// count reads a slice header and bounds the claimed element count by the
// bytes remaining divided by the minimum encoded element size, so a hostile
// count can never size an allocation past the frame it arrived in. Returns
// -1 for a nil slice.
func (r *reader) count(minElem int) int {
	if r.u8() == 0 {
		return -1
	}
	n := r.u32()
	if minElem < 1 {
		minElem = 1
	}
	if int64(n)*int64(minElem) > int64(r.remaining()) {
		r.fail("count %d×%d exceeds %d remaining", n, minElem, r.remaining())
		return -1
	}
	return int(n)
}

func (r *reader) version() version.ID {
	return version.ID{Client: r.u32(), Count: r.u64()}
}

// Minimum encoded sizes used to bound slice counts: the fewest bytes one
// element can occupy on the wire (empty strings, nil sub-slices).
const (
	minNodeSize   = 57 // kind + 3 empty strings + size + payloadWire + 2 versions + 4 nil markers
	minExtentSize = 9  // off + nil data
	minOpSize     = 18 // kind + off + len + nil data
	minChunkSize  = 25 // hash + len + nil data
	minBatchSize  = 14 // client + seq + flags + nil nodes marker
	minStringSize = 4
	minSubBatch   = 4 + minBatchSize
)

// DecodeBatchPayload decodes one batch payload (the format AppendBatch
// produces). When alias is true, byte-slice fields alias data — the caller
// must retain data unmodified for the batch's lifetime (the transport does,
// via EncodedBatch). When false, all byte slices are copied out.
func DecodeBatchPayload(data []byte, alias bool) (*Batch, error) {
	r := &reader{data: data, copyData: !alias}
	b := r.batch()
	if r.err != nil {
		return nil, r.err
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("wire: decode: %d trailing bytes after batch", r.remaining())
	}
	return b, nil
}

func (r *reader) batch() *Batch {
	b := &Batch{}
	b.Client = r.u32()
	b.Seq = r.u64()
	b.Atomic = r.u8()&1 != 0
	n := r.count(minNodeSize)
	if n >= 0 {
		if n > MaxBatchNodes {
			r.fail("batch of %d nodes exceeds %d", n, MaxBatchNodes)
			return b
		}
		b.Nodes = make([]*Node, 0, n)
		for i := 0; i < n && r.err == nil; i++ {
			b.Nodes = append(b.Nodes, r.node())
		}
	}
	return b
}

func (r *reader) node() *Node {
	n := &Node{}
	n.Kind = NodeKind(r.u8())
	n.Path = r.str()
	n.Dst = r.str()
	n.BasePath = r.str()
	n.Size = r.i64()
	n.PayloadWire = r.i64()
	n.Base = r.version()
	n.Ver = r.version()
	if c := r.count(minExtentSize); c >= 0 {
		n.Extents = make([]Extent, 0, c)
		for i := 0; i < c && r.err == nil; i++ {
			n.Extents = append(n.Extents, Extent{Off: r.i64(), Data: r.bytes()})
		}
	}
	if r.u8() != 0 {
		d := &rsync.Delta{}
		d.BlockSize = int(r.i64())
		d.BaseLen = r.i64()
		d.TargetLen = r.i64()
		if c := r.count(minOpSize); c >= 0 {
			d.Ops = make([]rsync.Op, 0, c)
			for i := 0; i < c && r.err == nil; i++ {
				d.Ops = append(d.Ops, rsync.Op{
					Kind: rsync.OpKind(r.u8()),
					Off:  r.i64(),
					Len:  r.i64(),
					Data: r.bytes(),
				})
			}
		}
		n.Delta = d
	}
	n.Full = r.bytes()
	if c := r.count(minChunkSize); c >= 0 {
		n.Chunks = make([]ChunkRef, 0, c)
		for i := 0; i < c && r.err == nil; i++ {
			var ch ChunkRef
			copy(ch.Hash[:], r.take(16))
			ch.Len = r.i64()
			ch.Data = r.bytes()
			n.Chunks = append(n.Chunks, ch)
		}
	}
	return n
}

func (r *reader) pushReply() *PushReply {
	p := &PushReply{}
	if c := r.count(1); c >= 0 {
		raw := r.take(c)
		p.Statuses = make([]ApplyStatus, c)
		for i := 0; i < c && raw != nil; i++ {
			p.Statuses[i] = ApplyStatus(raw[i])
		}
	}
	if c := r.count(minStringSize); c >= 0 {
		p.Conflicts = make([]string, 0, c)
		for i := 0; i < c && r.err == nil; i++ {
			p.Conflicts = append(p.Conflicts, r.str())
		}
	}
	p.Throttled = r.u8()&1 != 0
	p.Err = r.str()
	return p
}

func (r *reader) fetchReply() *FetchReply {
	f := &FetchReply{}
	f.Content = r.bytes()
	f.Ver = r.version()
	f.Exists = r.u8()&1 != 0
	return f
}

// decodeRequest parses a request frame payload into req. For push requests
// it returns the batch's raw payload sub-slice (aliasing payload), which the
// caller must retain; for all other ops it returns nil.
func decodeRequest(payload []byte, req *request) ([]byte, error) {
	r := &reader{data: payload}
	if k := r.u8(); k != msgRequest {
		return nil, fmt.Errorf("wire: decode: message kind %d, want request", k)
	}
	var batchRaw []byte
	switch op := r.u8(); op {
	case opRegister:
		req.Op = "register"
		req.Group = r.u32()
	case opAttach:
		req.Op = "attach"
		req.Client = r.u32()
	case opPush:
		req.Op = "push"
		if r.off < 0 || r.off > len(payload) {
			return nil, fmt.Errorf("wire: decode: batch offset out of range")
		}
		batchRaw = payload[r.off:]
		req.B = r.batch()
	case opFetch:
		req.Op = "fetch"
		req.Path = r.str()
	case opHead:
		req.Op = "head"
		req.Path = r.str()
	case opFetchRange:
		req.Op = "fetchrange"
		req.Path = r.str()
		req.Off = r.i64()
		req.N = r.i64()
	case opPoll:
		req.Op = "poll"
	default:
		return nil, fmt.Errorf("wire: decode: unknown request op %d", op)
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("wire: decode: %d trailing bytes after request", r.remaining())
	}
	return batchRaw, nil
}

// decodeResponse parses a response frame payload into resp. All byte slices
// are copied out of payload (the client pools its read buffer).
func decodeResponse(payload []byte, resp *response) error {
	r := &reader{data: payload, copyData: true}
	if k := r.u8(); k != msgResponse {
		return fmt.Errorf("wire: decode: message kind %d, want response", k)
	}
	resp.Err = r.str()
	resp.Client = r.u32()
	if r.u8() != 0 {
		resp.Push = r.pushReply()
	}
	if r.u8() != 0 {
		resp.Fetch = r.fetchReply()
	}
	resp.Ver = r.version()
	resp.Exists = r.u8()&1 != 0
	resp.Data = r.bytes()
	if c := r.count(minSubBatch); c >= 0 {
		resp.Batches = make([]*Batch, 0, c)
		for i := 0; i < c && r.err == nil; i++ {
			n := r.u32()
			sub := r.take(int(n))
			if sub == nil {
				break
			}
			b, err := DecodeBatchPayload(sub, false)
			if err != nil {
				r.fail("poll batch %d: %v", i, err)
				break
			}
			resp.Batches = append(resp.Batches, b)
		}
	}
	if r.err != nil {
		return r.err
	}
	if r.remaining() != 0 {
		return fmt.Errorf("wire: decode: %d trailing bytes after response", r.remaining())
	}
	return nil
}

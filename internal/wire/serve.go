package wire

import (
	"bufio"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// The bounded worker/accept model. Goroutine-per-connection costs a stack
// (and scheduler presence) per client, which is what caps a sync server in
// the low thousands of mostly-idle connections. Here a plain TCP connection
// costs only its file descriptor plus a small decoder state: connections
// park in an OS readiness poller (poller_linux.go) with no goroutine
// attached; when bytes arrive, the poller hands the connection to a fixed
// pool of workers, one of which runs the request loop until the connection
// goes quiet again and re-arms it. EPOLLONESHOT guarantees a connection is
// owned by at most one worker at a time, preserving the strict
// request/response framing of the gob stream.
//
// Connections the poller cannot multiplex — TLS and fault-injection
// wrappers (their net.Conn hides the descriptor and carries decryption
// state a readiness event knows nothing about), or platforms without a
// poller — fall back to the historical dedicated-goroutine loop. The stats
// record which path each connection took, so load harnesses can assert the
// bound.

// ServeStats exposes the transport's connection and request counters. All
// methods are safe for concurrent use.
type ServeStats struct {
	conns    atomic.Int64
	peak     atomic.Int64
	polled   atomic.Int64
	fallback atomic.Int64
	requests atomic.Int64
}

// Conns returns the number of currently open connections.
func (s *ServeStats) Conns() int64 { return s.conns.Load() }

// PeakConns returns the highest concurrent connection count observed.
func (s *ServeStats) PeakConns() int64 { return s.peak.Load() }

// Polled returns how many admitted connections were multiplexed onto the
// readiness poller (no dedicated goroutine).
func (s *ServeStats) Polled() int64 { return s.polled.Load() }

// Fallback returns how many admitted connections required a dedicated
// goroutine (TLS/wrapped conns, or no poller on this platform).
func (s *ServeStats) Fallback() int64 { return s.fallback.Load() }

// Requests returns the total number of requests served.
func (s *ServeStats) Requests() int64 { return s.requests.Load() }

// defaultServeWorkers sizes the worker pool when the config leaves it zero:
// enough parallelism to keep every core busy and ride out short blocking
// (journal group-commit waits), while staying O(cores), not O(clients).
func defaultServeWorkers() int {
	n := 4 * runtime.GOMAXPROCS(0)
	if n < 16 {
		n = 16
	}
	return n
}

// serveState is one ServeWith invocation's shared machinery: the worker
// pool, the readiness poller, and the lifecycle that shuts both down once
// the listener is closed and the last connection drains.
type serveState struct {
	backend Backend
	cfg     ServeConfig
	stats   *ServeStats
	poller  *connPoller // nil → every connection falls back
	work    chan *polledConn
	quit    chan struct{}

	lisClosed atomic.Bool
	stopOnce  sync.Once
}

func newServeState(backend Backend, cfg ServeConfig) *serveState {
	workers := cfg.Workers
	if workers <= 0 {
		workers = defaultServeWorkers()
	}
	stats := cfg.Stats
	if stats == nil {
		stats = &ServeStats{}
	}
	s := &serveState{
		backend: backend,
		cfg:     cfg,
		stats:   stats,
		work:    make(chan *polledConn, 4*workers),
		quit:    make(chan struct{}),
	}
	if p, err := newConnPoller(); err == nil {
		s.poller = p
		for i := 0; i < workers; i++ {
			go s.worker()
		}
		go s.dispatchLoop()
		if cfg.IdleTimeout > 0 {
			go s.idleSweeper()
		}
	}
	return s
}

// admit routes one accepted connection to the poller or the fallback path.
func (s *serveState) admit(conn net.Conn) {
	n := s.stats.conns.Add(1)
	for {
		p := s.stats.peak.Load()
		if n <= p || s.stats.peak.CompareAndSwap(p, n) {
			break
		}
	}
	if s.poller != nil {
		if tc, ok := conn.(*net.TCPConn); ok {
			if err := s.admitPolled(tc); err == nil {
				s.stats.polled.Add(1)
				return
			}
		}
	}
	s.stats.fallback.Add(1)
	go func() {
		serveConn(conn, s.backend, s.cfg, s.stats)
		s.connClosed()
	}()
}

// admitPolled registers a TCP connection with the readiness poller.
func (s *serveState) admitPolled(tc *net.TCPConn) error {
	raw, err := tc.SyscallConn()
	if err != nil {
		return err
	}
	var fd int32 = -1
	if err := raw.Control(func(f uintptr) { fd = int32(f) }); err != nil {
		return err
	}
	br := bufio.NewReader(tc)
	pc := &polledConn{
		srv:  s,
		conn: tc,
		fd:   fd,
		cc:   newConnCodec(tc, br, s.cfg.ForceGob),
	}
	pc.lastActive.Store(time.Now().UnixNano())
	return s.poller.add(pc)
}

// worker serves readiness events until the pool shuts down. Each event is
// one connection with bytes pending; the worker owns it exclusively
// (EPOLLONESHOT) until it re-arms.
func (s *serveState) worker() {
	for {
		select {
		case pc := <-s.work:
			pc.serveReady()
		case <-s.quit:
			return
		}
	}
}

// dispatchLoop drains the poller and hands ready connections to the
// workers. A full work channel applies backpressure to the poller (events
// are one-shot, so nothing re-fires while waiting).
func (s *serveState) dispatchLoop() {
	for {
		ready, err := s.poller.wait()
		if err != nil {
			return
		}
		for _, pc := range ready {
			select {
			case s.work <- pc:
			case <-s.quit:
				return
			}
		}
	}
}

// idleSweeper enforces ServeConfig.IdleTimeout for parked polled
// connections (fallback connections enforce it inline with a read
// deadline).
func (s *serveState) idleSweeper() {
	period := s.cfg.IdleTimeout / 2
	if period < time.Millisecond {
		period = time.Millisecond
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-s.quit:
			return
		case <-t.C:
			cutoff := time.Now().Add(-s.cfg.IdleTimeout).UnixNano()
			for _, pc := range s.poller.snapshot() {
				if !pc.busy.Load() && pc.lastActive.Load() < cutoff {
					pc.close()
				}
			}
		}
	}
}

// listenerClosed records that no further connections will be admitted and
// shuts the pool down once the connection count drains to zero.
func (s *serveState) listenerClosed() {
	s.lisClosed.Store(true)
	if s.stats.conns.Load() == 0 {
		s.stop()
	}
}

// connClosed is the single exit point for admitted connections.
func (s *serveState) connClosed() {
	if s.stats.conns.Add(-1) == 0 && s.lisClosed.Load() {
		s.stop()
	}
}

func (s *serveState) stop() {
	s.stopOnce.Do(func() {
		close(s.quit)
		if s.poller != nil {
			s.poller.close()
		}
	})
}

// polledConn is one multiplexed connection: its descriptor is registered
// with the poller; its codec state (negotiated mode, buffered reader,
// resumable decoder) lives here between wakeups.
type polledConn struct {
	srv   *serveState
	conn  *net.TCPConn
	fd    int32
	token uint32 // poller registration identity (guards against fd reuse)
	cc    *connCodec

	client     uint32 // bound identity; only the owning worker touches it
	busy       atomic.Bool
	lastActive atomic.Int64 // unix nanos; idle sweeping
	closeOnce  sync.Once
}

// serveReady runs on a pool worker after a readiness event: serve requests
// until the connection goes quiet, then re-arm it. The decoder's buffer is
// drained before re-arming — bytes already read out of the kernel will
// never produce another readiness event.
func (pc *polledConn) serveReady() {
	pc.busy.Store(true)
	defer pc.busy.Store(false)
	cfg := pc.srv.cfg
	if cfg.WriteTimeout > 0 {
		// Readiness promised at least one byte, not a whole request: bound
		// the read so a trickling or stalled client cannot pin this worker.
		pc.conn.SetReadDeadline(time.Now().Add(cfg.WriteTimeout))
	}
	for {
		if err := serveOne(pc.cc, pc.srv.backend, cfg, pc.srv.stats, &pc.client); err != nil {
			pc.close()
			return
		}
		if pc.cc.br.Buffered() == 0 {
			break
		}
	}
	pc.conn.SetReadDeadline(time.Time{})
	pc.lastActive.Store(time.Now().UnixNano())
	if err := pc.srv.poller.rearm(pc); err != nil {
		pc.close()
	}
}

// close deregisters the connection from the poller (while the descriptor is
// still valid) and closes it. Idempotent: the poller, a worker, and the
// idle sweeper can race to close.
func (pc *polledConn) close() {
	pc.closeOnce.Do(func() {
		pc.srv.poller.remove(pc)
		pc.conn.Close()
		pc.srv.connClosed()
	})
}

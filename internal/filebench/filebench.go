// Package filebench reproduces the microbenchmark personalities the paper
// uses for Table III — fileserver, varmail and webserver — together with a
// simple disk-time model, so throughput can be reported deterministically in
// MB/s the way filebench does on a real disk.
//
// Simulated time for a run is
//
//	T = disk time (sequential bandwidth + per-file seeks + fsyncs)
//	  + CPU time (the engine's metered nano-ticks / CPURate)
//
// and throughput is total transferred bytes / T. On a real disk the
// native/FUSE gap hides inside IO latency (the paper notes FUSE's doubled
// response latency is covered by multi-threaded IO); what distinguishes the
// configurations is the extra CPU work each layer performs, which is exactly
// what the meter captures.
package filebench

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/vfs"
)

// DiskModel parameterizes the simulated disk (calibrated to a commodity
// SATA disk like the paper's testbed).
type DiskModel struct {
	WriteBW   float64       // bytes/second sequential write
	ReadBW    float64       // bytes/second sequential read
	SeekTime  time.Duration // per file switch
	FsyncTime time.Duration // per fsync
	// CPURate converts metered nano-ticks to seconds of CPU.
	CPURate float64
}

// DefaultDiskModel matches a 2010s-era server SATA disk with write-back
// caching (calibrated so the Native column of Table III lands near the
// paper's numbers: fileserver ~116 MB/s, varmail ~5.5 MB/s, webserver
// ~19 MB/s).
func DefaultDiskModel() DiskModel {
	return DiskModel{
		WriteBW:   200e6,
		ReadBW:    210e6,
		SeekTime:  500 * time.Microsecond,
		FsyncTime: 2500 * time.Microsecond,
		CPURate:   7.5e8,
	}
}

// Account accrues simulated disk time and transferred bytes while driving a
// vfs.FS. OnOp, when set, runs after every operation (the Table III harness
// uses it to tick the engine with simulated time).
type Account struct {
	FS    vfs.FS
	Model DiskModel
	OnOp  func(elapsed time.Duration)

	bytes    int64
	disk     time.Duration
	lastPath string
}

// Bytes returns total bytes read plus written.
func (a *Account) Bytes() int64 { return a.bytes }

// DiskTime returns accrued simulated disk time.
func (a *Account) DiskTime() time.Duration { return a.disk }

func (a *Account) charge(path string, d time.Duration) {
	if path != a.lastPath {
		a.disk += a.Model.SeekTime
		a.lastPath = path
	}
	a.disk += d
	if a.OnOp != nil {
		a.OnOp(a.disk)
	}
}

// Create creates a file.
func (a *Account) Create(path string) error {
	a.charge(path, a.Model.SeekTime) // metadata update
	return a.FS.Create(path)
}

// Write writes data at off.
func (a *Account) Write(path string, off int64, data []byte) error {
	a.charge(path, time.Duration(float64(len(data))/a.Model.WriteBW*float64(time.Second)))
	a.bytes += int64(len(data))
	return a.FS.WriteAt(path, off, data)
}

// Read reads the whole file.
func (a *Account) Read(path string) error {
	st, err := a.FS.Stat(path)
	if err != nil {
		return err
	}
	a.charge(path, time.Duration(float64(st.Size)/a.Model.ReadBW*float64(time.Second)))
	a.bytes += st.Size
	_, err = a.FS.ReadFile(path)
	return err
}

// Fsync syncs the file.
func (a *Account) Fsync(path string) error {
	a.disk += a.Model.FsyncTime
	if a.OnOp != nil {
		a.OnOp(a.disk)
	}
	return a.FS.Fsync(path)
}

// Close closes the file.
func (a *Account) Close(path string) error {
	a.charge(path, 0)
	return a.FS.Close(path)
}

// Delete unlinks the file.
func (a *Account) Delete(path string) error {
	a.charge(path, a.Model.SeekTime)
	return a.FS.Unlink(path)
}

// Personality is one filebench workload.
type Personality struct {
	Name string
	// Setup prepares the file set outside the measured window.
	Setup func(fs vfs.FS, rng *rand.Rand) error
	// Run drives the accounted operations.
	Run func(a *Account, rng *rand.Rand) error
}

// Fileserver emulates the filebench fileserver personality: a directory of
// files receiving whole-file writes, appends, reads and deletes.
func Fileserver(iterations int) Personality {
	const nFiles = 64
	const meanSize = 128 << 10
	return Personality{
		Name: "Fileserver",
		Setup: func(fs vfs.FS, rng *rand.Rand) error {
			if err := fs.Mkdir("fsrv"); err != nil {
				return err
			}
			buf := make([]byte, meanSize)
			for i := 0; i < nFiles; i++ {
				p := fmt.Sprintf("fsrv/f%03d", i)
				if err := fs.Create(p); err != nil {
					return err
				}
				rng.Read(buf)
				if err := fs.WriteAt(p, 0, buf); err != nil {
					return err
				}
			}
			return nil
		},
		Run: func(a *Account, rng *rand.Rand) error {
			whole := make([]byte, meanSize)
			appendBuf := make([]byte, 16<<10)
			for i := 0; i < iterations; i++ {
				p := fmt.Sprintf("fsrv/f%03d", rng.Intn(nFiles))
				switch rng.Intn(4) {
				case 0: // whole-file rewrite
					rng.Read(whole)
					if err := a.Create(p); err != nil {
						return err
					}
					if err := a.Write(p, 0, whole); err != nil {
						return err
					}
					if err := a.Close(p); err != nil {
						return err
					}
				case 1: // append
					st, err := a.FS.Stat(p)
					if err != nil {
						return err
					}
					rng.Read(appendBuf)
					if err := a.Write(p, st.Size, appendBuf); err != nil {
						return err
					}
					if err := a.Close(p); err != nil {
						return err
					}
				case 2: // read whole file
					if err := a.Read(p); err != nil {
						return err
					}
				case 3: // delete + recreate
					if err := a.Delete(p); err != nil {
						return err
					}
					rng.Read(whole)
					if err := a.Create(p); err != nil {
						return err
					}
					if err := a.Write(p, 0, whole); err != nil {
						return err
					}
					if err := a.Close(p); err != nil {
						return err
					}
				}
			}
			return nil
		},
	}
}

// Varmail emulates the varmail personality: small mail files with fsync
// after every delivery — fsync-bound, as on a real disk.
func Varmail(iterations int) Personality {
	const mailSize = 16 << 10
	return Personality{
		Name: "Varmail",
		Setup: func(fs vfs.FS, rng *rand.Rand) error {
			return fs.Mkdir("mail")
		},
		Run: func(a *Account, rng *rand.Rand) error {
			msg := make([]byte, mailSize)
			for i := 0; i < iterations; i++ {
				p := fmt.Sprintf("mail/msg%05d", i)
				rng.Read(msg)
				if err := a.Create(p); err != nil {
					return err
				}
				if err := a.Write(p, 0, msg); err != nil {
					return err
				}
				if err := a.Fsync(p); err != nil {
					return err
				}
				if err := a.Close(p); err != nil {
					return err
				}
				if i > 0 && i%2 == 0 {
					old := fmt.Sprintf("mail/msg%05d", rng.Intn(i))
					if err := a.Read(old); err == nil {
						// re-read then delete roughly half the mailbox over time
						if rng.Intn(2) == 0 {
							_ = a.Delete(old)
						}
					}
				}
			}
			return nil
		},
	}
}

// Webserver emulates the webserver personality: read-mostly traffic over a
// preloaded document tree plus a small appended access log.
func Webserver(iterations int) Personality {
	const nDocs = 256
	const docSize = 16 << 10
	return Personality{
		Name: "Webserver",
		Setup: func(fs vfs.FS, rng *rand.Rand) error {
			if err := fs.Mkdir("htdocs"); err != nil {
				return err
			}
			buf := make([]byte, docSize)
			for i := 0; i < nDocs; i++ {
				p := fmt.Sprintf("htdocs/doc%04d", i)
				if err := fs.Create(p); err != nil {
					return err
				}
				rng.Read(buf)
				if err := fs.WriteAt(p, 0, buf); err != nil {
					return err
				}
			}
			if err := fs.Create("access.log"); err != nil {
				return err
			}
			return nil
		},
		Run: func(a *Account, rng *rand.Rand) error {
			logLine := make([]byte, 512)
			var logOff int64
			for i := 0; i < iterations; i++ {
				if err := a.Read(fmt.Sprintf("htdocs/doc%04d", rng.Intn(nDocs))); err != nil {
					return err
				}
				if i%10 == 9 {
					rng.Read(logLine)
					if err := a.Write("access.log", logOff, logLine); err != nil {
						return err
					}
					logOff += int64(len(logLine))
				}
			}
			return nil
		},
	}
}

// Result is one Table III cell.
type Result struct {
	Personality string
	Config      string
	Bytes       int64
	SimTime     time.Duration
	MBps        float64
}

// Measure computes throughput from accounted disk time plus engine CPU time.
func Measure(p Personality, cfg string, a *Account, cpuNanoTicks int64) Result {
	cpu := time.Duration(float64(cpuNanoTicks) / a.Model.CPURate * float64(time.Second))
	sim := a.DiskTime() + cpu
	mbps := 0.0
	if sim > 0 {
		mbps = float64(a.Bytes()) / sim.Seconds() / (1 << 20)
	}
	return Result{Personality: p.Name, Config: cfg, Bytes: a.Bytes(), SimTime: sim, MBps: mbps}
}

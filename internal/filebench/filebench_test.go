package filebench

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/vfs"
)

func runPersonality(t *testing.T, p Personality) *Account {
	t.Helper()
	fs := vfs.NewMemFS()
	rng := rand.New(rand.NewSource(1))
	if p.Setup != nil {
		if err := p.Setup(fs, rng); err != nil {
			t.Fatalf("%s setup: %v", p.Name, err)
		}
	}
	a := &Account{FS: fs, Model: DefaultDiskModel()}
	if err := p.Run(a, rng); err != nil {
		t.Fatalf("%s run: %v", p.Name, err)
	}
	return a
}

func TestPersonalitiesRun(t *testing.T) {
	for _, p := range []Personality{Fileserver(100), Varmail(100), Webserver(100)} {
		a := runPersonality(t, p)
		if a.Bytes() == 0 {
			t.Errorf("%s transferred no bytes", p.Name)
		}
		if a.DiskTime() == 0 {
			t.Errorf("%s accrued no disk time", p.Name)
		}
	}
}

func TestVarmailIsFsyncBound(t *testing.T) {
	// Varmail's per-byte time must be far worse than fileserver's: small
	// files plus an fsync each.
	fsrv := runPersonality(t, Fileserver(200))
	mail := runPersonality(t, Varmail(200))

	fsrvRate := float64(fsrv.Bytes()) / fsrv.DiskTime().Seconds()
	mailRate := float64(mail.Bytes()) / mail.DiskTime().Seconds()
	if mailRate > fsrvRate/3 {
		t.Errorf("varmail %.0f B/s vs fileserver %.0f B/s: fsync cost missing",
			mailRate, fsrvRate)
	}
}

func TestWebserverReadMostly(t *testing.T) {
	fs := vfs.NewMemFS()
	rng := rand.New(rand.NewSource(2))
	p := Webserver(100)
	if err := p.Setup(fs, rng); err != nil {
		t.Fatal(err)
	}
	written := 0
	counting := vfs.NewObserverFS(fs)
	counting.Subscribe(vfs.ObserverFunc(func(op vfs.Op) {
		if op.Kind == vfs.OpWrite {
			written += len(op.Data)
		}
	}))
	a := &Account{FS: counting, Model: DefaultDiskModel()}
	if err := p.Run(a, rng); err != nil {
		t.Fatal(err)
	}
	if int64(written) > a.Bytes()/10 {
		t.Errorf("webserver wrote %d of %d bytes; should be read-mostly", written, a.Bytes())
	}
}

func TestAccountChargesSeeksOnFileSwitch(t *testing.T) {
	fs := vfs.NewMemFS()
	m := DefaultDiskModel()
	a := &Account{FS: fs, Model: m}
	a.Create("a")
	a.Write("a", 0, make([]byte, 10))
	sameFile := a.DiskTime()
	a.Write("a", 10, make([]byte, 10)) // no seek: same file
	if a.DiskTime()-sameFile >= m.SeekTime {
		t.Fatal("same-file write charged a seek")
	}
	before := a.DiskTime()
	a.Create("b") // file switch: seek
	if a.DiskTime()-before < m.SeekTime {
		t.Fatal("file switch did not charge a seek")
	}
}

func TestOnOpHookObservesElapsedTime(t *testing.T) {
	fs := vfs.NewMemFS()
	var calls int
	var last time.Duration
	a := &Account{FS: fs, Model: DefaultDiskModel(), OnOp: func(e time.Duration) {
		calls++
		if e < last {
			t.Fatal("elapsed time went backwards")
		}
		last = e
	}}
	a.Create("f")
	a.Write("f", 0, make([]byte, 1000))
	a.Fsync("f")
	a.Close("f")
	if calls != 4 {
		t.Fatalf("OnOp called %d times, want 4", calls)
	}
}

func TestMeasureAddsCPUTime(t *testing.T) {
	fs := vfs.NewMemFS()
	a := &Account{FS: fs, Model: DefaultDiskModel()}
	a.Create("f")
	a.Write("f", 0, make([]byte, 1<<20))

	p := Personality{Name: "X"}
	noCPU := Measure(p, "native", a, 0)
	withCPU := Measure(p, "engine", a, int64(a.Model.CPURate)) // 1 s of CPU
	if withCPU.SimTime-noCPU.SimTime < time.Second {
		t.Fatalf("CPU time not added: %v vs %v", withCPU.SimTime, noCPU.SimTime)
	}
	if noCPU.MBps <= withCPU.MBps {
		t.Fatal("more CPU should mean lower throughput")
	}
}

func TestDefaultModelCalibration(t *testing.T) {
	// The native numbers must land in the paper's order of magnitude:
	// fileserver ~100 MB/s, varmail single digits, webserver tens.
	get := func(p Personality) float64 {
		a := runPersonality(t, p)
		return Measure(p, "native", a, 0).MBps
	}
	if mbps := get(Fileserver(1000)); mbps < 40 || mbps > 250 {
		t.Errorf("fileserver native = %.1f MB/s, want ~100", mbps)
	}
	if mbps := get(Varmail(1000)); mbps < 1 || mbps > 20 {
		t.Errorf("varmail native = %.1f MB/s, want single digits", mbps)
	}
	if mbps := get(Webserver(1000)); mbps < 5 || mbps > 60 {
		t.Errorf("webserver native = %.1f MB/s, want tens", mbps)
	}
}

package faultinject

// Network fault injection. The storage faults above corrupt state *beneath*
// the sync client; these corrupt the transport *beside* it: connection drops,
// read/write stalls, partial writes, byte corruption, and scriptable
// partitions. Faults are decided by a seeded PRNG behind one mutex, so a
// given seed yields the same fault decision sequence — with a single
// sequential client the whole schedule is deterministic, and with concurrent
// connections the decision stream still is (only its assignment to
// connections varies with interleaving).
//
// Injection sits below TLS: wrap the raw listener, then layer tls.NewListener
// on top. Injected byte corruption then surfaces at the peer as a record MAC
// failure (a broken connection) rather than silently poisoned payloads —
// exactly the integrity property the real transport relies on.

import (
	"errors"
	"math/rand"
	"net"
	"sync"
	"time"
)

// Injected fault sentinels. They surface as ordinary connection errors to
// the layers above (TLS, gob), but tests can identify them with errors.Is.
var (
	ErrInjectedDrop    = errors.New("faultinject: injected connection drop")
	ErrInjectedPartial = errors.New("faultinject: injected partial write")
	ErrPartitioned     = errors.New("faultinject: network partitioned")
)

// NetFaultConfig parameterizes a NetPlan. All probabilities are per
// connection operation (one Read or Write call) and may be zero.
type NetFaultConfig struct {
	// Seed drives the fault schedule; the same seed replays the same
	// decision sequence.
	Seed int64
	// DropProb closes the connection mid-operation.
	DropProb float64
	// StallProb delays the operation by StallDur before letting it through.
	StallProb float64
	// StallDur is the injected stall length (default 1ms).
	StallDur time.Duration
	// CorruptProb flips one bit of the transferred bytes (silently on the
	// wire; TLS above the injection point detects it as a broken record).
	CorruptProb float64
	// PartialProb writes only a prefix of the buffer, then drops the
	// connection — the ambiguous-failure signature.
	PartialProb float64
	// PartitionProb starts a partition lasting PartitionOps operations:
	// every operation during the partition fails and its connection drops.
	PartitionProb float64
	// PartitionOps is the partition length in operations (default 20).
	PartitionOps int
}

// NetFaultStats counts injected faults.
type NetFaultStats struct {
	Drops          int64 `json:"drops"`
	Stalls         int64 `json:"stalls"`
	Corruptions    int64 `json:"corruptions"`
	PartialWrites  int64 `json:"partial_writes"`
	Partitions     int64 `json:"partitions"`
	PartitionedOps int64 `json:"partitioned_ops"`
}

// Total returns the number of injected faults of all kinds.
func (s NetFaultStats) Total() int64 {
	return s.Drops + s.Stalls + s.Corruptions + s.PartialWrites + s.PartitionedOps
}

// NetPlan is a deterministic, seeded network fault schedule shared by every
// connection it wraps. Safe for concurrent use.
type NetPlan struct {
	mu     sync.Mutex
	rng    *rand.Rand
	cfg    NetFaultConfig
	healed bool
	// partitionLeft > 0 means the network is partitioned for that many more
	// operations.
	partitionLeft int
	stats         NetFaultStats
}

// NewNetPlan builds a plan from cfg, applying defaults.
func NewNetPlan(cfg NetFaultConfig) *NetPlan {
	if cfg.StallDur <= 0 {
		cfg.StallDur = time.Millisecond
	}
	if cfg.PartitionOps <= 0 {
		cfg.PartitionOps = 20
	}
	return &NetPlan{rng: rand.New(rand.NewSource(cfg.Seed)), cfg: cfg}
}

// Heal permanently stops all fault injection (the chaos harness calls it
// before the final drain, so every run ends with a reachable network).
func (p *NetPlan) Heal() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.healed = true
	p.partitionLeft = 0
}

// PartitionFor scripts a partition: the next n connection operations fail
// and drop their connections, then the network heals on its own.
func (p *NetPlan) PartitionFor(n int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.healed || n <= 0 {
		return
	}
	p.partitionLeft = n
	p.stats.Partitions++
}

// Partitioned reports whether a partition is currently in force.
func (p *NetPlan) Partitioned() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.partitionLeft > 0
}

// Stats returns a snapshot of the injected-fault counters.
func (p *NetPlan) Stats() NetFaultStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// verdict is one fault decision.
type verdict int

const (
	vNone verdict = iota
	vDrop
	vStall
	vCorrupt
	vPartial
	vPartition
)

// decide rolls the next fault decision. write selects the write-only faults.
func (p *NetPlan) decide(write bool) (verdict, time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.healed {
		return vNone, 0
	}
	if p.partitionLeft > 0 {
		p.partitionLeft--
		p.stats.PartitionedOps++
		return vPartition, 0
	}
	r := p.rng.Float64()
	switch {
	case r < p.cfg.DropProb:
		p.stats.Drops++
		return vDrop, 0
	case r < p.cfg.DropProb+p.cfg.StallProb:
		p.stats.Stalls++
		return vStall, p.cfg.StallDur
	case r < p.cfg.DropProb+p.cfg.StallProb+p.cfg.CorruptProb:
		p.stats.Corruptions++
		return vCorrupt, 0
	case r < p.cfg.DropProb+p.cfg.StallProb+p.cfg.CorruptProb+p.cfg.PartialProb:
		// The partial window only applies to writes; on a read it must be a
		// no-op rather than falling through into the partition case below.
		if !write {
			return vNone, 0
		}
		p.stats.PartialWrites++
		return vPartial, 0
	case r < p.cfg.DropProb+p.cfg.StallProb+p.cfg.CorruptProb+p.cfg.PartialProb+p.cfg.PartitionProb:
		p.partitionLeft = p.cfg.PartitionOps
		p.stats.Partitions++
		p.stats.PartitionedOps++
		return vPartition, 0
	}
	return vNone, 0
}

// flipBit flips the low bit of a PRNG-chosen byte.
func (p *NetPlan) flipBit(b []byte) {
	if len(b) == 0 {
		return
	}
	p.mu.Lock()
	i := p.rng.Intn(len(b))
	p.mu.Unlock()
	b[i] ^= 1
}

// Conn wraps c with this plan's fault schedule.
func (p *NetPlan) Conn(c net.Conn) net.Conn { return &faultyConn{Conn: c, plan: p} }

// Listener wraps lis so every accepted connection carries this plan's fault
// schedule. Layer tls.NewListener on top to get corruption detection.
func (p *NetPlan) Listener(lis net.Listener) net.Listener {
	return &faultyListener{Listener: lis, plan: p}
}

// faultyListener injects faults into accepted connections.
type faultyListener struct {
	net.Listener
	plan *NetPlan
}

func (l *faultyListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.plan.Conn(c), nil
}

// faultyConn injects faults into one connection. Both directions of the
// socket pass through it, so wrapping the server side faults the full path.
type faultyConn struct {
	net.Conn
	plan *NetPlan
}

func (c *faultyConn) Read(b []byte) (int, error) {
	switch v, stall := c.plan.decide(false); v {
	case vDrop:
		c.Conn.Close()
		return 0, ErrInjectedDrop
	case vPartition:
		c.Conn.Close()
		return 0, ErrPartitioned
	case vStall:
		time.Sleep(stall)
	case vCorrupt:
		n, err := c.Conn.Read(b)
		if n > 0 {
			c.plan.flipBit(b[:n])
		}
		return n, err
	}
	return c.Conn.Read(b)
}

func (c *faultyConn) Write(b []byte) (int, error) {
	switch v, stall := c.plan.decide(true); v {
	case vDrop:
		c.Conn.Close()
		return 0, ErrInjectedDrop
	case vPartition:
		c.Conn.Close()
		return 0, ErrPartitioned
	case vStall:
		time.Sleep(stall)
	case vCorrupt:
		// Corrupt a copy: the caller's buffer must stay untouched.
		dup := append([]byte(nil), b...)
		c.plan.flipBit(dup)
		return c.Conn.Write(dup)
	case vPartial:
		n, err := c.Conn.Write(b[:len(b)/2])
		c.Conn.Close()
		if err == nil {
			err = ErrInjectedPartial
		}
		return n, err
	}
	return c.Conn.Write(b)
}

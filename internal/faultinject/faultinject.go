// Package faultinject provides the fault primitives for the Table IV
// reliability experiments, mirroring the paper's methodology: the paper
// locates a file's physical blocks with debugfs and writes the raw device to
// corrupt data beneath the file system; here the equivalent is mutating the
// MemFS backing store beneath the interception layer, so no sync engine sees
// an operation.
package faultinject

import "repro/internal/vfs"

// FlipBit flips one bit of path at byte offset off, bypassing interception —
// silent media corruption.
func FlipBit(m *vfs.MemFS, path string, off int64) error {
	return m.FlipBit(path, off)
}

// TornWrite overwrites a range of path bypassing interception — the
// signature of ordered-journaling crash inconsistency, where data blocks
// changed but metadata (and any bookkeeping layered above) did not.
func TornWrite(m *vfs.MemFS, path string, off int64, data []byte) error {
	return m.BypassWrite(path, off, data)
}

// Crasher is anything whose volatile state can be dropped to simulate a
// power cut (the DeltaCFS engine implements it).
type Crasher interface {
	DropVolatileState()
}

// Crash drops the target's volatile state.
func Crash(c Crasher) { c.DropVolatileState() }

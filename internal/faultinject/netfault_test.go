package faultinject

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// pipePair returns a wrapped client side and the raw server side of an
// in-memory connection.
func pipePair(p *NetPlan) (wrapped, peer net.Conn) {
	a, b := net.Pipe()
	return p.Conn(a), b
}

func TestNetPlanNoFaultsPassesThrough(t *testing.T) {
	p := NewNetPlan(NetFaultConfig{Seed: 1})
	w, peer := pipePair(p)
	defer w.Close()
	defer peer.Close()
	go func() {
		buf := make([]byte, 5)
		io.ReadFull(peer, buf)
		peer.Write(buf)
	}()
	if _, err := w.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := io.ReadFull(w, buf); err != nil || !bytes.Equal(buf, []byte("hello")) {
		t.Fatalf("echo = %q, %v", buf, err)
	}
	if p.Stats().Total() != 0 {
		t.Fatalf("faults injected with zero probabilities: %+v", p.Stats())
	}
}

func TestNetPlanDropClosesConn(t *testing.T) {
	p := NewNetPlan(NetFaultConfig{Seed: 1, DropProb: 1})
	w, peer := pipePair(p)
	defer peer.Close()
	if _, err := w.Write([]byte("x")); !errors.Is(err, ErrInjectedDrop) {
		t.Fatalf("Write err = %v, want ErrInjectedDrop", err)
	}
	if p.Stats().Drops == 0 {
		t.Fatal("drop not counted")
	}
}

func TestNetPlanPartialWrite(t *testing.T) {
	p := NewNetPlan(NetFaultConfig{Seed: 1, PartialProb: 1})
	w, peer := pipePair(p)
	defer peer.Close()
	got := make(chan int, 1)
	go func() {
		buf := make([]byte, 10)
		n, _ := peer.Read(buf)
		got <- n
	}()
	n, err := w.Write([]byte("0123456789"))
	if !errors.Is(err, ErrInjectedPartial) {
		t.Fatalf("Write err = %v, want ErrInjectedPartial", err)
	}
	if n != 5 {
		t.Fatalf("partial write wrote %d bytes, want 5", n)
	}
	if peerGot := <-got; peerGot > 5 {
		t.Fatalf("peer received %d bytes past the partial cut", peerGot)
	}
}

func TestNetPlanCorruptionFlipsOneBit(t *testing.T) {
	p := NewNetPlan(NetFaultConfig{Seed: 1, CorruptProb: 1})
	w, peer := pipePair(p)
	defer w.Close()
	defer peer.Close()
	orig := []byte("payload-payload")
	go w.Write(append([]byte(nil), orig...))
	buf := make([]byte, len(orig))
	if _, err := io.ReadFull(peer, buf); err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := range buf {
		diff += bits(buf[i] ^ orig[i])
	}
	if diff != 1 {
		t.Fatalf("%d bits differ, want exactly 1", diff)
	}
}

func bits(b byte) int {
	n := 0
	for ; b != 0; b >>= 1 {
		n += int(b & 1)
	}
	return n
}

func TestNetPlanPartitionForThenHeal(t *testing.T) {
	p := NewNetPlan(NetFaultConfig{Seed: 1})
	p.PartitionFor(2)
	if !p.Partitioned() {
		t.Fatal("not partitioned after PartitionFor")
	}
	for i := 0; i < 2; i++ {
		w, peer := pipePair(p)
		if _, err := w.Write([]byte("x")); !errors.Is(err, ErrPartitioned) {
			t.Fatalf("op %d err = %v, want ErrPartitioned", i, err)
		}
		peer.Close()
	}
	if p.Partitioned() {
		t.Fatal("partition did not heal after budget exhausted")
	}
	// Post-partition ops pass.
	w, peer := pipePair(p)
	defer w.Close()
	defer peer.Close()
	go io.Copy(io.Discard, peer)
	if _, err := w.Write([]byte("x")); err != nil {
		t.Fatalf("post-heal write: %v", err)
	}
	if s := p.Stats(); s.Partitions != 1 || s.PartitionedOps != 2 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestNetPlanHealStopsEverything(t *testing.T) {
	p := NewNetPlan(NetFaultConfig{Seed: 1, DropProb: 1, PartitionProb: 1})
	p.Heal()
	w, peer := pipePair(p)
	defer w.Close()
	defer peer.Close()
	go io.Copy(io.Discard, peer)
	for i := 0; i < 10; i++ {
		if _, err := w.Write([]byte("x")); err != nil {
			t.Fatalf("write after Heal: %v", err)
		}
	}
}

func TestNetPlanDeterministicSchedule(t *testing.T) {
	run := func() []verdict {
		p := NewNetPlan(NetFaultConfig{Seed: 42, DropProb: 0.2, StallProb: 0.2,
			CorruptProb: 0.2, PartialProb: 0.2, StallDur: time.Microsecond})
		var out []verdict
		for i := 0; i < 64; i++ {
			v, _ := p.decide(i%2 == 0)
			out = append(out, v)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs across identical seeds: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestFaultyListenerWrapsAccepted(t *testing.T) {
	p := NewNetPlan(NetFaultConfig{Seed: 1, DropProb: 1})
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lis := p.Listener(raw)
	defer lis.Close()
	done := make(chan error, 1)
	go func() {
		c, err := lis.Accept()
		if err != nil {
			done <- err
			return
		}
		defer c.Close()
		_, err = c.Write([]byte("x"))
		done <- err
	}()
	c, err := net.Dial("tcp", lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := <-done; !errors.Is(err, ErrInjectedDrop) {
		t.Fatalf("accepted conn write err = %v, want ErrInjectedDrop", err)
	}
}

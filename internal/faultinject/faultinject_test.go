package faultinject

import (
	"bytes"
	"testing"

	"repro/internal/vfs"
)

func TestFlipBit(t *testing.T) {
	m := vfs.NewMemFS()
	m.Create("f")
	m.WriteAt("f", 0, []byte{0x00, 0xFF})
	if err := FlipBit(m, "f", 1); err != nil {
		t.Fatal(err)
	}
	got, _ := m.ReadFile("f")
	if got[0] != 0x00 || got[1] != 0xFE {
		t.Fatalf("content = %v", got)
	}
	if err := FlipBit(m, "f", 99); err == nil {
		t.Fatal("FlipBit past EOF succeeded")
	}
	if err := FlipBit(m, "missing", 0); err == nil {
		t.Fatal("FlipBit on missing file succeeded")
	}
}

func TestTornWrite(t *testing.T) {
	m := vfs.NewMemFS()
	m.Create("f")
	m.WriteAt("f", 0, []byte("ordered journaling"))
	if err := TornWrite(m, "f", 8, []byte("XXXX")); err != nil {
		t.Fatal(err)
	}
	got, _ := m.ReadFile("f")
	if !bytes.Equal(got, []byte("ordered XXXXnaling")) {
		t.Fatalf("content = %q", got)
	}
	// Torn writes never extend the file (they model in-place block damage).
	if err := TornWrite(m, "f", 15, []byte("too-long")); err == nil {
		t.Fatal("TornWrite past EOF succeeded")
	}
}

type fakeCrasher struct{ dropped bool }

func (f *fakeCrasher) DropVolatileState() { f.dropped = true }

func TestCrash(t *testing.T) {
	f := &fakeCrasher{}
	Crash(f)
	if !f.dropped {
		t.Fatal("Crash did not drop volatile state")
	}
}

package kvstore

import (
	"errors"
	"testing"

	"repro/internal/storagefault"
)

// TestFsyncFailurePoisonsWAL is the fsyncgate regression test: after a
// failed WAL fsync, no later mutation or Sync may report durable — the
// pre-fix behavior (return the error once, then carry on as if nothing
// happened) silently lost the un-synced records.
func TestFsyncFailurePoisonsWAL(t *testing.T) {
	disk := storagefault.NewSimDisk()
	inj := storagefault.NewInjector(disk, storagefault.Plan{Seed: 1, FailSyncAt: 1})
	s, err := OpenWith("db", Options{FS: inj})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put([]byte("k1"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); !errors.Is(err, storagefault.ErrSyncFailed) {
		t.Fatalf("Sync = %v, want the injected fsync failure", err)
	}

	// The regression: a post-failure commit must not report durable.
	if err := s.Sync(); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("Sync after failed fsync = %v, want ErrPoisoned — a nil here claims durability for data the kernel already dropped", err)
	}
	if err := s.Put([]byte("k2"), []byte("v2")); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("Put after failed fsync = %v, want ErrPoisoned", err)
	}
	if err := s.Compact(); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("Compact after failed fsync = %v, want ErrPoisoned", err)
	}
	if s.Poisoned() == nil {
		t.Fatal("Poisoned() = nil on a poisoned store")
	}

	// Reads still serve: degraded mode is read-only, not dead.
	if _, ok, err := s.Get([]byte("k1")); err != nil || !ok {
		t.Fatalf("Get on poisoned store = %v, ok=%v; reads must keep working", err, ok)
	}

	if err := s.Close(); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("Close = %v, want ErrPoisoned (close cannot claim a clean final fsync)", err)
	}

	// Crash and reopen on the same disk: only what was actually fsynced
	// survives. k1 was never durable (its only fsync failed), so an
	// honest recovery must NOT present it.
	disk.Crash()
	s2, err := OpenWith("db", Options{FS: disk})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, ok, _ := s2.Get([]byte("k1")); ok {
		t.Fatal("k1 resurrected after crash even though its fsync failed")
	}
}

// TestPoisonAfterCoveredCommit: mutations that an earlier successful fsync
// covered stay recoverable, but Sync still fails once poisoned — "was it
// durable?" must never be answered yes by a store that has lost track.
func TestPoisonAfterCoveredCommit(t *testing.T) {
	disk := storagefault.NewSimDisk()
	inj := storagefault.NewInjector(disk, storagefault.Plan{Seed: 2, FailSyncAt: 2})
	s, err := OpenWith("db", Options{FS: inj})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put([]byte("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil { // fsync #1 succeeds
		t.Fatal(err)
	}
	if err := s.Put([]byte("b"), []byte("2")); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); !errors.Is(err, storagefault.ErrSyncFailed) { // fsync #2 fails
		t.Fatalf("Sync = %v", err)
	}
	// Even a Sync targeting only already-covered mutations must fail now.
	if err := s.Sync(); err == nil {
		t.Fatal("Sync reported clean on a poisoned store")
	}
	s.Close()

	disk.Crash()
	s2, err := OpenWith("db", Options{FS: disk})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if v, ok, _ := s2.Get([]byte("a")); !ok || string(v) != "1" {
		t.Fatalf("fsynced record lost: %q, %v", v, ok)
	}
	if _, ok, _ := s2.Get([]byte("b")); ok {
		t.Fatal("un-fsynced record survived the crash")
	}
}

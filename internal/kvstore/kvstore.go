// Package kvstore is a small embedded, crash-safe key-value store — the
// stand-in for LevelDB, which the paper uses to persist DeltaCFS's block
// checksums (§III-E). It keeps the full map in memory and persists through a
// CRC-protected write-ahead log plus an atomically-replaced snapshot:
//
//	put/delete  →  append WAL record  →  apply to memtable
//	Compact()   →  write snapshot.tmp →  rename over snapshot → truncate WAL
//	Open()      →  load snapshot, replay WAL (stopping at the first torn record)
//
// That recovery rule — ignore a trailing torn record instead of failing — is
// what makes the store safe across the power-cut experiments in Table IV.
package kvstore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/storagefault"
)

const (
	walName      = "wal.log"
	snapshotName = "snapshot.db"

	opPut    = byte(1)
	opDelete = byte(2)

	// autoCompactWAL is the WAL size beyond which a mutation triggers a
	// snapshot + truncate, bounding recovery time and disk usage for
	// long-running clients.
	autoCompactWAL = 64 << 20
)

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("kvstore: store is closed")

// ErrPoisoned is returned by every mutation and commit after a WAL flush or
// fsync has failed. Per fsyncgate, a failed fsync means the kernel dropped
// the dirty pages and marked them clean: a retried fsync that reports
// success has silently lost data. The store therefore fails permanently —
// reads still work, but nothing can claim durability again until the store
// is reopened (which replays only what actually reached disk).
var ErrPoisoned = errors.New("kvstore: wal poisoned by an earlier sync failure")

// Store is an embedded key-value store. All methods are safe for concurrent
// use. A Store opened with an empty directory is memory-only (no
// persistence), which the tests and some benchmarks use.
//
// Durability uses group commit: mutations append to the buffered WAL and
// return; the actual flush+fsync happens in Sync, where concurrent callers
// coalesce onto one fsync (leader/follower), and optionally on a periodic
// commit window (Options.CommitWindow) so checksum-store persistence costs
// one fsync per window instead of one per mutation.
type Store struct {
	mu     sync.RWMutex
	table  map[string][]byte
	dir    string
	fs     storagefault.FS
	wal    storagefault.File
	walBuf *bufio.Writer
	walLen int64
	closed bool

	// poisonVal holds the first WAL flush/fsync failure (an error). Once
	// set, every mutation and commit fails with ErrPoisoned — the
	// fsyncgate contract (see ErrPoisoned).
	poisonVal atomic.Value

	// Group commit. mutSeq counts WAL appends (under mu); syncedSeq is the
	// highest mutSeq known durable, advanced only by the fsync leader
	// (under commitMu). A Sync whose target is already covered returns
	// without touching the file — that is the coalescing.
	commitMu  sync.Mutex
	mutSeq    uint64 // under mu
	syncedSeq uint64 // under commitMu
	fsyncs    atomic.Int64
	coalesced atomic.Int64

	// Background committer (CommitWindow > 0).
	window     time.Duration
	commitKick chan struct{}
	commitQuit chan struct{}
	commitDone chan struct{}
}

// DefaultCommitWindow is the group-commit window production callers
// (cmd/deltacfs-server's push journal) use unless overridden. Chosen from
// the benchall commit-window sweep (BENCH_6.json): on the write-heavy
// loadsweep workload a 5ms window collapses per-push fsyncs by more than an
// order of magnitude at a durability lag bounded well below client RPC
// timeouts; wider windows bought little additional coalescing.
const DefaultCommitWindow = 5 * time.Millisecond

// Options tunes a store opened with OpenWith.
type Options struct {
	// CommitWindow, when positive, starts a background committer that
	// fsyncs the WAL at most once per window while mutations are pending.
	// Mutations return immediately; durability lags by at most one window
	// (plus the fsync itself) without any caller ever paying a per-op
	// fsync. Explicit Sync still works and still coalesces.
	CommitWindow time.Duration
	// FS is the file-IO layer the store writes through. nil means the
	// real file system (storagefault.OS); tests substitute a fault
	// injector or the SimDisk crash model.
	FS storagefault.FS
}

// Open opens (or creates) a store in dir. If dir is empty, the store is
// memory-only.
func Open(dir string) (*Store, error) { return OpenWith(dir, Options{}) }

// OpenWith opens (or creates) a store in dir with explicit options.
func OpenWith(dir string, o Options) (*Store, error) {
	fsys := o.FS
	if fsys == nil {
		fsys = storagefault.OS
	}
	s := &Store{table: make(map[string][]byte), dir: dir, fs: fsys}
	if dir == "" {
		return s, nil
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("kvstore: create dir: %w", err)
	}
	if err := s.loadSnapshot(); err != nil {
		return nil, err
	}
	if err := s.replayWAL(); err != nil {
		return nil, err
	}
	f, err := fsys.OpenFile(filepath.Join(dir, walName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("kvstore: open wal: %w", err)
	}
	// Make the WAL's directory entry durable before the first commit:
	// fsyncing a freshly created file persists its blocks but not its
	// name, and a crash that forgets the name forgets the log with it.
	if err := syncDir(fsys, dir); err != nil {
		f.Close()
		return nil, fmt.Errorf("kvstore: sync dir: %w", err)
	}
	size, err := f.Size()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("kvstore: stat wal: %w", err)
	}
	s.wal = f
	s.walBuf = bufio.NewWriter(f)
	s.walLen = size
	if o.CommitWindow > 0 {
		s.window = o.CommitWindow
		s.commitKick = make(chan struct{}, 1)
		s.commitQuit = make(chan struct{})
		s.commitDone = make(chan struct{})
		go s.committer(s.commitQuit)
	}
	return s, nil
}

// committer is the background group-commit loop: each pending-mutation kick
// starts (at most) one window timer, and the fsync at its expiry covers
// every mutation that accumulated meanwhile — one fsync per window, not per
// mutation.
func (s *Store) committer(quit <-chan struct{}) {
	timer := time.NewTimer(s.window)
	if !timer.Stop() {
		<-timer.C
	}
	armed := false
	for {
		select {
		case <-quit:
			// Close flushes and fsyncs the tail itself, so a pending
			// window can simply be abandoned.
			timer.Stop()
			close(s.commitDone)
			return
		case <-s.commitKick:
			if !armed {
				timer.Reset(s.window)
				armed = true
			}
		case <-timer.C:
			armed = false
			// Best-effort background flush: the next explicit Sync (or the
			// next window) retries and surfaces the error to a caller.
			//deltavet:allow errsync background committer retries next window
			s.Sync()
		}
	}
}

// kickCommit notifies the background committer that mutations are pending.
// Non-blocking: a full channel means a kick is already queued.
func (s *Store) kickCommit() {
	if s.commitKick == nil {
		return
	}
	select {
	case s.commitKick <- struct{}{}:
	default:
	}
}

func (s *Store) loadSnapshot() error {
	f, err := storagefault.Open(s.fs, filepath.Join(s.dir, snapshotName))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("kvstore: open snapshot: %w", err)
	}
	defer f.Close()
	r := bufio.NewReader(f)
	for {
		rec, err := readRecord(r)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("kvstore: corrupt snapshot: %w", err)
		}
		if rec.op != opPut {
			return fmt.Errorf("kvstore: snapshot contains op %d", rec.op)
		}
		s.table[string(rec.key)] = rec.val
	}
}

func (s *Store) replayWAL() error {
	f, err := storagefault.Open(s.fs, filepath.Join(s.dir, walName))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("kvstore: open wal: %w", err)
	}
	defer f.Close()
	r := bufio.NewReader(f)
	for {
		rec, err := readRecord(r)
		if err != nil {
			// EOF or a torn/corrupt trailing record: recovery keeps
			// everything up to this point and discards the rest.
			return nil
		}
		switch rec.op {
		case opPut:
			s.table[string(rec.key)] = rec.val
		case opDelete:
			delete(s.table, string(rec.key))
		}
	}
}

type record struct {
	op  byte
	key []byte
	val []byte
}

// record layout: crc32(4) op(1) klen(4) vlen(4) key val
func writeRecord(w io.Writer, rec record) error {
	hdr := make([]byte, 13)
	hdr[4] = rec.op
	binary.BigEndian.PutUint32(hdr[5:9], uint32(len(rec.key)))
	binary.BigEndian.PutUint32(hdr[9:13], uint32(len(rec.val)))
	crc := crc32.NewIEEE()
	crc.Write(hdr[4:])
	crc.Write(rec.key)
	crc.Write(rec.val)
	binary.BigEndian.PutUint32(hdr[:4], crc.Sum32())
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	if _, err := w.Write(rec.key); err != nil {
		return err
	}
	_, err := w.Write(rec.val)
	return err
}

const maxRecordSide = 64 << 20 // sanity bound on key/value length

func readRecord(r io.Reader) (record, error) {
	hdr := make([]byte, 13)
	if _, err := io.ReadFull(r, hdr); err != nil {
		if err == io.ErrUnexpectedEOF {
			return record{}, io.ErrUnexpectedEOF
		}
		return record{}, io.EOF
	}
	klen := binary.BigEndian.Uint32(hdr[5:9])
	vlen := binary.BigEndian.Uint32(hdr[9:13])
	if klen > maxRecordSide || vlen > maxRecordSide {
		return record{}, errors.New("kvstore: implausible record length")
	}
	body := make([]byte, int(klen)+int(vlen))
	if _, err := io.ReadFull(r, body); err != nil {
		return record{}, io.ErrUnexpectedEOF
	}
	crc := crc32.NewIEEE()
	crc.Write(hdr[4:])
	crc.Write(body)
	if crc.Sum32() != binary.BigEndian.Uint32(hdr[:4]) {
		return record{}, errors.New("kvstore: record CRC mismatch")
	}
	return record{op: hdr[4], key: body[:klen:klen], val: body[klen:]}, nil
}

// Get returns the value stored under key. The returned slice must not be
// modified by the caller.
func (s *Store) Get(key []byte) ([]byte, bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, false, ErrClosed
	}
	v, ok := s.table[string(key)]
	return v, ok, nil
}

// Put stores val under key, appending to the WAL first when persistent.
func (s *Store) Put(key, val []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if err := s.poisonedErr(); err != nil {
		return err
	}
	valCopy := append([]byte(nil), val...)
	if s.walBuf != nil {
		// CHA fans writeRecord's io.Writer.Write out to every Writer in the
		// program, including net-conn wrappers; walBuf is a local bufio.Writer
		// over the WAL file, so no network I/O happens under s.mu.
		//deltavet:allow blockunderlock walBuf is a local bufio.Writer, the CHA io.Writer fanout is spurious
		if err := writeRecord(s.walBuf, record{op: opPut, key: key, val: valCopy}); err != nil {
			// The bufio state (and possibly the file tail) is now
			// unknowable; nothing after this point may claim durability.
			s.poison(err)
			return fmt.Errorf("kvstore: wal append: %w", err)
		}
		s.walLen += int64(13 + len(key) + len(valCopy))
		s.mutSeq++
		s.kickCommit()
	}
	s.table[string(key)] = valCopy
	return s.maybeCompactLocked()
}

// Delete removes key. Deleting an absent key is not an error.
func (s *Store) Delete(key []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if err := s.poisonedErr(); err != nil {
		return err
	}
	if s.walBuf != nil {
		// Same spurious CHA io.Writer fanout as Put: walBuf is file-backed.
		//deltavet:allow blockunderlock walBuf is a local bufio.Writer, the CHA io.Writer fanout is spurious
		if err := writeRecord(s.walBuf, record{op: opDelete, key: key}); err != nil {
			s.poison(err)
			return fmt.Errorf("kvstore: wal append: %w", err)
		}
		s.walLen += int64(13 + len(key))
		s.mutSeq++
		s.kickCommit()
	}
	delete(s.table, string(key))
	return s.maybeCompactLocked()
}

// Sync makes every mutation that returned before the call durable. Concurrent
// Syncs group-commit: the first caller (leader) flushes and fsyncs the WAL
// once, covering every mutation appended up to that point; a caller whose
// mutations are already covered returns without touching the file.
func (s *Store) Sync() error {
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return ErrClosed
	}
	if s.walBuf == nil {
		s.mu.RUnlock()
		return nil
	}
	target := s.mutSeq
	s.mu.RUnlock()
	return s.commitUpTo(target)
}

// commitUpTo makes mutations 1..target durable, coalescing with any commit
// that already covered them. The fsync happens outside s.mu, so mutations
// keep appending to the buffered WAL while the disk write is in flight.
func (s *Store) commitUpTo(target uint64) error {
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	if err := s.poisonedErr(); err != nil {
		// A poisoned store must never report a commit durable again, even
		// for mutations an earlier (successful) fsync already covered:
		// callers use Sync() == nil as "everything I wrote is on disk".
		return err
	}
	if s.syncedSeq >= target {
		s.coalesced.Add(1)
		return nil
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	covered := s.mutSeq
	err := s.walBuf.Flush()
	s.mu.Unlock()
	if err != nil {
		s.poison(err)
		return err
	}
	if err := s.wal.Sync(); err != nil {
		// fsyncgate: the failed fsync dropped the dirty pages. Retrying
		// against the same file could report clean while the data is
		// gone, so the store is poisoned instead of returning the error
		// once and carrying on.
		s.poison(err)
		return err
	}
	s.fsyncs.Add(1)
	s.syncedSeq = covered
	return nil
}

func (s *Store) syncLocked() error {
	if s.walBuf == nil {
		return nil
	}
	if err := s.poisonedErr(); err != nil {
		return err
	}
	if err := s.walBuf.Flush(); err != nil {
		s.poison(err)
		return err
	}
	//deltavet:allow blockunderlock checkpoint fsync under s.mu is the durability contract
	if err := s.wal.Sync(); err != nil {
		s.poison(err)
		return err
	}
	s.fsyncs.Add(1)
	return nil
}

// poison records the first WAL failure; later calls keep the original.
func (s *Store) poison(err error) { s.poisonVal.CompareAndSwap(nil, err) }

// Poisoned returns the WAL failure that poisoned the store, or nil.
func (s *Store) Poisoned() error {
	if v := s.poisonVal.Load(); v != nil {
		return v.(error)
	}
	return nil
}

// poisonedErr wraps the sticky failure as an ErrPoisoned operation error.
func (s *Store) poisonedErr() error {
	if cause := s.Poisoned(); cause != nil {
		return fmt.Errorf("%w: %v", ErrPoisoned, cause)
	}
	return nil
}

// FsyncCount returns the number of WAL fsyncs performed since Open.
func (s *Store) FsyncCount() int64 { return s.fsyncs.Load() }

// SyncCoalesced returns the number of Sync calls absorbed without an fsync
// because an earlier or concurrent commit already covered their mutations.
func (s *Store) SyncCoalesced() int64 { return s.coalesced.Load() }

// Len returns the number of keys.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.table)
}

// WALSize returns the current WAL length in bytes (0 for memory-only).
func (s *Store) WALSize() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.walLen
}

// Range calls fn for every key with the given prefix, in sorted key order.
// Iteration stops if fn returns false. The key and value slices must not be
// retained or modified.
func (s *Store) Range(prefix []byte, fn func(key, val []byte) bool) error {
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return ErrClosed
	}
	keys := make([]string, 0, len(s.table))
	for k := range s.table {
		if strings.HasPrefix(k, string(prefix)) {
			keys = append(keys, k)
		}
	}
	s.mu.RUnlock()
	sort.Strings(keys)
	for _, k := range keys {
		s.mu.RLock()
		v, ok := s.table[k]
		s.mu.RUnlock()
		if !ok {
			continue
		}
		if !fn([]byte(k), v) {
			return nil
		}
	}
	return nil
}

// maybeCompactLocked compacts when the WAL has outgrown its budget.
func (s *Store) maybeCompactLocked() error {
	if s.walLen < autoCompactWAL {
		return nil
	}
	return s.compactLocked()
}

// Compact writes the full table to a fresh snapshot (atomically replacing
// the old one) and truncates the WAL.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.compactLocked()
}

func (s *Store) compactLocked() error {
	if s.dir == "" {
		return nil
	}
	if err := s.syncLocked(); err != nil {
		return err
	}
	tmp := filepath.Join(s.dir, snapshotName+".tmp")
	f, err := storagefault.Create(s.fs, tmp)
	if err != nil {
		return fmt.Errorf("kvstore: create snapshot: %w", err)
	}
	w := bufio.NewWriter(f)
	for k, v := range s.table {
		// w is the local snapshot-file bufio.Writer; the CHA fanout of
		// io.Writer.Write to net-conn wrappers is spurious here too.
		//deltavet:allow blockunderlock w is the local snapshot bufio.Writer, the CHA io.Writer fanout is spurious
		if err := writeRecord(w, record{op: opPut, key: []byte(k), val: v}); err != nil {
			f.Close()
			return fmt.Errorf("kvstore: write snapshot: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	//deltavet:allow blockunderlock compaction quiesces the store, fsync under the lock is the point
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := s.fs.Rename(tmp, filepath.Join(s.dir, snapshotName)); err != nil {
		return fmt.Errorf("kvstore: install snapshot: %w", err)
	}
	// The rename is not durable until the directory is fsynced; truncating
	// the WAL before that opens a crash window where the old snapshot is
	// back but the log describing everything since is gone.
	//deltavet:allow blockunderlock compaction quiesces the store, the directory fsync under the lock is the point
	if err := syncDir(s.fs, s.dir); err != nil {
		return fmt.Errorf("kvstore: sync dir: %w", err)
	}
	if err := s.wal.Truncate(0); err != nil {
		return fmt.Errorf("kvstore: truncate wal: %w", err)
	}
	if _, err := s.wal.Seek(0, io.SeekStart); err != nil {
		return err
	}
	s.walBuf.Reset(s.wal)
	s.walLen = 0
	return nil
}

// syncDirHook, when non-nil, replaces the directory fsync. Crash-ordering
// tests intercept it to observe (and fault-inject) the
// rename -> dir-fsync -> WAL-truncate sequence.
var syncDirHook func(dir string) error

// syncDir makes a completed rename (or created name) in dir durable. POSIX
// only guarantees a new name survives a crash once the parent directory's
// metadata is fsynced.
func syncDir(fsys storagefault.FS, dir string) error {
	if syncDirHook != nil {
		return syncDirHook(dir)
	}
	return fsys.SyncDir(dir)
}

// Close flushes and closes the store. Further operations return ErrClosed.
func (s *Store) Close() error {
	// Stop the background committer before taking any lock for good: its
	// commit path needs commitMu and mu, so waiting for it under either
	// would deadlock. Nil-ing commitQuit under mu makes Close idempotent.
	s.mu.Lock()
	quit := s.commitQuit
	s.commitQuit = nil
	s.mu.Unlock()
	if quit != nil {
		close(quit)
		<-s.commitDone
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.wal == nil {
		return nil
	}
	if err := s.poisonedErr(); err != nil {
		// No final flush/fsync: the WAL cannot report durable again. The
		// handle still closes so the caller can reopen and replay what
		// actually reached disk.
		s.wal.Close()
		return err
	}
	if err := s.walBuf.Flush(); err != nil {
		s.poison(err)
		s.wal.Close()
		return err
	}
	//deltavet:allow blockunderlock final fsync on Close quiesces the store by design
	if err := s.wal.Sync(); err != nil {
		s.poison(err)
		s.wal.Close()
		return err
	}
	s.fsyncs.Add(1)
	return s.wal.Close()
}

package kvstore

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestCompactDirSyncOrdering locks in the crash-ordering fix deltavet's
// crashsafe analyzer found: during compaction the directory fsync must
// happen after the snapshot rename and before the WAL truncate.
func TestCompactDirSyncOrdering(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 10; i++ {
		if err := s.Put([]byte(fmt.Sprintf("k%d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}

	calls := 0
	syncDirHook = func(d string) error {
		calls++
		if d != dir {
			t.Errorf("directory fsync on %q, want %q", d, dir)
		}
		if _, err := os.Stat(filepath.Join(dir, snapshotName)); err != nil {
			t.Errorf("directory fsync before the snapshot rename: %v", err)
		}
		st, err := os.Stat(filepath.Join(dir, walName))
		if err != nil {
			t.Fatalf("stat wal: %v", err)
		}
		if st.Size() == 0 {
			t.Error("WAL truncated before the directory fsync: a crash here loses the rename and the log together")
		}
		return nil
	}
	defer func() { syncDirHook = nil }()
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("Compact never fsynced the directory")
	}
}

// TestCompactCrashBeforeDirSyncReplays simulates a crash in the window the
// fix closes: compaction dies at the directory fsync — after the snapshot
// rename, before the WAL truncate. The WAL must be intact and a reopened
// store must replay to the same contents.
func TestCompactCrashBeforeDirSyncReplays(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{}
	for i := 0; i < 10; i++ {
		k, v := fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i)
		want[k] = v
		if err := s.Put([]byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
	}
	boom := errors.New("injected crash at directory fsync")
	syncDirHook = func(string) error { return boom }
	if err := s.Compact(); !errors.Is(err, boom) {
		t.Fatalf("Compact error = %v, want the injected crash", err)
	}
	syncDirHook = nil

	// The failed compaction must not have truncated the WAL.
	st, err := os.Stat(filepath.Join(dir, walName))
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() == 0 {
		t.Fatal("WAL truncated even though the rename was never made durable")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for k, v := range want {
		got, ok, err := s2.Get([]byte(k))
		if err != nil || !ok || string(got) != v {
			t.Fatalf("after replay, Get(%q) = %q, %v, %v; want %q", k, got, ok, err, v)
		}
	}
}

package kvstore

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// A Sync whose mutations were already made durable by an earlier Sync must
// coalesce: no second fsync.
func TestSyncCoalescesWhenAlreadyDurable(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if err := s.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := s.FsyncCount(); got != 1 {
		t.Fatalf("after first Sync: FsyncCount = %d, want 1", got)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := s.FsyncCount(); got != 1 {
		t.Fatalf("after redundant Sync: FsyncCount = %d, want 1 (coalesced)", got)
	}
	if got := s.SyncCoalesced(); got != 1 {
		t.Fatalf("SyncCoalesced = %d, want 1", got)
	}

	// A new mutation moves the target past syncedSeq again.
	if err := s.Put([]byte("k"), []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := s.FsyncCount(); got != 2 {
		t.Fatalf("after mutation + Sync: FsyncCount = %d, want 2", got)
	}
}

// Every concurrent Sync either leads an fsync or coalesces onto one; none is
// silently dropped, and the store stays consistent under the race detector.
func TestConcurrentSyncGroupCommit(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const writers = 8
	const perWriter = 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				k := []byte(fmt.Sprintf("w%d-%d", w, i))
				if err := s.Put(k, []byte("x")); err != nil {
					t.Error(err)
					return
				}
				if err := s.Sync(); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	total := int64(writers * perWriter)
	fsyncs, coalesced := s.FsyncCount(), s.SyncCoalesced()
	if fsyncs+coalesced != total {
		t.Fatalf("fsyncs(%d) + coalesced(%d) = %d, want %d (every Sync accounted)",
			fsyncs, coalesced, fsyncs+coalesced, total)
	}
	if fsyncs < 1 || fsyncs > total {
		t.Fatalf("FsyncCount = %d out of range [1,%d]", fsyncs, total)
	}
	if s.Len() != writers*perWriter {
		t.Fatalf("Len = %d, want %d", s.Len(), writers*perWriter)
	}
}

// With a commit window, mutations become durable without any caller ever
// invoking Sync, and the data survives a reopen.
func TestCommitWindowFlushesInBackground(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenWith(dir, Options{CommitWindow: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := s.Put([]byte(fmt.Sprintf("k%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.FsyncCount() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background committer never fsynced")
		}
		time.Sleep(time.Millisecond)
	}
	// The window's fsync covered every mutation, so an explicit Sync now
	// coalesces (no mutations appended since).
	before := s.FsyncCount()
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := s.FsyncCount(); got != before {
		t.Fatalf("Sync after window commit fsynced again: %d -> %d", before, got)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	reopened, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	for i := 0; i < 10; i++ {
		if _, ok, err := reopened.Get([]byte(fmt.Sprintf("k%d", i))); err != nil || !ok {
			t.Fatalf("key k%d lost across reopen (ok=%v, err=%v)", i, ok, err)
		}
	}
}

// Close with an active committer must not deadlock or double-close, and must
// persist the buffered tail itself.
func TestCloseStopsCommitter(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenWith(dir, Options{CommitWindow: time.Hour}) // window never fires
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put([]byte("tail"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	reopened, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	if _, ok, _ := reopened.Get([]byte("tail")); !ok {
		t.Fatal("tail mutation lost: Close did not flush the buffered WAL")
	}
}

// Memory-only stores accept Sync as a no-op and never start a committer.
func TestSyncMemoryOnly(t *testing.T) {
	s, err := OpenWith("", Options{CommitWindow: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := s.FsyncCount(); got != 0 {
		t.Fatalf("memory-only FsyncCount = %d, want 0", got)
	}
}

package kvstore

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"
)

func openTemp(t *testing.T) (*Store, string) {
	t.Helper()
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s, dir
}

func TestPutGetDelete(t *testing.T) {
	s, _ := openTemp(t)
	defer s.Close()

	if _, ok, _ := s.Get([]byte("k")); ok {
		t.Fatal("Get on empty store found a key")
	}
	if err := s.Put([]byte("k"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := s.Get([]byte("k"))
	if err != nil || !ok || !bytes.Equal(v, []byte("v1")) {
		t.Fatalf("Get = %q, %v, %v", v, ok, err)
	}
	if err := s.Put([]byte("k"), []byte("v2")); err != nil {
		t.Fatal(err)
	}
	v, _, _ = s.Get([]byte("k"))
	if !bytes.Equal(v, []byte("v2")) {
		t.Fatalf("overwrite: Get = %q, want v2", v)
	}
	if err := s.Delete([]byte("k")); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Get([]byte("k")); ok {
		t.Fatal("key survived Delete")
	}
	if err := s.Delete([]byte("absent")); err != nil {
		t.Fatalf("Delete of absent key: %v", err)
	}
}

func TestValueIsolation(t *testing.T) {
	s, _ := openTemp(t)
	defer s.Close()
	val := []byte("mutate-me")
	if err := s.Put([]byte("k"), val); err != nil {
		t.Fatal(err)
	}
	val[0] = 'X' // caller mutates its buffer after Put
	got, _, _ := s.Get([]byte("k"))
	if !bytes.Equal(got, []byte("mutate-me")) {
		t.Fatalf("stored value aliased caller buffer: %q", got)
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	s, dir := openTemp(t)
	for i := 0; i < 100; i++ {
		k := []byte(fmt.Sprintf("key-%03d", i))
		if err := s.Put(k, []byte(fmt.Sprintf("val-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Delete([]byte("key-050")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 99 {
		t.Fatalf("reopened Len = %d, want 99", s2.Len())
	}
	v, ok, _ := s2.Get([]byte("key-042"))
	if !ok || !bytes.Equal(v, []byte("val-42")) {
		t.Fatalf("key-042 = %q, %v after reopen", v, ok)
	}
	if _, ok, _ := s2.Get([]byte("key-050")); ok {
		t.Fatal("deleted key resurrected after reopen")
	}
}

func TestCompactAndReopen(t *testing.T) {
	s, dir := openTemp(t)
	for i := 0; i < 50; i++ {
		k := []byte(fmt.Sprintf("k%d", i))
		if err := s.Put(k, bytes.Repeat([]byte{byte(i)}, 64)); err != nil {
			t.Fatal(err)
		}
	}
	if s.WALSize() == 0 {
		t.Fatal("WAL empty before compact")
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if s.WALSize() != 0 {
		t.Fatalf("WAL size %d after compact, want 0", s.WALSize())
	}
	// Writes after compaction land in the (fresh) WAL.
	if err := s.Put([]byte("post"), []byte("compact")); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 51 {
		t.Fatalf("Len after compact+reopen = %d, want 51", s2.Len())
	}
	v, ok, _ := s2.Get([]byte("post"))
	if !ok || !bytes.Equal(v, []byte("compact")) {
		t.Fatal("post-compact write lost")
	}
}

func TestTornWALRecordDiscarded(t *testing.T) {
	s, dir := openTemp(t)
	if err := s.Put([]byte("good"), []byte("value")); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Simulate a torn write: append half a record to the WAL.
	walPath := filepath.Join(dir, walName)
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("Open after torn write: %v", err)
	}
	defer s2.Close()
	v, ok, _ := s2.Get([]byte("good"))
	if !ok || !bytes.Equal(v, []byte("value")) {
		t.Fatal("intact record lost during torn-record recovery")
	}
}

func TestCorruptWALRecordStopsReplay(t *testing.T) {
	s, dir := openTemp(t)
	if err := s.Put([]byte("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put([]byte("b"), []byte("2")); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Flip a byte inside the second record's payload region.
	walPath := filepath.Join(dir, walName)
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(walPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, ok, _ := s2.Get([]byte("a")); !ok {
		t.Fatal("first record lost")
	}
	if _, ok, _ := s2.Get([]byte("b")); ok {
		t.Fatal("corrupted record was applied")
	}
}

func TestRangePrefix(t *testing.T) {
	s, _ := openTemp(t)
	defer s.Close()
	for _, k := range []string{"cs/f1/0", "cs/f1/1", "cs/f2/0", "other"} {
		if err := s.Put([]byte(k), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	var got []string
	err := s.Range([]byte("cs/f1/"), func(k, v []byte) bool {
		got = append(got, string(k))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"cs/f1/0", "cs/f1/1"}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("Range = %v, want %v", got, want)
	}
}

func TestRangeEarlyStop(t *testing.T) {
	s, _ := openTemp(t)
	defer s.Close()
	for i := 0; i < 10; i++ {
		s.Put([]byte(fmt.Sprintf("k%d", i)), []byte("v"))
	}
	n := 0
	s.Range(nil, func(k, v []byte) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Fatalf("Range visited %d keys after early stop, want 3", n)
	}
}

func TestMemoryOnlyMode(t *testing.T) {
	s, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	v, ok, _ := s.Get([]byte("k"))
	if !ok || !bytes.Equal(v, []byte("v")) {
		t.Fatal("memory-only store lost data")
	}
	if s.WALSize() != 0 {
		t.Fatal("memory-only store has WAL bytes")
	}
}

func TestClosedStoreErrors(t *testing.T) {
	s, _ := openTemp(t)
	s.Close()
	if err := s.Put([]byte("k"), []byte("v")); err != ErrClosed {
		t.Fatalf("Put after close = %v, want ErrClosed", err)
	}
	if _, _, err := s.Get([]byte("k")); err != ErrClosed {
		t.Fatalf("Get after close = %v, want ErrClosed", err)
	}
	if err := s.Delete([]byte("k")); err != ErrClosed {
		t.Fatalf("Delete after close = %v, want ErrClosed", err)
	}
	if err := s.Compact(); err != ErrClosed {
		t.Fatalf("Compact after close = %v, want ErrClosed", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("double Close = %v, want nil", err)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s, _ := openTemp(t)
	defer s.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := []byte(fmt.Sprintf("g%d-k%d", g, i))
				if err := s.Put(k, []byte("v")); err != nil {
					t.Error(err)
					return
				}
				if _, ok, err := s.Get(k); err != nil || !ok {
					t.Errorf("Get(%s) = %v, %v", k, ok, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if s.Len() != 8*200 {
		t.Fatalf("Len = %d, want %d", s.Len(), 8*200)
	}
}

// Property: any sequence of puts and deletes, after close+reopen, matches an
// in-memory model.
func TestPersistenceProperty(t *testing.T) {
	type op struct {
		Key    uint8
		Val    []byte
		Delete bool
	}
	f := func(ops []op) bool {
		dir := t.TempDir()
		s, err := Open(dir)
		if err != nil {
			return false
		}
		model := map[string][]byte{}
		for _, o := range ops {
			k := []byte{o.Key}
			if o.Delete {
				if s.Delete(k) != nil {
					return false
				}
				delete(model, string(k))
			} else {
				if s.Put(k, o.Val) != nil {
					return false
				}
				model[string(k)] = append([]byte(nil), o.Val...)
			}
		}
		if s.Close() != nil {
			return false
		}
		s2, err := Open(dir)
		if err != nil {
			return false
		}
		defer s2.Close()
		if s2.Len() != len(model) {
			return false
		}
		for k, want := range model {
			got, ok, err := s2.Get([]byte(k))
			if err != nil || !ok || !bytes.Equal(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPut(b *testing.B) {
	dir := b.TempDir()
	s, err := Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	val := bytes.Repeat([]byte{7}, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := []byte(fmt.Sprintf("key-%d", i%10000))
		if err := s.Put(k, val); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGet(b *testing.B) {
	s, err := Open("")
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 10000; i++ {
		s.Put([]byte(fmt.Sprintf("key-%d", i)), []byte("v"))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Get([]byte(fmt.Sprintf("key-%d", i%10000)))
	}
}

func TestAutoCompaction(t *testing.T) {
	s, dir := openTemp(t)
	defer s.Close()
	// Overwrite one key until the WAL crosses its budget; auto-compaction
	// must shrink it back.
	val := bytes.Repeat([]byte{9}, 1<<20)
	for i := 0; i < 70; i++ {
		if err := s.Put([]byte("hot"), val); err != nil {
			t.Fatal(err)
		}
	}
	if s.WALSize() > 65<<20 {
		t.Fatalf("WAL never auto-compacted: %d bytes", s.WALSize())
	}
	s.Close()
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, ok, _ := s2.Get([]byte("hot"))
	if !ok || !bytes.Equal(got, val) {
		t.Fatal("data lost across auto-compaction")
	}
}

package relation

import (
	"testing"
	"time"
)

func TestAddLookupRemove(t *testing.T) {
	tb := New(2 * time.Second)
	tb.Add("f", "t0", false, 1*time.Second)

	e, ok := tb.Lookup("f", 1500*time.Millisecond)
	if !ok || e.Dst != "t0" || e.FromUnlink {
		t.Fatalf("Lookup = %+v, %v", e, ok)
	}
	if _, ok := tb.Lookup("other", 1500*time.Millisecond); ok {
		t.Fatal("Lookup found a nonexistent src")
	}
	removed, ok := tb.Remove("f")
	if !ok || removed.Dst != "t0" {
		t.Fatalf("Remove = %+v, %v", removed, ok)
	}
	if _, ok := tb.Lookup("f", 1500*time.Millisecond); ok {
		t.Fatal("entry survived Remove")
	}
}

func TestLookupHonorsTimeout(t *testing.T) {
	tb := New(2 * time.Second)
	tb.Add("f", "t0", false, 0)
	if _, ok := tb.Lookup("f", 2*time.Second); !ok {
		t.Fatal("entry expired exactly at timeout boundary")
	}
	if _, ok := tb.Lookup("f", 2*time.Second+time.Nanosecond); ok {
		t.Fatal("expired entry returned by Lookup")
	}
	// Expired entries remain until Expire collects them (engine cleanup).
	if tb.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tb.Len())
	}
}

func TestExpireCollects(t *testing.T) {
	tb := New(time.Second)
	tb.Add("a", "trash/a", true, 0)
	tb.Add("b", "t1", false, 500*time.Millisecond)
	tb.Add("c", "t2", false, 3*time.Second)

	expired := tb.Expire(2 * time.Second)
	if len(expired) != 2 {
		t.Fatalf("expired %d entries, want 2", len(expired))
	}
	for _, e := range expired {
		if e.Src == "c" {
			t.Fatal("live entry expired")
		}
		if e.Src == "a" && !e.FromUnlink {
			t.Fatal("FromUnlink flag lost")
		}
	}
	if tb.Len() != 1 {
		t.Fatalf("Len after expire = %d, want 1", tb.Len())
	}
}

func TestAddReplacesExisting(t *testing.T) {
	tb := New(time.Second)
	tb.Add("f", "t0", false, 0)
	tb.Add("f", "t1", false, 100*time.Millisecond)
	e, ok := tb.Lookup("f", 200*time.Millisecond)
	if !ok || e.Dst != "t1" {
		t.Fatalf("Lookup after replace = %+v, %v", e, ok)
	}
}

func TestDefaultTimeoutApplied(t *testing.T) {
	tb := New(0)
	tb.Add("f", "t0", false, 0)
	if _, ok := tb.Lookup("f", DefaultTimeout-time.Millisecond); !ok {
		t.Fatal("entry should be live inside default timeout")
	}
	if _, ok := tb.Lookup("f", DefaultTimeout+time.Millisecond); ok {
		t.Fatal("entry should be expired past default timeout")
	}
}

func TestWordPattern(t *testing.T) {
	// Fig 5(b): rename f->t0 creates f->t0; the re-creation of f (rename
	// t1->f) looks up src "f" and triggers delta against t0.
	tb := New(2 * time.Second)
	now := 10 * time.Second
	tb.Add("f", "t0", false, now) // from: rename f t0

	// ... create t1, write t1 happen here ...
	now += 300 * time.Millisecond

	// rename t1 -> f: "f" is being created again.
	e, ok := tb.Lookup("f", now)
	if !ok || e.Dst != "t0" {
		t.Fatalf("transactional update not identified: %+v, %v", e, ok)
	}
	tb.Remove("f") // triggered
	if tb.Len() != 0 {
		t.Fatal("entry not removed after trigger")
	}
}

func TestRemoveMissing(t *testing.T) {
	tb := New(time.Second)
	if _, ok := tb.Remove("ghost"); ok {
		t.Fatal("Remove of missing entry reported ok")
	}
}

// Package relation implements the paper's relation table (§III-A, Table I):
// the mechanism that identifies transactional updates and decides when to
// trigger delta encoding instead of NFS-like file RPC.
//
// Each entry is a tuple src → dst meaning "the file once named src is now
// preserved under dst" (dst exists, src does not). Entries are created by
// rename and unlink operations, and removed when they trigger delta encoding
// or after a short timeout (1–3 s; file updates complete within ~1 s).
//
// Delta encoding triggers when a file is created whose name equals an
// entry's src — the invariant of transactional update: the old version is
// preserved just before the name is atomically re-created with new content.
package relation

import (
	"time"
)

// DefaultTimeout is the entry expiry the paper suggests (§III-A: "the period
// can be empirically set in a range of 1 to 3 seconds").
const DefaultTimeout = 2 * time.Second

// Entry records that the file previously named Src is currently preserved
// under Dst.
type Entry struct {
	Src string
	Dst string
	// FromUnlink marks entries created by unlink interception, whose Dst is
	// a trash-directory name the engine must clean up on expiry.
	FromUnlink bool
	// At is the logical creation time.
	At time.Duration
}

// Table is the relation table. It is not safe for concurrent use; the engine
// serializes access (all file operations arrive on the interception path).
type Table struct {
	timeout time.Duration
	entries map[string]Entry // keyed by Src
}

// New returns a table with the given entry timeout (DefaultTimeout if
// non-positive).
func New(timeout time.Duration) *Table {
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	return &Table{timeout: timeout, entries: make(map[string]Entry)}
}

// Add records src → dst at time now, replacing any previous entry for src.
func (t *Table) Add(src, dst string, fromUnlink bool, now time.Duration) {
	t.entries[src] = Entry{Src: src, Dst: dst, FromUnlink: fromUnlink, At: now}
}

// Lookup returns the live entry whose Src is name, if any. Expired entries
// are not returned (but are left for Expire to collect, since the engine
// must clean up preserved trash files).
func (t *Table) Lookup(name string, now time.Duration) (Entry, bool) {
	e, ok := t.entries[name]
	if !ok || now-e.At > t.timeout {
		return Entry{}, false
	}
	return e, true
}

// Remove deletes the entry for src (after it triggered delta encoding).
// It returns the removed entry, if one existed.
func (t *Table) Remove(src string) (Entry, bool) {
	e, ok := t.entries[src]
	if ok {
		delete(t.entries, src)
	}
	return e, ok
}

// Expire removes and returns all entries older than the timeout at time now.
// The engine deletes the preserved trash files of FromUnlink entries.
func (t *Table) Expire(now time.Duration) []Entry {
	var out []Entry
	for src, e := range t.entries {
		if now-e.At > t.timeout {
			out = append(out, e)
			delete(t.entries, src)
		}
	}
	return out
}

// Len returns the number of live and expired-but-uncollected entries.
func (t *Table) Len() int { return len(t.entries) }

package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// buildFunc parses src (a file body) and returns the CFG of the named
// function.
func buildFunc(t *testing.T, src, name string) (*token.FileSet, *Graph) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", "package p\n"+src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return fset, New(fd.Body)
		}
	}
	t.Fatalf("function %s not found", name)
	return nil, nil
}

// callsInBlock returns the callee names (last selector or ident) of calls
// appearing in the block's nodes.
func callNames(b *Block) []string {
	var out []string
	for _, n := range b.Nodes {
		ast.Inspect(n, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch fn := call.Fun.(type) {
			case *ast.Ident:
				out = append(out, fn.Name)
			case *ast.SelectorExpr:
				out = append(out, fn.Sel.Name)
			}
			return true
		})
	}
	return out
}

// mustPrecede reports whether on EVERY entry→(block containing a call to
// "target") path, a call to "required" occurs strictly earlier. This is the
// forward must-dataflow shape crashsafe runs; exercising it here proves the
// graph's edges support it.
func mustPrecede(g *Graph, required, target string) bool {
	// in[b] = true iff "required" has definitely happened on entry to b;
	// meet is AND over reachable predecessors.
	reach := g.Reachable()
	in := make(map[*Block]bool)
	out := make(map[*Block]bool)
	post := g.Postorder()
	for i := 0; i < len(post)+2; i++ {
		changed := false
		for j := len(post) - 1; j >= 0; j-- {
			b := post[j]
			v := b != g.Entry
			for _, p := range b.Preds {
				if reach[p] && !out[p] {
					v = false
					break
				}
			}
			if b == g.Entry {
				v = false
			}
			cur := v
			for _, n := range callNames(b) {
				if n == required {
					cur = true
				}
			}
			if in[b] != v || out[b] != cur {
				in[b], out[b] = v, cur
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	for _, b := range post {
		cur := in[b]
		for _, n := range callNames(b) {
			if n == target && !cur {
				return false
			}
			if n == required {
				cur = true
			}
		}
	}
	return true
}

func TestStraightLine(t *testing.T) {
	_, g := buildFunc(t, `
func f() {
	a()
	b()
	c()
}`, "f")
	if !mustPrecede(g, "a", "c") {
		t.Errorf("a must precede c in straight-line code:\n%s", g)
	}
	if mustPrecede(g, "c", "a") {
		t.Errorf("c does not precede a")
	}
}

func TestIfBranchBreaksMust(t *testing.T) {
	_, g := buildFunc(t, `
func f(x bool) {
	if x {
		sync()
	}
	rename()
}`, "f")
	if mustPrecede(g, "sync", "rename") {
		t.Errorf("sync only on one branch must not dominate rename:\n%s", g)
	}
}

func TestIfBothBranchesMust(t *testing.T) {
	_, g := buildFunc(t, `
func f(x bool) {
	if x {
		sync()
	} else {
		sync()
	}
	rename()
}`, "f")
	if !mustPrecede(g, "sync", "rename") {
		t.Errorf("sync on both branches must dominate rename:\n%s", g)
	}
}

func TestEarlyReturnGuard(t *testing.T) {
	_, g := buildFunc(t, `
func f() {
	if err := sync(); err != nil {
		return
	}
	rename()
}`, "f")
	if !mustPrecede(g, "sync", "rename") {
		t.Errorf("guarded early return keeps sync before rename:\n%s", g)
	}
}

func TestForLoopZeroIterations(t *testing.T) {
	_, g := buildFunc(t, `
func f(n int) {
	for i := 0; i < n; i++ {
		sync()
	}
	rename()
}`, "f")
	if mustPrecede(g, "sync", "rename") {
		t.Errorf("loop may run zero times; sync not guaranteed:\n%s", g)
	}
}

func TestRangeZeroIterations(t *testing.T) {
	_, g := buildFunc(t, `
func f(xs []int) {
	for range xs {
		sync()
	}
	rename()
}`, "f")
	if mustPrecede(g, "sync", "rename") {
		t.Errorf("range may run zero times:\n%s", g)
	}
}

func TestInfiniteLoopOnlyBreak(t *testing.T) {
	_, g := buildFunc(t, `
func f() {
	for {
		if done() {
			sync()
			break
		}
	}
	rename()
}`, "f")
	if !mustPrecede(g, "sync", "rename") {
		t.Errorf("only exit from for{} passes through sync:\n%s", g)
	}
}

func TestSwitchDefaultCovers(t *testing.T) {
	_, g := buildFunc(t, `
func f(x int) {
	switch x {
	case 1:
		sync()
	default:
		sync()
	}
	rename()
}`, "f")
	if !mustPrecede(g, "sync", "rename") {
		t.Errorf("all switch arms sync:\n%s", g)
	}
}

func TestSwitchNoDefaultLeaks(t *testing.T) {
	_, g := buildFunc(t, `
func f(x int) {
	switch x {
	case 1:
		sync()
	}
	rename()
}`, "f")
	if mustPrecede(g, "sync", "rename") {
		t.Errorf("switch without default has a fallthrough path:\n%s", g)
	}
}

func TestSwitchFallthrough(t *testing.T) {
	_, g := buildFunc(t, `
func f(x int) {
	switch x {
	case 1:
		sync()
		fallthrough
	case 2:
		rename()
	}
}`, "f")
	// rename is reachable directly via case 2 without sync.
	if mustPrecede(g, "sync", "rename") {
		t.Errorf("case 2 reachable without sync:\n%s", g)
	}
}

func TestSelectClauses(t *testing.T) {
	_, g := buildFunc(t, `
func f(ch chan int) {
	select {
	case <-ch:
		sync()
	default:
		sync()
	}
	rename()
}`, "f")
	if !mustPrecede(g, "sync", "rename") {
		t.Errorf("both select arms sync:\n%s", g)
	}
}

func TestPanicTerminates(t *testing.T) {
	_, g := buildFunc(t, `
func f(x bool) {
	if !x {
		panic("no")
	}
	sync()
	rename()
}`, "f")
	if !mustPrecede(g, "sync", "rename") {
		t.Errorf("panic path never reaches rename:\n%s", g)
	}
}

func TestGotoEdge(t *testing.T) {
	_, g := buildFunc(t, `
func f(x bool) {
	if x {
		goto done
	}
	sync()
done:
	rename()
}`, "f")
	if mustPrecede(g, "sync", "rename") {
		t.Errorf("goto skips sync:\n%s", g)
	}
}

func TestLabeledBreak(t *testing.T) {
	_, g := buildFunc(t, `
func f(xs []int) {
outer:
	for range xs {
		for {
			sync()
			break outer
		}
	}
	rename()
}`, "f")
	// Path with zero outer iterations skips sync.
	if mustPrecede(g, "sync", "rename") {
		t.Errorf("outer loop may run zero times:\n%s", g)
	}
}

func TestLabeledContinue(t *testing.T) {
	// Just exercise the builder; must not panic or drop edges.
	_, g := buildFunc(t, `
func f(xs, ys []int) {
outer:
	for range xs {
		for range ys {
			continue outer
		}
	}
}`, "f")
	if len(g.Blocks) == 0 {
		t.Fatal("no blocks")
	}
}

func TestNilBody(t *testing.T) {
	g := New(nil)
	if len(g.Entry.Succs) != 1 || g.Entry.Succs[0] != g.Exit {
		t.Fatalf("nil body should connect entry to exit:\n%s", g)
	}
}

func TestExitReachable(t *testing.T) {
	_, g := buildFunc(t, `
func f(x int) int {
	for {
		switch x {
		case 1:
			return 1
		default:
			x--
		}
	}
}`, "f")
	found := false
	for _, b := range g.Postorder() {
		if b == g.Exit {
			found = true
		}
	}
	if !found {
		t.Errorf("exit unreachable:\n%s", g)
	}
	if !strings.Contains(g.String(), "exit") {
		t.Errorf("String() missing exit")
	}
}

func TestDeferInLoopStaysInBody(t *testing.T) {
	_, g := buildFunc(t, `
func f(xs []int) {
	for range xs {
		defer sync()
	}
	rename()
}`, "f")
	// Deferred calls run at function exit, after rename — and the loop may
	// run zero times. Neither the builder nor a must-analysis over the graph
	// may treat the defer as preceding rename.
	if mustPrecede(g, "sync", "rename") {
		t.Errorf("deferred sync in a maybe-zero-iteration loop must not dominate rename:\n%s", g)
	}
	// The DeferStmt node must survive as a body node (analyzers key defer
	// semantics off the node itself, e.g. leakcheck's deferred Close).
	defers := 0
	for _, b := range g.Postorder() {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.DeferStmt); ok {
				defers++
			}
		}
	}
	if defers != 1 {
		t.Errorf("defer node count = %d, want 1:\n%s", defers, g)
	}
}

func TestSelectEmptyDefaultLeaks(t *testing.T) {
	_, g := buildFunc(t, `
func f(ch chan int) {
	select {
	case <-ch:
		sync()
	default:
	}
	rename()
}`, "f")
	// The nonblocking-poll shape: the empty default arm reaches rename
	// without sync.
	if mustPrecede(g, "sync", "rename") {
		t.Errorf("empty select default bypasses sync:\n%s", g)
	}
}

func TestLabeledBreakOnlyExit(t *testing.T) {
	_, g := buildFunc(t, `
func f() {
	outer:
	for {
		for {
			sync()
			break outer
		}
	}
	rename()
}`, "f")
	// Both loops are infinite; the only path to rename is the labeled break,
	// which follows sync. The break edge must target the OUTER loop's exit.
	if !mustPrecede(g, "sync", "rename") {
		t.Errorf("labeled break is the only exit and follows sync:\n%s", g)
	}
}

func TestLabeledContinueSkipsRestOfOuterBody(t *testing.T) {
	_, g := buildFunc(t, `
func f(xs, ys []int) {
	outer:
	for range xs {
		for range ys {
			continue outer
		}
		sync()
	}
	rename()
}`, "f")
	// continue outer must jump to the outer loop header, bypassing the sync
	// that follows the inner loop in the outer body.
	if mustPrecede(g, "sync", "rename") {
		t.Errorf("labeled continue bypasses the rest of the outer body:\n%s", g)
	}
}

// Package cfg builds per-function control-flow graphs from go/ast, the
// flow-sensitive half of the deltavet engine. The graphs are intentionally
// simple: basic blocks hold statements (and the condition/tag expressions
// that gate branches) in source order, and edges follow Go's structured
// control flow — if/else, for, range, switch, type switch, select, labeled
// break/continue, goto, return, and panic. Analyzers walk the block node
// lists to classify events (an fsync, a rename, a WAL append) and run small
// bitvector fixpoints over the edges; see internal/analysis/crashsafe for
// the canonical client.
//
// Soundness notes: panic and runtime.Goexit terminate a path (edge to the
// synthetic exit block), so code after them is treated as unreachable.
// Function literals are NOT inlined — a FuncLit appears as an ordinary
// expression in its enclosing statement, and callers that care about its
// body build a separate graph for it. Defer bodies run at exit in reality;
// here a DeferStmt is an ordinary node in its source position, which is the
// useful reading for ordering checks (the deferred call is *scheduled*
// there) and a documented approximation for everything else.
package cfg

import (
	"fmt"
	"go/ast"
	"strings"
)

// Block is a basic block: a maximal straight-line sequence of statements
// with edges only at the end. Nodes holds statements and branch-gating
// expressions (if conditions, switch tags, range operands) in source order.
type Block struct {
	Index int
	Kind  string // "entry", "exit", "body", "if.then", "for.head", ...
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
}

// Graph is one function's control-flow graph. Entry is where execution
// starts; Exit is a synthetic block every return/panic/fallthrough-off-the-
// end edge reaches, so "at function exit" checks have a single program
// point. Blocks is every block in creation (roughly source) order,
// including unreachable ones.
type Graph struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block
}

// New builds the CFG for a function body. A nil body (declaration without
// a definition) yields a graph whose entry connects straight to exit.
func New(body *ast.BlockStmt) *Graph {
	b := &builder{g: &Graph{}}
	b.g.Entry = b.newBlock("entry")
	b.g.Exit = b.newBlock("exit")
	b.cur = b.g.Entry
	if body != nil {
		b.stmtList(body.List)
	}
	b.edge(b.cur, b.g.Exit)
	b.patchGotos()
	for _, blk := range b.g.Blocks {
		for _, s := range blk.Succs {
			s.Preds = append(s.Preds, blk)
		}
	}
	return b.g
}

// Postorder returns the blocks reachable from entry in DFS postorder
// (useful for forward dataflow: iterate the reverse of this slice).
func (g *Graph) Postorder() []*Block {
	seen := make(map[*Block]bool, len(g.Blocks))
	var out []*Block
	var visit func(*Block)
	visit = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			visit(s)
		}
		out = append(out, b)
	}
	visit(g.Entry)
	return out
}

// Reachable returns the set of blocks reachable from entry. Dataflow
// consumers must meet only over reachable predecessors: structurally dead
// blocks (the exit of a condition-less for loop with no break, code after
// a return) otherwise leak a bogus "nothing has happened yet" state into
// join points.
func (g *Graph) Reachable() map[*Block]bool {
	set := make(map[*Block]bool, len(g.Blocks))
	for _, b := range g.Postorder() {
		set[b] = true
	}
	return set
}

// String renders the graph for debugging and tests.
func (g *Graph) String() string {
	var sb strings.Builder
	for _, b := range g.Blocks {
		fmt.Fprintf(&sb, "b%d(%s):", b.Index, b.Kind)
		for _, s := range b.Succs {
			fmt.Fprintf(&sb, " ->b%d", s.Index)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

type breakTarget struct {
	label string
	block *Block // where break jumps
}

type continueTarget struct {
	label string
	block *Block // where continue jumps (loop head or post)
}

type pendingGoto struct {
	from  *Block
	label string
}

type builder struct {
	g         *Graph
	cur       *Block
	breaks    []breakTarget
	continues []continueTarget
	labels    map[string]*Block
	gotos     []pendingGoto
	// pendingLabel is the label naming the *next* loop/switch/select, so
	// labeled break/continue resolve to it.
	pendingLabel string
}

func (b *builder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.g.Blocks), Kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	// Blocks born after a return/break/goto/panic can never be entered (a
	// label starts a fresh block, so jump targets are never of this kind);
	// suppressing their out-edges keeps dead paths out of join points.
	if from.Kind == "unreachable" {
		return
	}
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// startUnreachable begins a fresh block with no predecessors: the code
// after a return, break, continue, goto, or panic.
func (b *builder) startUnreachable() {
	b.cur = b.newBlock("unreachable")
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) add(n ast.Node) {
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *builder) stmt(s ast.Stmt) {
	// Any statement other than a labeled loop/switch consumes the pending
	// label as a plain goto target.
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s, b.takeLabel())
	case *ast.RangeStmt:
		b.rangeStmt(s, b.takeLabel())
	case *ast.SwitchStmt:
		b.switchStmt(s, b.takeLabel())
	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(s, b.takeLabel())
	case *ast.SelectStmt:
		b.selectStmt(s, b.takeLabel())
	case *ast.LabeledStmt:
		b.labeledStmt(s)
	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.g.Exit)
		b.startUnreachable()
	case *ast.BranchStmt:
		b.branchStmt(s)
	case *ast.ExprStmt:
		b.add(s)
		if isTerminalCall(s.X) {
			b.edge(b.cur, b.g.Exit)
			b.startUnreachable()
		}
	default:
		// Assign, Decl, Go, Defer, Send, IncDec, Empty: straight-line.
		b.add(s)
	}
}

func (b *builder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *builder) labeledStmt(s *ast.LabeledStmt) {
	// Start a fresh block so gotos have a clean target.
	blk := b.newBlock("label." + s.Label.Name)
	b.edge(b.cur, blk)
	b.cur = blk
	if b.labels == nil {
		b.labels = make(map[string]*Block)
	}
	b.labels[s.Label.Name] = blk
	b.pendingLabel = s.Label.Name
	b.stmt(s.Stmt)
	b.pendingLabel = ""
}

func (b *builder) branchStmt(s *ast.BranchStmt) {
	b.add(s)
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok.String() {
	case "break":
		for i := len(b.breaks) - 1; i >= 0; i-- {
			if label == "" || b.breaks[i].label == label {
				b.edge(b.cur, b.breaks[i].block)
				break
			}
		}
		b.startUnreachable()
	case "continue":
		for i := len(b.continues) - 1; i >= 0; i-- {
			if label == "" || b.continues[i].label == label {
				b.edge(b.cur, b.continues[i].block)
				break
			}
		}
		b.startUnreachable()
	case "goto":
		b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: label})
		b.startUnreachable()
	case "fallthrough":
		// Handled by switchStmt via clause chaining; nothing to do here
		// (the edge to the next clause body is added there).
	}
}

func (b *builder) patchGotos() {
	for _, g := range b.gotos {
		if t := b.labels[g.label]; t != nil {
			b.edge(g.from, t)
		}
	}
}

func (b *builder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	b.add(s.Cond)
	condBlk := b.cur
	join := b.newBlock("if.join")

	then := b.newBlock("if.then")
	b.edge(condBlk, then)
	b.cur = then
	b.stmtList(s.Body.List)
	b.edge(b.cur, join)

	if s.Else != nil {
		els := b.newBlock("if.else")
		b.edge(condBlk, els)
		b.cur = els
		b.stmt(s.Else)
		b.edge(b.cur, join)
	} else {
		b.edge(condBlk, join)
	}
	b.cur = join
}

func (b *builder) forStmt(s *ast.ForStmt, label string) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	head := b.newBlock("for.head")
	b.edge(b.cur, head)
	exit := b.newBlock("for.exit")
	post := head
	if s.Post != nil {
		post = b.newBlock("for.post")
	}

	b.cur = head
	if s.Cond != nil {
		b.add(s.Cond)
		b.edge(head, exit)
	}
	// for {} with no cond: only break leaves the loop.

	b.breaks = append(b.breaks, breakTarget{label: label, block: exit})
	b.continues = append(b.continues, continueTarget{label: label, block: post})
	body := b.newBlock("for.body")
	b.edge(head, body)
	b.cur = body
	b.stmtList(s.Body.List)
	b.edge(b.cur, post)
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]

	if s.Post != nil {
		b.cur = post
		b.stmt(s.Post)
		b.edge(b.cur, head)
	}
	b.cur = exit
}

func (b *builder) rangeStmt(s *ast.RangeStmt, label string) {
	b.add(s.X)
	head := b.newBlock("range.head")
	b.edge(b.cur, head)
	exit := b.newBlock("range.exit")
	b.edge(head, exit) // zero iterations

	b.breaks = append(b.breaks, breakTarget{label: label, block: exit})
	b.continues = append(b.continues, continueTarget{label: label, block: head})
	body := b.newBlock("range.body")
	b.edge(head, body)
	b.cur = body
	b.stmtList(s.Body.List)
	b.edge(b.cur, head)
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]

	b.cur = exit
}

func (b *builder) switchStmt(s *ast.SwitchStmt, label string) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	if s.Tag != nil {
		b.add(s.Tag)
	}
	head := b.cur
	join := b.newBlock("switch.join")
	b.breaks = append(b.breaks, breakTarget{label: label, block: join})

	var clauses []*ast.CaseClause
	for _, c := range s.Body.List {
		clauses = append(clauses, c.(*ast.CaseClause))
	}
	bodies := make([]*Block, len(clauses))
	for i := range clauses {
		bodies[i] = b.newBlock("case.body")
		b.edge(head, bodies[i])
	}
	hasDefault := false
	for _, c := range clauses {
		if c.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.edge(head, join)
	}
	for i, c := range clauses {
		b.cur = bodies[i]
		for _, e := range c.List {
			b.add(e)
		}
		b.stmtList(c.Body)
		if fallsThrough(c.Body) && i+1 < len(bodies) {
			b.edge(b.cur, bodies[i+1])
		} else {
			b.edge(b.cur, join)
		}
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.cur = join
}

func (b *builder) typeSwitchStmt(s *ast.TypeSwitchStmt, label string) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	b.stmt(s.Assign)
	head := b.cur
	join := b.newBlock("typeswitch.join")
	b.breaks = append(b.breaks, breakTarget{label: label, block: join})

	hasDefault := false
	for _, raw := range s.Body.List {
		c := raw.(*ast.CaseClause)
		if c.List == nil {
			hasDefault = true
		}
		body := b.newBlock("typecase.body")
		b.edge(head, body)
		b.cur = body
		b.stmtList(c.Body)
		b.edge(b.cur, join)
	}
	if !hasDefault {
		b.edge(head, join)
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.cur = join
}

func (b *builder) selectStmt(s *ast.SelectStmt, label string) {
	// Only the comm statements are recorded, each in its own body block —
	// adding the whole SelectStmt to the head would duplicate every case
	// body there, and a must-analysis would then see a case's effects as
	// happening unconditionally before the branch. Analyzers that care
	// about the select as a blocking event (blockunderlock) walk the AST,
	// not the CFG.
	head := b.cur
	join := b.newBlock("select.join")
	b.breaks = append(b.breaks, breakTarget{label: label, block: join})

	for _, raw := range s.Body.List {
		c := raw.(*ast.CommClause)
		body := b.newBlock("comm.body")
		b.edge(head, body)
		b.cur = body
		if c.Comm != nil {
			b.stmt(c.Comm)
		}
		b.stmtList(c.Body)
		b.edge(b.cur, join)
	}
	if len(s.Body.List) == 0 {
		// select{} blocks forever.
		b.edge(head, b.g.Exit)
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.cur = join
}

// fallsThrough reports whether a case body's last statement is a
// fallthrough.
func fallsThrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	br, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && br.Tok.String() == "fallthrough"
}

// isTerminalCall reports whether an expression statement never returns:
// panic(...) or os.Exit/log.Fatal-style calls, matched syntactically (the
// builder has no type info by design — it runs before any is needed).
func isTerminalCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name == "panic"
	case *ast.SelectorExpr:
		switch fn.Sel.Name {
		case "Exit", "Fatal", "Fatalf", "Fatalln", "Goexit":
			return true
		}
	}
	return false
}

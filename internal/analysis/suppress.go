package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"strings"
)

// AllowMark is the inline suppression directive. A comment containing
// "deltavet:allow <analyzer> <reason>" on the same line as a finding, or on
// the line directly above it, suppresses that analyzer's findings there.
const AllowMark = "deltavet:allow"

// Allow is one deltavet.allow entry: a standing exemption for one analyzer
// in one function, with a recorded reason. The file format is one entry per
// line, `<analyzer> <pkgpath> <Func|Type.Method> <reason...>`; blank lines
// and #-comments are skipped. PkgPath matches by import-path suffix (the
// same rule the analyzers use), so entries survive module renames.
type Allow struct {
	Analyzer string
	PkgPath  string
	Func     string
	Reason   string
	// File and Line locate the entry in its allow file, so stale entries can
	// be reported as findings pointing at the line to delete.
	File string
	Line int
}

// ParseAllowFile reads a deltavet.allow file. Entries without a reason are
// rejected: an exemption nobody can justify is a finding, not an exemption.
func ParseAllowFile(path string) ([]Allow, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out []Allow
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line) // also drops the \r of CRLF files
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// A trailing comment may annotate an entry on the same line
		// (`... reason # reviewed 2026-08`); everything from " #" on is
		// dropped, so a reason cannot itself contain " #".
		if j := strings.Index(line, " #"); j >= 0 {
			line = strings.TrimSpace(line[:j])
		}
		f := strings.Fields(line)
		if len(f) < 4 {
			return nil, fmt.Errorf("%s:%d: want `<analyzer> <pkgpath> <func> <reason>`, got %q", path, i+1, line)
		}
		out = append(out, Allow{
			Analyzer: f[0],
			PkgPath:  f[1],
			Func:     f[2],
			Reason:   strings.Join(f[3:], " "),
			File:     path,
			Line:     i + 1,
		})
	}
	return out, nil
}

// StaleAllows reports allow-file entries whose target function no longer
// exists: a suppression that outlives its code rots silently and hides the
// next real finding with the same shape. An entry is only checked when some
// loaded package suffix-matches its PkgPath — running deltavet on a slice of
// the tree must not condemn entries for packages it never loaded.
func StaleAllows(pkgs []*Package, allows []Allow) []Diagnostic {
	var out []Diagnostic
	for _, al := range allows {
		matched := false
		found := false
		for _, pkg := range pkgs {
			if !PathSuffixMatch(pkg.PkgPath, al.PkgPath) {
				continue
			}
			matched = true
			for _, f := range pkg.Files {
				for _, d := range f.Decls {
					fd, ok := d.(*ast.FuncDecl)
					if !ok || fd.Name == nil {
						continue
					}
					obj, ok := pkg.TypesInfo.Defs[fd.Name].(*types.Func)
					if ok && FuncDisplayName(obj) == al.Func {
						found = true
					}
				}
			}
		}
		if matched && !found {
			out = append(out, Diagnostic{
				Analyzer: "allowstale",
				Pos:      token.Position{Filename: al.File, Line: al.Line},
				Message: fmt.Sprintf("stale allow entry: %s has no function %s (analyzer %s); delete the entry or update its target",
					al.PkgPath, al.Func, al.Analyzer),
			})
		}
	}
	return out
}

// Suppress filters diags down to the findings not covered by an inline
// //deltavet:allow comment or an allow-file entry. It is the driver's half
// of the suppression contract: analyzers (and their unit tests) always see
// raw findings.
func Suppress(pkgs []*Package, diags []Diagnostic, allows []Allow) []Diagnostic {
	// Inline comments: "file:line" -> analyzers allowed there. A comment
	// covers its own line (trailing comment) and the line below (comment on
	// the preceding line).
	inline := make(map[string]map[string]bool)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					idx := strings.Index(c.Text, AllowMark)
					if idx < 0 {
						continue
					}
					fields := strings.Fields(c.Text[idx+len(AllowMark):])
					if len(fields) == 0 {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					for _, line := range []int{pos.Line, pos.Line + 1} {
						key := fmt.Sprintf("%s:%d", pos.Filename, line)
						if inline[key] == nil {
							inline[key] = make(map[string]bool)
						}
						inline[key][fields[0]] = true
					}
				}
			}
		}
	}

	// Allow-file entries match by enclosing function; index function spans.
	type span struct {
		file       string
		start, end int
		pkgPath    string
		fn         string
	}
	var spans []span
	if len(allows) > 0 {
		for _, pkg := range pkgs {
			for _, f := range pkg.Files {
				for _, d := range f.Decls {
					fd, ok := d.(*ast.FuncDecl)
					if !ok || fd.Name == nil {
						continue
					}
					obj, ok := pkg.TypesInfo.Defs[fd.Name].(*types.Func)
					if !ok {
						continue
					}
					p1 := pkg.Fset.Position(fd.Pos())
					p2 := pkg.Fset.Position(fd.End())
					spans = append(spans, span{
						file:    p1.Filename,
						start:   p1.Line,
						end:     p2.Line,
						pkgPath: pkg.PkgPath,
						fn:      FuncDisplayName(obj),
					})
				}
			}
		}
	}
	allowedByFile := func(d Diagnostic) bool {
		for _, sp := range spans {
			if sp.file != d.Pos.Filename || d.Pos.Line < sp.start || d.Pos.Line > sp.end {
				continue
			}
			for _, al := range allows {
				if al.Analyzer == d.Analyzer && al.Func == sp.fn && PathSuffixMatch(sp.pkgPath, al.PkgPath) {
					return true
				}
			}
		}
		return false
	}

	var kept []Diagnostic
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		if inline[key][d.Analyzer] {
			continue
		}
		if allowedByFile(d) {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}

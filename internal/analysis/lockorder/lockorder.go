// Package lockorder enforces the sharded server's deadlock-freedom rule:
// shard mutexes (fileShard.mu) are only acquired through the precomputed
// ascending lock-set helpers, never directly and never nested.
//
// The invariant (internal/server/shard.go): a batch resolves every shard it
// can touch up front, sorts the indices, and locks in ascending order.
// Any code path that write-locks a shard directly, or takes a second shard
// lock while one is held, can deadlock against a concurrent batch — those
// are exactly the two shapes this analyzer flags:
//
//  1. a direct write Lock/Unlock on a fileShard mutex outside a helper
//     function annotated `//deltavet:lockorder-helper` (single-shard RLock
//     is allowed: read-only RPCs take one shared lock and release it);
//  2. acquiring any shard lock — directly, via a helper, or by calling a
//     same-package function that itself acquires one — while a shard lock
//     is already held.
//
// Helper functions carry the annotation in their doc comment and are
// exempt from both rules; the ascending order inside them is covered by the
// seeded property tests, not this analyzer. Lock tracking walks bodies in
// source order, which is exact for the straight-line lock/unlock pairing
// this codebase uses; the "callee acquires a shard lock" summary is
// transitive over the program call graph (cross-package, with the witness
// chain in the message), excluding edges inside go statements and function
// literals.
package lockorder

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/callgraph"
)

// ShardTypeName is the struct type whose mutex field is governed by the
// ascending lock-set rule.
const ShardTypeName = "fileShard"

// helperMark in a function's doc comment exempts it as a sanctioned
// acquisition helper.
const helperMark = "deltavet:lockorder-helper"

// Analyzer is the lockorder checker.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc:  "shard mutexes may only be acquired via the ascending lock-set helpers, and never nested",
	Run:  run,
}

// shardFact is the program-wide lockorder fact: which functions are
// sanctioned acquisition helpers (directive in their doc comment), and
// which functions acquire a shard lock — directly, via a helper, or
// through any transitive callee chain.
type shardFact struct {
	helpers  map[*types.Func]bool
	acquires map[*types.Func]*callgraph.Witness
}

func buildFact(prog *analysis.Program) *shardFact {
	f := &shardFact{helpers: make(map[*types.Func]bool)}
	for _, n := range prog.Graph.Nodes() {
		// Scan the raw comment list: CommentGroup.Text() strips
		// directive-style comments like //deltavet:lockorder-helper.
		if n.Decl == nil || n.Decl.Doc == nil {
			continue
		}
		for _, c := range n.Decl.Doc.List {
			if strings.Contains(c.Text, helperMark) {
				f.helpers[n.Func] = true
				break
			}
		}
	}
	// Transitive summary: a function acquires a shard lock if its own body
	// does (directly or through an acquire-helper call), or if any callee
	// outside go statements and function literals does. Helpers themselves
	// stay unmarked — call sites into them are checked by the dedicated
	// helper rule, with held-count bookkeeping.
	f.acquires = prog.Graph.Transitive(
		func(n *callgraph.Node) string {
			if n.Decl == nil || n.Decl.Body == nil || n.Src == nil || f.helpers[n.Func] {
				return ""
			}
			return directAcquire(n.Src.Info, n.Decl, f.helpers)
		},
		func(e *callgraph.Edge) bool {
			return e.InGo || e.InLit || f.helpers[e.Caller.Func]
		},
	)
	return f
}

// directAcquire reports whether the body itself takes a shard lock,
// skipping go statements and function literals.
func directAcquire(info *types.Info, fd *ast.FuncDecl, helpers map[*types.Func]bool) string {
	why := ""
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		if why != "" || n == nil {
			return
		}
		switch n := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return
		case *ast.CallExpr:
			if op, isShard := shardLockOp(info, n); isShard && (op == "Lock" || op == "RLock") {
				why = "a direct shard " + op
				return
			}
			if callee := analysis.CalleeOf(info, n); callee != nil && helpers[callee] && isAcquireName(callee.Name()) {
				why = "the lock-set helper " + callee.Name()
				return
			}
		}
		children(n, walk)
	}
	walk(fd.Body)
	return why
}

// children invokes f on each direct child of n.
func children(n ast.Node, f func(ast.Node)) {
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			f(c)
		}
		return false
	})
}

func run(pass *analysis.Pass) error {
	fact := pass.Prog.Fact(pass.Analyzer, func(prog *analysis.Program) any {
		return buildFact(prog)
	}).(*shardFact)

	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Name == nil || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok || fact.helpers[obj] {
				continue
			}
			checkFunc(pass, fd, fact)
		}
	}
	return nil
}

// checkFunc walks one non-helper function body in source order, tracking
// how many shard locks are held.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, fact *shardFact) {
	helpers := fact.helpers
	held := 0
	var walk func(n ast.Node, inDefer bool)
	walk = func(n ast.Node, inDefer bool) {
		switch n := n.(type) {
		case nil:
			return
		case *ast.DeferStmt:
			// A deferred unlock releases at function end, not here: the
			// lock stays held for everything after this statement. A
			// deferred acquire would be bizarre; ignore both for held
			// accounting but still apply rule 1 to the call itself.
			walk(n.Call, true)
			return
		case *ast.GoStmt:
			// The spawned goroutine does not run under our shard locks;
			// its argument expressions do.
			for _, arg := range n.Call.Args {
				walk(arg, inDefer)
			}
			walk(n.Call.Fun, inDefer)
			return
		case *ast.CallExpr:
			for _, arg := range n.Args {
				walk(arg, inDefer)
			}
			op, isShard := shardLockOp(pass.TypesInfo, n)
			if isShard {
				switch op {
				case "Lock", "Unlock":
					pass.Reportf(n.Pos(), "direct shard mutex %s outside a lock-set helper (acquire via the precomputed ascending lock-set; see internal/server/shard.go)", op)
				}
				switch op {
				case "Lock", "RLock":
					if held > 0 {
						pass.Reportf(n.Pos(), "shard lock acquired while another shard lock is held: nested acquisition outside the ascending lock-set helper can deadlock")
					}
					if !inDefer {
						held++
					}
				case "Unlock", "RUnlock":
					if !inDefer && held > 0 {
						held--
					}
				}
				return
			}
			if callee := analysis.CalleeOf(pass.TypesInfo, n); callee != nil {
				switch {
				case helpers[callee] && isAcquireName(callee.Name()):
					if held > 0 {
						pass.Reportf(n.Pos(), "lock-set helper %s called while a shard lock is already held: nested acquisition can deadlock", callee.Name())
					}
					if !inDefer {
						held++
					}
				case helpers[callee] && isReleaseName(callee.Name()):
					if !inDefer && held > 0 {
						held--
					}
				default:
					if w := fact.acquires[callee]; w != nil && held > 0 {
						via := ""
						if c := w.Chain(); c != "" {
							via = " (via " + callee.Name() + " -> " + c + ")"
						}
						pass.Reportf(n.Pos(), "call to %s (which acquires a shard lock) while a shard lock is held: nested acquisition can deadlock%s", callee.Name(), via)
					}
				}
			}
			return
		case *ast.FuncLit:
			// A closure runs at an unknown time; analyze its body with a
			// fresh held count rather than the current one.
			saved := held
			held = 0
			walk(n.Body, false)
			held = saved
			return
		}
		// Generic children traversal in source order.
		var children []ast.Node
		ast.Inspect(n, func(c ast.Node) bool {
			if c == n {
				return true
			}
			if c != nil {
				children = append(children, c)
			}
			return false
		})
		for _, c := range children {
			walk(c, inDefer)
		}
	}
	walk(fd.Body, false)
}

// shardLockOp reports whether call is mutexExpr.(R)Lock/(R)Unlock on a
// mutex field reached through a fileShard value, returning the method name.
func shardLockOp(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	op := sel.Sel.Name
	switch op {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", false
	}
	// Receiver must be a sync mutex...
	tv, ok := info.Types[sel.X]
	if !ok || !analysis.IsMutexType(tv.Type) {
		return "", false
	}
	// ...held in a field of the shard struct type.
	muSel, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	xtv, ok := info.Types[muSel.X]
	if !ok {
		return "", false
	}
	if name, _ := analysis.NamedType(xtv.Type); name != ShardTypeName {
		return "", false
	}
	return op, true
}

func isAcquireName(name string) bool {
	l := strings.ToLower(name)
	return strings.Contains(l, "lock") && !strings.Contains(l, "unlock")
}

func isReleaseName(name string) bool {
	return strings.Contains(strings.ToLower(name), "unlock")
}

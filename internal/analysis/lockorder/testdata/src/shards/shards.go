// Package shards is the lockorder fixture: a miniature of the sharded
// server (internal/server/shard.go) with both sanctioned and violating
// acquisition shapes.
package shards

import "sync"

type fileShard struct {
	mu    sync.RWMutex
	files map[string][]byte
}

type Server struct{ shards []*fileShard }

// lockAll takes every shard lock in ascending order.
//
//deltavet:lockorder-helper
func (s *Server) lockAll() {
	for _, sh := range s.shards {
		sh.mu.Lock()
	}
}

// unlockAll releases in reverse order.
//
//deltavet:lockorder-helper
func (s *Server) unlockAll() {
	for i := len(s.shards) - 1; i >= 0; i-- {
		s.shards[i].mu.Unlock()
	}
}

// BadDirect write-locks a shard outside any helper.
func (s *Server) BadDirect() {
	s.shards[0].mu.Lock()   // want `direct shard mutex Lock`
	s.shards[0].mu.Unlock() // want `direct shard mutex Unlock`
}

// OKRead: a single direct RLock is the sanctioned read-only RPC shape.
func (s *Server) OKRead() []byte {
	sh := s.shards[1]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.files["x"]
}

// BadNested takes a second shard lock while one is held.
func (s *Server) BadNested() {
	a, b := s.shards[0], s.shards[1]
	a.mu.RLock()
	b.mu.RLock() // want `nested acquisition outside the ascending lock-set helper`
	b.mu.RUnlock()
	a.mu.RUnlock()
}

// BadHelperWhileHeld calls the lock-set helper with a shard lock held.
func (s *Server) BadHelperWhileHeld() {
	sh := s.shards[0]
	sh.mu.RLock()
	s.lockAll() // want `helper lockAll called while a shard lock is already held`
	s.unlockAll()
	sh.mu.RUnlock()
}

func (s *Server) readOne() []byte {
	sh := s.shards[0]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.files["y"]
}

// BadCallAcquirer calls a function that itself takes a shard lock.
func (s *Server) BadCallAcquirer() {
	sh := s.shards[2]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	s.readOne() // want `acquires a shard lock\) while a shard lock is held`
}

// OKSequential: helper pairs and a non-overlapping direct read lock.
func (s *Server) OKSequential() {
	s.lockAll()
	s.unlockAll()
	sh := s.shards[0]
	sh.mu.RLock()
	sh.mu.RUnlock()
	s.readOne()
}

// wrapsReadOne acquires only transitively: readOne takes the lock.
func (s *Server) wrapsReadOne() []byte { return s.readOne() }

// BadCallTransitiveAcquirer reaches the acquisition through two frames;
// only the call-graph summary sees it, and the chain names the witness.
func (s *Server) BadCallTransitiveAcquirer() {
	sh := s.shards[3]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	s.wrapsReadOne() // want `acquires a shard lock\) while a shard lock is held: nested acquisition can deadlock \(via wrapsReadOne -> readOne\)`
}

// OKSpawnAcquirer: the acquiring callee runs in a goroutine, not under the
// caller's shard lock.
func (s *Server) OKSpawnAcquirer() {
	sh := s.shards[4]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	go s.readOne()
}

// OKOtherMutex: non-shard mutexes are not lockorder's concern.
func OKOtherMutex() {
	var mu sync.Mutex
	mu.Lock()
	defer mu.Unlock()
}

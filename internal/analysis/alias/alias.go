// Package alias is the shared value-tracking layer under the scale-path
// analyzers (atomicsafe, poolsafe, leakcheck). It answers two questions the
// per-analyzer CFG dataflows cannot answer alone:
//
//  1. Intraprocedurally — which locals may hold a tracked value? Track
//     computes a may-alias relation from seed expressions (a sync.Pool Get,
//     an atomic.Pointer Load, a net.Dial) through the function's
//     assignments, following the value-preserving shapes Go code actually
//     uses for these objects: plain copies, parenthesization, slicing,
//     pointer deref/address-of, type assertions, and append (a grown byte
//     buffer still occupies — or at least started from — the pooled
//     backing array).
//
//  2. Interprocedurally — what does a callee do with the value I pass it?
//     Params runs a callee-to-caller fixpoint over the existing call graph
//     and memoizes, per function, which (linearized) parameters have a
//     client-defined property: "stores it somewhere long-lived", "closes
//     it", "puts it back in the pool". Each derived property carries a
//     witness chain naming the callee path it came through, so diagnostics
//     can say not just "this escapes" but "this escapes via a -> b".
//
// The relation is deliberately may-alias and flow-insensitive: kills
// (reassigning a variable to something fresh) are ignored, and aliasing is
// closed bidirectionally over assignments. Flow sensitivity — "after the
// Put", "after the Store" — belongs to the analyzers' own CFG fixpoints;
// this layer only says which names to watch.
package alias

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis/callgraph"
)

// Seed is one tracked value origin inside a function.
type Seed struct {
	// Expr is the originating expression (usually a CallExpr).
	Expr ast.Expr
	// Tag is the client's label for this origin, used in diagnostics
	// ("sync.Pool.Get", "net.Dial", ...).
	Tag string
	// Result selects which result of a multi-value call carries the value
	// (0 for single-result calls; os.Open's file is result 0 of 2).
	Result int
}

// Tracker holds one function's computed alias relation.
type Tracker struct {
	info  *types.Info
	Seeds []*Seed
	// objs maps each local object to the set of seeds it may alias.
	objs map[types.Object]map[*Seed]bool
}

// Track computes the may-alias relation for body. seedOf classifies an
// expression as a value origin (returning nil for "not tracked"); it is
// consulted for every right-hand-side expression position. seedObjs, when
// non-nil, pre-tags objects (the Params engine uses it to tag parameters).
func Track(info *types.Info, body ast.Node, seedObjs map[types.Object]*Seed, seedOf func(ast.Expr) *Seed) *Tracker {
	t := &Tracker{info: info, objs: make(map[types.Object]map[*Seed]bool)}
	seen := make(map[*Seed]bool)
	addSeed := func(s *Seed) {
		if s != nil && !seen[s] {
			seen[s] = true
			t.Seeds = append(t.Seeds, s)
		}
	}
	for obj, s := range seedObjs {
		addSeed(s)
		t.tag(obj, s)
	}
	// Memoize the client's classifier per expression: the fixpoint re-visits
	// every edge until stable, and a callback minting a fresh Seed on each
	// visit would never converge.
	var classify func(ast.Expr) *Seed
	if seedOf != nil {
		memo := make(map[ast.Expr]*Seed)
		done := make(map[ast.Expr]bool)
		classify = func(e ast.Expr) *Seed {
			if done[e] {
				return memo[e]
			}
			s := seedOf(e)
			done[e], memo[e] = true, s
			addSeed(s)
			return s
		}
	}

	// Register every seed up front, even ones that never cross an assignment
	// edge (a pool Get buried in a composite literal still needs to answer
	// post-hoc ExprSeeds queries at its use site).
	if classify != nil {
		ast.Inspect(body, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				classify(e)
			}
			return true
		})
	}

	// Collect assignment edges once; the fixpoint below closes over them in
	// any source order (flow-insensitive may-alias). pos is the result index
	// the LHS takes from a multi-value RHS (0 otherwise).
	type edge struct {
		lhs types.Object
		rhs ast.Expr
		pos int
	}
	var edges []edge
	bind := func(lhs ast.Expr, rhs ast.Expr, pos int) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj == nil {
			return
		}
		edges = append(edges, edge{lhs: obj, rhs: rhs, pos: pos})
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
				// a, b := f(): Seed.Result picks which LHS gets the tag.
				for i := range n.Lhs {
					bind(n.Lhs[i], n.Rhs[0], i)
				}
				return true
			}
			for i := range n.Lhs {
				if i < len(n.Rhs) {
					bind(n.Lhs[i], n.Rhs[i], 0)
				}
			}
		case *ast.GenDecl:
			for _, sp := range n.Specs {
				vs, ok := sp.(*ast.ValueSpec)
				if !ok {
					continue
				}
				if len(vs.Values) == 1 && len(vs.Names) > 1 {
					for i, name := range vs.Names {
						bind(name, vs.Values[0], i)
					}
					continue
				}
				for i, name := range vs.Names {
					if i < len(vs.Values) {
						bind(name, vs.Values[i], 0)
					}
				}
			}
		}
		return true
	})

	// Fixpoint: propagate seeds across edges until stable. Bidirectional —
	// `x := seed; y := x` tags both, and `pub := fresh; p.Store(pub)`
	// followed by clients asking about `fresh` works too.
	for changed := true; changed; {
		changed = false
		for _, e := range edges {
			for _, s := range t.exprSeedsAt(e.rhs, classify, e.pos) {
				if t.tag(e.lhs, s) {
					changed = true
				}
			}
			// Backward: the RHS root object aliases whatever the LHS holds
			// (value identity runs both ways for pointers and slices).
			if root := rootObj(info, e.rhs); root != nil {
				for s := range t.objs[e.lhs] {
					if t.tag(root, s) {
						changed = true
					}
				}
			}
		}
	}
	return t
}

func (t *Tracker) tag(obj types.Object, s *Seed) bool {
	set := t.objs[obj]
	if set == nil {
		set = make(map[*Seed]bool)
		t.objs[obj] = set
	}
	if set[s] {
		return false
	}
	set[s] = true
	return true
}

// SeedsOf returns the seeds obj may alias.
func (t *Tracker) SeedsOf(obj types.Object) []*Seed {
	var out []*Seed
	for _, s := range t.Seeds {
		if t.objs[obj][s] {
			out = append(out, s)
		}
	}
	return out
}

// Aliases reports whether obj may alias s.
func (t *Tracker) Aliases(obj types.Object, s *Seed) bool { return t.objs[obj][s] }

// ExprSeeds returns the seeds the value of e may alias: direct seed match,
// a tagged identifier at its root, or a value-preserving derivation of one.
func (t *Tracker) ExprSeeds(e ast.Expr) []*Seed {
	return t.exprSeedsAt(e, nil, 0)
}

// exprSeedsAt resolves the seeds of an expression. classify is Track's
// memoized seed classifier (nil for post-hoc queries, which instead match
// already-recorded seed expressions). wantPos filters multi-result calls to
// one result index.
func (t *Tracker) exprSeedsAt(e ast.Expr, classify func(ast.Expr) *Seed, wantPos int) []*Seed {
	e = ast.Unparen(e)
	var s *Seed
	if classify != nil {
		s = classify(e)
	} else {
		for _, cand := range t.Seeds {
			if cand.Expr == e {
				s = cand
				break
			}
		}
	}
	if s != nil {
		if s.Result == wantPos {
			return []*Seed{s}
		}
		return nil
	}
	switch e := e.(type) {
	case *ast.Ident:
		obj := t.info.Uses[e]
		if obj == nil {
			obj = t.info.Defs[e]
		}
		if obj == nil {
			return nil
		}
		return t.SeedsOf(obj)
	case *ast.SliceExpr:
		return t.exprSeedsAt(e.X, classify, 0)
	case *ast.StarExpr:
		return t.exprSeedsAt(e.X, classify, 0)
	case *ast.UnaryExpr:
		if e.Op.String() == "&" {
			return t.exprSeedsAt(e.X, classify, 0)
		}
	case *ast.TypeAssertExpr:
		return t.exprSeedsAt(e.X, classify, 0)
	case *ast.CallExpr:
		// append(x, ...) keeps (or started from) x's backing array.
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "append" && len(e.Args) > 0 {
			return t.exprSeedsAt(e.Args[0], classify, 0)
		}
	}
	return nil
}

// rootObj finds the identifier object at the value-preserving root of e
// (nil when the root is not a plain local: selectors and index expressions
// are derivations into other objects, not aliases of the whole).
func rootObj(info *types.Info, e ast.Expr) types.Object {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.Ident:
		if o := info.Uses[e]; o != nil {
			return o
		}
		return info.Defs[e]
	case *ast.SliceExpr:
		return rootObj(info, e.X)
	case *ast.StarExpr:
		return rootObj(info, e.X)
	case *ast.UnaryExpr:
		if e.Op.String() == "&" {
			return rootObj(info, e.X)
		}
	case *ast.TypeAssertExpr:
		return rootObj(info, e.X)
	}
	return nil
}

// ---- interprocedural parameter summaries ----

// Witness explains one parameter property: Why is the direct reason, Chain
// the callee path (outermost first) it was derived through — empty when the
// property holds directly in the function itself.
type Witness struct {
	Why   string
	Chain []*types.Func
}

// ChainString renders "a -> b" for diagnostics ("" when direct).
func (w *Witness) ChainString() string {
	s := ""
	for i, fn := range w.Chain {
		if i > 0 {
			s += " -> "
		}
		s += fn.Name()
	}
	return s
}

// Summary maps functions to the linearized parameter indices (receiver
// first, when present) holding a property.
type Summary struct {
	m map[*types.Func]map[int]*Witness
}

// Has returns the witness for fn's linearized parameter idx, or nil.
func (s *Summary) Has(fn *types.Func, idx int) *Witness {
	if s == nil || fn == nil {
		return nil
	}
	return s.m[fn][idx]
}

// FuncInfo hands the direct-property callback everything it needs for one
// function: the node, its types.Info, and the param alias query.
type FuncInfo struct {
	Node *callgraph.Node
	Info *types.Info
	// ParamOf returns the linearized parameter index e's value may alias,
	// or -1. When e aliases several params the lowest index wins.
	ParamOf func(e ast.Expr) int
}

// Params computes an interprocedural parameter-property summary: direct
// reports the property's direct sites in one function (param index ->
// reason), and the fixpoint adds derived properties — a caller's param k
// gets the property when it is passed in a position whose callee param has
// it. Edges inside go statements and function literals still propagate
// (handing a conn to a goroutine that closes it still closes it); clients
// needing stricter semantics encode them in direct.
func Params(g *callgraph.Graph, direct func(fi *FuncInfo) map[int]string) *Summary {
	sum := &Summary{m: make(map[*types.Func]map[int]*Witness)}
	trackers := make(map[*callgraph.Node]*Tracker)
	paramOf := make(map[*callgraph.Node]func(ast.Expr) int)

	for _, n := range g.Nodes() {
		if n.Decl == nil || n.Decl.Body == nil || n.Src == nil {
			continue
		}
		info := n.Src.Info
		seedObjs := make(map[types.Object]*Seed)
		params := linearParams(n.Func)
		for i, p := range params {
			if p != nil {
				seedObjs[p] = &Seed{Tag: "param", Result: i}
			}
		}
		tr := Track(info, n.Decl.Body, seedObjs, nil)
		trackers[n] = tr
		po := func(tr *Tracker, params []*types.Var) func(ast.Expr) int {
			return func(e ast.Expr) int {
				best := -1
				for _, s := range tr.ExprSeeds(e) {
					if s.Tag == "param" && (best == -1 || s.Result < best) {
						best = s.Result
					}
				}
				return best
			}
		}(tr, params)
		paramOf[n] = po
		for idx, why := range direct(&FuncInfo{Node: n, Info: info, ParamOf: po}) {
			sum.set(n.Func, idx, &Witness{Why: why})
		}
	}

	// Callee-to-caller fixpoint with witness chains.
	for changed := true; changed; {
		changed = false
		for _, n := range g.Nodes() {
			po := paramOf[n]
			if po == nil {
				continue
			}
			for _, e := range n.Out {
				calleeProps := sum.m[e.Callee.Func]
				if len(calleeProps) == 0 {
					continue
				}
				args := LinearArgs(n.Src.Info, e.Site)
				for j, w := range calleeProps {
					if j >= len(args) || args[j] == nil {
						continue
					}
					k := po(args[j])
					if k < 0 || sum.m[n.Func][k] != nil {
						continue
					}
					chain := append([]*types.Func{e.Callee.Func}, w.Chain...)
					sum.set(n.Func, k, &Witness{Why: w.Why, Chain: chain})
					changed = true
				}
			}
		}
	}
	return sum
}

func (s *Summary) set(fn *types.Func, idx int, w *Witness) {
	if s.m[fn] == nil {
		s.m[fn] = make(map[int]*Witness)
	}
	s.m[fn][idx] = w
}

// linearParams returns fn's parameters with the receiver (when present)
// first, matching LinearArgs' argument layout.
func linearParams(fn *types.Func) []*types.Var {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	var out []*types.Var
	if sig.Recv() != nil {
		out = append(out, sig.Recv())
	}
	for i := 0; i < sig.Params().Len(); i++ {
		out = append(out, sig.Params().At(i))
	}
	return out
}

// LinearArgs returns a call's argument expressions in linearized order: for
// a method call the receiver expression comes first. A nil slot marks an
// argument with no usable expression (method values, conversions).
func LinearArgs(info *types.Info, call *ast.CallExpr) []ast.Expr {
	var out []ast.Expr
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, ok := info.Selections[sel]; ok && s.Kind() == types.MethodVal {
			out = append(out, sel.X)
		}
	}
	for _, a := range call.Args {
		out = append(out, a)
	}
	return out
}

// ReturnsTracked finds every function one of whose returned values may
// alias a tracked origin: directly (a return expression isTracked classifies)
// or transitively (returning the result of another returning function).
// The result maps each such function to a short description of the origin.
func ReturnsTracked(g *callgraph.Graph, isTracked func(info *types.Info, e ast.Expr) string) map[*types.Func]string {
	out := make(map[*types.Func]string)
	for changed := true; changed; {
		changed = false
		for _, n := range g.Nodes() {
			if n.Decl == nil || n.Decl.Body == nil || n.Src == nil || out[n.Func] != "" {
				continue
			}
			info := n.Src.Info
			// One memo shared by Track's fixpoint and the return-statement
			// query below, so both see the identical Seed instances.
			memo := make(map[ast.Expr]*Seed)
			done := make(map[ast.Expr]bool)
			seedOf := func(e ast.Expr) *Seed {
				if done[e] {
					return memo[e]
				}
				var s *Seed
				if why := isTracked(info, e); why != "" {
					s = &Seed{Expr: e, Tag: why}
				} else if call, ok := e.(*ast.CallExpr); ok {
					if fn := calleeFunc(info, call); fn != nil && out[fn] != "" {
						s = &Seed{Expr: e, Tag: out[fn]}
					}
				}
				done[e], memo[e] = true, s
				return s
			}
			tr := Track(info, n.Decl.Body, nil, seedOf)
			why := ""
			ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
				if why != "" {
					return false
				}
				if _, ok := x.(*ast.FuncLit); ok {
					return false
				}
				ret, ok := x.(*ast.ReturnStmt)
				if !ok {
					return true
				}
				for _, r := range ret.Results {
					if ss := tr.exprSeedsAt(r, seedOf, 0); len(ss) > 0 {
						why = ss[0].Tag
						break
					}
				}
				return true
			})
			if why != "" {
				out[n.Func] = why
				changed = true
			}
		}
	}
	return out
}

func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fn].(*types.Func)
		return f
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fn]; ok {
			f, _ := sel.Obj().(*types.Func)
			return f
		}
		f, _ := info.Uses[fn.Sel].(*types.Func)
		return f
	}
	return nil
}

package alias

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"repro/internal/analysis/callgraph"
)

// load typechecks one import-free source file and returns everything the
// package API consumes.
func load(t *testing.T, src string) (*token.FileSet, *ast.File, *types.Package, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{}
	pkg, err := conf.Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return fset, f, pkg, info
}

func funcDecl(t *testing.T, f *ast.File, name string) *ast.FuncDecl {
	t.Helper()
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return fd
		}
	}
	t.Fatalf("no function %q", name)
	return nil
}

// objNamed finds the local object called name inside fd.
func objNamed(info *types.Info, fd *ast.FuncDecl, name string) types.Object {
	var out types.Object
	ast.Inspect(fd, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			if o := info.Defs[id]; o != nil {
				out = o
				return false
			}
		}
		return true
	})
	return out
}

const trackSrc = `package p

func get() *int { x := 0; return &x }

func F() int {
	a := get()
	b := a
	var c *int
	c = b
	d := other()
	_ = d
	return *c
}

func other() *int { y := 1; return &y }

func Derived() []byte {
	buf := mk()
	head := buf[:4]
	grown := append(buf, 1)
	return append(head, grown...)
}

func mk() []byte { return make([]byte, 8) }

func Tuple() (*int, error) {
	v, err := pair()
	u := v
	_ = u
	return v, err
}

func pair() (*int, error) { x := 2; return &x, nil }
`

func TestTrackAliasChains(t *testing.T) {
	_, f, _, info := load(t, trackSrc)
	fd := funcDecl(t, f, "F")
	seedOf := func(e ast.Expr) *Seed {
		call, ok := e.(*ast.CallExpr)
		if !ok {
			return nil
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "get" {
			return &Seed{Expr: e, Tag: "get"}
		}
		return nil
	}
	tr := Track(info, fd.Body, nil, seedOf)
	if len(tr.Seeds) != 1 {
		t.Fatalf("seeds = %d, want 1", len(tr.Seeds))
	}
	for _, name := range []string{"a", "b", "c"} {
		obj := objNamed(info, fd, name)
		if obj == nil {
			t.Fatalf("no object %q", name)
		}
		if got := tr.SeedsOf(obj); len(got) != 1 || got[0].Tag != "get" {
			t.Errorf("SeedsOf(%s) = %v, want the get seed", name, got)
		}
	}
	if d := objNamed(info, fd, "d"); len(tr.SeedsOf(d)) != 0 {
		t.Errorf("d should not alias the get seed")
	}
}

func TestTrackDerivations(t *testing.T) {
	_, f, _, info := load(t, trackSrc)
	fd := funcDecl(t, f, "Derived")
	seedOf := func(e ast.Expr) *Seed {
		if call, ok := e.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "mk" {
				return &Seed{Expr: e, Tag: "mk"}
			}
		}
		return nil
	}
	tr := Track(info, fd.Body, nil, seedOf)
	for _, name := range []string{"buf", "head", "grown"} {
		obj := objNamed(info, fd, name)
		if got := tr.SeedsOf(obj); len(got) != 1 {
			t.Errorf("SeedsOf(%s) = %v, want the mk seed (slicing and append preserve the backing array)", name, got)
		}
	}
}

func TestTrackTupleResultIndex(t *testing.T) {
	_, f, _, info := load(t, trackSrc)
	fd := funcDecl(t, f, "Tuple")
	seedOf := func(e ast.Expr) *Seed {
		if call, ok := e.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "pair" {
				return &Seed{Expr: e, Tag: "pair", Result: 0}
			}
		}
		return nil
	}
	tr := Track(info, fd.Body, nil, seedOf)
	if v := objNamed(info, fd, "v"); len(tr.SeedsOf(v)) != 1 {
		t.Errorf("v (result 0) should carry the seed")
	}
	if u := objNamed(info, fd, "u"); len(tr.SeedsOf(u)) != 1 {
		t.Errorf("u copies v, should carry the seed")
	}
	if errObj := objNamed(info, fd, "err"); len(tr.SeedsOf(errObj)) != 0 {
		t.Errorf("err (result 1) must NOT carry a Result-0 seed")
	}
}

const paramsSrc = `package p

type sink struct{ kept []*int }

var global *int

func storeField(s *sink, v *int) { s.kept = append(s.kept, v) }

func storeGlobal(v *int) { global = v }

func viaHelper(s *sink, v *int) { storeField(s, v) }

func twoDeep(s *sink, v *int) { viaHelper(s, v) }

func pure(v *int) int { return *v }
`

func buildGraph(t *testing.T, src string) (*callgraph.Graph, *types.Package, *types.Info) {
	t.Helper()
	fset, f, pkg, info := load(t, src)
	g := callgraph.Build([]*callgraph.Source{{Fset: fset, Files: []*ast.File{f}, Pkg: pkg, Info: info}})
	return g, pkg, info
}

func lookupFunc(t *testing.T, pkg *types.Package, name string) *types.Func {
	t.Helper()
	fn, ok := pkg.Scope().Lookup(name).(*types.Func)
	if !ok {
		t.Fatalf("no func %q", name)
	}
	return fn
}

func TestParamsEscapeFixpoint(t *testing.T) {
	g, pkg, _ := buildGraph(t, paramsSrc)
	// Direct property: a parameter stored into a field, global, or slice.
	sum := Params(g, func(fi *FuncInfo) map[int]string {
		out := map[int]string{}
		ast.Inspect(fi.Node.Decl.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for _, rhs := range as.Rhs {
				// append(s.kept, v) or plain v on the RHS of a field/global store.
				ast.Inspect(rhs, func(x ast.Node) bool {
					if e, ok := x.(ast.Expr); ok {
						if idx := fi.ParamOf(e); idx >= 0 {
							for _, lhs := range as.Lhs {
								if _, isSel := lhs.(*ast.SelectorExpr); isSel {
									out[idx] = "stored into a field"
								}
								if id, ok := lhs.(*ast.Ident); ok {
									if v, ok := fi.Info.Uses[id].(*types.Var); ok && v.Parent() == v.Pkg().Scope() {
										out[idx] = "stored into a global"
									}
								}
							}
						}
					}
					return true
				})
			}
			return true
		})
		return out
	})

	if w := sum.Has(lookupFunc(t, pkg, "storeField"), 1); w == nil || w.Why != "stored into a field" {
		t.Errorf("storeField param 1: got %+v, want direct field-store", w)
	}
	if w := sum.Has(lookupFunc(t, pkg, "storeGlobal"), 0); w == nil {
		t.Errorf("storeGlobal param 0: want direct global-store")
	}
	if w := sum.Has(lookupFunc(t, pkg, "viaHelper"), 1); w == nil {
		t.Errorf("viaHelper param 1: want derived via storeField")
	} else if got := w.ChainString(); got != "storeField" {
		t.Errorf("viaHelper witness chain = %q, want storeField", got)
	}
	if w := sum.Has(lookupFunc(t, pkg, "twoDeep"), 1); w == nil {
		t.Errorf("twoDeep param 1: want derived two levels down")
	} else if got := w.ChainString(); !strings.Contains(got, "viaHelper") || !strings.Contains(got, "storeField") {
		t.Errorf("twoDeep witness chain = %q, want viaHelper -> storeField", got)
	}
	if w := sum.Has(lookupFunc(t, pkg, "pure"), 0); w != nil {
		t.Errorf("pure param 0 must not have the property, got %+v", w)
	}
}

const returnsSrc = `package p

var pool []*int

func rawGet() *int { x := 0; return &x }

func wrapped() *int { v := rawGet(); return v }

func twoHops() *int { return wrapped() }

func unrelated() *int { y := 1; return &y }
`

func TestReturnsTracked(t *testing.T) {
	g, pkg, _ := buildGraph(t, returnsSrc)
	got := ReturnsTracked(g, func(info *types.Info, e ast.Expr) string {
		if call, ok := e.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "rawGet" {
				return "raw origin"
			}
		}
		return ""
	})
	for _, name := range []string{"wrapped", "twoHops"} {
		if got[lookupFunc(t, pkg, name)] == "" {
			t.Errorf("%s should be returns-tracked", name)
		}
	}
	if got[lookupFunc(t, pkg, "unrelated")] != "" {
		t.Errorf("unrelated must not be returns-tracked")
	}
}

// Package analysistest runs an analyzer over fixture packages under
// testdata/src and checks its diagnostics against `// want "regex"`
// comments, mirroring golang.org/x/tools/go/analysis/analysistest closely
// enough that fixtures read the same way.
//
// Fixture packages live at testdata/src/<importpath>/ relative to the test.
// They may import each other by that relative import path, and may import
// anything in the module's dependency closure (standard library included) —
// those imports resolve from build-cache export data via the module root.
// Because analyzers match project packages by import-path *suffix*, a
// fixture at testdata/src/bad/internal/server stands in for
// repro/internal/server.
package analysistest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"io"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// Run loads every fixture package under testdata/src, builds ONE Program
// over all of them (so interprocedural analyzers see cross-fixture call
// edges — a caller fixture in package A resolves into a sink fixture in
// package B), runs a over the packages named by targets (import paths
// relative to testdata/src), and reports mismatches between diagnostics and
// // want comments as test errors. Wants are checked per target package;
// diagnostics always land in the package being analyzed, so cross-package
// scenarios put the // want on the caller side.
func Run(t *testing.T, a *analysis.Analyzer, targets ...string) {
	t.Helper()
	pkgs, err := loadFixtures("testdata/src")
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	all := make([]*analysis.Package, 0, len(pkgs))
	var order []string
	for path := range pkgs {
		order = append(order, path)
	}
	sort.Strings(order)
	for _, path := range order {
		all = append(all, pkgs[path])
	}
	prog := analysis.NewProgram(all)
	for _, target := range targets {
		pkg, ok := pkgs[target]
		if !ok {
			t.Errorf("analysistest: no fixture package %q under testdata/src", target)
			continue
		}
		diags, err := prog.Run(pkg, a)
		if err != nil {
			t.Errorf("analysistest: %s: %v", target, err)
			continue
		}
		checkWants(t, pkg, diags)
	}
}

// want is one expectation parsed from a fixture comment.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	used bool
}

func checkWants(t *testing.T, pkg *analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	wants := collectWants(t, pkg)
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.used || w.file != filepath.Base(d.Pos.Filename) || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.used {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

var wantRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"|` + "`([^`]*)`")

func collectWants(t *testing.T, pkg *analysis.Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, m := range wantRE.FindAllStringSubmatch(text[len("want "):], -1) {
					raw := m[2]
					if m[1] != "" || raw == "" {
						unq, err := strconv.Unquote(`"` + m[1] + `"`)
						if err != nil {
							t.Fatalf("%s: bad want string: %v", pos, err)
						}
						raw = unq
					}
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, raw, err)
					}
					wants = append(wants, &want{
						file: filepath.Base(pos.Filename),
						line: pos.Line,
						re:   re,
					})
				}
			}
		}
	}
	return wants
}

// loadFixtures parses and type-checks every package under root (a
// testdata/src directory), resolving fixture-local imports against each
// other and everything else against the module's export data.
func loadFixtures(root string) (map[string]*analysis.Package, error) {
	dirs, err := fixtureDirs(root)
	if err != nil {
		return nil, err
	}
	if len(dirs) == 0 {
		return nil, fmt.Errorf("no fixture packages under %s", root)
	}
	exports, err := moduleExports()
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()

	// Parse everything first so import edges are known.
	type parsed struct {
		path  string
		dir   string
		files []*ast.File
	}
	byPath := make(map[string]*parsed, len(dirs))
	var order []string
	for _, dir := range dirs {
		rel, _ := filepath.Rel(root, dir)
		importPath := filepath.ToSlash(rel)
		entries, err := os.ReadDir(dir)
		if err != nil {
			return nil, err
		}
		p := &parsed{path: importPath, dir: dir}
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("parse fixture %s: %w", e.Name(), err)
			}
			p.files = append(p.files, f)
		}
		if len(p.files) == 0 {
			continue
		}
		byPath[importPath] = p
		order = append(order, importPath)
	}
	sort.Strings(order)

	fi := &fixtureImporter{
		fallback: analysis.NewExportImporter(fset, exports),
		types:    make(map[string]*types.Package),
	}
	out := make(map[string]*analysis.Package, len(byPath))

	// Type-check in dependency order (DFS over fixture-local imports).
	var check func(path string) error
	checking := make(map[string]bool)
	check = func(path string) error {
		if _, done := out[path]; done {
			return nil
		}
		if checking[path] {
			return fmt.Errorf("fixture import cycle through %q", path)
		}
		checking[path] = true
		defer func() { checking[path] = false }()
		p := byPath[path]
		for _, f := range p.files {
			for _, imp := range f.Imports {
				ip, _ := strconv.Unquote(imp.Path.Value)
				if _, local := byPath[ip]; local {
					if err := check(ip); err != nil {
						return err
					}
				}
			}
		}
		info := analysis.NewTypesInfo()
		conf := types.Config{Importer: fi, Error: func(error) {}}
		tpkg, err := conf.Check(path, fset, p.files, info)
		if err != nil {
			return fmt.Errorf("typecheck fixture %s: %w", path, err)
		}
		fi.types[path] = tpkg
		out[path] = &analysis.Package{
			PkgPath:   path,
			Dir:       p.dir,
			Fset:      fset,
			Files:     p.files,
			Types:     tpkg,
			TypesInfo: info,
		}
		return nil
	}
	for _, path := range order {
		if err := check(path); err != nil {
			return nil, err
		}
	}
	return out, nil
}

type fixtureImporter struct {
	fallback types.Importer
	types    map[string]*types.Package
}

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	if p, ok := fi.types[path]; ok {
		return p, nil
	}
	return fi.fallback.Import(path)
}

func fixtureDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return dirs, nil
}

// moduleExports builds the ImportPath -> export-data map for the whole
// module dependency closure (standard library included), so fixtures can
// import anything the module itself uses.
func moduleExports() (map[string]string, error) {
	gomod, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		return nil, fmt.Errorf("go env GOMOD: %w", err)
	}
	modRoot := filepath.Dir(strings.TrimSpace(string(gomod)))
	cmd := exec.Command("go", "list", "-e", "-export", "-deps",
		"-json=ImportPath,Export", "./...")
	cmd.Dir = modRoot
	outBytes, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list -export ./...: %w", err)
	}
	exports := make(map[string]string)
	dec := json.NewDecoder(bytes.NewReader(outBytes))
	for {
		var lp struct{ ImportPath, Export string }
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decode: %w", err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
	}
	return exports, nil
}

// Package pools exercises every poolsafe diagnostic kind alongside the
// sanctioned pooled-buffer shapes that must stay silent.
package pools

import "sync"

var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 64); return &b }}

// getBuf is clean: returning the pooled object transfers the Put obligation
// to the caller. It also marks getBuf as a pool getter, so callers' buffers
// are tracked.
func getBuf() *[]byte { return bufPool.Get().(*[]byte) }

func putBuf(bp *[]byte) { bufPool.Put(bp) }

func GoodDirect() {
	bp := bufPool.Get().(*[]byte)
	*bp = (*bp)[:0]
	bufPool.Put(bp)
}

func GoodDefer(n int) int {
	bp := getBuf()
	defer putBuf(bp)
	if n > 0 {
		return n
	}
	return len(*bp)
}

func GoodAllPaths(cond bool) {
	bp := getBuf()
	if cond {
		putBuf(bp)
		return
	}
	putBuf(bp)
}

func GoodLoopReuse(n int) {
	for i := 0; i < n; i++ {
		bp := getBuf()
		*bp = append((*bp)[:0], byte(i))
		putBuf(bp)
	}
}

func BadLeakOnEarlyReturn(cond bool) int {
	bp := getBuf() // want `not returned to its pool on every path`
	if cond {
		return 0 // this path leaks bp
	}
	putBuf(bp)
	return 1
}

func BadUseAfterPut() byte {
	bp := getBuf()
	putBuf(bp)
	return (*bp)[0] // want `bp is used after it was returned to the pool`
}

func BadUseAfterPutViaHelper() int {
	bp := getBuf()
	putBuf(bp)
	return len(*bp) // want `bp is used after it was returned to the pool`
}

type op struct{ data *[]byte }

type holder struct {
	last *[]byte
	ops  []op
}

func (h *holder) BadEscapeField() {
	bp := getBuf()
	h.last = bp // want `escapes into a long-lived structure \(stored into field last\)`
	putBuf(bp)
}

func (h *holder) BadEscapeComposite() {
	bp := getBuf()
	h.ops = append(h.ops, op{data: bp}) // want `escapes into a long-lived structure \(placed in a composite literal\)`
	putBuf(bp)
}

func BadEscapeChannel(ch chan *[]byte) {
	bp := getBuf()
	ch <- bp // want `escapes into a long-lived structure \(sent on a channel\)`
}

var lastGlobal *[]byte

func BadEscapeGlobal() {
	bp := getBuf()
	lastGlobal = bp // want `escapes into a long-lived structure \(stored into package variable lastGlobal\)`
	putBuf(bp)
}

var rawPool sync.Pool // no New func: Get hands back a nil interface when empty

// GoodNilGetter is the nil-from-pool idiom: the only path that does not hand
// the object onward is the path where the pool gave nothing back, so the
// nil comparison waives the Put-on-every-path obligation.
func GoodNilGetter() []byte {
	if v := rawPool.Get(); v != nil {
		return v.([]byte)[:0]
	}
	return nil
}

// Package poolsafe checks the lifecycle of pooled scratch objects: a value
// obtained from a sync.Pool (directly, or through a typed getter like the
// codec's getFrameBuf) must be returned to the pool on every CFG exit path,
// must never be used after it has been Put, and must never escape into a
// long-lived structure.
//
// This statically pins the single-encode/immutable-frame contract: the wire
// codec hands out pooled buffers, encodes into them once, splices the raw
// bytes, and returns the buffer — a buffer that leaks out (stored into a
// struct, sent on a channel) or is touched after Put is a use-after-free in
// slow motion, corrupting a frame some other goroutine is concurrently
// encoding into.
//
// Ownership transfer is respected: returning the pooled object hands the
// Put obligation to the caller (that is how getFrameBuf itself is clean),
// and passing it to a callee that transitively Puts it (putFrameBuf)
// discharges the obligation, with the callee chain named in diagnostics.
package poolsafe

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/alias"
	"repro/internal/analysis/cfg"
)

// Analyzer is the poolsafe checker.
var Analyzer = &analysis.Analyzer{
	Name: "poolsafe",
	Doc:  "pooled objects must be Put on all exit paths, never used after Put, and never escape into long-lived structures",
	Run:  run,
}

type fact struct {
	// puts: linearized parameters that are transitively returned to a pool.
	puts *alias.Summary
	// getters: functions whose result is (transitively) a fresh pool object.
	getters map[*types.Func]string
}

func buildFact(prog *analysis.Program) *fact {
	f := &fact{}
	f.puts = alias.Params(prog.Graph, func(fi *alias.FuncInfo) map[int]string {
		out := map[int]string{}
		ast.Inspect(fi.Node.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isPoolMethod(fi.Info, call, "Put") {
				return true
			}
			args := alias.LinearArgs(fi.Info, call)
			if len(args) >= 2 && args[1] != nil {
				if idx := fi.ParamOf(args[1]); idx >= 0 {
					out[idx] = "returned to the pool"
				}
			}
			return true
		})
		return out
	})
	f.getters = alias.ReturnsTracked(prog.Graph, func(info *types.Info, e ast.Expr) string {
		if call, ok := e.(*ast.CallExpr); ok && isPoolMethod(info, call, "Get") {
			return "sync.Pool.Get"
		}
		return ""
	})
	return f
}

func isPoolMethod(info *types.Info, call *ast.CallExpr, name string) bool {
	fn := analysis.CalleeOf(info, call)
	return fn != nil && fn.Name() == name &&
		analysis.PkgPathOf(fn) == "sync" && analysis.RecvTypeName(fn) == "Pool"
}

func run(pass *analysis.Pass) error {
	f := pass.Prog.Fact(pass.Analyzer, func(prog *analysis.Program) any {
		return buildFact(prog)
	}).(*fact)
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd, f)
		}
	}
	return nil
}

// seedName renders a seed origin for diagnostics.
func seedName(s *alias.Seed) string { return s.Tag }

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, f *fact) {
	info := pass.TypesInfo

	seedOf := func(e ast.Expr) *alias.Seed {
		call, ok := e.(*ast.CallExpr)
		if !ok {
			return nil
		}
		if isPoolMethod(info, call, "Get") {
			return &alias.Seed{Expr: e, Tag: "sync.Pool.Get"}
		}
		if fn := analysis.CalleeOf(info, call); fn != nil {
			if _, isGetter := f.getters[fn]; isGetter {
				return &alias.Seed{Expr: e, Tag: fn.Name()}
			}
		}
		return nil
	}
	tr := alias.Track(info, fd.Body, nil, seedOf)
	if len(tr.Seeds) == 0 {
		return
	}

	// The nil-from-pool idiom: a pool with no New func hands back a nil
	// interface when empty, so getters read
	// `if v := pool.Get(); v != nil { return v.(T) }; return nil`.
	// The path that releases nothing is exactly the path where the pool gave
	// nothing back, so a seed that is nil-compared anywhere in the function
	// is exempt from the Put-on-every-path requirement (use-after-Put and
	// escape checks still apply to it).
	nilChecked := map[*alias.Seed]bool{}
	ast.Inspect(fd.Body, func(x ast.Node) bool {
		be, ok := x.(*ast.BinaryExpr)
		if !ok || (be.Op.String() != "==" && be.Op.String() != "!=") {
			return true
		}
		for _, pair := range [][2]ast.Expr{{be.X, be.Y}, {be.Y, be.X}} {
			if id, ok := ast.Unparen(pair[1]).(*ast.Ident); ok && id.Name == "nil" && info.Uses[id] != nil && info.Uses[id].Pkg() == nil {
				for _, s := range tr.ExprSeeds(pair[0]) {
					nilChecked[s] = true
				}
			}
		}
		return true
	})

	// Classify per-CFG-node events for each seed.
	type events struct {
		acquired map[*alias.Seed]bool // seed's Get expression is in this node
		put      map[*alias.Seed]*alias.Witness // non-deferred Put (nil Witness = direct sync.Pool.Put)
		deferPut map[*alias.Seed]bool // Put scheduled by a defer in this node
		returned map[*alias.Seed]bool // ownership transferred to the caller
		escaped  map[*alias.Seed]bool // reported separately; discharges the obligation
	}

	putsIn := func(n ast.Node, emit func(s *alias.Seed, call *ast.CallExpr, w *alias.Witness)) {
		ast.Inspect(n, func(x ast.Node) bool {
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			args := alias.LinearArgs(info, call)
			if isPoolMethod(info, call, "Put") && len(args) >= 2 && args[1] != nil {
				for _, s := range tr.ExprSeeds(args[1]) {
					emit(s, call, nil)
				}
				return true
			}
			for _, callee := range pass.Prog.Graph.CalleesAt(call) {
				for j, arg := range args {
					if arg == nil {
						continue
					}
					if w := f.puts.Has(callee.Func, j); w != nil {
						for _, s := range tr.ExprSeeds(arg) {
							emit(s, call, &alias.Witness{Why: callee.Func.Name(), Chain: w.Chain})
						}
					}
				}
			}
			return true
		})
	}

	evOf := func(n ast.Node) *events {
		ev := &events{
			acquired: map[*alias.Seed]bool{},
			put:      map[*alias.Seed]*alias.Witness{},
			deferPut: map[*alias.Seed]bool{},
			returned: map[*alias.Seed]bool{},
			escaped:  map[*alias.Seed]bool{},
		}
		ast.Inspect(n, func(x ast.Node) bool {
			if e, ok := x.(ast.Expr); ok {
				for _, s := range tr.Seeds {
					if s.Expr == e {
						ev.acquired[s] = true
					}
				}
			}
			return true
		})
		if def, isDefer := n.(*ast.DeferStmt); isDefer {
			putsIn(def, func(s *alias.Seed, _ *ast.CallExpr, _ *alias.Witness) { ev.deferPut[s] = true })
			return ev
		}
		putsIn(n, func(s *alias.Seed, _ *ast.CallExpr, w *alias.Witness) { ev.put[s] = orDirect(w) })
		if ret, ok := n.(*ast.ReturnStmt); ok {
			for _, r := range ret.Results {
				for _, s := range tr.ExprSeeds(r) {
					ev.returned[s] = true
				}
			}
		}
		for s := range escapesIn(pass, tr, n) {
			ev.escaped[s] = true
		}
		return ev
	}

	g := pass.Prog.CFG(fd)
	post := g.Postorder()
	reach := g.Reachable()
	evmap := make(map[*cfg.Block][]*events)
	for _, b := range post {
		evs := make([]*events, len(b.Nodes))
		for i, n := range b.Nodes {
			evs[i] = evOf(n)
		}
		evmap[b] = evs
	}

	// Escapes are reported flow-insensitively: a pooled object stored into a
	// field, global, channel, or composite literal outlives the frame no
	// matter where the store sits.
	for _, b := range post {
		for _, n := range b.Nodes {
			reportEscapes(pass, tr, n)
		}
	}

	// Must-analysis for "Put on all exit paths": per seed,
	// TOP(0) not yet acquired / ACQ(1) live obligation / REL(2) discharged.
	const (
		top = 0
		acq = 1
		rel = 2
	)
	meet := func(a, b int) int {
		if a == top {
			return b
		}
		if b == top {
			return a
		}
		if a == b {
			return a
		}
		return acq // released on one path only = still owed
	}
	type state map[*alias.Seed]int
	in := make(map[*cfg.Block]state)
	out := make(map[*cfg.Block]state)
	apply := func(st state, ev *events) {
		for s := range ev.acquired {
			st[s] = acq
		}
		for s := range ev.deferPut {
			st[s] = rel
		}
		for s := range ev.put {
			st[s] = rel
		}
		for s := range ev.returned {
			st[s] = rel
		}
		for s := range ev.escaped {
			st[s] = rel
		}
	}
	sameState := func(a, b state) bool {
		if len(a) != len(b) {
			return false
		}
		for k, v := range a {
			if b[k] != v {
				return false
			}
		}
		return true
	}
	for changed := true; changed; {
		changed = false
		for i := len(post) - 1; i >= 0; i-- {
			b := post[i]
			st := state{}
			first := true
			for _, p := range b.Preds {
				if !reach[p] {
					continue
				}
				if first {
					for k, v := range out[p] {
						st[k] = v
					}
					first = false
					continue
				}
				for _, s := range tr.Seeds {
					st[s] = meet(st[s], out[p][s])
				}
			}
			o := state{}
			for k, v := range st {
				o[k] = v
			}
			for _, ev := range evmap[b] {
				apply(o, ev)
			}
			if !sameState(in[b], st) || !sameState(out[b], o) {
				in[b], out[b] = st, o
				changed = true
			}
		}
	}
	for _, s := range tr.Seeds {
		if out[g.Exit][s] == acq && !nilChecked[s] {
			pass.Reportf(s.Expr.Pos(), "pooled object from %s is not returned to its pool on every path to return: add a Put (or defer it) on the missing paths", seedName(s))
		}
	}

	// May-analysis for use-after-Put: the set of seeds whose non-deferred Put
	// may already have run. Acquire kills (loop re-acquisition is a fresh
	// object); uses are checked before the node's own Put applies.
	mayIn := make(map[*cfg.Block]map[*alias.Seed]bool)
	mayOut := make(map[*cfg.Block]map[*alias.Seed]bool)
	sameSet := func(a, b map[*alias.Seed]bool) bool {
		if len(a) != len(b) {
			return false
		}
		for k := range a {
			if !b[k] {
				return false
			}
		}
		return true
	}
	for changed := true; changed; {
		changed = false
		for i := len(post) - 1; i >= 0; i-- {
			b := post[i]
			st := map[*alias.Seed]bool{}
			for _, p := range b.Preds {
				if reach[p] {
					for k := range mayOut[p] {
						st[k] = true
					}
				}
			}
			o := map[*alias.Seed]bool{}
			for k := range st {
				o[k] = true
			}
			for _, ev := range evmap[b] {
				for s := range ev.acquired {
					delete(o, s)
				}
				for s := range ev.put {
					o[s] = true
				}
			}
			if !sameSet(mayIn[b], st) || !sameSet(mayOut[b], o) {
				mayIn[b], mayOut[b] = st, o
				changed = true
			}
		}
	}
	for _, b := range post {
		live := map[*alias.Seed]bool{}
		for k := range mayIn[b] {
			live[k] = true
		}
		for i, n := range b.Nodes {
			ev := evmap[b][i]
			for s := range ev.acquired {
				delete(live, s)
			}
			if _, isDefer := n.(*ast.DeferStmt); !isDefer {
				reportUses(pass, tr, n, live)
			}
			for s := range ev.put {
				live[s] = true
			}
		}
	}
}

func orDirect(w *alias.Witness) *alias.Witness {
	if w == nil {
		return &alias.Witness{Why: "sync.Pool.Put"}
	}
	return w
}

// reportUses flags identifiers aliasing an already-Put seed inside n.
func reportUses(pass *analysis.Pass, tr *alias.Tracker, n ast.Node, put map[*alias.Seed]bool) {
	if len(put) == 0 {
		return
	}
	info := pass.TypesInfo
	ast.Inspect(n, func(x ast.Node) bool {
		id, ok := x.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if obj == nil {
			return true
		}
		for _, s := range tr.SeedsOf(obj) {
			if put[s] {
				pass.Reportf(id.Pos(), "%s is used after it was returned to the pool (%s): another goroutine may already own this object", id.Name, seedName(s))
				return false
			}
		}
		return true
	})
}

// escapesIn finds seeds escaping in n without reporting (for obligation
// accounting); reportEscapes emits the diagnostics.
func escapesIn(pass *analysis.Pass, tr *alias.Tracker, n ast.Node) map[*alias.Seed]bool {
	out := map[*alias.Seed]bool{}
	forEachEscape(pass, tr, n, func(s *alias.Seed, _ ast.Node, _ string) { out[s] = true })
	return out
}

func reportEscapes(pass *analysis.Pass, tr *alias.Tracker, n ast.Node) {
	forEachEscape(pass, tr, n, func(s *alias.Seed, site ast.Node, how string) {
		pass.Reportf(site.Pos(), "pooled object from %s escapes into a long-lived structure (%s): a frame returned to the pool must not be reachable from outside the call", seedName(s), how)
	})
}

// forEachEscape detects stores of a pooled value somewhere that outlives the
// function frame: a field or global assignment, a channel send, or placement
// in a composite literal. Returning the value is NOT an escape (ownership
// transfers); locals and parameters are not long-lived.
func forEachEscape(pass *analysis.Pass, tr *alias.Tracker, n ast.Node, emit func(s *alias.Seed, site ast.Node, how string)) {
	info := pass.TypesInfo
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.AssignStmt:
			for i, lhs := range x.Lhs {
				how := ""
				switch l := ast.Unparen(lhs).(type) {
				case *ast.SelectorExpr:
					if sel, ok := info.Selections[l]; ok && sel.Obj() != nil {
						how = "stored into field " + sel.Obj().Name()
					}
				case *ast.IndexExpr:
					if base := ast.Unparen(l.X); base != nil {
						if bsel, ok := base.(*ast.SelectorExpr); ok {
							if sel, ok := info.Selections[bsel]; ok && sel.Obj() != nil {
								how = "stored into field " + sel.Obj().Name()
							}
						}
					}
				case *ast.Ident:
					if v, ok := info.Uses[l].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
						how = "stored into package variable " + v.Name()
					}
				}
				if how == "" {
					continue
				}
				var rhs ast.Expr
				if len(x.Rhs) == 1 {
					rhs = x.Rhs[0]
				} else if i < len(x.Rhs) {
					rhs = x.Rhs[i]
				}
				if rhs == nil {
					continue
				}
				for _, s := range tr.ExprSeeds(rhs) {
					emit(s, x, how)
				}
			}
		case *ast.SendStmt:
			for _, s := range tr.ExprSeeds(x.Value) {
				emit(s, x, "sent on a channel")
			}
		case *ast.CompositeLit:
			for _, elt := range x.Elts {
				v := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				for _, s := range tr.ExprSeeds(v) {
					emit(s, elt, "placed in a composite literal")
				}
			}
		}
		return true
	})
}

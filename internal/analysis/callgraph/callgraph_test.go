package callgraph

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// check parses and typechecks one package from src, resolving imports of
// previously checked packages via deps.
func check(t *testing.T, fset *token.FileSet, path, src string, deps map[string]*types.Package) *Source {
	t.Helper()
	f, err := parser.ParseFile(fset, path+".go", src, 0)
	if err != nil {
		t.Fatalf("parse %s: %v", path, err)
	}
	info := &types.Info{
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Types:      make(map[ast.Expr]types.TypeAndValue),
	}
	imp := mapImporter{deps: deps, fallback: importer.Default()}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck %s: %v", path, err)
	}
	deps[path] = pkg
	return &Source{Fset: fset, Files: []*ast.File{f}, Pkg: pkg, Info: info}
}

type mapImporter struct {
	deps     map[string]*types.Package
	fallback types.Importer
}

func (m mapImporter) Import(path string) (*types.Package, error) {
	if p, ok := m.deps[path]; ok {
		return p, nil
	}
	return m.fallback.Import(path)
}

func findFunc(src *Source, name string) *types.Func {
	obj := src.Pkg.Scope().Lookup(name)
	if fn, ok := obj.(*types.Func); ok {
		return fn
	}
	return nil
}

func findMethod(src *Source, typeName, method string) *types.Func {
	tn := src.Pkg.Scope().Lookup(typeName).(*types.TypeName)
	obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(tn.Type()), false, src.Pkg, method)
	return obj.(*types.Func)
}

const implSrc = `package impl

type Disk struct{ n int }

func (d *Disk) Flush() { d.fsync() }
func (d *Disk) fsync() {}

type Mem struct{}

func (Mem) Flush() {}
`

const mainSrc = `package main

import "impl"

type Flusher interface{ Flush() }

func UseIface(f Flusher) { f.Flush() }

func UseStatic() {
	d := &impl.Disk{}
	d.Flush()
}

func SpawnGo() {
	go UseStatic()
}

func InLit() func() {
	return func() { UseStatic() }
}
`

func buildTestGraph(t *testing.T) (*Graph, *Source, *Source) {
	t.Helper()
	fset := token.NewFileSet()
	deps := make(map[string]*types.Package)
	impl := check(t, fset, "impl", implSrc, deps)
	main := check(t, fset, "main", mainSrc, deps)
	g := Build([]*Source{impl, main})
	return g, impl, main
}

func TestStaticEdge(t *testing.T) {
	g, impl, main := buildTestGraph(t)
	n := g.Node(findFunc(main, "UseStatic"))
	if n == nil {
		t.Fatal("no node for UseStatic")
	}
	want := findMethod(impl, "Disk", "Flush")
	found := false
	for _, e := range n.Out {
		if e.Callee.Func == want && !e.ViaInterface {
			found = true
		}
	}
	if !found {
		t.Errorf("UseStatic should have a static edge to (*Disk).Flush; edges: %v", edgeNames(n))
	}
}

func TestInterfaceCHAFanout(t *testing.T) {
	g, impl, main := buildTestGraph(t)
	n := g.Node(findFunc(main, "UseIface"))
	if n == nil {
		t.Fatal("no node for UseIface")
	}
	wantDisk := findMethod(impl, "Disk", "Flush")
	wantMem := findMethod(impl, "Mem", "Flush")
	var gotDisk, gotMem bool
	for _, e := range n.Out {
		if !e.ViaInterface {
			t.Errorf("UseIface edge to %s not marked ViaInterface", e.Callee.Func.Name())
		}
		if e.Callee.Func == wantDisk {
			gotDisk = true
		}
		if e.Callee.Func == wantMem {
			gotMem = true
		}
	}
	if !gotDisk || !gotMem {
		t.Errorf("CHA should fan out to both Disk and Mem Flush; got %v", edgeNames(n))
	}
}

func TestGoAndLitFlags(t *testing.T) {
	g, _, main := buildTestGraph(t)
	spawn := g.Node(findFunc(main, "SpawnGo"))
	if len(spawn.Out) != 1 || !spawn.Out[0].InGo {
		t.Errorf("SpawnGo's edge should be InGo: %+v", spawn.Out)
	}
	lit := g.Node(findFunc(main, "InLit"))
	if len(lit.Out) != 1 || !lit.Out[0].InLit {
		t.Errorf("InLit's edge should be InLit: %+v", lit.Out)
	}
}

func TestCalleesAt(t *testing.T) {
	g, _, main := buildTestGraph(t)
	n := g.Node(findFunc(main, "UseIface"))
	var call *ast.CallExpr
	ast.Inspect(n.Decl, func(x ast.Node) bool {
		if c, ok := x.(*ast.CallExpr); ok {
			call = c
		}
		return true
	})
	if got := g.CalleesAt(call); len(got) != 2 {
		t.Errorf("CalleesAt should list both CHA targets, got %d", len(got))
	}
}

func TestTransitiveWitness(t *testing.T) {
	g, impl, main := buildTestGraph(t)
	fsync := findMethod(impl, "Disk", "fsync")
	trans := g.Transitive(func(n *Node) string {
		if n.Func == fsync {
			return "fsyncs"
		}
		return ""
	}, func(e *Edge) bool { return e.InGo || e.InLit })

	// UseStatic -> (*Disk).Flush -> fsync: transitive, with a chain.
	w := trans[findFunc(main, "UseStatic")]
	if w == nil {
		t.Fatal("UseStatic should transitively fsync")
	}
	if w.Why != "fsyncs" || len(w.Path) != 2 {
		t.Errorf("witness = %q path %v, want fsyncs via Flush -> fsync", w.Why, w.Chain())
	}
	// SpawnGo reaches it only via a go statement — excluded by skip.
	if trans[findFunc(main, "SpawnGo")] != nil {
		t.Error("SpawnGo's go-stmt edge should be skipped")
	}
	// UseIface reaches fsync via the CHA edge to (*Disk).Flush.
	if trans[findFunc(main, "UseIface")] == nil {
		t.Error("UseIface should transitively fsync via CHA")
	}
	// Mem.Flush does not fsync.
	if trans[findMethod(impl, "Mem", "Flush")] != nil {
		t.Error("Mem.Flush should not have the property")
	}
}

func edgeNames(n *Node) []string {
	var out []string
	for _, e := range n.Out {
		out = append(out, e.Callee.Func.FullName())
	}
	return out
}

// Package callgraph builds a type-informed call graph over a set of loaded
// packages, the interprocedural half of the deltavet engine. Resolution is
// CHA-style (class hierarchy analysis): static calls resolve to their one
// target, and a call through an interface method fans out to that method on
// every named type in the analyzed packages that implements the interface.
//
// Soundness limits (documented, deliberate — see DESIGN.md §12):
//
//   - Calls through function-typed values (fields, parameters, closures
//     passed around) are unresolved: no edge. Directive-style contracts
//     (e.g. the Locked-suffix convention) cover the project's uses.
//   - Interface implementations in *imported* (non-analyzed) packages are
//     not candidates; only source packages contribute CHA targets.
//   - A call inside a `go` statement or a function literal gets an edge
//     flagged InGo/InLit so lock-sensitive analyses can exclude it (the
//     goroutine or the literal's eventual caller runs it, not this frame).
package callgraph

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Source is one analyzed package: the parsed files plus type information.
// It mirrors the loader's package shape without importing it (the analysis
// package imports callgraph, not the other way around).
type Source struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Node is one function in the graph. Decl and Src are nil for functions
// without analyzed source (imported ones like os.Rename); such nodes exist
// so summaries can classify them by identity.
type Node struct {
	Func *types.Func
	Decl *ast.FuncDecl
	Src  *Source
	Out  []*Edge
}

// Edge is one call site resolved to one possible callee.
type Edge struct {
	Caller       *Node
	Callee       *Node
	Site         *ast.CallExpr
	ViaInterface bool // resolved by CHA over an interface method
	InLit        bool // site is inside a function literal of the caller
	InGo         bool // site is inside a go statement's subtree
}

// Graph is the whole-program call graph.
type Graph struct {
	nodes   map[*types.Func]*Node
	order   []*Node // insertion order: source nodes first, deterministic
	callees map[*ast.CallExpr][]*Node
}

// Build constructs the graph over the given packages.
func Build(srcs []*Source) *Graph {
	g := &Graph{
		nodes:   make(map[*types.Func]*Node),
		callees: make(map[*ast.CallExpr][]*Node),
	}
	// Pass 1: a node per source function declaration.
	for _, src := range srcs {
		for _, f := range src.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Name == nil {
					continue
				}
				fn, ok := src.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := g.ensure(fn)
				n.Decl = fd
				n.Src = src
			}
		}
	}
	// CHA candidate set: every named, non-interface type declared in the
	// analyzed packages.
	var named []*types.Named
	for _, src := range srcs {
		scope := src.Pkg.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			if nt, ok := tn.Type().(*types.Named); ok && !types.IsInterface(nt) {
				named = append(named, nt)
			}
		}
	}
	// Pass 2: edges.
	for _, n := range g.order {
		if n.Decl == nil || n.Decl.Body == nil {
			continue
		}
		w := &edgeWalker{g: g, caller: n, info: n.Src.Info, named: named}
		w.walk(n.Decl.Body, false, false)
	}
	return g
}

func (g *Graph) ensure(fn *types.Func) *Node {
	if n := g.nodes[fn]; n != nil {
		return n
	}
	n := &Node{Func: fn}
	g.nodes[fn] = n
	g.order = append(g.order, n)
	return n
}

// Node returns the graph node for fn, or nil if fn was never seen.
func (g *Graph) Node(fn *types.Func) *Node {
	if fn == nil {
		return nil
	}
	return g.nodes[fn]
}

// Nodes returns every node in deterministic order.
func (g *Graph) Nodes() []*Node { return g.order }

// CalleesAt returns the possible callees of a call site as resolved during
// Build: a single static target, or the CHA expansion of an interface
// method. Nil for unresolved sites (function values, builtins).
func (g *Graph) CalleesAt(call *ast.CallExpr) []*Node { return g.callees[call] }

type edgeWalker struct {
	g      *Graph
	caller *Node
	info   *types.Info
	named  []*types.Named
}

// walk visits n recording call edges, tracking whether the current subtree
// is inside a function literal or a go statement.
func (w *edgeWalker) walk(n ast.Node, inLit, inGo bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			w.walk(n.Body, true, inGo)
			return false
		case *ast.GoStmt:
			w.walk(n.Call, inLit, true)
			return false
		case *ast.CallExpr:
			w.call(n, inLit, inGo)
		}
		return true
	})
}

func (w *edgeWalker) call(call *ast.CallExpr, inLit, inGo bool) {
	fn, viaIface, iface := resolve(w.info, call)
	if fn == nil {
		return
	}
	var targets []*types.Func
	if viaIface {
		targets = w.chaTargets(iface, fn.Name())
		if len(targets) == 0 {
			targets = []*types.Func{fn} // keep the abstract method as callee
		}
	} else {
		targets = []*types.Func{fn}
	}
	for _, t := range targets {
		callee := w.g.ensure(t)
		e := &Edge{
			Caller: w.caller, Callee: callee, Site: call,
			ViaInterface: viaIface, InLit: inLit, InGo: inGo,
		}
		w.caller.Out = append(w.caller.Out, e)
		w.g.callees[call] = append(w.g.callees[call], callee)
	}
}

// chaTargets finds the concrete methods name on every analyzed named type
// implementing iface, in deterministic order.
func (w *edgeWalker) chaTargets(iface *types.Interface, name string) []*types.Func {
	var out []*types.Func
	seen := make(map[*types.Func]bool)
	for _, nt := range w.named {
		ptr := types.NewPointer(nt)
		if !types.Implements(nt, iface) && !types.Implements(ptr, iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(ptr, false, nt.Obj().Pkg(), name)
		if m, ok := obj.(*types.Func); ok && !seen[m] {
			seen[m] = true
			out = append(out, m)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}

// resolve finds the static callee of a call. For a call through an
// interface method it additionally returns the interface type so CHA can
// expand it.
func resolve(info *types.Info, call *ast.CallExpr) (fn *types.Func, viaIface bool, iface *types.Interface) {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ = info.Uses[f].(*types.Func)
		return fn, false, nil
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[f]; ok && sel.Kind() == types.MethodVal {
			m, _ := sel.Obj().(*types.Func)
			if m == nil {
				return nil, false, nil
			}
			if it, ok := sel.Recv().Underlying().(*types.Interface); ok {
				return m, true, it
			}
			return m, false, nil
		}
		// Package-qualified function: pkg.Func.
		fn, _ = info.Uses[f.Sel].(*types.Func)
		return fn, false, nil
	}
	return nil, false, nil
}

// Witness explains why a transitive property holds for a function: Why is
// the direct reason at the end of the chain, Path the callee chain from the
// queried function down to (and including) the function it holds on
// directly. An empty Path means the property holds directly.
type Witness struct {
	Why  string
	Path []*types.Func
}

// Chain renders "a → b → c" style suffix for diagnostics, empty when the
// property is direct.
func (w *Witness) Chain() string {
	s := ""
	for i, fn := range w.Path {
		if i > 0 {
			s += " -> "
		}
		s += fn.Name()
	}
	return s
}

// Transitive computes, for every function in the graph, whether a property
// holds on it directly (direct returns a non-empty reason) or on any
// transitive callee, skipping edges for which skip returns true. The
// result maps each function with the property to a witness; functions
// without it are absent. Runs a fixpoint, so cycles are handled.
func (g *Graph) Transitive(direct func(*Node) string, skip func(*Edge) bool) map[*types.Func]*Witness {
	out := make(map[*types.Func]*Witness)
	for _, n := range g.order {
		if why := direct(n); why != "" {
			out[n.Func] = &Witness{Why: why}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, n := range g.order {
			if out[n.Func] != nil {
				continue
			}
			for _, e := range n.Out {
				if skip != nil && skip(e) {
					continue
				}
				cw := out[e.Callee.Func]
				if cw == nil {
					continue
				}
				path := make([]*types.Func, 0, len(cw.Path)+1)
				path = append(path, e.Callee.Func)
				path = append(path, cw.Path...)
				out[n.Func] = &Witness{Why: cw.Why, Path: path}
				changed = true
				break
			}
		}
	}
	return out
}

package errsync_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/errsync"
)

func TestErrSync(t *testing.T) {
	analysistest.Run(t, errsync.Analyzer, "discards")
}

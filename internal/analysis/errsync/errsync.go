// Package errsync flags discarded errors from the durability layer: kvstore
// WAL writes, server snapshot Save/Load, undo-log appends and snapshots,
// integrity store mutations, and the storagefault layer's fsync/rename/
// dirsync primitives. A dropped error from any of these silently breaks the
// crash-consistency story — the WAL record the recovery path will replay
// was never durable, or the snapshot the resume protocol trusts is partial.
//
// A call is "discarded" when it appears as a bare statement, as a `go` or
// `defer` call, or when every error-typed result is assigned to the blank
// identifier. Best-effort sites (e.g. the background committer's periodic
// Sync, where the next commit retries) carry an inline
// //deltavet:allow errsync <reason> comment, or — for genuinely advisory
// writes — record the error in a counter instead of dropping it.
package errsync

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the errsync checker.
var Analyzer = &analysis.Analyzer{
	Name: "errsync",
	Doc:  "errors from WAL writes, snapshot save/load, undo-log appends, and integrity mutations must not be discarded",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					report(pass, call, "ignored")
				}
			case *ast.DeferStmt:
				report(pass, n.Call, "deferred with its error ignored")
			case *ast.GoStmt:
				report(pass, n.Call, "spawned with its error ignored")
			case *ast.AssignStmt:
				checkAssign(pass, n)
			}
			return true
		})
	}
	return nil
}

// report flags call if it is a durability-critical call returning an error.
func report(pass *analysis.Pass, call *ast.CallExpr, how string) {
	if why := criticalCall(pass, call); why != "" {
		pass.Reportf(call.Pos(), "%s %s: this error is load-bearing for crash consistency; handle it or record it", why, how)
	}
}

// checkAssign flags a critical call whose error results all land in blanks.
func checkAssign(pass *analysis.Pass, as *ast.AssignStmt) {
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	why := criticalCall(pass, call)
	if why == "" {
		return
	}
	tv, ok := pass.TypesInfo.Types[call]
	if !ok {
		return
	}
	// Positions of error-typed results in the call's result tuple.
	var errIdx []int
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				errIdx = append(errIdx, i)
			}
		}
	default:
		if isErrorType(tv.Type) {
			errIdx = []int{0}
		}
	}
	if len(errIdx) == 0 {
		return
	}
	for _, i := range errIdx {
		if i >= len(as.Lhs) || !isBlank(as.Lhs[i]) {
			return // at least one error result is captured
		}
	}
	pass.Reportf(call.Pos(), "%s with its error assigned to _: this error is load-bearing for crash consistency; handle it or record it", why)
}

// criticalCall classifies a call as durability-critical, returning a
// description ("" = not critical). Besides direct calls, a call through an
// interface whose CHA-resolved concrete target is critical is flagged too
// (e.g. dropping the error of an interface-typed store whose implementation
// is the kvstore).
func criticalCall(pass *analysis.Pass, call *ast.CallExpr) string {
	if why := classifyCritical(analysis.CalleeOf(pass.TypesInfo, call)); why != "" {
		return why
	}
	for _, n := range pass.Prog.Graph.CalleesAt(call) {
		if why := classifyCritical(n.Func); why != "" {
			return why + " (via interface dispatch)"
		}
	}
	return ""
}

// classifyCritical classifies one resolved function by identity.
func classifyCritical(fn *types.Func) string {
	if fn == nil {
		return ""
	}
	pkg := analysis.PkgPathOf(fn)
	recv := analysis.RecvTypeName(fn)
	name := fn.Name()
	switch {
	case analysis.PathSuffixMatch(pkg, "internal/kvstore") && recv == "Store":
		switch name {
		case "Put", "Delete", "Sync", "Compact", "Close":
			return "kvstore WAL write Store." + name
		}
	case analysis.PathSuffixMatch(pkg, "internal/server") && recv == "Server":
		switch name {
		case "Save", "Load", "SaveFile", "LoadFile":
			return "snapshot Server." + name
		}
	case analysis.PathSuffixMatch(pkg, "internal/undolog") && recv == "Log":
		switch name {
		case "BeforeWrite", "BeforeTruncate":
			return "undo-log append Log." + name
		case "SaveTo":
			return "undo-log snapshot Log." + name
		}
	case analysis.PathSuffixMatch(pkg, "internal/storagefault"):
		// The storage layer's durability primitives: a dropped Sync error
		// is the fsyncgate bug itself (the kernel marked the dirty pages
		// clean; nobody will retry), and a dropped Rename/SyncDir error
		// leaves an atomic replace half-published.
		switch name {
		case "Sync", "SyncDir":
			return "storage fsync " + recv + "." + name
		case "Rename":
			if recv != "" {
				return "storage rename " + recv + "." + name
			}
		}
	case analysis.PathSuffixMatch(pkg, "internal/integrity") && recv == "Store":
		switch name {
		case "SetFile", "Rename", "Remove", "UpdateRange", "Truncate":
			return "integrity mutation Store." + name
		}
	}
	return ""
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// Package kvstore is a fixture stand-in for repro/internal/kvstore (the
// analyzers match project packages by import-path suffix). It exists so the
// errsync interface-dispatch case has a CHA candidate inside the analyzed
// fixture set — imported packages contribute no CHA targets.
package kvstore

type Store struct{}

func (s *Store) Put(k, v []byte) error { return nil }

func (s *Store) Sync() error { return nil }

// Package discards is the errsync fixture: durability-critical calls whose
// errors are dropped, next to the properly handled shapes.
package discards

import (
	"repro/internal/integrity"
	"repro/internal/kvstore"
	"repro/internal/server"
	"repro/internal/undolog"
)

type S struct {
	kv    *kvstore.Store
	integ *integrity.Store
	ul    *undolog.Log
	srv   *server.Server
}

func (s *S) BadBareStatement() {
	s.kv.Put([]byte("k"), []byte("v")) // want `kvstore WAL write Store\.Put ignored`
}

func (s *S) BadBlankAssign() {
	_ = s.kv.Delete([]byte("k")) // want `kvstore WAL write Store\.Delete with its error assigned to _`
}

func (s *S) BadDeferredClose() {
	defer s.kv.Close() // want `kvstore WAL write Store\.Close deferred with its error ignored`
}

func (s *S) OKHandled() {
	if err := s.kv.Put([]byte("k"), nil); err != nil {
		panic(err)
	}
}

func (s *S) OKReturned() error {
	return s.kv.Sync()
}

func (s *S) BadIntegrityRename() {
	_ = s.integ.Rename("a", "b") // want `integrity mutation Store\.Rename with its error assigned to _`
}

func (s *S) BadUndolog(read func(off, n int64) ([]byte, error)) {
	_ = s.ul.BeforeWrite("p", 0, 8, read) // want `undo-log append Log\.BeforeWrite with its error assigned to _`
}

func (s *S) BadSnapshot() {
	s.srv.SaveFile("snap") // want `snapshot Server\.SaveFile ignored`
}

func (s *S) BadLoadBlankErr() bool {
	ok, _ := s.srv.LoadFile("snap") // want `snapshot Server\.LoadFile with its error assigned to _`
	return ok
}

func (s *S) OKLoadCaptured() (bool, error) {
	ok, err := s.srv.LoadFile("snap")
	return ok, err
}

func (s *S) OKNonCritical() {
	m := map[string]int{}
	delete(m, "k")
}

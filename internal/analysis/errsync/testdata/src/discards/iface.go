package discards

import (
	fixkv "fix/internal/kvstore"
)

// putter is satisfied by the fixture kvstore.Store; a discarded error on a
// call through it is caught by CHA resolution, not direct callee identity.
type putter interface {
	Put(k, v []byte) error
}

func BadViaInterface(p putter) {
	p.Put([]byte("k"), []byte("v")) // want `kvstore WAL write Store\.Put \(via interface dispatch\) ignored`
}

func OKViaInterface(p putter) error {
	return p.Put([]byte("k"), nil)
}

var _ putter = (*fixkv.Store)(nil)

package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, type-checked package.
type Package struct {
	PkgPath   string
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listedPkg is the subset of `go list -json` output the loader consumes.
type listedPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load lists the packages matching patterns (relative to dir; "" = cwd) with
// `go list -export -deps -json` and type-checks the non-dependency matches
// from source. True dependencies — standard library and DepOnly module
// packages — are resolved from the compiler export data the build cache
// already holds, so loading works fully offline and never re-typechecks the
// world. Analyzed packages that import each other resolve to the SAME
// source-checked *types.Package: `go list -deps` emits packages in
// dependency order, and the importer prefers already-checked source
// packages over export data. Without that, a *types.Func reached from a
// sibling package would be a distinct export-data object and every
// cross-package interprocedural fact (call-graph edges, taint, blocking
// summaries) would silently miss.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	for _, lp := range listed {
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
	}
	fset := token.NewFileSet()
	imp := &sourceFirstImporter{
		src:      make(map[string]*types.Package),
		fallback: NewExportImporter(fset, exports),
	}
	var out []*Package
	for _, lp := range listed {
		if lp.DepOnly {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("load %s: %s", lp.ImportPath, lp.Error.Err)
		}
		pkg, err := checkDir(fset, imp, lp.ImportPath, lp.Dir, lp.GoFiles)
		if err != nil {
			return nil, err
		}
		imp.src[lp.ImportPath] = pkg.Types
		out = append(out, pkg)
	}
	return out, nil
}

// sourceFirstImporter resolves analyzed packages to their source-checked
// instance and everything else from export data, keeping object identity
// consistent across the whole loaded program.
type sourceFirstImporter struct {
	src      map[string]*types.Package
	fallback types.Importer
}

func (si *sourceFirstImporter) Import(path string) (*types.Package, error) {
	if p, ok := si.src[path]; ok {
		return p, nil
	}
	return si.fallback.Import(path)
}

func goList(dir string, patterns ...string) ([]listedPkg, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json=ImportPath,Dir,Export,GoFiles,DepOnly,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %w\n%s", patterns, err, stderr.String())
	}
	dec := json.NewDecoder(&stdout)
	var out []listedPkg
	for {
		var lp listedPkg
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decode: %w", err)
		}
		out = append(out, lp)
	}
	return out, nil
}

// checkDir parses and type-checks one package's files.
func checkDir(fset *token.FileSet, imp types.Importer, pkgPath, dir string, goFiles []string) (*Package, error) {
	var files []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %w", name, err)
		}
		files = append(files, f)
	}
	info := NewTypesInfo()
	conf := types.Config{Importer: imp, Error: func(error) {}}
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", pkgPath, err)
	}
	return &Package{
		PkgPath:   pkgPath,
		Dir:       dir,
		Fset:      fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}

// NewTypesInfo returns a types.Info with every map the analyzers consult.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// exportImporter resolves import paths to compiler export data files (as
// reported by `go list -export`), delegating the decode to the standard gc
// importer. Packages the export map does not cover fail with a clear error.
type exportImporter struct {
	gc      types.Importer
	exports map[string]string
}

// NewExportImporter returns an importer backed by an ImportPath -> export
// file map.
func NewExportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	ei := &exportImporter{exports: exports}
	ei.gc = importer.ForCompiler(fset, "gc", ei.lookup)
	return ei
}

func (ei *exportImporter) lookup(path string) (io.ReadCloser, error) {
	file, ok := ei.exports[path]
	if !ok {
		return nil, fmt.Errorf("analysis: no export data for %q (not in the loaded dependency closure)", path)
	}
	return os.Open(file)
}

func (ei *exportImporter) Import(path string) (*types.Package, error) {
	return ei.gc.Import(path)
}

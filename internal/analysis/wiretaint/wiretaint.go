// Package wiretaint tracks values decoded off the wire to the allocation,
// slicing, and filesystem operations they reach, and demands a validation
// step in between. A length prefix, node count, offset, or path in a wire
// message is attacker-controlled: using it to size a make, bound a slice,
// or name a file without a bounds/Clean-style check lets a hostile peer
// allocate unbounded memory, panic the server, or escape the sync root.
//
// Taint sources: any field read from a struct defined in a package whose
// import path ends in internal/wire (the codec layer), and any function
// parameter that some call site — resolved through the program call graph,
// including CHA interface dispatch — feeds a tainted argument. Parameter
// taint is a program-wide fixpoint, so a helper three calls away from the
// decoder is still checked. len(x) of a tainted value is NOT tainted: a
// decoded buffer's actual length is ground truth, unlike the length the
// peer claimed.
//
// Sinks:
//   - make(T, n) / make(T, n, c) with a tainted size;
//   - slice or index expressions on slices, arrays, and strings with a
//     tainted bound (map indexing is exempt — maps cannot over-allocate or
//     panic on a hostile key);
//   - path arguments to filesystem operations: the os file functions and
//     methods named like Open/Create/Remove/Rename/WriteFile on *FS types
//     (e.g. the vfs DirFS).
//
// Sanitizers (flow-insensitive, per function): a comparison mentioning the
// value in any if/for condition, or passing it to (or calling a method on
// its receiver named) Valid*/Check*/Clean*/Clamp*-style functions. Calling
// a Validate-style method on a wire struct sanitizes all of that struct
// type's fields for the rest of the function. Flow-insensitivity means a
// check placed after the sink still counts — the analyzer trades that
// (unlikely) miss for zero false positives on guard-then-use code.
package wiretaint

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/callgraph"
)

// Analyzer is the wiretaint checker.
var Analyzer = &analysis.Analyzer{
	Name: "wiretaint",
	Doc:  "wire-decoded lengths, counts, offsets, and paths must be validated before allocation, slicing, or filesystem use",
	Run:  run,
}

// WirePathSuffix identifies the codec package whose struct fields are
// taint sources.
const WirePathSuffix = "internal/wire"

// taintFact is the program-wide parameter-taint summary: for each function,
// which parameter indices receive wire-tainted arguments from some caller,
// with a human-readable origin chain for the diagnostic.
type taintFact struct {
	params map[*types.Func]map[int]string
}

func buildFact(prog *analysis.Program) *taintFact {
	fact := &taintFact{params: make(map[*types.Func]map[int]string)}
	nodes := prog.Graph.Nodes()
	for changed := true; changed; {
		changed = false
		for _, n := range nodes {
			if n.Decl == nil || n.Decl.Body == nil || n.Src == nil {
				continue
			}
			info := n.Src.Info
			tainted, sanitized := funcTaint(info, n.Decl, fact.params[n.Func])
			caller := n.Func.Name()
			ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
				call, ok := x.(*ast.CallExpr)
				if !ok {
					return true
				}
				for _, callee := range calleesOf(prog.Graph, info, call) {
					if callee.Decl == nil || callee.Decl.Body == nil {
						continue
					}
					sig, ok := callee.Func.Type().(*types.Signature)
					if !ok {
						continue
					}
					for i, arg := range call.Args {
						if i >= sig.Params().Len() {
							break // variadic tail: index i is not a distinct param
						}
						if !taintedExpr(info, arg, tainted, sanitized) {
							continue
						}
						m := fact.params[callee.Func]
						if m == nil {
							m = make(map[int]string)
							fact.params[callee.Func] = m
						}
						if _, seen := m[i]; !seen {
							origin := caller
							// Extend the chain when the argument's taint
							// itself arrived via one of our parameters.
							if from := paramOrigin(info, arg, n, fact.params[n.Func]); from != "" {
								origin = from + " -> " + caller
							}
							m[i] = origin
							changed = true
						}
					}
				}
				return true
			})
		}
	}
	return fact
}

// calleesOf resolves a call site to graph nodes: the static callee plus any
// CHA interface-dispatch candidates.
func calleesOf(g *callgraph.Graph, info *types.Info, call *ast.CallExpr) []*callgraph.Node {
	var out []*callgraph.Node
	if fn := analysis.CalleeOf(info, call); fn != nil {
		if n := g.Node(fn); n != nil {
			out = append(out, n)
		}
	}
	out = append(out, g.CalleesAt(call)...)
	return out
}

// paramOrigin reports the origin chain when arg's taint stems from one of
// the enclosing function's own tainted parameters.
func paramOrigin(info *types.Info, arg ast.Expr, n *callgraph.Node, params map[int]string) string {
	if len(params) == 0 {
		return ""
	}
	sig, ok := n.Func.Type().(*types.Signature)
	if !ok {
		return ""
	}
	origin := ""
	ast.Inspect(arg, func(x ast.Node) bool {
		id, ok := x.(*ast.Ident)
		if !ok || origin != "" {
			return origin == ""
		}
		obj := info.Uses[id]
		for i, chain := range params {
			if i < sig.Params().Len() && sig.Params().At(i) == obj {
				origin = chain
			}
		}
		return origin == ""
	})
	return origin
}

func run(pass *analysis.Pass) error {
	fact := pass.Prog.Fact(pass.Analyzer, func(prog *analysis.Program) any {
		return buildFact(prog)
	}).(*taintFact)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd, fact)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, fact *taintFact) {
	info := pass.TypesInfo
	var fn *types.Func
	if obj, ok := info.Defs[fd.Name].(*types.Func); ok {
		fn = obj
	}
	params := fact.params[fn]
	tainted, sanitized := funcTaint(info, fd, params)
	via := func(e ast.Expr) string {
		if origin := paramOriginForExpr(info, e, fn, params); origin != "" {
			return " [wire value flows in via " + origin + " -> " + fn.Name() + "]"
		}
		return ""
	}
	ast.Inspect(fd.Body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.CallExpr:
			checkCall(pass, x, tainted, sanitized, via)
		case *ast.SliceExpr:
			if !sliceable(info, x.X) {
				return true
			}
			for _, b := range []ast.Expr{x.Low, x.High, x.Max} {
				if b != nil && !boundedExpr(b) && taintedExpr(info, b, tainted, sanitized) {
					pass.Reportf(b.Pos(), "wire-derived value %s used as a slice bound without a bounds check: a hostile peer can panic this function%s", analysis.ExprString(b), via(b))
				}
			}
		case *ast.IndexExpr:
			if sliceable(info, x.X) && !boundedExpr(x.Index) && taintedExpr(info, x.Index, tainted, sanitized) {
				pass.Reportf(x.Index.Pos(), "wire-derived value %s used as an index without a bounds check: a hostile peer can panic this function%s", analysis.ExprString(x.Index), via(x.Index))
			}
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr, tainted, sanitized map[types.Object]bool, via func(ast.Expr) string) {
	info := pass.TypesInfo
	// make with a tainted size or capacity.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "make" && isBuiltin(info.Uses[id]) {
		for _, sz := range call.Args[1:] {
			if taintedExpr(info, sz, tainted, sanitized) {
				pass.Reportf(sz.Pos(), "wire-derived length %s used to size an allocation without a bounds check: a hostile peer controls this allocation%s", analysis.ExprString(sz), via(sz))
			}
		}
		return
	}
	// Filesystem operations with a tainted path.
	fn := analysis.CalleeOf(info, call)
	if fn == nil || !isFSOp(fn) {
		return
	}
	for _, arg := range call.Args {
		tv, ok := info.Types[arg]
		if !ok || tv.Type == nil || !isStringType(tv.Type) {
			continue
		}
		if taintedExpr(info, arg, tainted, sanitized) {
			pass.Reportf(arg.Pos(), "wire-derived path %s passed to %s without validation: a hostile peer can reach outside the sync root (filepath.Clean + IsLocal it first)%s", analysis.ExprString(arg), fn.Name(), via(arg))
		}
	}
}

// boundedExpr recognizes index/bound expressions that are intrinsically
// bounded regardless of taint: a modulo or a bitmask AND (the stripe-index
// idiom h % n / h & (n-1)).
func boundedExpr(e ast.Expr) bool {
	be, ok := ast.Unparen(e).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch be.Op.String() {
	case "%", "&":
		return true
	}
	return false
}

// paramOriginForExpr mirrors paramOrigin for the reporting pass.
func paramOriginForExpr(info *types.Info, e ast.Expr, fn *types.Func, params map[int]string) string {
	if fn == nil || len(params) == 0 {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return ""
	}
	origin := ""
	ast.Inspect(e, func(x ast.Node) bool {
		id, ok := x.(*ast.Ident)
		if !ok || origin != "" {
			return origin == ""
		}
		obj := info.Uses[id]
		for i, chain := range params {
			if i < sig.Params().Len() && sig.Params().At(i) == obj {
				origin = chain
			}
		}
		return origin == ""
	})
	return origin
}

// funcTaint computes the function's tainted and sanitized object sets.
// Objects are field *types.Var for wire-struct field reads (global per
// field, which conflates distinct instances of the same message type — an
// accepted imprecision) and local *types.Var for idents.
func funcTaint(info *types.Info, fd *ast.FuncDecl, params map[int]string) (tainted, sanitized map[types.Object]bool) {
	tainted = make(map[types.Object]bool)
	sanitized = make(map[types.Object]bool)

	// Seed: parameters the program-wide fixpoint marked tainted.
	if fn, ok := info.Defs[fd.Name].(*types.Func); ok && len(params) > 0 {
		if sig, ok := fn.Type().(*types.Signature); ok {
			for i := range params {
				if i < sig.Params().Len() {
					tainted[sig.Params().At(i)] = true
				}
			}
		}
	}

	// Sanitizers are independent of the taint closure; collect them first.
	ast.Inspect(fd.Body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.IfStmt:
			markComparisons(info, x.Cond, sanitized)
		case *ast.ForStmt:
			if x.Cond != nil {
				markComparisons(info, x.Cond, sanitized)
			}
		case *ast.SwitchStmt:
			if x.Tag != nil {
				markObjects(info, x.Tag, sanitized)
			}
			markComparisons(info, x, sanitized)
		case *ast.CallExpr:
			markValidationCall(info, x, sanitized)
		}
		return true
	})

	// Taint closure over assignments (flow-insensitive; a few rounds reach
	// the fixpoint for any realistic chain of locals).
	for round := 0; round < 4; round++ {
		changed := false
		ast.Inspect(fd.Body, func(x ast.Node) bool {
			as, ok := x.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, rhs := range as.Rhs {
				if !taintedExpr(info, rhs, tainted, sanitized) {
					continue
				}
				id, ok := as.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				if obj != nil && !tainted[obj] {
					tainted[obj] = true
					changed = true
				}
			}
			return true
		})
		if !changed {
			break
		}
	}
	return tainted, sanitized
}

// taintedExpr reports whether e mentions a tainted, unsanitized value: a
// wire-struct field read or a tainted object. Nested non-conversion calls
// are opaque (their results are not modeled), and len(x) launders taint.
func taintedExpr(info *types.Info, e ast.Expr, tainted, sanitized map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(x ast.Node) bool {
		if found {
			return false
		}
		switch x := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			// Conversions like int(d.Len) carry taint; calls do not.
			if tv, ok := info.Types[x.Fun]; ok && tv.IsType() {
				return true
			}
			return false
		case *ast.SelectorExpr:
			if obj := info.Uses[x.Sel]; obj != nil && isWireField(obj) && !sanitized[obj] {
				found = true
				return false
			}
		case *ast.Ident:
			if obj := info.Uses[x]; obj != nil && tainted[obj] && !sanitized[obj] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isWireField reports whether obj is a struct field of a type defined in
// the wire codec package.
func isWireField(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok || !v.IsField() || v.Pkg() == nil {
		return false
	}
	return analysis.PathSuffixMatch(v.Pkg().Path(), WirePathSuffix)
}

// markComparisons records every object mentioned on either side of a
// comparison operator inside cond.
func markComparisons(info *types.Info, cond ast.Node, sanitized map[types.Object]bool) {
	ast.Inspect(cond, func(x ast.Node) bool {
		be, ok := x.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		// Only ordered comparisons bound a value's magnitude; == / != do
		// not (a huge length passes a != check just fine).
		switch be.Op.String() {
		case "<", "<=", ">", ">=":
			markObjects(info, be.X, sanitized)
			markObjects(info, be.Y, sanitized)
		}
		return true
	})
}

// markValidationCall sanitizes arguments to (and the receiver fields of)
// Valid*/Check*/Clean*/Clamp*-style calls.
func markValidationCall(info *types.Info, call *ast.CallExpr, sanitized map[types.Object]bool) {
	name := ""
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		name = f.Name
	case *ast.SelectorExpr:
		name = f.Sel.Name
	}
	l := strings.ToLower(name)
	ok := false
	for _, p := range []string{"valid", "check", "clean", "clamp", "sanitize"} {
		if strings.HasPrefix(l, p) {
			ok = true
		}
	}
	if !ok {
		return
	}
	for _, arg := range call.Args {
		markObjects(info, arg, sanitized)
	}
	// x.Validate() on a wire struct sanitizes all fields of that type.
	if sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr); isSel {
		markObjects(info, sel.X, sanitized)
		if tv, has := info.Types[sel.X]; has && tv.Type != nil {
			if _, pkgPath := analysis.NamedType(tv.Type); analysis.PathSuffixMatch(pkgPath, WirePathSuffix) {
				markWireFields(tv.Type, sanitized)
			}
		}
	}
}

func markWireFields(t types.Type, sanitized map[types.Object]bool) {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i := 0; i < st.NumFields(); i++ {
		sanitized[st.Field(i)] = true
	}
}

func markObjects(info *types.Info, e ast.Node, sanitized map[types.Object]bool) {
	ast.Inspect(e, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.Ident:
			if obj := info.Uses[x]; obj != nil {
				sanitized[obj] = true
			}
		case *ast.SelectorExpr:
			if obj := info.Uses[x.Sel]; obj != nil {
				sanitized[obj] = true
			}
		}
		return true
	})
}

// sliceable reports whether e has slice, array, or string type (the sinks
// where a hostile bound panics or over-reads); maps are exempt.
func sliceable(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	switch t := tv.Type.Underlying().(type) {
	case *types.Slice, *types.Array:
		return true
	case *types.Pointer:
		_, isArr := t.Elem().Underlying().(*types.Array)
		return isArr
	case *types.Basic:
		return t.Info()&types.IsString != 0
	}
	return false
}

func isBuiltin(obj types.Object) bool {
	_, ok := obj.(*types.Builtin)
	return ok
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isFSOp reports whether fn names a filesystem operation taking a path.
func isFSOp(fn *types.Func) bool {
	pkg := analysis.PkgPathOf(fn)
	recv := analysis.RecvTypeName(fn)
	name := fn.Name()
	if pkg == "os" && recv == "" {
		switch name {
		case "Open", "Create", "OpenFile", "Remove", "RemoveAll", "Rename",
			"Mkdir", "MkdirAll", "Truncate", "ReadFile", "WriteFile", "Stat", "Lstat":
			return true
		}
	}
	// Methods on filesystem abstractions (vfs.DirFS and friends).
	if strings.HasSuffix(recv, "FS") {
		switch name {
		case "Open", "Create", "OpenFile", "Remove", "RemoveAll", "Rename",
			"Mkdir", "MkdirAll", "Truncate", "ReadFile", "WriteFile", "Stat", "Lstat":
			return true
		}
	}
	return false
}

// Package wire is a fixture stand-in for repro/internal/wire (analyzers
// match project packages by import-path suffix): its struct fields are the
// taint sources wiretaint tracks.
package wire

type Delta struct {
	TargetLen uint32
	Data      []byte
}

type Node struct {
	Path string
	Size int64
	Off  int64
}

type Batch struct {
	Count uint32
	Path  string
	Nodes []Node
}

// Validate is the sanctioned whole-message sanitizer.
func (b *Batch) Validate() error { return nil }

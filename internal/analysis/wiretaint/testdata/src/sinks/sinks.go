// Package sinks holds allocation helpers with no wire import of their own;
// taint reaches them only through the cross-package call graph.
package sinks

func Alloc(n int) []byte {
	return make([]byte, n) // want "wire-derived length n used to size an allocation"
}

// AllocChecked bounds its parameter before allocating; callers may feed it
// wire values freely.
func AllocChecked(n int) []byte {
	if n < 0 || n > 1<<20 {
		return nil
	}
	return make([]byte, n)
}

// Package msgs exercises the wiretaint analyzer: wire-decoded lengths,
// offsets, and paths must be validated before allocation, slicing, or
// filesystem use.
package msgs

import (
	"os"
	"path/filepath"

	"sinks"
	"taint/internal/wire"
)

const maxLen = 1 << 20

func BadAlloc(d *wire.Delta) []byte {
	return make([]byte, d.TargetLen) // want "wire-derived length d.TargetLen used to size an allocation"
}

func OKAllocChecked(d *wire.Delta) []byte {
	if d.TargetLen > maxLen {
		return nil
	}
	return make([]byte, d.TargetLen)
}

// OKLenLaunders: the decoded buffer's actual length is ground truth, not a
// peer-claimed size.
func OKLenLaunders(d *wire.Delta) []byte {
	return make([]byte, len(d.Data))
}

// BadViaLocal: taint survives assignment through a local.
func BadViaLocal(d *wire.Delta) []byte {
	n := int(d.TargetLen)
	return make([]byte, n) // want "wire-derived length n used to size an allocation"
}

func BadSliceBound(n *wire.Node, data []byte) []byte {
	return data[:n.Size] // want "wire-derived value n.Size used as a slice bound"
}

func OKSliceChecked(n *wire.Node, data []byte) []byte {
	if n.Size > int64(len(data)) {
		return nil
	}
	return data[:n.Size]
}

func BadIndex(n *wire.Node, data []byte) byte {
	return data[n.Off] // want "wire-derived value n.Off used as an index"
}

func OKIndexChecked(n *wire.Node, data []byte) byte {
	if n.Off < 0 || n.Off >= int64(len(data)) {
		return 0
	}
	return data[n.Off]
}

// OKMaskedIndex: a bitmask bounds the index no matter what the peer sent
// (the stripe-index idiom); modulo likewise.
func OKMaskedIndex(n *wire.Node, stripes [8]int) int {
	return stripes[n.Off&7]
}

func OKModIndex(n *wire.Node, data []byte) byte {
	return data[n.Off%int64(len(data))]
}

// BadEqualityCheck: an equality comparison does not bound magnitude — a
// huge claimed length passes a != consistency check just fine.
func BadEqualityCheck(d *wire.Delta) []byte {
	out := make([]byte, 0, d.TargetLen) // want "wire-derived length d.TargetLen used to size an allocation"
	if int64(len(out)) != int64(d.TargetLen) {
		return nil
	}
	return out
}

// OKMapIndex: maps cannot over-allocate or panic on a hostile key.
func OKMapIndex(n *wire.Node, m map[string][]byte) []byte {
	return m[n.Path]
}

func BadOpen(n *wire.Node) (*os.File, error) {
	return os.Open(n.Path) // want "wire-derived path n.Path passed to Open without validation"
}

func validatePath(p string) error {
	if p != filepath.Clean(p) {
		return os.ErrInvalid
	}
	return nil
}

func OKOpenValidated(n *wire.Node) (*os.File, error) {
	if err := validatePath(n.Path); err != nil {
		return nil, err
	}
	return os.Open(n.Path)
}

// OKBatchValidated: a Validate call on the wire struct sanitizes all of its
// fields for the rest of the function.
func OKBatchValidated(b *wire.Batch) []wire.Node {
	if err := b.Validate(); err != nil {
		return nil
	}
	return make([]wire.Node, 0, b.Count)
}

// The next three pairs mirror the binary codec's reader: every wire-derived
// length funnels through a take-style gate, claimed element counts are
// bounded by the bytes actually remaining, and the undecoded tail is spliced
// off by a checked offset. The Bad variants are those shapes with the gate
// deleted — exactly what a fuzz crasher in the decoder would look like.

// BadDecoderTake: a length prefix read off the wire slices the payload with
// no bounds gate; end inherits taint through the arithmetic.
func BadDecoderTake(n *wire.Node, payload []byte) []byte {
	end := n.Off + n.Size
	return payload[n.Off:end] // want "wire-derived value n.Off used as a slice bound" "wire-derived value end used as a slice bound"
}

// OKDecoderTake is the shipped gate: overflow-safe end computation with the
// negative-length, wraparound, and past-the-end cases all rejected by
// ordered comparisons before the slice.
func OKDecoderTake(n *wire.Node, payload []byte) []byte {
	end := n.Off + n.Size
	if n.Size < 0 || end < n.Off || end > int64(len(payload)) {
		return nil
	}
	return payload[n.Off:end]
}

// BadDecoderCount: a peer-claimed element count sizes the result slice
// before a single element has been decoded.
func BadDecoderCount(b *wire.Batch) []wire.Node {
	return make([]wire.Node, 0, b.Count) // want "wire-derived length b.Count used to size an allocation"
}

// OKDecoderCount: the claimed count times the minimum encoded element size
// must fit in the bytes actually remaining, so the allocation is bounded by
// real input length rather than a 4-byte claim.
func OKDecoderCount(b *wire.Batch, remaining int) []wire.Node {
	const minElem = 57
	if int64(b.Count)*minElem > int64(remaining) {
		return nil
	}
	return make([]wire.Node, 0, b.Count)
}

// BadDecoderTail: handing the undecoded tail to another layer with an
// unchecked wire offset (the push-payload splice shape).
func BadDecoderTail(n *wire.Node, payload []byte) []byte {
	return payload[n.Off:] // want "wire-derived value n.Off used as a slice bound"
}

// OKDecoderTail: the shipped guard on the splice offset.
func OKDecoderTail(n *wire.Node, payload []byte) []byte {
	if n.Off < 0 || n.Off > int64(len(payload)) {
		return nil
	}
	return payload[n.Off:]
}

// alloc has no wire import in sight; the finding inside it is reachable
// only through the parameter-taint fixpoint over the call graph.
func alloc(n int) []byte {
	return make([]byte, n) // want `wire-derived length n used to size an allocation without a bounds check: a hostile peer controls this allocation \[wire value flows in via BadForward -> alloc\]`
}

func BadForward(d *wire.Delta) []byte {
	return alloc(int(d.TargetLen))
}

func BadCrossPackage(d *wire.Delta) []byte {
	return sinks.Alloc(int(d.TargetLen))
}

func OKCrossPackage(d *wire.Delta) []byte {
	return sinks.AllocChecked(int(d.TargetLen))
}

// Package msgs exercises the wiretaint analyzer: wire-decoded lengths,
// offsets, and paths must be validated before allocation, slicing, or
// filesystem use.
package msgs

import (
	"os"
	"path/filepath"

	"sinks"
	"taint/internal/wire"
)

const maxLen = 1 << 20

func BadAlloc(d *wire.Delta) []byte {
	return make([]byte, d.TargetLen) // want "wire-derived length d.TargetLen used to size an allocation"
}

func OKAllocChecked(d *wire.Delta) []byte {
	if d.TargetLen > maxLen {
		return nil
	}
	return make([]byte, d.TargetLen)
}

// OKLenLaunders: the decoded buffer's actual length is ground truth, not a
// peer-claimed size.
func OKLenLaunders(d *wire.Delta) []byte {
	return make([]byte, len(d.Data))
}

// BadViaLocal: taint survives assignment through a local.
func BadViaLocal(d *wire.Delta) []byte {
	n := int(d.TargetLen)
	return make([]byte, n) // want "wire-derived length n used to size an allocation"
}

func BadSliceBound(n *wire.Node, data []byte) []byte {
	return data[:n.Size] // want "wire-derived value n.Size used as a slice bound"
}

func OKSliceChecked(n *wire.Node, data []byte) []byte {
	if n.Size > int64(len(data)) {
		return nil
	}
	return data[:n.Size]
}

func BadIndex(n *wire.Node, data []byte) byte {
	return data[n.Off] // want "wire-derived value n.Off used as an index"
}

func OKIndexChecked(n *wire.Node, data []byte) byte {
	if n.Off < 0 || n.Off >= int64(len(data)) {
		return 0
	}
	return data[n.Off]
}

// OKMaskedIndex: a bitmask bounds the index no matter what the peer sent
// (the stripe-index idiom); modulo likewise.
func OKMaskedIndex(n *wire.Node, stripes [8]int) int {
	return stripes[n.Off&7]
}

func OKModIndex(n *wire.Node, data []byte) byte {
	return data[n.Off%int64(len(data))]
}

// BadEqualityCheck: an equality comparison does not bound magnitude — a
// huge claimed length passes a != consistency check just fine.
func BadEqualityCheck(d *wire.Delta) []byte {
	out := make([]byte, 0, d.TargetLen) // want "wire-derived length d.TargetLen used to size an allocation"
	if int64(len(out)) != int64(d.TargetLen) {
		return nil
	}
	return out
}

// OKMapIndex: maps cannot over-allocate or panic on a hostile key.
func OKMapIndex(n *wire.Node, m map[string][]byte) []byte {
	return m[n.Path]
}

func BadOpen(n *wire.Node) (*os.File, error) {
	return os.Open(n.Path) // want "wire-derived path n.Path passed to Open without validation"
}

func validatePath(p string) error {
	if p != filepath.Clean(p) {
		return os.ErrInvalid
	}
	return nil
}

func OKOpenValidated(n *wire.Node) (*os.File, error) {
	if err := validatePath(n.Path); err != nil {
		return nil, err
	}
	return os.Open(n.Path)
}

// OKBatchValidated: a Validate call on the wire struct sanitizes all of its
// fields for the rest of the function.
func OKBatchValidated(b *wire.Batch) []wire.Node {
	if err := b.Validate(); err != nil {
		return nil
	}
	return make([]wire.Node, 0, b.Count)
}

// alloc has no wire import in sight; the finding inside it is reachable
// only through the parameter-taint fixpoint over the call graph.
func alloc(n int) []byte {
	return make([]byte, n) // want `wire-derived length n used to size an allocation without a bounds check: a hostile peer controls this allocation \[wire value flows in via BadForward -> alloc\]`
}

func BadForward(d *wire.Delta) []byte {
	return alloc(int(d.TargetLen))
}

func BadCrossPackage(d *wire.Delta) []byte {
	return sinks.Alloc(int(d.TargetLen))
}

func OKCrossPackage(d *wire.Delta) []byte {
	return sinks.AllocChecked(int(d.TargetLen))
}

package wiretaint_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/wiretaint"
)

func TestWiretaint(t *testing.T) {
	analysistest.Run(t, wiretaint.Analyzer, "msgs", "sinks")
}

// Package atomics exercises every atomicsafe diagnostic kind, plus the
// sanctioned copy-on-write shapes that must stay silent.
package atomics

import "sync/atomic"

type state struct {
	members map[int]string
	n       int
}

type registry struct {
	cur atomic.Pointer[state]
}

// GoodSwap is the copy-on-write discipline the analyzer exists to protect:
// build a fresh value, mutate it while private, publish, never touch again.
func (r *registry) GoodSwap(k int, v string) {
	old := r.cur.Load()
	next := &state{members: map[int]string{}}
	if old != nil {
		for k2, v2 := range old.members {
			next.members[k2] = v2
		}
	}
	next.members[k] = v // before the Store: private, fine
	next.n = len(next.members)
	r.cur.Store(next)
}

func (r *registry) BadPublishThenMutate(k int, v string) {
	next := &state{members: map[int]string{}}
	r.cur.Store(next)
	next.members[k] = v // want `mutation after the value was published`
}

func (r *registry) BadPublishAlias() {
	next := &state{}
	other := next
	r.cur.CompareAndSwap(nil, next)
	other.n = 1 // want `mutation after the value was published`
}

func (r *registry) BadPublishOnSomePath(k int, v string, flaky bool) {
	next := &state{members: map[int]string{}}
	if flaky {
		r.cur.Store(next)
	}
	next.members[k] = v // want `mutation after the value was published`
}

func (r *registry) BadLoadMutate(k int, v string) {
	cur := r.cur.Load()
	cur.members[k] = v // want `mutation of a value loaded from atomic pointer`
}

func (r *registry) BadLoadDelete(k int) {
	cur := r.cur.Load()
	delete(cur.members, k) // want `mutation of a value loaded from atomic pointer`
}

func scrub(s *state) { s.members = nil }

func wash(s *state) { scrub(s) }

func (r *registry) BadLoadMutateViaCallee() {
	cur := r.cur.Load()
	scrub(cur) // want `passed to scrub, which mutates it`
}

func (r *registry) BadLoadMutateViaChain() {
	cur := r.cur.Load()
	wash(cur) // want `passed to wash, which mutates it \(via scrub\)`
}

func (r *registry) BadPublishMutateViaCallee() {
	next := &state{}
	r.cur.Store(next)
	scrub(next) // want `passed to scrub, which mutates it`
}

func (r *registry) GoodReadLoaded() int {
	cur := r.cur.Load()
	if cur == nil {
		return 0
	}
	return cur.n // reads of a loaded snapshot are the whole point
}

// ---- mixed plain/atomic field access ----

type counter struct {
	hits int64
	name string
}

func (c *counter) Incr() { atomic.AddInt64(&c.hits, 1) }

func (c *counter) BadRead() int64 {
	return c.hits // want `field hits is accessed atomically elsewhere`
}

func (c *counter) GoodRead() int64 { return atomic.LoadInt64(&c.hits) }

func (c *counter) GoodName() string { return c.name }

// ---- atomic-bearing struct copies ----

type gauge struct {
	val  atomic.Int64
	name string
}

func copyGauge(g *gauge) int64 {
	cp := *g // want `copying this value copies atomic field val`
	return cp.val.Load()
}

func goodPointer(g *gauge) int64 {
	p := g // copying the pointer is fine
	return p.val.Load()
}

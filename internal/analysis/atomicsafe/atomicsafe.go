// Package atomicsafe checks the copy-on-write publication discipline the
// sharded server leans on: state shared through sync/atomic must only be
// touched atomically, and a struct published through an atomic.Pointer is
// frozen the moment it is published.
//
// The server's lock-free read paths (clientState.group, Server.journal,
// Server.degraded, Server.syncMeter) all follow the same convention: build a
// fresh value, mutate it while it is still private, publish it with Store or
// CompareAndSwap, and never touch it again — readers Load and treat the
// snapshot as immutable. Nothing in the type system enforces any of that; a
// mutation one line after the Store compiles fine and races only under
// production interleavings. This analyzer makes the convention checkable:
//
//  1. mixed access — a struct field passed to a sync/atomic function
//     (atomic.AddInt64(&s.n, 1)) anywhere in the program must never be read
//     or written plainly; the plain access races with the atomic ones.
//  2. publish-then-mutate — after p.Store(x) / p.Swap(x) /
//     p.CompareAndSwap(_, x) on an atomic.Pointer or atomic.Value, any
//     mutation reachable through x (field writes, map inserts, deletes, or
//     a call passing x to a function that mutates its parameter) on any
//     CFG path after the publish is reported. Flow-sensitive: mutating the
//     fresh value *before* the Store is exactly how copy-on-write works.
//  3. load-then-mutate — a value obtained from p.Load() is a shared
//     snapshot; mutating it (directly or via a mutating callee) is reported
//     regardless of position.
//  4. atomic-bearing copy — assigning a struct value that contains
//     sync/atomic fields copies the atomics out from under concurrent
//     users (`s := *shared`); use a pointer.
//
// Aliasing runs through internal/analysis/alias: locals that alias the
// published or loaded value are watched under any name, and "a callee
// mutates its parameter" is an interprocedural summary with a witness
// chain, so handing a loaded snapshot to a helper that mutates it is caught
// at the hand-off site.
package atomicsafe

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/alias"
	"repro/internal/analysis/cfg"
)

// Analyzer is the atomicsafe checker.
var Analyzer = &analysis.Analyzer{
	Name: "atomicsafe",
	Doc:  "fields accessed atomically must never be accessed plainly; values published via atomic.Pointer are immutable after Store (copy-on-write)",
	Run:  run,
}

// fact is the program-wide summary: fields accessed through sync/atomic
// functions (with one example position each), and which functions mutate
// which linearized parameter.
type fact struct {
	atomicFields map[*types.Var]token.Position
	mutates      *alias.Summary
}

func buildFact(prog *analysis.Program) *fact {
	f := &fact{atomicFields: make(map[*types.Var]token.Position)}
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := analysis.CalleeOf(pkg.TypesInfo, call)
				if fn == nil || analysis.PkgPathOf(fn) != "sync/atomic" || fn.Type().(*types.Signature).Recv() != nil {
					return true
				}
				for _, arg := range call.Args {
					if fv := addrFieldOperand(pkg.TypesInfo, arg); fv != nil {
						if _, seen := f.atomicFields[fv]; !seen {
							f.atomicFields[fv] = pkg.Fset.Position(call.Pos())
						}
					}
				}
				return true
			})
		}
	}
	f.mutates = alias.Params(prog.Graph, func(fi *alias.FuncInfo) map[int]string {
		out := map[int]string{}
		forEachMutation(fi.Info, fi.Node.Decl.Body, func(base ast.Expr, _ ast.Node) {
			if idx := fi.ParamOf(base); idx >= 0 {
				out[idx] = "mutates its argument"
			}
		})
		return out
	})
	return f
}

// addrFieldOperand returns the struct field behind an `&x.f` argument, or
// nil when the argument is not an address-of-field expression.
func addrFieldOperand(info *types.Info, arg ast.Expr) *types.Var {
	u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
	if !ok || u.Op != token.AND {
		return nil
	}
	sel, ok := ast.Unparen(u.X).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	s, ok := info.Selections[sel]
	if !ok {
		return nil
	}
	if v, ok := s.Obj().(*types.Var); ok && v.IsField() {
		return v
	}
	return nil
}

func run(pass *analysis.Pass) error {
	f := pass.Prog.Fact(pass.Analyzer, func(prog *analysis.Program) any {
		return buildFact(prog)
	}).(*fact)
	for _, file := range pass.Files {
		checkMixed(pass, file, f)
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkPublish(pass, fd, f)
			checkCopies(pass, fd)
		}
	}
	return nil
}

// ---- mixed plain/atomic access ----

func checkMixed(pass *analysis.Pass, file *ast.File, f *fact) {
	if len(f.atomicFields) == 0 {
		return
	}
	// Selector nodes that ARE sanctioned atomic accesses: &x.f inside a
	// sync/atomic call argument.
	sanctioned := make(map[ast.Node]bool)
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.CalleeOf(pass.TypesInfo, call)
		if fn == nil || analysis.PkgPathOf(fn) != "sync/atomic" {
			return true
		}
		for _, arg := range call.Args {
			if u, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok && u.Op == token.AND {
				sanctioned[ast.Unparen(u.X)] = true
			}
		}
		return true
	})
	ast.Inspect(file, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || sanctioned[sel] {
			return true
		}
		fv, ok := pass.TypesInfo.Selections[sel]
		if !ok {
			return true
		}
		v, ok := fv.Obj().(*types.Var)
		if !ok || !v.IsField() {
			return true
		}
		if site, atomic := f.atomicFields[v]; atomic {
			pass.Reportf(sel.Pos(), "field %s is accessed atomically elsewhere (%s:%d); this plain access races with those atomic operations", v.Name(), shortFile(site), site.Line)
		}
		return true
	})
}

func shortFile(p token.Position) string {
	if i := strings.LastIndexByte(p.Filename, '/'); i >= 0 {
		return p.Filename[i+1:]
	}
	return p.Filename
}

// ---- publish-then-mutate / load-then-mutate ----

// publish is one Store/Swap/CompareAndSwap of an atomic.Pointer or Value.
type publish struct {
	call *ast.CallExpr
	via  string // "Store", "Swap", "CompareAndSwap"
	recv string // rendered receiver, e.g. "cs.group"
	seed *alias.Seed
}

func checkPublish(pass *analysis.Pass, fd *ast.FuncDecl, f *fact) {
	info := pass.TypesInfo

	// Scan for publish and load sites first.
	var pubs []*publish
	loadCalls := make(map[*ast.CallExpr]string) // call -> rendered receiver
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.CalleeOf(info, call)
		if !isAtomicBoxMethod(fn) {
			return true
		}
		recv := receiverString(call)
		switch fn.Name() {
		case "Store", "Swap":
			if len(call.Args) >= 1 {
				pubs = append(pubs, &publish{call: call, via: fn.Name(), recv: recv})
			}
		case "CompareAndSwap":
			if len(call.Args) >= 2 {
				pubs = append(pubs, &publish{call: call, via: fn.Name(), recv: recv})
			}
		case "Load":
			loadCalls[call] = recv
		}
		return true
	})
	if len(pubs) == 0 && len(loadCalls) == 0 {
		return
	}

	// Seed the tracker: published roots as pre-tagged objects, loads as
	// expression seeds.
	seedObjs := make(map[types.Object]*alias.Seed)
	for _, p := range pubs {
		arg := p.call.Args[0]
		if p.via == "CompareAndSwap" {
			arg = p.call.Args[1]
		}
		root := rootIdentObj(info, arg)
		if root == nil {
			continue
		}
		s := &alias.Seed{Tag: "published:" + p.recv}
		if prev, ok := seedObjs[root]; ok {
			s = prev // one object published twice: share the seed
		}
		seedObjs[root] = s
		p.seed = s
	}
	loadSeeds := make(map[*alias.Seed]string)
	seedOf := func(e ast.Expr) *alias.Seed {
		call, ok := e.(*ast.CallExpr)
		if !ok {
			return nil
		}
		if recv, ok := loadCalls[call]; ok {
			s := &alias.Seed{Expr: e, Tag: "loaded:" + recv}
			loadSeeds[s] = recv
			return s
		}
		return nil
	}
	tr := alias.Track(info, fd.Body, seedObjs, seedOf)

	// Load-then-mutate: flow-insensitive — a loaded snapshot is shared from
	// birth, so any mutation through an alias is a race.
	forEachMutation(info, fd.Body, func(base ast.Expr, site ast.Node) {
		for _, s := range tr.ExprSeeds(base) {
			if recv, ok := loadSeeds[s]; ok {
				pass.Reportf(site.Pos(), "mutation of a value loaded from atomic pointer %s.Load(): loaded snapshots are shared with lock-free readers and must be treated as immutable (copy on write)", recv)
			}
		}
	})
	// Mutating callees fed a loaded value.
	forEachMutatingCall(pass, tr, f, fd, func(s *alias.Seed, call *ast.CallExpr, w *alias.Witness, calleeName string) {
		if recv, ok := loadSeeds[s]; ok {
			pass.Reportf(call.Pos(), "value loaded from %s.Load() is passed to %s, which mutates it%s: loaded snapshots are shared and must not be mutated", recv, calleeName, chainSuffix(w))
		}
	})

	if len(pubs) == 0 {
		return
	}

	// Publish-then-mutate: forward may-analysis over the CFG — the set of
	// publish seeds that may already have been stored at each point.
	g := pass.Prog.CFG(fd)
	reach := g.Reachable()
	post := g.Postorder()

	pubSeedAt := func(n ast.Node) []*alias.Seed {
		var out []*alias.Seed
		ast.Inspect(n, func(x ast.Node) bool {
			if call, ok := x.(*ast.CallExpr); ok {
				for _, p := range pubs {
					if p.call == call && p.seed != nil {
						out = append(out, p.seed)
					}
				}
			}
			return true
		})
		return out
	}

	in := make(map[*cfg.Block]map[*alias.Seed]bool)
	out := make(map[*cfg.Block]map[*alias.Seed]bool)
	for changed := true; changed; {
		changed = false
		for i := len(post) - 1; i >= 0; i-- {
			b := post[i]
			s := make(map[*alias.Seed]bool)
			for _, p := range b.Preds {
				if reach[p] {
					for k := range out[p] {
						s[k] = true
					}
				}
			}
			o := make(map[*alias.Seed]bool, len(s))
			for k := range s {
				o[k] = true
			}
			for _, n := range b.Nodes {
				for _, k := range pubSeedAt(n) {
					o[k] = true
				}
			}
			if !sameSet(in[b], s) || !sameSet(out[b], o) {
				in[b], out[b] = s, o
				changed = true
			}
		}
	}

	// Report: replay each block; a mutation through a published seed that is
	// in the running set fires.
	describe := func(s *alias.Seed) string { return strings.TrimPrefix(s.Tag, "published:") }
	for _, b := range post {
		live := make(map[*alias.Seed]bool, len(in[b]))
		for k := range in[b] {
			live[k] = true
		}
		for _, n := range b.Nodes {
			forEachMutation(info, n, func(base ast.Expr, site ast.Node) {
				for _, s := range tr.ExprSeeds(base) {
					if live[s] {
						pass.Reportf(site.Pos(), "mutation after the value was published via %s.Store/CompareAndSwap: copy-on-write requires building a fresh value, publishing it, and never touching it again", describe(s))
					}
				}
			})
			forEachMutatingCallInNode(pass, tr, f, n, func(s *alias.Seed, call *ast.CallExpr, w *alias.Witness, calleeName string) {
				if live[s] {
					pass.Reportf(call.Pos(), "published value (%s) is passed to %s, which mutates it%s: values are immutable after Store", describe(s), calleeName, chainSuffix(w))
				}
			})
			for _, k := range pubSeedAt(n) {
				live[k] = true
			}
		}
	}
}

func sameSet(a, b map[*alias.Seed]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func chainSuffix(w *alias.Witness) string {
	if w == nil || len(w.Chain) == 0 {
		return ""
	}
	return " (via " + w.ChainString() + ")"
}

// forEachMutatingCall walks the whole body; forEachMutatingCallInNode one
// CFG node. Both report calls whose argument aliases a tracked seed and
// whose callee's matching parameter carries the mutates summary.
func forEachMutatingCall(pass *analysis.Pass, tr *alias.Tracker, f *fact, fd *ast.FuncDecl, emit func(*alias.Seed, *ast.CallExpr, *alias.Witness, string)) {
	forEachMutatingCallInNode(pass, tr, f, fd.Body, emit)
}

func forEachMutatingCallInNode(pass *analysis.Pass, tr *alias.Tracker, f *fact, n ast.Node, emit func(*alias.Seed, *ast.CallExpr, *alias.Witness, string)) {
	info := pass.TypesInfo
	ast.Inspect(n, func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		args := alias.LinearArgs(info, call)
		for _, callee := range pass.Prog.Graph.CalleesAt(call) {
			for j, arg := range args {
				if arg == nil {
					continue
				}
				w := f.mutates.Has(callee.Func, j)
				if w == nil {
					continue
				}
				for _, s := range tr.ExprSeeds(arg) {
					emit(s, call, w, callee.Func.Name())
				}
			}
		}
		return true
	})
}

// forEachMutation finds direct mutations inside n: assignments and IncDec
// through a selector/index/deref chain, and delete() on a field map. emit
// receives the base expression the chain is rooted at.
func forEachMutation(info *types.Info, n ast.Node, emit func(base ast.Expr, site ast.Node)) {
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if base := mutationBase(lhs); base != nil {
					emit(base, x)
				}
			}
		case *ast.IncDecStmt:
			if base := mutationBase(x.X); base != nil {
				emit(base, x)
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "delete" && len(x.Args) > 0 {
				if base := mutationBase(x.Args[0]); base != nil {
					emit(base, x)
				}
				// Also the map expression itself when it is a plain ident:
				// delete(m, k) where m aliases the tracked value.
				if id, ok := ast.Unparen(x.Args[0]).(*ast.Ident); ok {
					emit(id, x)
				}
			}
		}
		return true
	})
}

// mutationBase unwraps an lvalue chain (x.f, x.f[k], *x, x[i]) to the base
// expression being mutated *through*. A bare identifier LHS is a rebind, not
// a mutation of the pointed-to value, so it returns nil for those.
func mutationBase(e ast.Expr) ast.Expr {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.SelectorExpr:
		return innermostBase(e.X)
	case *ast.IndexExpr:
		return innermostBase(e.X)
	case *ast.StarExpr:
		return innermostBase(e.X)
	}
	return nil
}

func innermostBase(e ast.Expr) ast.Expr {
	for {
		e = ast.Unparen(e)
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return e
		}
	}
}

// rootIdentObj resolves the identifier object a published argument is rooted
// at (unwrapping & and conversions); nil for literals.
func rootIdentObj(info *types.Info, e ast.Expr) types.Object {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.Ident:
		o := info.Uses[x]
		if o == nil {
			o = info.Defs[x]
		}
		if o == nil || o.Pkg() == nil { // skip builtins: Store(nil)
			return nil
		}
		return o
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return rootIdentObj(info, x.X)
		}
	}
	return nil
}

// isAtomicBoxMethod reports whether fn is a method of sync/atomic's Pointer
// or Value — the two box types whose contents stay mutable after publication
// (scalar atomics return copies from Load, so they have no freeze contract).
func isAtomicBoxMethod(fn *types.Func) bool {
	if fn == nil || analysis.PkgPathOf(fn) != "sync/atomic" {
		return false
	}
	recv := analysis.RecvTypeName(fn)
	return recv == "Pointer" || recv == "Value"
}

// receiverString renders the method receiver ("cs.group") for diagnostics.
func receiverString(call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "<atomic>"
	}
	return analysis.ExprString(sel.X)
}

// ---- atomic-bearing struct copies ----

func checkCopies(pass *analysis.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, rhs := range as.Rhs {
			e := ast.Unparen(rhs)
			switch e.(type) {
			case *ast.StarExpr, *ast.SelectorExpr, *ast.IndexExpr, *ast.Ident:
			default:
				continue // fresh composite literals and calls are fine
			}
			tv, ok := info.Types[e]
			if !ok {
				continue
			}
			if fld := atomicFieldIn(tv.Type, 0); fld != "" {
				pass.Reportf(rhs.Pos(), "copying this value copies atomic field %s by value; concurrent users of the original will not see the copy's operations (keep a pointer instead)", fld)
			}
		}
		return true
	})
}

// atomicFieldIn returns the path of a sync/atomic-typed field inside t
// (struct types only, 3 levels deep), or "".
func atomicFieldIn(t types.Type, depth int) string {
	if depth > 3 {
		return ""
	}
	if _, isPtr := t.(*types.Pointer); isPtr {
		return "" // copying a pointer never copies the atomics behind it
	}
	if name, pkg := analysis.NamedType(t); pkg == "sync/atomic" && name != "" {
		// The value IS an atomic box; copying it is the defect itself.
		return name
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return ""
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if _, isPtr := f.Type().(*types.Pointer); isPtr {
			continue
		}
		if name, pkg := analysis.NamedType(f.Type()); pkg == "sync/atomic" && name != "" {
			return f.Name()
		}
		if sub := atomicFieldIn(f.Type(), depth+1); sub != "" {
			return f.Name() + "." + sub
		}
	}
	return ""
}

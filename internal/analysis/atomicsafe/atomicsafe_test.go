package atomicsafe_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/atomicsafe"
)

func TestAtomicsafe(t *testing.T) {
	analysistest.Run(t, atomicsafe.Analyzer, "atomics")
}

package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// checkedPkg parses and type-checks one in-memory file into a Package, just
// enough for the suppression machinery (comments for inline allows, Defs for
// function spans).
func checkedPkg(t *testing.T, filename, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filename, src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Types:      map[ast.Expr]types.TypeAndValue{},
	}
	conf := types.Config{Error: func(error) {}}
	tpkg, _ := conf.Check("p", fset, []*ast.File{f}, info)
	return &Package{PkgPath: "repro/fake/p", Fset: fset, Files: []*ast.File{f}, Types: tpkg, TypesInfo: info}
}

// TestParseAllowFileTrailingComment: an entry may carry a same-line trailing
// comment; everything from " #" on is dropped before the reason is recorded.
func TestParseAllowFileTrailingComment(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "deltavet.allow")
	content := "# header comment\n" +
		"errsync repro/internal/x Store.flush fsync error handled by caller # reviewed 2026-08\n" +
		"poolsafe repro/internal/y Buf.get plain reason words\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	allows, err := ParseAllowFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(allows) != 2 {
		t.Fatalf("got %d entries, want 2: %+v", len(allows), allows)
	}
	if allows[0].Reason != "fsync error handled by caller" {
		t.Errorf("trailing comment not stripped from reason: %q", allows[0].Reason)
	}
	if allows[1].Reason != "plain reason words" {
		t.Errorf("comment-free reason mangled: %q", allows[1].Reason)
	}
}

// TestParseAllowFileTrailingCommentEatsReason: stripping the trailing
// comment must not let a reason-less entry slip through.
func TestParseAllowFileTrailingCommentEatsReason(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "deltavet.allow")
	if err := os.WriteFile(path, []byte("errsync repro/internal/x Store.flush # no actual reason\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseAllowFile(path); err == nil {
		t.Fatal("entry whose only reason was a trailing comment parsed without error")
	}
}

// TestParseAllowFileCRLF: a CRLF allow file (edited on Windows, or checked
// out with autocrlf) must parse identically — no \r in any field.
func TestParseAllowFileCRLF(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "deltavet.allow")
	content := "# header\r\n" +
		"\r\n" +
		"errsync repro/internal/x Store.flush fsync error handled by caller\r\n" +
		"wiretaint repro/internal/y decode bounds checked at the boundary # note\r\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	allows, err := ParseAllowFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(allows) != 2 {
		t.Fatalf("got %d entries, want 2: %+v", len(allows), allows)
	}
	for _, al := range allows {
		for _, field := range []string{al.Analyzer, al.PkgPath, al.Func, al.Reason} {
			if strings.ContainsRune(field, '\r') {
				t.Errorf("carriage return survived parsing: %q", field)
			}
		}
	}
	if allows[1].Reason != "bounds checked at the boundary" {
		t.Errorf("CRLF + trailing comment mishandled: %q", allows[1].Reason)
	}
}

// TestSuppressInlineOnMultilineStatement: a trailing //deltavet:allow on the
// first line of a statement that spans several lines covers findings on that
// line and the next — and only those, and only for the named analyzer.
func TestSuppressInlineOnMultilineStatement(t *testing.T) {
	src := `package p

func Multi() int {
	x := compute( //deltavet:allow fakecheck spans a multi-line call
		1,
		2,
	)
	return x
}

func compute(a, b int) int { return a + b }
`
	pkg := checkedPkg(t, "multi.go", src)
	diags := []Diagnostic{
		{Analyzer: "fakecheck", Pos: token.Position{Filename: "multi.go", Line: 4}},
		{Analyzer: "fakecheck", Pos: token.Position{Filename: "multi.go", Line: 5}},
		{Analyzer: "fakecheck", Pos: token.Position{Filename: "multi.go", Line: 6}},
		{Analyzer: "othercheck", Pos: token.Position{Filename: "multi.go", Line: 4}},
	}
	kept := Suppress([]*Package{pkg}, diags, nil)
	if len(kept) != 2 {
		t.Fatalf("kept %d diagnostics, want 2: %+v", len(kept), kept)
	}
	// Line 6 is past the comment's reach; the other analyzer is untouched.
	if kept[0].Analyzer != "fakecheck" || kept[0].Pos.Line != 6 {
		t.Errorf("wrong first survivor: %+v", kept[0])
	}
	if kept[1].Analyzer != "othercheck" || kept[1].Pos.Line != 4 {
		t.Errorf("wrong second survivor: %+v", kept[1])
	}
}

// Package analysis is a small, dependency-free stand-in for
// golang.org/x/tools/go/analysis: just enough multichecker plumbing to run
// the project's invariant analyzers (lockorder, blockunderlock, detreplay,
// errsync) over type-checked packages. The module is deliberately
// self-contained (no external deps), so instead of vendoring x/tools this
// package reimplements the three pieces the analyzers need: an Analyzer/Pass
// API, a package loader (load.go) built on `go list -export` plus the
// standard go/types checker, and an analysistest-style fixture harness
// (analysistest/).
//
// The deliberate differences from x/tools are documented where they matter:
// analyzers run per-package but share a Program (program.go) holding the
// whole-load call graph (internal/analysis/callgraph), lazily built
// per-function CFGs (internal/analysis/cfg), and memoized per-analyzer
// program facts — a simpler substitute for x/tools Facts and Requires.
// Suppression — `//deltavet:allow` comments plus the deltavet.allow file —
// is applied by the driver, not the analyzer, so analyzer unit tests always
// see the raw findings.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one invariant checker.
type Analyzer struct {
	// Name is the analyzer's identifier, used in diagnostics and in
	// //deltavet:allow comments.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run reports diagnostics for one package via pass.Report.
	Run func(pass *Pass) error
}

// Pass carries one package's parse and type information to an analyzer,
// plus the shared Program context for interprocedural queries (call graph,
// CFGs, memoized facts). Prog is always non-nil: single-package runs get a
// one-package program.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Prog      *Program

	diags []Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run executes the analyzers over a lone package and returns their findings
// sorted by position. It builds a single-package Program, so interprocedural
// analyzers see only pkg-internal edges; drivers analyzing several packages
// should build one NewProgram and use its Run method instead. Suppression is
// NOT applied here — see Suppress.
func Run(pkg *Package, analyzers ...*Analyzer) ([]Diagnostic, error) {
	return runWith(NewProgram([]*Package{pkg}), pkg, analyzers...)
}

func runWith(prog *Program, pkg *Package, analyzers ...*Analyzer) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			Prog:      prog,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
		}
		out = append(out, pass.diags...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}

// ---- shared type/AST helpers used by the analyzers ----

// IsMutexType reports whether t (after pointer indirection) is sync.Mutex or
// sync.RWMutex.
func IsMutexType(t types.Type) bool {
	name, pkg := namedTypeOf(t)
	return pkg == "sync" && (name == "Mutex" || name == "RWMutex")
}

// namedTypeOf unwraps pointers and returns the type's name and its package
// path ("" for unnamed types).
func namedTypeOf(t types.Type) (name, pkgPath string) {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", ""
	}
	obj := named.Obj()
	if obj.Pkg() != nil {
		pkgPath = obj.Pkg().Path()
	}
	return obj.Name(), pkgPath
}

// NamedType returns the name and package path of t's core named type.
func NamedType(t types.Type) (name, pkgPath string) { return namedTypeOf(t) }

// CalleeOf resolves the called function or method object of a CallExpr, or
// nil for calls through function values, built-ins, and conversions.
func CalleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fn].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fn]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
			return nil
		}
		// Package-qualified call (pkg.Func).
		if f, ok := info.Uses[fn.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// PkgPathOf returns the defining package path of fn ("" for builtins).
func PkgPathOf(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// PathSuffixMatch reports whether pkgPath equals suffix or ends in
// "/"+suffix. Matching by suffix lets test fixtures stand in for real
// project packages (e.g. a fixture at ".../testdata/src/bad/internal/server"
// is treated like "repro/internal/server").
func PathSuffixMatch(pkgPath, suffix string) bool {
	return pkgPath == suffix || strings.HasSuffix(pkgPath, "/"+suffix)
}

// RecvTypeName returns the receiver type name of method fn ("" for plain
// functions), with any pointer stripped: "(*Store).Put" -> "Store".
func RecvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	name, _ := namedTypeOf(sig.Recv().Type())
	return name
}

// FuncDisplayName renders fn as "Func" or "Recv.Method" (pointer stripped),
// the form the deltavet.allow file uses.
func FuncDisplayName(fn *types.Func) string {
	if r := RecvTypeName(fn); r != "" {
		return r + "." + fn.Name()
	}
	return fn.Name()
}

// ExprString renders a (small) expression for use as a lock identity key,
// e.g. "s.mu" or "shards[i].mu". Index expressions are normalized so the
// same syntactic lock path compares equal.
func ExprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return ExprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return ExprString(e.X) + "[" + ExprString(e.Index) + "]"
	case *ast.ParenExpr:
		return ExprString(e.X)
	case *ast.CallExpr:
		return ExprString(e.Fun) + "()"
	case *ast.BasicLit:
		return e.Value
	case *ast.StarExpr:
		return "*" + ExprString(e.X)
	case *ast.UnaryExpr:
		return e.Op.String() + ExprString(e.X)
	default:
		return fmt.Sprintf("<%T>", e)
	}
}

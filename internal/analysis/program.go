package analysis

import (
	"go/ast"
	"go/types"
	"sync"

	"repro/internal/analysis/callgraph"
	"repro/internal/analysis/cfg"
)

// Program is the whole-analysis view: every loaded package plus the
// interprocedural facts built over them — the CHA call graph, lazily built
// per-function CFGs, and memoized per-analyzer program-wide facts (e.g.
// blockunderlock's "transitively blocks" summary). One Program is built per
// driver invocation and shared by every per-package Pass, so summaries are
// computed once however many packages are analyzed.
//
// CFG and Fact are safe for concurrent use: the driver analyzes packages in
// parallel, and every worker shares this one Program.
type Program struct {
	Packages []*Package
	Graph    *callgraph.Graph

	mu    sync.Mutex
	cfgs  map[*ast.FuncDecl]*cfg.Graph
	facts map[*Analyzer]*factEntry
	byPkg map[*types.Package]*Package
}

// factEntry guards one analyzer's program fact: the once runs the build
// outside Program.mu, so a build that itself calls CFG (they all do) cannot
// deadlock, and concurrent passes of the same analyzer share one build.
type factEntry struct {
	once sync.Once
	val  any
}

// NewProgram builds the call graph over pkgs and returns the shared
// program context. The driver (and the analysistest harness) call this once
// over every package they load, so interprocedural analyzers see callees in
// sibling packages.
func NewProgram(pkgs []*Package) *Program {
	srcs := make([]*callgraph.Source, 0, len(pkgs))
	byPkg := make(map[*types.Package]*Package, len(pkgs))
	for _, p := range pkgs {
		srcs = append(srcs, &callgraph.Source{
			Fset:  p.Fset,
			Files: p.Files,
			Pkg:   p.Types,
			Info:  p.TypesInfo,
		})
		byPkg[p.Types] = p
	}
	return &Program{
		Packages: pkgs,
		Graph:    callgraph.Build(srcs),
		cfgs:     make(map[*ast.FuncDecl]*cfg.Graph),
		facts:    make(map[*Analyzer]*factEntry),
		byPkg:    byPkg,
	}
}

// CFG returns the (cached) control-flow graph of a function declaration.
// Building under the lock keeps graph identity stable: every caller gets
// the same *cfg.Graph for a declaration, however many run concurrently.
func (p *Program) CFG(fd *ast.FuncDecl) *cfg.Graph {
	p.mu.Lock()
	defer p.mu.Unlock()
	if g, ok := p.cfgs[fd]; ok {
		return g
	}
	g := cfg.New(fd.Body)
	p.cfgs[fd] = g
	return g
}

// Fact returns the analyzer's memoized program-wide fact, building it on
// first use. Analyzers use this for summaries that are a property of the
// whole program rather than one package (transitive blocking, taint
// signatures), so the fixpoint runs once even though Run is per-package —
// and once across packages even when the driver runs passes in parallel.
func (p *Program) Fact(a *Analyzer, build func(*Program) any) any {
	p.mu.Lock()
	e := p.facts[a]
	if e == nil {
		e = &factEntry{}
		p.facts[a] = e
	}
	p.mu.Unlock()
	e.once.Do(func() { e.val = build(p) })
	return e.val
}

// PackageOf maps a types.Package back to its loaded Package, or nil for
// imported (non-analyzed) packages.
func (p *Program) PackageOf(t *types.Package) *Package { return p.byPkg[t] }

// Run executes the analyzers over one of the program's packages, with the
// program context on the pass. Findings come back sorted by position;
// suppression is NOT applied here — see Suppress.
func (p *Program) Run(pkg *Package, analyzers ...*Analyzer) ([]Diagnostic, error) {
	return runWith(p, pkg, analyzers...)
}

// Package raceclean holds the legal concurrency idioms racecheck must stay
// quiet about: pre-publication initialization (in constructors, before the
// first go statement, and on values a function literal itself allocates),
// atomic.Pointer publication, lock-set helpers with deferred release, an
// explicit //deltavet:guardedby none declaration, a single-goroutine-
// confined type, stores into by-value local copies, and deferred literals
// that run under their encloser's locks.
package raceclean

import (
	"sync"
	"sync/atomic"
)

// ---- pre-publication initialization ----

type state struct {
	mu    sync.Mutex
	files map[string]int
}

// newState mutates the fresh value freely: nothing else can reference it.
func newState() *state {
	s := &state{}
	s.files = map[string]int{}
	s.files["boot"] = 1
	return s
}

func (s *state) put(k string, v int) {
	s.mu.Lock()
	s.files[k] = v
	s.mu.Unlock()
}

func (s *state) view(k string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.files[k]
}

// Serve initializes before publishing: the write precedes the first go
// statement, so the constructor-fresh value is still single-owner.
func Serve() {
	s := newState()
	s.files["a"] = 1
	go s.loop()
}

func (s *state) loop() { s.put("x", 1) }

// ---- atomic.Pointer publication (atomicsafe's domain, not racecheck's) ----

type snapshot struct{ n int }

type holder struct {
	cur atomic.Pointer[snapshot]
}

func (h *holder) publish(n int) {
	h.cur.Store(&snapshot{n: n})
}

func (h *holder) read() int { return h.cur.Load().n }

// ---- lock-set helper with deferred helper release ----

type cell struct {
	mu sync.Mutex
	n  int
}

type grid struct{ cells [4]cell }

//deltavet:lockorder-helper
func (g *grid) lockCells() {
	for i := range g.cells {
		g.cells[i].mu.Lock()
	}
}

//deltavet:lockorder-helper
func (g *grid) unlockCells() {
	for i := range g.cells {
		g.cells[i].mu.Unlock()
	}
}

func (g *grid) bump() {
	g.lockCells()
	defer g.unlockCells()
	for i := range g.cells {
		g.cells[i].n++
	}
}

func (g *grid) read(i int) int {
	g.cells[i].mu.Lock()
	defer g.cells[i].mu.Unlock()
	return g.cells[i].n
}

// ---- declared-unguarded field ----

type metrics struct {
	mu  sync.Mutex
	ops int
	// scratch is owned by the calibration goroutine alone; the lock the
	// other sites happen to hold is incidental.
	//deltavet:guardedby none
	scratch int
}

func (m *metrics) tick() {
	m.mu.Lock()
	m.ops++
	m.scratch++
	m.mu.Unlock()
}

func (m *metrics) tock() {
	m.mu.Lock()
	m.scratch++
	m.mu.Unlock()
}

func (m *metrics) solo() { m.scratch++ }

// ---- confined type: no locks anywhere, so no guard is ever inferred ----

type confined struct{ seq int }

func (c *confined) next() int {
	c.seq++
	return c.seq
}

// ---- by-value copy: a store into a local copy aliases nothing ----

type tuning struct {
	mu   sync.Mutex
	rate int
}

func (t *tuning) set(r int) {
	t.mu.Lock()
	t.rate = r
	t.mu.Unlock()
}

func (t *tuning) get() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.rate
}

// normalize mutates its by-value parameter: the store lands in the local
// copy, so no lock is needed even though tuning.rate is mu-guarded.
func normalize(tn tuning) tuning {
	if tn.rate == 0 {
		tn.rate = 8
	}
	return tn
}

// ---- deferred literal: runs in the encloser's frame, under its locks ----

func (s *state) drop(k string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	// LIFO: this literal was registered after the Unlock defer, so it runs
	// before it — still under mu.
	defer func() {
		delete(s.files, k)
	}()
	s.files[k] = 0
}

// ---- literal-local allocation: fresh until published, whenever it runs ----

type result struct {
	mu sync.Mutex
	n  int
}

func (r *result) bump() {
	r.mu.Lock()
	r.n++
	r.mu.Unlock()
}

func (r *result) read() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// seedResults initializes values the literal itself allocates: the write to
// res.n precedes any publication, so it cannot race no matter which
// goroutine eventually runs the literal.
func seedResults(out chan<- *result) {
	work := func(seed int) *result {
		res := &result{}
		res.n = seed
		return res
	}
	out <- work(1)
}

// Package races seeds the bug shapes racecheck exists to catch: a striped
// map touched without its stripe lock, a write under the read lock, a
// forwarding path that skips pushMu, and violations of explicit
// //deltavet:guardedby declarations. The guarded sites outnumber the buggy
// ones so inference picks the right lock and the findings carry its
// evidence.
package races

import "sync"

// ---- striped map: stripe.mu guards stripe.files ----

type stripe struct {
	mu    sync.RWMutex
	files map[string]int
}

type table struct {
	stripes [8]stripe
}

func hash(k string) int { return len(k) % 8 }

// lockAll takes every stripe lock (coarse path for clears and snapshots).
//
//deltavet:lockorder-helper
func (t *table) lockAll() {
	for i := range t.stripes {
		t.stripes[i].mu.Lock()
	}
}

//deltavet:lockorder-helper
func (t *table) unlockAll() {
	for i := range t.stripes {
		t.stripes[i].mu.Unlock()
	}
}

// clearAll writes every stripe under the helper-acquired locks: the guard
// arrives "via lockAll", which is the witness chain inference cites.
func (t *table) clearAll() {
	t.lockAll()
	for i := range t.stripes {
		t.stripes[i].files = map[string]int{}
	}
	t.unlockAll()
}

func (t *table) put(k string, v int) {
	s := &t.stripes[hash(k)]
	s.mu.Lock()
	s.files[k] = v
	s.mu.Unlock()
}

func (t *table) get(k string) int {
	s := &t.stripes[hash(k)]
	s.mu.RLock()
	v := s.files[k]
	s.mu.RUnlock()
	return v
}

func (t *table) size() int {
	n := 0
	for i := range t.stripes {
		s := &t.stripes[i]
		s.mu.RLock()
		n += len(s.files)
		s.mu.RUnlock()
	}
	return n
}

// BadSkipStripeLock indexes the stripe but never takes its lock.
func (t *table) BadSkipStripeLock(k string, v int) {
	s := &t.stripes[hash(k)]
	s.files[k] = v // want `write to stripe.files without holding stripe.mu — guard inferred from 5/6 guarded accesses \(e\.g\. races\.go:\d+ \(via lockAll\), races\.go:\d+\)`
}

// BadWriteUnderRLock mutates while holding only the read half.
func (t *table) BadWriteUnderRLock(k string, v int) {
	s := &t.stripes[hash(k)]
	s.mu.RLock()
	s.files[k] = v // want `write to stripe.files while holding only stripe\.mu\.RLock`
	s.mu.RUnlock()
}

// ---- per-client record: pushMu guards dedup and outbox ----

type peer struct {
	pushMu sync.Mutex
	dedup  map[uint64]bool
	outbox []int
}

// appendLocked is called only with pushMu held; the lock reaches its body
// through the call-site entry context, not a lock op of its own.
func (p *peer) appendLocked(v int) {
	p.outbox = append(p.outbox, v)
}

func (p *peer) record(seq uint64) {
	p.pushMu.Lock()
	defer p.pushMu.Unlock()
	p.dedup[seq] = true
	p.appendLocked(int(seq))
}

func (p *peer) push(seq uint64, v int) {
	p.pushMu.Lock()
	p.dedup[seq] = true
	p.outbox = append(p.outbox, v)
	p.pushMu.Unlock()
}

// BadForward is the forwarding path that skips pushMu: the dedup read is a
// legal dirty read (reads vote, they don't report), the outbox append is
// the race.
func (p *peer) BadForward(seq uint64, v int) {
	if p.dedup[seq] {
		return
	}
	p.outbox = append(p.outbox, v) // want `write to peer.outbox without holding peer.pushMu — guard inferred from 4/6 guarded accesses \(e\.g\. races\.go:\d+ \(held at every call site of appendLocked\)`
}

// ---- explicit //deltavet:guardedby declarations ----

type counters struct {
	mu sync.Mutex
	//deltavet:guardedby mu
	hits int
}

func (c *counters) hit() {
	c.mu.Lock()
	c.hits++
	c.mu.Unlock()
}

// BadPeekThenBump violates the declared guard; with only one guarded site,
// voting alone would never reach a majority — the annotation is the guard.
func (c *counters) BadPeekThenBump() {
	c.hits++ // want `write to counters.hits without holding counters\.mu — guard declared by //deltavet:guardedby mu`
}

// ---- cross-struct declaration: registry.mu guards journal.lines ----

type registry struct {
	mu    sync.Mutex
	names map[string]bool
}

type journal struct {
	//deltavet:guardedby registry.mu
	lines []string
}

func (r *registry) log(j *journal, s string) {
	r.mu.Lock()
	j.lines = append(j.lines, s)
	r.mu.Unlock()
}

func BadDirectLog(j *journal, s string) {
	j.lines = append(j.lines, s) // want `write to journal.lines without holding registry\.mu — guard declared by //deltavet:guardedby registry\.mu`
}

// ---- a declaration that resolves to nothing is itself a finding ----

type badAnno struct {
	//deltavet:guardedby nosuchlock
	x int // want `guardedby nosuchlock does not resolve`
}

package racecheck_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/racecheck"
)

func TestRaces(t *testing.T) {
	analysistest.Run(t, racecheck.Analyzer, "races")
}

func TestClean(t *testing.T) {
	analysistest.Run(t, racecheck.Analyzer, "raceclean")
}

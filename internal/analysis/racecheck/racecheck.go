// Package racecheck is the deltavet suite's static data-race detector: a
// compositional lockset analysis in the RacerD tradition, specialized to the
// conventions the sharded server actually uses. It answers, without running
// the code, the question the -race runs answer only under a lucky
// interleaving: "which lock guards this field, and is every write under it?"
//
// Three cooperating pieces:
//
//  1. Lockset dataflow. A forward must-analysis over the per-function CFG
//     computes, at every program point, the set of mutexes provably held on
//     ALL paths reaching that point — with the RLock/Lock mode distinction
//     (a write needs the write lock), defer-aware release (a deferred
//     Unlock keeps the lock held to the end of the body), and the
//     `//deltavet:lockorder-helper` lock-set helpers understood as may-
//     acquire/may-release summaries (their loops would otherwise defeat the
//     must-analysis: a zero-iteration range path holds nothing). Summaries
//     are interprocedural both ways: a callee that net-acquires or
//     net-releases locks (batchLocks.lock / unlockAllShards) flows its
//     effect into the caller's lockset with a named witness chain, and an
//     unexported function called only with a lock held inherits that lock
//     as its entry context (the must-intersection over every static call
//     site), so accesses inside interior helpers are attributed correctly.
//
//  2. Guarded-by inference. Lock identity is type-level: a mutex field
//     (fileShard.mu) is one lock however many instances exist, so
//     `s.shards[i].mu` guarding `s.shards[i].files` is recognized through
//     receiver aliases and shard-slice indexing without instance-sensitive
//     points-to analysis (the standard RacerD coarsening: a lock on stripe
//     A "covers" an access to stripe B — cross-stripe confusion is the
//     lockorder analyzer's domain, not this one's). Per struct field, every
//     access in the module votes for the locks held at that access; a lock
//     held at a strict majority of the non-exempt sites (and at least two
//     of them) becomes the field's inferred guard. An explicit
//     `//deltavet:guardedby <lockexpr>` annotation on the field overrides
//     inference (`//deltavet:guardedby none` declares the field
//     deliberately unguarded — confined or externally synchronized).
//
//  3. The race report. A write to a guarded field with the guard absent
//     from the lockset — or held only in read mode — is a finding, carrying
//     the inference evidence (vote count and exemplar guarded sites, with
//     the witness chain when the guard arrived via a helper or a caller's
//     context). Reads are voters, not findings: the server's intentional
//     dirty-read paths stay legal, and a racy read against an unlocked
//     write is reported at the write.
//
// Escape hatches for the idioms the suite already knows are legal:
// pre-publication initialization is exempt (an access through a value the
// alias layer traces to a fresh allocation in the same function, before any
// `go` statement has possibly run, cannot race — no other goroutine holds a
// reference yet; inside a function literal the same window covers values the
// literal itself allocates); a direct store into a by-value struct held in a
// local or parameter (`cfg.BlockSize = n` on a `Config` value) mutates the
// local copy, which nothing can alias; a literal invoked directly by a defer
// (`defer func() { ... }()`) runs in its encloser's frame at exit and
// inherits the encloser's exit lockset; fields of sync/atomic type, and
// fields accessed through sync/atomic functions, belong to atomicsafe's
// domain; channel fields synchronize themselves; and single-goroutine-
// confined types fall out of inference naturally — their accesses never hold
// locks, so no guard ever reaches a majority and nothing is reported.
//
// Soundness limits (deliberate, documented): calls through function values
// have no summaries; a write through a plain local alias of a field value
// (`m := s.files; m[k] = v`) is recorded at the alias read, not the write;
// embedded (promoted) mutexes are not recognized as locks; goroutine
// spawns hidden behind callees do not end the pre-publication window; and a
// value-typed local captured by a concurrently-running literal is still
// treated as an unaliased copy.
package racecheck

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/alias"
	"repro/internal/analysis/cfg"
)

// GuardMark is the explicit guarded-by annotation: a comment on a struct
// field, `//deltavet:guardedby <lockexpr>`, where lockexpr names a mutex
// field of the same struct ("mu"), a mutex field of another struct in the
// package ("Server.clientMu"), a package-level mutex var, or "none" to
// declare the field deliberately unguarded.
const GuardMark = "deltavet:guardedby"

// helperMark mirrors lockorder's sanctioned-acquisition-helper directive:
// the annotated function's lock effects are summarized with may semantics
// (its acquisition loops defeat a must-analysis).
const helperMark = "deltavet:lockorder-helper"

// Analyzer is the racecheck checker.
var Analyzer = &analysis.Analyzer{
	Name: "racecheck",
	Doc:  "writes to a lock-guarded struct field must hold the guard in write mode (guards inferred by voting across all accesses, or declared with //deltavet:guardedby)",
	Run:  run,
}

// ---- lockset lattice ----

type lockMode uint8

const (
	modeR lockMode = 1 // read lock (RLock)
	modeW lockMode = 2 // write lock (Lock); covers modeR
)

// lockState is the dataflow fact at one program point: the locks that MUST
// be held on every path here (with the strongest mode provable on all of
// them), how each arrived (for witness rendering), and whether a goroutine
// may already have been spawned (which closes the pre-publication window).
type lockState struct {
	held   map[types.Object]lockMode
	how    map[types.Object]string
	goSeen bool
}

func newLockState() *lockState {
	return &lockState{held: map[types.Object]lockMode{}, how: map[types.Object]string{}}
}

func (s *lockState) clone() *lockState {
	c := &lockState{
		held:   make(map[types.Object]lockMode, len(s.held)),
		how:    make(map[types.Object]string, len(s.how)),
		goSeen: s.goSeen,
	}
	for k, v := range s.held {
		c.held[k] = v
		c.how[k] = s.how[k]
	}
	return c
}

// meet intersects o into s (must-analysis join): a lock survives only if
// held on both paths, at the weaker of the two modes. goSeen is a may-bit.
func (s *lockState) meet(o *lockState) {
	for k, v := range s.held {
		ov, ok := o.held[k]
		if !ok {
			delete(s.held, k)
			delete(s.how, k)
			continue
		}
		if ov < v {
			s.held[k] = ov
		}
	}
	s.goSeen = s.goSeen || o.goSeen
}

func (s *lockState) equal(o *lockState) bool {
	if s.goSeen != o.goSeen || len(s.held) != len(o.held) {
		return false
	}
	for k, v := range s.held {
		if o.held[k] != v {
			return false
		}
	}
	return true
}

func (s *lockState) acquire(obj types.Object, m lockMode, how string) {
	if cur, ok := s.held[obj]; !ok || m > cur {
		s.held[obj] = m
		s.how[obj] = how
	}
}

func (s *lockState) release(obj types.Object) bool {
	if _, ok := s.held[obj]; ok {
		delete(s.held, obj)
		delete(s.how, obj)
		return true
	}
	return false
}

// ---- interprocedural summaries ----

// summary is one function's net lock effect as seen by a caller: acq is
// what it holds for the caller after it returns (must, except helpers which
// are may by design), rel what it releases of the caller's locks.
type summary struct {
	acq    map[types.Object]lockMode
	acqHow map[types.Object]string
	rel    map[types.Object]bool
}

func (s *summary) empty() bool { return s == nil || (len(s.acq) == 0 && len(s.rel) == 0) }

// ---- access sites ----

// site is one read or write of a tracked struct field.
type site struct {
	fn     *types.Func // enclosing function (the lit's encloser for FuncLit bodies)
	pkg    *types.Package
	pos    token.Pos
	p      token.Position
	write  bool
	held   map[types.Object]lockMode
	how    map[types.Object]string
	exempt string // non-empty: excluded from votes and findings, with the reason
}

// guardDecl is one parsed //deltavet:guardedby annotation.
type guardDecl struct {
	none bool
	lock types.Object
	raw  string
}

type finding struct {
	pkg *types.Package
	pos token.Pos
	msg string
}

// unit is one analyzable body: a function declaration, or a function
// literal. A detached literal analyzes with an empty entry lockset — it runs
// at an unknown time, possibly on another goroutine; a literal invoked
// directly by a defer (deferredIn != nil) runs in its encloser's frame at
// exit and inherits the encloser's exit lockset.
type unit struct {
	fn         *types.Func
	pkg        *analysis.Package
	info       *types.Info
	fset       *token.FileSet
	body       *ast.BlockStmt
	g          *cfg.Graph
	isLit      bool
	deferredIn *unit
	// fresh is the lazily built alias tracker for locally allocated values
	// (the pre-publication escape hatch).
	fresh *alias.Tracker
}

type fact struct {
	prog     *analysis.Program
	analyzed map[*types.Package]bool

	helpers      map[*types.Func]bool
	freshFns     map[*types.Func]string
	atomicFields map[*types.Var]bool
	guards       map[*types.Var]*guardDecl

	units    []*unit
	byFn     map[*types.Func]*unit
	sums     map[*types.Func]*summary
	entry    map[*types.Func]map[types.Object]lockMode
	entryHow map[*types.Func]string

	lockName  map[types.Object]string
	fieldName map[*types.Var]string

	sites    map[*types.Var][]*site
	fields   []*types.Var // deterministic field order
	findings []finding
}

func run(pass *analysis.Pass) error {
	f := pass.Prog.Fact(pass.Analyzer, func(prog *analysis.Program) any {
		return buildFact(prog)
	}).(*fact)
	for _, fd := range f.findings {
		if fd.pkg == pass.Pkg {
			pass.Reportf(fd.pos, "%s", fd.msg)
		}
	}
	return nil
}

// ---- fact construction ----

func buildFact(prog *analysis.Program) *fact {
	f := &fact{
		prog:         prog,
		analyzed:     make(map[*types.Package]bool),
		helpers:      make(map[*types.Func]bool),
		atomicFields: make(map[*types.Var]bool),
		guards:       make(map[*types.Var]*guardDecl),
		byFn:         make(map[*types.Func]*unit),
		sums:         make(map[*types.Func]*summary),
		entry:        make(map[*types.Func]map[types.Object]lockMode),
		entryHow:     make(map[*types.Func]string),
		lockName:     make(map[types.Object]string),
		fieldName:    make(map[*types.Var]string),
		sites:        make(map[*types.Var][]*site),
	}
	for _, pkg := range prog.Packages {
		f.analyzed[pkg.Types] = true
	}
	f.collectDirectives()
	f.collectAtomicFields()
	f.collectFreshFns()
	f.collectUnits()
	f.computeSummaries()
	f.computeEntryContexts()
	f.recordAccesses()
	f.infer()
	return f
}

// collectDirectives scans function doc comments for lockorder-helper marks
// and struct fields for guardedby annotations.
func (f *fact) collectDirectives() {
	for _, n := range f.prog.Graph.Nodes() {
		if n.Decl == nil || n.Decl.Doc == nil {
			continue
		}
		for _, c := range n.Decl.Doc.List {
			if strings.Contains(c.Text, helperMark) {
				f.helpers[n.Func] = true
				break
			}
		}
	}
	for _, pkg := range f.prog.Packages {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				st, ok := n.(*ast.StructType)
				if !ok {
					return true
				}
				for _, fld := range st.Fields.List {
					raw := guardDirective(fld)
					if raw == "" {
						continue
					}
					decl := f.resolveGuard(pkg, st, raw)
					for _, name := range fld.Names {
						v, ok := pkg.TypesInfo.Defs[name].(*types.Var)
						if !ok {
							continue
						}
						if decl == nil {
							f.findings = append(f.findings, finding{
								pkg: pkg.Types, pos: name.Pos(),
								msg: fmt.Sprintf("//deltavet:guardedby %s does not resolve to a sync.Mutex/RWMutex field of this struct, a Type.field in this package, or a package-level mutex", raw),
							})
							continue
						}
						f.guards[v] = decl
					}
				}
				return true
			})
		}
	}
}

// guardDirective extracts the lockexpr of a guardedby annotation attached
// to a struct field (doc comment above, or trailing line comment).
func guardDirective(fld *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{fld.Doc, fld.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if idx := strings.Index(c.Text, GuardMark); idx >= 0 {
				rest := strings.Fields(c.Text[idx+len(GuardMark):])
				if len(rest) > 0 {
					return rest[0]
				}
			}
		}
	}
	return ""
}

// resolveGuard resolves a guardedby lockexpr against the annotated struct
// and its package. nil means unresolvable (reported by the caller).
func (f *fact) resolveGuard(pkg *analysis.Package, st *ast.StructType, raw string) *guardDecl {
	if raw == "none" {
		return &guardDecl{none: true, raw: raw}
	}
	mutexField := func(s *ast.StructType, name string) types.Object {
		for _, fld := range s.Fields.List {
			for _, n := range fld.Names {
				if n.Name != name {
					continue
				}
				if v, ok := pkg.TypesInfo.Defs[n].(*types.Var); ok && analysis.IsMutexType(v.Type()) {
					return v
				}
			}
		}
		return nil
	}
	if typeName, fieldName, ok := strings.Cut(raw, "."); ok {
		tn, _ := pkg.Types.Scope().Lookup(typeName).(*types.TypeName)
		if tn == nil {
			return nil
		}
		strct, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			return nil
		}
		for i := 0; i < strct.NumFields(); i++ {
			v := strct.Field(i)
			if v.Name() == fieldName && analysis.IsMutexType(v.Type()) {
				f.lockName[v] = typeName + "." + v.Name()
				return &guardDecl{lock: v, raw: raw}
			}
		}
		return nil
	}
	if v := mutexField(st, raw); v != nil {
		return &guardDecl{lock: v, raw: raw}
	}
	if v, ok := pkg.Types.Scope().Lookup(raw).(*types.Var); ok && analysis.IsMutexType(v.Type()) {
		f.lockName[v] = v.Name()
		return &guardDecl{lock: v, raw: raw}
	}
	return nil
}

// collectAtomicFields finds fields passed by address to sync/atomic
// functions anywhere in the program — atomicsafe's domain, exempt here.
func (f *fact) collectAtomicFields() {
	for _, pkg := range f.prog.Packages {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := analysis.CalleeOf(pkg.TypesInfo, call)
				if fn == nil || analysis.PkgPathOf(fn) != "sync/atomic" {
					return true
				}
				for _, arg := range call.Args {
					u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
					if !ok || u.Op != token.AND {
						continue
					}
					sel, ok := ast.Unparen(u.X).(*ast.SelectorExpr)
					if !ok {
						continue
					}
					if s, ok := pkg.TypesInfo.Selections[sel]; ok {
						if v, ok := s.Obj().(*types.Var); ok && v.IsField() {
							f.atomicFields[v] = true
						}
					}
				}
				return true
			})
		}
	}
}

// collectFreshFns finds constructor-shaped functions (new*/New*/make*/Make*)
// that provably return a fresh allocation, via the alias layer's transitive
// return tracking. Calls to them seed the pre-publication escape hatch.
func (f *fact) collectFreshFns() {
	returns := alias.ReturnsTracked(f.prog.Graph, func(info *types.Info, e ast.Expr) string {
		switch x := e.(type) {
		case *ast.CompositeLit:
			return "fresh"
		case *ast.CallExpr:
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "new" && isBuiltin(info, id) {
				return "fresh"
			}
		}
		return ""
	})
	f.freshFns = make(map[*types.Func]string)
	for fn, why := range returns {
		name := fn.Name()
		if strings.HasPrefix(name, "new") || strings.HasPrefix(name, "New") ||
			strings.HasPrefix(name, "make") || strings.HasPrefix(name, "Make") {
			f.freshFns[fn] = why
		}
	}
}

// collectUnits builds one unit per source function declaration plus one per
// function literal, and marks the literals invoked directly by a defer
// statement with their enclosing unit.
func (f *fact) collectUnits() {
	litOf := make(map[*ast.FuncLit]*unit)
	for _, n := range f.prog.Graph.Nodes() {
		if n.Decl == nil || n.Decl.Body == nil || n.Src == nil {
			continue
		}
		pkg := f.prog.PackageOf(n.Src.Pkg)
		if pkg == nil {
			continue
		}
		u := &unit{
			fn: n.Func, pkg: pkg, info: pkg.TypesInfo, fset: pkg.Fset,
			body: n.Decl.Body, g: f.prog.CFG(n.Decl),
		}
		f.units = append(f.units, u)
		f.byFn[n.Func] = u
		ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
			if lit, ok := x.(*ast.FuncLit); ok {
				lu := &unit{
					fn: n.Func, pkg: pkg, info: pkg.TypesInfo, fset: pkg.Fset,
					body: lit.Body, g: cfg.New(lit.Body), isLit: true,
				}
				f.units = append(f.units, lu)
				litOf[lit] = lu
			}
			return true
		})
	}
	// `defer func() { ... }()` runs the literal in its encloser's frame at
	// function exit; mark it so dataflow seeds it with the encloser's exit
	// lockset. The scan is shallow per unit (nested literals are scanned as
	// their own units), so each deferred literal binds to its immediate
	// encloser.
	for _, u := range f.units {
		encl := u
		ast.Inspect(u.body, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.FuncLit:
				return false
			case *ast.DeferStmt:
				if lit, ok := ast.Unparen(x.Call.Fun).(*ast.FuncLit); ok {
					if lu := litOf[lit]; lu != nil {
						lu.deferredIn = encl
					}
				}
			}
			return true
		})
	}
}

// freshTracker lazily builds the unit's alias relation over fresh
// allocations: composite literals, new(T), and constructor-shaped callees.
func (f *fact) freshTracker(u *unit) *alias.Tracker {
	if u.fresh != nil {
		return u.fresh
	}
	u.fresh = alias.Track(u.info, u.body, nil, func(e ast.Expr) *alias.Seed {
		switch x := e.(type) {
		case *ast.CompositeLit:
			return &alias.Seed{Expr: e, Tag: "fresh"}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "new" && isBuiltin(u.info, id) {
				return &alias.Seed{Expr: e, Tag: "fresh"}
			}
			if fn := analysis.CalleeOf(u.info, x); fn != nil && f.freshFns[fn] != "" {
				return &alias.Seed{Expr: e, Tag: "fresh"}
			}
		}
		return nil
	})
	return u.fresh
}

// ---- summary fixpoint ----

// computeSummaries runs the callee-to-caller fixpoint: each pass re-derives
// every lock-relevant function's net acquire/release effect using the
// current summaries at its call sites, until nothing changes. Helpers are
// summarized once with may semantics.
func (f *fact) computeSummaries() {
	for round := 0; round < 20; round++ {
		changed := false
		for _, u := range f.units {
			if u.isLit {
				continue // literals run detached from any caller's frame
			}
			if f.helpers[u.fn] {
				s := f.helperSummary(u)
				if !sameSummary(f.sums[u.fn], s) {
					f.sums[u.fn] = s
					changed = true
				}
				continue
			}
			if !f.lockRelevant(u) {
				continue
			}
			s := f.bodySummary(u)
			if !sameSummary(f.sums[u.fn], s) {
				f.sums[u.fn] = s
				changed = true
			}
		}
		if !changed {
			break
		}
	}
}

// lockRelevant reports whether the unit can affect a lockset at all: a
// direct mutex operation in the body, or a call to a function whose current
// summary is non-empty.
func (f *fact) lockRelevant(u *unit) bool {
	relevant := false
	ast.Inspect(u.body, func(n ast.Node) bool {
		if relevant {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if op, _, ok := mutexOp(u.info, call); ok && op != "" {
			relevant = true
			return false
		}
		for _, t := range f.prog.Graph.CalleesAt(call) {
			if !f.sums[t.Func].empty() {
				relevant = true
				return false
			}
		}
		return true
	})
	return relevant
}

// helperSummary summarizes a lockorder-helper with may semantics: every
// lock op in the body (and in summarized callees) counts, loops included.
func (f *fact) helperSummary(u *unit) *summary {
	s := &summary{acq: map[types.Object]lockMode{}, acqHow: map[types.Object]string{}, rel: map[types.Object]bool{}}
	ast.Inspect(u.body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.CallExpr:
			if op, obj, ok := mutexOp(u.info, n); ok && obj != nil {
				f.nameLock(u, n, obj)
				switch op {
				case "Lock":
					s.acq[obj] = modeW
				case "RLock":
					if s.acq[obj] < modeR {
						s.acq[obj] = modeR
					}
				case "Unlock", "RUnlock":
					s.rel[obj] = true
				}
				return true
			}
			for _, t := range f.prog.Graph.CalleesAt(n) {
				cs := f.sums[t.Func]
				if cs.empty() {
					continue
				}
				for obj, m := range cs.acq {
					if s.acq[obj] < m {
						s.acq[obj] = m
						s.acqHow[obj] = chainVia(t.Func.Name(), cs.acqHow[obj])
					}
				}
				for obj := range cs.rel {
					s.rel[obj] = true
				}
			}
		}
		return true
	})
	return s
}

// bodySummary derives a regular function's summary from its dataflow: acq
// is the exit lockset minus deferred releases, rel the locks released
// without a prior acquire in this body (plus net deferred releases).
func (f *fact) bodySummary(u *unit) *summary {
	w := f.dataflow(u, nil, nil)
	s := &summary{acq: map[types.Object]lockMode{}, acqHow: map[types.Object]string{}, rel: map[types.Object]bool{}}
	exit := w.exitState()
	for obj, m := range exit.held {
		if w.deferRel[obj] {
			continue
		}
		s.acq[obj] = m
		s.acqHow[obj] = exit.how[obj]
	}
	for obj := range w.netRel {
		s.rel[obj] = true
	}
	for obj := range w.deferRel {
		if _, acquiredHere := exit.held[obj]; !acquiredHere {
			s.rel[obj] = true
		}
	}
	return s
}

func sameSummary(a, b *summary) bool {
	if a.empty() != b.empty() {
		return false
	}
	if a == nil || b == nil {
		return a.empty() && b.empty()
	}
	if len(a.acq) != len(b.acq) || len(a.rel) != len(b.rel) {
		return false
	}
	for k, v := range a.acq {
		if b.acq[k] != v {
			return false
		}
	}
	for k := range a.rel {
		if !b.rel[k] {
			return false
		}
	}
	return true
}

// ---- entry contexts ----

// computeEntryContexts derives, for every unexported function, the locks
// held at ALL of its static call sites (the must-intersection): an interior
// helper called only under a lock analyzes as if it held that lock, with a
// "held at every call site" witness. Exported functions are API — callers
// outside the analyzed program (tests, future code) owe them nothing, so
// their entry is empty. The fixpoint grows from empty entries, which
// converges from below: cycles err toward fewer held locks (false
// positives, never missed races).
func (f *fact) computeEntryContexts() {
	// Total static in-edges per function: a callee is only as locked as its
	// least-locked call site, and a call site we never analyze (none exist:
	// every call site lives in some unit's body) or one inside a go
	// statement contributes the empty set.
	inEdges := make(map[*types.Func]int)
	for _, n := range f.prog.Graph.Nodes() {
		for _, e := range n.Out {
			inEdges[e.Callee.Func]++
		}
	}
	for round := 0; round < 6; round++ {
		gathered := make(map[*types.Func][]map[types.Object]lockMode)
		count := make(map[*types.Func]int)
		for _, u := range f.units {
			w := f.dataflow(u, nil, nil)
			w.replay(func(callee *types.Func, held map[types.Object]lockMode, _ *lockState, _ ast.Node) {
				count[callee]++
				gathered[callee] = append(gathered[callee], held)
			}, nil)
		}
		changed := false
		for _, n := range f.prog.Graph.Nodes() {
			fn := n.Func
			if fn.Exported() || f.helpers[fn] || f.byFn[fn] == nil {
				continue
			}
			sets := gathered[fn]
			if len(sets) == 0 || count[fn] != inEdges[fn] {
				continue // some call site is unaccounted for: stay empty
			}
			inter := make(map[types.Object]lockMode, len(sets[0]))
			for k, v := range sets[0] {
				inter[k] = v
			}
			for _, s := range sets[1:] {
				for k, v := range inter {
					sv, ok := s[k]
					if !ok {
						delete(inter, k)
					} else if sv < v {
						inter[k] = sv
					}
				}
			}
			if len(inter) == 0 {
				continue
			}
			if !sameLockMap(f.entry[fn], inter) {
				f.entry[fn] = inter
				f.entryHow[fn] = "held at every call site of " + fn.Name()
				changed = true
			}
		}
		if !changed {
			break
		}
	}
}

func sameLockMap(a, b map[types.Object]lockMode) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// ---- access recording and inference ----

func (f *fact) recordAccesses() {
	for _, u := range f.units {
		w := f.dataflow(u, nil, nil)
		w.replay(nil, func(v *types.Var, sel *ast.SelectorExpr, write, direct bool, st *lockState) {
			f.recordSite(u, w, v, sel, write, direct, st)
		})
	}
}

func (f *fact) recordSite(u *unit, w *walker, v *types.Var, sel *ast.SelectorExpr, write, direct bool, st *lockState) {
	if _, seen := f.sites[v]; !seen {
		f.fields = append(f.fields, v)
	}
	if f.fieldName[v] == "" {
		owner, _ := analysis.NamedType(u.info.Types[sel.X].Type)
		if owner == "" {
			owner = "?"
		}
		f.fieldName[v] = owner + "." + v.Name()
	}
	s := &site{
		fn: u.fn, pkg: u.pkg.Types, pos: sel.Pos(), p: u.fset.Position(sel.Pos()), write: write,
		held: make(map[types.Object]lockMode, len(st.held)),
		how:  make(map[types.Object]string, len(st.held)),
	}
	for k, m := range st.held {
		s.held[k] = m
		s.how[k] = st.how[k]
	}
	if write && direct && valueCopyStore(u.info, sel) {
		s.exempt = "store to a by-value local copy"
	} else if !st.goSeen {
		base := innermostBase(sel)
		if len(f.freshTracker(u).ExprSeeds(base)) > 0 {
			s.exempt = "pre-publication access to a fresh value"
		}
	}
	f.sites[v] = append(f.sites[v], s)
}

// infer votes per field, picks the dominating lock, and reports unguarded
// (or under-locked) writes.
func (f *fact) infer() {
	sort.Slice(f.fields, func(i, j int) bool { return f.fields[i].Pos() < f.fields[j].Pos() })
	for _, v := range f.fields {
		decl := f.guards[v]
		if decl != nil && decl.none {
			continue
		}
		sites := f.sites[v]
		var voters []*site
		for _, s := range sites {
			if s.exempt == "" {
				voters = append(voters, s)
			}
		}
		var guard types.Object
		var evidence string
		lockLabel := func(obj types.Object) string {
			if n := f.lockName[obj]; n != "" {
				return n
			}
			return obj.Name()
		}
		if decl != nil {
			guard = decl.lock
			evidence = fmt.Sprintf("declared by //deltavet:guardedby %s", decl.raw)
		} else {
			tally := make(map[types.Object]int)
			for _, s := range voters {
				for obj := range s.held {
					tally[obj]++
				}
			}
			var locks []types.Object
			for obj := range tally {
				locks = append(locks, obj)
			}
			sort.Slice(locks, func(i, j int) bool {
				if tally[locks[i]] != tally[locks[j]] {
					return tally[locks[i]] > tally[locks[j]]
				}
				return f.lockName[locks[i]] < f.lockName[locks[j]]
			})
			if len(locks) == 0 {
				continue
			}
			best := locks[0]
			votes := tally[best]
			if votes < 2 || 2*votes <= len(voters) {
				continue // no dominating lock: unguarded or confined by design
			}
			guard = best
			evidence = fmt.Sprintf("inferred from %d/%d guarded accesses (e.g. %s)",
				votes, len(voters), f.exemplars(voters, best))
		}
		for _, s := range voters {
			if !s.write {
				continue
			}
			switch s.held[guard] {
			case modeW:
				// guarded
			case modeR:
				f.findings = append(f.findings, finding{
					pkg: s.pkg, pos: s.pos,
					msg: fmt.Sprintf("write to %s while holding only %s.RLock — writes need the write lock; guard %s", f.fieldName[v], lockLabel(guard), evidence),
				})
			default:
				f.findings = append(f.findings, finding{
					pkg: s.pkg, pos: s.pos,
					msg: fmt.Sprintf("write to %s without holding %s — guard %s; an unlocked write races with the guarded accesses", f.fieldName[v], lockLabel(guard), evidence),
				})
			}
		}
	}
}

// exemplars renders up to two guarded sites, with the witness chain when
// the guard arrived via a helper or a caller's context.
func (f *fact) exemplars(voters []*site, guard types.Object) string {
	var out []string
	seen := map[string]bool{}
	for _, s := range voters {
		if _, ok := s.held[guard]; !ok {
			continue
		}
		at := fmt.Sprintf("%s:%d", shortFile(s.p.Filename), s.p.Line)
		if seen[at] {
			continue
		}
		seen[at] = true
		e := at
		if how := s.how[guard]; how != "" {
			e += " (" + how + ")"
		}
		out = append(out, e)
		if len(out) == 2 {
			break
		}
	}
	return strings.Join(out, ", ")
}

func shortFile(name string) string {
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		return name[i+1:]
	}
	return name
}

// ---- the per-unit dataflow engine ----

// walker runs the lockset transfer over one unit's CFG. After run(), in[b]
// holds the must-lockset entering each block; replay() re-executes the
// transfer per block to visit call sites and field accesses with the exact
// state at each point.
type walker struct {
	f    *fact
	u    *unit
	in   map[*cfg.Block]*lockState
	out  map[*cfg.Block]*lockState
	post []*cfg.Block
	// deferRel: locks released by a deferred call somewhere in the body
	// (may); netRel: locks released without a prior acquire here (may).
	deferRel map[types.Object]bool
	netRel   map[types.Object]bool

	onCall   func(callee *types.Func, held map[types.Object]lockMode, st *lockState, site ast.Node)
	onAccess func(v *types.Var, sel *ast.SelectorExpr, write, direct bool, st *lockState)
}

// dataflow runs the fixpoint for u and returns the walker for replay.
func (f *fact) dataflow(u *unit, onCall func(*types.Func, map[types.Object]lockMode, *lockState, ast.Node), onAccess func(*types.Var, *ast.SelectorExpr, bool, bool, *lockState)) *walker {
	w := &walker{
		f: f, u: u,
		in: make(map[*cfg.Block]*lockState), out: make(map[*cfg.Block]*lockState),
		deferRel: make(map[types.Object]bool), netRel: make(map[types.Object]bool),
	}
	w.post = u.g.Postorder()
	reach := make(map[*cfg.Block]bool, len(w.post))
	for _, b := range w.post {
		reach[b] = true
	}
	entry := newLockState()
	switch {
	case !u.isLit:
		for obj, m := range f.entry[u.fn] {
			entry.acquire(obj, m, f.entryHow[u.fn])
		}
	case u.deferredIn != nil:
		// A deferred literal runs in its encloser's frame at exit: seed it
		// with the encloser's exit lockset. (LIFO works in our favor: the
		// usual `defer mu.Unlock()` registered before the literal runs after
		// it, so a lock held to the end of the body is held when the literal
		// runs. A literal registered before an explicit early Unlock is the
		// over-approximated corner, erring toward a missed race, not noise.)
		entry = f.dataflow(u.deferredIn, nil, nil).exitState().clone()
	default:
		// A detached literal runs at an unknown time, possibly on another
		// goroutine: no inherited locks. goSeen starts false all the same —
		// the freshness tracker seeds only allocations in this body, and a
		// value allocated here is unreachable elsewhere until published,
		// whenever the literal runs.
	}
	for changed := true; changed; {
		changed = false
		for i := len(w.post) - 1; i >= 0; i-- {
			b := w.post[i]
			var st *lockState
			if b == u.g.Entry {
				st = entry.clone()
			} else {
				for _, p := range b.Preds {
					if !reach[p] || w.out[p] == nil {
						continue
					}
					if st == nil {
						st = w.out[p].clone()
					} else {
						st.meet(w.out[p])
					}
				}
				if st == nil {
					st = newLockState()
				}
			}
			o := st.clone()
			for _, n := range b.Nodes {
				w.applyNode(n, o)
			}
			if w.in[b] == nil || !w.in[b].equal(st) || w.out[b] == nil || !w.out[b].equal(o) {
				w.in[b], w.out[b] = st, o
				changed = true
			}
		}
	}
	w.onCall, w.onAccess = onCall, onAccess
	return w
}

// exitState is the must-lockset at function exit.
func (w *walker) exitState() *lockState {
	if s := w.in[w.u.g.Exit]; s != nil {
		return s
	}
	return newLockState()
}

// replay re-runs the transfer with the collection callbacks installed.
func (w *walker) replay(onCall func(*types.Func, map[types.Object]lockMode, *lockState, ast.Node), onAccess func(*types.Var, *ast.SelectorExpr, bool, bool, *lockState)) {
	w.onCall, w.onAccess = onCall, onAccess
	for _, b := range w.post {
		if w.in[b] == nil {
			continue
		}
		st := w.in[b].clone()
		for _, n := range b.Nodes {
			w.applyNode(n, st)
		}
	}
	w.onCall, w.onAccess = nil, nil
}

// applyNode is the transfer function for one CFG node: it visits the
// node's subtree in source order, recording field accesses with the running
// state and applying lock effects as they are encountered.
func (w *walker) applyNode(n ast.Node, st *lockState) {
	switch n := n.(type) {
	case nil:
		return
	case *ast.FuncLit:
		return // a separate unit
	case *ast.GoStmt:
		// Argument expressions evaluate now, under the current locks; the
		// callee runs later, under none of them.
		if sel, ok := ast.Unparen(n.Call.Fun).(*ast.SelectorExpr); ok {
			w.applyNode(sel.X, st)
		}
		for _, a := range n.Call.Args {
			w.applyNode(a, st)
		}
		if w.onCall != nil {
			for _, t := range w.f.prog.Graph.CalleesAt(n.Call) {
				w.onCall(t.Func, map[types.Object]lockMode{}, st, n.Call)
			}
		}
		st.goSeen = true
		return
	case *ast.DeferStmt:
		w.applyDefer(n, st)
		return
	case *ast.CallExpr:
		w.applyCall(n, st)
		return
	case *ast.AssignStmt:
		for _, rhs := range n.Rhs {
			w.applyNode(rhs, st)
		}
		for _, lhs := range n.Lhs {
			w.applyLvalue(lhs, st, true)
		}
		return
	case *ast.IncDecStmt:
		w.applyLvalue(n.X, st, true)
		return
	case *ast.SelectorExpr:
		w.maybeAccess(n, false, false, st)
		w.applyNode(n.X, st)
		return
	case *ast.Ident, *ast.BasicLit:
		return
	}
	// Generic: visit direct children in source order.
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			w.applyNode(c, st)
		}
		return false
	})
}

// applyLvalue handles an assignment target: the outermost field selector in
// the lvalue chain is the write; everything beneath it is reads. direct
// distinguishes a store into the field's own slot (`x.f = v`) from a
// mutation through it (`x.f[k] = v`, `*x.f = v`) — only a direct store can
// use the by-value-copy exemption, because an indexed or dereferenced write
// reaches storage the copy shares with the original.
func (w *walker) applyLvalue(e ast.Expr, st *lockState, direct bool) {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.SelectorExpr:
		w.maybeAccess(e, true, direct, st)
		w.applyNode(e.X, st)
	case *ast.IndexExpr:
		w.applyNode(e.Index, st)
		w.applyLvalue(e.X, st, false)
	case *ast.StarExpr:
		w.applyLvalue(e.X, st, false)
	case *ast.Ident:
		// Rebinding a local is not a mutation of shared state.
	default:
		w.applyNode(e, st)
	}
}

func (w *walker) applyDefer(n *ast.DeferStmt, st *lockState) {
	// Arguments (and the receiver expression) evaluate at the defer
	// statement; the call itself runs at exit.
	if sel, ok := ast.Unparen(n.Call.Fun).(*ast.SelectorExpr); ok {
		w.applyNode(sel.X, st)
	}
	for _, a := range n.Call.Args {
		w.applyNode(a, st)
	}
	if op, obj, ok := mutexOp(w.u.info, n.Call); ok && obj != nil {
		if op == "Unlock" || op == "RUnlock" {
			w.deferRel[obj] = true
		}
		return // a deferred Lock is bizarre; ignore it either way
	}
	for _, t := range w.f.prog.Graph.CalleesAt(n.Call) {
		if w.onCall != nil {
			w.onCall(t.Func, snapshotHeld(st), st, n.Call)
		}
		if cs := w.f.sums[t.Func]; !cs.empty() {
			for obj := range cs.rel {
				w.deferRel[obj] = true
			}
		}
	}
}

func (w *walker) applyCall(call *ast.CallExpr, st *lockState) {
	// Receiver/argument subexpressions evaluate first.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if op, obj, isMutex := mutexOp(w.u.info, call); isMutex {
			w.applyNode(sel.X, st)
			if obj == nil {
				return
			}
			w.f.nameLock(w.u, call, obj)
			switch op {
			case "Lock":
				st.acquire(obj, modeW, "")
			case "RLock":
				st.acquire(obj, modeR, "")
			case "Unlock", "RUnlock":
				if !st.release(obj) {
					w.netRel[obj] = true
				}
			}
			return
		}
		w.applyNode(sel.X, st)
	} else {
		w.applyNode(call.Fun, st)
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && (id.Name == "delete" || id.Name == "clear") && isBuiltin(w.u.info, id) && len(call.Args) > 0 {
		// delete(x.f, k) / clear(x.f) mutate the field's map or slice — a
		// mutation through the field, never a direct store into its slot.
		w.applyLvalue(call.Args[0], st, false)
		for _, a := range call.Args[1:] {
			w.applyNode(a, st)
		}
		return
	}
	for _, a := range call.Args {
		w.applyNode(a, st)
	}
	// Callee effects: the callee runs under the current lockset; apply its
	// net releases, then its net acquires. A CHA fan-out applies the
	// intersection of acquires (must) and the union of releases (may).
	targets := w.f.prog.Graph.CalleesAt(call)
	if w.onCall != nil {
		for _, t := range targets {
			w.onCall(t.Func, snapshotHeld(st), st, call)
		}
	}
	var acq map[types.Object]lockMode
	var how map[types.Object]string
	first := true
	for _, t := range targets {
		cs := w.f.sums[t.Func]
		if cs.empty() {
			acq, first = nil, false
			continue
		}
		for obj := range cs.rel {
			if !st.release(obj) {
				// The callee releases a lock this body never acquired: the
				// release propagates to our own caller.
				w.netRel[obj] = true
			}
		}
		if first {
			acq = make(map[types.Object]lockMode, len(cs.acq))
			how = make(map[types.Object]string, len(cs.acq))
			for obj, m := range cs.acq {
				acq[obj] = m
				how[obj] = chainVia(t.Func.Name(), cs.acqHow[obj])
			}
			first = false
		} else {
			for obj, m := range acq {
				cm, ok := cs.acq[obj]
				if !ok {
					delete(acq, obj)
					delete(how, obj)
				} else if cm < m {
					acq[obj] = cm
				}
			}
		}
	}
	for obj, m := range acq {
		st.acquire(obj, m, how[obj])
	}
}

// maybeAccess records a read or write of a tracked struct field.
func (w *walker) maybeAccess(sel *ast.SelectorExpr, write, direct bool, st *lockState) {
	if w.onAccess == nil {
		return
	}
	s, ok := w.u.info.Selections[sel]
	if !ok {
		return
	}
	v, ok := s.Obj().(*types.Var)
	if !ok || !w.f.trackedField(v) {
		return
	}
	w.onAccess(v, sel, write, direct, st)
}

// trackedField: a field of a struct declared in an analyzed package, whose
// synchronization is not already somebody else's domain.
func (f *fact) trackedField(v *types.Var) bool {
	if v == nil || !v.IsField() || v.Pkg() == nil || !f.analyzed[v.Pkg()] {
		return false
	}
	if f.atomicFields[v] {
		return false // atomicsafe's domain
	}
	t := v.Type()
	if _, ok := t.Underlying().(*types.Chan); ok {
		return false // channels synchronize themselves
	}
	if _, pkg := analysis.NamedType(t); pkg == "sync" || pkg == "sync/atomic" {
		return false // mutexes, waitgroups, atomic boxes
	}
	return true
}

func snapshotHeld(st *lockState) map[types.Object]lockMode {
	out := make(map[types.Object]lockMode, len(st.held))
	for k, v := range st.held {
		out[k] = v
	}
	return out
}

func chainVia(callee, calleeHow string) string {
	if calleeHow == "" {
		return "via " + callee
	}
	return "via " + callee + " -> " + strings.TrimPrefix(calleeHow, "via ")
}

// nameLock records a human-readable identity for a lock object the first
// time it is seen: "Owner.field" for mutex fields, the variable name for
// package-level mutexes.
func (f *fact) nameLock(u *unit, call *ast.CallExpr, obj types.Object) {
	if f.lockName[obj] != "" {
		return
	}
	name := obj.Name()
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if muSel, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok {
			if owner, _ := analysis.NamedType(u.info.Types[muSel.X].Type); owner != "" {
				name = owner + "." + obj.Name()
			}
		}
	}
	f.lockName[obj] = name
}

// mutexOp classifies call: is it (R)Lock/(R)Unlock on a sync.Mutex or
// sync.RWMutex receiver? Returns the op name and the lock's identity — the
// mutex field var, or the package-level/local mutex var. ok is true for any
// mutex method call even when the identity is unresolvable (obj nil), so
// callers do not double-process the call.
func mutexOp(info *types.Info, call *ast.CallExpr) (op string, obj types.Object, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", nil, false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", nil, false
	}
	tv, hasType := info.Types[sel.X]
	if !hasType || !analysis.IsMutexType(tv.Type) {
		return "", nil, false
	}
	op = sel.Sel.Name
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.SelectorExpr:
		if s, isField := info.Selections[x]; isField {
			if v, isVar := s.Obj().(*types.Var); isVar && v.IsField() {
				return op, v, true
			}
		}
		// Package-qualified mutex: pkg.Mu.Lock().
		if v, isVar := info.Uses[x.Sel].(*types.Var); isVar {
			return op, v, true
		}
	case *ast.Ident:
		if v, isVar := info.Uses[x].(*types.Var); isVar {
			return op, v, true
		}
	}
	return op, nil, true
}

// isBuiltin reports whether id resolves to a predeclared builtin function
// (and not a user-defined shadow of the same name).
func isBuiltin(info *types.Info, id *ast.Ident) bool {
	_, ok := info.Uses[id].(*types.Builtin)
	return ok
}

// valueCopyStore reports whether sel stores into a by-value struct held in
// a local variable or parameter: `cfg.BlockSize = n` on a `Config` value
// mutates the local copy, which nothing else can alias. Every link of the
// selector chain must be a non-pointer struct and the root a non-field local
// — one pointer link, or a package-level root, and the store reaches shared
// storage again.
func valueCopyStore(info *types.Info, sel *ast.SelectorExpr) bool {
	e := ast.Unparen(sel.X)
	for {
		tv, ok := info.Types[e]
		if !ok || tv.Type == nil {
			return false
		}
		if _, isStruct := tv.Type.Underlying().(*types.Struct); !isStruct {
			return false
		}
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e = ast.Unparen(x.X)
		case *ast.Ident:
			v, ok := info.Uses[x].(*types.Var)
			if !ok {
				v, ok = info.Defs[x].(*types.Var)
			}
			return ok && !v.IsField() && v.Pkg() != nil && v.Parent() != v.Pkg().Scope()
		default:
			return false
		}
	}
}

// innermostBase unwraps a selector/index/deref chain to its root
// expression (the receiver the access runs through).
func innermostBase(e ast.Expr) ast.Expr {
	for {
		e = ast.Unparen(e)
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return e
		}
	}
}

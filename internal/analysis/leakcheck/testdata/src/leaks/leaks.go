// Package leaks exercises every leakcheck diagnostic kind alongside the
// ownership conventions the transport actually uses, which must stay silent.
package leaks

import (
	"net"
	"time"
)

func GoodDeferClose(addr string) error {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer c.Close()
	_, err = c.Write([]byte("x"))
	return err
}

func GoodErrExitBareReturn(addr string) net.Conn {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil // acquire failed: nothing to close
	}
	return c // ownership transfers to the caller
}

func GoodAcceptHandOff(lis net.Listener, quit chan struct{}) error {
	for {
		select {
		case <-quit:
			return nil
		default:
		}
		c, err := lis.Accept()
		if err != nil {
			return err
		}
		go func() {
			defer c.Close()
			_, _ = c.Write([]byte("hi"))
		}()
	}
}

func closeQuietly(c net.Conn) {
	if c != nil {
		c.Close()
	}
}

func shutdown(c net.Conn) { closeQuietly(c) }

func GoodCloseViaHelperChain(addr string) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return
	}
	shutdown(c)
}

type client struct{ conn net.Conn }

func GoodStoreIntoStruct(addr string) (*client, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &client{conn: c}, nil // the client owns the conn now
}

func GoodTickerDeferStop(quit chan struct{}) {
	t := time.NewTicker(time.Second)
	defer t.Stop()
	for {
		select {
		case <-t.C:
		case <-quit:
			return
		}
	}
}

func BadLeakOnSomePath(addr string, flaky bool) error {
	c, err := net.Dial("tcp", addr) // want `resource from net.Dial is not closed on every path: it leaks at the return on line \d+`
	if err != nil {
		return err
	}
	if flaky {
		return nil // leaks c
	}
	return c.Close()
}

func BadLeakTicker(n int) int {
	t := time.NewTicker(time.Second) // want `resource from time.NewTicker is not closed on every path`
	total := 0
	for i := 0; i < n; i++ {
		<-t.C
		total++
	}
	return total
}

func BadLeakListener(conns chan<- net.Conn) error {
	lis, err := net.Listen("tcp", "127.0.0.1:0") // want `resource from net.Listen is not closed on every path`
	if err != nil {
		return err
	}
	for i := 0; i < 3; i++ {
		c, err := lis.Accept()
		if err != nil {
			return err // leaks lis
		}
		conns <- c // the conn is handed off; the listener is not
	}
	return nil // leaks lis here too
}

func BadUnstoppableGoroutine(work chan int) {
	go func() { // want `spawned goroutine has no termination path`
		for {
			<-work
		}
	}()
}

func GoodStoppableGoroutine(work chan int, quit chan struct{}) {
	go func() {
		for {
			select {
			case <-work:
			case <-quit:
				return
			}
		}
	}()
}

// Package leakcheck proves resource lifecycles on every CFG path: network
// connections, listeners, files, tickers, and timers acquired in a function
// must be closed/stopped, handed off, or returned on every path to return —
// and a spawned goroutine must have a termination path at all.
//
// The bounded transport lives or dies by this: serve.go holds thousands of
// polled conns with a fixed worker pool, so a single accept-path leak
// multiplied by 10k clients exhausts fds, and a worker loop with no quit
// signal survives Stop and keeps the listener pinned. The checker encodes
// the ownership conventions the transport actually uses:
//
//   - a deferred Close/Stop discharges the obligation from the defer onward
//     (returns *before* the defer statement still leak);
//   - passing the resource to a callee that transitively closes it counts,
//     with the callee chain remembered;
//   - returning the resource, storing it into a struct/global/channel, or
//     handing it to a goroutine or closure transfers ownership — the new
//     owner's paths are checked where they live;
//   - a use of the acquire's paired error (return err, log it) marks an
//     error exit: the resource was never acquired on that path.
//
// Diagnostics point at the acquire site and name the first leaking return,
// so "conn from Accept is not released" comes with the exact exit that
// drops it.
package leakcheck

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/alias"
	"repro/internal/analysis/cfg"
)

// Analyzer is the leakcheck checker.
var Analyzer = &analysis.Analyzer{
	Name: "leakcheck",
	Doc:  "conns, files, tickers, and goroutines must be closed/stopped/joined on every CFG path",
	Run:  run,
}

type fact struct {
	// closes: linearized parameters that are transitively Closed/Stopped.
	closes *alias.Summary
	// getters: functions whose result is (transitively) a fresh resource.
	getters map[*types.Func]string
}

// acquireTag classifies a call as a resource acquisition, returning a
// human-readable origin ("net.Dial", "time.NewTicker") or "".
func acquireTag(info *types.Info, call *ast.CallExpr) string {
	fn := analysis.CalleeOf(info, call)
	if fn == nil {
		return ""
	}
	name := fn.Name()
	switch analysis.PkgPathOf(fn) {
	case "net":
		switch name {
		case "Dial", "DialTimeout", "Listen", "ListenTCP", "DialTCP":
			return "net." + name
		case "Accept":
			return "Accept"
		}
	case "crypto/tls":
		if name == "Dial" || name == "Listen" {
			return "tls." + name
		}
	case "os":
		switch name {
		case "Open", "Create", "OpenFile":
			return "os." + name
		}
	case "time":
		if name == "NewTicker" || name == "NewTimer" {
			return "time." + name
		}
	}
	if analysis.PathSuffixMatch(analysis.PkgPathOf(fn), "internal/storagefault") {
		switch name {
		case "Open", "Create", "OpenFile":
			return "storagefault." + name
		}
	}
	return ""
}

// isNilIdent reports whether e is the predeclared nil.
func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// releaseName reports whether a method name discharges a resource. The
// transport uses unexported close/stop internally, so both cases count.
func releaseName(name string) bool {
	switch name {
	case "Close", "Stop", "Shutdown", "close", "stop", "shutdown":
		return true
	}
	return false
}

func buildFact(prog *analysis.Program) *fact {
	f := &fact{}
	f.closes = alias.Params(prog.Graph, func(fi *alias.FuncInfo) map[int]string {
		out := map[int]string{}
		ast.Inspect(fi.Node.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.CalleeOf(fi.Info, call)
			if fn == nil || !releaseName(fn.Name()) {
				return true
			}
			args := alias.LinearArgs(fi.Info, call)
			if len(args) > 0 && args[0] != nil {
				if idx := fi.ParamOf(args[0]); idx >= 0 {
					out[idx] = "closes it"
				}
			}
			return true
		})
		return out
	})
	f.getters = alias.ReturnsTracked(prog.Graph, func(info *types.Info, e ast.Expr) string {
		if call, ok := e.(*ast.CallExpr); ok {
			return acquireTag(info, call)
		}
		return ""
	})
	return f
}

func run(pass *analysis.Pass) error {
	f := pass.Prog.Fact(pass.Analyzer, func(prog *analysis.Program) any {
		return buildFact(prog)
	}).(*fact)
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkGoroutines(pass, fd)
			checkFunc(pass, fd, f)
		}
	}
	return nil
}

// checkGoroutines flags spawned goroutines with no termination path: a
// condition-less for loop containing no return and no break cannot be
// stopped, which pins its captures (listener, conns) forever.
func checkGoroutines(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
		if !ok {
			return true
		}
		ast.Inspect(lit.Body, func(x ast.Node) bool {
			loop, ok := x.(*ast.ForStmt)
			if !ok || loop.Cond != nil {
				return true
			}
			terminates := false
			ast.Inspect(loop.Body, func(y ast.Node) bool {
				switch y := y.(type) {
				case *ast.FuncLit:
					return false // a nested goroutine's return is not ours
				case *ast.ReturnStmt:
					terminates = true
				case *ast.BranchStmt:
					if y.Tok == token.BREAK || y.Tok == token.GOTO {
						terminates = true
					}
				case *ast.CallExpr:
					if id, ok := ast.Unparen(y.Fun).(*ast.Ident); ok && id.Name == "panic" {
						terminates = true
					}
				}
				return !terminates
			})
			if !terminates {
				pass.Reportf(g.Pos(), "spawned goroutine has no termination path: its for loop contains no return or break, so it cannot be stopped (select on a quit channel)")
			}
			return true
		})
		return true
	})
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, f *fact) {
	info := pass.TypesInfo

	seedOf := func(e ast.Expr) *alias.Seed {
		call, ok := e.(*ast.CallExpr)
		if !ok {
			return nil
		}
		if tag := acquireTag(info, call); tag != "" {
			return &alias.Seed{Expr: e, Tag: tag}
		}
		if fn := analysis.CalleeOf(info, call); fn != nil {
			if why, isGetter := f.getters[fn]; isGetter {
				return &alias.Seed{Expr: e, Tag: fn.Name() + " (returns a " + why + " resource)"}
			}
		}
		return nil
	}
	tr := alias.Track(info, fd.Body, nil, seedOf)
	if len(tr.Seeds) == 0 {
		return
	}

	// errPair maps each seed to the object bound to its paired error result
	// (c, err := net.Dial(...)), so error exits don't count as leaks.
	errPair := make(map[*alias.Seed]types.Object)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || len(as.Lhs) != 2 {
			return true
		}
		for _, s := range tr.Seeds {
			if s.Expr != ast.Unparen(as.Rhs[0]) {
				continue
			}
			if id, ok := ast.Unparen(as.Lhs[1]).(*ast.Ident); ok && id.Name != "_" {
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				if obj != nil {
					errPair[s] = obj
				}
			}
		}
		return true
	})

	// errRegions are branch bodies guarded by a nil-check of a seed's paired
	// error: inside `if err != nil { ... }` (or the else of `err == nil`) the
	// acquire failed, so even a bare return or continue owes nothing.
	type region struct {
		s        *alias.Seed
		pos, end token.Pos
	}
	var errRegions []region
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		be, ok := ast.Unparen(ifs.Cond).(*ast.BinaryExpr)
		if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
			return true
		}
		var id *ast.Ident
		if isNilIdent(be.Y) {
			id, _ = ast.Unparen(be.X).(*ast.Ident)
		} else if isNilIdent(be.X) {
			id, _ = ast.Unparen(be.Y).(*ast.Ident)
		}
		if id == nil {
			return true
		}
		obj := info.Uses[id]
		if obj == nil {
			return true
		}
		for s, errObj := range errPair {
			if errObj != obj {
				continue
			}
			if be.Op == token.NEQ {
				errRegions = append(errRegions, region{s, ifs.Body.Pos(), ifs.Body.End()})
			} else if ifs.Else != nil {
				errRegions = append(errRegions, region{s, ifs.Else.Pos(), ifs.Else.End()})
			}
		}
		return true
	})

	type events struct {
		acquired map[*alias.Seed]bool
		released map[*alias.Seed]bool // Close/Stop, closes-callee, or error exit
		deferRel map[*alias.Seed]bool
		transfer map[*alias.Seed]bool // return / store / goroutine / closure
	}

	releasesIn := func(n ast.Node, emit func(s *alias.Seed)) {
		ast.Inspect(n, func(x ast.Node) bool {
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.CalleeOf(info, call)
			args := alias.LinearArgs(info, call)
			if fn != nil && releaseName(fn.Name()) && len(args) > 0 && args[0] != nil {
				for _, s := range tr.ExprSeeds(args[0]) {
					emit(s)
				}
				return true
			}
			for _, callee := range pass.Prog.Graph.CalleesAt(call) {
				for j, arg := range args {
					if arg == nil {
						continue
					}
					if f.closes.Has(callee.Func, j) != nil {
						for _, s := range tr.ExprSeeds(arg) {
							emit(s)
						}
					}
				}
			}
			return true
		})
	}

	// errExits finds uses of a seed's paired error outside a nil-comparison
	// and outside an assignment LHS: returning or reporting the error means
	// the acquire failed on this path and there is nothing to close.
	errExits := func(n ast.Node, emit func(s *alias.Seed)) {
		if len(errPair) == 0 {
			return
		}
		skip := make(map[*ast.Ident]bool)
		ast.Inspect(n, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.BinaryExpr:
				if x.Op == token.EQL || x.Op == token.NEQ {
					if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
						skip[id] = true
					}
					if id, ok := ast.Unparen(x.Y).(*ast.Ident); ok {
						skip[id] = true
					}
				}
			case *ast.AssignStmt:
				for _, lhs := range x.Lhs {
					if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
						skip[id] = true
					}
				}
			}
			return true
		})
		ast.Inspect(n, func(x ast.Node) bool {
			id, ok := x.(*ast.Ident)
			if !ok || skip[id] {
				return true
			}
			obj := info.Uses[id]
			if obj == nil {
				return true
			}
			for s, errObj := range errPair {
				if errObj == obj {
					emit(s)
				}
			}
			return true
		})
	}

	transfersIn := func(n ast.Node, emit func(s *alias.Seed)) {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				for _, s := range tr.ExprSeeds(r) {
					emit(s)
				}
			}
		case *ast.GoStmt:
			// Anything a goroutine sees — argument or capture — is its to
			// release; serve.go's per-conn goroutines defer c.Close().
			ast.Inspect(n, func(x ast.Node) bool {
				if id, ok := x.(*ast.Ident); ok {
					if obj := info.Uses[id]; obj != nil {
						for _, s := range tr.SeedsOf(obj) {
							emit(s)
						}
					}
				}
				return true
			})
			return
		}
		ast.Inspect(n, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.AssignStmt:
				for i, lhs := range x.Lhs {
					long := false
					switch l := ast.Unparen(lhs).(type) {
					case *ast.SelectorExpr:
						long = true
					case *ast.IndexExpr:
						long = true
					case *ast.Ident:
						if v, ok := info.Uses[l].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
							long = true
						}
					case *ast.StarExpr:
						_ = l
						long = true
					}
					if !long {
						continue
					}
					var rhs ast.Expr
					if len(x.Rhs) == 1 {
						rhs = x.Rhs[0]
					} else if i < len(x.Rhs) {
						rhs = x.Rhs[i]
					}
					if rhs == nil {
						continue
					}
					for _, s := range tr.ExprSeeds(rhs) {
						emit(s)
					}
				}
			case *ast.SendStmt:
				for _, s := range tr.ExprSeeds(x.Value) {
					emit(s)
				}
			case *ast.CompositeLit:
				for _, elt := range x.Elts {
					v := elt
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						v = kv.Value
					}
					for _, s := range tr.ExprSeeds(v) {
						emit(s)
					}
				}
			case *ast.FuncLit:
				// A closure capturing the resource may close it later
				// (handler, sync.Once body); treat capture as hand-off.
				ast.Inspect(x.Body, func(y ast.Node) bool {
					if id, ok := y.(*ast.Ident); ok {
						if obj := info.Uses[id]; obj != nil {
							for _, s := range tr.SeedsOf(obj) {
								emit(s)
							}
						}
					}
					return true
				})
				return false
			}
			return true
		})
	}

	evOf := func(n ast.Node) *events {
		ev := &events{
			acquired: map[*alias.Seed]bool{},
			released: map[*alias.Seed]bool{},
			deferRel: map[*alias.Seed]bool{},
			transfer: map[*alias.Seed]bool{},
		}
		ast.Inspect(n, func(x ast.Node) bool {
			if e, ok := x.(ast.Expr); ok {
				for _, s := range tr.Seeds {
					if s.Expr == e {
						ev.acquired[s] = true
					}
				}
			}
			return true
		})
		if def, isDefer := n.(*ast.DeferStmt); isDefer {
			releasesIn(def, func(s *alias.Seed) { ev.deferRel[s] = true })
			return ev
		}
		releasesIn(n, func(s *alias.Seed) { ev.released[s] = true })
		errExits(n, func(s *alias.Seed) { ev.released[s] = true })
		transfersIn(n, func(s *alias.Seed) { ev.transfer[s] = true })
		for _, r := range errRegions {
			if n.Pos() >= r.pos && n.End() <= r.end {
				ev.released[r.s] = true
			}
		}
		return ev
	}

	g := pass.Prog.CFG(fd)
	post := g.Postorder()
	reach := g.Reachable()
	evmap := make(map[*cfg.Block][]*events)
	for _, b := range post {
		evs := make([]*events, len(b.Nodes))
		for i, n := range b.Nodes {
			evs[i] = evOf(n)
		}
		evmap[b] = evs
	}

	// Must-analysis: TOP not acquired / ACQ owed / REL discharged.
	const (
		top = 0
		acq = 1
		rel = 2
	)
	meet := func(a, b int) int {
		if a == top {
			return b
		}
		if b == top {
			return a
		}
		if a == b {
			return a
		}
		return acq
	}
	type state map[*alias.Seed]int
	in := make(map[*cfg.Block]state)
	out := make(map[*cfg.Block]state)
	apply := func(st state, ev *events) {
		for s := range ev.acquired {
			st[s] = acq
		}
		for s := range ev.deferRel {
			st[s] = rel
		}
		for s := range ev.released {
			st[s] = rel
		}
		for s := range ev.transfer {
			st[s] = rel
		}
	}
	sameState := func(a, b state) bool {
		if len(a) != len(b) {
			return false
		}
		for k, v := range a {
			if b[k] != v {
				return false
			}
		}
		return true
	}
	for changed := true; changed; {
		changed = false
		for i := len(post) - 1; i >= 0; i-- {
			b := post[i]
			st := state{}
			first := true
			for _, p := range b.Preds {
				if !reach[p] {
					continue
				}
				if first {
					for k, v := range out[p] {
						st[k] = v
					}
					first = false
					continue
				}
				for _, s := range tr.Seeds {
					st[s] = meet(st[s], out[p][s])
				}
			}
			o := state{}
			for k, v := range st {
				o[k] = v
			}
			for _, ev := range evmap[b] {
				apply(o, ev)
			}
			if !sameState(in[b], st) || !sameState(out[b], o) {
				in[b], out[b] = st, o
				changed = true
			}
		}
	}

	// Witness pass: the first return a still-owed resource escapes through.
	leakAt := make(map[*alias.Seed]token.Position)
	for _, b := range post {
		if !reach[b] {
			continue
		}
		st := state{}
		for k, v := range in[b] {
			st[k] = v
		}
		for i, n := range b.Nodes {
			apply(st, evmap[b][i])
			if ret, ok := n.(*ast.ReturnStmt); ok {
				for _, s := range tr.Seeds {
					if st[s] != acq {
						continue
					}
					p := pass.Fset.Position(ret.Pos())
					if cur, ok := leakAt[s]; !ok || p.Line < cur.Line {
						leakAt[s] = p
					}
				}
			}
		}
	}
	for _, s := range tr.Seeds {
		if out[g.Exit][s] != acq {
			continue
		}
		if p, ok := leakAt[s]; ok {
			pass.Reportf(s.Expr.Pos(), "resource from %s is not closed on every path: it leaks at the return on line %d (close it, defer the close, or hand it off)", s.Tag, p.Line)
		} else {
			pass.Reportf(s.Expr.Pos(), "resource from %s is not closed on every path to function end (close it, defer the close, or hand it off)", s.Tag)
		}
	}
}

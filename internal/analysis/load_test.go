package analysis

import (
	"go/ast"
	"testing"
)

// TestLoadTypechecksModulePackage loads a real module package through the
// export-data importer and spot-checks that type information resolved.
func TestLoadTypechecksModulePackage(t *testing.T) {
	pkgs, err := Load("", "repro/internal/server")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	if pkg.PkgPath != "repro/internal/server" {
		t.Fatalf("PkgPath = %q", pkg.PkgPath)
	}
	if len(pkg.Files) == 0 {
		t.Fatal("no files parsed")
	}
	// Every method call in the package should resolve to a callee or be a
	// legitimate non-call (conversion, func value); count resolved callees
	// as a proxy for working import resolution.
	resolved := 0
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if CalleeOf(pkg.TypesInfo, call) != nil {
					resolved++
				}
			}
			return true
		})
	}
	if resolved < 50 {
		t.Fatalf("only %d resolved callees; import resolution looks broken", resolved)
	}
}

// Package underlock is the blockunderlock fixture: blocking operations
// under mutexes, plus the sanctioned non-blocking and suppressed shapes.
package underlock

import (
	"net"
	"os"
	"sync"

	"repro/internal/kvstore"
	"repro/internal/wire"
)

type S struct {
	mu sync.Mutex

	// loopMu stands in for the engine's serial-loop mutex: blocking under
	// it is the design, so its declaration carries the allow directive.
	//deltavet:allow blockunderlock serial loop, not a data lock
	loopMu sync.Mutex

	ch   chan int
	kv   *kvstore.Store
	conn net.Conn
	f    *os.File
	ep   wire.Endpoint
}

func (s *S) BadSend() {
	s.mu.Lock()
	s.ch <- 1 // want `channel send while mutex s.mu is held`
	s.mu.Unlock()
}

func (s *S) OKSendAfterUnlock() {
	s.mu.Lock()
	s.mu.Unlock()
	s.ch <- 1
}

func (s *S) BadRecvUnderDeferredUnlock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	<-s.ch // want `channel receive while mutex s.mu is held`
}

func (s *S) OKSelectWithDefault() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case s.ch <- 1:
	default:
	}
}

func (s *S) BadKVPut() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.kv.Put([]byte("k"), nil) // want `kvstore\.Store\.Put`
}

func (s *S) BadConnIO() {
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = s.conn.Close() // want `net\.Conn\.Close \(network I/O\)`
}

func (s *S) BadFsync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Sync() // want `\(\*os\.File\)\.Sync \(fsync\)`
}

func (s *S) BadWireRPC() {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, _ = s.ep.Push(nil) // want `wire RPC Endpoint\.Push`
}

// flushLocked follows the project convention: the "Locked" suffix means the
// caller holds a lock, so blocking here blocks the caller's lock.
func (s *S) flushLocked() error {
	return s.f.Sync() // want `Locked.* suffix contract`
}

func (s *S) OKSuppressedDecl() {
	s.loopMu.Lock()
	defer s.loopMu.Unlock()
	<-s.ch
}

func (s *S) OKGoroutineBody() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() { s.ch <- 1 }()
}

func (s *S) OKNoLock() error {
	<-s.ch
	return s.kv.Sync()
}

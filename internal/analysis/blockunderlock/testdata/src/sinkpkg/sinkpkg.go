// Package sinkpkg is the cross-package sink half of the blockunderlock v2
// fixtures: its methods perform blocking operations, and the caller (and
// its // want expectations) lives in package depths.
package sinkpkg

import "os"

type Syncer struct {
	f *os.File
}

// Flush fsyncs; callers holding a lock are flagged at their call site.
func (s *Syncer) Flush() {
	_ = s.f.Sync()
}

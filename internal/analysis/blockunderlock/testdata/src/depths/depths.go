// Package depths exercises blockunderlock v2: blocking operations reached
// only transitively through the call graph, including across packages and
// through interface dispatch.
package depths

import (
	"sync"

	"sinkpkg"
)

type engine struct {
	mu sync.Mutex
	ch chan int
	s  *sinkpkg.Syncer
}

// helper blocks directly (channel send) but takes no lock itself.
func (e *engine) helper() {
	e.ch <- 1
}

// viaHelper calls a same-package helper that blocks: only the summary sees
// it.
func (e *engine) viaHelper() {
	e.mu.Lock()
	e.helper() // want `call to engine.helper while mutex e.mu is held: transitive callee chain helper does a channel send`
	e.mu.Unlock()
}

// viaTwoHops reaches the channel send through two frames.
func (e *engine) middle() { e.helper() }

func (e *engine) viaChain() {
	e.mu.Lock()
	e.middle() // want `call to engine.middle while mutex e.mu is held: transitive callee chain middle -> helper does a channel send`
	e.mu.Unlock()
}

// viaOtherPackage calls into a sibling fixture package whose method fsyncs.
func (e *engine) viaOtherPackage() {
	e.mu.Lock()
	e.s.Flush() // want `call to Syncer.Flush while mutex e.mu is held: transitive callee chain Flush -> Sync does \(\*os\.File\)\.Sync \(fsync\)`
	e.mu.Unlock()
}

// Flusher dispatches through an interface; CHA resolves to the fixture
// implementations.
type Flusher interface{ Flush() }

func (e *engine) viaInterface(f Flusher) {
	e.mu.Lock()
	f.Flush() // want `call to Syncer.Flush while mutex e.mu is held: transitive callee chain Flush -> Sync does \(\*os\.File\)\.Sync \(fsync\)`
	e.mu.Unlock()
}

// okSpawned: the blocking op runs in a goroutine the helper spawns, not in
// this frame — the summary skips go-stmt edges.
func (e *engine) spawner() {
	go e.helper()
}

func (e *engine) okSpawned() {
	e.mu.Lock()
	e.spawner()
	e.mu.Unlock()
}

// okInLit: the helper only builds a closure; nothing blocks in this frame.
func (e *engine) litBuilder() func() {
	return func() { e.helper() }
}

func (e *engine) okInLit() {
	e.mu.Lock()
	_ = e.litBuilder()
	e.mu.Unlock()
}

// okNonBlockingHelper: helper's select has a default case.
func (e *engine) tryNotify() {
	select {
	case e.ch <- 1:
	default:
	}
}

func (e *engine) okNonBlocking() {
	e.mu.Lock()
	e.tryNotify()
	e.mu.Unlock()
}

// okAfterUnlock: transitive blocking outside the critical section is fine.
func (e *engine) okAfterUnlock() {
	e.mu.Lock()
	e.mu.Unlock()
	e.helper()
}

// drainLocked follows the Locked-suffix contract: it is analyzed with the
// caller's lock assumed held, so the finding is reported here, once.
func (e *engine) drainLocked() {
	e.ch <- 1 // want `channel send while the caller's lock \("Locked" suffix contract\) is held`
}

// okLockedCallee: no second (transitive) finding at the call site.
func (e *engine) okLockedCallee() {
	e.mu.Lock()
	e.drainLocked()
	e.mu.Unlock()
}

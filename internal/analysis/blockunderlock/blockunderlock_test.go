package blockunderlock_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/blockunderlock"
)

func TestBlockUnderLock(t *testing.T) {
	analysistest.Run(t, blockunderlock.Analyzer, "underlock")
}

// TestInterprocedural covers the v2 summary: blocking ops reached through
// same-package helpers, a sibling fixture package (sinkpkg), and interface
// dispatch.
func TestInterprocedural(t *testing.T) {
	analysistest.Run(t, blockunderlock.Analyzer, "depths")
}

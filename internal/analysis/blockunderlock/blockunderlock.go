// Package blockunderlock flags blocking operations performed while a
// sync.Mutex or sync.RWMutex is held: channel sends/receives, net.Conn I/O
// and dials, file fsyncs, and calls into the wire / kvstore layers (RPCs and
// WAL writes). Holding a lock across any of these couples unrelated clients
// latency-wise and, in the worst case (a channel with no reader, a dead
// peer), wedges every other holder of the lock — exactly the group-commit
// WAL and per-client pushMu bugs PR 3's review had to fix by hand.
//
// Scope and precision:
//
//   - Lock tracking is intraprocedural: bodies are walked in source order,
//     pairing X.Lock() with X.Unlock() syntactically; a deferred unlock
//     keeps the lock held through the end of the function.
//   - Blocking classification is interprocedural (v2): a call made while a
//     lock is held is flagged not only when the callee itself is a known
//     blocking operation, but when any *transitive* callee — resolved
//     through the program call graph, interface dispatch included — does
//     channel ops, net I/O, or fsync. The witness chain is part of the
//     message. Edges inside `go` statements and function literals are
//     excluded from the summary (the goroutine or the literal's eventual
//     caller runs them, not this frame).
//   - Functions whose name ends in "Locked" are analyzed as if a lock were
//     held on entry (that suffix is the project's calling convention for
//     "caller holds the lock"). Calls *to* Locked-suffix functions are not
//     given transitive findings: the callee is analyzed under the held-lock
//     assumption already, so the finding is reported once, inside it.
//   - Function literals are analyzed with a fresh lock set: goroutine and
//     callback bodies do not inherit the creating function's locks.
//   - A send or receive that is a select case in a select with a default
//     clause is non-blocking and not flagged, both here and in the
//     transitive summary.
//
// Intentional violations are suppressed either per call site
// (//deltavet:allow blockunderlock <reason>) or for every use of one mutex
// by annotating the mutex *declaration* — e.g. the engine's e.mu, which is
// the serial engine loop rather than a data lock, carries
// //deltavet:allow blockunderlock on its field declaration.
package blockunderlock

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/callgraph"
)

// declMark on a mutex field or variable declaration suppresses every
// finding where that mutex is the held lock.
const declMark = "deltavet:allow blockunderlock"

// Analyzer is the blockunderlock checker.
var Analyzer = &analysis.Analyzer{
	Name: "blockunderlock",
	Doc:  "no channel ops, conn I/O, fsync, or wire/kvstore calls while a mutex is held",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	suppressed := suppressedMutexDecls(pass)
	summaries := blockingSummaries(pass)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd, suppressed, summaries)
		}
	}
	return nil
}

// blockingSummaries is the program-wide "transitively blocks" fact: for
// every function reachable in the call graph, whether it — or any callee
// chain outside go statements and function literals — performs a blocking
// operation, with the witness chain. Memoized on the Program, so the
// fixpoint runs once per driver invocation.
func blockingSummaries(pass *analysis.Pass) map[*types.Func]*callgraph.Witness {
	fact := pass.Prog.Fact(pass.Analyzer, func(prog *analysis.Program) any {
		return prog.Graph.Transitive(
			func(n *callgraph.Node) string {
				if why := blockingFuncIdentity(n.Func); why != "" {
					return why
				}
				if n.Decl != nil && n.Src != nil {
					return directChanOp(n.Src.Info, n.Decl)
				}
				return ""
			},
			func(e *callgraph.Edge) bool { return e.InGo || e.InLit },
		)
	})
	return fact.(map[*types.Func]*callgraph.Witness)
}

// directChanOp reports whether the function body itself performs a blocking
// channel operation (send, receive, range over channel, or a select with no
// default), skipping go statements and function literals.
func directChanOp(info *types.Info, fd *ast.FuncDecl) string {
	why := ""
	var walk func(n ast.Node, nonBlockingComm bool)
	walk = func(n ast.Node, nonBlockingComm bool) {
		if why != "" || n == nil {
			return
		}
		switch n := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return
		case *ast.SelectStmt:
			hasDefault := false
			for _, c := range n.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				why = "a blocking select"
				return
			}
			for _, c := range n.Body.List {
				for _, s := range c.(*ast.CommClause).Body {
					walk(s, false)
				}
			}
			return
		case *ast.SendStmt:
			why = "a channel send"
			return
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				why = "a channel receive"
				return
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					why = "a range over a channel"
					return
				}
			}
		}
		children(n, func(c ast.Node) { walk(c, false) })
	}
	walk(fd.Body, false)
	return why
}

// children invokes f on each direct child of n.
func children(n ast.Node, f func(ast.Node)) {
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			f(c)
		}
		return false
	})
}

// suppressedMutexDecls collects mutex fields/vars whose declaration carries
// the allow directive.
func suppressedMutexDecls(pass *analysis.Pass) map[types.Object]bool {
	out := make(map[types.Object]bool)
	mark := func(names []*ast.Ident, groups ...*ast.CommentGroup) {
		has := false
		for _, g := range groups {
			if g == nil {
				continue
			}
			for _, c := range g.List {
				if strings.Contains(c.Text, declMark) {
					has = true
				}
			}
		}
		if !has {
			return
		}
		for _, name := range names {
			if obj := pass.TypesInfo.Defs[name]; obj != nil {
				out[obj] = true
			}
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.StructType:
				for _, field := range n.Fields.List {
					mark(field.Names, field.Doc, field.Comment)
				}
			case *ast.ValueSpec:
				mark(n.Names, n.Doc, n.Comment)
			}
			return true
		})
	}
	return out
}

// heldLock is one currently-held mutex.
type heldLock struct {
	key  string // normalized lock expression, e.g. "s.mu"
	name string // display name for diagnostics
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, suppressed map[types.Object]bool, summaries map[*types.Func]*callgraph.Witness) {
	var held []heldLock
	if strings.HasSuffix(fd.Name.Name, "Locked") {
		held = append(held, heldLock{key: "<caller>", name: "the caller's lock (\"Locked\" suffix contract)"})
	}

	heldName := func() string {
		return held[len(held)-1].name
	}
	acquire := func(l heldLock) { held = append(held, l) }
	release := func(key string) {
		for i := len(held) - 1; i >= 0; i-- {
			if held[i].key == key {
				held = append(held[:i], held[i+1:]...)
				return
			}
		}
	}

	var walk func(n ast.Node, inDefer, nonBlockingComm bool)
	walk = func(n ast.Node, inDefer, nonBlockingComm bool) {
		switch n := n.(type) {
		case nil:
			return
		case *ast.DeferStmt:
			walk(n.Call, true, false)
			return
		case *ast.GoStmt:
			// The spawned goroutine does not run under our locks; its
			// argument expressions do.
			for _, arg := range n.Call.Args {
				walk(arg, inDefer, false)
			}
			walk(n.Call.Fun, inDefer, false)
			return
		case *ast.FuncLit:
			saved := held
			held = nil
			walk(n.Body, false, false)
			held = saved
			return
		case *ast.SelectStmt:
			hasDefault := false
			for _, c := range n.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			for _, c := range n.Body.List {
				cc := c.(*ast.CommClause)
				if cc.Comm != nil {
					walk(cc.Comm, inDefer, hasDefault)
				}
				for _, s := range cc.Body {
					walk(s, inDefer, false)
				}
			}
			return
		case *ast.SendStmt:
			walk(n.Chan, inDefer, false)
			walk(n.Value, inDefer, false)
			if len(held) > 0 && !nonBlockingComm {
				pass.Reportf(n.Arrow, "channel send while %s is held: a full channel blocks every other holder", heldName())
			}
			return
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				walk(n.X, inDefer, false)
				if len(held) > 0 && !nonBlockingComm {
					pass.Reportf(n.OpPos, "channel receive while %s is held: an empty channel blocks every other holder", heldName())
				}
				return
			}
		case *ast.RangeStmt:
			if tv, ok := pass.TypesInfo.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan && len(held) > 0 {
					pass.Reportf(n.For, "range over channel while %s is held", heldName())
				}
			}
		case *ast.CallExpr:
			walk(n.Fun, inDefer, false)
			for _, arg := range n.Args {
				walk(arg, inDefer, false)
			}
			if op, lockExpr, ok := mutexOp(pass.TypesInfo, n); ok {
				if lockRootSuppressed(pass.TypesInfo, lockExpr, suppressed) {
					return
				}
				key := analysis.ExprString(lockExpr)
				switch op {
				case "Lock", "RLock":
					if !inDefer {
						acquire(heldLock{key: key, name: "mutex " + key})
					}
				case "Unlock", "RUnlock":
					if !inDefer {
						release(key)
					}
				}
				return
			}
			if len(held) > 0 {
				if why := blockingCall(pass.TypesInfo, n); why != "" {
					pass.Reportf(n.Pos(), "%s while %s is held", why, heldName())
					return
				}
				reportTransitive(pass, n, heldName(), summaries)
			}
			return
		}
		var children []ast.Node
		ast.Inspect(n, func(c ast.Node) bool {
			if c == n {
				return true
			}
			if c != nil {
				children = append(children, c)
			}
			return false
		})
		for _, c := range children {
			walk(c, inDefer, false)
		}
	}
	walk(fd.Body, false, false)
}

// mutexOp reports whether call is a (R)Lock/(R)Unlock on a sync mutex,
// returning the op and the mutex expression.
func mutexOp(info *types.Info, call *ast.CallExpr) (op string, lockExpr ast.Expr, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", nil, false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", nil, false
	}
	tv, has := info.Types[sel.X]
	if !has || !analysis.IsMutexType(tv.Type) {
		return "", nil, false
	}
	return sel.Sel.Name, sel.X, true
}

// lockRootSuppressed reports whether the mutex expression resolves to a
// declaration carrying the allow directive.
func lockRootSuppressed(info *types.Info, lockExpr ast.Expr, suppressed map[types.Object]bool) bool {
	if len(suppressed) == 0 {
		return false
	}
	switch e := ast.Unparen(lockExpr).(type) {
	case *ast.Ident:
		return suppressed[info.Uses[e]]
	case *ast.SelectorExpr:
		if s, ok := info.Selections[e]; ok {
			return suppressed[s.Obj()]
		}
		return suppressed[info.Uses[e.Sel]]
	}
	return false
}

// reportTransitive flags a call (not itself a known blocking op) whose
// transitive callees block, using the call-graph summary. Interface calls
// fan out to every CHA target; the first blocking one is the witness.
// Locked-suffix callees are exempt — they are analyzed under the held-lock
// assumption already, so the finding is reported once, inside them.
func reportTransitive(pass *analysis.Pass, call *ast.CallExpr, heldName string, summaries map[*types.Func]*callgraph.Witness) {
	for _, callee := range pass.Prog.Graph.CalleesAt(call) {
		fn := callee.Func
		if strings.HasSuffix(fn.Name(), "Locked") {
			continue
		}
		w := summaries[fn]
		if w == nil {
			continue
		}
		chain := fn.Name()
		if c := w.Chain(); c != "" {
			chain += " -> " + c
		}
		pass.Reportf(call.Pos(), "call to %s while %s is held: transitive callee chain %s does %s",
			analysis.FuncDisplayName(fn), heldName, chain, w.Why)
		return
	}
}

// blockingCall classifies a call as one of the forbidden blocking
// operations, returning a description ("" = not blocking).
func blockingCall(info *types.Info, call *ast.CallExpr) string {
	return blockingFuncIdentity(analysis.CalleeOf(info, call))
}

// blockingFuncIdentity classifies a function as a known blocking operation
// by identity ("" = not intrinsically blocking).
func blockingFuncIdentity(fn *types.Func) string {
	if fn == nil {
		return ""
	}
	pkg := analysis.PkgPathOf(fn)
	recv := analysis.RecvTypeName(fn)
	name := fn.Name()
	switch {
	case pkg == "net" && recv != "":
		switch recv {
		case "Conn", "TCPConn", "UDPConn", "UnixConn", "Listener", "TCPListener", "UnixListener":
			return "net." + recv + "." + name + " (network I/O)"
		}
	case pkg == "net" && (strings.HasPrefix(name, "Dial") || strings.HasPrefix(name, "Listen")):
		return "net." + name + " (network I/O)"
	case pkg == "os" && recv == "File" && name == "Sync":
		return "(*os.File).Sync (fsync)"
	case analysis.PathSuffixMatch(pkg, "internal/kvstore") && recv == "Store":
		switch name {
		case "Put", "Delete", "Sync", "Compact", "Close":
			return "kvstore.Store." + name + " (WAL write / fsync)"
		}
	case analysis.PathSuffixMatch(pkg, "internal/wire"):
		switch {
		case recv == "NetClient" || recv == "ResilientClient" || recv == "Endpoint":
			return "wire RPC " + recv + "." + name
		case recv == "" && (name == "Dial" || name == "DialWith"):
			return "wire." + name + " (network dial)"
		}
	}
	return ""
}

// Package replay is the detreplay fixture: wall-clock reads, global
// math/rand draws, and map-iteration-ordered output, next to the
// sanctioned seeded and collect-then-sort shapes.
package replay

import (
	"math/rand"
	"sort"
	"strings"
	"time"
)

func BadNow() time.Time {
	return time.Now() // want `time\.Now reads the wall clock`
}

func BadSince(start time.Time) time.Duration {
	return time.Since(start) // want `time\.Since reads the wall clock`
}

func OKExplicitTime(now time.Time) int64 {
	return now.UnixNano()
}

func BadGlobalRand() int {
	return rand.Intn(10) // want `global math/rand\.Intn`
}

func BadGlobalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `global math/rand\.Shuffle`
}

func OKSeededRand(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

func BadMapAppend(m map[string]int) []string {
	var out []string
	for k := range m { // want `map iteration order feeds output`
		out = append(out, k)
	}
	return out
}

func OKCollectThenSort(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func BadMapWrite(m map[string]int) string {
	var b strings.Builder
	for k := range m { // want `map iteration order feeds output`
		b.WriteString(k)
	}
	return b.String()
}

func OKPerKeyState(m map[string][]int) map[string][]int {
	acc := make(map[string][]int)
	for k, vs := range m {
		acc[k] = append(acc[k], vs...)
	}
	return acc
}

func OKLocalAppend(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		local := []int{}
		local = append(local, vs...)
		n += len(local)
	}
	return n
}

func OKFreshCopyPerIteration(m map[string][]byte) map[string][]byte {
	acc := make(map[string][]byte)
	for k, v := range m {
		acc[k] = append([]byte(nil), v...)
	}
	return acc
}

func OKCount(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

func OKSliceRange(xs []string) []string {
	var out []string
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

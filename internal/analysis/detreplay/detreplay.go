// Package detreplay enforces the determinism contract of the replayable
// paths (internal/rsync, internal/core, internal/chaos, and the server
// apply paths): identical inputs and seeds must produce byte-identical
// ops/wire/snapshot output, which is what the chaos oracle and the
// parallel-pipeline equivalence tests replay against.
//
// Three sources of nondeterminism are flagged:
//
//  1. wall-clock reads — time.Now / time.Since / time.Until; replayable
//     code takes time from the seeded internal/clock (or an explicit
//     caller-provided timestamp);
//  2. the process-global math/rand source — rand.Intn and friends (and
//     their math/rand/v2 forms); replayable code threads an explicit
//     seeded *rand.Rand;
//  3. map iteration feeding ordered output — a `for range` over a map
//     whose body appends to an outer slice or calls a write/encode-style
//     function. Iteration order is randomized per run, so anything it
//     emits must go through a sort: a sort.* / slices.Sort* call after the
//     loop in the same function exempts it (the collect-then-sort idiom),
//     as does appending into a map entry keyed by the iteration variable
//     (per-key state is order-independent).
//
// The analyzer is syntactic about which package it runs on; the deltavet
// driver applies it only to the replay-scoped packages.
package detreplay

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the detreplay checker.
var Analyzer = &analysis.Analyzer{
	Name: "detreplay",
	Doc:  "replayable paths must not read wall-clock time, global math/rand, or emit map-iteration order",
	Run:  run,
}

// seededConstructors are the math/rand functions that are fine anywhere:
// they build explicitly-seeded sources rather than touching the global one.
var seededConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkCalls(pass, fd)
			checkMapRanges(pass, fd)
		}
	}
	return nil
}

func checkCalls(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.CalleeOf(pass.TypesInfo, call)
		if fn == nil {
			return true
		}
		pkg := analysis.PkgPathOf(fn)
		switch pkg {
		case "time":
			switch fn.Name() {
			case "Now", "Since", "Until":
				pass.Reportf(call.Pos(), "time.%s reads the wall clock: replayable paths must take time from the seeded internal/clock or an explicit timestamp", fn.Name())
			}
		case "math/rand", "math/rand/v2":
			if analysis.RecvTypeName(fn) == "" && !seededConstructors[fn.Name()] {
				pass.Reportf(call.Pos(), "global %s.%s draws from the process-global source: replayable paths must thread an explicit seeded *rand.Rand", pkg, fn.Name())
			}
		}
		return true
	})
}

func checkMapRanges(pass *analysis.Pass, fd *ast.FuncDecl) {
	// Sort calls that can launder a collect-then-sort loop, by position.
	var sortPositions []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := analysis.CalleeOf(pass.TypesInfo, call); fn != nil {
			pkg := analysis.PkgPathOf(fn)
			if pkg == "sort" || (pkg == "slices" && strings.HasPrefix(fn.Name(), "Sort")) {
				sortPositions = append(sortPositions, call)
			}
		}
		return true
	})
	sortedAfter := func(rng *ast.RangeStmt) bool {
		for _, s := range sortPositions {
			if s.Pos() > rng.Pos() {
				return true
			}
		}
		return false
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.TypesInfo.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		if emit := emittingOp(pass, rng); emit != "" && !sortedAfter(rng) {
			pass.Reportf(rng.For, "map iteration order feeds output here (%s): collect the keys and sort before emitting, or sort the result", emit)
		}
		return true
	})
}

// emittingOp scans a map-range body for order-dependent output and
// describes the first one found ("" = none).
func emittingOp(pass *analysis.Pass, rng *ast.RangeStmt) string {
	keyObjs := rangeVarObjs(pass.TypesInfo, rng)
	emit := ""
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if emit != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// append(dst, ...) where dst outlives the loop.
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" && len(call.Args) > 0 {
			if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
				dst := ast.Unparen(call.Args[0])
				if outlivesLoop(pass.TypesInfo, dst, rng) && !indexedByRangeVar(pass.TypesInfo, dst, keyObjs) {
					emit = "append to " + analysis.ExprString(dst)
					return false
				}
			}
			return true
		}
		if fn := analysis.CalleeOf(pass.TypesInfo, call); fn != nil && isWriteName(fn.Name()) {
			emit = "call to " + fn.Name()
			return false
		}
		return true
	})
	return emit
}

// rangeVarObjs returns the objects of the range's key/value variables.
func rangeVarObjs(info *types.Info, rng *ast.RangeStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := info.Defs[id]; obj != nil {
				out[obj] = true
			} else if obj := info.Uses[id]; obj != nil {
				out[obj] = true
			}
		}
	}
	return out
}

// outlivesLoop reports whether dst refers to storage declared outside the
// range statement (an outer slice the loop is ordering into).
func outlivesLoop(info *types.Info, dst ast.Expr, rng *ast.RangeStmt) bool {
	switch dst := dst.(type) {
	case *ast.Ident:
		obj := info.Uses[dst]
		if obj == nil {
			obj = info.Defs[dst]
		}
		if obj == nil {
			return false
		}
		return obj.Pos() < rng.Pos() || obj.Pos() > rng.End()
	case *ast.SelectorExpr, *ast.IndexExpr:
		// Field or element storage reachable beyond the loop.
		return true
	default:
		// append([]byte(nil), v...) and friends: a conversion or call
		// produces a fresh value each iteration — a per-item copy, not
		// ordered output.
		return false
	}
}

// indexedByRangeVar reports whether dst is an index expression keyed by one
// of the loop's own variables (m[k] = append(m[k], ...) is per-key state,
// not ordered output).
func indexedByRangeVar(info *types.Info, dst ast.Expr, keyObjs map[types.Object]bool) bool {
	idx, ok := dst.(*ast.IndexExpr)
	if !ok {
		return false
	}
	found := false
	ast.Inspect(idx.Index, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && keyObjs[info.Uses[id]] {
			found = true
		}
		return !found
	})
	return found
}

func isWriteName(name string) bool {
	l := strings.ToLower(name)
	for _, p := range []string{"write", "encode", "marshal", "fprint", "print"} {
		if strings.HasPrefix(l, p) {
			return true
		}
	}
	return false
}

package persist

import (
	"io"
	"os"
	"path/filepath"
)

type store struct {
	dir   string
	wal   *os.File
	table map[string][]byte
}

func writeRecord(w io.Writer, key, val []byte) error {
	_, err := w.Write(append(append([]byte{}, key...), val...))
	return err
}

// OKLogThenApply appends to the WAL before mutating the memtable.
func (s *store) OKLogThenApply(key, val []byte) error {
	if err := writeRecord(s.wal, key, val); err != nil {
		return err
	}
	s.table[string(key)] = val
	return nil
}

// BadApplyFirst mutates the memtable while its WAL record is still ahead:
// a crash between the two replays a log that never saw the mutation.
func (s *store) BadApplyFirst(key, val []byte) error {
	s.table[string(key)] = val // want "state applied to the memtable before its WAL record is appended"
	return writeRecord(s.wal, key, val)
}

// BadDeleteFirst is the delete-builtin flavor of the same inversion.
func (s *store) BadDeleteFirst(key []byte) error {
	delete(s.table, string(key)) // want "state applied to the memtable before its WAL record is appended"
	return writeRecord(s.wal, key, nil)
}

// OKSnapshotApply replays a snapshot record into the memtable with no WAL
// append anywhere ahead — recovery-path applies are fine.
func (s *store) OKSnapshotApply(key, val []byte) {
	s.table[string(key)] = val
}

// OKSnapshotWriter uses the same writeRecord helper against a snapshot
// writer; that is not a WAL append and must not satisfy the log-first rule
// for a later apply.
func (s *store) OKSnapshotWriter(w io.Writer, key, val []byte) error {
	return writeRecord(w, key, val)
}

// BadCompact truncates the WAL after renaming the new snapshot into place
// without fsyncing the directory: a crash can lose the rename and the
// truncated log together.
func (s *store) BadCompact(data []byte) error {
	tmp := filepath.Join(s.dir, "snapshot.tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, "snapshot")); err != nil { // want "temp-file rename is never made durable"
		return err
	}
	return s.wal.Truncate(0) // want "truncate after a rename with no directory fsync in between"
}

// OKCompact fsyncs the directory between the rename and the WAL truncate.
func (s *store) OKCompact(data []byte) error {
	tmp := filepath.Join(s.dir, "snapshot.tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, "snapshot")); err != nil {
		return err
	}
	if err := syncDir(s.dir); err != nil {
		return err
	}
	return s.wal.Truncate(0)
}

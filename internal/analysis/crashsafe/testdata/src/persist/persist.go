// Package persist exercises the crashsafe analyzer: write->fsync->rename
// (plus directory fsync) for temp files, log->sync->apply for the memtable.
package persist

import (
	"os"
	"path/filepath"
)

// syncDir is the sanctioned directory-fsync helper (matched by name).
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// makeDurable reaches syncDir only transitively; calls to it must still
// count as a directory fsync.
func makeDurable(dir string) error {
	return syncDir(dir)
}

// flushAll reaches (*os.File).Sync only transitively; calls to it must
// still satisfy the must-sync obligation.
func flushAll(f *os.File) error {
	return f.Sync()
}

func OKWriteSyncRename(dir string, data []byte) error {
	tmp := filepath.Join(dir, "snap.tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, "snap")); err != nil {
		return err
	}
	return syncDir(dir)
}

// OKSyncViaHelper satisfies must-sync through the flushAll wrapper and the
// directory fsync through makeDurable — both only visible interprocedurally.
func OKSyncViaHelper(dir string, f *os.File) error {
	tmp := dir + "/y.tmp"
	if err := flushAll(f); err != nil {
		return err
	}
	if err := os.Rename(tmp, dir+"/y"); err != nil {
		return err
	}
	return makeDurable(dir)
}

func BadRenameUnsynced(dir string, data []byte) error {
	tmp := filepath.Join(dir, "snap.tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, "snap")); err != nil { // want "temp file renamed without an fsync on every path"
		return err
	}
	return syncDir(dir)
}

// BadSyncOneBranch syncs on only one of two paths; the rename is not
// protected on every path.
func BadSyncOneBranch(dir string, f *os.File, fast bool) error {
	tmp := dir + "/z.tmp"
	if !fast {
		if err := f.Sync(); err != nil {
			return err
		}
	}
	if err := os.Rename(tmp, dir+"/z"); err != nil { // want "temp file renamed without an fsync on every path"
		return err
	}
	return syncDir(dir)
}

// BadSyncAfterRename has the classic inversion: the fsync lands after the
// rename already published the unsynced temp file.
func BadSyncAfterRename(dir string, f *os.File) error {
	tmp := dir + "/x.tmp"
	if err := os.WriteFile(tmp, nil, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, dir+"/x"); err != nil { // want "temp file renamed without an fsync on every path"
		return err
	}
	if err := f.Sync(); err != nil { // want "fsync after an unsynced temp rename"
		return err
	}
	return syncDir(dir)
}

// BadNoDirSync writes and syncs the temp file correctly but never fsyncs
// the parent directory, so the rename itself may not survive a crash.
func BadNoDirSync(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path) // want "temp-file rename is never made durable"
}

package crashsafe_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/crashsafe"
)

func TestCrashsafe(t *testing.T) {
	analysistest.Run(t, crashsafe.Analyzer, "persist")
}

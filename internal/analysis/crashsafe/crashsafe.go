// Package crashsafe checks the persistence layer's crash-ordering
// discipline on every control-flow path: temp files follow
// write → fsync → rename (→ directory fsync), and state mutations follow
// log → sync → apply. A path that renames before syncing, fsyncs after the
// rename it was supposed to protect, applies to the memtable while a WAL
// append is still ahead, or truncates the WAL after a rename that is not
// yet durable, is exactly the crash window the recovery protocol cannot
// close — the DeltaCFS checksum store assumes the log is ahead of the
// state it describes.
//
// The analysis is flow-sensitive (per-function CFG from
// internal/analysis/cfg) and call-graph aware: "this call fsyncs" is a
// transitive property resolved through internal/analysis/callgraph, so a
// helper that wraps (*os.File).Sync still satisfies the must-sync
// obligation at its call site.
//
// Event classification (project conventions, documented in DESIGN.md §12):
//
//   - fsync: (*os.File).Sync by identity, or any Sync method from the
//     internal/storagefault layer (the File interface and its
//     implementations — all persistence sites now write through it), or
//     any function that transitively reaches one (excluding directory-sync
//     helpers, which are their own event class).
//   - directory fsync: a call to a function whose name contains "syncdir"
//     (case-insensitive; e.g. syncDir, fsyncDir), or one transitively
//     reaching such a function. Renaming gives a file its durable name;
//     only the parent directory's fsync makes the *name* durable.
//   - rename: os.Rename by identity, or a Rename method from
//     internal/storagefault (FS interface and implementations). The source
//     argument is "a temp file" when it mentions a ".tmp" literal or a
//     variable assigned from one.
//   - WAL append: a direct call to a writeRecord/appendRecord-style
//     function whose destination argument mentions the WAL (an identifier
//     containing "wal") — the same helper writing snapshot records is not
//     a WAL append.
//   - apply: an assignment into (or delete from) a map field named "table",
//     the kvstore's memtable convention.
//   - truncate: (*os.File).Truncate or os.Truncate by identity, or a
//     Truncate method from internal/storagefault.
//
// Reported shapes:
//
//  1. a temp-file rename not preceded by an fsync on every path;
//  2. an fsync on a path where an unsynced temp rename already happened
//     (the inverted write→rename→fsync order);
//  3. an apply with no WAL append behind it on some path but one still
//     ahead (log→sync→apply inverted);
//  4. a temp-file rename in a function with no directory-fsync at all
//     (the rename itself may not survive a crash);
//  5. a truncate on a path where a rename has happened with no directory
//     fsync in between (the classic compaction data-loss window: the old
//     file is gone from the log but the new name is not durable yet).
//
// The must-sync bit is not per-file: any fsync satisfies an obligation.
// That misses interleaved multi-file bugs but never reports a false
// positive for the single-temp-file discipline this codebase uses.
package crashsafe

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/callgraph"
	"repro/internal/analysis/cfg"
)

// Analyzer is the crashsafe checker.
var Analyzer = &analysis.Analyzer{
	Name: "crashsafe",
	Doc:  "persistence paths must follow write->fsync->rename->dirsync and log->sync->apply on every CFG path",
	Run:  run,
}

type evKind int

const (
	evSync evKind = iota
	evDirSync
	evRename
	evWALAppend
	evApply
	evTrunc
)

type ev struct {
	kind evKind
	pos  ast.Node
	tmp  bool // evRename: source argument is a temp file
}

// syncFact is the program-wide summary: which functions transitively fsync
// a file, and which transitively fsync a directory.
type syncFact struct {
	syncs    map[*types.Func]*callgraph.Witness
	dirsyncs map[*types.Func]*callgraph.Witness
}

func buildFact(prog *analysis.Program) *syncFact {
	f := &syncFact{}
	f.syncs = prog.Graph.Transitive(
		func(n *callgraph.Node) string {
			if isFileSync(n.Func) {
				return "fsync"
			}
			return ""
		},
		func(e *callgraph.Edge) bool {
			return e.InGo || e.InLit || isDirSyncName(e.Callee.Func.Name())
		},
	)
	// Directory-sync helpers are their own event class, not generic fsyncs.
	for fn := range f.syncs {
		if isDirSyncName(fn.Name()) {
			delete(f.syncs, fn)
		}
	}
	f.dirsyncs = prog.Graph.Transitive(
		func(n *callgraph.Node) string {
			if isDirSyncName(n.Func.Name()) {
				return "directory fsync"
			}
			return ""
		},
		func(e *callgraph.Edge) bool { return e.InGo || e.InLit },
	)
	return f
}

func run(pass *analysis.Pass) error {
	fact := pass.Prog.Fact(pass.Analyzer, func(prog *analysis.Program) any {
		return buildFact(prog)
	}).(*syncFact)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd, fact)
		}
	}
	return nil
}

// state is the per-program-point dataflow tuple.
type state struct {
	mustSync      bool // an fsync has happened on every path here
	mustWAL       bool // a WAL append has happened on every path here
	unsyncedMay   bool // some path renamed a temp file with no fsync before it
	sinceRenameNo bool // some path renamed with no directory fsync since
}

func meet(a, b state) state {
	return state{
		mustSync:      a.mustSync && b.mustSync,
		mustWAL:       a.mustWAL && b.mustWAL,
		unsyncedMay:   a.unsyncedMay || b.unsyncedMay,
		sinceRenameNo: a.sinceRenameNo || b.sinceRenameNo,
	}
}

func transfer(s state, e ev) state {
	switch e.kind {
	case evSync:
		s.mustSync = true
	case evDirSync:
		s.sinceRenameNo = false
	case evRename:
		if e.tmp && !s.mustSync {
			s.unsyncedMay = true
		}
		s.sinceRenameNo = true
	case evWALAppend:
		s.mustWAL = true
	}
	return s
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, fact *syncFact) {
	g := pass.Prog.CFG(fd)
	reach := g.Reachable()
	tmpObjs := collectTmpObjs(pass.TypesInfo, fd)

	// Classify events per block, in node order.
	evmap := make(map[*cfg.Block][]ev)
	anyEvents, anyDirSync := false, false
	for _, b := range g.Blocks {
		if !reach[b] {
			continue
		}
		var evs []ev
		for _, n := range b.Nodes {
			evs = append(evs, classify(pass, n, fact, tmpObjs)...)
		}
		for _, e := range evs {
			anyEvents = true
			if e.kind == evDirSync {
				anyDirSync = true
			}
		}
		evmap[b] = evs
	}
	if !anyEvents {
		return
	}

	// Forward fixpoint over the state tuple.
	post := g.Postorder()
	in := make(map[*cfg.Block]state)
	out := make(map[*cfg.Block]state)
	optimistic := state{mustSync: true, mustWAL: true}
	for _, b := range post {
		in[b], out[b] = optimistic, optimistic
	}
	in[g.Entry] = state{}
	for changed := true; changed; {
		changed = false
		for i := len(post) - 1; i >= 0; i-- {
			b := post[i]
			s := optimistic
			if b == g.Entry {
				s = state{}
			}
			for _, p := range b.Preds {
				if reach[p] {
					s = meet(s, out[p])
				}
			}
			o := s
			for _, e := range evmap[b] {
				o = transfer(o, e)
			}
			if in[b] != s || out[b] != o {
				in[b], out[b] = s, o
				changed = true
			}
		}
	}

	// Backward "WAL append ahead" bit.
	aheadIn := make(map[*cfg.Block]bool)
	for changed := true; changed; {
		changed = false
		for _, b := range post {
			ahead := false
			for _, sc := range b.Succs {
				if aheadIn[sc] {
					ahead = true
				}
			}
			for _, e := range evmap[b] {
				if e.kind == evWALAppend {
					ahead = true
				}
			}
			if aheadIn[b] != ahead {
				aheadIn[b] = ahead
				changed = true
			}
		}
	}

	// Report pass: replay each block with converged entry state.
	for _, b := range post {
		s := in[b]
		evs := evmap[b]
		for i, e := range evs {
			switch e.kind {
			case evRename:
				if e.tmp && !s.mustSync {
					pass.Reportf(e.pos.Pos(), "temp file renamed without an fsync on every path to it: write->fsync->rename (a crash may publish an empty or partial file under the final name)")
				}
				if e.tmp && !anyDirSync {
					pass.Reportf(e.pos.Pos(), "temp-file rename is never made durable: no directory fsync (syncDir-style call) follows the rename anywhere in %s", fd.Name.Name)
				}
			case evSync:
				if s.unsyncedMay {
					pass.Reportf(e.pos.Pos(), "fsync after an unsynced temp rename: the temp file must be synced before os.Rename publishes it, not after")
				}
			case evApply:
				ahead := walAheadAt(evs, i, b, aheadIn)
				if !s.mustWAL && ahead {
					pass.Reportf(e.pos.Pos(), "state applied to the memtable before its WAL record is appended: log->sync->apply (a crash here replays a log that never saw this mutation)")
				}
			case evTrunc:
				if s.sinceRenameNo {
					pass.Reportf(e.pos.Pos(), "truncate after a rename with no directory fsync in between: a crash can lose the rename and the truncated contents together (fsync the directory first)")
				}
			}
			s = transfer(s, e)
		}
	}
}

// walAheadAt reports whether a WAL append occurs after event index i — later
// in the same block or on any successor path.
func walAheadAt(evs []ev, i int, b *cfg.Block, aheadIn map[*cfg.Block]bool) bool {
	for _, e := range evs[i+1:] {
		if e.kind == evWALAppend {
			return true
		}
	}
	for _, sc := range b.Succs {
		if aheadIn[sc] {
			return true
		}
	}
	return false
}

// classify extracts the ordered crash-ordering events inside one CFG node.
func classify(pass *analysis.Pass, n ast.Node, fact *syncFact, tmpObjs map[types.Object]bool) []ev {
	var out []ev
	info := pass.TypesInfo
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.DeferStmt:
			// A deferred call runs at function exit, not here; counting it
			// at the defer site would wrongly satisfy a must-sync obligation
			// for a later rename.
			return false
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if isTableIndex(info, lhs) {
					out = append(out, ev{kind: evApply, pos: lhs})
				}
			}
		case *ast.CallExpr:
			out = append(out, classifyCall(pass, x, fact, tmpObjs)...)
		}
		return true
	})
	return out
}

func classifyCall(pass *analysis.Pass, call *ast.CallExpr, fact *syncFact, tmpObjs map[types.Object]bool) []ev {
	info := pass.TypesInfo
	// delete(x.table, k) is an apply.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "delete" && len(call.Args) > 0 {
		if isTableSelector(info, call.Args[0]) {
			return []ev{{kind: evApply, pos: call}}
		}
	}
	fn := analysis.CalleeOf(info, call)
	if fn == nil {
		return nil
	}
	pkg := analysis.PkgPathOf(fn)
	recv := analysis.RecvTypeName(fn)
	name := fn.Name()
	var out []ev
	// The os package and the storagefault layer share primitive names
	// (Rename, Truncate): both namespaces carry crash-ordering events.
	primitiveNS := (pkg == "os" && recv == "") || isStorageFaultFn(fn)
	switch {
	case primitiveNS && name == "Rename" && len(call.Args) >= 1:
		out = append(out, ev{kind: evRename, pos: call, tmp: isTmpExpr(info, call.Args[0], tmpObjs)})
	case isDirSyncName(name) || fact.dirsyncs[fn] != nil:
		out = append(out, ev{kind: evDirSync, pos: call})
	case isFileSync(fn) || fact.syncs[fn] != nil:
		out = append(out, ev{kind: evSync, pos: call})
	case (primitiveNS && name == "Truncate") ||
		(pkg == "os" && name == "Truncate" && recv == "File"):
		out = append(out, ev{kind: evTrunc, pos: call})
	case isWALAppendName(name) && len(call.Args) > 0 && mentionsWAL(call.Args[0]):
		out = append(out, ev{kind: evWALAppend, pos: call})
	}
	return out
}

func isFileSync(fn *types.Func) bool {
	if fn == nil {
		return false
	}
	if analysis.PkgPathOf(fn) == "os" &&
		analysis.RecvTypeName(fn) == "File" && fn.Name() == "Sync" {
		return true
	}
	// The storagefault File interface (and every implementation) is the
	// project's fsync source: persistence sites call Sync through it.
	return isStorageFaultFn(fn) && fn.Name() == "Sync"
}

// isStorageFaultFn reports whether fn belongs to the internal/storagefault
// package — the file-IO layer all persistence sites write through. Calls
// resolve here both directly (concrete SimDisk/Injector/osFS methods) and
// through the FS/File interfaces.
func isStorageFaultFn(fn *types.Func) bool {
	return fn != nil && analysis.PathSuffixMatch(analysis.PkgPathOf(fn), "internal/storagefault")
}

func isDirSyncName(name string) bool {
	l := strings.ToLower(name)
	return strings.Contains(l, "syncdir") || strings.Contains(l, "dirsync") || l == "fsyncdir"
}

func isWALAppendName(name string) bool {
	switch strings.ToLower(name) {
	case "writerecord", "appendrecord", "walappend", "appendwal", "writewal":
		return true
	}
	return false
}

// mentionsWAL reports whether the expression contains an identifier or
// selector whose name contains "wal" — the convention distinguishing the
// write-ahead log destination from e.g. a snapshot writer.
func mentionsWAL(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && strings.Contains(strings.ToLower(id.Name), "wal") {
			found = true
		}
		return !found
	})
	return found
}

// isTableIndex matches x.table[...] on a map-typed field named "table".
func isTableIndex(info *types.Info, e ast.Expr) bool {
	idx, ok := ast.Unparen(e).(*ast.IndexExpr)
	if !ok {
		return false
	}
	return isTableSelector(info, idx.X)
}

func isTableSelector(info *types.Info, e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "table" {
		return false
	}
	tv, ok := info.Types[sel]
	if !ok {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// collectTmpObjs finds variables assigned (anywhere in the function,
// flow-insensitively) from an expression containing a ".tmp" literal.
func collectTmpObjs(info *types.Info, fd *ast.FuncDecl) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			if !containsTmpLit(rhs) || i >= len(as.Lhs) {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				if obj := info.Defs[id]; obj != nil {
					out[obj] = true
				} else if obj := info.Uses[id]; obj != nil {
					out[obj] = true
				}
			}
		}
		return true
	})
	return out
}

func containsTmpLit(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if lit, ok := n.(*ast.BasicLit); ok && strings.Contains(lit.Value, ".tmp") {
			found = true
		}
		return !found
	})
	return found
}

// isTmpExpr reports whether a rename source argument denotes a temp file:
// a ".tmp" literal inside it, a variable assigned from one, or an
// identifier conventionally named tmp*.
func isTmpExpr(info *types.Info, e ast.Expr, tmpObjs map[types.Object]bool) bool {
	if containsTmpLit(e) {
		return true
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return !found
		}
		if tmpObjs[info.Uses[id]] || tmpObjs[info.Defs[id]] {
			found = true
		}
		if strings.HasPrefix(strings.ToLower(id.Name), "tmp") {
			found = true
		}
		return !found
	})
	return found
}

package vfs

import (
	"errors"
	"fmt"
	"path"
	"sort"
	"strings"
	"sync"
)

// Common vfs errors.
var (
	ErrNotExist = errors.New("vfs: file does not exist")
	ErrExist    = errors.New("vfs: file already exists")
	ErrIsDir    = errors.New("vfs: path is a directory")
	ErrNotDir   = errors.New("vfs: path is not a directory")
	ErrNotEmpty = errors.New("vfs: directory not empty")
)

// memFile is the inode: hard links share one memFile.
type memFile struct {
	data  []byte
	links int
}

// MemFS is an in-memory FS with hard-link support. It is the default backing
// store for tests and benchmarks, and it exposes bypass hooks (BypassWrite,
// FlipBit) used by the fault-injection experiments to corrupt data "on disk"
// without going through the interception layer — the software equivalent of
// the paper's debugfs bit-flipping.
type MemFS struct {
	mu    sync.RWMutex
	files map[string]*memFile
	dirs  map[string]bool
}

// NewMemFS returns an empty in-memory file system.
func NewMemFS() *MemFS {
	return &MemFS{
		files: make(map[string]*memFile),
		dirs:  map[string]bool{".": true},
	}
}

func clean(p string) string {
	p = path.Clean(strings.TrimPrefix(p, "/"))
	if p == "" {
		return "."
	}
	return p
}

func (m *MemFS) parentExists(p string) bool {
	dir := path.Dir(p)
	return m.dirs[dir]
}

// Create creates an empty regular file, truncating an existing one — the
// POSIX O_CREAT|O_TRUNC semantics the paper's "create" operations imply.
func (m *MemFS) Create(p string) error {
	p = clean(p)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.dirs[p] {
		return fmt.Errorf("create %s: %w", p, ErrIsDir)
	}
	if !m.parentExists(p) {
		return fmt.Errorf("create %s: parent: %w", p, ErrNotExist)
	}
	if f, ok := m.files[p]; ok {
		f.data = f.data[:0]
		return nil
	}
	m.files[p] = &memFile{links: 1}
	return nil
}

// WriteAt writes data at offset off, creating the file if absent (FUSE
// write on an open handle always has a file; trace replay is simpler if
// writes create implicitly) and zero-filling any gap.
func (m *MemFS) WriteAt(p string, off int64, data []byte) error {
	p = clean(p)
	if off < 0 {
		return fmt.Errorf("write %s: negative offset %d", p, off)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.dirs[p] {
		return fmt.Errorf("write %s: %w", p, ErrIsDir)
	}
	f, ok := m.files[p]
	if !ok {
		if !m.parentExists(p) {
			return fmt.Errorf("write %s: parent: %w", p, ErrNotExist)
		}
		f = &memFile{links: 1}
		m.files[p] = f
	}
	end := off + int64(len(data))
	if int64(len(f.data)) < end {
		grown := make([]byte, end)
		copy(grown, f.data)
		f.data = grown
	}
	copy(f.data[off:end], data)
	return nil
}

// ReadAt reads up to n bytes at offset off. Reading past EOF returns the
// available prefix (possibly empty) without error, matching pread semantics
// closely enough for the sync engines.
func (m *MemFS) ReadAt(p string, off, n int64) ([]byte, error) {
	p = clean(p)
	if off < 0 || n < 0 {
		return nil, fmt.Errorf("read %s: negative offset or count", p)
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	f, ok := m.files[p]
	if !ok {
		return nil, fmt.Errorf("read %s: %w", p, ErrNotExist)
	}
	if off >= int64(len(f.data)) {
		return nil, nil
	}
	end := off + n
	if end > int64(len(f.data)) {
		end = int64(len(f.data))
	}
	out := make([]byte, end-off)
	copy(out, f.data[off:end])
	return out, nil
}

// ReadFile returns a copy of the whole file.
func (m *MemFS) ReadFile(p string) ([]byte, error) {
	p = clean(p)
	m.mu.RLock()
	defer m.mu.RUnlock()
	f, ok := m.files[p]
	if !ok {
		return nil, fmt.Errorf("read %s: %w", p, ErrNotExist)
	}
	out := make([]byte, len(f.data))
	copy(out, f.data)
	return out, nil
}

// Truncate sets the file length, zero-filling on growth.
func (m *MemFS) Truncate(p string, size int64) error {
	p = clean(p)
	if size < 0 {
		return fmt.Errorf("truncate %s: negative size", p)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[p]
	if !ok {
		return fmt.Errorf("truncate %s: %w", p, ErrNotExist)
	}
	if int64(len(f.data)) >= size {
		f.data = f.data[:size]
		return nil
	}
	grown := make([]byte, size)
	copy(grown, f.data)
	f.data = grown
	return nil
}

// Rename atomically moves oldPath to newPath, replacing any existing file at
// newPath (POSIX rename semantics, the atomic commit step of transactional
// updates).
func (m *MemFS) Rename(oldPath, newPath string) error {
	oldPath, newPath = clean(oldPath), clean(newPath)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.dirs[oldPath] {
		return m.renameDirLocked(oldPath, newPath)
	}
	f, ok := m.files[oldPath]
	if !ok {
		return fmt.Errorf("rename %s: %w", oldPath, ErrNotExist)
	}
	if m.dirs[newPath] {
		return fmt.Errorf("rename to %s: %w", newPath, ErrIsDir)
	}
	if !m.parentExists(newPath) {
		return fmt.Errorf("rename to %s: parent: %w", newPath, ErrNotExist)
	}
	if old, ok := m.files[newPath]; ok {
		old.links--
	}
	m.files[newPath] = f
	delete(m.files, oldPath)
	return nil
}

func (m *MemFS) renameDirLocked(oldPath, newPath string) error {
	if m.dirs[newPath] || m.files[newPath] != nil {
		return fmt.Errorf("rename to %s: %w", newPath, ErrExist)
	}
	if !m.parentExists(newPath) {
		return fmt.Errorf("rename to %s: parent: %w", newPath, ErrNotExist)
	}
	oldPrefix := oldPath + "/"
	for d := range m.dirs {
		if d == oldPath {
			delete(m.dirs, d)
			m.dirs[newPath] = true
		} else if strings.HasPrefix(d, oldPrefix) {
			delete(m.dirs, d)
			m.dirs[newPath+"/"+d[len(oldPrefix):]] = true
		}
	}
	for p, f := range m.files {
		if strings.HasPrefix(p, oldPrefix) {
			delete(m.files, p)
			m.files[newPath+"/"+p[len(oldPrefix):]] = f
		}
	}
	return nil
}

// Link creates a hard link newPath referring to oldPath's inode. It fails if
// newPath exists (link(2) semantics).
func (m *MemFS) Link(oldPath, newPath string) error {
	oldPath, newPath = clean(oldPath), clean(newPath)
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[oldPath]
	if !ok {
		return fmt.Errorf("link %s: %w", oldPath, ErrNotExist)
	}
	if m.files[newPath] != nil || m.dirs[newPath] {
		return fmt.Errorf("link to %s: %w", newPath, ErrExist)
	}
	if !m.parentExists(newPath) {
		return fmt.Errorf("link to %s: parent: %w", newPath, ErrNotExist)
	}
	f.links++
	m.files[newPath] = f
	return nil
}

// Unlink removes the name; the inode lives on while other links reference it.
func (m *MemFS) Unlink(p string) error {
	p = clean(p)
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[p]
	if !ok {
		if m.dirs[p] {
			return fmt.Errorf("unlink %s: %w", p, ErrIsDir)
		}
		return fmt.Errorf("unlink %s: %w", p, ErrNotExist)
	}
	f.links--
	delete(m.files, p)
	return nil
}

// Mkdir creates a directory. Parent must exist.
func (m *MemFS) Mkdir(p string) error {
	p = clean(p)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.dirs[p] || m.files[p] != nil {
		return fmt.Errorf("mkdir %s: %w", p, ErrExist)
	}
	if !m.parentExists(p) {
		return fmt.Errorf("mkdir %s: parent: %w", p, ErrNotExist)
	}
	m.dirs[p] = true
	return nil
}

// Rmdir removes an empty directory.
func (m *MemFS) Rmdir(p string) error {
	p = clean(p)
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.dirs[p] {
		return fmt.Errorf("rmdir %s: %w", p, ErrNotDir)
	}
	prefix := p + "/"
	for q := range m.files {
		if strings.HasPrefix(q, prefix) {
			return fmt.Errorf("rmdir %s: %w", p, ErrNotEmpty)
		}
	}
	for q := range m.dirs {
		if strings.HasPrefix(q, prefix) {
			return fmt.Errorf("rmdir %s: %w", p, ErrNotEmpty)
		}
	}
	delete(m.dirs, p)
	return nil
}

// Close is a release notification; MemFS needs no action.
func (m *MemFS) Close(p string) error { return nil }

// Fsync is a durability notification; MemFS needs no action.
func (m *MemFS) Fsync(p string) error { return nil }

// Stat describes the file or directory at p.
func (m *MemFS) Stat(p string) (FileInfo, error) {
	p = clean(p)
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.dirs[p] {
		return FileInfo{IsDir: true}, nil
	}
	f, ok := m.files[p]
	if !ok {
		return FileInfo{}, fmt.Errorf("stat %s: %w", p, ErrNotExist)
	}
	return FileInfo{Size: int64(len(f.data)), Links: f.links}, nil
}

// List returns all regular-file paths under prefix, sorted.
func (m *MemFS) List(prefix string) ([]string, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var out []string
	if prefix != "" {
		prefix = clean(prefix)
	}
	for p := range m.files {
		if prefix == "" || p == prefix || strings.HasPrefix(p, prefix+"/") {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out, nil
}

// TotalBytes returns the sum of all file sizes (each inode counted once per
// name, matching what a sync engine sees).
func (m *MemFS) TotalBytes() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var n int64
	for _, f := range m.files {
		n += int64(len(f.data))
	}
	return n
}

// BypassWrite mutates file bytes directly, without any interception-visible
// operation — simulating on-disk corruption or a crash-inconsistent state
// where data changed but metadata (and any layered bookkeeping) did not.
func (m *MemFS) BypassWrite(p string, off int64, data []byte) error {
	p = clean(p)
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[p]
	if !ok {
		return fmt.Errorf("bypass write %s: %w", p, ErrNotExist)
	}
	if off < 0 || off+int64(len(data)) > int64(len(f.data)) {
		return fmt.Errorf("bypass write %s: range [%d,%d) outside file of %d bytes",
			p, off, off+int64(len(data)), len(f.data))
	}
	copy(f.data[off:], data)
	return nil
}

// FlipBit flips one bit at byte offset off — the paper's debugfs-style
// corruption injection.
func (m *MemFS) FlipBit(p string, off int64) error {
	p = clean(p)
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[p]
	if !ok {
		return fmt.Errorf("flip bit %s: %w", p, ErrNotExist)
	}
	if off < 0 || off >= int64(len(f.data)) {
		return fmt.Errorf("flip bit %s: offset %d outside file of %d bytes",
			p, off, len(f.data))
	}
	f.data[off] ^= 0x01
	return nil
}

package vfs

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/storagefault"
)

// DirFS is an FS backed by a directory on a storagefault.FS — the real host
// file system by default (the command-line client syncing a real folder), or
// a simulated/fault-injecting disk when the crash-point harness drives the
// client's own persistence through failure. Hard-link counting in Stat is
// approximated as 1 (sufficient for the sync engines, which only use Size).
type DirFS struct {
	root string
	fsys storagefault.FS
}

// NewDirFS returns an FS rooted at dir on the host file system, creating it
// if necessary.
func NewDirFS(dir string) (*DirFS, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	return NewDirFSWith(storagefault.OS, abs)
}

// NewDirFSWith returns an FS rooted at dir on fsys (nil means the host file
// system), creating the root if necessary. dir is used as given — simulated
// disks have no working directory to resolve against.
func NewDirFSWith(fsys storagefault.FS, dir string) (*DirFS, error) {
	if fsys == nil {
		fsys = storagefault.OS
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("vfs: dirfs root: %w", err)
	}
	return &DirFS{root: dir, fsys: fsys}, nil
}

// Root returns the root directory.
func (d *DirFS) Root() string { return d.root }

func (d *DirFS) abs(p string) string {
	return filepath.Join(d.root, filepath.FromSlash(clean(p)))
}

// Create implements FS.
func (d *DirFS) Create(p string) error {
	f, err := storagefault.Create(d.fsys, d.abs(p))
	if err != nil {
		return err
	}
	return f.Close()
}

// WriteAt implements FS.
func (d *DirFS) WriteAt(p string, off int64, data []byte) error {
	f, err := d.fsys.OpenFile(d.abs(p), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.WriteAt(data, off)
	return err
}

// ReadAt implements FS.
func (d *DirFS) ReadAt(p string, off, n int64) ([]byte, error) {
	f, err := storagefault.Open(d.fsys, d.abs(p))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, n)
	m, err := f.ReadAt(buf, off)
	if err != nil && !errors.Is(err, io.EOF) {
		return nil, err
	}
	return buf[:m], nil
}

// ReadFile implements FS.
func (d *DirFS) ReadFile(p string) ([]byte, error) { return d.fsys.ReadFile(d.abs(p)) }

// Truncate implements FS.
func (d *DirFS) Truncate(p string, size int64) error { return d.fsys.Truncate(d.abs(p), size) }

// Rename implements FS.
func (d *DirFS) Rename(oldPath, newPath string) error {
	return d.fsys.Rename(d.abs(oldPath), d.abs(newPath))
}

// Link implements FS.
func (d *DirFS) Link(oldPath, newPath string) error {
	return d.fsys.Link(d.abs(oldPath), d.abs(newPath))
}

// Unlink implements FS.
func (d *DirFS) Unlink(p string) error { return d.fsys.Remove(d.abs(p)) }

// Mkdir implements FS.
func (d *DirFS) Mkdir(p string) error { return d.fsys.Mkdir(d.abs(p), 0o755) }

// Rmdir implements FS.
func (d *DirFS) Rmdir(p string) error { return d.fsys.Remove(d.abs(p)) }

// Close implements FS (no-op: DirFS opens per call).
func (d *DirFS) Close(p string) error { return nil }

// Fsync implements FS.
func (d *DirFS) Fsync(p string) error {
	f, err := d.fsys.OpenFile(d.abs(p), os.O_WRONLY, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	return f.Sync()
}

// Stat implements FS.
func (d *DirFS) Stat(p string) (FileInfo, error) {
	st, err := d.fsys.Stat(d.abs(p))
	if err != nil {
		return FileInfo{}, err
	}
	return FileInfo{Size: st.Size, IsDir: st.IsDir, Links: 1}, nil
}

// List implements FS.
func (d *DirFS) List(prefix string) ([]string, error) {
	start := d.root
	if prefix != "" {
		start = d.abs(prefix)
	}
	names, err := d.fsys.List(start)
	if err != nil {
		return nil, err
	}
	if start == d.root {
		return names, nil
	}
	// List is root-relative in the FS contract; re-anchor the under-prefix
	// names the same way the WalkDir implementation did.
	rel, err := filepath.Rel(d.root, start)
	if err != nil {
		return nil, err
	}
	rel = strings.ReplaceAll(rel, string(filepath.Separator), "/")
	out := make([]string, 0, len(names))
	for _, n := range names {
		out = append(out, rel+"/"+n)
	}
	return out, nil
}

var _ FS = (*DirFS)(nil)

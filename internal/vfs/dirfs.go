package vfs

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

// DirFS is an FS backed by a real directory on the host file system. It is
// used by the command-line client to sync a real folder; tests and
// benchmarks prefer MemFS. Hard-link counting in Stat is approximated as 1
// (sufficient for the sync engines, which only use Size).
type DirFS struct {
	root string
}

// NewDirFS returns an FS rooted at dir, creating it if necessary.
func NewDirFS(dir string) (*DirFS, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("vfs: dirfs root: %w", err)
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	return &DirFS{root: abs}, nil
}

// Root returns the absolute root directory.
func (d *DirFS) Root() string { return d.root }

func (d *DirFS) abs(p string) string {
	return filepath.Join(d.root, filepath.FromSlash(clean(p)))
}

// Create implements FS.
func (d *DirFS) Create(p string) error {
	f, err := os.Create(d.abs(p))
	if err != nil {
		return err
	}
	return f.Close()
}

// WriteAt implements FS.
func (d *DirFS) WriteAt(p string, off int64, data []byte) error {
	f, err := os.OpenFile(d.abs(p), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.WriteAt(data, off)
	return err
}

// ReadAt implements FS.
func (d *DirFS) ReadAt(p string, off, n int64) ([]byte, error) {
	f, err := os.Open(d.abs(p))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, n)
	m, err := f.ReadAt(buf, off)
	if err != nil && !errors.Is(err, io.EOF) {
		return nil, err
	}
	return buf[:m], nil
}

// ReadFile implements FS.
func (d *DirFS) ReadFile(p string) ([]byte, error) { return os.ReadFile(d.abs(p)) }

// Truncate implements FS.
func (d *DirFS) Truncate(p string, size int64) error { return os.Truncate(d.abs(p), size) }

// Rename implements FS.
func (d *DirFS) Rename(oldPath, newPath string) error {
	return os.Rename(d.abs(oldPath), d.abs(newPath))
}

// Link implements FS.
func (d *DirFS) Link(oldPath, newPath string) error {
	return os.Link(d.abs(oldPath), d.abs(newPath))
}

// Unlink implements FS.
func (d *DirFS) Unlink(p string) error { return os.Remove(d.abs(p)) }

// Mkdir implements FS.
func (d *DirFS) Mkdir(p string) error { return os.Mkdir(d.abs(p), 0o755) }

// Rmdir implements FS.
func (d *DirFS) Rmdir(p string) error { return os.Remove(d.abs(p)) }

// Close implements FS (no-op: DirFS opens per call).
func (d *DirFS) Close(p string) error { return nil }

// Fsync implements FS.
func (d *DirFS) Fsync(p string) error {
	f, err := os.OpenFile(d.abs(p), os.O_WRONLY, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	return f.Sync()
}

// Stat implements FS.
func (d *DirFS) Stat(p string) (FileInfo, error) {
	st, err := os.Stat(d.abs(p))
	if err != nil {
		return FileInfo{}, err
	}
	return FileInfo{Size: st.Size(), IsDir: st.IsDir(), Links: 1}, nil
}

// List implements FS.
func (d *DirFS) List(prefix string) ([]string, error) {
	start := d.root
	if prefix != "" {
		start = d.abs(prefix)
	}
	var out []string
	err := filepath.WalkDir(start, func(p string, de fs.DirEntry, err error) error {
		if err != nil {
			if errors.Is(err, os.ErrNotExist) {
				return nil
			}
			return err
		}
		if de.Type().IsRegular() {
			rel, err := filepath.Rel(d.root, p)
			if err != nil {
				return err
			}
			out = append(out, strings.ReplaceAll(rel, string(filepath.Separator), "/"))
		}
		return nil
	})
	return out, err
}

var _ FS = (*DirFS)(nil)

// Package vfs is the reproduction's stand-in for FUSE: an in-process
// virtual-file-system layer that exposes the same file-operation stream a
// FUSE daemon sees (create, write, truncate, rename, link, unlink, close,
// ...), with pluggable backing stores (in-memory or a real directory) and an
// observer mechanism that plays the role of both LibFuse dispatch (for
// DeltaCFS, which sits *in* the operation path) and inotify (for the
// Dropbox/Seafile baselines, which watch modification events from outside).
//
// Applications in this repository are trace replayers: they issue the
// paper's workload operation sequences (Fig 3) through a vfs.FS exactly as
// real applications would issue them through the kernel into FUSE.
package vfs

import "fmt"

// OpKind identifies a file operation.
type OpKind uint8

// The file operations DeltaCFS intercepts, mirroring the FUSE callbacks the
// paper's prototype implements.
const (
	OpCreate OpKind = iota + 1
	OpWrite
	OpTruncate
	OpRename
	OpLink
	OpUnlink
	OpMkdir
	OpRmdir
	OpClose
	OpFsync
)

var opNames = map[OpKind]string{
	OpCreate:   "create",
	OpWrite:    "write",
	OpTruncate: "truncate",
	OpRename:   "rename",
	OpLink:     "link",
	OpUnlink:   "unlink",
	OpMkdir:    "mkdir",
	OpRmdir:    "rmdir",
	OpClose:    "close",
	OpFsync:    "fsync",
}

func (k OpKind) String() string {
	if s, ok := opNames[k]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(k))
}

// Op is one file operation, the unit of both trace replay and interception.
type Op struct {
	Kind OpKind
	Path string // primary path
	Dst  string // rename/link destination
	Off  int64  // write offset
	Size int64  // truncate length
	Data []byte // write payload
}

func (o Op) String() string {
	switch o.Kind {
	case OpWrite:
		return fmt.Sprintf("write %s off=%d len=%d", o.Path, o.Off, len(o.Data))
	case OpTruncate:
		return fmt.Sprintf("truncate %s %d", o.Path, o.Size)
	case OpRename, OpLink:
		return fmt.Sprintf("%s %s %s", o.Kind, o.Path, o.Dst)
	default:
		return fmt.Sprintf("%s %s", o.Kind, o.Path)
	}
}

// Apply issues op against fs.
func Apply(fs FS, op Op) error {
	switch op.Kind {
	case OpCreate:
		return fs.Create(op.Path)
	case OpWrite:
		return fs.WriteAt(op.Path, op.Off, op.Data)
	case OpTruncate:
		return fs.Truncate(op.Path, op.Size)
	case OpRename:
		return fs.Rename(op.Path, op.Dst)
	case OpLink:
		return fs.Link(op.Path, op.Dst)
	case OpUnlink:
		return fs.Unlink(op.Path)
	case OpMkdir:
		return fs.Mkdir(op.Path)
	case OpRmdir:
		return fs.Rmdir(op.Path)
	case OpClose:
		return fs.Close(op.Path)
	case OpFsync:
		return fs.Fsync(op.Path)
	default:
		return fmt.Errorf("vfs: apply: unknown op kind %d", op.Kind)
	}
}

// FileInfo describes a file or directory.
type FileInfo struct {
	Size  int64
	IsDir bool
	// Links is the hard-link count (in-memory backend only; 1 for DirFS).
	Links int
}

// FS is the file-system interface through which all file operations flow.
// Paths are slash-separated and relative to the FS root; they are cleaned by
// implementations. Close and Fsync are advisory notifications (FUSE release
// and fsync callbacks) that implementations may treat as no-ops on the data
// plane but that interception layers rely on.
type FS interface {
	Create(path string) error
	WriteAt(path string, off int64, data []byte) error
	ReadAt(path string, off, n int64) ([]byte, error)
	ReadFile(path string) ([]byte, error)
	Truncate(path string, size int64) error
	Rename(oldPath, newPath string) error
	Link(oldPath, newPath string) error
	Unlink(path string) error
	Mkdir(path string) error
	Rmdir(path string) error
	Close(path string) error
	Fsync(path string) error
	Stat(path string) (FileInfo, error)
	// List returns the paths of all regular files under prefix (the whole
	// tree when prefix is empty), in unspecified order.
	List(prefix string) ([]string, error)
}

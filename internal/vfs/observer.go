package vfs

import "sync"

// Observer receives file-operation events after they have been applied to
// the backing store. For the DeltaCFS client the observer role is played by
// the engine itself (it *is* the file system); for the Dropbox/Seafile
// baselines ObserverFS models inotify: they learn that a file changed, but
// not what bytes changed — which is precisely why they must re-scan files
// and why the paper's Table II charges them so much CPU.
type Observer interface {
	OnOp(op Op)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(op Op)

// OnOp calls f(op).
func (f ObserverFunc) OnOp(op Op) { f(op) }

// ObserverFS wraps an FS and notifies registered observers after each
// successfully applied operation, in application order.
type ObserverFS struct {
	backing FS

	mu        sync.RWMutex
	observers []Observer
}

// NewObserverFS wraps backing.
func NewObserverFS(backing FS) *ObserverFS {
	return &ObserverFS{backing: backing}
}

// Backing returns the wrapped FS.
func (o *ObserverFS) Backing() FS { return o.backing }

// Subscribe registers an observer. Observers are invoked synchronously on
// the mutating goroutine, in subscription order.
func (o *ObserverFS) Subscribe(obs Observer) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.observers = append(o.observers, obs)
}

func (o *ObserverFS) notify(op Op) {
	o.mu.RLock()
	obs := o.observers
	o.mu.RUnlock()
	for _, ob := range obs {
		ob.OnOp(op)
	}
}

// Create implements FS.
func (o *ObserverFS) Create(p string) error {
	if err := o.backing.Create(p); err != nil {
		return err
	}
	o.notify(Op{Kind: OpCreate, Path: p})
	return nil
}

// WriteAt implements FS.
func (o *ObserverFS) WriteAt(p string, off int64, data []byte) error {
	if err := o.backing.WriteAt(p, off, data); err != nil {
		return err
	}
	o.notify(Op{Kind: OpWrite, Path: p, Off: off, Data: data})
	return nil
}

// ReadAt implements FS.
func (o *ObserverFS) ReadAt(p string, off, n int64) ([]byte, error) {
	return o.backing.ReadAt(p, off, n)
}

// ReadFile implements FS.
func (o *ObserverFS) ReadFile(p string) ([]byte, error) {
	return o.backing.ReadFile(p)
}

// Truncate implements FS.
func (o *ObserverFS) Truncate(p string, size int64) error {
	if err := o.backing.Truncate(p, size); err != nil {
		return err
	}
	o.notify(Op{Kind: OpTruncate, Path: p, Size: size})
	return nil
}

// Rename implements FS.
func (o *ObserverFS) Rename(oldPath, newPath string) error {
	if err := o.backing.Rename(oldPath, newPath); err != nil {
		return err
	}
	o.notify(Op{Kind: OpRename, Path: oldPath, Dst: newPath})
	return nil
}

// Link implements FS.
func (o *ObserverFS) Link(oldPath, newPath string) error {
	if err := o.backing.Link(oldPath, newPath); err != nil {
		return err
	}
	o.notify(Op{Kind: OpLink, Path: oldPath, Dst: newPath})
	return nil
}

// Unlink implements FS.
func (o *ObserverFS) Unlink(p string) error {
	if err := o.backing.Unlink(p); err != nil {
		return err
	}
	o.notify(Op{Kind: OpUnlink, Path: p})
	return nil
}

// Mkdir implements FS.
func (o *ObserverFS) Mkdir(p string) error {
	if err := o.backing.Mkdir(p); err != nil {
		return err
	}
	o.notify(Op{Kind: OpMkdir, Path: p})
	return nil
}

// Rmdir implements FS.
func (o *ObserverFS) Rmdir(p string) error {
	if err := o.backing.Rmdir(p); err != nil {
		return err
	}
	o.notify(Op{Kind: OpRmdir, Path: p})
	return nil
}

// Close implements FS.
func (o *ObserverFS) Close(p string) error {
	if err := o.backing.Close(p); err != nil {
		return err
	}
	o.notify(Op{Kind: OpClose, Path: p})
	return nil
}

// Fsync implements FS.
func (o *ObserverFS) Fsync(p string) error {
	if err := o.backing.Fsync(p); err != nil {
		return err
	}
	o.notify(Op{Kind: OpFsync, Path: p})
	return nil
}

// Stat implements FS.
func (o *ObserverFS) Stat(p string) (FileInfo, error) { return o.backing.Stat(p) }

// List implements FS.
func (o *ObserverFS) List(prefix string) ([]string, error) { return o.backing.List(prefix) }

var _ FS = (*ObserverFS)(nil)
var _ FS = (*MemFS)(nil)

package vfs

import (
	"bytes"
	"errors"
	"testing"
)

// fsFactories lets the conformance tests run against every FS backend.
func fsFactories(t *testing.T) map[string]func() FS {
	return map[string]func() FS{
		"memfs": func() FS { return NewMemFS() },
		"dirfs": func() FS {
			d, err := NewDirFS(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			return d
		},
		"observer": func() FS { return NewObserverFS(NewMemFS()) },
	}
}

func TestConformance(t *testing.T) {
	for name, mk := range fsFactories(t) {
		t.Run(name, func(t *testing.T) {
			testCreateWriteRead(t, mk())
			testWriteGrowsAndGaps(t, mk())
			testTruncate(t, mk())
			testRenameReplaces(t, mk())
			testUnlink(t, mk())
			testMkdirRmdir(t, mk())
			testList(t, mk())
			testReadAtPastEOF(t, mk())
		})
	}
}

func testCreateWriteRead(t *testing.T, fs FS) {
	t.Helper()
	if err := fs.Create("f"); err != nil {
		t.Fatalf("Create: %v", err)
	}
	if err := fs.WriteAt("f", 0, []byte("hello world")); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	got, err := fs.ReadFile("f")
	if err != nil || !bytes.Equal(got, []byte("hello world")) {
		t.Fatalf("ReadFile = %q, %v", got, err)
	}
	part, err := fs.ReadAt("f", 6, 5)
	if err != nil || !bytes.Equal(part, []byte("world")) {
		t.Fatalf("ReadAt = %q, %v", part, err)
	}
	st, err := fs.Stat("f")
	if err != nil || st.Size != 11 || st.IsDir {
		t.Fatalf("Stat = %+v, %v", st, err)
	}
	// Create on an existing file truncates.
	if err := fs.Create("f"); err != nil {
		t.Fatalf("re-Create: %v", err)
	}
	st, _ = fs.Stat("f")
	if st.Size != 0 {
		t.Fatalf("Create did not truncate: size %d", st.Size)
	}
}

func testWriteGrowsAndGaps(t *testing.T, fs FS) {
	t.Helper()
	if err := fs.WriteAt("gap", 100, []byte("x")); err != nil {
		t.Fatalf("WriteAt with gap: %v", err)
	}
	st, err := fs.Stat("gap")
	if err != nil || st.Size != 101 {
		t.Fatalf("gap file size = %d, %v; want 101", st.Size, err)
	}
	head, err := fs.ReadAt("gap", 0, 10)
	if err != nil || !bytes.Equal(head, make([]byte, 10)) {
		t.Fatalf("gap not zero-filled: %q, %v", head, err)
	}
}

func testTruncate(t *testing.T, fs FS) {
	t.Helper()
	fs.Create("t")
	fs.WriteAt("t", 0, []byte("0123456789"))
	if err := fs.Truncate("t", 4); err != nil {
		t.Fatalf("Truncate shrink: %v", err)
	}
	got, _ := fs.ReadFile("t")
	if !bytes.Equal(got, []byte("0123")) {
		t.Fatalf("after shrink: %q", got)
	}
	if err := fs.Truncate("t", 8); err != nil {
		t.Fatalf("Truncate grow: %v", err)
	}
	got, _ = fs.ReadFile("t")
	if !bytes.Equal(got, append([]byte("0123"), 0, 0, 0, 0)) {
		t.Fatalf("after grow: %q", got)
	}
	if err := fs.Truncate("absent", 0); err == nil {
		t.Fatal("Truncate on absent file succeeded")
	}
}

func testRenameReplaces(t *testing.T, fs FS) {
	t.Helper()
	fs.Create("a")
	fs.WriteAt("a", 0, []byte("new"))
	fs.Create("b")
	fs.WriteAt("b", 0, []byte("old"))
	if err := fs.Rename("a", "b"); err != nil {
		t.Fatalf("Rename: %v", err)
	}
	if _, err := fs.Stat("a"); err == nil {
		t.Fatal("source still exists after rename")
	}
	got, _ := fs.ReadFile("b")
	if !bytes.Equal(got, []byte("new")) {
		t.Fatalf("rename did not replace: %q", got)
	}
	if err := fs.Rename("missing", "x"); err == nil {
		t.Fatal("Rename of missing file succeeded")
	}
}

func testUnlink(t *testing.T, fs FS) {
	t.Helper()
	fs.Create("u")
	if err := fs.Unlink("u"); err != nil {
		t.Fatalf("Unlink: %v", err)
	}
	if _, err := fs.Stat("u"); err == nil {
		t.Fatal("file exists after unlink")
	}
	if err := fs.Unlink("u"); err == nil {
		t.Fatal("double unlink succeeded")
	}
}

func testMkdirRmdir(t *testing.T, fs FS) {
	t.Helper()
	if err := fs.Mkdir("d"); err != nil {
		t.Fatalf("Mkdir: %v", err)
	}
	st, err := fs.Stat("d")
	if err != nil || !st.IsDir {
		t.Fatalf("Stat dir = %+v, %v", st, err)
	}
	fs.Create("d/f")
	if err := fs.Rmdir("d"); err == nil {
		t.Fatal("Rmdir of non-empty dir succeeded")
	}
	fs.Unlink("d/f")
	if err := fs.Rmdir("d"); err != nil {
		t.Fatalf("Rmdir: %v", err)
	}
}

func testList(t *testing.T, fs FS) {
	t.Helper()
	fs.Mkdir("sub")
	fs.Create("x")
	fs.Create("sub/y")
	all, err := fs.List("")
	if err != nil {
		t.Fatal(err)
	}
	found := map[string]bool{}
	for _, p := range all {
		found[p] = true
	}
	if !found["x"] || !found["sub/y"] {
		t.Fatalf("List missing entries: %v", all)
	}
	subOnly, err := fs.List("sub")
	if err != nil {
		t.Fatal(err)
	}
	if len(subOnly) != 1 || subOnly[0] != "sub/y" {
		t.Fatalf("List(sub) = %v", subOnly)
	}
}

func testReadAtPastEOF(t *testing.T, fs FS) {
	t.Helper()
	fs.Create("eof")
	fs.WriteAt("eof", 0, []byte("abc"))
	got, err := fs.ReadAt("eof", 2, 10)
	if err != nil || !bytes.Equal(got, []byte("c")) {
		t.Fatalf("ReadAt crossing EOF = %q, %v", got, err)
	}
	got, err = fs.ReadAt("eof", 100, 10)
	if err != nil || len(got) != 0 {
		t.Fatalf("ReadAt past EOF = %q, %v; want empty, nil", got, err)
	}
}

func TestMemFSHardLinks(t *testing.T) {
	m := NewMemFS()
	m.Create("f")
	m.WriteAt("f", 0, []byte("content"))
	if err := m.Link("f", "f~"); err != nil {
		t.Fatalf("Link: %v", err)
	}
	st, _ := m.Stat("f")
	if st.Links != 2 {
		t.Fatalf("link count = %d, want 2", st.Links)
	}
	// Writes through one name are visible through the other (same inode).
	m.WriteAt("f", 0, []byte("CONTENT"))
	got, _ := m.ReadFile("f~")
	if !bytes.Equal(got, []byte("CONTENT")) {
		t.Fatalf("link does not share inode: %q", got)
	}
	// Unlinking one name leaves the other intact.
	if err := m.Unlink("f"); err != nil {
		t.Fatal(err)
	}
	got, err := m.ReadFile("f~")
	if err != nil || !bytes.Equal(got, []byte("CONTENT")) {
		t.Fatalf("surviving link broken: %q, %v", got, err)
	}
	// Link to an existing name must fail.
	m.Create("g")
	if err := m.Link("f~", "g"); err == nil {
		t.Fatal("Link over existing file succeeded")
	}
}

func TestMemFSGeditPattern(t *testing.T) {
	// The gedit sequence from Fig 3: create+write tmp, link f f~, rename
	// tmp f. After it, f has new content, f~ has old content.
	m := NewMemFS()
	m.Create("f")
	m.WriteAt("f", 0, []byte("old"))
	m.Create("tmp")
	m.WriteAt("tmp", 0, []byte("new"))
	if err := m.Link("f", "f~"); err != nil {
		t.Fatal(err)
	}
	if err := m.Rename("tmp", "f"); err != nil {
		t.Fatal(err)
	}
	newData, _ := m.ReadFile("f")
	oldData, _ := m.ReadFile("f~")
	if !bytes.Equal(newData, []byte("new")) || !bytes.Equal(oldData, []byte("old")) {
		t.Fatalf("gedit pattern: f=%q f~=%q", newData, oldData)
	}
}

func TestMemFSRenameDirectory(t *testing.T) {
	m := NewMemFS()
	m.Mkdir("d1")
	m.Mkdir("d1/nested")
	m.Create("d1/a")
	m.Create("d1/nested/b")
	if err := m.Rename("d1", "d2"); err != nil {
		t.Fatalf("dir rename: %v", err)
	}
	for _, p := range []string{"d2/a", "d2/nested/b"} {
		if _, err := m.Stat(p); err != nil {
			t.Fatalf("after dir rename, %s missing: %v", p, err)
		}
	}
	if _, err := m.Stat("d1/a"); err == nil {
		t.Fatal("old path survives dir rename")
	}
}

func TestMemFSBypassAndFlip(t *testing.T) {
	m := NewMemFS()
	m.Create("f")
	m.WriteAt("f", 0, []byte{0x00, 0x00, 0x00})
	if err := m.FlipBit("f", 1); err != nil {
		t.Fatal(err)
	}
	got, _ := m.ReadFile("f")
	if got[1] != 0x01 {
		t.Fatalf("FlipBit result: %v", got)
	}
	if err := m.BypassWrite("f", 0, []byte{9, 9}); err != nil {
		t.Fatal(err)
	}
	got, _ = m.ReadFile("f")
	if got[0] != 9 || got[1] != 9 {
		t.Fatalf("BypassWrite result: %v", got)
	}
	if err := m.BypassWrite("f", 2, []byte{1, 1}); err == nil {
		t.Fatal("BypassWrite past EOF succeeded")
	}
	if err := m.FlipBit("f", 99); err == nil {
		t.Fatal("FlipBit past EOF succeeded")
	}
}

func TestMemFSTotalBytes(t *testing.T) {
	m := NewMemFS()
	m.Create("a")
	m.WriteAt("a", 0, make([]byte, 100))
	m.Create("b")
	m.WriteAt("b", 0, make([]byte, 50))
	if got := m.TotalBytes(); got != 150 {
		t.Fatalf("TotalBytes = %d, want 150", got)
	}
}

func TestObserverEventsAndOrder(t *testing.T) {
	o := NewObserverFS(NewMemFS())
	var events []Op
	o.Subscribe(ObserverFunc(func(op Op) { events = append(events, op) }))

	o.Create("f")
	o.WriteAt("f", 0, []byte("data"))
	o.Rename("f", "g")
	o.Unlink("g")

	kinds := []OpKind{OpCreate, OpWrite, OpRename, OpUnlink}
	if len(events) != len(kinds) {
		t.Fatalf("got %d events, want %d", len(events), len(kinds))
	}
	for i, k := range kinds {
		if events[i].Kind != k {
			t.Fatalf("event %d = %v, want %v", i, events[i].Kind, k)
		}
	}
	if events[2].Path != "f" || events[2].Dst != "g" {
		t.Fatalf("rename event paths: %+v", events[2])
	}
}

func TestObserverNoEventOnFailure(t *testing.T) {
	o := NewObserverFS(NewMemFS())
	n := 0
	o.Subscribe(ObserverFunc(func(op Op) { n++ }))
	if err := o.Unlink("missing"); err == nil {
		t.Fatal("unlink of missing file succeeded")
	}
	if n != 0 {
		t.Fatalf("failed op emitted %d events", n)
	}
}

func TestApplyDispatch(t *testing.T) {
	m := NewMemFS()
	ops := []Op{
		{Kind: OpMkdir, Path: "d"},
		{Kind: OpCreate, Path: "d/f"},
		{Kind: OpWrite, Path: "d/f", Off: 0, Data: []byte("xy")},
		{Kind: OpTruncate, Path: "d/f", Size: 1},
		{Kind: OpLink, Path: "d/f", Dst: "d/g"},
		{Kind: OpRename, Path: "d/g", Dst: "d/h"},
		{Kind: OpClose, Path: "d/f"},
		{Kind: OpFsync, Path: "d/f"},
		{Kind: OpUnlink, Path: "d/h"},
		{Kind: OpUnlink, Path: "d/f"},
		{Kind: OpRmdir, Path: "d"},
	}
	for i, op := range ops {
		if err := Apply(m, op); err != nil {
			t.Fatalf("Apply op %d (%v): %v", i, op, err)
		}
	}
	if err := Apply(m, Op{Kind: 200}); err == nil {
		t.Fatal("Apply accepted unknown op kind")
	}
}

func TestErrorsAreClassified(t *testing.T) {
	m := NewMemFS()
	if err := m.Unlink("nope"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("Unlink error = %v, want ErrNotExist", err)
	}
	m.Mkdir("d")
	if err := m.Mkdir("d"); !errors.Is(err, ErrExist) {
		t.Fatalf("Mkdir error = %v, want ErrExist", err)
	}
	m.Create("d/f")
	if err := m.Rmdir("d"); !errors.Is(err, ErrNotEmpty) {
		t.Fatalf("Rmdir error = %v, want ErrNotEmpty", err)
	}
}

func TestOpString(t *testing.T) {
	cases := map[string]Op{
		"write f off=3 len=2": {Kind: OpWrite, Path: "f", Off: 3, Data: []byte("ab")},
		"rename a b":          {Kind: OpRename, Path: "a", Dst: "b"},
		"truncate f 7":        {Kind: OpTruncate, Path: "f", Size: 7},
		"unlink f":            {Kind: OpUnlink, Path: "f"},
	}
	for want, op := range cases {
		if got := op.String(); got != want {
			t.Errorf("String = %q, want %q", got, want)
		}
	}
}

func BenchmarkMemFSWrite(b *testing.B) {
	m := NewMemFS()
	m.Create("f")
	data := make([]byte, 4096)
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		if err := m.WriteAt("f", int64(i%1024)*4096, data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkObserverOverhead(b *testing.B) {
	o := NewObserverFS(NewMemFS())
	o.Subscribe(ObserverFunc(func(op Op) {}))
	o.Create("f")
	data := make([]byte, 4096)
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		if err := o.WriteAt("f", int64(i%1024)*4096, data); err != nil {
			b.Fatal(err)
		}
	}
}

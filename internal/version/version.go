// Package version implements DeltaCFS's client-assigned version control
// (§III-C). Instead of round-tripping to the server for version numbers,
// each client stamps file versions from its own monotonic counter, prefixed
// with its client ID: <CliID, VerCnt>. Partial order is sufficient for cloud
// sync: the server only needs to check whether an incoming update's base
// version equals the file's current version, and reconcile with
// first-write-wins when it does not.
package version

import "fmt"

// ID is a version number <CliID, VerCnt>. The zero ID means "no version"
// (file does not exist yet / empty base).
type ID struct {
	Client uint32
	Count  uint64
}

// IsZero reports whether the ID is the "no version" value.
func (id ID) IsZero() bool { return id == ID{} }

func (id ID) String() string {
	if id.IsZero() {
		return "<none>"
	}
	return fmt.Sprintf("<%d,%d>", id.Client, id.Count)
}

// Counter issues monotonically increasing version IDs for one client.
type Counter struct {
	client uint32
	count  uint64
}

// NewCounter returns a counter for the given client ID. Client IDs must be
// distinct across clients of one cloud (assigned by the server at
// registration in the full system; by the harness in tests).
func NewCounter(client uint32) *Counter {
	return &Counter{client: client}
}

// Client returns the client ID the counter stamps.
func (c *Counter) Client() uint32 { return c.client }

// Next returns the next version ID.
func (c *Counter) Next() ID {
	c.count++
	return ID{Client: c.client, Count: c.count}
}

// Map tracks the current version of each path as known by one party
// (client or cloud).
type Map struct {
	current map[string]ID
}

// NewMap returns an empty version map.
func NewMap() *Map {
	return &Map{current: make(map[string]ID)}
}

// Get returns the current version of path (zero if unknown).
func (m *Map) Get(path string) ID { return m.current[path] }

// Set records the current version of path.
func (m *Map) Set(path string, id ID) {
	if id.IsZero() {
		delete(m.current, path)
		return
	}
	m.current[path] = id
}

// Rename moves the version from oldPath to newPath (replacing newPath's).
func (m *Map) Rename(oldPath, newPath string) {
	if v, ok := m.current[oldPath]; ok {
		m.current[newPath] = v
		delete(m.current, oldPath)
	} else {
		delete(m.current, newPath)
	}
}

// Delete forgets path.
func (m *Map) Delete(path string) { delete(m.current, path) }

// Len returns the number of tracked paths.
func (m *Map) Len() int { return len(m.current) }

// CheckBase reports whether an update whose base is base can be applied to a
// file currently at cur. A zero base matches a zero cur (file creation) and
// also matches any cur for idempotent full-content operations the caller
// chooses to allow; the strict rule used by the server is equality.
func CheckBase(cur, base ID) bool { return cur == base }

package version

import "testing"

func TestIDZero(t *testing.T) {
	var id ID
	if !id.IsZero() {
		t.Fatal("zero ID not IsZero")
	}
	if id.String() != "<none>" {
		t.Fatalf("zero String = %q", id.String())
	}
	id2 := ID{Client: 1, Count: 1}
	if id2.IsZero() {
		t.Fatal("non-zero ID IsZero")
	}
	if id2.String() != "<1,1>" {
		t.Fatalf("String = %q", id2.String())
	}
}

func TestCounterMonotonic(t *testing.T) {
	c := NewCounter(7)
	if c.Client() != 7 {
		t.Fatalf("Client = %d", c.Client())
	}
	prev := uint64(0)
	for i := 0; i < 100; i++ {
		id := c.Next()
		if id.Client != 7 || id.Count <= prev {
			t.Fatalf("Next = %v after count %d", id, prev)
		}
		prev = id.Count
	}
}

func TestCountersFromDifferentClientsDistinct(t *testing.T) {
	a := NewCounter(1)
	b := NewCounter(2)
	seen := make(map[ID]bool)
	for i := 0; i < 50; i++ {
		for _, id := range []ID{a.Next(), b.Next()} {
			if seen[id] {
				t.Fatalf("duplicate version ID %v", id)
			}
			seen[id] = true
		}
	}
}

func TestMapBasics(t *testing.T) {
	m := NewMap()
	if !m.Get("f").IsZero() {
		t.Fatal("empty map returned a version")
	}
	v1 := ID{Client: 1, Count: 1}
	m.Set("f", v1)
	if m.Get("f") != v1 {
		t.Fatalf("Get = %v", m.Get("f"))
	}
	m.Delete("f")
	if !m.Get("f").IsZero() {
		t.Fatal("Delete did not clear version")
	}
	m.Set("g", v1)
	m.Set("g", ID{}) // setting zero deletes
	if m.Len() != 0 {
		t.Fatalf("Len = %d, want 0", m.Len())
	}
}

func TestMapRename(t *testing.T) {
	m := NewMap()
	va := ID{Client: 1, Count: 5}
	vb := ID{Client: 2, Count: 9}
	m.Set("a", va)
	m.Set("b", vb)
	m.Rename("a", "b")
	if m.Get("b") != va || !m.Get("a").IsZero() {
		t.Fatalf("after rename: a=%v b=%v", m.Get("a"), m.Get("b"))
	}
	// Renaming an untracked path over a tracked one clears the target.
	m.Rename("ghost", "b")
	if !m.Get("b").IsZero() {
		t.Fatal("rename from untracked source left stale version")
	}
}

func TestCheckBase(t *testing.T) {
	v1 := ID{Client: 1, Count: 1}
	v2 := ID{Client: 1, Count: 2}
	if !CheckBase(v1, v1) {
		t.Fatal("matching base rejected")
	}
	if CheckBase(v1, v2) {
		t.Fatal("stale base accepted")
	}
	if !CheckBase(ID{}, ID{}) {
		t.Fatal("creation (zero/zero) rejected")
	}
	if CheckBase(v1, ID{}) {
		t.Fatal("zero base accepted against existing version")
	}
}

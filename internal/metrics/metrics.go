// Package metrics provides deterministic CPU-work and network-traffic
// accounting for the DeltaCFS reproduction.
//
// The paper reports client/server CPU consumption in "CPU ticks" measured on
// EC2 instances and a Galaxy Note3. A wall-clock measurement is not
// reproducible across machines, so every algorithm in this repository charges
// a CPUMeter for the work it actually performs (bytes rolled, bytes strong-
// hashed, bytes compared, bytes compressed, bytes copied, operations
// dispatched, messages exchanged). The cost constants live in costs.go;
// wall-clock numbers are additionally available from the testing.B benchmarks.
package metrics

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Platform selects the CPU cost scale.
type Platform int

const (
	// PC models the paper's EC2 m4.xlarge client/server.
	PC Platform = iota
	// Mobile models the paper's Samsung Galaxy Note3.
	Mobile
)

func (p Platform) String() string {
	switch p {
	case PC:
		return "pc"
	case Mobile:
		return "mobile"
	default:
		return fmt.Sprintf("platform(%d)", int(p))
	}
}

// factor returns the cost multiplier for the platform.
func (p Platform) factor() int64 {
	if p == Mobile {
		return MobileFactor
	}
	return 1
}

// CPUMeter accumulates deterministic CPU work in nano-ticks. It is safe for
// concurrent use. The zero value is a usable PC-platform meter.
type CPUMeter struct {
	nanoTicks atomic.Int64
	platform  Platform

	// Per-category breakdown, for ablation reporting.
	copyN     atomic.Int64
	compareN  atomic.Int64
	gearN     atomic.Int64
	rollingN  atomic.Int64
	strongN   atomic.Int64
	compressN atomic.Int64
	diskN     atomic.Int64
	netN      atomic.Int64
	fsOps     atomic.Int64
	rpcs      atomic.Int64
}

// NewCPUMeter returns a meter for the given platform.
func NewCPUMeter(p Platform) *CPUMeter {
	return &CPUMeter{platform: p}
}

// Platform reports the platform this meter models.
func (m *CPUMeter) Platform() Platform { return m.platform }

func (m *CPUMeter) charge(counter *atomic.Int64, n, perUnit int64) {
	if n <= 0 {
		return
	}
	counter.Add(n)
	m.nanoTicks.Add(n * perUnit * m.platform.factor())
}

// Copy charges for n bytes of plain byte copying or buffering.
func (m *CPUMeter) Copy(n int64) {
	if m == nil {
		return
	}
	m.charge(&m.copyN, n, CostCopy)
}

// Compare charges for n bytes of bitwise comparison.
func (m *CPUMeter) Compare(n int64) {
	if m == nil {
		return
	}
	m.charge(&m.compareN, n, CostCompare)
}

// GearHash charges for n bytes scanned by the CDC chunker.
func (m *CPUMeter) GearHash(n int64) {
	if m == nil {
		return
	}
	m.charge(&m.gearN, n, CostGearHash)
}

// RollingHash charges for n bytes covered by the rsync rolling checksum.
func (m *CPUMeter) RollingHash(n int64) {
	if m == nil {
		return
	}
	m.charge(&m.rollingN, n, CostRollingHash)
}

// StrongHash charges for n bytes fed to the strong (MD5) checksum.
func (m *CPUMeter) StrongHash(n int64) {
	if m == nil {
		return
	}
	m.charge(&m.strongN, n, CostStrongHash)
}

// Compress charges for n bytes run through network compression.
func (m *CPUMeter) Compress(n int64) {
	if m == nil {
		return
	}
	m.charge(&m.compressN, n, CostCompress)
}

// DiskIO charges for n bytes read from or written to the backing store by a
// sync engine (full-file rescans, undo-log writes, ...).
func (m *CPUMeter) DiskIO(n int64) {
	if m == nil {
		return
	}
	m.charge(&m.diskN, n, CostDiskIO)
}

// Net charges for n bytes serialized onto or parsed off the wire.
func (m *CPUMeter) Net(n int64) {
	if m == nil {
		return
	}
	m.charge(&m.netN, n, CostNet)
}

// FSOp charges per-operation VFS dispatch overhead for n operations.
func (m *CPUMeter) FSOp(n int64) {
	if m == nil {
		return
	}
	m.charge(&m.fsOps, n, CostFSOp)
}

// RPC charges per-message protocol overhead for n messages.
func (m *CPUMeter) RPC(n int64) {
	if m == nil {
		return
	}
	m.charge(&m.rpcs, n, CostRPC)
}

// NanoTicks returns the accumulated work in nano-ticks.
func (m *CPUMeter) NanoTicks() int64 {
	if m == nil {
		return 0
	}
	return m.nanoTicks.Load()
}

// Ticks returns the accumulated work in the paper's CPU-tick unit.
func (m *CPUMeter) Ticks() int64 { return m.NanoTicks() / NanoTicksPerTick }

// Reset zeroes all counters.
func (m *CPUMeter) Reset() {
	m.nanoTicks.Store(0)
	for _, c := range []*atomic.Int64{
		&m.copyN, &m.compareN, &m.gearN, &m.rollingN, &m.strongN,
		&m.compressN, &m.diskN, &m.netN, &m.fsOps, &m.rpcs,
	} {
		c.Store(0)
	}
}

// Breakdown reports the per-category byte/op counts, keyed by category name.
func (m *CPUMeter) Breakdown() map[string]int64 {
	return map[string]int64{
		"copy_bytes":     m.copyN.Load(),
		"compare_bytes":  m.compareN.Load(),
		"gear_bytes":     m.gearN.Load(),
		"rolling_bytes":  m.rollingN.Load(),
		"strong_bytes":   m.strongN.Load(),
		"compress_bytes": m.compressN.Load(),
		"disk_bytes":     m.diskN.Load(),
		"net_bytes":      m.netN.Load(),
		"fs_ops":         m.fsOps.Load(),
		"rpcs":           m.rpcs.Load(),
	}
}

// TrafficMeter accumulates network transfer totals, in bytes, as seen from
// one endpoint. It is safe for concurrent use. The zero value is ready to use.
type TrafficMeter struct {
	uploaded   atomic.Int64
	downloaded atomic.Int64
	messages   atomic.Int64
}

// Upload records n bytes sent.
func (t *TrafficMeter) Upload(n int64) {
	if t == nil || n <= 0 {
		return
	}
	t.uploaded.Add(n)
	t.messages.Add(1)
}

// Download records n bytes received.
func (t *TrafficMeter) Download(n int64) {
	if t == nil || n <= 0 {
		return
	}
	t.downloaded.Add(n)
	t.messages.Add(1)
}

// Uploaded returns total bytes sent.
func (t *TrafficMeter) Uploaded() int64 {
	if t == nil {
		return 0
	}
	return t.uploaded.Load()
}

// Downloaded returns total bytes received.
func (t *TrafficMeter) Downloaded() int64 {
	if t == nil {
		return 0
	}
	return t.downloaded.Load()
}

// Messages returns the number of recorded transfers.
func (t *TrafficMeter) Messages() int64 {
	if t == nil {
		return 0
	}
	return t.messages.Load()
}

// Reset zeroes the meter.
func (t *TrafficMeter) Reset() {
	t.uploaded.Store(0)
	t.downloaded.Store(0)
	t.messages.Store(0)
}

// SyncMeter counts fault-tolerance events on the sync path: transport
// retries, reconnects, server-side idempotency-dedup hits, and time spent in
// a non-Healthy engine state. One meter is typically shared by the resilient
// transport, the engine and the server of a single client↔cloud pair. It is
// safe for concurrent use and, like CPUMeter, nil-safe: every method on a
// nil meter is a no-op.
type SyncMeter struct {
	retries       atomic.Int64
	reconnects    atomic.Int64
	dedupHits     atomic.Int64
	degradedNanos   atomic.Int64
	outboxDrops     atomic.Int64
	outboxPeak      atomic.Int64
	outboxThrottles atomic.Int64
	degradedRejects atomic.Int64
}

// SyncStats is a snapshot of a SyncMeter, in report-friendly units.
type SyncStats struct {
	Retries         int64   `json:"retries"`
	Reconnects      int64   `json:"reconnects"`
	DedupHits       int64   `json:"dedup_hits"`
	DegradedSeconds float64 `json:"degraded_seconds"`
	// OutboxDrops counts forwarded batches the server evicted from bounded
	// per-client outboxes; OutboxPeak is the deepest per-client outbox
	// observed. Both are zero unless the server is wired to this meter.
	OutboxDrops int64 `json:"outbox_drops,omitempty"`
	OutboxPeak  int64 `json:"outbox_peak,omitempty"`
	// OutboxThrottles counts pushes answered with PushReply.Throttled —
	// backpressure signaled to the pusher because a peer's outbox was at
	// its bound.
	OutboxThrottles int64 `json:"outbox_throttles,omitempty"`
	// DegradedRejects counts pushes the server refused in read-only
	// degraded mode (storage failure: poisoned WAL or ENOSPC).
	DegradedRejects int64 `json:"degraded_rejects,omitempty"`
}

// Retry records one retried RPC attempt.
func (m *SyncMeter) Retry() {
	if m != nil {
		m.retries.Add(1)
	}
}

// Reconnect records one transport reconnection.
func (m *SyncMeter) Reconnect() {
	if m != nil {
		m.reconnects.Add(1)
	}
}

// DedupHit records one replayed batch absorbed by the server's reply cache.
func (m *SyncMeter) DedupHit() {
	if m != nil {
		m.dedupHits.Add(1)
	}
}

// OutboxDrop records n forwarded batches evicted from a bounded per-client
// outbox (a sharing client that stopped polling).
func (m *SyncMeter) OutboxDrop(n int64) {
	if m != nil && n > 0 {
		m.outboxDrops.Add(n)
	}
}

// OutboxThrottle records one push answered with a backpressure signal.
func (m *SyncMeter) OutboxThrottle() {
	if m != nil {
		m.outboxThrottles.Add(1)
	}
}

// DegradedReject records one push refused in read-only degraded mode.
func (m *SyncMeter) DegradedReject() {
	if m != nil {
		m.degradedRejects.Add(1)
	}
}

// DegradedRejects returns the degraded-mode refusal count.
func (m *SyncMeter) DegradedRejects() int64 {
	if m == nil {
		return 0
	}
	return m.degradedRejects.Load()
}

// OutboxThrottles returns the backpressure-signaled push count.
func (m *SyncMeter) OutboxThrottles() int64 {
	if m == nil {
		return 0
	}
	return m.outboxThrottles.Load()
}

// OutboxDepth records an observed per-client outbox depth, keeping the peak.
func (m *SyncMeter) OutboxDepth(d int64) {
	if m == nil {
		return
	}
	for {
		cur := m.outboxPeak.Load()
		if d <= cur || m.outboxPeak.CompareAndSwap(cur, d) {
			return
		}
	}
}

// OutboxDrops returns the evicted forwarded-batch count.
func (m *SyncMeter) OutboxDrops() int64 {
	if m == nil {
		return 0
	}
	return m.outboxDrops.Load()
}

// OutboxPeak returns the deepest per-client outbox observed.
func (m *SyncMeter) OutboxPeak() int64 {
	if m == nil {
		return 0
	}
	return m.outboxPeak.Load()
}

// AddDegraded accumulates time spent outside the Healthy state (logical or
// wall clock, per the caller's time base).
func (m *SyncMeter) AddDegraded(d time.Duration) {
	if m != nil && d > 0 {
		m.degradedNanos.Add(int64(d))
	}
}

// Retries returns the retried-attempt count.
func (m *SyncMeter) Retries() int64 {
	if m == nil {
		return 0
	}
	return m.retries.Load()
}

// Reconnects returns the reconnection count.
func (m *SyncMeter) Reconnects() int64 {
	if m == nil {
		return 0
	}
	return m.reconnects.Load()
}

// DedupHits returns the reply-cache hit count.
func (m *SyncMeter) DedupHits() int64 {
	if m == nil {
		return 0
	}
	return m.dedupHits.Load()
}

// Degraded returns the accumulated non-Healthy time.
func (m *SyncMeter) Degraded() time.Duration {
	if m == nil {
		return 0
	}
	return time.Duration(m.degradedNanos.Load())
}

// Snapshot returns the meter's current values.
func (m *SyncMeter) Snapshot() SyncStats {
	if m == nil {
		return SyncStats{}
	}
	return SyncStats{
		Retries:         m.retries.Load(),
		Reconnects:      m.reconnects.Load(),
		DedupHits:       m.dedupHits.Load(),
		DegradedSeconds: m.Degraded().Seconds(),
		OutboxDrops:     m.outboxDrops.Load(),
		OutboxPeak:      m.outboxPeak.Load(),
		OutboxThrottles: m.outboxThrottles.Load(),
		DegradedRejects: m.degradedRejects.Load(),
	}
}

// TUE (Traffic Usage Efficiency, from Li et al. [2]) is total sync traffic
// divided by the size of the actual data update. Values near 1 are efficient;
// large values indicate traffic overuse. Returns 0 when updateBytes is 0.
func TUE(trafficBytes, updateBytes int64) float64 {
	if updateBytes <= 0 {
		return 0
	}
	return float64(trafficBytes) / float64(updateBytes)
}

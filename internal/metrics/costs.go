package metrics

// Work-unit cost constants, expressed in nano-ticks per byte (or per
// operation where noted). A "tick" — the unit reported by the paper's Table
// II — is NanoTicksPerTick nano-ticks. The constants are calibrated so the
// relative magnitudes of the per-byte costs match what the corresponding
// algorithms cost on commodity hardware: a plain memory copy is the cheapest,
// a rolling (Adler-style) checksum costs a few ALU ops per byte, MD5 costs
// several times that, and compression is the most expensive per-byte pass.
//
// Absolute tick totals in this reproduction are not meant to equal the
// paper's EC2 measurements; the tick scale is chosen so totals land in the
// same order of magnitude, and EXPERIMENTS.md records measured-vs-paper for
// every cell.
const (
	// CostCopy is charged per byte memcpy'd or buffered (e.g. intercepting a
	// write payload, journaling undo data, staging upload bytes).
	CostCopy = 1
	// CostCompare is charged per byte of bitwise comparison (DeltaCFS's
	// local-rsync optimization that replaces the strong checksum).
	CostCompare = 1
	// CostRollingHash is charged per byte covered by the rsync rolling
	// checksum, including per-byte rolls (a few adds per byte).
	CostRollingHash = 2
	// CostGearHash is charged per byte scanned by the content-defined
	// chunker (Seafile/LBFS style): multiply+add+shift+table lookup.
	CostGearHash = 3
	// CostStrongHash is charged per byte fed to MD5.
	CostStrongHash = 8
	// CostCompress is charged per byte run through DEFLATE-class
	// compression (Dropbox's network compression).
	CostCompress = 12
	// CostDiskIO is charged per byte read from or written to the backing
	// store by a sync engine (e.g. a delta-sync engine re-scanning a file);
	// DMA moves the bytes, but the kernel still walks pages.
	CostDiskIO = 1
	// CostNet is charged per byte serialized onto or parsed off the wire,
	// covering framing, encryption, and kernel crossings.
	CostNet = 2

	// CostFSOp is charged per intercepted file operation (per-op VFS/FUSE
	// dispatch overhead), in nano-ticks per operation.
	CostFSOp = 20_000
	// CostRPC is charged per client/server message (syscall + protocol
	// handling), in nano-ticks per message.
	CostRPC = 100_000
)

// NanoTicksPerTick converts accumulated nano-ticks into the "CPU tick" unit
// used by the paper's Table II. With CostCopy = 1 nano-tick/byte, one tick
// corresponds to roughly 1 MB of plain byte copying.
const NanoTicksPerTick = 1_000_000

// MobileFactor scales all CPU costs when the meter models a wimpy mobile SoC
// (the paper's Galaxy Note3 rows). The paper notes mobile ticks are not
// directly comparable to PC ticks; a single multiplier captures the slower,
// throttled core.
const MobileFactor = 14

package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestCPUMeterZeroValue(t *testing.T) {
	var m CPUMeter
	if m.Ticks() != 0 {
		t.Fatalf("zero meter Ticks = %d, want 0", m.Ticks())
	}
	if m.Platform() != PC {
		t.Fatalf("zero meter platform = %v, want PC", m.Platform())
	}
	m.Copy(1000)
	if got := m.NanoTicks(); got != 1000*CostCopy {
		t.Fatalf("NanoTicks = %d, want %d", got, 1000*CostCopy)
	}
}

func TestCPUMeterNilSafe(t *testing.T) {
	var m *CPUMeter
	m.Copy(100)
	m.StrongHash(100)
	if m.NanoTicks() != 0 {
		t.Fatal("nil meter should report 0")
	}
}

func TestCPUMeterCostOrdering(t *testing.T) {
	// The relative per-byte costs must preserve the ordering the design
	// relies on: copy <= compare < rolling <= gear < strong < compress.
	if !(CostCopy <= CostCompare && CostCompare < CostRollingHash &&
		CostRollingHash <= CostGearHash && CostGearHash < CostStrongHash &&
		CostStrongHash < CostCompress) {
		t.Fatal("cost constants violate the intended ordering")
	}
}

func TestCPUMeterMobileFactor(t *testing.T) {
	pc := NewCPUMeter(PC)
	mob := NewCPUMeter(Mobile)
	pc.RollingHash(1 << 20)
	mob.RollingHash(1 << 20)
	if mob.NanoTicks() != MobileFactor*pc.NanoTicks() {
		t.Fatalf("mobile = %d, pc = %d, want factor %d",
			mob.NanoTicks(), pc.NanoTicks(), MobileFactor)
	}
}

func TestCPUMeterTicksConversion(t *testing.T) {
	m := NewCPUMeter(PC)
	m.Copy(NanoTicksPerTick) // exactly one tick of copy work
	if got := m.Ticks(); got != 1 {
		t.Fatalf("Ticks = %d, want 1", got)
	}
}

func TestCPUMeterNegativeIgnored(t *testing.T) {
	m := NewCPUMeter(PC)
	m.Copy(-5)
	m.Net(0)
	if m.NanoTicks() != 0 {
		t.Fatalf("negative/zero charges should be ignored, got %d", m.NanoTicks())
	}
}

func TestCPUMeterBreakdownAndReset(t *testing.T) {
	m := NewCPUMeter(PC)
	m.Copy(10)
	m.StrongHash(20)
	m.FSOp(3)
	b := m.Breakdown()
	if b["copy_bytes"] != 10 || b["strong_bytes"] != 20 || b["fs_ops"] != 3 {
		t.Fatalf("unexpected breakdown: %v", b)
	}
	m.Reset()
	if m.NanoTicks() != 0 || m.Breakdown()["copy_bytes"] != 0 {
		t.Fatal("Reset did not clear counters")
	}
}

func TestCPUMeterConcurrent(t *testing.T) {
	m := NewCPUMeter(PC)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				m.Copy(1)
			}
		}()
	}
	wg.Wait()
	if got := m.Breakdown()["copy_bytes"]; got != 8000 {
		t.Fatalf("concurrent copy bytes = %d, want 8000", got)
	}
}

func TestTrafficMeter(t *testing.T) {
	var tm TrafficMeter
	tm.Upload(100)
	tm.Upload(50)
	tm.Download(30)
	if tm.Uploaded() != 150 {
		t.Fatalf("Uploaded = %d, want 150", tm.Uploaded())
	}
	if tm.Downloaded() != 30 {
		t.Fatalf("Downloaded = %d, want 30", tm.Downloaded())
	}
	if tm.Messages() != 3 {
		t.Fatalf("Messages = %d, want 3", tm.Messages())
	}
	tm.Reset()
	if tm.Uploaded() != 0 || tm.Downloaded() != 0 || tm.Messages() != 0 {
		t.Fatal("Reset did not clear traffic meter")
	}
}

func TestTrafficMeterNilSafe(t *testing.T) {
	var tm *TrafficMeter
	tm.Upload(10)
	tm.Download(10)
	if tm.Uploaded() != 0 || tm.Downloaded() != 0 || tm.Messages() != 0 {
		t.Fatal("nil traffic meter should report 0")
	}
}

func TestTUE(t *testing.T) {
	if got := TUE(200, 100); got != 2.0 {
		t.Fatalf("TUE = %v, want 2.0", got)
	}
	if got := TUE(100, 0); got != 0 {
		t.Fatalf("TUE with zero update = %v, want 0", got)
	}
}

func TestPlatformString(t *testing.T) {
	if PC.String() != "pc" || Mobile.String() != "mobile" {
		t.Fatal("unexpected Platform.String values")
	}
	if Platform(99).String() != "platform(99)" {
		t.Fatalf("unexpected unknown platform string: %s", Platform(99))
	}
}

func TestSyncMeter(t *testing.T) {
	var m *SyncMeter
	// nil meter: all no-ops, zero reads.
	m.Retry()
	m.Reconnect()
	m.DedupHit()
	m.AddDegraded(time.Second)
	if m.Retries() != 0 || m.Degraded() != 0 || (m.Snapshot() != SyncStats{}) {
		t.Fatal("nil SyncMeter not inert")
	}

	m = &SyncMeter{}
	m.Retry()
	m.Retry()
	m.Reconnect()
	m.DedupHit()
	m.AddDegraded(1500 * time.Millisecond)
	m.AddDegraded(-time.Second) // negative durations ignored
	s := m.Snapshot()
	if s.Retries != 2 || s.Reconnects != 1 || s.DedupHits != 1 {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.DegradedSeconds != 1.5 || m.Degraded() != 1500*time.Millisecond {
		t.Fatalf("degraded = %v (%v s)", m.Degraded(), s.DegradedSeconds)
	}
}

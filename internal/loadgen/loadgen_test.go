package loadgen

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/wire"
)

// TestMain doubles as the worker-subprocess entry point: a split load run
// re-invokes this binary with the worker argument, exactly as cmd/benchall
// does.
func TestMain(m *testing.M) {
	if len(os.Args) > 1 && os.Args[1] == "__loadworker" {
		if err := WorkerMain(os.Stdin, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// In-process smoke: a small sharing-group herd over real TCP converges,
// every connection takes the poller path (on Linux), and the goroutine
// sample stays far below one-per-client.
func TestRunInProcess(t *testing.T) {
	res, err := Run(Config{Clients: 48, GroupSize: 4, OpsPerClient: 6})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Errors != 0 || res.Mismatches != 0 {
		t.Fatalf("run did not converge: %+v", res)
	}
	if res.PeakConns != 48 {
		t.Fatalf("PeakConns = %d, want 48", res.PeakConns)
	}
	if res.WorkerProcs != 0 {
		t.Fatalf("WorkerProcs = %d, want 0 (in-process)", res.WorkerProcs)
	}
	if res.Ops != 48*6 || res.OpsPerSec <= 0 || res.P99Micros < res.P50Micros {
		t.Fatalf("implausible measurements: %+v", res)
	}
}

// The journal integration: a journaled run counts fsyncs and still
// converges.
func TestRunJournaled(t *testing.T) {
	res, err := Run(Config{
		Clients: 8, OpsPerClient: 4,
		JournalDir: t.TempDir(), CommitWindow: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("journaled run did not converge: %+v", res)
	}
	if res.Fsyncs == 0 {
		t.Fatal("journaled run recorded no fsyncs")
	}
}

// The worker protocol end to end over pipes (no subprocess): WorkerMain
// stages its herd against a live server, reports ready, waits for the go
// token, and returns a result — the exact exchange runViaWorkers drives.
func TestWorkerMainProtocol(t *testing.T) {
	srv := server.New(nil)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go wire.ServeWith(lis, srv, wire.ServeConfig{})

	inR, inW := io.Pipe()
	outR, outW := io.Pipe()
	errc := make(chan error, 1)
	go func() { errc <- WorkerMain(inR, outW) }()

	enc := json.NewEncoder(inW)
	if err := enc.Encode(&workerConfig{
		Addr: lis.Addr().String(), BaseIndex: 100,
		Clients: 6, GroupSize: 3, OpsPerClient: 4,
		PayloadBytes: 64, DialParallel: 4, PollEvery: 2,
	}); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(outR)
	line, err := br.ReadString('\n')
	if err != nil || line != workerReady+"\n" {
		t.Fatalf("ready line = %q, %v", line, err)
	}
	if err := enc.Encode(workerGo); err != nil {
		t.Fatal(err)
	}
	var wr workerResult
	if err := json.NewDecoder(br).Decode(&wr); err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err != nil {
		t.Fatalf("WorkerMain: %v", err)
	}
	if wr.Errors != 0 || wr.Mismatches != 0 {
		t.Fatalf("worker herd failed: %+v", wr)
	}
	if len(wr.LatsMicros) != 6*4 {
		t.Fatalf("got %d latencies, want %d", len(wr.LatsMicros), 6*4)
	}
}

// A split run through real worker subprocesses: force the split path, then
// verify the aggregated result still converges and reports the worker
// count.
func TestRunViaWorkerSubprocess(t *testing.T) {
	forceSplit = true
	defer func() { forceSplit = false }()
	res, err := Run(Config{
		Clients: 24, GroupSize: 4, OpsPerClient: 4,
		WorkerCmd: []string{os.Args[0], "__loadworker"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Errors != 0 {
		t.Fatalf("split run did not converge: %+v", res)
	}
	if res.WorkerProcs < 1 {
		t.Fatalf("WorkerProcs = %d, want >= 1", res.WorkerProcs)
	}
	if res.PeakConns != 24 {
		t.Fatalf("PeakConns = %d, want 24", res.PeakConns)
	}
}

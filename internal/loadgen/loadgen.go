// Package loadgen drives thousands of cheap simulated sync clients against
// a real TCP server.Server — the measurement half of the 10k-client scaling
// work. Each client is one goroutine holding one TCP connection: it
// registers into a sharing group, pushes keyed full-file batches over its
// own path universe, reacts to PushReply.Throttled backpressure by draining
// its poll queue, and finally verifies its files round-tripped (the
// convergence oracle). The server side runs the production stack: striped
// file state, striped applied log, bounded worker/accept transport, and
// (optionally) the push journal, so the harness measures exactly what
// cmd/deltacfs-server ships.
//
// A loopback connection costs two descriptors in one process — both ends —
// so a 10k-client run cannot fit a typical 20k fd limit in-process. When
// the budget is tight and the caller provides WorkerCmd, the client herd
// moves to worker subprocesses (worker.go): the server and its descriptors
// stay here, each worker holds only its clients' ends, and the goroutine
// sample at connection peak becomes a pure server-side number.
//
// The interesting numbers are throughput (ops/sec), client-observed push
// latency (p50/p99), journal fsyncs (durability amplification), throttle
// and outbox-drop counts (backpressure behavior), and the transport's
// polled-vs-fallback connection split — polled connections hold no server
// goroutine, which is the boundedness claim made concrete.
package loadgen

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"os/exec"
	"runtime"
	"sort"
	"time"

	"repro/internal/server"
	"repro/internal/wire"
)

// Config parameterizes one load run.
type Config struct {
	// Clients is the number of concurrent TCP clients.
	Clients int
	// GroupSize is how many clients share each sharing group (1 = isolated
	// tenants, no forwarding; >1 exercises forwarding and backpressure).
	GroupSize int
	// OpsPerClient is how many pushes each client performs (min 2).
	OpsPerClient int
	// PayloadBytes sizes each pushed file payload (default 256).
	PayloadBytes int
	// AppliedStripes configures the server's applied-op log (0 = default
	// striping; 1 = the historical global-appliedMu baseline).
	AppliedStripes int
	// Shards configures the server's file-state striping (0 = default).
	Shards int
	// Workers sizes the transport worker pool (0 = auto).
	Workers int
	// JournalDir, when non-empty, wires a push journal rooted there.
	JournalDir string
	// CommitWindow is the journal's group-commit window (with JournalDir).
	CommitWindow time.Duration
	// DialParallel bounds concurrent connection establishment (default 256).
	DialParallel int
	// PollEvery drains a client's forward queue every N pushes when its
	// group shares (default 16).
	PollEvery int
	// WorkerCmd, when non-empty, is the argv prefix that re-invokes this
	// program as a load worker (WorkerMain). Required for client counts
	// whose descriptors cannot fit in-process.
	WorkerCmd []string
	// Codec selects the clients' wire codec (CodecAuto negotiates binary
	// with a fallback to gob; CodecGob forces the legacy path — the
	// loadsweep's gob-vs-binary dimension).
	Codec wire.Codec
}

// Result is one load run's measurements.
type Result struct {
	Clients      int `json:"clients"`
	GroupSize    int `json:"group_size"`
	OpsPerClient int `json:"ops_per_client"`
	Ops          int `json:"ops"`

	// Codec is the wire codec the clients actually negotiated ("binary" or
	// "gob"), as reported by the herd — not merely what was requested.
	Codec string `json:"codec"`

	OpsPerSec float64 `json:"ops_per_sec"`
	P50Micros float64 `json:"p50_micros"`
	P99Micros float64 `json:"p99_micros"`

	// Throttles counts pushes whose reply carried the backpressure signal.
	Throttles int64 `json:"throttles"`
	// OutboxDrops counts forwarded batches the server evicted.
	OutboxDrops int64 `json:"outbox_drops"`

	// Fsyncs and SyncCoalesced are the journal's durability counters (zero
	// without a journal).
	Fsyncs        int64 `json:"fsyncs"`
	SyncCoalesced int64 `json:"sync_coalesced"`

	// PeakConns is the highest concurrent TCP connection count the server
	// observed; PolledConns of those were multiplexed (no goroutine each),
	// FallbackConns got a dedicated goroutine.
	PeakConns     int64 `json:"peak_conns"`
	PolledConns   int64 `json:"polled_conns"`
	FallbackConns int64 `json:"fallback_conns"`
	Requests      int64 `json:"requests"`

	// GoroutinesAtPeak samples runtime.NumGoroutine with every client
	// connected and idle, before any op goroutine starts — so it measures
	// what N connections cost the server in goroutines (with worker
	// subprocesses it is a pure server-side number). Bounded transport
	// keeps this flat in N; goroutine-per-connection would make it ≥N.
	GoroutinesAtPeak int `json:"goroutines_at_peak"`
	// WorkerProcs is how many client subprocesses drove the load (0 =
	// in-process).
	WorkerProcs int `json:"worker_procs"`

	Errors           int  `json:"errors"`
	Mismatches       int  `json:"mismatches"`
	DuplicateApplies int  `json:"duplicate_applies"`
	Converged        bool `json:"converged"`
}

// fdSlack is the descriptor headroom reserved for everything that is not a
// load connection (listener, journal, runtime, stdio).
const fdSlack = 512

// forceSplit makes Run take the worker-subprocess path regardless of the
// descriptor budget (test hook; real runs split only when they must).
var forceSplit = false

// Run executes one load run and returns its measurements.
func Run(cfg Config) (*Result, error) {
	if cfg.Clients <= 0 {
		return nil, fmt.Errorf("loadgen: need at least 1 client")
	}
	if cfg.GroupSize <= 0 {
		cfg.GroupSize = 1
	}
	if cfg.OpsPerClient < 2 {
		cfg.OpsPerClient = 2
	}
	if cfg.PayloadBytes <= 0 {
		cfg.PayloadBytes = 256
	}
	if cfg.DialParallel <= 0 {
		cfg.DialParallel = 256
	}
	if cfg.PollEvery <= 0 {
		cfg.PollEvery = 16
	}

	// Fit the descriptor budget: in-process needs both ends of every
	// connection; with workers this process only holds the server ends.
	limit, err := fdLimit(uint64(2*cfg.Clients + fdSlack))
	if err != nil {
		return nil, fmt.Errorf("loadgen: fd limit: %w", err)
	}
	inProc := !forceSplit && uint64(2*cfg.Clients+fdSlack) <= limit
	if !inProc {
		if uint64(cfg.Clients+fdSlack) > limit {
			return nil, fmt.Errorf("loadgen: %d clients exceed the %d fd limit even split across processes", cfg.Clients, limit)
		}
		if len(cfg.WorkerCmd) == 0 {
			return nil, fmt.Errorf("loadgen: %d clients need worker subprocesses (2×%d+%d fds > limit %d) but no WorkerCmd is configured",
				cfg.Clients, cfg.Clients, fdSlack, limit)
		}
	}

	// Level the field between back-to-back runs in one process: collect the
	// previous run's garbage now instead of during this run's timed window.
	runtime.GC()

	srv := server.NewWithOptions(nil, server.Options{
		Shards:         cfg.Shards,
		AppliedStripes: cfg.AppliedStripes,
	})
	var journal *server.Journal
	if cfg.JournalDir != "" {
		j, err := server.OpenJournal(cfg.JournalDir, cfg.CommitWindow)
		if err != nil {
			return nil, err
		}
		defer j.Close()
		srv.SetJournal(j)
		journal = j
	}

	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer lis.Close()
	stats := &wire.ServeStats{}
	go wire.ServeWith(lis, srv, wire.ServeConfig{Workers: cfg.Workers, Stats: stats})

	res := &Result{Clients: cfg.Clients, GroupSize: cfg.GroupSize, OpsPerClient: cfg.OpsPerClient,
		Ops: cfg.Clients * cfg.OpsPerClient}

	wc := workerConfig{
		Addr:         lis.Addr().String(),
		Clients:      cfg.Clients,
		GroupSize:    cfg.GroupSize,
		OpsPerClient: cfg.OpsPerClient,
		PayloadBytes: cfg.PayloadBytes,
		DialParallel: cfg.DialParallel,
		PollEvery:    cfg.PollEvery,
		Codec:        string(cfg.Codec),
	}

	// Throughput is computed over the ops phase only — each herd times its
	// own window from release to its last client's final push, so neither
	// the convergence fetch-back nor worker IPC pollutes the number.
	var wr workerResult
	if inProc {
		herd, err := stageClients(wc)
		if err != nil {
			return nil, err
		}
		res.GoroutinesAtPeak = runtime.NumGoroutine()
		wr = herd.run()
	} else {
		wr, res.GoroutinesAtPeak, err = runViaWorkers(cfg, wc)
		if err != nil {
			return nil, err
		}
		res.WorkerProcs = workerProcs(cfg, limit)
	}

	elapsed := time.Duration(wr.OpsElapsedMicros) * time.Microsecond
	if elapsed <= 0 {
		elapsed = time.Microsecond
	}
	res.OpsPerSec = float64(res.Ops) / elapsed.Seconds()
	lats := make([]time.Duration, len(wr.LatsMicros))
	for i, m := range wr.LatsMicros {
		lats[i] = time.Duration(m * float64(time.Microsecond))
	}
	res.P50Micros = percentileMicros(lats, 0.50)
	res.P99Micros = percentileMicros(lats, 0.99)
	res.Codec = wr.Codec
	res.Throttles = wr.Throttles
	res.Errors = int(wr.Errors)
	res.Mismatches = int(wr.Mismatches)
	ob := srv.OutboxStats()
	res.OutboxDrops = ob.Drops
	if journal != nil {
		res.Fsyncs = journal.Fsyncs()
		res.SyncCoalesced = journal.SyncCoalesced()
	}
	res.PeakConns = stats.PeakConns()
	res.PolledConns = stats.Polled()
	res.FallbackConns = stats.Fallback()
	res.Requests = stats.Requests()
	res.DuplicateApplies = srv.DuplicateApplies()
	res.Converged = res.Mismatches == 0 && res.Errors == 0 && res.DuplicateApplies == 0
	return res, nil
}

// workerProcs is how many subprocesses a split run uses: as few as fit the
// per-process descriptor budget.
func workerProcs(cfg Config, limit uint64) int {
	per := int(limit) - fdSlack
	n := (cfg.Clients + per - 1) / per
	if n < 1 {
		n = 1
	}
	return n
}

// runViaWorkers drives the client herd from subprocesses: each worker dials
// its slice of clients, reports ready, and starts pushing when every worker
// is staged — the same barrier the in-process path uses. The merged result's
// OpsElapsedMicros is the slowest worker's own ops window (workers release
// within the time it takes to write the go tokens, well under a millisecond).
func runViaWorkers(cfg Config, wc workerConfig) (workerResult, int, error) {
	limit, _ := fdLimit(0)
	procs := workerProcs(cfg, limit)
	per := (cfg.Clients + procs - 1) / procs

	type workerProc struct {
		cmd *exec.Cmd
		in  *json.Encoder
		out *bufio.Reader
	}
	var workers []*workerProc
	kill := func() {
		for _, w := range workers {
			w.cmd.Process.Kill()
			w.cmd.Wait()
		}
	}
	base := 0
	for p := 0; p < procs && base < cfg.Clients; p++ {
		n := per
		if base+n > cfg.Clients {
			n = cfg.Clients - base
		}
		sub := wc
		sub.BaseIndex = base
		sub.Clients = n
		base += n
		cmd := exec.Command(cfg.WorkerCmd[0], cfg.WorkerCmd[1:]...)
		stdin, err := cmd.StdinPipe()
		if err != nil {
			kill()
			return workerResult{}, 0, err
		}
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			kill()
			return workerResult{}, 0, err
		}
		cmd.Stderr = nil
		if err := cmd.Start(); err != nil {
			kill()
			return workerResult{}, 0, fmt.Errorf("loadgen: start worker: %w", err)
		}
		w := &workerProc{cmd: cmd, in: json.NewEncoder(stdin), out: bufio.NewReader(stdout)}
		workers = append(workers, w)
		if err := w.in.Encode(&sub); err != nil {
			kill()
			return workerResult{}, 0, fmt.Errorf("loadgen: worker config: %w", err)
		}
	}

	// Barrier 1: every worker has all its clients connected and staged.
	for _, w := range workers {
		line, err := w.out.ReadString('\n')
		if err != nil || line != workerReady+"\n" {
			kill()
			return workerResult{}, 0, fmt.Errorf("loadgen: worker failed while staging: %q, %v", line, err)
		}
	}
	goroutines := runtime.NumGoroutine()

	// Barrier 2: release the herd everywhere at once.
	for _, w := range workers {
		if err := w.in.Encode(workerGo); err != nil {
			kill()
			return workerResult{}, 0, err
		}
	}
	var total workerResult
	for _, w := range workers {
		var wr workerResult
		if err := json.NewDecoder(w.out).Decode(&wr); err != nil {
			kill()
			return workerResult{}, 0, fmt.Errorf("loadgen: worker result: %w", err)
		}
		total.LatsMicros = append(total.LatsMicros, wr.LatsMicros...)
		total.Throttles += wr.Throttles
		total.Errors += wr.Errors
		total.Mismatches += wr.Mismatches
		if wr.Codec != "" {
			total.Codec = wr.Codec
		}
		if wr.OpsElapsedMicros > total.OpsElapsedMicros {
			total.OpsElapsedMicros = wr.OpsElapsedMicros
		}
	}
	for _, w := range workers {
		w.cmd.Wait()
	}
	return total, goroutines, nil
}

func percentileMicros(lats []time.Duration, p float64) float64 {
	if len(lats) == 0 {
		return 0
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	idx := int(p * float64(len(lats)-1))
	return float64(lats[idx]) / float64(time.Microsecond)
}

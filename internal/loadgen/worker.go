package loadgen

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/version"
	"repro/internal/wire"
)

// workerConfig is one client herd's share of a load run. In-process runs
// use it directly; split runs serialize it to each worker subprocess over
// stdin.
type workerConfig struct {
	Addr string
	// BaseIndex is the global index of this herd's first client; client
	// identity (paths, sharing group) is derived from the global index so a
	// split run produces the same workload as an in-process one.
	BaseIndex    int
	Clients      int
	GroupSize    int
	OpsPerClient int
	PayloadBytes int
	DialParallel int
	PollEvery    int
	// Codec is the requested wire codec (a wire.Codec value; "" = auto).
	Codec string
}

// workerResult is one herd's share of the measurements.
type workerResult struct {
	LatsMicros []float64
	Throttles  int64
	Errors     int64
	Mismatches int64
	// Codec is the codec the herd's connections negotiated.
	Codec string
	// OpsElapsedMicros is the herd's own ops-phase wall time: from the go
	// signal to its last client finishing its pushes. The convergence
	// fetch-back phase runs after the clock stops, so verification cost
	// never pollutes the throughput number.
	OpsElapsedMicros int64
}

// workerReady is the line a staged worker prints; workerGo is the token
// that releases it.
const (
	workerReady = "LOADGEN_READY"
	workerGo    = "LOADGEN_GO"
)

// WorkerMain is the entry point for a load worker subprocess: it reads a
// JSON herd config from stdin, connects every client, reports readiness on
// stdout, waits for the go token, runs the herd, and writes a JSON result.
// Programs that call loadgen with WorkerCmd must route that argv back here.
func WorkerMain(stdin io.Reader, stdout io.Writer) error {
	dec := json.NewDecoder(stdin)
	var wc workerConfig
	if err := dec.Decode(&wc); err != nil {
		return fmt.Errorf("loadgen worker: config: %w", err)
	}
	// Best-effort: one descriptor per client plus slack.
	if _, err := fdLimit(uint64(wc.Clients + fdSlack)); err != nil {
		return fmt.Errorf("loadgen worker: fd limit: %w", err)
	}
	h, err := stageClients(wc)
	if err != nil {
		return fmt.Errorf("loadgen worker: stage: %w", err)
	}
	if _, err := fmt.Fprintln(stdout, workerReady); err != nil {
		return err
	}
	var tok string
	if err := dec.Decode(&tok); err != nil || tok != workerGo {
		return fmt.Errorf("loadgen worker: expected go token, got %q (%v)", tok, err)
	}
	wr := h.run()
	return json.NewEncoder(stdout).Encode(&wr)
}

// herd is a set of staged (connected, idle) clients ready to run.
type herd struct {
	wc    workerConfig
	conns []*wire.NetClient
	// states carries each client's final versions/content from the ops
	// phase into the verification phase.
	states []clientState
}

// clientState is what a client remembers about its own writes: the last
// version and content pushed per path, checked by fetch-back after the
// timed window closes.
type clientState struct {
	paths []string
	vers  []version.ID
	last  [][]byte
}

// groupOf maps a global client index to its 1-based sharing group. Group
// IDs start at 1 so the harness never lands in the server's default group
// 0, which any untagged client would share.
func (wc workerConfig) groupOf(global int) uint32 {
	return uint32(global/wc.GroupSize) + 1
}

// stageClients connects every client in the herd (dial concurrency bounded
// by DialParallel) and registers each into its sharing group. The herd is
// returned fully connected but idle, so the caller can sample
// connection-peak state before any load starts.
func stageClients(wc workerConfig) (*herd, error) {
	h := &herd{
		wc:     wc,
		conns:  make([]*wire.NetClient, wc.Clients),
		states: make([]clientState, wc.Clients),
	}
	sem := make(chan struct{}, wc.DialParallel)
	var wg sync.WaitGroup
	var firstErr atomic.Pointer[error]
	for i := 0; i < wc.Clients; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			nc, err := wire.DialWith(wc.Addr, wire.DialOpts{
				Group:     wc.groupOf(wc.BaseIndex + i),
				OpTimeout: 2 * time.Minute,
				HardClose: true,
				Codec:     wire.Codec(wc.Codec),
			})
			if err != nil {
				err = fmt.Errorf("client %d: %w", wc.BaseIndex+i, err)
				firstErr.CompareAndSwap(nil, &err)
				return
			}
			h.conns[i] = nc
		}(i)
	}
	wg.Wait()
	if p := firstErr.Load(); p != nil {
		for _, nc := range h.conns {
			if nc != nil {
				nc.Close()
			}
		}
		return nil, *p
	}
	return h, nil
}

// pathsPerClient is each client's private path universe: small enough that
// repeated ops exercise version chains, large enough to spread across
// shards.
const pathsPerClient = 2

// run executes the herd in two waves — the timed ops phase, then the
// untimed convergence verification — and closes every connection before
// returning.
func (h *herd) run() workerResult {
	results := make([]workerResult, len(h.conns))
	var wg sync.WaitGroup
	start := time.Now()
	for i := range h.conns {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = h.runOps(i)
		}(i)
	}
	wg.Wait()
	opsElapsed := time.Since(start)
	for i := range h.conns {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer h.conns[i].Close()
			if results[i].Errors == 0 {
				h.verifyClient(i, &results[i])
			}
		}(i)
	}
	wg.Wait()
	var total workerResult
	for _, r := range results {
		total.LatsMicros = append(total.LatsMicros, r.LatsMicros...)
		total.Throttles += r.Throttles
		total.Errors += r.Errors
		total.Mismatches += r.Mismatches
	}
	total.OpsElapsedMicros = opsElapsed.Microseconds()
	if len(h.conns) > 0 {
		total.Codec = h.conns[0].Codec()
	}
	return total
}

// runOps is one client's timed life: OpsPerClient keyed full-file pushes
// over its private paths with throttle-aware polling. Final per-path
// versions/content land in h.states[i] for the verification phase.
func (h *herd) runOps(i int) workerResult {
	wc := h.wc
	nc := h.conns[i]
	global := wc.BaseIndex + i
	id, _ := nc.Register()
	ctr := version.NewCounter(id)

	rnd := rand.New(rand.NewSource(int64(global)*7919 + 1))
	payloads := make([][]byte, 4)
	for p := range payloads {
		payloads[p] = make([]byte, wc.PayloadBytes)
		rnd.Read(payloads[p])
	}

	var wr workerResult
	wr.LatsMicros = make([]float64, 0, wc.OpsPerClient)
	st := &h.states[i]
	st.paths = make([]string, pathsPerClient)
	for p := range st.paths {
		st.paths[p] = fmt.Sprintf("t%d/c%d/f%d", wc.groupOf(global), global, p)
	}
	st.vers = make([]version.ID, pathsPerClient)
	st.last = make([][]byte, pathsPerClient)

	for op := 0; op < wc.OpsPerClient; op++ {
		p := op % pathsPerClient
		n := &wire.Node{
			Kind: wire.NFull,
			Path: st.paths[p],
			Base: st.vers[p],
			Ver:  ctr.Next(),
			Full: payloads[op%len(payloads)],
		}
		b := &wire.Batch{Seq: uint64(op + 1), Nodes: []*wire.Node{n}}
		t0 := time.Now()
		reply, err := nc.Push(b)
		wr.LatsMicros = append(wr.LatsMicros, float64(time.Since(t0))/float64(time.Microsecond))
		if err != nil {
			wr.Errors++
			return wr
		}
		for _, status := range reply.Statuses {
			if status != wire.StatusOK {
				wr.Errors++
			}
		}
		st.vers[p] = n.Ver
		st.last[p] = n.Full
		if reply.Throttled {
			// Backpressure: a sharing peer's outbox is saturated. Drain our
			// own queue (we may be the slow one) and yield briefly.
			wr.Throttles++
			if _, err := nc.Poll(); err != nil {
				wr.Errors++
				return wr
			}
			time.Sleep(200 * time.Microsecond)
		} else if wc.GroupSize > 1 && op%wc.PollEvery == wc.PollEvery-1 {
			if _, err := nc.Poll(); err != nil {
				wr.Errors++
				return wr
			}
		}
	}
	return wr
}

// verifyClient is the untimed convergence check: every path the client
// wrote must read back with the content and version of its last push.
func (h *herd) verifyClient(i int, wr *workerResult) {
	nc := h.conns[i]
	st := &h.states[i]
	for p, path := range st.paths {
		if st.last[p] == nil {
			continue
		}
		fr, err := nc.Fetch(path)
		if err != nil {
			wr.Errors++
			return
		}
		if !fr.Exists || fr.Ver != st.vers[p] || string(fr.Content) != string(st.last[p]) {
			wr.Mismatches++
		}
	}
}

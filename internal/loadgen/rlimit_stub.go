//go:build !linux

package loadgen

// fdLimit is best-effort off Linux: report a generous budget and let dial
// errors surface if the platform disagrees.
func fdLimit(need uint64) (uint64, error) { return 1 << 20, nil }

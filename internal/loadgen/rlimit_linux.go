//go:build linux

package loadgen

import "syscall"

// fdLimit raises the soft descriptor limit toward `need` (best effort —
// past the hard limit only when privileged) and returns the effective soft
// limit. Callers decide whether the returned budget fits in one process or
// the run must split across workers; a 10k-client loopback run costs two
// descriptors per connection when both ends live in the same process.
func fdLimit(need uint64) (uint64, error) {
	var lim syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &lim); err != nil {
		return 0, err
	}
	if need > 0 && lim.Cur < need {
		want := lim
		want.Cur = need
		if want.Max < need {
			want.Max = need
		}
		if err := syscall.Setrlimit(syscall.RLIMIT_NOFILE, &want); err == nil {
			return want.Cur, nil
		}
		// Unprivileged: settle for the hard limit.
		if lim.Max > lim.Cur {
			want = syscall.Rlimit{Cur: lim.Max, Max: lim.Max}
			if err := syscall.Setrlimit(syscall.RLIMIT_NOFILE, &want); err == nil {
				return want.Cur, nil
			}
		}
	}
	return lim.Cur, nil
}

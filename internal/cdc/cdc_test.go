package cdc

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/metrics"
)

// small config keeps unit tests fast.
func smallConfig() Config {
	return Config{MinSize: 64, AvgSize: 256, MaxSize: 1024}
}

func randBytes(seed int64, n int) []byte {
	p := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(p)
	return p
}

func reassemble(data []byte, chunks []Chunk) []byte {
	var out []byte
	for _, c := range chunks {
		out = append(out, data[c.Off:c.Off+c.Len]...)
	}
	return out
}

func TestSplitEmpty(t *testing.T) {
	if got := Split(nil, smallConfig(), nil); len(got) != 0 {
		t.Fatalf("empty input produced %d chunks", len(got))
	}
}

func TestSplitCoversInput(t *testing.T) {
	data := randBytes(1, 100_000)
	chunks := Split(data, smallConfig(), nil)
	if !bytes.Equal(reassemble(data, chunks), data) {
		t.Fatal("chunks do not cover input contiguously")
	}
	var off int64
	for i, c := range chunks {
		if c.Off != off {
			t.Fatalf("chunk %d off = %d, want %d", i, c.Off, off)
		}
		off += c.Len
	}
}

func TestSplitRespectsSizeBounds(t *testing.T) {
	cfg := smallConfig()
	data := randBytes(2, 200_000)
	chunks := Split(data, cfg, nil)
	for i, c := range chunks {
		if c.Len > int64(cfg.MaxSize) {
			t.Fatalf("chunk %d len %d exceeds max %d", i, c.Len, cfg.MaxSize)
		}
		if i < len(chunks)-1 && c.Len < int64(cfg.MinSize) {
			t.Fatalf("non-final chunk %d len %d below min %d", i, c.Len, cfg.MinSize)
		}
	}
}

func TestSplitAverageNearConfig(t *testing.T) {
	cfg := smallConfig()
	data := randBytes(3, 1<<20)
	chunks := Split(data, cfg, nil)
	avg := len(data) / len(chunks)
	// Expect the empirical average within a loose factor of the target:
	// min/max clamping skews it, but it must be the right order.
	if avg < cfg.AvgSize/4 || avg > cfg.AvgSize*4 {
		t.Fatalf("empirical average %d too far from target %d", avg, cfg.AvgSize)
	}
}

func TestSplitDeterministic(t *testing.T) {
	data := randBytes(4, 50_000)
	a := Split(data, smallConfig(), nil)
	b := Split(data, smallConfig(), nil)
	if len(a) != len(b) {
		t.Fatalf("non-deterministic chunk count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("chunk %d differs between runs", i)
		}
	}
}

func TestSplitLocalizedEdit(t *testing.T) {
	// The CDC property: a local edit only changes nearby chunks, so most
	// chunk hashes survive. This is what gives Seafile any dedup at all.
	cfg := smallConfig()
	data := randBytes(5, 1<<19)
	edited := append([]byte(nil), data...)
	copy(edited[200_000:200_010], randBytes(6, 10))

	before := Split(data, cfg, nil)
	after := Split(edited, cfg, nil)

	seen := NewStore()
	for _, c := range before {
		seen.Add(c.Hash)
	}
	_, missing := seen.MissingBytes(after)
	// Only chunks around the edit should be new: far less than 10% of file.
	if missing > int64(len(data))/10 {
		t.Fatalf("localized edit invalidated %d bytes of chunks (file %d)",
			missing, len(data))
	}
	if missing == 0 {
		t.Fatal("edit produced no new chunks; hashes cannot be content-derived")
	}
}

func TestSplitInsertionShiftResistance(t *testing.T) {
	// Insert bytes near the start; fixed-size blocking would invalidate
	// everything after, CDC must keep most chunks.
	cfg := smallConfig()
	data := randBytes(7, 1<<19)
	edited := append(append(append([]byte(nil), data[:1000]...),
		randBytes(8, 37)...), data[1000:]...)

	seen := NewStore()
	for _, c := range Split(data, cfg, nil) {
		seen.Add(c.Hash)
	}
	_, missing := seen.MissingBytes(Split(edited, cfg, nil))
	if missing > int64(len(data))/10 {
		t.Fatalf("insertion invalidated %d bytes of chunks (file %d)",
			missing, len(data))
	}
}

func TestSplitDefaultsToSeafileConfig(t *testing.T) {
	data := randBytes(9, 3<<20)
	chunks := Split(data, Config{}, nil)
	for _, c := range chunks {
		if c.Len > int64(SeafileConfig().MaxSize) {
			t.Fatalf("default config: chunk len %d exceeds Seafile max", c.Len)
		}
	}
}

func TestSplitChargesMeter(t *testing.T) {
	m := metrics.NewCPUMeter(metrics.PC)
	data := randBytes(10, 10_000)
	Split(data, smallConfig(), m)
	b := m.Breakdown()
	if b["gear_bytes"] != int64(len(data)) || b["strong_bytes"] != int64(len(data)) {
		t.Fatalf("meter breakdown wrong: %v", b)
	}
}

func TestStore(t *testing.T) {
	s := NewStore()
	data := randBytes(11, 10_000)
	chunks := Split(data, smallConfig(), nil)
	missing, total := s.MissingBytes(chunks)
	if len(missing) != len(chunks) || total != int64(len(data)) {
		t.Fatalf("empty store: missing %d/%d bytes, want all", total, len(data))
	}
	for _, c := range chunks {
		s.Add(c.Hash)
	}
	if s.Len() == 0 {
		t.Fatal("store empty after adds")
	}
	missing, total = s.MissingBytes(chunks)
	if len(missing) != 0 || total != 0 {
		t.Fatalf("full store: still missing %d chunks / %d bytes", len(missing), total)
	}
}

// Property: chunks always partition the input exactly.
func TestSplitPartitionProperty(t *testing.T) {
	cfg := Config{MinSize: 8, AvgSize: 32, MaxSize: 128}
	f := func(data []byte) bool {
		chunks := Split(data, cfg, nil)
		return bytes.Equal(reassemble(data, chunks), data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: identical content yields identical chunk hashes regardless of
// surrounding context (content-defined, not offset-defined) — verified by
// checking determinism over copies.
func TestSplitContentAddressedProperty(t *testing.T) {
	cfg := Config{MinSize: 8, AvgSize: 32, MaxSize: 128}
	f := func(data []byte) bool {
		cp := append([]byte(nil), data...)
		a := Split(data, cfg, nil)
		b := Split(cp, cfg, nil)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i].Hash != b[i].Hash {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSplitSeafile16MB(b *testing.B) {
	data := randBytes(12, 16<<20)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Split(data, SeafileConfig(), nil)
	}
}

func BenchmarkSplitLBFS16MB(b *testing.B) {
	data := randBytes(13, 16<<20)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Split(data, LBFSConfig(), nil)
	}
}

// Package cdc implements content-defined chunking (CDC) as used by
// LBFS-style systems and by Seafile, the paper's CDC-based comparison
// system. Chunk boundaries are chosen with a gear rolling hash, so
// insertions and deletions only disturb the chunks they touch. Seafile's
// default average chunk size is 1 MB [22], which is what the Seafile
// baseline in this repository configures; the trade-off the paper measures
// is exactly this: large chunks make CDC cheap on CPU but poor on network
// efficiency.
package cdc

import (
	"repro/internal/block"
	"repro/internal/metrics"
)

// Config controls the chunker. The boundary mask is derived from AvgSize,
// which must be a power of two.
type Config struct {
	MinSize int // no boundary before this many bytes
	AvgSize int // average chunk size; power of two
	MaxSize int // forced boundary at this many bytes
}

// SeafileConfig is the chunking configuration the paper attributes to
// Seafile: 1 MB average chunks.
func SeafileConfig() Config {
	return Config{MinSize: 256 << 10, AvgSize: 1 << 20, MaxSize: 4 << 20}
}

// LBFSConfig approximates LBFS/Ori-style fine-grained chunking (4 KB
// average), used by the ablation benchmarks to show the CPU/network
// trade-off at the other end of the spectrum.
func LBFSConfig() Config {
	return Config{MinSize: 1 << 10, AvgSize: 4 << 10, MaxSize: 16 << 10}
}

// Chunk is one content-defined chunk of a file.
type Chunk struct {
	Off  int64
	Len  int64
	Hash block.Strong // strong checksum identifying the chunk content
}

// gearTable is a fixed pseudo-random permutation-ish table for the gear
// hash, generated deterministically from a simple PRNG so builds are
// reproducible without embedding 2 KB of literals.
var gearTable = func() [256]uint64 {
	var t [256]uint64
	// xorshift64* with a fixed seed.
	x := uint64(0x9E3779B97F4A7C15)
	for i := range t {
		x ^= x >> 12
		x ^= x << 25
		x ^= x >> 27
		t[i] = x * 0x2545F4914F6CDD1D
	}
	return t
}()

// Split divides data into content-defined chunks and computes each chunk's
// strong hash. The meter is charged for the gear scan and the strong
// hashing, which is the CPU cost profile the paper ascribes to Seafile's
// client ("the checksums for the new chunks will be calculated on the
// client anyway").
func Split(data []byte, cfg Config, meter *metrics.CPUMeter) []Chunk {
	if cfg.AvgSize <= 0 {
		cfg = SeafileConfig()
	}
	if cfg.MinSize <= 0 {
		cfg.MinSize = cfg.AvgSize / 4
	}
	if cfg.MaxSize < cfg.AvgSize {
		cfg.MaxSize = cfg.AvgSize * 4
	}
	mask := uint64(cfg.AvgSize - 1)

	var chunks []Chunk
	start := 0
	var h uint64
	for i := 0; i < len(data); i++ {
		h = (h << 1) + gearTable[data[i]]
		n := i - start + 1
		if (n >= cfg.MinSize && h&mask == 0) || n >= cfg.MaxSize || i == len(data)-1 {
			chunks = append(chunks, Chunk{
				Off:  int64(start),
				Len:  int64(n),
				Hash: block.StrongSum(data[start : i+1]),
			})
			start = i + 1
			h = 0
		}
	}
	meter.GearHash(int64(len(data)))
	meter.StrongHash(int64(len(data)))
	return chunks
}

// Store tracks which chunk hashes a party (client or server) already has,
// providing the deduplication half of CDC sync: only chunks absent from the
// peer's store need to be transferred.
type Store struct {
	have map[block.Strong]struct{}
}

// NewStore returns an empty chunk store.
func NewStore() *Store {
	return &Store{have: make(map[block.Strong]struct{})}
}

// Has reports whether the chunk hash is present.
func (s *Store) Has(h block.Strong) bool {
	_, ok := s.have[h]
	return ok
}

// Add records a chunk hash.
func (s *Store) Add(h block.Strong) { s.have[h] = struct{}{} }

// Len returns the number of distinct chunks known.
func (s *Store) Len() int { return len(s.have) }

// MissingBytes walks chunks, returning the chunks absent from the store and
// their total byte size. It does not modify the store.
func (s *Store) MissingBytes(chunks []Chunk) (missing []Chunk, total int64) {
	for _, c := range chunks {
		if !s.Has(c.Hash) {
			missing = append(missing, c)
			total += c.Len
		}
	}
	return missing, total
}

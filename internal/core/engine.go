// Package core implements the DeltaCFS client engine — the paper's primary
// contribution. The engine sits in the file-operation path (the FUSE
// position: it implements vfs.FS over a backing store) and adaptively
// combines two incremental sync mechanisms:
//
//   - NFS-like file RPC (default): intercepted write payloads are the
//     incremental data; they batch into Sync Queue write nodes and upload
//     after a short delay.
//   - Delta encoding (triggered): when the relation table identifies a
//     transactional update — or when an in-place update has rewritten more
//     than half the file — a local rsync (bitwise comparison, no strong
//     checksums) runs between the file's preserved old version and its new
//     content, and the resulting delta replaces the buffered raw writes.
//
// Around this core the engine provides the paper's §III-C/§III-E machinery:
// client-assigned versions, block-checksum integrity with crash scanning,
// causally-consistent upload via backindex batches, and application of
// updates forwarded from other clients.
package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/block"
	"repro/internal/clock"
	"repro/internal/integrity"
	"repro/internal/kvstore"
	"repro/internal/metrics"
	"repro/internal/relation"
	"repro/internal/rsync"
	"repro/internal/syncqueue"
	"repro/internal/undolog"
	"repro/internal/version"
	"repro/internal/vfs"
	"repro/internal/wire"
)

// TrashDir is where unlinked files are preserved until their relation
// entries expire (§III-A: "we move it into a dedicated folder temporarily").
const TrashDir = ".deltacfs/trash"

// Config configures an Engine.
type Config struct {
	// Backing is the local file system beneath the interception layer.
	Backing vfs.FS
	// Endpoint is the cloud connection.
	Endpoint wire.Endpoint
	// Clock is the logical clock shared with the trace replayer.
	Clock *clock.Clock
	// Meter accounts client CPU work (may be nil).
	Meter *metrics.CPUMeter
	// KV persists block checksums and the dirty-file set. If nil, a
	// memory-only store is used.
	KV *kvstore.Store
	// UploadDelay is the Sync Queue delay (default 3 s).
	UploadDelay time.Duration
	// RelationTimeout is the relation-table entry expiry (default 2 s).
	RelationTimeout time.Duration
	// Checksums enables the integrity layer (DeltaCFSc in Table III).
	Checksums bool
	// BlockSize is the local-rsync block size (default 4 KB).
	BlockSize int
	// InPlaceThreshold is the fraction of a file an in-place update must
	// rewrite before delta encoding is attempted on it (default 0.5).
	InPlaceThreshold float64
	// DeltaWorkers bounds the pool that runs triggered delta encodings off
	// the operation path (default GOMAXPROCS). The pool changes wall-clock
	// behaviour only: every queue/version decision still happens at the
	// serial algorithm's sequence points, so reported traffic and CPU ticks
	// are identical to a fully serial engine.
	DeltaWorkers int
	// DisableDelta turns off every delta-encoding trigger (relation table
	// and in-place), leaving pure NFS-like file RPC. Ablation knob: it
	// quantifies what the adaptive combination buys over interception
	// alone.
	DisableDelta bool
	// QueueHighWater bounds the unsent-batch buffer retained across push
	// failures (default DefaultQueueHighWater); reaching it marks the
	// engine Offline.
	QueueHighWater int64
	// SyncMeter counts fault-tolerance events — degraded time here; retries
	// and reconnects when the same meter is shared with a ResilientClient
	// (may be nil).
	SyncMeter *metrics.SyncMeter
}

// Stats counts engine activity.
type Stats struct {
	DeltaTriggers   int // relation-table-triggered delta encodings
	InPlaceDeltas   int // >50% in-place updates compressed by local rsync
	UploadedBatches int
	UploadedNodes   int
	Conflicts       int // server-reported conflicts on our pushes
	RemoteApplied   int // forwarded nodes applied locally
	RemoteConflicts int // forwarded updates that conflicted locally
	Corruptions     int // corrupted blocks detected on read
	Recovered       int // files recovered from the cloud
	KVErrors        int // failed advisory KV writes (dirty-set, checksum bookkeeping)
}

// pendingBase is a deferred delta base: where the old version is preserved
// locally and which version the cloud still holds.
type pendingBase struct {
	basePath string
	baseVer  version.ID
}

// Engine is the DeltaCFS client. It implements vfs.FS (the interception
// surface applications write through) and trace.Target. Public methods are
// safe for concurrent use: a mutex serializes the bookkeeping fast path,
// like the FUSE dispatch loop, while triggered delta encodings run on a
// bounded worker pool outside the lock and are joined back in at the next
// operation on the same path (or before any upload).
type Engine struct {
	// mu serializes the bookkeeping loop itself — the engine's equivalent
	// of a FUSE dispatch thread — so RPCs and KV writes intentionally run
	// under it; it is a scheduling lock, not a data lock.
	//deltavet:allow blockunderlock serial engine loop blocks by design
	mu      sync.Mutex
	cfg     Config
	backing vfs.FS
	ep      wire.Endpoint
	clk     *clock.Clock
	meter   *metrics.CPUMeter
	pool    *deltaPool

	q       *syncqueue.Queue
	rel     *relation.Table
	undo    *undolog.Log
	integ   *integrity.Store
	kv      *kvstore.Store
	counter *version.Counter
	vers    *version.Map

	// pendingDelta maps a path being rewritten (after unlink/create-over)
	// to its preserved old version; resolved at pack time.
	pendingDelta map[string]pendingBase
	// trashVer remembers the cloud-visible version a file had when it was
	// unlinked into the trash, so a triggered delta can chain onto it.
	trashVer   map[string]version.ID
	trashSeq   int
	trashReady bool

	lastPoll    time.Duration
	lastPushErr error

	// Fault-tolerance state (health.go). unsent holds converted batches
	// whose push failed, oldest first; batchSeq is the idempotency-key
	// counter — durable client state like the version counter, NOT reset by
	// DropVolatileState (a replayed key must never alias a new batch).
	unsent      []*wire.Batch
	unsentBytes int64
	batchSeq    uint64
	consecFails int
	lastTickAt  time.Duration
	syncMeter   *metrics.SyncMeter

	stats         Stats
	lastKVErr     error
	conflictFiles []string

	clientID uint32
}

// New builds an engine and registers it with the cloud.
func New(cfg Config) (*Engine, error) {
	if cfg.Backing == nil || cfg.Endpoint == nil || cfg.Clock == nil {
		return nil, errors.New("core: Backing, Endpoint and Clock are required")
	}
	if cfg.UploadDelay <= 0 {
		cfg.UploadDelay = syncqueue.DefaultDelay
	}
	if cfg.RelationTimeout <= 0 {
		cfg.RelationTimeout = relation.DefaultTimeout
	}
	if cfg.BlockSize <= 0 {
		cfg.BlockSize = block.DefaultBlockSize
	}
	if cfg.InPlaceThreshold <= 0 {
		cfg.InPlaceThreshold = 0.5
	}
	if cfg.QueueHighWater <= 0 {
		cfg.QueueHighWater = DefaultQueueHighWater
	}
	kv := cfg.KV
	if kv == nil {
		var err error
		kv, err = kvstore.Open("")
		if err != nil {
			return nil, err
		}
	}
	id, err := cfg.Endpoint.Register()
	if err != nil {
		return nil, fmt.Errorf("core: register: %w", err)
	}
	e := &Engine{
		cfg:          cfg,
		backing:      cfg.Backing,
		ep:           cfg.Endpoint,
		clk:          cfg.Clock,
		meter:        cfg.Meter,
		q:            syncqueue.New(cfg.UploadDelay),
		rel:          relation.New(cfg.RelationTimeout),
		undo:         undolog.New(cfg.Meter),
		integ:        integrity.New(kv, cfg.Meter),
		kv:           kv,
		counter:      version.NewCounter(id),
		vers:         version.NewMap(),
		pendingDelta: make(map[string]pendingBase),
		trashVer:     make(map[string]version.ID),
		pool:         newDeltaPool(cfg.DeltaWorkers),
		clientID:     id,
		syncMeter:    cfg.SyncMeter,
	}
	return e, nil
}

// ClientID returns the server-assigned client ID.
func (e *Engine) ClientID() uint32 { return e.clientID }

// Stats returns a snapshot of engine counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// ConflictFiles returns conflict-file paths reported by the server or
// created locally for conflicting forwarded updates.
func (e *Engine) ConflictFiles() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]string(nil), e.conflictFiles...)
}

// QueueLen returns the number of nodes awaiting upload (for tests).
func (e *Engine) QueueLen() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.q.Len()
}

// QueueBufferedBytes returns the payload bytes awaiting upload.
func (e *Engine) QueueBufferedBytes() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.q.BufferedBytes()
}

// FS implements trace.Target: applications issue operations through the
// engine itself.
func (e *Engine) FS() vfs.FS { return e }

// ---- vfs.FS implementation (the interception path) ----

// readRange adapts the backing store for the undo log.
func (e *Engine) readRange(path string) func(off, n int64) ([]byte, error) {
	return func(off, n int64) ([]byte, error) {
		data, err := e.backing.ReadAt(path, off, n)
		e.meter.DiskIO(int64(len(data)))
		return data, err
	}
}

// readBlock adapts the backing store for the integrity store.
func (e *Engine) readBlock(path string) func(b int64) ([]byte, error) {
	return func(b int64) ([]byte, error) {
		data, err := e.backing.ReadAt(path, b*integrity.BlockSize, integrity.BlockSize)
		e.meter.DiskIO(int64(len(data)))
		return data, err
	}
}

// ensureTracked begins undo logging for path at its current (pre-update)
// size, on the first modification since the last sync point.
func (e *Engine) ensureTracked(path string) {
	if e.undo.Tracking(path) {
		return
	}
	st, err := e.backing.Stat(path)
	if err != nil {
		e.undo.Track(path, 0)
		return
	}
	e.undo.Track(path, st.Size)
}

// markDirty persists path into the recently-modified set used by the
// post-crash integrity scan.
func (e *Engine) markDirty(path string) {
	e.noteKVErr(e.kv.Put([]byte("dirty/"+path), nil))
}

func (e *Engine) clearDirty(path string) {
	e.noteKVErr(e.kv.Delete([]byte("dirty/" + path)))
}

// noteKVErr records a failed advisory KV or checksum-store write. These
// writes are best-effort by design — a stale dirty-set only makes the
// post-crash scan do more work, never less — but failures must surface in
// Stats instead of vanishing at the call site.
func (e *Engine) noteKVErr(err error) {
	if err != nil {
		e.stats.KVErrors++
		e.lastKVErr = err
	}
}

// LastKVError returns the most recent advisory-write failure (nil if none).
func (e *Engine) LastKVError() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.lastKVErr
}

// stamp assigns base and new versions for a node modifying path.
func (e *Engine) stamp(n *syncqueue.Node, path string) {
	n.Base = e.vers.Get(path)
	n.Ver = e.counter.Next()
	e.vers.Set(path, n.Ver)
}

// Create implements vfs.FS. A create over an existing file truncates it, so
// the old content is preserved via the undo log; if the name matches a
// relation entry (the unlink-then-rewrite pattern), the preserved old
// version becomes the pending delta base.
func (e *Engine) Create(path string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.pool.joinPath(path)
	e.meter.FSOp(1)
	if ent, ok := e.rel.Lookup(path, e.clk.Now()); ok && ent.FromUnlink && !e.cfg.DisableDelta {
		// Transactional update identified at re-creation (Table I trigger
		// 1). The delta runs at pack time, against the preserved file.
		e.pendingDelta[path] = pendingBase{basePath: ent.Dst, baseVer: e.trashVer[ent.Dst]}
		delete(e.trashVer, ent.Dst)
		e.rel.Remove(path)
	}
	if err := e.backing.Create(path); err != nil {
		return err
	}
	e.markDirty(path)
	if e.cfg.Checksums {
		if err := e.integ.Remove(path); err != nil {
			return err
		}
	}
	n := &syncqueue.Node{Kind: syncqueue.KindCreate, Path: path, At: e.clk.Now()}
	e.stamp(n, path)
	e.q.Append(n)
	// The create node travels to the cloud as an explicit truncate-to-zero,
	// so the undo baseline for subsequent writes is the empty file — the
	// old content is NOT reconstructible cloud-side past this point.
	e.undo.Reset(path)
	return nil
}

// WriteAt implements vfs.FS: the NFS-like file RPC path. The payload is the
// incremental data; no scanning, chunking or fingerprinting happens here.
func (e *Engine) WriteAt(path string, off int64, data []byte) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.pool.joinPath(path)
	e.meter.FSOp(1)
	e.ensureTracked(path)
	if err := e.undo.BeforeWrite(path, off, int64(len(data)), e.readRange(path)); err != nil {
		return err
	}
	if err := e.backing.WriteAt(path, off, data); err != nil {
		return err
	}
	e.meter.Copy(int64(len(data))) // interception buffer copy
	e.markDirty(path)
	n := e.q.Write(path, off, data, e.clk.Now())
	if n.Ver.IsZero() {
		e.stamp(n, path)
	}
	if e.cfg.Checksums {
		if err := e.integ.UpdateRange(path, off, int64(len(data)), e.readBlock(path)); err != nil {
			return err
		}
	}
	return nil
}

// ReadAt implements vfs.FS. With checksums enabled, the blocks covered by
// the read are verified first; corrupted blocks are recovered from the
// cloud before the read is served (§III-E).
func (e *Engine) ReadAt(path string, off, n int64) ([]byte, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.meter.FSOp(1)
	if e.cfg.Checksums {
		if err := e.verifyAndRecoverRange(path, off, n); err != nil {
			return nil, err
		}
	}
	return e.backing.ReadAt(path, off, n)
}

// ReadFile implements vfs.FS, with the same verification as ReadAt.
func (e *Engine) ReadFile(path string) ([]byte, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.meter.FSOp(1)
	if e.cfg.Checksums {
		st, err := e.backing.Stat(path)
		if err == nil {
			if err := e.verifyAndRecoverRange(path, 0, st.Size); err != nil {
				return nil, err
			}
		}
	}
	return e.backing.ReadFile(path)
}

// Truncate implements vfs.FS.
func (e *Engine) Truncate(path string, size int64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.pool.joinPath(path)
	e.meter.FSOp(1)
	if err := e.backing.Truncate(path, size); err != nil {
		return err
	}
	e.markDirty(path)
	n := e.q.Truncate(path, size, e.clk.Now())
	e.stamp(n, path)
	// Like create, the truncate node is an explicit cloud-side boundary:
	// the undo baseline restarts at the post-truncate state.
	e.undo.Reset(path)
	if e.cfg.Checksums {
		if err := e.integ.Truncate(path, size, e.readBlock(path)); err != nil {
			return err
		}
	}
	return nil
}

// Rename implements vfs.FS. This is where transactional updates commit, so
// both delta triggers live here: a relation entry whose src equals the
// destination name (Word pattern), or a destination that already exists
// (gedit pattern).
func (e *Engine) Rename(oldPath, newPath string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.pool.joinPath(oldPath)
	e.pool.joinPath(newPath)
	e.meter.FSOp(1)
	st, err := e.backing.Stat(oldPath)
	if err != nil {
		return err
	}
	if !st.IsDir && !e.cfg.DisableDelta {
		if ent, ok := e.rel.Lookup(newPath, e.clk.Now()); ok {
			// Table I trigger 1: newPath is being created again while its
			// old version is preserved under ent.Dst.
			if ent.FromUnlink {
				// The preserved copy is a local trash file the cloud never
				// saw; the cloud still holds newPath itself — provided the
				// queued unlink can be retracted, which is only sound when
				// the unlink is the LAST pending node for the name (a later
				// node would have chained its version past the deletion).
				// Then the delta reads the trash content locally but names
				// newPath as its cloud-side base. Otherwise skip the delta:
				// the rename ships the raw content correctly.
				kinds := e.q.PendingKinds(newPath)
				if len(kinds) > 0 && kinds[len(kinds)-1] == syncqueue.KindUnlink &&
					e.q.RemoveRecent(newPath, syncqueue.KindUnlink) {
					e.triggerRenameDelta(oldPath, ent.Dst, newPath)
				}
				_ = e.backing.Unlink(ent.Dst)
				delete(e.trashVer, ent.Dst)
			} else {
				e.triggerRenameDelta(oldPath, ent.Dst, ent.Dst)
			}
			e.rel.Remove(newPath)
		} else if dstSt, err := e.backing.Stat(newPath); err == nil && !dstSt.IsDir && dstSt.Size > 0 {
			// Table I trigger 2: the name already exists (gedit). Base is
			// the current content of newPath, still intact on the cloud at
			// the delta node's queue position.
			e.triggerRenameDelta(oldPath, newPath, newPath)
		}
	}
	if err := e.backing.Rename(oldPath, newPath); err != nil {
		return err
	}
	if !st.IsDir {
		// rename a b ⇒ relation entry a → b (a's old version now lives
		// under b).
		e.rel.Add(oldPath, newPath, false, e.clk.Now())
	}
	n := &syncqueue.Node{Kind: syncqueue.KindRename, Path: oldPath, Dst: newPath, At: e.clk.Now()}
	n.Base = e.vers.Get(oldPath)
	n.Ver = e.counter.Next()
	e.vers.Rename(oldPath, newPath)
	e.vers.Set(newPath, n.Ver)
	e.q.Append(n)

	// The rename node is an explicit cloud-side boundary for both names;
	// undo baselines restart (a moved log would reconstruct a version the
	// cloud no longer holds under the new name).
	e.undo.Reset(oldPath)
	e.undo.Reset(newPath)
	delete(e.pendingDelta, oldPath)
	delete(e.pendingDelta, newPath)
	e.markDirty(newPath)
	e.clearDirty(oldPath)
	if e.cfg.Checksums {
		if err := e.integ.Rename(oldPath, newPath); err != nil {
			return err
		}
	}
	return nil
}

// triggerRenameDelta computes a local delta between srcPath's new content
// and the preserved base, replacing srcPath's buffered write node. basePath
// is read locally; serverBase names the delta base as the server will
// resolve it at the node's queue position.
//
// The queue substitution, version stamp and stats all happen here, at the
// same sequence point a fully serial engine would make them; only the rsync
// encode itself runs on the worker pool, against content snapshots taken
// now. The reserved node ships only after the pool joins (Tick and Drain
// join before releasing batches), so an unfilled delta can never upload.
func (e *Engine) triggerRenameDelta(srcPath, basePath, serverBase string) {
	newContent, err := e.backing.ReadFile(srcPath)
	if err != nil {
		return
	}
	baseContent, err := e.backing.ReadFile(basePath)
	if err != nil {
		return
	}
	e.meter.DiskIO(int64(len(newContent)) + int64(len(baseContent)))
	node := &syncqueue.Node{
		Kind:     syncqueue.KindDelta,
		Path:     srcPath,
		BasePath: serverBase,
		At:       e.clk.Now(),
	}
	node.Ver = e.counter.Next()
	replaced := e.q.ReplaceWithDeltaIfBaseStable(srcPath, serverBase, node)
	if replaced {
		// The replacement chained node.Base onto the replaced write node's
		// base; only a successful replacement may advance the version map.
		// If the raw writes already uploaded — or a pending node would
		// change the base's content at the replaced position — the rename
		// itself carries the content and the delta is skipped.
		e.vers.Set(srcPath, node.Ver)
		e.stats.DeltaTriggers++
	}
	// The serial path charges the meter for the encode even when the
	// replacement fails, so the job runs either way.
	bs, meter := e.cfg.BlockSize, e.meter
	var d *rsync.Delta
	e.pool.dispatch(srcPath,
		func() { d = rsync.DeltaLocal(baseContent, newContent, bs, meter) },
		func() {
			if replaced {
				e.q.FillDelta(node, d)
			} else {
				d.Release()
			}
		})
}

// Link implements vfs.FS. Links need no relation entry (§III-A): the
// replacing rename that follows triggers via the name-exists rule.
func (e *Engine) Link(oldPath, newPath string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.pool.joinPath(oldPath)
	e.pool.joinPath(newPath)
	e.meter.FSOp(1)
	if err := e.backing.Link(oldPath, newPath); err != nil {
		return err
	}
	n := &syncqueue.Node{Kind: syncqueue.KindLink, Path: oldPath, Dst: newPath, At: e.clk.Now()}
	n.Base = e.vers.Get(oldPath)
	n.Ver = e.counter.Next()
	e.vers.Set(newPath, n.Ver)
	e.q.Append(n)
	e.undo.Reset(newPath)
	e.markDirty(newPath)
	if e.cfg.Checksums {
		content, err := e.backing.ReadFile(newPath)
		if err != nil {
			return err
		}
		if err := e.integ.SetFile(newPath, content); err != nil {
			return err
		}
	}
	return nil
}

// Unlink implements vfs.FS. The file is preserved in the trash directory
// and a relation entry records it, so an imminent re-creation can delta
// against it. If the file's whole lifetime is still queued, its nodes are
// dropped instead of shipping an unlink.
func (e *Engine) Unlink(path string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.pool.joinPath(path)
	e.meter.FSOp(1)
	st, err := e.backing.Stat(path)
	if err != nil {
		return err
	}
	if st.IsDir {
		return fmt.Errorf("core: unlink %s: is a directory", path)
	}
	preUnlinkVer := e.vers.Get(path)
	trash, err := e.preserveInTrash(path)
	if err != nil {
		// Preservation failed (e.g. ENOSPC per the paper): fall back to a
		// plain delete with no relation entry.
		if err := e.backing.Unlink(path); err != nil {
			return err
		}
	} else {
		e.rel.Add(path, trash, true, e.clk.Now())
		e.trashVer[trash] = preUnlinkVer
	}
	// The delete-before-upload optimization (dropping the file's queued
	// nodes instead of shipping an unlink) is only sound when the cloud
	// has never seen the file: a queued create may be O_TRUNC over content
	// the cloud already stores (seeded, or synced earlier), in which case
	// the unlink must travel. One metadata round-trip settles it.
	// The Head answer reflects only what the cloud has applied: a batch for
	// this path still waiting in the unsent buffer will reach the cloud
	// later and materialize the file there, so the elision is sound only
	// when nothing unsent references the path.
	dropped := false
	if !e.unsentReferences(path) {
		if _, exists, err := e.ep.Head(path); err == nil && !exists {
			dropped = e.q.DropPending(path)
		}
	}
	if dropped {
		e.q.Pack(path)
	} else {
		n := &syncqueue.Node{Kind: syncqueue.KindUnlink, Path: path, At: e.clk.Now()}
		n.Base = e.vers.Get(path)
		e.q.Append(n)
	}
	e.vers.Delete(path)
	e.undo.Reset(path)
	delete(e.pendingDelta, path)
	e.clearDirty(path)
	if e.cfg.Checksums {
		if err := e.integ.Remove(path); err != nil {
			return err
		}
	}
	return nil
}

// preserveInTrash moves path into the trash directory, returning the trash
// name.
func (e *Engine) preserveInTrash(path string) (string, error) {
	if !e.trashReady {
		_ = e.backing.Mkdir(".deltacfs")
		_ = e.backing.Mkdir(TrashDir)
		e.trashReady = true
	}
	e.trashSeq++
	trash := fmt.Sprintf("%s/%d", TrashDir, e.trashSeq)
	if err := e.backing.Rename(path, trash); err != nil {
		return "", err
	}
	return trash, nil
}

// Mkdir implements vfs.FS.
func (e *Engine) Mkdir(path string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.meter.FSOp(1)
	if err := e.backing.Mkdir(path); err != nil {
		return err
	}
	e.q.Append(&syncqueue.Node{Kind: syncqueue.KindMkdir, Path: path, At: e.clk.Now()})
	return nil
}

// Rmdir implements vfs.FS. Deleted directories are not preserved (§III-A).
func (e *Engine) Rmdir(path string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.meter.FSOp(1)
	if err := e.backing.Rmdir(path); err != nil {
		return err
	}
	e.q.Append(&syncqueue.Node{Kind: syncqueue.KindRmdir, Path: path, At: e.clk.Now()})
	return nil
}

// Close implements vfs.FS: the file's state changed, so its write node
// packs and the pack-time delta decision runs.
func (e *Engine) Close(path string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.pool.joinPath(path)
	e.meter.FSOp(1)
	e.packDecision(path)
	e.q.Pack(path)
	return e.backing.Close(path)
}

// Fsync implements vfs.FS.
func (e *Engine) Fsync(path string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.meter.FSOp(1)
	return e.backing.Fsync(path)
}

// Stat implements vfs.FS.
func (e *Engine) Stat(path string) (vfs.FileInfo, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.backing.Stat(path)
}

// List implements vfs.FS.
func (e *Engine) List(prefix string) ([]string, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.backing.List(prefix)
}

var _ vfs.FS = (*Engine)(nil)

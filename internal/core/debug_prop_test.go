package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/vfs"
)

func TestDebugSeed7(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	reference := vfs.NewMemFS()
	r := newRig(t, false)
	names := []string{"a", "b", "c", "d", "tmp", "f~", "doc"}
	pick := func() string { return names[rng.Intn(len(names))] }
	var ops []string
	apply := func(desc string, do func(fs vfs.FS) error) {
		engErr := do(r.eng.FS())
		refErr := do(reference)
		ops = append(ops, fmt.Sprintf("%s eng=%v ref=%v", desc, engErr, refErr))
	}
	now := time.Duration(0)
	for i := 0; i < 400; i++ {
		switch rng.Intn(10) {
		case 0, 1:
			p := pick()
			apply("create "+p, func(fs vfs.FS) error { return fs.Create(p) })
		case 2, 3, 4, 5:
			p := pick()
			data := make([]byte, 1+rng.Intn(8<<10))
			rng.Read(data)
			off := int64(rng.Intn(32 << 10))
			apply(fmt.Sprintf("write %s off=%d len=%d", p, off, len(data)), func(fs vfs.FS) error { return fs.WriteAt(p, off, data) })
		case 6:
			p := pick()
			sz := int64(rng.Intn(16 << 10))
			apply(fmt.Sprintf("trunc %s %d", p, sz), func(fs vfs.FS) error { return fs.Truncate(p, sz) })
		case 7:
			src, dst := pick(), pick()
			if src != dst {
				apply(fmt.Sprintf("rename %s %s", src, dst), func(fs vfs.FS) error { return fs.Rename(src, dst) })
			}
		case 8:
			p := pick()
			apply("unlink "+p, func(fs vfs.FS) error { return fs.Unlink(p) })
		case 9:
			p := pick()
			apply("close "+p, func(fs vfs.FS) error { return fs.Close(p) })
		}
		if rng.Intn(4) == 0 {
			now += time.Duration(rng.Intn(5000)) * time.Millisecond
			r.clk.Set(now)
			r.eng.Tick(r.clk.Now())
			ops = append(ops, fmt.Sprintf("tick %v", now))
		}
		// check convergence point for file b after drain-equivalent? skip
	}
	r.clk.Advance(time.Minute)
	r.eng.Tick(r.clk.Now())
	r.eng.Drain()
	t.Logf("stats: %+v conflicts=%v lastPush=%v", r.eng.Stats(), r.eng.ConflictFiles(), r.eng.LastPushError())
	want, _ := reference.ReadFile("b")
	got, ok := r.srv.FileContent("b")
	if !bytes.Equal(want, got) {
		// print last ops touching b
		n := 0
		for i := len(ops) - 1; i >= 0 && n < 40; i-- {
			t.Log(ops[i])
			n++
		}
		t.Fatalf("b: cloud %d (ok=%v) != ref %d", len(got), ok, len(want))
	}
}

package core

import (
	"bytes"
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/faultinject"
	"repro/internal/metrics"
	"repro/internal/server"
	"repro/internal/vfs"
	"repro/internal/wire"
)

// flakyEndpoint fails Push (and optionally all ops) while down.
type flakyEndpoint struct {
	wire.Endpoint
	down bool
}

var errFlakyDown = errors.New("flaky endpoint down")

func (f *flakyEndpoint) Push(b *wire.Batch) (*wire.PushReply, error) {
	if f.down {
		return nil, errFlakyDown
	}
	return f.Endpoint.Push(b)
}

// flakyRig is a rig whose endpoint can be taken down.
type flakyRig struct {
	*rig
	flaky *flakyEndpoint
	sm    *metrics.SyncMeter
}

func newFlakyRig(t *testing.T, highWater int64) *flakyRig {
	t.Helper()
	r := &rig{
		backing: vfs.NewMemFS(),
		clk:     &clock.Clock{},
		meter:   metrics.NewCPUMeter(metrics.PC),
		traffic: &metrics.TrafficMeter{},
	}
	r.srv = server.New(metrics.NewCPUMeter(metrics.PC))
	flaky := &flakyEndpoint{Endpoint: server.NewLoopback(r.srv, r.meter, r.traffic)}
	sm := &metrics.SyncMeter{}
	eng, err := New(Config{
		Backing:        r.backing,
		Endpoint:       flaky,
		Clock:          r.clk,
		Meter:          r.meter,
		QueueHighWater: highWater,
		SyncMeter:      sm,
	})
	if err != nil {
		t.Fatal(err)
	}
	r.eng = eng
	return &flakyRig{rig: r, flaky: flaky, sm: sm}
}

// step advances the logical clock and ticks once.
func (r *flakyRig) step(d time.Duration) {
	r.clk.Advance(d)
	r.eng.Tick(r.clk.Now())
}

func TestHealthStateMachine(t *testing.T) {
	r := newFlakyRig(t, 0)
	if h := r.eng.Health(); h != Healthy {
		t.Fatalf("initial health = %v", h)
	}

	if err := r.eng.Create("f"); err != nil {
		t.Fatal(err)
	}
	if err := r.eng.WriteAt("f", 0, []byte("buffered while down")); err != nil {
		t.Fatal(err)
	}
	r.flaky.down = true
	r.step(time.Minute) // batch pops, push fails
	if h := r.eng.Health(); h != Degraded {
		t.Fatalf("health after first failure = %v, want degraded", h)
	}
	if r.eng.UnsentBatches() == 0 || r.eng.UnsentBytes() == 0 {
		t.Fatal("failed batch not buffered")
	}

	for i := 0; i < offlineAfterFailures; i++ {
		r.step(time.Second)
	}
	if h := r.eng.Health(); h != Offline {
		t.Fatalf("health after repeated failures = %v, want offline", h)
	}
	if r.sm.Degraded() == 0 {
		t.Fatal("degraded time not metered")
	}

	// Heal: the buffer flushes, in order, and health recovers.
	r.flaky.down = false
	r.step(time.Second)
	if h := r.eng.Health(); h != Healthy {
		t.Fatalf("health after heal = %v, want healthy", h)
	}
	if r.eng.UnsentBatches() != 0 {
		t.Fatalf("%d batches still unsent after heal", r.eng.UnsentBatches())
	}
	got, ok := r.srv.FileContent("f")
	if !ok || !bytes.Equal(got, []byte("buffered while down")) {
		t.Fatalf("server content after heal = %q, %v", got, ok)
	}
	if d := r.srv.DuplicateApplies(); d != 0 {
		t.Fatalf("DuplicateApplies = %d", d)
	}
}

func TestUnsentBatchesResumeInOrder(t *testing.T) {
	r := newFlakyRig(t, 0)
	r.flaky.down = true
	// Three separate batches: each write packs and pops on its own tick.
	for _, p := range []string{"a", "b", "c"} {
		if err := r.eng.Create(p); err != nil {
			t.Fatal(err)
		}
		if err := r.eng.WriteAt(p, 0, []byte(p)); err != nil {
			t.Fatal(err)
		}
		if err := r.eng.Close(p); err != nil {
			t.Fatal(err)
		}
		r.step(time.Minute)
	}
	if r.eng.UnsentBatches() < 3 {
		t.Fatalf("UnsentBatches = %d, want >= 3", r.eng.UnsentBatches())
	}
	r.flaky.down = false
	r.step(time.Second)

	var order []string
	seen := map[string]bool{}
	for _, op := range r.srv.AppliedLog() {
		if !seen[op.Path] {
			seen[op.Path] = true
			order = append(order, op.Path)
		}
	}
	if len(order) != 3 || order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("server applied order = %v", order)
	}
	if r.eng.Health() != Healthy {
		t.Fatalf("health = %v after full flush", r.eng.Health())
	}
}

func TestDrainReportsUnsent(t *testing.T) {
	r := newFlakyRig(t, 0)
	r.flaky.down = true
	if err := r.eng.Create("f"); err != nil {
		t.Fatal(err)
	}
	r.clk.Advance(time.Minute)
	r.eng.Tick(r.clk.Now())
	if err := r.eng.Drain(); err == nil {
		t.Fatal("Drain succeeded with the endpoint down")
	}
	r.flaky.down = false
	if err := r.eng.Drain(); err != nil {
		t.Fatalf("Drain after heal: %v", err)
	}
}

func TestHighWaterMarksOffline(t *testing.T) {
	r := newFlakyRig(t, 1) // one buffered byte is already over the limit
	r.flaky.down = true
	if err := r.eng.Create("f"); err != nil {
		t.Fatal(err)
	}
	r.step(time.Minute)
	if h := r.eng.Health(); h != Offline {
		t.Fatalf("health over high water = %v, want offline", h)
	}
}

// TestCrashDuringPartitionRecovers composes the three fault dimensions over
// a real TCP transport: a network partition strands updates and fails a
// restore attempt, a crash (volatile state lost + a torn local write)
// corrupts a dirty file, and after the partition heals the crash scan
// restores the file from the cloud and the client resumes syncing with no
// conflicts and no duplicate applies.
func TestCrashDuringPartitionRecovers(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	plan := faultinject.NewNetPlan(faultinject.NetFaultConfig{Seed: 1})
	srv := server.New(nil)
	go wire.Serve(plan.Listener(lis), srv)

	sm := &metrics.SyncMeter{}
	srv.SetSyncMeter(sm)
	policy := wire.RetryPolicy{MaxAttempts: 2, Seed: 1, Sleep: func(time.Duration) {}}
	ep, err := wire.DialResilient(context.Background(), lis.Addr().String(), wire.DialOpts{}, policy, sm)
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()

	backing := vfs.NewMemFS()
	clk := &clock.Clock{}
	eng, err := New(Config{
		Backing:   backing,
		Endpoint:  ep,
		Clock:     clk,
		Checksums: true,
		SyncMeter: sm,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: healthy sync.
	content := []byte("stable content the cloud holds")
	if err := eng.Create("f"); err != nil {
		t.Fatal(err)
	}
	if err := eng.WriteAt("f", 0, content); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Minute)
	eng.Tick(clk.Now())
	if err := eng.Drain(); err != nil {
		t.Fatal(err)
	}
	if got, ok := srv.FileContent("f"); !ok || !bytes.Equal(got, content) {
		t.Fatalf("pre-partition sync failed: %q %v", got, ok)
	}

	// Phase 2: partition. An update to f buffers locally; health degrades.
	plan.PartitionFor(1 << 30)
	if err := eng.WriteAt("f", 0, []byte("written during partition")); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Minute)
	eng.Tick(clk.Now())
	if h := eng.Health(); h == Healthy {
		t.Fatal("engine healthy inside a partition")
	}
	// A further tick inside the partition accrues degraded time.
	clk.Advance(10 * time.Second)
	eng.Tick(clk.Now())

	// Phase 3: crash during the partition. Volatile state is lost and the
	// dirty file is torn; restore cannot reach the cloud yet.
	eng.DropVolatileState()
	if err := backing.WriteAt("f", 0, []byte("XXXX torn by the crash XXXX")); err != nil {
		t.Fatal(err)
	}
	rep, err := eng.CrashScan(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Inconsistent) != 1 || rep.Inconsistent[0] != "f" {
		t.Fatalf("inconsistent = %v", rep.Inconsistent)
	}
	if len(rep.Restored) != 0 {
		t.Fatal("restore succeeded through a partition")
	}

	// Phase 4: heal, rescan, resume. The cloud's copy may be either the
	// pre-partition content or the partition-time write: the push whose
	// bytes were already in flight when the partition hit can land
	// server-side with its reply lost (a genuine ambiguous apply). Restore
	// must converge on whichever copy the cloud holds.
	plan.Heal()
	rep, err = eng.CrashScan(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Restored) != 1 || rep.Restored[0] != "f" {
		t.Fatalf("restored = %v (inconsistent %v)", rep.Restored, rep.Inconsistent)
	}
	cloudCopy, ok := srv.FileContent("f")
	if !ok {
		t.Fatal("cloud lost f")
	}
	local, err := backing.ReadFile("f")
	if err != nil || !bytes.Equal(local, cloudCopy) {
		t.Fatalf("post-restore content = %q, cloud holds %q (%v)", local, cloudCopy, err)
	}
	if err := eng.ResyncVersions(); err != nil {
		t.Fatal(err)
	}
	final := []byte("post-recovery update")
	if err := eng.WriteAt("f", 0, final); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Minute)
	eng.Tick(clk.Now())
	if err := eng.Drain(); err != nil {
		t.Fatal(err)
	}
	got, _ := srv.FileContent("f")
	want := append(append([]byte(nil), final...), cloudCopy[len(final):]...)
	if !bytes.Equal(got, want) {
		t.Fatalf("final server content = %q, want %q", got, want)
	}
	st := eng.Stats()
	if st.Conflicts != 0 || st.RemoteConflicts != 0 {
		t.Fatalf("conflicts after recovery: %+v", st)
	}
	if d := srv.DuplicateApplies(); d != 0 {
		t.Fatalf("DuplicateApplies = %d", d)
	}
	if sm.Retries() == 0 || sm.Degraded() == 0 {
		t.Fatalf("fault metrics empty: %+v", sm.Snapshot())
	}
}

package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/vfs"
	"repro/internal/wire"
)

// traceEP wraps an endpoint and records every pushed node, so a convergence
// failure dumps the exact upload history.
type traceEP struct {
	wire.Endpoint
	log *[]string
}

func (l traceEP) Push(b *wire.Batch) (*wire.PushReply, error) {
	for _, n := range b.Nodes {
		*l.log = append(*l.log, fmt.Sprintf("PUSH %s %s dst=%s base=%v ver=%v payload=%d atomic=%v",
			n.Kind, n.Path, n.Dst, n.Base, n.Ver, n.PayloadBytes(), b.Atomic))
	}
	rep, err := l.Endpoint.Push(b)
	if rep != nil && (rep.Err != "" || len(rep.Conflicts) > 0) {
		*l.log = append(*l.log, fmt.Sprintf("REPLY err=%q conflicts=%v", rep.Err, rep.Conflicts))
	}
	return rep, err
}

// TestRandomOpsConvergence is the system-level property test: an arbitrary
// operation sequence issued through the DeltaCFS engine must leave the cloud
// bit-identical to the same sequence applied to a plain file system —
// whatever combination of write batching, delta triggering, node dropping,
// backindex grouping and trash preservation the sequence tickles.
func TestRandomOpsConvergence(t *testing.T) {
	var seeds []int64
	for i := int64(1); i <= 24; i++ {
		seeds = append(seeds, i)
	}
	if testing.Short() {
		seeds = seeds[:4]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runRandomOps(t, seed, 400)
		})
	}
}

func runRandomOps(t *testing.T, seed int64, nOps int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))

	reference := vfs.NewMemFS()
	r := newRig(t, false)
	var oplog []string
	// Rebuild the engine over a push-tracing endpoint so failures are
	// diagnosable from the upload history.
	ep := traceEP{Endpoint: server.NewLoopback(r.srv, r.meter, r.traffic), log: &oplog}
	eng, err := New(Config{Backing: r.backing, Endpoint: ep, Clock: r.clk, Meter: r.meter})
	if err != nil {
		t.Fatal(err)
	}
	r.eng = eng
	dump := func() {
		start := len(oplog) - 10000
		if start < 0 {
			start = 0
		}
		for _, l := range oplog[start:] {
			t.Log(l)
		}
	}

	// A small namespace so operations collide and patterns emerge.
	names := []string{"a", "b", "c", "d", "tmp", "f~", "doc"}
	pick := func() string { return names[rng.Intn(len(names))] }

	// Mirror every successful engine op onto the reference FS. Outcomes
	// (success/failure) must agree, except where DeltaCFS semantics differ
	// intentionally (none do at the vfs level).
	apply := func(desc string, do func(fs vfs.FS) error) {
		engErr := do(r.eng.FS())
		refErr := do(reference)
		oplog = append(oplog, fmt.Sprintf("OP %s err=%v", desc, engErr))
		if (engErr == nil) != (refErr == nil) {
			t.Fatalf("divergent outcome: engine=%v reference=%v", engErr, refErr)
		}
	}

	now := time.Duration(0)
	for i := 0; i < nOps; i++ {
		switch rng.Intn(10) {
		case 0, 1:
			p := pick()
			apply("create "+p, func(fs vfs.FS) error { return fs.Create(p) })
		case 2, 3, 4, 5:
			p := pick()
			data := make([]byte, 1+rng.Intn(8<<10))
			rng.Read(data)
			off := int64(rng.Intn(32 << 10))
			apply(fmt.Sprintf("write %s off=%d len=%d", p, off, len(data)),
				func(fs vfs.FS) error { return fs.WriteAt(p, off, data) })
		case 6:
			p := pick()
			sz := int64(rng.Intn(16 << 10))
			apply(fmt.Sprintf("trunc %s %d", p, sz),
				func(fs vfs.FS) error { return fs.Truncate(p, sz) })
		case 7:
			src, dst := pick(), pick()
			if src != dst {
				apply(fmt.Sprintf("rename %s %s", src, dst),
					func(fs vfs.FS) error { return fs.Rename(src, dst) })
			}
		case 8:
			p := pick()
			apply("unlink "+p, func(fs vfs.FS) error { return fs.Unlink(p) })
		case 9:
			p := pick()
			apply("close "+p, func(fs vfs.FS) error { return fs.Close(p) })
		}
		if rng.Intn(4) == 0 {
			now += time.Duration(rng.Intn(5000)) * time.Millisecond
			r.clk.Set(now)
			r.eng.Tick(r.clk.Now())
			oplog = append(oplog, fmt.Sprintf("TICK %v", now))
		}
	}
	r.clk.Advance(time.Minute)
	r.eng.Tick(r.clk.Now())
	if err := r.eng.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := r.eng.LastPushError(); err != nil {
		t.Fatal(err)
	}

	// Every reference file must exist on the cloud with identical content,
	// and the cloud must hold nothing else (modulo trash bookkeeping,
	// which never uploads).
	refFiles, err := reference.List("")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range refFiles {
		want, _ := reference.ReadFile(p)
		got, ok := r.srv.FileContent(p)
		if !ok {
			dump()
			t.Fatalf("cloud missing %s (%d bytes expected)", p, len(want))
		}
		if !bytes.Equal(got, want) {
			dump()
			t.Fatalf("%s: cloud %d bytes != reference %d bytes", p, len(got), len(want))
		}
	}
	refSet := make(map[string]bool, len(refFiles))
	for _, p := range refFiles {
		refSet[p] = true
	}
	for _, p := range r.srv.Files() {
		if !refSet[p] && !strings.HasPrefix(p, ".deltacfs/") {
			t.Fatalf("cloud has unexpected file %s", p)
		}
	}
}

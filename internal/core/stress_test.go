package core

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestConcurrentOpsStress fires concurrent WriteAt/Rename/Close/Tick at one
// engine while triggered delta encodings are in flight on the worker pool,
// then checks the queue and accounting invariants the pool must preserve:
// after a drain nothing is left queued or buffered, no push failed, and
// every file's server copy equals the local one. Run under -race this also
// exercises the engine-lock/worker handoff.
func TestConcurrentOpsStress(t *testing.T) {
	r := newRig(t, false)
	fs := r.eng.FS()

	const nFiles = 4
	const fileSize = 96 << 10
	docBase := make([][]byte, nFiles)
	dbBase := make([][]byte, nFiles)
	for i := 0; i < nFiles; i++ {
		docBase[i] = randBytes(int64(i+1), fileSize)
		dbBase[i] = randBytes(int64(100+i), fileSize)
		r.seed(fmt.Sprintf("doc%d", i), docBase[i])
		r.seed(fmt.Sprintf("db%d", i), dbBase[i])
	}

	// tweak returns content with a few small edits — a realistic update whose
	// delta is far smaller than its write payload, so the in-place trigger's
	// size comparison favors the delta.
	tweak := func(content []byte, seed int64) []byte {
		out := append([]byte(nil), content...)
		edits := randBytes(seed, 64)
		for k := 0; k < 4; k++ {
			off := (int(seed)*131 + k*17509) % (len(out) - len(edits))
			copy(out[off:], edits)
		}
		return out
	}

	stop := make(chan struct{})
	var tickWG sync.WaitGroup
	tickWG.Add(1)
	go func() {
		defer tickWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			r.clk.Advance(50 * time.Millisecond)
			r.eng.Tick(r.clk.Now())
		}
	}()

	var writerWG sync.WaitGroup
	for i := 0; i < nFiles; i++ {
		// Transactional saver: write a temp file, rename it over the
		// document (the gedit pattern — rename-triggered delta).
		writerWG.Add(1)
		go func(i int) {
			defer writerWG.Done()
			doc := fmt.Sprintf("doc%d", i)
			content := docBase[i]
			for round := 0; round < 5; round++ {
				tmp := fmt.Sprintf("doc%d.tmp%d", i, round)
				content = tweak(content, int64(i*1000+round))
				if err := fs.Create(tmp); err != nil {
					t.Error(err)
					return
				}
				if err := fs.WriteAt(tmp, 0, content); err != nil {
					t.Error(err)
					return
				}
				if err := fs.Close(tmp); err != nil {
					t.Error(err)
					return
				}
				if err := fs.Rename(tmp, doc); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)

		// In-place updater: rewrite the whole file with small edits and
		// close (the SQLite pattern — in-place-triggered delta).
		writerWG.Add(1)
		go func(i int) {
			defer writerWG.Done()
			db := fmt.Sprintf("db%d", i)
			content := dbBase[i]
			for round := 0; round < 5; round++ {
				content = tweak(content, int64(i*77+round))
				if err := fs.WriteAt(db, 0, content); err != nil {
					t.Error(err)
					return
				}
				if err := fs.Close(db); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}

	writerWG.Wait()
	close(stop)
	tickWG.Wait()
	if t.Failed() {
		return
	}
	r.settle(t)

	// Deterministic tail rounds with no concurrent ticks, so both trigger
	// kinds are guaranteed to fire at least once regardless of how the
	// concurrent phase interleaved with uploads.
	before := r.eng.Stats()
	dbContent, err := fs.ReadFile("db0")
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteAt("db0", 0, tweak(dbContent, 999)); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close("db0"); err != nil {
		t.Fatal(err)
	}
	docContent, err := fs.ReadFile("doc0")
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Create("doc0.tmpz"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteAt("doc0.tmpz", 0, tweak(docContent, 888)); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close("doc0.tmpz"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("doc0.tmpz", "doc0"); err != nil {
		t.Fatal(err)
	}
	r.settle(t)

	after := r.eng.Stats()
	if after.InPlaceDeltas <= before.InPlaceDeltas {
		t.Errorf("in-place delta did not trigger (before %d, after %d)",
			before.InPlaceDeltas, after.InPlaceDeltas)
	}
	if after.DeltaTriggers <= before.DeltaTriggers {
		t.Errorf("rename delta did not trigger (before %d, after %d)",
			before.DeltaTriggers, after.DeltaTriggers)
	}
	if after.Conflicts != 0 {
		t.Errorf("server reported %d conflicts", after.Conflicts)
	}
	if n := r.eng.QueueLen(); n != 0 {
		t.Errorf("queue not empty after drain: %d nodes", n)
	}
	if b := r.eng.QueueBufferedBytes(); b != 0 {
		t.Errorf("buffered-byte accounting did not return to zero: %d", b)
	}
	if n := r.eng.pool.inFlight(); n != 0 {
		t.Errorf("%d delta jobs still uncommitted after drain", n)
	}
	for i := 0; i < nFiles; i++ {
		r.assertSynced(t, fmt.Sprintf("doc%d", i))
		r.assertSynced(t, fmt.Sprintf("db%d", i))
	}
}

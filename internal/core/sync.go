package core

import (
	"fmt"
	"time"

	"repro/internal/rsync"
	"repro/internal/syncqueue"
	"repro/internal/version"
	"repro/internal/wire"
)

// pollInterval rate-limits forwarding polls to one per logical second.
const pollInterval = time.Second

// Tick advances background processing to logical time now: relation-table
// expiry (with trash cleanup), pack-time delta decisions for aged open
// write nodes, delayed uploads, and forwarded-update polling. The trace
// replayer calls this after every clock advance.
func (e *Engine) Tick(now time.Duration) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.meterDegraded(now)
	for _, ent := range e.rel.Expire(now) {
		if ent.FromUnlink {
			_ = e.backing.Unlink(ent.Dst)
		}
	}
	for _, path := range e.q.OpenReady(now) {
		e.packDecision(path)
	}
	// Every reserved delta node must be filled before the queue may release
	// it for upload.
	e.pool.joinAll()
	for _, b := range e.q.PopReady(now) {
		e.pushBatch(b)
	}
	// Resume: even with nothing newly ready, retry batches stranded by
	// earlier push failures.
	e.flushUnsent()
	if now-e.lastPoll >= pollInterval {
		e.lastPoll = now
		e.pollForwarded()
	}
}

// Drain forces everything pending onto the cloud (end of trace / shutdown),
// joining all in-flight delta workers first.
func (e *Engine) Drain() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, path := range e.q.OpenReady(1<<62 - 1) {
		e.packDecision(path)
	}
	e.pool.joinAll()
	for _, b := range e.q.Drain() {
		e.pushBatch(b)
	}
	e.flushUnsent()
	e.pollForwarded()
	if n := len(e.unsent); n > 0 {
		return fmt.Errorf("core: drain: %d batches still unsent: %w", n, e.lastPushErr)
	}
	return nil
}

// packDecision runs when a write node for path stops growing (close,
// upload selection): if a relation-triggered delta is pending, or the
// in-place update rewrote more than the threshold fraction of the file,
// replace the buffered raw writes with a local rsync delta (§III-A).
func (e *Engine) packDecision(path string) {
	e.pool.joinPath(path)
	if e.cfg.DisableDelta {
		e.undo.Reset(path)
		return
	}
	if pd, ok := e.pendingDelta[path]; ok {
		e.resolvePendingDelta(path, pd)
		return
	}
	e.maybeInPlaceDelta(path)
	// The file's state at pack time becomes the base for the next update
	// cycle.
	e.undo.Reset(path)
}

// resolvePendingDelta finishes the unlink-then-rewrite pattern: the file was
// deleted (preserved in trash) and re-created; its buffered unlink/create/
// write nodes collapse into one delta against the version the cloud still
// holds.
func (e *Engine) resolvePendingDelta(path string, pd pendingBase) {
	defer func() {
		delete(e.pendingDelta, path)
		_ = e.backing.Unlink(pd.basePath)
		e.undo.Reset(path)
	}()

	// The optimization collapses exactly the unlink/create(/write) triple
	// of this rewrite cycle. Any other pending node touching the path —
	// an older cycle's leftovers, a rename onto it, an interleaved
	// truncate — voids the invariant that the cloud's content at the
	// collapsed position is the pre-unlink version, so ship raw instead.
	kinds := e.q.PendingKinds(path)
	validTriple := len(kinds) == 3 && kinds[0] == syncqueue.KindUnlink &&
		kinds[1] == syncqueue.KindCreate && kinds[2] == syncqueue.KindWrite
	validPair := len(kinds) == 2 && kinds[0] == syncqueue.KindUnlink &&
		kinds[1] == syncqueue.KindCreate
	if !validTriple && !validPair {
		return
	}

	newContent, err := e.backing.ReadFile(path)
	if err != nil {
		return
	}
	baseContent, err := e.backing.ReadFile(pd.basePath)
	if err != nil {
		return
	}
	e.meter.DiskIO(int64(len(newContent)) + int64(len(baseContent)))

	// The unlink must still be queued, or the cloud has already deleted
	// the file and a delta against it cannot apply.
	if !e.q.RemoveRecent(path, syncqueue.KindUnlink) {
		return
	}
	// Without the create node the cloud never truncates the file, so the
	// delta (whose target is the full new content) lands on the old
	// version — exactly what DeltaLocal encodes against.
	if !e.q.RemoveRecent(path, syncqueue.KindCreate) {
		return // unlink removed alone is still correct: create+write follow raw
	}
	// Reserve the delta's queue position and version now; encode on the
	// pool against the snapshots read above and fill the node at join time,
	// which Tick/Drain force before any upload.
	node := &syncqueue.Node{
		Kind: syncqueue.KindDelta,
		Path: path,
		At:   e.clk.Now(),
	}
	node.Ver = e.counter.Next()
	if !e.q.ReplaceWithDelta(path, node) {
		// The file was re-created but never written (no write node to
		// replace). The unlink and create are already removed, so the
		// delta — whose base is the cloud's still-current content — must
		// be appended, or the update would vanish entirely.
		e.q.Append(node)
	}
	// The cloud's version of path is still the pre-unlink version.
	node.Base = pd.baseVer
	e.vers.Set(path, node.Ver)
	e.stats.DeltaTriggers++
	bs, meter := e.cfg.BlockSize, e.meter
	var d *rsync.Delta
	e.pool.dispatch(path,
		func() { d = rsync.DeltaLocal(baseContent, newContent, bs, meter) },
		func() { e.q.FillDelta(node, d) })
}

// maybeInPlaceDelta applies the §III-A extension: when an in-place update
// has overwritten more than InPlaceThreshold of the file, reconstruct the
// old version from the undo log and ship a delta if it is smaller than the
// buffered raw writes.
func (e *Engine) maybeInPlaceDelta(path string) {
	oldSize, tracked := e.undo.OldSize(path)
	if !tracked || oldSize <= 0 {
		return
	}
	preserved := e.undo.PreservedBytes(path)
	if float64(preserved) < e.cfg.InPlaceThreshold*float64(oldSize) {
		return
	}
	if !e.q.OnlyWriteNodePending(path) {
		return
	}
	wn := e.q.LatestPendingWrite(path)
	if wn == nil {
		return
	}
	payload := wn.PayloadBytes()
	if payload == 0 {
		return
	}
	current, err := e.backing.ReadFile(path)
	if err != nil {
		return
	}
	old, ok := e.undo.OldVersion(path, current)
	if !ok {
		return
	}
	e.meter.DiskIO(int64(len(current)))
	// Unlike the rename-triggered cases, whether the delta replaces the raw
	// writes depends on the encoded size, so the substitution itself must
	// wait for the worker. The write node and the queue tail are pinned here
	// so the commit produces the position and backindex group an immediate
	// replacement would have; joinPath at every operation on path keeps both
	// valid until the commit runs.
	tail := e.q.TailSeq()
	at := e.clk.Now()
	bs, meter := e.cfg.BlockSize, e.meter
	var d *rsync.Delta
	e.pool.dispatch(path,
		func() { d = rsync.DeltaLocal(old, current, bs, meter) },
		func() {
			if d.WireSize() >= payload {
				d.Release() // raw writes are already the cheaper encoding
				return
			}
			node := &syncqueue.Node{
				Kind:  syncqueue.KindDelta,
				Path:  path,
				Delta: d,
				At:    at,
			}
			node.Ver = e.counter.Next()
			if e.q.ReplaceWithDeltaAt(wn, node, tail) {
				e.vers.Set(path, node.Ver)
				e.stats.InPlaceDeltas++
			}
		})
}

// kindToWire maps queue node kinds onto wire node kinds.
var kindToWire = map[syncqueue.Kind]wire.NodeKind{
	syncqueue.KindCreate:   wire.NCreate,
	syncqueue.KindWrite:    wire.NWrite,
	syncqueue.KindTruncate: wire.NTruncate,
	syncqueue.KindRename:   wire.NRename,
	syncqueue.KindLink:     wire.NLink,
	syncqueue.KindUnlink:   wire.NUnlink,
	syncqueue.KindMkdir:    wire.NMkdir,
	syncqueue.KindRmdir:    wire.NRmdir,
	syncqueue.KindDelta:    wire.NDelta,
}

// pushBatch converts a queue batch to wire form, stamps its idempotency key
// and hands it to the unsent buffer, which uploads in order. The key is
// assigned exactly once here: an engine-level retransmission after a failed
// push reuses it, so the server can absorb a replay whose first attempt was
// ambiguously applied.
func (e *Engine) pushBatch(b syncqueue.Batch) {
	e.batchSeq++
	wb := &wire.Batch{Atomic: b.Atomic, Seq: e.batchSeq,
		Nodes: make([]*wire.Node, 0, len(b.Nodes))}
	for _, n := range b.Nodes {
		wn := &wire.Node{
			Kind:     kindToWire[n.Kind],
			Path:     n.Path,
			Dst:      n.Dst,
			Size:     n.Size,
			Delta:    n.Delta,
			BasePath: n.BasePath,
			Base:     n.Base,
			Ver:      n.Ver,
		}
		for _, ext := range n.Extents {
			wn.Extents = append(wn.Extents, wire.Extent{Off: ext.Off, Data: ext.Data})
		}
		wb.Nodes = append(wb.Nodes, wn)
	}
	e.enqueueUnsent(wb)
}

// LastPushError returns the most recent upload failure, if any.
func (e *Engine) LastPushError() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.lastPushErr
}

// pollForwarded applies updates other clients pushed to shared files
// (§III-D: the cloud forwards incremental data verbatim).
func (e *Engine) pollForwarded() {
	batches, err := e.ep.Poll()
	if err != nil {
		return
	}
	for _, b := range batches {
		if b.Client == e.clientID {
			continue // our own batch reflected back (defensive)
		}
		e.applyRemote(b)
	}
}

// applyRemote applies one forwarded batch to the local tree. A forwarded
// node whose base version does not match our local version means we have
// concurrent local edits: the forwarded content is materialized as a
// conflict file and the user resolves it (§III-C/§III-D).
func (e *Engine) applyRemote(b *wire.Batch) {
	// Forwarded batches are wire input too: the server validates pushes,
	// but a client cannot assume the forwarding server is honest. Reject
	// malformed batches whole before applying any node to the local tree.
	if err := b.Validate(); err != nil {
		return
	}
	for _, n := range b.Nodes {
		if err := e.applyRemoteNode(n); err != nil {
			continue
		}
	}
}

func (e *Engine) applyRemoteNode(n *wire.Node) error {
	switch n.Kind {
	case wire.NMkdir:
		return e.backing.Mkdir(n.Path)
	case wire.NRmdir:
		return e.backing.Rmdir(n.Path)
	}
	if !version.CheckBase(e.vers.Get(n.Path), n.Base) {
		e.stats.RemoteConflicts++
		name := fmt.Sprintf("%s.conflict-%d-%d", n.Path, n.Ver.Client, n.Ver.Count)
		e.conflictFiles = append(e.conflictFiles, name)
		if content, err := e.remoteContent(n); err == nil && content != nil {
			_ = e.backing.Create(name)
			_ = e.backing.WriteAt(name, 0, content)
		}
		return nil
	}
	switch n.Kind {
	case wire.NCreate:
		if err := e.backing.Create(n.Path); err != nil {
			return err
		}
	case wire.NWrite:
		for _, ext := range n.Extents {
			if err := e.backing.WriteAt(n.Path, ext.Off, ext.Data); err != nil {
				return err
			}
		}
	case wire.NTruncate:
		if err := e.backing.Truncate(n.Path, n.Size); err != nil {
			return err
		}
	case wire.NRename:
		if err := e.backing.Rename(n.Path, n.Dst); err != nil {
			return err
		}
		e.vers.Rename(n.Path, n.Dst)
		e.vers.Set(n.Dst, n.Ver)
		if e.cfg.Checksums {
			e.noteKVErr(e.integ.Rename(n.Path, n.Dst))
		}
		e.stats.RemoteApplied++
		return nil
	case wire.NLink:
		if err := e.backing.Link(n.Path, n.Dst); err != nil {
			return err
		}
		e.vers.Set(n.Dst, n.Ver)
		e.stats.RemoteApplied++
		return nil
	case wire.NUnlink:
		if err := e.backing.Unlink(n.Path); err != nil {
			return err
		}
		e.vers.Delete(n.Path)
		if e.cfg.Checksums {
			e.noteKVErr(e.integ.Remove(n.Path))
		}
		e.stats.RemoteApplied++
		return nil
	case wire.NDelta, wire.NFull:
		content, err := e.remoteContent(n)
		if err != nil {
			return err
		}
		if err := e.replaceLocal(n.Path, content); err != nil {
			return err
		}
	default:
		return fmt.Errorf("core: forwarded node kind %v unsupported", n.Kind)
	}
	if !n.Ver.IsZero() {
		e.vers.Set(n.Path, n.Ver)
	}
	if e.cfg.Checksums {
		content, err := e.backing.ReadFile(n.Path)
		if err == nil {
			e.noteKVErr(e.integ.SetFile(n.Path, content))
		}
	}
	e.stats.RemoteApplied++
	return nil
}

// remoteContent materializes the content a forwarded node produces.
func (e *Engine) remoteContent(n *wire.Node) ([]byte, error) {
	switch n.Kind {
	case wire.NFull:
		return n.Full, nil
	case wire.NDelta:
		basePath := n.BasePath
		if basePath == "" {
			basePath = n.Path
		}
		base, err := e.backing.ReadFile(basePath)
		if err != nil {
			base = nil
		}
		return rsync.Patch(base, n.Delta, e.meter)
	case wire.NWrite:
		base, err := e.backing.ReadFile(n.Path)
		if err != nil {
			base = nil
		}
		buf := append([]byte(nil), base...)
		for _, ext := range n.Extents {
			if ext.Off < 0 {
				return nil, fmt.Errorf("core: %s: negative extent offset %d", n.Path, ext.Off)
			}
			if end := ext.Off + int64(len(ext.Data)); end > int64(len(buf)) {
				grown := make([]byte, end)
				copy(grown, buf)
				buf = grown
			}
			copy(buf[ext.Off:], ext.Data)
		}
		return buf, nil
	}
	return nil, nil
}

// replaceLocal overwrites path's full content in the backing store.
func (e *Engine) replaceLocal(path string, content []byte) error {
	if err := e.backing.Create(path); err != nil {
		return err
	}
	if len(content) == 0 {
		return nil
	}
	return e.backing.WriteAt(path, 0, content)
}

package core

import (
	"fmt"
	"strings"

	"repro/internal/integrity"
	"repro/internal/relation"
	"repro/internal/syncqueue"
	"repro/internal/undolog"
	"repro/internal/version"
)

// verifyAndRecoverRange checks the blocks covering [off, off+n) of path
// against stored checksums; corrupted blocks trigger recovery of the whole
// file from the cloud (§III-E: "we use the correct data on the cloud to
// recover").
func (e *Engine) verifyAndRecoverRange(path string, off, n int64) error {
	bad, err := e.integ.VerifyRange(path, off, n, e.readBlock(path))
	if err != nil {
		return err
	}
	if len(bad) == 0 {
		return nil
	}
	e.stats.Corruptions += len(bad)
	return e.recoverFromCloud(path)
}

// recoverFromCloud replaces path's local content and checksums with the
// cloud's copy.
func (e *Engine) recoverFromCloud(path string) error {
	rep, err := e.ep.Fetch(path)
	if err != nil {
		return fmt.Errorf("core: recover %s: %w", path, err)
	}
	if !rep.Exists {
		return fmt.Errorf("core: recover %s: cloud has no copy", path)
	}
	if err := e.replaceLocal(path, rep.Content); err != nil {
		return err
	}
	if err := e.integ.SetFile(path, rep.Content); err != nil {
		return err
	}
	e.stats.Recovered++
	return nil
}

// PrimeChecksums computes block checksums for every file currently in the
// backing store — what a real client does when it first indexes an existing
// sync folder. Harnesses call this after seeding initial state.
func (e *Engine) PrimeChecksums() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	paths, err := e.backing.List("")
	if err != nil {
		return err
	}
	for _, p := range paths {
		content, err := e.backing.ReadFile(p)
		if err != nil {
			return err
		}
		if err := e.integ.SetFile(p, content); err != nil {
			return err
		}
	}
	return nil
}

// RecoveryReport summarizes a post-crash integrity scan.
type RecoveryReport struct {
	// Scanned lists the recently-modified files checked.
	Scanned []string
	// Inconsistent lists files whose content disagreed with their
	// checksums (data changed without metadata — the ordered-journaling
	// crash signature).
	Inconsistent []string
	// Restored lists the inconsistent files replaced with the cloud copy.
	Restored []string
	// Missing lists dirty files that no longer exist locally.
	Missing []string
}

// DropVolatileState simulates a crash: everything not persisted (the Sync
// Queue, relation table, undo log, pending deltas) is lost. The checksum
// store and dirty-file set live in the kvstore and survive. Experiments
// call this before CrashScan.
func (e *Engine) DropVolatileState() {
	e.mu.Lock()
	defer e.mu.Unlock()
	// Everything before the simulated crash point completed synchronously in
	// the serial engine, so settle in-flight encodes before dropping state.
	e.pool.joinAll()
	e.q = syncqueue.New(e.cfg.UploadDelay)
	e.rel = relation.New(e.cfg.RelationTimeout)
	e.undo = undolog.New(e.meter)
	e.pendingDelta = make(map[string]pendingBase)
	e.trashVer = make(map[string]version.ID)
	// The unsent buffer is volatile too; local files remain the durable
	// copy and CrashScan reconciles them against the cloud. batchSeq is
	// durable client state (like the version counter): a post-crash batch
	// must never reuse a key the server may already have applied.
	e.unsent = nil
	e.unsentBytes = 0
	e.consecFails = 0
	e.lastPushErr = nil
}

// ResyncVersions refreshes the local version map from cloud metadata — the
// reconnect step after a crash or long partition, matching the persist-layer
// contract that "a reconnecting client re-syncs via Head metadata". With no
// arguments every local file is refreshed; otherwise only the given paths.
// Local versions the cloud never saw (batches lost to the crash) rewind to
// the cloud's, so the next update chains onto a base the server recognizes.
func (e *Engine) ResyncVersions(paths ...string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(paths) == 0 {
		var err error
		paths, err = e.backing.List("")
		if err != nil {
			return err
		}
	}
	for _, p := range paths {
		v, ok, err := e.ep.Head(p)
		if err != nil {
			return fmt.Errorf("core: resync %s: %w", p, err)
		}
		if ok {
			e.vers.Set(p, v)
		} else {
			e.vers.Delete(p)
		}
	}
	return nil
}

// CrashScan is the post-crash check (§III-E): every recently-modified file
// is compared against its block checksums; inconsistent files are restored
// from the cloud when restore is true (the paper lets the user decide which
// version to keep — restore=false reports without touching local data).
func (e *Engine) CrashScan(restore bool) (*RecoveryReport, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	report := &RecoveryReport{}
	var dirty []string
	err := e.kv.Range([]byte("dirty/"), func(k, v []byte) bool {
		dirty = append(dirty, strings.TrimPrefix(string(k), "dirty/"))
		return true
	})
	if err != nil {
		return nil, err
	}
	for _, path := range dirty {
		report.Scanned = append(report.Scanned, path)
		content, err := e.backing.ReadFile(path)
		if err != nil {
			report.Missing = append(report.Missing, path)
			continue
		}
		has, err := e.integ.Has(path)
		if err != nil {
			return nil, err
		}
		if !has {
			continue // never checksummed (checksums disabled when written)
		}
		bad, err := e.integ.Verify(path, content)
		if err != nil {
			return nil, err
		}
		if len(bad) == 0 {
			continue
		}
		report.Inconsistent = append(report.Inconsistent, path)
		if restore {
			if err := e.recoverFromCloud(path); err == nil {
				report.Restored = append(report.Restored, path)
			}
		}
	}
	return report, nil
}

// blockSizeCheck asserts the integrity and rsync layers agree on block
// granularity (the paper's checksum-reuse trick requires it).
var _ = func() struct{} {
	if integrity.BlockSize != 4096 {
		panic("integrity block size must match the rsync default")
	}
	return struct{}{}
}()

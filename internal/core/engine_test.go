package core

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/metrics"
	"repro/internal/server"
	"repro/internal/trace"
	"repro/internal/vfs"
)

// rig is a complete single-client test fixture: MemFS backing, in-process
// server, DeltaCFS engine.
type rig struct {
	backing *vfs.MemFS
	srv     *server.Server
	eng     *Engine
	clk     *clock.Clock
	meter   *metrics.CPUMeter
	traffic *metrics.TrafficMeter
}

func newRig(t *testing.T, checksums bool) *rig {
	t.Helper()
	r := &rig{
		backing: vfs.NewMemFS(),
		clk:     &clock.Clock{},
		meter:   metrics.NewCPUMeter(metrics.PC),
		traffic: &metrics.TrafficMeter{},
	}
	r.srv = server.New(metrics.NewCPUMeter(metrics.PC))
	ep := server.NewLoopback(r.srv, r.meter, r.traffic)
	eng, err := New(Config{
		Backing:   r.backing,
		Endpoint:  ep,
		Clock:     r.clk,
		Meter:     r.meter,
		Checksums: checksums,
	})
	if err != nil {
		t.Fatal(err)
	}
	r.eng = eng
	return r
}

// seed installs content on both sides (the pre-sync state).
func (r *rig) seed(path string, content []byte) {
	if err := r.backing.Create(path); err != nil {
		panic(err)
	}
	if len(content) > 0 {
		if err := r.backing.WriteAt(path, 0, content); err != nil {
			panic(err)
		}
	}
	r.srv.SeedFile(path, content)
}

// settle advances the clock past all delays and drains the engine.
func (r *rig) settle(t *testing.T) {
	t.Helper()
	r.clk.Advance(time.Minute)
	r.eng.Tick(r.clk.Now())
	if err := r.eng.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := r.eng.LastPushError(); err != nil {
		t.Fatalf("push error: %v", err)
	}
}

// assertSynced verifies the server's copy of path equals the local one.
func (r *rig) assertSynced(t *testing.T, path string) {
	t.Helper()
	local, err := r.backing.ReadFile(path)
	if err != nil {
		t.Fatalf("local read %s: %v", path, err)
	}
	remote, ok := r.srv.FileContent(path)
	if !ok {
		t.Fatalf("server missing %s", path)
	}
	if !bytes.Equal(local, remote) {
		t.Fatalf("%s: server content diverged (local %d bytes, remote %d bytes)",
			path, len(local), len(remote))
	}
}

func randBytes(seed int64, n int) []byte {
	p := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(p)
	return p
}

func TestBasicWriteSync(t *testing.T) {
	r := newRig(t, false)
	fs := r.eng.FS()
	if err := fs.Create("f"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteAt("f", 0, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close("f"); err != nil {
		t.Fatal(err)
	}
	// Not yet uploaded: delay has not elapsed.
	if _, ok := r.srv.FileContent("f"); ok {
		t.Fatal("uploaded before the Sync Queue delay")
	}
	r.clk.Advance(4 * time.Second)
	r.eng.Tick(r.clk.Now())
	r.assertSynced(t, "f")
}

func TestWriteUploadsOnlyPayload(t *testing.T) {
	// The NFS-like-RPC property: a small write into a large seeded file
	// uploads roughly the write size, not the file size.
	r := newRig(t, false)
	big := randBytes(1, 4<<20)
	r.seed("big", big)

	fs := r.eng.FS()
	if err := fs.WriteAt("big", 1<<20, []byte("tiny change")); err != nil {
		t.Fatal(err)
	}
	r.settle(t)
	r.assertSynced(t, "big")
	if up := r.traffic.Uploaded(); up > 4096 {
		t.Fatalf("uploaded %d bytes for an 11-byte write", up)
	}
}

func TestWordTransactionalUpdate(t *testing.T) {
	// The full Fig 3 Word sequence with a content edit. The relation table
	// must trigger delta encoding and the upload must be near the edit
	// size, not the file size.
	r := newRig(t, false)
	oldContent := randBytes(2, 1<<20)
	r.seed("f", oldContent)

	newContent := append([]byte(nil), oldContent...)
	copy(newContent[100000:100200], randBytes(3, 200))

	fs := r.eng.FS()
	steps := []func() error{
		func() error { return fs.Rename("f", "t0") },
		func() error { return fs.Create("t1") },
		func() error { return fs.WriteAt("t1", 0, newContent) },
		func() error { return fs.Close("t1") },
		func() error { return fs.Rename("t1", "f") },
		func() error { return fs.Unlink("t0") },
	}
	for i, step := range steps {
		if err := step(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		r.clk.Advance(10 * time.Millisecond)
		r.eng.Tick(r.clk.Now())
	}
	r.settle(t)

	r.assertSynced(t, "f")
	if r.eng.Stats().DeltaTriggers == 0 {
		t.Fatal("transactional update did not trigger delta encoding")
	}
	// Upload must be far below the 1 MB rewrite (one rsync block per edit
	// region plus framing).
	if up := r.traffic.Uploaded(); up > 64<<10 {
		t.Fatalf("uploaded %d bytes; delta encoding ineffective", up)
	}
	// t0/t1 must not linger on the server.
	if _, ok := r.srv.FileContent("t0"); ok {
		t.Fatal("t0 lingers on server")
	}
	if _, ok := r.srv.FileContent("t1"); ok {
		t.Fatal("t1 lingers on server")
	}
	// Trash must be cleaned up locally after relation expiry.
	files, _ := r.backing.List(TrashDir)
	if len(files) != 0 {
		t.Fatalf("trash not cleaned: %v", files)
	}
}

func TestGeditLinkRenamePattern(t *testing.T) {
	// Fig 3 gedit: create tmp, write tmp, link f f~, rename tmp f.
	// The name-exists rule must trigger delta encoding.
	r := newRig(t, false)
	oldContent := randBytes(4, 512<<10)
	r.seed("f", oldContent)

	newContent := append([]byte(nil), oldContent...)
	newContent = append(newContent, randBytes(5, 300)...)

	fs := r.eng.FS()
	if err := fs.Create("tmp"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteAt("tmp", 0, newContent); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close("tmp"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Link("f", "f~"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("tmp", "f"); err != nil {
		t.Fatal(err)
	}
	r.settle(t)

	r.assertSynced(t, "f")
	r.assertSynced(t, "f~")
	fTilde, _ := r.srv.FileContent("f~")
	if !bytes.Equal(fTilde, oldContent) {
		t.Fatal("backup f~ does not hold the old version")
	}
	if r.eng.Stats().DeltaTriggers == 0 {
		t.Fatal("gedit pattern did not trigger delta encoding")
	}
	if up := r.traffic.Uploaded(); up > 64<<10 {
		t.Fatalf("uploaded %d bytes; name-exists delta ineffective", up)
	}
}

func TestUnlinkThenRewritePattern(t *testing.T) {
	// The paper's "bad file update": delete the file, then write its new
	// version. The relation entry from unlink enables the delta.
	r := newRig(t, false)
	oldContent := randBytes(6, 256<<10)
	r.seed("f", oldContent)

	newContent := append([]byte(nil), oldContent...)
	copy(newContent[1000:1100], randBytes(7, 100))

	fs := r.eng.FS()
	if err := fs.Unlink("f"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Create("f"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteAt("f", 0, newContent); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close("f"); err != nil {
		t.Fatal(err)
	}
	r.settle(t)

	r.assertSynced(t, "f")
	if r.eng.Stats().DeltaTriggers == 0 {
		t.Fatal("unlink-then-rewrite did not trigger delta encoding")
	}
	if up := r.traffic.Uploaded(); up > 32<<10 {
		t.Fatalf("uploaded %d bytes for a 100-byte change", up)
	}
}

func TestInPlaceLargeRewriteUsesDelta(t *testing.T) {
	// §III-A extension: an in-place update that rewrites the whole file
	// with mostly-identical content should ship a delta, courtesy of the
	// physical undo log.
	r := newRig(t, false)
	oldContent := randBytes(8, 512<<10)
	r.seed("f", oldContent)

	newContent := append([]byte(nil), oldContent...)
	copy(newContent[2000:2050], randBytes(9, 50))

	fs := r.eng.FS()
	// The application rewrites the entire file in place.
	if err := fs.WriteAt("f", 0, newContent); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close("f"); err != nil {
		t.Fatal(err)
	}
	r.settle(t)

	r.assertSynced(t, "f")
	if r.eng.Stats().InPlaceDeltas == 0 {
		t.Fatal("large in-place rewrite did not use delta encoding")
	}
	if up := r.traffic.Uploaded(); up > 32<<10 {
		t.Fatalf("uploaded %d bytes for a 50-byte effective change", up)
	}
}

func TestInPlaceSmallWritesStayRaw(t *testing.T) {
	// Small in-place writes must NOT pay for delta encoding — that is the
	// whole point of the paper.
	r := newRig(t, false)
	r.seed("f", randBytes(10, 256<<10))
	fs := r.eng.FS()
	if err := fs.WriteAt("f", 5000, []byte("small")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close("f"); err != nil {
		t.Fatal(err)
	}
	r.settle(t)
	r.assertSynced(t, "f")
	st := r.eng.Stats()
	if st.InPlaceDeltas != 0 || st.DeltaTriggers != 0 {
		t.Fatalf("delta encoding ran for a small in-place write: %+v", st)
	}
}

func TestCausalOrderCreateDelete(t *testing.T) {
	// create a, create b, create c, delete a — the queue must never let
	// the server observe b without c when a's nodes are dropped.
	r := newRig(t, false)
	fs := r.eng.FS()
	for _, p := range []string{"a", "b", "c"} {
		if err := fs.Create(p); err != nil {
			t.Fatal(err)
		}
		if err := fs.WriteAt(p, 0, []byte("data-"+p)); err != nil {
			t.Fatal(err)
		}
		if err := fs.Close(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.Unlink("a"); err != nil {
		t.Fatal(err)
	}
	r.settle(t)

	if _, ok := r.srv.FileContent("a"); ok {
		t.Fatal("deleted a reached the server")
	}
	r.assertSynced(t, "b")
	r.assertSynced(t, "c")
}

func TestAppendTraceEndToEnd(t *testing.T) {
	r := newRig(t, false)
	tr := trace.Append(trace.PaperAppendConfig().Scaled(0.05))
	if err := tr.Setup(r.backing); err != nil {
		t.Fatal(err)
	}
	if content, err := r.backing.ReadFile("append.dat"); err == nil {
		r.srv.SeedFile("append.dat", content)
	}
	if err := trace.Replay(tr, r.eng, r.clk); err != nil {
		t.Fatal(err)
	}
	if err := r.eng.Drain(); err != nil {
		t.Fatal(err)
	}
	r.assertSynced(t, "append.dat")
	// Upload should be close to the data written (NFS-like RPC), with
	// modest framing overhead.
	if up := r.traffic.Uploaded(); up > tr.WriteBytes*11/10+4096 {
		t.Fatalf("uploaded %d for %d written", up, tr.WriteBytes)
	}
}

func TestWeChatTraceEndToEnd(t *testing.T) {
	r := newRig(t, false)
	cfg := trace.PaperWeChatConfig().Scaled(0.02)
	tr := trace.WeChat(cfg)
	if err := tr.Setup(r.backing); err != nil {
		t.Fatal(err)
	}
	if content, err := r.backing.ReadFile(cfg.Path); err == nil {
		r.srv.SeedFile(cfg.Path, content)
	}
	if err := trace.Replay(tr, r.eng, r.clk); err != nil {
		t.Fatal(err)
	}
	if err := r.eng.Drain(); err != nil {
		t.Fatal(err)
	}
	r.assertSynced(t, cfg.Path)
	r.assertSynced(t, cfg.JournalPath)
	// Journal content was truncated before upload; total traffic should
	// be in the vicinity of the db update size, far below db+journal.
	if up := r.traffic.Uploaded(); up > tr.UpdateBytes*2 {
		t.Fatalf("uploaded %d, update size %d: journal data not elided", up, tr.UpdateBytes)
	}
}

func TestWordTraceEndToEnd(t *testing.T) {
	r := newRig(t, false)
	cfg := trace.PaperWordConfig().Scaled(0.02)
	tr := trace.Word(cfg)
	if err := tr.Setup(r.backing); err != nil {
		t.Fatal(err)
	}
	if content, err := r.backing.ReadFile(cfg.Path); err == nil {
		r.srv.SeedFile(cfg.Path, content)
	}
	if err := trace.Replay(tr, r.eng, r.clk); err != nil {
		t.Fatal(err)
	}
	if err := r.eng.Drain(); err != nil {
		t.Fatal(err)
	}
	r.assertSynced(t, cfg.Path)
	if r.eng.Stats().DeltaTriggers == 0 {
		t.Fatal("word trace triggered no delta encodings")
	}
	// Delta sync: upload far below total bytes written (full rewrites).
	if up := r.traffic.Uploaded(); up > tr.WriteBytes/2 {
		t.Fatalf("uploaded %d of %d written: deltas ineffective", up, tr.WriteBytes)
	}
}

func TestCorruptionDetectedAndRecovered(t *testing.T) {
	r := newRig(t, true)
	content := randBytes(11, 64<<10)
	fs := r.eng.FS()
	if err := fs.Create("f"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteAt("f", 0, content); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close("f"); err != nil {
		t.Fatal(err)
	}
	r.settle(t)
	r.assertSynced(t, "f")

	// Disk corruption behind the engine's back.
	if err := r.backing.FlipBit("f", 30000); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Fatal("read served corrupted data")
	}
	st := r.eng.Stats()
	if st.Corruptions == 0 || st.Recovered == 0 {
		t.Fatalf("corruption not detected/recovered: %+v", st)
	}
}

func TestCrashScanDetectsInconsistency(t *testing.T) {
	r := newRig(t, true)
	content := randBytes(12, 32<<10)
	fs := r.eng.FS()
	fs.Create("f")
	fs.WriteAt("f", 0, content)
	// No close, no upload: crash strikes mid-update.
	r.backing.BypassWrite("f", 8192, randBytes(13, 100)) // torn write
	r.eng.DropVolatileState()

	rep, err := r.eng.CrashScan(false)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Inconsistent) != 1 || rep.Inconsistent[0] != "f" {
		t.Fatalf("inconsistency not found: %+v", rep)
	}
}

func TestCrashScanRestoresFromCloud(t *testing.T) {
	r := newRig(t, true)
	content := randBytes(14, 16<<10)
	fs := r.eng.FS()
	fs.Create("f")
	fs.WriteAt("f", 0, content)
	fs.Close("f")
	r.settle(t) // clean copy on the cloud

	// New update cycle, then crash + torn write.
	fs.WriteAt("f", 0, []byte("new-bytes"))
	r.backing.BypassWrite("f", 4096, randBytes(15, 64))
	r.eng.DropVolatileState()

	rep, err := r.eng.CrashScan(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Restored) != 1 {
		t.Fatalf("restore failed: %+v", rep)
	}
	local, _ := r.backing.ReadFile("f")
	remote, _ := r.srv.FileContent("f")
	if !bytes.Equal(local, remote) {
		t.Fatal("restored content does not match cloud")
	}
}

func TestCleanFileSurvivesCrashScan(t *testing.T) {
	r := newRig(t, true)
	fs := r.eng.FS()
	fs.Create("f")
	fs.WriteAt("f", 0, randBytes(16, 8<<10))
	r.eng.DropVolatileState()
	rep, err := r.eng.CrashScan(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Inconsistent) != 0 {
		t.Fatalf("clean file reported inconsistent: %+v", rep)
	}
}

func TestLinkUnlinkRenamePattern(t *testing.T) {
	// The paper's other transactional combination (§III-A): "link f f~,
	// unlink f", then the new version is renamed into place. The unlink's
	// relation entry triggers the delta; since the preserved copy is a
	// local trash file, the engine retracts the queued unlink and deltas
	// against the cloud's still-current f.
	r := newRig(t, false)
	oldContent := randBytes(30, 512<<10)
	r.seed("f", oldContent)

	newContent := append([]byte(nil), oldContent...)
	copy(newContent[100_000:100_200], randBytes(31, 200))

	fs := r.eng.FS()
	if err := fs.Link("f", "f~"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Unlink("f"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Create("tmp"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteAt("tmp", 0, newContent); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close("tmp"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("tmp", "f"); err != nil {
		t.Fatal(err)
	}
	r.settle(t)

	r.assertSynced(t, "f")
	r.assertSynced(t, "f~")
	backup, _ := r.srv.FileContent("f~")
	if !bytes.Equal(backup, oldContent) {
		t.Fatal("f~ does not hold the old version on the cloud")
	}
	if r.eng.Stats().DeltaTriggers == 0 {
		t.Fatal("link+unlink pattern did not trigger delta encoding")
	}
	if up := r.traffic.Uploaded(); up > 64<<10 {
		t.Fatalf("uploaded %d bytes for a 200-byte edit", up)
	}
}

func TestUnlinkOfNeverSyncedFileDropsNodes(t *testing.T) {
	// A file created and deleted within the queue window never touches
	// the cloud at all (delete-before-upload optimization).
	r := newRig(t, false)
	fs := r.eng.FS()
	fs.Create("ephemeral")
	fs.WriteAt("ephemeral", 0, randBytes(32, 32<<10))
	fs.Close("ephemeral")
	fs.Unlink("ephemeral")
	r.settle(t)
	if _, ok := r.srv.FileContent("ephemeral"); ok {
		t.Fatal("ephemeral file reached the cloud")
	}
	if up := r.traffic.Uploaded(); up > 1<<10 {
		t.Fatalf("uploaded %d bytes for a file that never needed to sync", up)
	}
}

func TestUnlinkOfSeededFileReachesCloud(t *testing.T) {
	// The inverse: a file the cloud already has must receive the unlink
	// even if a queued create could be mistaken for its birth.
	r := newRig(t, false)
	r.seed("f", randBytes(33, 4<<10))
	fs := r.eng.FS()
	fs.Create("f") // O_TRUNC over seeded content
	fs.WriteAt("f", 0, []byte("short-lived"))
	fs.Unlink("f")
	r.settle(t)
	if _, ok := r.srv.FileContent("f"); ok {
		t.Fatal("seeded file survives unlink on the cloud")
	}
}

func TestDisableDeltaAblation(t *testing.T) {
	// With DisableDelta the Word pattern must ship raw content and still
	// converge.
	backing := vfs.NewMemFS()
	srv := server.New(nil)
	clk := &clock.Clock{}
	traffic := &metrics.TrafficMeter{}
	eng, err := New(Config{
		Backing:      backing,
		Endpoint:     server.NewLoopback(srv, nil, traffic),
		Clock:        clk,
		DisableDelta: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	content := randBytes(40, 256<<10)
	srv.SeedFile("f", content)
	backing.Create("f")
	backing.WriteAt("f", 0, content)

	newContent := append([]byte(nil), content...)
	copy(newContent[1000:1100], randBytes(41, 100))
	fs := eng.FS()
	fs.Rename("f", "t0")
	fs.Create("t1")
	fs.WriteAt("t1", 0, newContent)
	fs.Close("t1")
	fs.Rename("t1", "f")
	fs.Unlink("t0")
	clk.Advance(time.Minute)
	eng.Tick(clk.Now())
	if err := eng.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := eng.LastPushError(); err != nil {
		t.Fatal(err)
	}
	if eng.Stats().DeltaTriggers != 0 {
		t.Fatal("DisableDelta still triggered a delta")
	}
	got, _ := srv.FileContent("f")
	if !bytes.Equal(got, newContent) {
		t.Fatal("content diverged in rpc-only mode")
	}
	// Raw mode ships the whole rewrite.
	if up := traffic.Uploaded(); up < int64(len(newContent)) {
		t.Fatalf("uploaded %d, want >= full rewrite %d", up, len(newContent))
	}
}

func TestDirectorySync(t *testing.T) {
	r := newRig(t, false)
	fs := r.eng.FS()
	if err := fs.Mkdir("photos"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Create("photos/cat.jpg"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteAt("photos/cat.jpg", 0, []byte("meow")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close("photos/cat.jpg"); err != nil {
		t.Fatal(err)
	}
	r.settle(t)
	r.assertSynced(t, "photos/cat.jpg")

	if err := fs.Unlink("photos/cat.jpg"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rmdir("photos"); err != nil {
		t.Fatal(err)
	}
	r.settle(t)
	if _, ok := r.srv.FileContent("photos/cat.jpg"); ok {
		t.Fatal("file survives rmdir flow")
	}
}

func TestReadAtVerifiesChecksums(t *testing.T) {
	r := newRig(t, true)
	content := randBytes(42, 32<<10)
	fs := r.eng.FS()
	fs.Create("f")
	fs.WriteAt("f", 0, content)
	fs.Close("f")
	r.settle(t)

	if err := r.backing.FlipBit("f", 10_000); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadAt("f", 9_000, 2_000)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content[9_000:11_000]) {
		t.Fatal("ReadAt served corrupted bytes")
	}
	if r.eng.Stats().Recovered == 0 {
		t.Fatal("no recovery happened")
	}
}

func TestFsyncPassesThrough(t *testing.T) {
	r := newRig(t, false)
	fs := r.eng.FS()
	fs.Create("f")
	if err := fs.Fsync("f"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat("f"); err != nil {
		t.Fatal(err)
	}
	files, err := fs.List("")
	if err != nil || len(files) != 1 {
		t.Fatalf("List = %v, %v", files, err)
	}
}

func TestCrashScanReportsMissingDirtyFile(t *testing.T) {
	r := newRig(t, true)
	fs := r.eng.FS()
	fs.Create("gone")
	fs.WriteAt("gone", 0, []byte("data"))
	// The file disappears beneath the engine (e.g. lost in the crash).
	r.backing.Unlink("gone")
	r.eng.DropVolatileState()
	rep, err := r.eng.CrashScan(false)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Missing) != 1 || rep.Missing[0] != "gone" {
		t.Fatalf("Missing = %v", rep.Missing)
	}
}

// trashlessFS refuses renames into the trash directory, simulating the
// paper's ENOSPC case ("if temporarily preserving the file would result in
// ENOSPC ... the deleted files will not be preserved").
type trashlessFS struct {
	*vfs.MemFS
}

func (f trashlessFS) Rename(oldPath, newPath string) error {
	if strings.HasPrefix(newPath, TrashDir) {
		return errors.New("no space left on device")
	}
	return f.MemFS.Rename(oldPath, newPath)
}

func TestUnlinkFallsBackWhenTrashFails(t *testing.T) {
	backing := vfs.NewMemFS()
	srv := server.New(nil)
	clk := &clock.Clock{}
	eng, err := New(Config{
		Backing:  trashlessFS{backing},
		Endpoint: server.NewLoopback(srv, nil, nil),
		Clock:    clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	content := randBytes(50, 8<<10)
	srv.SeedFile("f", content)
	backing.Create("f")
	backing.WriteAt("f", 0, content)

	fs := eng.FS()
	if err := fs.Unlink("f"); err != nil {
		t.Fatalf("unlink with failing trash: %v", err)
	}
	if _, err := backing.Stat("f"); err == nil {
		t.Fatal("file survives unlink locally")
	}
	clk.Advance(time.Minute)
	eng.Tick(clk.Now())
	if err := eng.Drain(); err != nil {
		t.Fatal(err)
	}
	if _, ok := srv.FileContent("f"); ok {
		t.Fatal("unlink did not reach the cloud")
	}
	// No relation entry was created: a re-creation gets no delta base and
	// ships raw, still correctly.
	if err := fs.Create("f"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteAt("f", 0, []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close("f"); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Minute)
	eng.Tick(clk.Now())
	if err := eng.Drain(); err != nil {
		t.Fatal(err)
	}
	got, _ := srv.FileContent("f")
	if !bytes.Equal(got, []byte("fresh")) {
		t.Fatalf("recreated content = %q", got)
	}
	if eng.Stats().DeltaTriggers != 0 {
		t.Fatal("delta triggered without a preserved base")
	}
}

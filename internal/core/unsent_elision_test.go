package core

import (
	"testing"
	"time"

	"repro/internal/wire"
)

// Regression test for the unlink-elision race: the delete-before-upload
// optimization (dropping a file's queued nodes instead of shipping an
// unlink) used to consult only the cloud's Head answer, which cannot see
// batches still waiting in the unsent buffer. With a write to the path
// buffered, Head truthfully says "never seen" — but the buffered write will
// later materialize the file on the server, so eliding the unlink leaves
// the cloud and the client permanently disagreeing. An unlink issued while
// anything unsent references the path must travel.
func TestUnlinkNotElidedWhilePathUnsent(t *testing.T) {
	r := newFlakyRig(t, 0)

	// Incarnation 1 of "doc" pops into the unsent buffer (pushes fail).
	r.flaky.down = true
	if err := r.eng.Create("doc"); err != nil {
		t.Fatal(err)
	}
	if err := r.eng.WriteAt("doc", 0, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	r.step(time.Minute)
	if r.eng.UnsentBatches() == 0 {
		t.Fatal("incarnation 1 did not buffer")
	}

	// Unlink #1 queues (no tick: it stays in the sync queue), then
	// incarnation 2 is created behind it.
	if err := r.eng.Unlink("doc"); err != nil {
		t.Fatal(err)
	}
	if err := r.eng.Create("doc"); err != nil {
		t.Fatal(err)
	}
	if err := r.eng.WriteAt("doc", 0, []byte("v2")); err != nil {
		t.Fatal(err)
	}

	// Unlink #2 while incarnation 1 sits unsent. The cloud has never
	// applied "doc" (Head says not-exists), so the broken elision fired
	// here, silently discarding incarnation 2 and this unlink. The fix
	// must see the unsent reference and ship the full history instead.
	if err := r.eng.Unlink("doc"); err != nil {
		t.Fatal(err)
	}

	// Heal and drain everything: unsent buffer first, then the queue.
	r.flaky.down = false
	for i := 0; i < 4; i++ {
		r.step(time.Minute)
	}
	if err := r.eng.Drain(); err != nil {
		t.Fatal(err)
	}

	// The cloud must have seen doc's entire two-incarnation history — in
	// particular both unlinks. Pre-fix, incarnation 2 and its unlink were
	// elided and only one unlink ever traveled.
	var unlinks, creates int
	for _, op := range r.srv.AppliedLog() {
		if op.Path != "doc" {
			continue
		}
		switch op.Kind {
		case wire.NUnlink:
			unlinks++
		case wire.NCreate:
			creates++
		}
	}
	if creates != 2 || unlinks != 2 {
		t.Fatalf("cloud saw %d creates / %d unlinks of doc, want 2/2", creates, unlinks)
	}
	// And both sides agree the file is gone.
	if _, exists := r.srv.Head("doc"); exists {
		t.Fatal("cloud still holds doc after its final unlink")
	}
	if r.eng.UnsentBatches() != 0 {
		t.Fatalf("%d batches still unsent after drain", r.eng.UnsentBatches())
	}
}

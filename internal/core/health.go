package core

// Graceful degradation under cloud faults: when a push fails, the converted
// wire batch is kept in an in-order unsent buffer instead of being dropped,
// and every subsequent Tick retries the buffer head before anything newer —
// batches arrive at the cloud in submission order or not at all. The engine
// exposes a Healthy/Degraded/Offline health state and meters degraded time
// on the logical clock.

import (
	"fmt"
	"time"

	"repro/internal/wire"
)

// Health is the engine's sync-path state.
type Health int

const (
	// Healthy: the last push succeeded and nothing is buffered.
	Healthy Health = iota
	// Degraded: pushes are failing (or unsent batches are buffered) but the
	// engine is still below its local-buffering limits.
	Degraded
	// Offline: repeated consecutive failures or a full unsent buffer; the
	// engine keeps accepting local operations and buffering, but the cloud
	// is treated as unreachable until a flush succeeds.
	Offline
)

func (h Health) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Offline:
		return "offline"
	default:
		return fmt.Sprintf("health(%d)", int(h))
	}
}

// offlineAfterFailures is how many consecutive push failures move the engine
// from Degraded to Offline.
const offlineAfterFailures = 3

// DefaultQueueHighWater bounds the unsent buffer (64 MB). Reaching it marks
// the engine Offline; nothing is dropped — local state is the durable copy
// and the buffer resumes in order once the cloud answers again.
const DefaultQueueHighWater = 64 << 20

// Health returns the engine's current sync-path state.
func (e *Engine) Health() Health {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.healthLocked()
}

func (e *Engine) healthLocked() Health {
	if e.consecFails >= offlineAfterFailures || e.unsentBytes >= e.cfg.QueueHighWater {
		return Offline
	}
	if e.consecFails > 0 || len(e.unsent) > 0 {
		return Degraded
	}
	return Healthy
}

// UnsentBatches returns how many pushed batches await retransmission.
func (e *Engine) UnsentBatches() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.unsent)
}

// UnsentBytes returns the wire size of the unsent buffer.
func (e *Engine) UnsentBytes() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.unsentBytes
}

// unsentReferences reports whether any batch in the unsent buffer names
// path — as the node's subject, a rename/link destination, or a delta base.
// While it does, the cloud's view of the path is stale: a buffered batch
// can still create or rewrite the file there, so optimizations keyed on
// "the cloud has never seen this path" (the unlink elision) must not fire.
func (e *Engine) unsentReferences(path string) bool {
	for _, wb := range e.unsent {
		for _, n := range wb.Nodes {
			if n.Path == path || n.Dst == path || n.BasePath == path {
				return true
			}
		}
	}
	return false
}

// enqueueUnsent appends a converted batch to the in-order unsent buffer.
func (e *Engine) enqueueUnsent(wb *wire.Batch) {
	e.unsent = append(e.unsent, wb)
	e.unsentBytes += wb.WireSize()
}

// flushUnsent retries the unsent buffer head-first, stopping at the first
// failure so cloud-visible order always matches submission order. A failed
// round counts once toward the Offline threshold regardless of how many
// batches were waiting behind the failure.
func (e *Engine) flushUnsent() {
	for len(e.unsent) > 0 {
		if !e.sendOne(e.unsent[0]) {
			e.consecFails++
			return
		}
		e.consecFails = 0
		e.unsentBytes -= e.unsent[0].WireSize()
		e.unsent[0] = nil
		e.unsent = e.unsent[1:]
	}
	e.unsent = nil
	e.unsentBytes = 0
}

// sendOne pushes a single wire batch, reporting success. Failures leave the
// batch owned by the caller (still buffered).
func (e *Engine) sendOne(wb *wire.Batch) bool {
	reply, err := e.ep.Push(wb)
	if err != nil {
		e.lastPushErr = err
		return false
	}
	e.lastPushErr = nil
	e.stats.UploadedBatches++
	e.stats.UploadedNodes += len(wb.Nodes)
	for _, st := range reply.Statuses {
		if st == wire.StatusConflict {
			e.stats.Conflicts++
		}
	}
	e.conflictFiles = append(e.conflictFiles, reply.Conflicts...)
	for _, n := range wb.Nodes {
		if !e.q.HasPendingWrite(n.Path) && !e.q.HasOpen(n.Path) {
			e.clearDirty(n.Path)
		}
	}
	return true
}

// meterDegraded charges the span since the previous Tick to the sync meter
// when it was spent outside the Healthy state.
func (e *Engine) meterDegraded(now time.Duration) {
	if e.healthLocked() != Healthy && now > e.lastTickAt {
		e.syncMeter.AddDegraded(now - e.lastTickAt)
	}
	if now > e.lastTickAt {
		e.lastTickAt = now
	}
}

package core

import "runtime"

// deltaPool runs triggered delta encodings off the engine's operation path.
//
// The split mirrors what the serial code did at each trigger site: every
// queue, version-map and stats decision stays exactly where it was — on the
// engine thread, at the intercept or pack sequence point — and only the pure
// rsync encode (private snapshots in, *rsync.Delta out) moves to a worker.
// Each job carries a commit closure that the engine thread runs at a join
// point to splice the finished delta back in. Joins happen at two places:
//
//   - joinPath, at the top of every mutating file operation, so at most one
//     job per path is ever in flight and no operation observes a path whose
//     deferred commit is outstanding;
//   - joinAll, in Tick and Drain before the queue releases upload batches,
//     so a reserved delta node is always filled before it can ship.
//
// Workers are bounded by a semaphore; dispatch itself never blocks (each job
// gets a goroutine that waits for a slot), so a burst of large encodes queues
// up behind the pool instead of stalling intercept-path enqueues.
type deltaPool struct {
	sem  chan struct{}
	jobs []*deltaJob // dispatch order; commits replay in this order
}

type deltaJob struct {
	path    string
	done    chan struct{}
	compute func()
	commit  func()
}

// newDeltaPool returns a pool with the given worker bound (GOMAXPROCS when
// non-positive).
func newDeltaPool(workers int) *deltaPool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &deltaPool{sem: make(chan struct{}, workers)}
}

// dispatch schedules compute on a pool worker and registers commit to run on
// the engine thread at the next join covering path. compute must touch only
// data private to the job (snapshots, the atomic meter); commit may touch
// engine state freely.
func (p *deltaPool) dispatch(path string, compute, commit func()) {
	j := &deltaJob{path: path, done: make(chan struct{}), compute: compute, commit: commit}
	p.jobs = append(p.jobs, j)
	go func() {
		p.sem <- struct{}{}
		defer func() { <-p.sem }()
		defer close(j.done)
		j.compute()
	}()
}

// joinPath waits out and commits every in-flight job for path, in dispatch
// order. Engine thread only.
func (p *deltaPool) joinPath(path string) {
	if len(p.jobs) == 0 {
		return
	}
	kept := p.jobs[:0]
	for _, j := range p.jobs {
		if j.path == path {
			<-j.done
			j.commit()
		} else {
			kept = append(kept, j)
		}
	}
	// Drop the tail references so committed jobs can be collected.
	for i := len(kept); i < len(p.jobs); i++ {
		p.jobs[i] = nil
	}
	p.jobs = kept
}

// joinAll waits out and commits every in-flight job, in dispatch order.
// Engine thread only.
func (p *deltaPool) joinAll() {
	for _, j := range p.jobs {
		<-j.done
		j.commit()
	}
	p.jobs = p.jobs[:0]
}

// inFlight reports the number of dispatched-but-uncommitted jobs (tests).
func (p *deltaPool) inFlight() int { return len(p.jobs) }

package rsync

import (
	"bytes"
	"sync"

	"repro/internal/block"
	"repro/internal/metrics"
)

// Sharded delta scan.
//
// The serial scan in delta.go is a single left-to-right trajectory: at each
// position it either matches a base block (and jumps a full block forward) or
// slides one byte. The decision at a position — which block matches, and how
// many candidates were tried before the verdict — is a pure function of the
// window bytes target[pos:pos+bs]: the rolling checksum is content-only
// (mod-2^16 sums carry no position state), the candidate list comes from the
// immutable weak index, and verification compares window bytes against
// immutable base bytes. Trajectory state (where the scan currently is) never
// feeds into the decision.
//
// That purity is what makes speculation safe: shard workers scan disjoint
// position ranges ahead of time, each running the serial automaton from its
// shard start, and record the decision at every position they visit. A
// sequential stitch pass then replays the exact serial trajectory, consuming
// cached decisions. The two trajectories can disagree about WHICH positions
// get visited (a worker entering its shard cold may match at a different
// phase than the serial scan arriving mid-jump), but wherever they visit the
// same position they decide identically, and once they coincide they stay in
// lock-step until the next divergence. Positions the serial trajectory visits
// but the worker jumped over are recomputed fresh during the stitch, with a
// locally maintained rolling window so a divergence run costs one O(bs)
// window build plus O(1) per slide.
//
// Meter equivalence: the stitch replays the serial trajectory's charge rules
// exactly — bs rolling bytes per window build, 1 per guarded slide, bs
// compare/strong-hash bytes per candidate attempt — and charges the
// aggregates once at the end. CPUMeter charges are integer-linear
// (counter += n; ticks += n*perUnit*factor), so one aggregate charge equals
// the serial path's many small ones, per category and per tick.

// shardDecision records the scan verdict at one target position: the matched
// block (-1 for a miss) and how many candidates were verified to reach it.
type shardDecision struct {
	pos   int
	blk   int
	tried int
}

// shardDecisionsPool recycles per-shard decision slices across scans.
var shardDecisionsPool sync.Pool

func getShardDecisions() []shardDecision {
	if v := shardDecisionsPool.Get(); v != nil {
		return v.([]shardDecision)[:0]
	}
	return nil
}

// tryCands runs the candidate verification loop of the serial scan without
// touching the meter: it returns the first verified block (or -1) and the
// number of verification attempts, which the stitch converts into the same
// Compare/StrongHash charges the serial path makes inline.
func tryCands(sig *Sig, baseData, target []byte, idx map[uint32][]int, sum uint32, pos int) (blk, tried int) {
	bs := sig.BlockSize
	cands, ok := idx[sum]
	if !ok {
		return -1, 0
	}
	window := target[pos : pos+bs]
	for _, c := range cands {
		tried++
		if baseData != nil {
			lo := c * bs
			if bytes.Equal(window, baseData[lo:lo+bs]) {
				return c, tried
			}
		} else if block.StrongSum(window) == sig.Blocks[c].Strong {
			return c, tried
		}
	}
	return -1, tried
}

// scanShard runs the serial matching automaton over positions [lo, hi),
// starting cold (no carried-in window), and records the decision at every
// position it visits. Matches jump bs positions exactly like the serial scan,
// so a shard's decision list is sparse after matches.
func scanShard(sig *Sig, baseData, target []byte, idx map[uint32][]int, lo, hi int, out *[]shardDecision) {
	bs := sig.BlockSize
	dec := *out
	pos := lo
	var roll block.Rolling
	haveWindow := false
	for pos < hi {
		if !haveWindow {
			roll = block.NewRolling(target[pos : pos+bs])
			haveWindow = true
		}
		blk, tried := tryCands(sig, baseData, target, idx, roll.Sum(), pos)
		dec = append(dec, shardDecision{pos: pos, blk: blk, tried: tried})
		if blk >= 0 {
			pos += bs
			haveWindow = false
			continue
		}
		if pos+1 < hi {
			roll.Roll(target[pos], target[pos+bs])
		}
		pos++
	}
	*out = dec
}

// computeDeltaParallel produces the same delta and meter charges as
// computeDeltaSerial by sharding the position space across workerCount()
// goroutines and stitching their cached decisions back into the serial
// trajectory. The dispatcher in computeDelta guarantees at least two
// positions per worker.
func computeDeltaParallel(sig *Sig, baseData, target []byte, meter *metrics.CPUMeter) *Delta {
	bs := sig.BlockSize
	idx := sig.index() // build once, before the fan-out
	limit := len(target) - bs + 1
	workers := workerCount()
	if workers > limit {
		workers = limit
	}
	shardSize := (limit + workers - 1) / workers

	nShards := (limit + shardSize - 1) / shardSize
	shards := make([][]shardDecision, nShards)
	var wg sync.WaitGroup
	for i := range shards {
		lo := i * shardSize
		hi := min(lo+shardSize, limit)
		shards[i] = getShardDecisions()
		wg.Add(1)
		go func(lo, hi int, out *[]shardDecision) {
			defer wg.Done()
			scanShard(sig, baseData, target, idx, lo, hi, out)
		}(lo, hi, &shards[i])
	}
	wg.Wait()

	d := &Delta{
		BlockSize: bs,
		BaseLen:   sig.FileLen,
		TargetLen: int64(len(target)),
	}
	litStart := 0
	flushLiteral := func(end int) {
		if end > litStart {
			d.appendData(target[litStart:end])
		}
	}

	// Stitch: replay the serial trajectory. ptr[s] advances monotonically
	// through shard s's decisions; positions the worker jumped over are
	// recomputed with a fresh rolling window carried across consecutive
	// uncached misses.
	ptr := make([]int, len(shards))
	var rollingBytes, verifyAttempts int64
	pos := 0
	haveWindow := false // serial-trajectory window state (for charging only)
	var roll block.Rolling
	freshWindow := false // roll mirrors target[pos:pos+bs] right now
	for pos+bs <= len(target) {
		if !haveWindow {
			rollingBytes += int64(bs)
			haveWindow = true
		}
		s := min(pos/shardSize, len(shards)-1)
		sd := shards[s]
		for ptr[s] < len(sd) && sd[ptr[s]].pos < pos {
			ptr[s]++
		}
		var blk, tried int
		if ptr[s] < len(sd) && sd[ptr[s]].pos == pos {
			blk, tried = sd[ptr[s]].blk, sd[ptr[s]].tried
			freshWindow = false
		} else {
			if !freshWindow {
				roll = block.NewRolling(target[pos : pos+bs])
				freshWindow = true
			}
			blk, tried = tryCands(sig, baseData, target, idx, roll.Sum(), pos)
		}
		verifyAttempts += int64(tried)
		if blk >= 0 {
			flushLiteral(pos)
			d.appendCopy(int64(blk)*int64(bs), int64(bs))
			pos += bs
			litStart = pos
			haveWindow = false
			freshWindow = false
			continue
		}
		if pos+bs < len(target) {
			rollingBytes++
			if freshWindow {
				roll.Roll(target[pos], target[pos+bs])
			}
		}
		pos++
	}

	meter.RollingHash(rollingBytes)
	if baseData != nil {
		meter.Compare(verifyAttempts * int64(bs))
	} else {
		meter.StrongHash(verifyAttempts * int64(bs))
	}

	for _, sd := range shards {
		shardDecisionsPool.Put(sd)
	}

	// Tail block: identical to the serial path (single charge, kept inline).
	if tail := sig.tailBlock(); tail >= 0 {
		tl := sig.blockLen(tail)
		start := len(target) - tl
		if tl > 0 && start >= pos {
			rem := target[start:]
			ok := false
			if baseData != nil {
				lo := tail * bs
				meter.Compare(int64(tl))
				ok = bytes.Equal(rem, baseData[lo:lo+tl])
			} else {
				meter.RollingHash(int64(tl))
				if block.WeakSum(rem) == sig.Blocks[tail].Weak {
					meter.StrongHash(int64(tl))
					ok = block.StrongSum(rem) == sig.Blocks[tail].Strong
				}
			}
			if ok {
				flushLiteral(start)
				d.appendCopy(int64(tail)*int64(bs), int64(tl))
				litStart = len(target)
			}
		}
	}
	flushLiteral(len(target))
	return d
}

package rsync

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"repro/internal/block"
	"repro/internal/metrics"
)

// OpKind discriminates delta operations.
type OpKind uint8

const (
	// OpCopy copies Len bytes from offset Off of the base file.
	OpCopy OpKind = iota
	// OpData inserts the literal bytes in Data.
	OpData
)

// Op is one delta instruction.
type Op struct {
	Kind OpKind
	Off  int64  // base-file offset (OpCopy only)
	Len  int64  // byte count (OpCopy only; OpData uses len(Data))
	Data []byte // literal bytes (OpData only)
}

// Delta encodes a target file as a sequence of copies from a base file plus
// literal data, exactly as an rsync sender would emit.
type Delta struct {
	BlockSize int
	BaseLen   int64
	TargetLen int64
	Ops       []Op
}

// LiteralBytes returns the total number of literal bytes carried by the
// delta — the data that must actually cross the network.
func (d *Delta) LiteralBytes() int64 {
	var n int64
	for _, op := range d.Ops {
		if op.Kind == OpData {
			n += int64(len(op.Data))
		}
	}
	return n
}

// WireSize returns the serialized size of the delta in bytes: literal data
// plus a fixed per-op header. This is what the traffic accounting uses.
func (d *Delta) WireSize() int64 {
	const opHeader = 17 // kind(1) + off(8) + len(8)
	return d.LiteralBytes() + int64(len(d.Ops))*opHeader + 24
}

// DeltaRemote computes the delta from the base described by sig to target,
// using strong-checksum verification as classic rsync does. sig must carry
// strong checksums. The meter is charged for the rolling scan over target
// and an MD5 verification per candidate match.
func DeltaRemote(sig *Sig, target []byte, meter *metrics.CPUMeter) (*Delta, error) {
	if !sig.HasStrong {
		return nil, errors.New("rsync: DeltaRemote requires a strong signature")
	}
	return computeDelta(sig, nil, target, meter), nil
}

// DeltaLocal computes the delta from base to target with both files local,
// per the paper's §III-A optimization: a weak-only signature of base is
// built and candidate matches are verified by bitwise comparison instead of
// MD5. This is the delta encoder DeltaCFS triggers on transactional updates.
func DeltaLocal(base, target []byte, blockSize int, meter *metrics.CPUMeter) *Delta {
	sig := WeakSignature(base, blockSize, meter)
	d := computeDelta(sig, base, target, meter)
	// The signature never escapes; recycle its block storage.
	sig.Release()
	return d
}

// deltaParallelMin is the target size, in bytes, below which the delta scan
// always runs serially: sharding a sub-megabyte scan costs more in fan-out
// and stitching than the scan itself. A variable so tests can force the
// parallel scan on small inputs.
var deltaParallelMin = 1 << 20

// computeDelta runs the block-matching scan, choosing the sharded scan for
// large targets when workers are available. Both paths produce the identical
// op stream and meter charges (see parallel.go for the argument).
func computeDelta(sig *Sig, baseData, target []byte, meter *metrics.CPUMeter) *Delta {
	if workers := workerCount(); workers > 1 && len(target) >= deltaParallelMin &&
		len(target)-sig.BlockSize+1 >= 2*workers {
		return computeDeltaParallel(sig, baseData, target, meter)
	}
	return computeDeltaSerial(sig, baseData, target, meter)
}

// computeDeltaSerial is the canonical single-goroutine scan. If baseData is
// non-nil, matches are verified bitwise against it (local mode); otherwise
// they are verified with strong checksums from sig (remote mode).
func computeDeltaSerial(sig *Sig, baseData, target []byte, meter *metrics.CPUMeter) *Delta {
	d := &Delta{
		BlockSize: sig.BlockSize,
		BaseLen:   sig.FileLen,
		TargetLen: int64(len(target)),
	}
	bs := sig.BlockSize
	idx := sig.index()

	var litStart int // start of the pending literal run
	flushLiteral := func(end int) {
		if end > litStart {
			d.appendData(target[litStart:end])
		}
	}

	verify := func(blockIdx int, window []byte) bool {
		if baseData != nil {
			lo := blockIdx * bs
			meter.Compare(int64(bs))
			return bytes.Equal(window, baseData[lo:lo+bs])
		}
		meter.StrongHash(int64(bs))
		return block.StrongSum(window) == sig.Blocks[blockIdx].Strong
	}

	pos := 0
	var roll block.Rolling
	haveWindow := false
	for pos+bs <= len(target) {
		if !haveWindow {
			roll = block.NewRolling(target[pos : pos+bs])
			meter.RollingHash(int64(bs))
			haveWindow = true
		}
		matched := -1
		if cands, ok := idx[roll.Sum()]; ok {
			for _, c := range cands {
				if verify(c, target[pos:pos+bs]) {
					matched = c
					break
				}
			}
		}
		if matched >= 0 {
			flushLiteral(pos)
			d.appendCopy(int64(matched)*int64(bs), int64(bs))
			pos += bs
			litStart = pos
			haveWindow = false
			continue
		}
		// Slide the window one byte.
		if pos+bs < len(target) {
			roll.Roll(target[pos], target[pos+bs])
			meter.RollingHash(1)
		}
		pos++
	}

	// A short trailing block of the base can still match the final bytes of
	// the target (rsync emits the last short block only at end of file).
	if tail := sig.tailBlock(); tail >= 0 {
		tl := sig.blockLen(tail)
		start := len(target) - tl
		if tl > 0 && start >= pos {
			rem := target[start:]
			ok := false
			if baseData != nil {
				lo := tail * bs
				meter.Compare(int64(tl))
				ok = bytes.Equal(rem, baseData[lo:lo+tl])
			} else {
				meter.RollingHash(int64(tl))
				if block.WeakSum(rem) == sig.Blocks[tail].Weak {
					meter.StrongHash(int64(tl))
					ok = block.StrongSum(rem) == sig.Blocks[tail].Strong
				}
			}
			if ok {
				flushLiteral(start)
				d.appendCopy(int64(tail)*int64(bs), int64(tl))
				litStart = len(target)
			}
		}
	}
	flushLiteral(len(target))
	return d
}

// appendCopy adds a copy op, coalescing with a contiguous preceding copy.
func (d *Delta) appendCopy(off, n int64) {
	if k := len(d.Ops); k > 0 {
		last := &d.Ops[k-1]
		if last.Kind == OpCopy && last.Off+last.Len == off {
			last.Len += n
			return
		}
	}
	d.Ops = append(d.Ops, Op{Kind: OpCopy, Off: off, Len: n})
}

// litPool recycles literal-run buffers between deltas whose owners call
// Release. Buffers grow by append inside appendData, so pooled capacity is
// reused even when a literal run ends up larger than the pooled buffer was.
var litPool sync.Pool

func getLitBuf() []byte {
	if v := litPool.Get(); v != nil {
		return v.([]byte)[:0]
	}
	return nil
}

// appendData adds a literal op, coalescing with a preceding literal. The
// bytes are copied, so the caller's buffer may be reused.
func (d *Delta) appendData(p []byte) {
	if k := len(d.Ops); k > 0 {
		last := &d.Ops[k-1]
		if last.Kind == OpData {
			last.Data = append(last.Data, p...)
			return
		}
	}
	d.Ops = append(d.Ops, Op{Kind: OpData, Data: append(getLitBuf(), p...)})
}

// Release returns the delta's literal buffers to the package pool and clears
// the op list. Only the delta's sole owner may call it, and only when the
// delta was never handed to the sync queue, the wire layer, or a server —
// those paths retain the Data slices. It exists for call sites that compute a
// delta, read its WireSize, and discard it (the in-place sizing check in
// internal/core, benchmarks).
func (d *Delta) Release() {
	if d == nil {
		return
	}
	for i := range d.Ops {
		if d.Ops[i].Kind == OpData && d.Ops[i].Data != nil {
			litPool.Put(d.Ops[i].Data[:0])
			d.Ops[i].Data = nil
		}
	}
	d.Ops = d.Ops[:0]
}

// maxPatchPrealloc caps how much memory Patch commits up front on the word
// of a wire-decoded TargetLen. A hostile delta claiming a huge target gets a
// bounded initial buffer and then has to actually send the ops to grow it;
// the final equality check against TargetLen still runs on the real length.
const maxPatchPrealloc = 1 << 26 // 64 MiB

// Patch applies d to base and returns the reconstructed target. It validates
// every copy range against the base and the final length against
// d.TargetLen. The meter is charged for the bytes materialized.
func Patch(base []byte, d *Delta, meter *metrics.CPUMeter) ([]byte, error) {
	if d.TargetLen < 0 {
		return nil, fmt.Errorf("rsync: negative target length %d", d.TargetLen)
	}
	prealloc := d.TargetLen
	if prealloc > maxPatchPrealloc {
		prealloc = maxPatchPrealloc
	}
	out := make([]byte, 0, prealloc)
	for i, op := range d.Ops {
		switch op.Kind {
		case OpCopy:
			if op.Off < 0 || op.Len < 0 || op.Off+op.Len > int64(len(base)) {
				return nil, fmt.Errorf("rsync: op %d copy [%d,%d) out of base range %d",
					i, op.Off, op.Off+op.Len, len(base))
			}
			out = append(out, base[op.Off:op.Off+op.Len]...)
			meter.Copy(op.Len)
		case OpData:
			out = append(out, op.Data...)
			meter.Copy(int64(len(op.Data)))
		default:
			return nil, fmt.Errorf("rsync: op %d has unknown kind %d", i, op.Kind)
		}
	}
	if int64(len(out)) != d.TargetLen {
		return nil, fmt.Errorf("rsync: patched length %d != target length %d",
			len(out), d.TargetLen)
	}
	return out, nil
}

// MarshalBinary serializes the delta in a compact length-prefixed format.
func (d *Delta) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	var hdr [8]byte
	put := func(v uint64) {
		binary.BigEndian.PutUint64(hdr[:], v)
		buf.Write(hdr[:])
	}
	put(uint64(d.BlockSize))
	put(uint64(d.BaseLen))
	put(uint64(d.TargetLen))
	put(uint64(len(d.Ops)))
	for _, op := range d.Ops {
		buf.WriteByte(byte(op.Kind))
		switch op.Kind {
		case OpCopy:
			put(uint64(op.Off))
			put(uint64(op.Len))
		case OpData:
			put(uint64(len(op.Data)))
			buf.Write(op.Data)
		default:
			return nil, fmt.Errorf("rsync: marshal: unknown op kind %d", op.Kind)
		}
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary parses a delta serialized by MarshalBinary.
func (d *Delta) UnmarshalBinary(p []byte) error {
	get := func() (uint64, error) {
		if len(p) < 8 {
			return 0, errors.New("rsync: unmarshal: short buffer")
		}
		v := binary.BigEndian.Uint64(p[:8])
		p = p[8:]
		return v, nil
	}
	bs, err := get()
	if err != nil {
		return err
	}
	baseLen, err := get()
	if err != nil {
		return err
	}
	targetLen, err := get()
	if err != nil {
		return err
	}
	nOps, err := get()
	if err != nil {
		return err
	}
	if nOps > uint64(len(p)) { // each op needs at least 1 byte
		return fmt.Errorf("rsync: unmarshal: op count %d exceeds buffer", nOps)
	}
	d.BlockSize = int(bs)
	d.BaseLen = int64(baseLen)
	d.TargetLen = int64(targetLen)
	d.Ops = make([]Op, 0, nOps)
	for i := uint64(0); i < nOps; i++ {
		if len(p) < 1 {
			return errors.New("rsync: unmarshal: truncated op")
		}
		kind := OpKind(p[0])
		p = p[1:]
		switch kind {
		case OpCopy:
			off, err := get()
			if err != nil {
				return err
			}
			n, err := get()
			if err != nil {
				return err
			}
			d.Ops = append(d.Ops, Op{Kind: OpCopy, Off: int64(off), Len: int64(n)})
		case OpData:
			n, err := get()
			if err != nil {
				return err
			}
			if uint64(len(p)) < n {
				return errors.New("rsync: unmarshal: truncated literal")
			}
			d.Ops = append(d.Ops, Op{Kind: OpData, Data: append([]byte(nil), p[:n]...)})
			p = p[n:]
		default:
			return fmt.Errorf("rsync: unmarshal: unknown op kind %d", kind)
		}
	}
	if len(p) != 0 {
		return fmt.Errorf("rsync: unmarshal: %d trailing bytes", len(p))
	}
	return nil
}

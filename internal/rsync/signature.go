// Package rsync implements the rsync delta-encoding algorithm [Tridgell
// 1996] in the two forms the paper uses:
//
//   - the classic remote form (fixed-size blocks, rolling weak checksum, MD5
//     strong verification), as employed by Dropbox/librsync, and
//   - the DeltaCFS local form (paper §III-A): when both the old and the new
//     version of a file are on the same machine, strong checksums are
//     replaced by direct bitwise comparison, eliminating most of rsync's
//     per-byte CPU cost.
//
// All entry points charge a metrics.CPUMeter for the algorithmic work they
// perform, so the evaluation harness can report deterministic CPU ticks.
package rsync

import (
	"repro/internal/block"
	"repro/internal/metrics"
)

// Sig is the signature of a base file: per-block weak (and optionally
// strong) checksums. It corresponds to what an rsync receiver transmits to
// the sender; in DeltaCFS's local mode it is computed in place and never
// crosses the network.
type Sig struct {
	BlockSize int
	FileLen   int64
	Blocks    []block.Sig
	// HasStrong reports whether Blocks[i].Strong is populated. The local
	// (bitwise-comparison) mode skips strong checksums entirely.
	HasStrong bool

	weakIndex map[uint32][]int
}

// Signature computes the full (weak + strong) signature of base using the
// given block size, charging meter for the rolling and MD5 passes. blockSize
// must be positive; callers normally pass block.DefaultBlockSize.
func Signature(base []byte, blockSize int, meter *metrics.CPUMeter) *Sig {
	s := signature(base, blockSize, true)
	meter.RollingHash(int64(len(base)))
	meter.StrongHash(int64(len(base)))
	return s
}

// WeakSignature computes a weak-only signature of base. This is the
// signature DeltaCFS's local mode uses: strong checksums are unnecessary
// because candidate matches are verified by bitwise comparison against the
// local base bytes.
func WeakSignature(base []byte, blockSize int, meter *metrics.CPUMeter) *Sig {
	s := signature(base, blockSize, false)
	meter.RollingHash(int64(len(base)))
	return s
}

func signature(base []byte, blockSize int, withStrong bool) *Sig {
	if blockSize <= 0 {
		blockSize = block.DefaultBlockSize
	}
	nBlocks := (len(base) + blockSize - 1) / blockSize
	s := &Sig{
		BlockSize: blockSize,
		FileLen:   int64(len(base)),
		Blocks:    make([]block.Sig, 0, nBlocks),
		HasStrong: withStrong,
	}
	for i := 0; i < nBlocks; i++ {
		lo := i * blockSize
		hi := lo + blockSize
		if hi > len(base) {
			hi = len(base)
		}
		bs := block.Sig{Index: i, Weak: block.WeakSum(base[lo:hi])}
		if withStrong {
			bs.Strong = block.StrongSum(base[lo:hi])
		}
		s.Blocks = append(s.Blocks, bs)
	}
	return s
}

// index returns the weak-checksum → block-indexes map, building it on first
// use. Only full-size blocks participate in rolling matches; a short trailing
// block is matched separately by the delta routines.
func (s *Sig) index() map[uint32][]int {
	if s.weakIndex != nil {
		return s.weakIndex
	}
	s.weakIndex = make(map[uint32][]int, len(s.Blocks))
	for i, b := range s.Blocks {
		if s.blockLen(i) != s.BlockSize {
			continue
		}
		s.weakIndex[b.Weak] = append(s.weakIndex[b.Weak], i)
	}
	return s.weakIndex
}

// blockLen returns the length in bytes of block i.
func (s *Sig) blockLen(i int) int {
	lo := int64(i) * int64(s.BlockSize)
	if lo >= s.FileLen {
		return 0
	}
	n := s.FileLen - lo
	if n > int64(s.BlockSize) {
		n = int64(s.BlockSize)
	}
	return int(n)
}

// tailBlock returns the index of a short trailing block, or -1 if the file
// length is an exact multiple of the block size (or the file is empty).
func (s *Sig) tailBlock() int {
	if len(s.Blocks) == 0 {
		return -1
	}
	last := len(s.Blocks) - 1
	if s.blockLen(last) == s.BlockSize {
		return -1
	}
	return last
}

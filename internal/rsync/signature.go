// Package rsync implements the rsync delta-encoding algorithm [Tridgell
// 1996] in the two forms the paper uses:
//
//   - the classic remote form (fixed-size blocks, rolling weak checksum, MD5
//     strong verification), as employed by Dropbox/librsync, and
//   - the DeltaCFS local form (paper §III-A): when both the old and the new
//     version of a file are on the same machine, strong checksums are
//     replaced by direct bitwise comparison, eliminating most of rsync's
//     per-byte CPU cost.
//
// All entry points charge a metrics.CPUMeter for the algorithmic work they
// perform, so the evaluation harness can report deterministic CPU ticks.
// The meter models the canonical serial algorithm: the parallel kernel
// (signature sharding in this file, the sharded delta scan in parallel.go)
// reports exactly the charges the serial path would, so evaluation numbers
// are identical whichever path ran — only wall-clock time changes.
package rsync

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/block"
	"repro/internal/metrics"
)

// kernelWorkers overrides the kernel's parallelism when positive; zero (the
// default) means GOMAXPROCS. Set via SetWorkers.
var kernelWorkers atomic.Int32

// SetWorkers sets the number of concurrent shard workers the signature and
// delta kernels may use. n <= 1 forces the serial path regardless of input
// size; n == 0 restores the default (GOMAXPROCS). Safe to call concurrently,
// though it is intended for process setup and benchmarks.
func SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	kernelWorkers.Store(int32(n))
}

// workerCount returns the effective shard-worker count.
func workerCount() int {
	if n := int(kernelWorkers.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// sigParallelMin is the base size, in bytes, below which signatures are
// always computed serially. Below this the spawn/join overhead of shard
// goroutines exceeds the hashing work itself (a 1 MiB base is 256 default
// blocks, tens of microseconds of checksumming), and keeping small files on
// the serial path also keeps them allocation-free beyond the signature
// itself. Declared as a variable so tests can force the parallel path on
// small inputs.
var sigParallelMin = 1 << 20

// sigBlocksPool recycles per-file signature block slices, the dominant
// allocation of repeated DeltaLocal calls on large files.
var sigBlocksPool sync.Pool

func getSigBlocks(n int) []block.Sig {
	if v := sigBlocksPool.Get(); v != nil {
		if b := v.([]block.Sig); cap(b) >= n {
			return b[:n]
		}
	}
	return make([]block.Sig, n)
}

// Sig is the signature of a base file: per-block weak (and optionally
// strong) checksums. It corresponds to what an rsync receiver transmits to
// the sender; in DeltaCFS's local mode it is computed in place and never
// crosses the network.
//
// A *Sig is safe to share across goroutines once constructed: the weak-index
// map is built exactly once behind a sync.Once, and all other fields are
// immutable after the constructor returns.
type Sig struct {
	BlockSize int
	FileLen   int64
	Blocks    []block.Sig
	// HasStrong reports whether Blocks[i].Strong is populated. The local
	// (bitwise-comparison) mode skips strong checksums entirely.
	HasStrong bool

	indexOnce sync.Once
	weakIndex map[uint32][]int
}

// Signature computes the full (weak + strong) signature of base using the
// given block size, charging meter for the rolling and MD5 passes. blockSize
// must be positive; callers normally pass block.DefaultBlockSize.
func Signature(base []byte, blockSize int, meter *metrics.CPUMeter) *Sig {
	s := signature(base, blockSize, true)
	meter.RollingHash(int64(len(base)))
	meter.StrongHash(int64(len(base)))
	return s
}

// WeakSignature computes a weak-only signature of base. This is the
// signature DeltaCFS's local mode uses: strong checksums are unnecessary
// because candidate matches are verified by bitwise comparison against the
// local base bytes.
func WeakSignature(base []byte, blockSize int, meter *metrics.CPUMeter) *Sig {
	s := signature(base, blockSize, false)
	meter.RollingHash(int64(len(base)))
	return s
}

// signature builds the per-block checksum table, sharding the base across
// workerCount() goroutines when the file is large enough to amortize the
// fan-out. Every block's checksum is a pure function of its bytes, so the
// shard split cannot change the result.
func signature(base []byte, blockSize int, withStrong bool) *Sig {
	if blockSize <= 0 {
		blockSize = block.DefaultBlockSize
	}
	nBlocks := (len(base) + blockSize - 1) / blockSize
	s := &Sig{
		BlockSize: blockSize,
		FileLen:   int64(len(base)),
		Blocks:    getSigBlocks(nBlocks),
		HasStrong: withStrong,
	}
	workers := workerCount()
	if len(base) < sigParallelMin || workers <= 1 || nBlocks < 2 {
		block.SumRange(s.Blocks, base, blockSize, withStrong, 0, nBlocks)
		return s
	}
	if workers > nBlocks {
		workers = nBlocks
	}
	per := (nBlocks + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < nBlocks; lo += per {
		hi := lo + per
		if hi > nBlocks {
			hi = nBlocks
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			block.SumRange(s.Blocks, base, blockSize, withStrong, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	return s
}

// Release returns the signature's block storage to the package pool. Only
// the owner of the signature may call it, and only when no goroutine will
// touch the signature again (DeltaLocal releases its internal signature this
// way). The signature must not be used after Release.
func (s *Sig) Release() {
	if s == nil {
		return
	}
	if s.Blocks != nil {
		sigBlocksPool.Put(s.Blocks[:0])
	}
	s.Blocks = nil
	s.weakIndex = nil
	s.indexOnce = sync.Once{}
}

// index returns the weak-checksum → block-indexes map, building it exactly
// once. The sync.Once makes a shared *Sig safe: two goroutines racing into
// index() observe one fully built map (the previous lazy build with no
// synchronization corrupted the map under concurrent DeltaRemote calls).
// Only full-size blocks participate in rolling matches; a short trailing
// block is matched separately by the delta routines.
func (s *Sig) index() map[uint32][]int {
	s.indexOnce.Do(s.buildIndex)
	return s.weakIndex
}

func (s *Sig) buildIndex() {
	m := make(map[uint32][]int, len(s.Blocks))
	for i, b := range s.Blocks {
		if s.blockLen(i) != s.BlockSize {
			continue
		}
		m[b.Weak] = append(m[b.Weak], i)
	}
	s.weakIndex = m
}

// blockLen returns the length in bytes of block i.
func (s *Sig) blockLen(i int) int {
	lo := int64(i) * int64(s.BlockSize)
	if lo >= s.FileLen {
		return 0
	}
	n := s.FileLen - lo
	if n > int64(s.BlockSize) {
		n = int64(s.BlockSize)
	}
	return int(n)
}

// tailBlock returns the index of a short trailing block, or -1 if the file
// length is an exact multiple of the block size (or the file is empty).
func (s *Sig) tailBlock() int {
	if len(s.Blocks) == 0 {
		return -1
	}
	last := len(s.Blocks) - 1
	if s.blockLen(last) == s.BlockSize {
		return -1
	}
	return last
}

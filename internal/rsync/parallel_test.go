package rsync

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/block"
	"repro/internal/metrics"
)

// mutate derives a target from base with the paper's workload shapes:
// in-place overwrites, an insertion (shifting alignment), and an append.
func mutate(rng *rand.Rand, base []byte) []byte {
	target := append([]byte(nil), base...)
	for i := 0; i < 1+rng.Intn(4); i++ {
		if len(target) == 0 {
			break
		}
		off := rng.Intn(len(target))
		n := min(1+rng.Intn(200), len(target)-off)
		rng.Read(target[off : off+n])
	}
	if rng.Intn(2) == 0 && len(target) > 0 {
		at := rng.Intn(len(target))
		ins := make([]byte, 1+rng.Intn(300))
		rng.Read(ins)
		target = append(target[:at], append(ins, target[at:]...)...)
	}
	if rng.Intn(2) == 0 {
		app := make([]byte, rng.Intn(5000))
		rng.Read(app)
		target = append(target, app...)
	}
	return target
}

func runSerial(base, target []byte, bs int, remote bool) (*Delta, *metrics.CPUMeter) {
	meter := metrics.NewCPUMeter(metrics.PC)
	if remote {
		sig := Signature(base, bs, meter)
		d, err := DeltaRemote(sig, target, meter)
		if err != nil {
			panic(err)
		}
		return d, meter
	}
	return DeltaLocal(base, target, bs, meter), meter
}

func checkEqualRuns(t *testing.T, base, target []byte, bs int, remote bool) {
	t.Helper()
	SetWorkers(1)
	ds, ms := runSerial(base, target, bs, remote)
	SetWorkers(5)
	dp, mp := runSerial(base, target, bs, remote)
	SetWorkers(1)

	if !reflect.DeepEqual(ds.Ops, dp.Ops) {
		t.Fatalf("op streams differ: serial %d ops, parallel %d ops", len(ds.Ops), len(dp.Ops))
	}
	if ds.WireSize() != dp.WireSize() {
		t.Fatalf("wire sizes differ: serial %d, parallel %d", ds.WireSize(), dp.WireSize())
	}
	if ms.NanoTicks() != mp.NanoTicks() {
		t.Fatalf("nano-ticks differ: serial %d, parallel %d\nserial %v\nparallel %v",
			ms.NanoTicks(), mp.NanoTicks(), ms.Breakdown(), mp.Breakdown())
	}
	if !reflect.DeepEqual(ms.Breakdown(), mp.Breakdown()) {
		t.Fatalf("meter breakdowns differ:\nserial   %v\nparallel %v", ms.Breakdown(), mp.Breakdown())
	}
	got, err := Patch(base, dp, nil)
	if err != nil {
		t.Fatalf("patch failed: %v", err)
	}
	if !bytes.Equal(got, target) {
		t.Fatalf("patched output differs from target (len %d vs %d)", len(got), len(target))
	}
}

func TestParallelMatchesSerialRandomized(t *testing.T) {
	oldSig, oldDelta := sigParallelMin, deltaParallelMin
	sigParallelMin = 0
	deltaParallelMin = 0
	t.Cleanup(func() {
		SetWorkers(0)
		sigParallelMin = oldSig
		deltaParallelMin = oldDelta
	})

	rng := rand.New(rand.NewSource(7))
	for _, bs := range []int{16, 64, 4096} {
		for _, size := range []int{0, 1, bs - 1, bs, bs + 1, 4 * bs, 32*bs + 17} {
			base := make([]byte, size)
			rng.Read(base)
			for iter := 0; iter < 4; iter++ {
				target := mutate(rng, base)
				for _, remote := range []bool{false, true} {
					checkEqualRuns(t, base, target, bs, remote)
				}
			}
		}
	}
}

func TestParallelMatchesSerialStructured(t *testing.T) {
	oldSig, oldDelta := sigParallelMin, deltaParallelMin
	sigParallelMin = 0
	deltaParallelMin = 0
	t.Cleanup(func() {
		SetWorkers(0)
		sigParallelMin = oldSig
		deltaParallelMin = oldDelta
	})

	rng := rand.New(rand.NewSource(11))
	bs := 256
	base := make([]byte, 64*bs+100)
	rng.Read(base)

	cases := map[string][]byte{
		"identical":      append([]byte(nil), base...),
		"disjoint":       bytes.Repeat([]byte{0xAA}, len(base)),
		"shifted":        append([]byte{1, 2, 3}, base...),
		"truncated":      base[:10*bs+5],
		"tail-only":      base[len(base)-100:],
		"repeated-block": bytes.Repeat(base[:bs], 20),
		"empty":          nil,
	}
	for name, target := range cases {
		t.Run(name, func(t *testing.T) {
			for _, remote := range []bool{false, true} {
				checkEqualRuns(t, base, target, bs, remote)
			}
		})
	}
}

// TestSharedSigConcurrent exercises the Sig.index() race the lazy map build
// had: many goroutines share one signature and encode deltas concurrently.
// Run under -race this fails on the pre-sync.Once implementation.
func TestSharedSigConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	base := make([]byte, 1<<16)
	rng.Read(base)
	sig := Signature(base, 1024, nil)
	want, err := DeltaRemote(sig, base[100:], nil)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			d, err := DeltaRemote(sig, base[100:], nil)
			if err != nil {
				errs <- err
				return
			}
			if !reflect.DeepEqual(d.Ops, want.Ops) {
				errs <- fmt.Errorf("concurrent delta diverged: %d ops vs %d", len(d.Ops), len(want.Ops))
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestDeltaReleaseRecycles(t *testing.T) {
	base := bytes.Repeat([]byte{1, 2, 3, 4}, 1000)
	target := append(append([]byte(nil), base...), []byte("trailing edit")...)
	d := DeltaLocal(base, target, 256, nil)
	if got, err := Patch(base, d, nil); err != nil || !bytes.Equal(got, target) {
		t.Fatalf("patch before release: err=%v", err)
	}
	d.Release()
	if len(d.Ops) != 0 {
		t.Fatalf("Release left %d ops", len(d.Ops))
	}
	// The pool must hand back usable zero-length buffers, not corrupt ones.
	d2 := DeltaLocal(base, target, 256, nil)
	if got, err := Patch(base, d2, nil); err != nil || !bytes.Equal(got, target) {
		t.Fatalf("patch after pooled reuse: err=%v", err)
	}
}

var benchCases = []struct {
	name string
	size int
}{
	{"64KB", 64 << 10},
	{"4MB", 4 << 20},
	{"64MB", 64 << 20},
}

func benchInput(size int) (base, target []byte) {
	rng := rand.New(rand.NewSource(int64(size)))
	base = make([]byte, size)
	rng.Read(base)
	// Realistic update: a handful of scattered small edits plus one insertion.
	target = append([]byte(nil), base...)
	for i := 0; i < 8; i++ {
		off := rng.Intn(max(size-64, 1))
		rng.Read(target[off : off+min(64, size-off)])
	}
	mid := size / 2
	target = append(target[:mid], append([]byte("inserted-run-of-bytes"), target[mid:]...)...)
	return base, target
}

func benchModes(b *testing.B, run func(b *testing.B)) {
	for _, mode := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", 0}} {
		b.Run(mode.name, func(b *testing.B) {
			SetWorkers(mode.workers)
			if mode.workers == 0 {
				old := sigParallelMin
				oldD := deltaParallelMin
				sigParallelMin = 1 << 12
				deltaParallelMin = 1 << 12
				b.Cleanup(func() { sigParallelMin = old; deltaParallelMin = oldD })
			}
			b.Cleanup(func() { SetWorkers(0) })
			run(b)
		})
	}
}

func BenchmarkSignature(b *testing.B) {
	for _, tc := range benchCases {
		b.Run(tc.name, func(b *testing.B) {
			base, _ := benchInput(tc.size)
			benchModes(b, func(b *testing.B) {
				b.SetBytes(int64(tc.size))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					s := Signature(base, block.DefaultBlockSize, nil)
					s.Release()
				}
			})
		})
	}
}

func BenchmarkDeltaLocal(b *testing.B) {
	for _, tc := range benchCases {
		b.Run(tc.name, func(b *testing.B) {
			base, target := benchInput(tc.size)
			benchModes(b, func(b *testing.B) {
				b.SetBytes(int64(tc.size))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					d := DeltaLocal(base, target, block.DefaultBlockSize, nil)
					d.Release()
				}
			})
		})
	}
}

func BenchmarkDeltaRemote(b *testing.B) {
	for _, tc := range benchCases {
		b.Run(tc.name, func(b *testing.B) {
			base, target := benchInput(tc.size)
			benchModes(b, func(b *testing.B) {
				sig := Signature(base, block.DefaultBlockSize, nil)
				b.SetBytes(int64(tc.size))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					d, err := DeltaRemote(sig, target, nil)
					if err != nil {
						b.Fatal(err)
					}
					d.Release()
				}
			})
		})
	}
}

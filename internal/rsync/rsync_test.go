package rsync

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/block"
	"repro/internal/metrics"
)

func mustPatch(t *testing.T, base []byte, d *Delta) []byte {
	t.Helper()
	out, err := Patch(base, d, nil)
	if err != nil {
		t.Fatalf("Patch: %v", err)
	}
	return out
}

func randBytes(seed int64, n int) []byte {
	p := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(p)
	return p
}

func TestSignatureBlockCount(t *testing.T) {
	cases := []struct {
		fileLen, blockSize, wantBlocks int
	}{
		{0, 4096, 0},
		{1, 4096, 1},
		{4096, 4096, 1},
		{4097, 4096, 2},
		{8192, 4096, 2},
		{10000, 4096, 3},
	}
	for _, c := range cases {
		s := Signature(make([]byte, c.fileLen), c.blockSize, nil)
		if len(s.Blocks) != c.wantBlocks {
			t.Errorf("len=%d bs=%d: blocks = %d, want %d",
				c.fileLen, c.blockSize, len(s.Blocks), c.wantBlocks)
		}
	}
}

func TestSignatureDefaultsBlockSize(t *testing.T) {
	s := Signature(make([]byte, 100), 0, nil)
	if s.BlockSize != block.DefaultBlockSize {
		t.Fatalf("BlockSize = %d, want default %d", s.BlockSize, block.DefaultBlockSize)
	}
}

func TestDeltaRemoteRequiresStrong(t *testing.T) {
	s := WeakSignature([]byte("abc"), 1, nil)
	if _, err := DeltaRemote(s, []byte("abd"), nil); err == nil {
		t.Fatal("DeltaRemote accepted a weak-only signature")
	}
}

func TestDeltaIdenticalFiles(t *testing.T) {
	base := randBytes(1, 64*1024)
	sig := Signature(base, 4096, nil)
	d, err := DeltaRemote(sig, base, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.LiteralBytes() != 0 {
		t.Fatalf("identical files: %d literal bytes, want 0", d.LiteralBytes())
	}
	if got := mustPatch(t, base, d); !bytes.Equal(got, base) {
		t.Fatal("patch of identical-file delta mismatched")
	}
}

func TestDeltaEmptyBase(t *testing.T) {
	target := randBytes(2, 10000)
	sig := Signature(nil, 4096, nil)
	d, err := DeltaRemote(sig, target, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.LiteralBytes() != int64(len(target)) {
		t.Fatalf("empty base: literal = %d, want %d", d.LiteralBytes(), len(target))
	}
	if got := mustPatch(t, nil, d); !bytes.Equal(got, target) {
		t.Fatal("patch from empty base mismatched")
	}
}

func TestDeltaEmptyTarget(t *testing.T) {
	base := randBytes(3, 8192)
	sig := Signature(base, 4096, nil)
	d, err := DeltaRemote(sig, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(mustPatch(t, base, d)) != 0 {
		t.Fatal("empty target should patch to empty")
	}
}

func TestDeltaAppend(t *testing.T) {
	base := randBytes(4, 32*1024)
	appended := randBytes(5, 1000)
	target := append(append([]byte(nil), base...), appended...)
	sig := Signature(base, 4096, nil)
	d, err := DeltaRemote(sig, target, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.LiteralBytes() != int64(len(appended)) {
		t.Fatalf("append: literal = %d, want %d", d.LiteralBytes(), len(appended))
	}
	if got := mustPatch(t, base, d); !bytes.Equal(got, target) {
		t.Fatal("append patch mismatched")
	}
}

func TestDeltaPrependShiftsData(t *testing.T) {
	// Prepending data shifts every block; rsync's rolling window must
	// still find all the old full blocks at shifted offsets.
	base := randBytes(6, 32*1024) // 8 full 4K blocks
	prefix := randBytes(7, 100)
	target := append(append([]byte(nil), prefix...), base...)
	sig := Signature(base, 4096, nil)
	d, err := DeltaRemote(sig, target, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Everything except the prefix should come from copies.
	if d.LiteralBytes() > int64(len(prefix)) {
		t.Fatalf("prepend: literal = %d, want <= %d", d.LiteralBytes(), len(prefix))
	}
	if got := mustPatch(t, base, d); !bytes.Equal(got, target) {
		t.Fatal("prepend patch mismatched")
	}
}

func TestDeltaMidFileEdit(t *testing.T) {
	base := randBytes(8, 128*1024)
	target := append([]byte(nil), base...)
	copy(target[50000:50100], randBytes(9, 100))
	sig := Signature(base, 4096, nil)
	d, err := DeltaRemote(sig, target, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The edit touches at most 2 blocks; literal must be bounded by the
	// damaged blocks, not the whole file (this is the "at least one data
	// block even though only 1 byte is modified" footnote 3 behaviour).
	if d.LiteralBytes() > 3*4096 {
		t.Fatalf("mid-file edit: literal = %d, want <= %d", d.LiteralBytes(), 3*4096)
	}
	if d.LiteralBytes() < 100 {
		t.Fatalf("mid-file edit: literal = %d, want >= 100", d.LiteralBytes())
	}
	if got := mustPatch(t, base, d); !bytes.Equal(got, target) {
		t.Fatal("mid-file edit patch mismatched")
	}
}

func TestDeltaShortTrailingBlockReused(t *testing.T) {
	// Base ends with a 1000-byte short block; target keeps it at the end.
	base := append(randBytes(10, 8192), randBytes(11, 1000)...)
	insert := randBytes(12, 4096)
	target := append(append(append([]byte(nil), base[:8192]...), insert...), base[8192:]...)
	sig := Signature(base, 4096, nil)
	d, err := DeltaRemote(sig, target, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := mustPatch(t, base, d); !bytes.Equal(got, target) {
		t.Fatal("short-tail patch mismatched")
	}
	if d.LiteralBytes() > int64(len(insert)) {
		t.Fatalf("short tail not reused: literal = %d, want <= %d",
			d.LiteralBytes(), len(insert))
	}
}

func TestDeltaLocalMatchesRemoteOutput(t *testing.T) {
	base := randBytes(13, 100*1024)
	target := append([]byte(nil), base...)
	copy(target[10000:10500], randBytes(14, 500))
	target = append(target, randBytes(15, 2000)...)

	sig := Signature(base, 4096, nil)
	remote, err := DeltaRemote(sig, target, nil)
	if err != nil {
		t.Fatal(err)
	}
	local := DeltaLocal(base, target, 4096, nil)

	gr := mustPatch(t, base, remote)
	gl := mustPatch(t, base, local)
	if !bytes.Equal(gr, target) || !bytes.Equal(gl, target) {
		t.Fatal("remote/local patches mismatched target")
	}
	if local.LiteralBytes() != remote.LiteralBytes() {
		t.Fatalf("local literal %d != remote literal %d",
			local.LiteralBytes(), remote.LiteralBytes())
	}
}

func TestDeltaLocalCheaperThanRemote(t *testing.T) {
	// The §III-A claim: local bitwise verification costs less CPU than
	// strong-checksum verification for the same inputs.
	base := randBytes(16, 1<<20)
	target := append([]byte(nil), base...)
	copy(target[1234:2345], randBytes(17, 1111))

	remoteMeter := metrics.NewCPUMeter(metrics.PC)
	sig := Signature(base, 4096, remoteMeter)
	if _, err := DeltaRemote(sig, target, remoteMeter); err != nil {
		t.Fatal(err)
	}

	localMeter := metrics.NewCPUMeter(metrics.PC)
	DeltaLocal(base, target, 4096, localMeter)

	if localMeter.NanoTicks() >= remoteMeter.NanoTicks() {
		t.Fatalf("local mode (%d nanoticks) not cheaper than remote (%d)",
			localMeter.NanoTicks(), remoteMeter.NanoTicks())
	}
}

func TestWeakCollisionFallsBackToLiteral(t *testing.T) {
	// Construct two blocks with equal weak sums but different bytes: the
	// weak sum is order-insensitive in 'a' but order-sensitive in 'b', so
	// use blocks crafted to collide: swapping two equal-sum segments.
	// Simplest reliable approach: brute-force a small collision.
	bs := 4
	base := []byte{1, 2, 3, 4}
	var collide []byte
	w := block.WeakSum(base)
	for x := 0; x < 256 && collide == nil; x++ {
		for y := 0; y < 256; y++ {
			cand := []byte{byte(x), byte(y), 3, 4}
			if block.WeakSum(cand) == w && !bytes.Equal(cand, base) {
				collide = cand
				break
			}
		}
	}
	if collide == nil {
		t.Skip("no 4-byte weak collision found")
	}
	sig := Signature(base, bs, nil)
	d, err := DeltaRemote(sig, collide, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := mustPatch(t, base, d); !bytes.Equal(got, collide) {
		t.Fatalf("collision target not reconstructed: got %v want %v", got, collide)
	}
	if d.LiteralBytes() == 0 {
		t.Fatal("collision block must be sent literally, not copied")
	}
}

func TestPatchRejectsBadCopyRange(t *testing.T) {
	d := &Delta{TargetLen: 10, Ops: []Op{{Kind: OpCopy, Off: 0, Len: 10}}}
	if _, err := Patch([]byte("short"), d, nil); err == nil {
		t.Fatal("Patch accepted out-of-range copy")
	}
	d2 := &Delta{TargetLen: 5, Ops: []Op{{Kind: OpCopy, Off: -1, Len: 5}}}
	if _, err := Patch(make([]byte, 10), d2, nil); err == nil {
		t.Fatal("Patch accepted negative offset")
	}
}

func TestPatchRejectsWrongLength(t *testing.T) {
	d := &Delta{TargetLen: 99, Ops: []Op{{Kind: OpData, Data: []byte("abc")}}}
	if _, err := Patch(nil, d, nil); err == nil {
		t.Fatal("Patch accepted wrong target length")
	}
}

func TestPatchRejectsNegativeTargetLen(t *testing.T) {
	d := &Delta{TargetLen: -1}
	if _, err := Patch(nil, d, nil); err == nil {
		t.Fatal("Patch accepted negative target length")
	}
}

func TestPatchBoundsHostilePrealloc(t *testing.T) {
	// A delta claiming a petabyte target must not commit a petabyte up
	// front: the preallocation is capped and the lie is caught by the final
	// length check after only the real op bytes were materialized.
	d := &Delta{TargetLen: 1 << 50, Ops: []Op{{Kind: OpData, Data: []byte("abc")}}}
	if _, err := Patch(nil, d, nil); err == nil {
		t.Fatal("Patch accepted a target length its ops never produced")
	}
}

func TestPatchRejectsUnknownOp(t *testing.T) {
	d := &Delta{TargetLen: 0, Ops: []Op{{Kind: 99}}}
	if _, err := Patch(nil, d, nil); err == nil {
		t.Fatal("Patch accepted unknown op kind")
	}
}

func TestOpsCoalesced(t *testing.T) {
	base := randBytes(18, 64*1024)
	sig := Signature(base, 4096, nil)
	d, err := DeltaRemote(sig, base, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Ops) != 1 || d.Ops[0].Kind != OpCopy || d.Ops[0].Len != int64(len(base)) {
		t.Fatalf("identical file should coalesce to one copy op, got %+v", d.Ops)
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	base := randBytes(19, 50000)
	target := append([]byte(nil), base...)
	copy(target[100:600], randBytes(20, 500))
	d := DeltaLocal(base, target, 4096, nil)

	p, err := d.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var d2 Delta
	if err := d2.UnmarshalBinary(p); err != nil {
		t.Fatal(err)
	}
	got := mustPatch(t, base, &d2)
	if !bytes.Equal(got, target) {
		t.Fatal("marshalled delta did not reconstruct target")
	}
	if int64(len(p)) > d.WireSize()+1024 {
		t.Fatalf("encoded size %d exceeds WireSize estimate %d", len(p), d.WireSize())
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	var d Delta
	for _, p := range [][]byte{
		nil,
		{1, 2, 3},
		bytes.Repeat([]byte{0xff}, 40),
	} {
		if err := d.UnmarshalBinary(p); err == nil {
			t.Fatalf("UnmarshalBinary accepted garbage %v", p)
		}
	}
}

// Property: for random base/target pairs and block sizes, remote delta +
// patch always reconstructs the target.
func TestDeltaRemoteRoundTripProperty(t *testing.T) {
	f := func(base, target []byte, bsSeed uint8) bool {
		bs := 1 + int(bsSeed)%512
		sig := Signature(base, bs, nil)
		d, err := DeltaRemote(sig, target, nil)
		if err != nil {
			return false
		}
		out, err := Patch(base, d, nil)
		return err == nil && bytes.Equal(out, target)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: local mode reconstructs too, and never ships more literal bytes
// than the whole target.
func TestDeltaLocalRoundTripProperty(t *testing.T) {
	f := func(base, target []byte, bsSeed uint8) bool {
		bs := 1 + int(bsSeed)%512
		d := DeltaLocal(base, target, bs, nil)
		out, err := Patch(base, d, nil)
		return err == nil && bytes.Equal(out, target) &&
			d.LiteralBytes() <= int64(len(target))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: marshal/unmarshal is the identity on deltas.
func TestDeltaMarshalProperty(t *testing.T) {
	f := func(base, target []byte) bool {
		d := DeltaLocal(base, target, 64, nil)
		p, err := d.MarshalBinary()
		if err != nil {
			return false
		}
		var d2 Delta
		if err := d2.UnmarshalBinary(p); err != nil {
			return false
		}
		out, err := Patch(base, &d2, nil)
		return err == nil && bytes.Equal(out, target)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDeltaRemote1MB(b *testing.B) {
	base := randBytes(21, 1<<20)
	target := append([]byte(nil), base...)
	copy(target[500000:501000], randBytes(22, 1000))
	b.SetBytes(int64(len(target)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sig := Signature(base, 4096, nil)
		if _, err := DeltaRemote(sig, target, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDeltaLocal1MB(b *testing.B) {
	base := randBytes(23, 1<<20)
	target := append([]byte(nil), base...)
	copy(target[500000:501000], randBytes(24, 1000))
	b.SetBytes(int64(len(target)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DeltaLocal(base, target, 4096, nil)
	}
}

func BenchmarkPatch1MB(b *testing.B) {
	base := randBytes(25, 1<<20)
	target := append([]byte(nil), base...)
	copy(target[1000:2000], randBytes(26, 1000))
	d := DeltaLocal(base, target, 4096, nil)
	b.SetBytes(int64(len(target)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Patch(base, d, nil); err != nil {
			b.Fatal(err)
		}
	}
}

package syncqueue

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/rsync"
)

const delay = 3 * time.Second

func popAll(q *Queue, now time.Duration) []*Node {
	var nodes []*Node
	for _, b := range q.PopReady(now) {
		nodes = append(nodes, b.Nodes...)
	}
	return nodes
}

func TestWriteBatchingSameFile(t *testing.T) {
	q := New(delay)
	n1 := q.Write("f", 0, []byte("aa"), 0)
	n2 := q.Write("f", 2, []byte("bb"), time.Second)
	if n1 != n2 {
		t.Fatal("writes to same file did not share a write node")
	}
	// Contiguous writes coalesce into one extent.
	if len(n1.Extents) != 1 || !bytes.Equal(n1.Extents[0].Data, []byte("aabb")) {
		t.Fatalf("extents = %+v", n1.Extents)
	}
	n3 := q.Write("f", 100, []byte("cc"), time.Second)
	if n3 != n1 || len(n1.Extents) != 2 {
		t.Fatalf("non-contiguous write handling: %+v", n1.Extents)
	}
	if q.Len() != 1 {
		t.Fatalf("Len = %d, want 1", q.Len())
	}
}

func TestWriteDataIsCopied(t *testing.T) {
	q := New(delay)
	buf := []byte("mutate")
	n := q.Write("f", 0, buf, 0)
	buf[0] = 'X'
	if !bytes.Equal(n.Extents[0].Data, []byte("mutate")) {
		t.Fatal("write node aliased the caller's buffer")
	}
}

func TestPackStopsBatching(t *testing.T) {
	q := New(delay)
	n1 := q.Write("f", 0, []byte("a"), 0)
	q.Pack("f")
	n2 := q.Write("f", 1, []byte("b"), 0)
	if n1 == n2 {
		t.Fatal("write attached to packed node")
	}
	if q.Len() != 2 {
		t.Fatalf("Len = %d, want 2", q.Len())
	}
}

func TestAppendPacksAffectedPaths(t *testing.T) {
	q := New(delay)
	w := q.Write("f", 0, []byte("a"), 0)
	q.Append(&Node{Kind: KindRename, Path: "f", Dst: "g", At: 0})
	w2 := q.Write("f", 0, []byte("b"), 0)
	if w == w2 {
		t.Fatal("rename did not pack the write node")
	}
	// Dst pack too: a rename onto a path with an open node packs it.
	w3 := q.Write("h", 0, []byte("c"), 0)
	q.Append(&Node{Kind: KindRename, Path: "x", Dst: "h", At: 0})
	w4 := q.Write("h", 0, []byte("d"), 0)
	if w3 == w4 {
		t.Fatal("rename destination did not pack the write node")
	}
}

func TestDelayGatesUpload(t *testing.T) {
	q := New(delay)
	q.Write("f", 0, []byte("x"), 10*time.Second)
	if got := popAll(q, 10*time.Second+delay-time.Millisecond); len(got) != 0 {
		t.Fatalf("popped %d nodes before delay", len(got))
	}
	got := popAll(q, 10*time.Second+delay)
	if len(got) != 1 || got[0].Kind != KindWrite {
		t.Fatalf("popped %+v", got)
	}
	if q.Len() != 0 || q.BufferedBytes() != 0 {
		t.Fatalf("queue not drained: len=%d buffered=%d", q.Len(), q.BufferedBytes())
	}
}

func TestFIFOAcrossFiles(t *testing.T) {
	q := New(delay)
	q.Append(&Node{Kind: KindCreate, Path: "a", At: 0})
	q.Append(&Node{Kind: KindCreate, Path: "b", At: time.Second})
	q.Write("a", 0, []byte("1"), 2*time.Second)
	got := popAll(q, time.Minute)
	if len(got) != 3 {
		t.Fatalf("popped %d nodes", len(got))
	}
	if got[0].Path != "a" || got[1].Path != "b" || got[2].Kind != KindWrite {
		t.Fatalf("order: %v %v %v", got[0], got[1], got[2])
	}
}

func TestTruncateSupersedesBufferedData(t *testing.T) {
	// The journal pattern: create, write, truncate-to-0 before upload.
	// The buffered journal bytes must be dropped.
	q := New(delay)
	q.Append(&Node{Kind: KindCreate, Path: "j", At: 0})
	q.Write("j", 0, bytes.Repeat([]byte{1}, 4096), 0)
	if q.BufferedBytes() != 4096 {
		t.Fatalf("buffered = %d", q.BufferedBytes())
	}
	q.Truncate("j", 0, time.Second)
	if q.BufferedBytes() != 0 {
		t.Fatalf("buffered after truncate = %d, want 0", q.BufferedBytes())
	}
	got := popAll(q, time.Minute)
	// create, (empty) write node, truncate
	var payload int64
	for _, n := range got {
		payload += n.PayloadBytes()
	}
	if payload != 0 {
		t.Fatalf("superseded journal data still uploaded: %d bytes", payload)
	}
}

func TestTruncatePartialTrim(t *testing.T) {
	q := New(delay)
	q.Write("f", 0, []byte("0123456789"), 0)
	q.Truncate("f", 4, 0)
	if q.BufferedBytes() != 4 {
		t.Fatalf("buffered = %d, want 4", q.BufferedBytes())
	}
	got := popAll(q, time.Minute)
	var w *Node
	for _, n := range got {
		if n.Kind == KindWrite {
			w = n
		}
	}
	if w == nil || !bytes.Equal(w.Extents[0].Data, []byte("0123")) {
		t.Fatalf("trimmed extents: %+v", w)
	}
}

func TestReplaceWithDelta(t *testing.T) {
	// The Word pattern (Fig 6): writes to t1 packed, then replaced by a
	// delta node; surrounding nodes keep their positions; the covered
	// range becomes atomic.
	q := New(delay)
	q.Append(&Node{Kind: KindRename, Path: "f", Dst: "t0", At: 0})
	q.Append(&Node{Kind: KindCreate, Path: "t1", At: 0})
	q.Write("t1", 0, bytes.Repeat([]byte{9}, 1000), 0)
	q.Pack("t1") // close
	q.Append(&Node{Kind: KindRename, Path: "t1", Dst: "f", At: time.Millisecond})

	d := &Node{
		Path:     "t1",
		BasePath: "t0",
		Delta:    &rsync.Delta{TargetLen: 1000, Ops: []rsync.Op{{Kind: rsync.OpData, Data: []byte("small")}}},
		At:       time.Millisecond,
	}
	if !q.ReplaceWithDelta("t1", d) {
		t.Fatal("ReplaceWithDelta found no write node")
	}
	q.Append(&Node{Kind: KindUnlink, Path: "t0", At: 2 * time.Millisecond})

	if q.BufferedBytes() != 5 {
		t.Fatalf("buffered = %d, want 5 (delta literal)", q.BufferedBytes())
	}

	// FIFO before the backindex group: rename f->t0 and create t1 ship as
	// their own batches; the replaced position through the tail at
	// replacement time ([delta, rename t1->f]) ships atomically; the
	// unlink (enqueued after the replacement) follows on its own.
	batches := q.PopReady(time.Minute)
	if len(batches) != 4 {
		t.Fatalf("batches = %d, want 4", len(batches))
	}
	if batches[0].Atomic || batches[0].Nodes[0].Kind != KindRename {
		t.Fatalf("batch 0 = %+v", batches[0])
	}
	if batches[1].Atomic || batches[1].Nodes[0].Kind != KindCreate {
		t.Fatalf("batch 1 = %+v", batches[1])
	}
	if !batches[2].Atomic || len(batches[2].Nodes) != 2 ||
		batches[2].Nodes[0].Kind != KindDelta || batches[2].Nodes[1].Kind != KindRename {
		t.Fatalf("batch 2 = %+v", batches[2])
	}
	if batches[2].Nodes[0].BasePath != "t0" {
		t.Fatal("delta node lost its base path")
	}
	if batches[3].Atomic || batches[3].Nodes[0].Kind != KindUnlink {
		t.Fatalf("batch 3 = %+v", batches[3])
	}
}

func TestReplaceWithDeltaNoWriteNode(t *testing.T) {
	q := New(delay)
	q.Append(&Node{Kind: KindCreate, Path: "f", At: 0})
	if q.ReplaceWithDelta("f", &Node{Path: "f"}) {
		t.Fatal("ReplaceWithDelta succeeded without a write node")
	}
}

func TestDropPendingCreateDelete(t *testing.T) {
	// create a, create b, create c, delete a — the paper's causality
	// example. a's nodes are removed; b and c must ship atomically.
	q := New(delay)
	q.Append(&Node{Kind: KindCreate, Path: "a", At: 0})
	q.Write("a", 0, []byte("data-a"), 0)
	q.Append(&Node{Kind: KindCreate, Path: "b", At: 0})
	q.Append(&Node{Kind: KindCreate, Path: "c", At: 0})

	if !q.DropPending("a") {
		t.Fatal("DropPending failed for in-queue lifetime")
	}
	batches := q.PopReady(time.Minute)
	if len(batches) != 1 || !batches[0].Atomic {
		t.Fatalf("batches = %+v, want one atomic group", batches)
	}
	if len(batches[0].Nodes) != 2 ||
		batches[0].Nodes[0].Path != "b" || batches[0].Nodes[1].Path != "c" {
		t.Fatalf("group = %+v", batches[0].Nodes)
	}
}

func TestDropPendingRefusesSyncedFile(t *testing.T) {
	// File existed before (no create node in queue): must not drop.
	q := New(delay)
	q.Write("f", 0, []byte("x"), 0)
	if q.DropPending("f") {
		t.Fatal("DropPending dropped a file with no queued create")
	}
}

func TestDropPendingRefusesRenamedAway(t *testing.T) {
	q := New(delay)
	q.Append(&Node{Kind: KindCreate, Path: "a", At: 0})
	q.Append(&Node{Kind: KindRename, Path: "a", Dst: "b", At: 0})
	if q.DropPending("a") {
		t.Fatal("DropPending dropped a file that was renamed away")
	}
}

func TestDropPendingRefusesRenameTarget(t *testing.T) {
	q := New(delay)
	q.Append(&Node{Kind: KindCreate, Path: "t", At: 0})
	q.Append(&Node{Kind: KindRename, Path: "t", Dst: "f", At: 0})
	if q.DropPending("f") {
		t.Fatal("DropPending dropped a rename-produced name")
	}
}

func TestGroupsMergeOnInterleaving(t *testing.T) {
	q := New(delay)
	q.Append(&Node{Kind: KindCreate, Path: "a", At: 0})
	q.Write("a", 0, []byte("1"), 0)
	q.Append(&Node{Kind: KindCreate, Path: "b", At: 0})
	q.Write("b", 0, []byte("2"), 0)
	q.Append(&Node{Kind: KindCreate, Path: "c", At: 0})

	// Late writes to both earlier write nodes create two interleaving
	// groups; they must merge into one atomic range.
	q.Write("a", 1, []byte("3"), time.Second)
	q.Write("b", 1, []byte("4"), time.Second)

	// create a precedes both groups and ships alone; the two interleaving
	// groups [write a .. tail] and [write b .. tail] merge into one atomic
	// range of the remaining 4 nodes.
	batches := q.PopReady(time.Minute)
	if len(batches) != 2 {
		t.Fatalf("batches = %d, want 2", len(batches))
	}
	if batches[0].Atomic || batches[0].Nodes[0].Path != "a" {
		t.Fatalf("batch 0 = %+v", batches[0])
	}
	if !batches[1].Atomic || len(batches[1].Nodes) != 4 {
		t.Fatalf("merged group = %+v", batches[1])
	}
}

func TestLateWriteToHeadNodeShipsEarlyNodes(t *testing.T) {
	// A write attaches to a non-tail node; when the head becomes ready the
	// whole covered range ships, including younger nodes (upload-early
	// instead of stalling the group).
	q := New(delay)
	q.Write("f", 0, []byte("1"), 0)
	q.Append(&Node{Kind: KindCreate, Path: "g", At: 90 * time.Second})
	q.Write("f", 1, []byte("2"), 100*time.Second) // groups [f..create g..tail]

	batches := q.PopReady(101 * time.Second) // g's delay not yet elapsed
	if len(batches) != 1 || !batches[0].Atomic || len(batches[0].Nodes) != 2 {
		t.Fatalf("batches = %+v", batches)
	}
}

func TestPopPacksOpenNodes(t *testing.T) {
	q := New(delay)
	q.Write("f", 0, []byte("1"), 0)
	got := popAll(q, time.Minute)
	if len(got) != 1 {
		t.Fatalf("popped %d", len(got))
	}
	// After upload, new writes start a fresh node.
	n := q.Write("f", 1, []byte("2"), time.Minute)
	if n == got[0] {
		t.Fatal("write attached to an uploaded node")
	}
}

func TestDrain(t *testing.T) {
	q := New(delay)
	q.Write("f", 0, []byte("x"), 0)
	q.Append(&Node{Kind: KindCreate, Path: "g", At: time.Hour})
	got := 0
	for _, b := range q.Drain() {
		got += len(b.Nodes)
	}
	if got != 2 {
		t.Fatalf("Drain released %d nodes, want 2", got)
	}
}

func TestSeqStableAcrossCompaction(t *testing.T) {
	q := New(delay)
	for i := 0; i < 100; i++ {
		q.Append(&Node{Kind: KindCreate, Path: "f", At: time.Duration(i) * time.Second})
		popAll(q, time.Duration(i)*time.Second+delay)
	}
	n := q.Write("f", 0, []byte("x"), 200*time.Second)
	if n.Seq != 101 {
		t.Fatalf("Seq = %d, want 101 (monotonic across compaction)", n.Seq)
	}
}

func TestPayloadBytes(t *testing.T) {
	n := &Node{Kind: KindWrite, Extents: []Extent{{Data: []byte("abc")}, {Data: []byte("de")}}}
	if n.PayloadBytes() != 5 {
		t.Fatalf("PayloadBytes = %d", n.PayloadBytes())
	}
	d := &Node{Kind: KindDelta, Delta: &rsync.Delta{Ops: []rsync.Op{{Kind: rsync.OpData, Data: []byte("xy")}}}}
	if d.PayloadBytes() != 2 {
		t.Fatalf("delta PayloadBytes = %d", d.PayloadBytes())
	}
}

func TestKindString(t *testing.T) {
	if KindDelta.String() != "delta" || KindWrite.String() != "write" {
		t.Fatal("Kind.String broken")
	}
	if Kind(100).String() != "kind(?)" {
		t.Fatal("unknown kind string")
	}
}

func TestPendingKinds(t *testing.T) {
	q := New(delay)
	q.Append(&Node{Kind: KindUnlink, Path: "f", At: 0})
	q.Append(&Node{Kind: KindCreate, Path: "f", At: 0})
	q.Write("f", 0, []byte("x"), 0)
	q.Append(&Node{Kind: KindRename, Path: "g", Dst: "f", At: 0})
	kinds := q.PendingKinds("f")
	want := []Kind{KindUnlink, KindCreate, KindWrite, KindRename}
	if len(kinds) != len(want) {
		t.Fatalf("PendingKinds = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("PendingKinds = %v, want %v", kinds, want)
		}
	}
	if got := q.PendingKinds("unrelated"); len(got) != 0 {
		t.Fatalf("PendingKinds(unrelated) = %v", got)
	}
}

func TestReplaceWithDeltaIfBaseStable(t *testing.T) {
	// Base modified after the write node: refuse.
	q := New(delay)
	q.Write("tmp", 0, []byte("new"), 0)
	q.Append(&Node{Kind: KindRename, Path: "doc", Dst: "base", At: 0})
	d := &Node{Path: "tmp", Delta: &rsync.Delta{}, At: 0}
	if q.ReplaceWithDeltaIfBaseStable("tmp", "base", d) {
		t.Fatal("replacement allowed despite pending base modification")
	}

	// Target modified after the write node: refuse.
	q2 := New(delay)
	q2.Write("tmp", 0, []byte("new"), 0)
	q2.Pack("tmp")
	q2.Append(&Node{Kind: KindRename, Path: "x", Dst: "tmp", At: 0})
	if q2.ReplaceWithDeltaIfBaseStable("tmp", "base", d) {
		t.Fatal("replacement allowed despite pending target modification")
	}

	// Clean case: allow. A read-only mention of the base (link source)
	// does not block.
	q3 := New(delay)
	q3.Append(&Node{Kind: KindRename, Path: "f", Dst: "base", At: 0}) // before: fine
	q3.Write("tmp", 0, []byte("new"), 0)
	q3.Append(&Node{Kind: KindLink, Path: "base", Dst: "backup", At: 0})
	if !q3.ReplaceWithDeltaIfBaseStable("tmp", "base", &Node{Path: "tmp", Delta: &rsync.Delta{}}) {
		t.Fatal("replacement refused in the clean case")
	}

	// No write node at all: refuse.
	q4 := New(delay)
	if q4.ReplaceWithDeltaIfBaseStable("tmp", "base", d) {
		t.Fatal("replacement without a write node")
	}
}

func TestRemoveRecentTargetsNewest(t *testing.T) {
	q := New(delay)
	q.Append(&Node{Kind: KindCreate, Path: "f", At: 0})
	q.Append(&Node{Kind: KindCreate, Path: "f", At: time.Second})
	if !q.RemoveRecent("f", KindCreate) {
		t.Fatal("RemoveRecent failed")
	}
	// The older create must remain.
	kinds := q.PendingKinds("f")
	if len(kinds) != 1 || kinds[0] != KindCreate {
		t.Fatalf("kinds after removal = %v", kinds)
	}
	if q.RemoveRecent("f", KindUnlink) {
		t.Fatal("RemoveRecent removed a kind that does not exist")
	}
}

func TestBufferedBytesTracksReplace(t *testing.T) {
	q := New(delay)
	q.Write("f", 0, bytes.Repeat([]byte{1}, 1000), 0)
	if q.BufferedBytes() != 1000 {
		t.Fatalf("buffered = %d", q.BufferedBytes())
	}
	d := &Node{Path: "f", Delta: &rsync.Delta{Ops: []rsync.Op{{Kind: rsync.OpData, Data: []byte("xy")}}}}
	if !q.ReplaceWithDelta("f", d) {
		t.Fatal("replace failed")
	}
	if q.BufferedBytes() != 2 {
		t.Fatalf("buffered after replace = %d, want 2", q.BufferedBytes())
	}
}

func TestHasOpenAndPendingWrite(t *testing.T) {
	q := New(delay)
	if q.HasOpen("f") || q.HasPendingWrite("f") {
		t.Fatal("empty queue reports pending state")
	}
	q.Write("f", 0, []byte("x"), 0)
	if !q.HasOpen("f") || !q.HasPendingWrite("f") {
		t.Fatal("open write node not reported")
	}
	q.Pack("f")
	if q.HasOpen("f") {
		t.Fatal("packed node still open")
	}
	if !q.HasPendingWrite("f") {
		t.Fatal("packed pending write not reported")
	}
	popAll(q, time.Minute)
	if q.HasPendingWrite("f") {
		t.Fatal("uploaded write still pending")
	}
}

func TestOpenReady(t *testing.T) {
	q := New(delay)
	q.Write("old", 0, []byte("x"), 0)
	q.Write("new", 0, []byte("y"), 10*time.Second)
	ready := q.OpenReady(delay) // only "old" has aged
	if len(ready) != 1 || ready[0] != "old" {
		t.Fatalf("OpenReady = %v", ready)
	}
}

func BenchmarkWriteAttach(b *testing.B) {
	q := New(delay)
	data := bytes.Repeat([]byte{7}, 4096)
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		q.Write("f", int64(i)*4096, data, 0)
		if i%1024 == 1023 {
			q.Drain() // keep memory bounded
		}
	}
}

func BenchmarkPopReady(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		q := New(delay)
		for j := 0; j < 1000; j++ {
			q.Append(&Node{Kind: KindCreate, Path: "f", At: 0})
		}
		b.StartTimer()
		q.Drain()
	}
}

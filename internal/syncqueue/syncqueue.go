// Package syncqueue implements DeltaCFS's Sync Queue (§III-B) with the
// backindex causality mechanism (§III-E).
//
// Intercepted operations are enqueued as nodes and uploaded after a short
// delay (~3 s). Consecutive writes to the same file attach to a single
// *write node* (indexed by a path hash table) for batching; a write node is
// packed — stops accepting writes — when its file's state changes (close,
// create-over, rename, unlink, truncate) or when the uploader selects it.
//
// Two optimizations operate on non-tail nodes and therefore violate strict
// FIFO order; each records a *backindex group* — a seq range that the cloud
// must apply transactionally — exactly the paper's backindex:
//
//   - triggered delta encoding replaces a write node, in place, with a delta
//     node (group: replaced position → tail at that moment);
//   - deleting a file whose whole lifetime is still queued removes its
//     nodes (group: first removed position → tail), so the cloud can never
//     observe a later file without an earlier one.
//
// Overlapping groups are merged. When the uploader pops a node belonging to
// a group, the entire merged range ships as one atomic batch (nodes younger
// than the upload delay ship early rather than stalling the group).
package syncqueue

import (
	"time"

	"repro/internal/rsync"
	"repro/internal/version"
)

// DefaultDelay is the upload delay the paper uses for Sync Queue nodes.
const DefaultDelay = 3 * time.Second

// Kind identifies a node type.
type Kind uint8

// Node kinds. KindDelta is produced by triggered delta encoding; the rest
// mirror intercepted operations.
const (
	KindCreate Kind = iota + 1
	KindWrite
	KindTruncate
	KindRename
	KindLink
	KindUnlink
	KindMkdir
	KindRmdir
	KindDelta
)

var kindNames = [...]string{
	KindCreate: "create", KindWrite: "write", KindTruncate: "truncate",
	KindRename: "rename", KindLink: "link", KindUnlink: "unlink",
	KindMkdir: "mkdir", KindRmdir: "rmdir", KindDelta: "delta",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return "kind(?)"
}

// Extent is one contiguous run of written bytes within a write node.
type Extent struct {
	Off  int64
	Data []byte
}

// Node is one Sync Queue element.
type Node struct {
	Seq  uint64
	Kind Kind
	Path string
	// Dst is the rename/link destination.
	Dst string
	// Extents carries a write node's batched writes, in application order.
	Extents []Extent
	// Size is the truncate length.
	Size int64
	// Delta is the rsync delta of a KindDelta node, encoded against the
	// content of BasePath at the node's queue position.
	Delta    *rsync.Delta
	BasePath string
	// Base and Ver are the file's version before and after this node.
	Base, Ver version.ID
	// At is the enqueue time (first write for a write node).
	At time.Duration

	packed bool
}

// PayloadBytes returns the data bytes the node carries.
func (n *Node) PayloadBytes() int64 {
	var total int64
	for _, e := range n.Extents {
		total += int64(len(e.Data))
	}
	if n.Delta != nil {
		total += n.Delta.LiteralBytes()
	}
	return total
}

// Batch is a set of nodes released for upload. Atomic batches must be
// applied transactionally by the cloud (they cover a backindex group).
type Batch struct {
	Nodes  []*Node
	Atomic bool
}

// group is a closed seq range to be applied transactionally.
type group struct {
	start, end uint64
}

// Queue is the Sync Queue. It is not safe for concurrent use; the engine
// serializes access. (The paper builds it on a lock-free queue so the FUSE
// threads never block; internal/lockfree provides that primitive, and the
// concurrent client engine uses it for op handoff — the queue bookkeeping
// itself is single-threaded either way.)
type Queue struct {
	delay time.Duration

	nodes   []*Node // nodes[i] has Seq == baseSeq + i; nil = removed/uploaded
	baseSeq uint64
	head    int // index of the next node to upload

	open   map[string]*Node // unpacked write node per path
	groups []group          // merged, unordered

	buffered int64 // payload bytes awaiting upload
}

// New returns a queue with the given upload delay (DefaultDelay if
// non-positive).
func New(delay time.Duration) *Queue {
	if delay <= 0 {
		delay = DefaultDelay
	}
	return &Queue{delay: delay, open: make(map[string]*Node), baseSeq: 1}
}

// Len returns the number of live nodes awaiting upload.
func (q *Queue) Len() int {
	n := 0
	for i := q.head; i < len(q.nodes); i++ {
		if q.nodes[i] != nil {
			n++
		}
	}
	return n
}

// BufferedBytes returns the payload bytes awaiting upload, the signal the
// engine uses for backpressure (Table III's "Sync Queue becomes full").
func (q *Queue) BufferedBytes() int64 { return q.buffered }

func (q *Queue) tailSeq() uint64 { return q.baseSeq + uint64(len(q.nodes)) - 1 }

func (q *Queue) idx(seq uint64) int { return int(seq - q.baseSeq) }

func (q *Queue) append(n *Node) {
	n.Seq = q.baseSeq + uint64(len(q.nodes))
	q.nodes = append(q.nodes, n)
	q.buffered += n.PayloadBytes()
}

// Append enqueues a non-write node, packing any open write nodes whose file
// state it changes (Path and Dst).
func (q *Queue) Append(n *Node) {
	q.Pack(n.Path)
	if n.Dst != "" {
		q.Pack(n.Dst)
	}
	q.append(n)
}

// Write attaches a write to path's open write node, creating and appending
// one if necessary, and returns the node. Attaching to a node that is no
// longer at the tail is an out-of-FIFO-order operation and records a
// backindex group from the node to the current tail.
func (q *Queue) Write(path string, off int64, data []byte, now time.Duration) *Node {
	n, ok := q.open[path]
	if !ok {
		n = &Node{Kind: KindWrite, Path: path, At: now}
		q.append(n)
		q.open[path] = n
	} else if n.Seq != q.tailSeq() {
		q.addGroup(group{start: n.Seq, end: q.tailSeq()})
	}
	cp := append([]byte(nil), data...)
	// Coalesce with the last extent when strictly contiguous (appends).
	if k := len(n.Extents); k > 0 {
		last := &n.Extents[k-1]
		if last.Off+int64(len(last.Data)) == off {
			last.Data = append(last.Data, cp...)
			q.buffered += int64(len(cp))
			return n
		}
	}
	n.Extents = append(n.Extents, Extent{Off: off, Data: cp})
	q.buffered += int64(len(cp))
	return n
}

// Truncate enqueues a truncate node. Buffered write data beyond the new size
// in path's open write node is superseded and dropped first (this is what
// elides a journal's contents when it is truncated to zero before upload).
// The open node is then packed.
func (q *Queue) Truncate(path string, size int64, now time.Duration) *Node {
	if n, ok := q.open[path]; ok {
		q.trimExtents(n, size)
	}
	t := &Node{Kind: KindTruncate, Path: path, Size: size, At: now}
	q.Append(t)
	return t
}

// trimExtents drops buffered bytes at or beyond size.
func (q *Queue) trimExtents(n *Node, size int64) {
	kept := n.Extents[:0]
	for _, e := range n.Extents {
		switch {
		case e.Off >= size:
			q.buffered -= int64(len(e.Data))
		case e.Off+int64(len(e.Data)) > size:
			cut := e.Off + int64(len(e.Data)) - size
			e.Data = e.Data[:size-e.Off]
			q.buffered -= cut
			kept = append(kept, e)
		default:
			kept = append(kept, e)
		}
	}
	n.Extents = kept
}

// Pack marks path's open write node immutable; future writes start a new
// node. Packing a path without an open node is a no-op.
func (q *Queue) Pack(path string) {
	if n, ok := q.open[path]; ok {
		n.packed = true
		delete(q.open, path)
	}
}

// ReplaceWithDelta substitutes path's most recent not-yet-uploaded write
// node with a delta node, in place, and records a backindex group covering
// the replaced position through the current tail. It returns false if no
// replaceable write node exists (the engine then just appends the delta).
func (q *Queue) ReplaceWithDelta(path string, d *Node) bool {
	n := q.LatestPendingWrite(path)
	if n == nil {
		return false
	}
	return q.ReplaceWithDeltaAt(n, d, q.tailSeq())
}

// LatestPendingWrite returns path's most recent not-yet-uploaded write node,
// or nil. The engine pins this node when it defers a delta encode, so the
// later substitution lands on exactly the node an immediate one would have.
func (q *Queue) LatestPendingWrite(path string) *Node {
	for i := len(q.nodes) - 1; i >= q.head; i-- {
		n := q.nodes[i]
		if n != nil && n.Kind == KindWrite && n.Path == path {
			return n
		}
	}
	return nil
}

// TailSeq returns the seq of the newest queued node (baseSeq-1 when the queue
// has never held a node). Deferred delta commits pin it at decision time so
// their backindex group covers the same range an immediate replacement's
// would, not whatever the tail has grown to by commit time.
func (q *Queue) TailSeq() uint64 { return q.tailSeq() }

// ReplaceWithDeltaAt substitutes the pinned write node n with delta node d,
// recording a backindex group from n's position through tail. It returns
// false if n is no longer queued at its position (uploaded or removed since
// it was pinned).
func (q *Queue) ReplaceWithDeltaAt(n, d *Node, tail uint64) bool {
	if n.Seq < q.baseSeq {
		return false
	}
	i := q.idx(n.Seq)
	if i < q.head || i >= len(q.nodes) || q.nodes[i] != n {
		return false
	}
	q.buffered -= n.PayloadBytes()
	if q.open[n.Path] == n {
		delete(q.open, n.Path)
	}
	d.Seq = n.Seq
	d.Kind = KindDelta
	// The delta takes the replaced node's position in the version chain: the
	// server's file version at this position is the write node's base, not
	// whatever the client map says now.
	d.Base = n.Base
	q.nodes[i] = d
	q.buffered += d.PayloadBytes()
	if n.Seq <= tail {
		q.addGroup(group{start: n.Seq, end: tail})
	}
	return true
}

// FillDelta installs the finished delta into a node that was reserved in the
// queue with a nil Delta (the engine substitutes the node synchronously and
// encodes off-thread), fixing up buffered-byte accounting. A node that has
// already left the queue is still filled, but the accounting is untouched.
func (q *Queue) FillDelta(n *Node, d *rsync.Delta) {
	live := false
	if n.Seq >= q.baseSeq {
		if i := q.idx(n.Seq); i >= q.head && i < len(q.nodes) && q.nodes[i] == n {
			live = true
		}
	}
	if live {
		q.buffered -= n.PayloadBytes()
	}
	n.Delta = d
	if live {
		q.buffered += n.PayloadBytes()
	}
}

// DropPending removes all queued trace of path — valid only when the file's
// entire lifetime is inside the queue: its earliest node is a create and no
// rename/link has since targeted the path. It returns whether the drop
// happened; if it did, the caller must not enqueue an unlink node (the cloud
// never saw the file). A backindex group covers the removed range so later
// files cannot be observed without earlier ones.
func (q *Queue) DropPending(path string) bool {
	first := -1
	var toRemove []int
	for i := q.head; i < len(q.nodes); i++ {
		n := q.nodes[i]
		if n == nil {
			continue
		}
		if n.Dst == path && (n.Kind == KindRename || n.Kind == KindLink) {
			// The queued name was produced by a rename/link; its history
			// is not self-contained. Bail out.
			return false
		}
		if n.Path != path {
			continue
		}
		switch n.Kind {
		case KindCreate, KindWrite, KindTruncate, KindDelta:
			if first == -1 {
				if n.Kind != KindCreate {
					return false // earliest node is not the file's birth
				}
				first = i
			}
			toRemove = append(toRemove, i)
		case KindRename:
			// The file is renamed away later in the queue; dropping its
			// birth would break that rename. Bail out.
			return false
		}
	}
	if first == -1 {
		return false
	}
	for _, i := range toRemove {
		n := q.nodes[i]
		q.buffered -= n.PayloadBytes()
		if q.open[path] == n {
			delete(q.open, path)
		}
		q.nodes[i] = nil
	}
	if q.baseSeq+uint64(first) <= q.tailSeq() {
		q.addGroup(group{start: q.baseSeq + uint64(first), end: q.tailSeq()})
	}
	return true
}

// addGroup inserts g, merging transitively with every overlapping or
// adjacent-by-overlap group (paper: "If there is interleaving between two
// backindexes, we merge them").
func (q *Queue) addGroup(g group) {
	kept := q.groups[:0]
	for _, h := range q.groups {
		if h.start <= g.end && g.start <= h.end {
			if h.start < g.start {
				g.start = h.start
			}
			if h.end > g.end {
				g.end = h.end
			}
		} else {
			kept = append(kept, h)
		}
	}
	q.groups = append(kept, g)
}

// groupFor expands seq range [lo, hi] to the transitive closure over all
// groups, removing consumed groups from the queue. Returns the range and
// whether any group was involved.
func (q *Queue) groupFor(lo, hi uint64) (uint64, uint64, bool) {
	atomic := false
	for changed := true; changed; {
		changed = false
		kept := q.groups[:0]
		for _, g := range q.groups {
			if g.start <= hi && lo <= g.end {
				if g.start < lo {
					lo = g.start
				}
				if g.end > hi {
					hi = g.end
				}
				atomic = true
				changed = true
			} else {
				kept = append(kept, g)
			}
		}
		q.groups = kept
	}
	return lo, hi, atomic
}

// PopReady releases every batch whose head node has aged past the upload
// delay at logical time now. Nodes pulled into an atomic group ship early
// with the group. Open write nodes are packed as they ship.
func (q *Queue) PopReady(now time.Duration) []Batch {
	var out []Batch
	for {
		// Skip tombstones.
		for q.head < len(q.nodes) && q.nodes[q.head] == nil {
			q.head++
		}
		if q.head >= len(q.nodes) {
			break
		}
		h := q.nodes[q.head]
		if h.At+q.delay > now {
			break
		}
		lo := h.Seq
		hi := h.Seq
		lo, hi, atomic := q.groupFor(lo, hi)
		if lo < q.baseSeq+uint64(q.head) {
			lo = q.baseSeq + uint64(q.head)
		}
		var nodes []*Node
		for i := q.idx(lo); i <= q.idx(hi) && i < len(q.nodes); i++ {
			n := q.nodes[i]
			if n == nil {
				continue
			}
			if !n.packed && n.Kind == KindWrite {
				q.Pack(n.Path)
			}
			q.buffered -= n.PayloadBytes()
			nodes = append(nodes, n)
			q.nodes[i] = nil
		}
		if q.idx(hi)+1 > q.head {
			q.head = q.idx(hi) + 1
		}
		if len(nodes) > 0 {
			out = append(out, Batch{Nodes: nodes, Atomic: atomic && len(nodes) > 1})
		}
	}
	q.compact()
	return out
}

// Drain releases everything regardless of age.
func (q *Queue) Drain() []Batch {
	return q.PopReady(1<<62 - 1)
}

// HasOpen reports whether path has an unpacked write node.
func (q *Queue) HasOpen(path string) bool {
	_, ok := q.open[path]
	return ok
}

// HasPendingWrite reports whether any not-yet-uploaded write node exists for
// path (open or packed).
func (q *Queue) HasPendingWrite(path string) bool {
	for i := q.head; i < len(q.nodes); i++ {
		n := q.nodes[i]
		if n != nil && n.Kind == KindWrite && n.Path == path {
			return true
		}
	}
	return false
}

// OpenReady returns the paths of open write nodes that have aged past the
// upload delay at time now — the engine runs its pack-time delta decision on
// these before calling PopReady, so never-closed files (a long-lived SQLite
// handle) still get the in-place delta optimization considered.
func (q *Queue) OpenReady(now time.Duration) []string {
	var out []string
	for p, n := range q.open {
		if n.At+q.delay <= now {
			out = append(out, p)
		}
	}
	return out
}

// OnlyWriteNodePending reports whether path's pending queue entries are
// exactly one write node — the precondition for the in-place delta
// optimization (a delta against the file's previous synced version encodes
// the file's final state; interleaved truncate/create nodes would reorder
// against it).
func (q *Queue) OnlyWriteNodePending(path string) bool {
	count := 0
	for i := q.head; i < len(q.nodes); i++ {
		n := q.nodes[i]
		if n == nil || (n.Path != path && n.Dst != path) {
			continue
		}
		if n.Kind != KindWrite {
			return false
		}
		count++
	}
	return count == 1
}

// modifiesName reports whether applying n changes (or removes) the content
// bound to name on the cloud.
func modifiesName(n *Node, name string) bool {
	if n.Path == name {
		switch n.Kind {
		case KindCreate, KindWrite, KindTruncate, KindDelta, KindRename, KindUnlink:
			return true
		}
	}
	if n.Dst == name && (n.Kind == KindRename || n.Kind == KindLink) {
		return true
	}
	return false
}

// PendingKinds returns the kinds of not-yet-uploaded nodes whose Path or Dst
// equals path, in queue order.
func (q *Queue) PendingKinds(path string) []Kind {
	var out []Kind
	for i := q.head; i < len(q.nodes); i++ {
		n := q.nodes[i]
		if n != nil && (n.Path == path || n.Dst == path) {
			out = append(out, n.Kind)
		}
	}
	return out
}

// ReplaceWithDeltaIfBaseStable replaces path's most recent pending write
// node with d only when no pending node newer than that write node modifies
// basePath: an in-position delta is applied by the cloud at the replaced
// node's position, so its base must hold the same content there that the
// client read when encoding — a pending rename/write onto the base after
// that position would break the invariant.
func (q *Queue) ReplaceWithDeltaIfBaseStable(path, basePath string, d *Node) bool {
	idx := -1
	for i := len(q.nodes) - 1; i >= q.head; i-- {
		n := q.nodes[i]
		if n != nil && n.Kind == KindWrite && n.Path == path {
			idx = i
			break
		}
	}
	if idx == -1 {
		return false
	}
	for i := idx + 1; i < len(q.nodes); i++ {
		n := q.nodes[i]
		if n == nil {
			continue
		}
		// Neither the delta's base nor its target may be touched by a
		// pending node newer than the replaced position: the delta encodes
		// the target's content as read NOW, so a later pending rename onto
		// the target (or base) would be overwritten out of order.
		if modifiesName(n, basePath) || modifiesName(n, path) {
			return false
		}
	}
	return q.ReplaceWithDelta(path, d)
}

// WritePayload returns the payload size of path's most recent pending write
// node (0 if none) — what the in-place delta optimization compares a
// candidate delta against.
func (q *Queue) WritePayload(path string) int64 {
	for i := len(q.nodes) - 1; i >= q.head; i-- {
		n := q.nodes[i]
		if n != nil && n.Kind == KindWrite && n.Path == path {
			return n.PayloadBytes()
		}
	}
	return 0
}

// RemoveRecent removes the most recent not-yet-uploaded node of the given
// kind for path (recording a backindex group over the removed position
// through the tail). It returns whether a node was removed. Used when a
// triggered delta subsumes an unlink/create pair (the "delete then rewrite"
// update pattern).
func (q *Queue) RemoveRecent(path string, kind Kind) bool {
	for i := len(q.nodes) - 1; i >= q.head; i-- {
		n := q.nodes[i]
		if n == nil || n.Kind != kind || n.Path != path {
			continue
		}
		q.buffered -= n.PayloadBytes()
		if q.open[path] == n {
			delete(q.open, path)
		}
		q.nodes[i] = nil
		if n.Seq <= q.tailSeq() {
			q.addGroup(group{start: n.Seq, end: q.tailSeq()})
		}
		return true
	}
	return false
}

// compact reclaims fully-consumed prefix storage.
func (q *Queue) compact() {
	if q.head == 0 {
		return
	}
	q.baseSeq += uint64(q.head)
	q.nodes = append(q.nodes[:0], q.nodes[q.head:]...)
	q.head = 0
}

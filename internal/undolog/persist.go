package undolog

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"path/filepath"

	"repro/internal/storagefault"
)

// Snapshot persistence for the undo log. The in-memory log is cheap to
// rebuild between sync points, but a client that crashes mid-update loses
// the pre-update image it needs to reconstruct the old version for delta
// encoding — it would fall back to shipping full content. SaveTo captures
// the log with the write-fsync-rename-dirsync discipline every other
// persistence site uses, and a CRC over the payload so a torn snapshot is
// detected and discarded (stale-but-consistent beats fresh-but-corrupt:
// LoadFrom of a bad snapshot reports ErrCorrupt and leaves the log empty).

// ErrCorrupt is returned by LoadFrom when the snapshot fails its checksum —
// a torn or bit-flipped file. The caller should discard it and resync.
var ErrCorrupt = errors.New("undolog: corrupt snapshot")

// snapSegment and snapFile mirror segment/FileLog for gob.
type snapSegment struct {
	Off  int64
	Data []byte
}

type snapFile struct {
	Path           string
	OldSize        int64
	PreservedBytes int64
	Segments       []snapSegment
}

const snapMagic = "ULOG1\n"

// SaveTo writes the log atomically to path on fsys (nil means the host file
// system): temp file, fsync, rename over path, fsync the parent directory.
func (l *Log) SaveTo(fsys storagefault.FS, path string) error {
	if fsys == nil {
		fsys = storagefault.OS
	}
	var files []snapFile
	for p, f := range l.files {
		sf := snapFile{Path: p, OldSize: f.oldSize, PreservedBytes: f.preservedBytes}
		for _, s := range f.segments {
			sf.Segments = append(sf.Segments, snapSegment{Off: s.off, Data: s.data})
		}
		files = append(files, sf)
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(files); err != nil {
		return fmt.Errorf("undolog: save: %w", err)
	}
	var out bytes.Buffer
	out.WriteString(snapMagic)
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[:4], crc32.ChecksumIEEE(payload.Bytes()))
	binary.BigEndian.PutUint32(hdr[4:], uint32(payload.Len()))
	out.Write(hdr[:])
	out.Write(payload.Bytes())

	tmp := path + ".tmp"
	f, err := storagefault.Create(fsys, tmp)
	if err != nil {
		return fmt.Errorf("undolog: save: %w", err)
	}
	if _, err := f.Write(out.Bytes()); err != nil {
		f.Close()
		return fmt.Errorf("undolog: save: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("undolog: save: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("undolog: save: %w", err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		return fmt.Errorf("undolog: save: %w", err)
	}
	if err := fsys.SyncDir(filepath.Dir(path)); err != nil {
		return fmt.Errorf("undolog: save: %w", err)
	}
	return nil
}

// LoadFrom replaces the log's contents with the snapshot at path on fsys
// (nil means the host file system). A missing file is not an error (fresh
// log, returns false). A snapshot that fails its CRC returns ErrCorrupt
// with the log left empty.
func (l *Log) LoadFrom(fsys storagefault.FS, path string) (bool, error) {
	if fsys == nil {
		fsys = storagefault.OS
	}
	raw, err := fsys.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("undolog: load: %w", err)
	}
	l.files = make(map[string]*FileLog)
	if len(raw) < len(snapMagic)+8 || string(raw[:len(snapMagic)]) != snapMagic {
		return false, ErrCorrupt
	}
	body := raw[len(snapMagic):]
	sum := binary.BigEndian.Uint32(body[:4])
	n := binary.BigEndian.Uint32(body[4:8])
	payload := body[8:]
	if uint32(len(payload)) != n || crc32.ChecksumIEEE(payload) != sum {
		return false, ErrCorrupt
	}
	var files []snapFile
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&files); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return false, ErrCorrupt
		}
		return false, fmt.Errorf("undolog: load: %w", err)
	}
	for _, sf := range files {
		f := &FileLog{oldSize: sf.OldSize, preservedBytes: sf.PreservedBytes}
		for _, s := range sf.Segments {
			f.segments = append(f.segments, segment{off: s.Off, data: s.Data})
		}
		l.files[sf.Path] = f
	}
	return true, nil
}

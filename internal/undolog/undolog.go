// Package undolog implements the paper's physical undo logging (§III-A):
// before an in-place write overwrites existing data, the old bytes are
// copied out, so the file's previous synced version can be reconstructed
// locally. DeltaCFS uses this when an in-place update ends up changing a
// large portion of a file (e.g. more than half), in which case running delta
// encoding over the reconstructed old version compresses the update better
// than shipping the raw intercepted writes.
//
// The log is in-memory: the paper notes the copied data are "usually already
// cached in memory, no disk IO is required". A log is kept per file between
// sync points and reset once the file's pending update has been uploaded.
package undolog

import (
	"sort"

	"repro/internal/metrics"
)

// segment is a run of preserved old bytes.
type segment struct {
	off  int64
	data []byte
}

func (s segment) end() int64 { return s.off + int64(len(s.data)) }

// FileLog preserves the pre-update image of one file.
type FileLog struct {
	// oldSize is the file length at the last sync point.
	oldSize int64
	// segments hold old bytes that have since been overwritten (sorted,
	// non-overlapping).
	segments []segment
	// preservedBytes counts logged bytes (for the >50% trigger heuristic).
	preservedBytes int64
}

// Log tracks per-file undo state. Not safe for concurrent use; the engine
// serializes operations.
type Log struct {
	files map[string]*FileLog
	meter *metrics.CPUMeter
}

// New returns an empty undo log charging CPU work to meter (may be nil).
func New(meter *metrics.CPUMeter) *Log {
	return &Log{files: make(map[string]*FileLog), meter: meter}
}

// Track begins (or returns) the log for path, noting the file's size at the
// current sync point.
func (l *Log) Track(path string, size int64) *FileLog {
	if f, ok := l.files[path]; ok {
		return f
	}
	f := &FileLog{oldSize: size}
	l.files[path] = f
	return f
}

// Tracking reports whether path has an active log.
func (l *Log) Tracking(path string) bool {
	_, ok := l.files[path]
	return ok
}

// BeforeWrite must be called before a write of n bytes at off is applied.
// read returns the current content of [off, off+n) clipped to the current
// file size; it is only invoked for the sub-ranges that still need
// preserving (not yet logged, and within the old file size).
func (l *Log) BeforeWrite(path string, off, n int64, read func(off, n int64) ([]byte, error)) error {
	f, ok := l.files[path]
	if !ok {
		return nil
	}
	// Clip to the old image: bytes beyond oldSize were not part of the
	// previous version, so overwriting them needs no preservation.
	end := off + n
	if end > f.oldSize {
		end = f.oldSize
	}
	if off >= end {
		return nil
	}
	for _, gap := range f.gaps(off, end) {
		data, err := read(gap.off, gap.end()-gap.off)
		if err != nil {
			return err
		}
		cp := append([]byte(nil), data...)
		l.meter.Copy(int64(len(cp)))
		f.insert(segment{off: gap.off, data: cp})
		f.preservedBytes += int64(len(cp))
	}
	return nil
}

// BeforeTruncate must be called before the file is truncated to newSize,
// preserving the bytes about to be cut off.
func (l *Log) BeforeTruncate(path string, newSize int64, read func(off, n int64) ([]byte, error)) error {
	f, ok := l.files[path]
	if !ok {
		return nil
	}
	if newSize >= f.oldSize {
		return nil
	}
	return l.BeforeWrite(path, newSize, f.oldSize-newSize, read)
}

// gaps returns the sub-ranges of [off, end) not covered by existing
// segments; these are exactly the ranges BeforeWrite still needs to
// preserve. Each returned segment's data length encodes the gap length.
func (f *FileLog) gaps(off, end int64) []segment {
	var out []segment
	cur := off
	for _, s := range f.segments {
		if s.end() <= cur || s.off >= end {
			continue
		}
		if s.off > cur {
			out = append(out, segment{off: cur, data: make([]byte, s.off-cur)})
		}
		if s.end() > cur {
			cur = s.end()
		}
	}
	if cur < end {
		out = append(out, segment{off: cur, data: make([]byte, end-cur)})
	}
	return out
}

// insert adds a segment known not to overlap existing ones, keeping order.
func (f *FileLog) insert(s segment) {
	i := sort.Search(len(f.segments), func(i int) bool {
		return f.segments[i].off >= s.off
	})
	f.segments = append(f.segments, segment{})
	copy(f.segments[i+1:], f.segments[i:])
	f.segments[i] = s
}

// PreservedBytes returns how many old bytes have been logged for path.
func (l *Log) PreservedBytes(path string) int64 {
	if f, ok := l.files[path]; ok {
		return f.preservedBytes
	}
	return 0
}

// OldSize returns the file size recorded at the sync point, and whether the
// path is tracked.
func (l *Log) OldSize(path string) (int64, bool) {
	if f, ok := l.files[path]; ok {
		return f.oldSize, true
	}
	return 0, false
}

// OldVersion reconstructs the file's previous synced version from its
// current content plus the preserved segments.
func (l *Log) OldVersion(path string, current []byte) ([]byte, bool) {
	f, ok := l.files[path]
	if !ok {
		return nil, false
	}
	old := make([]byte, f.oldSize)
	n := copy(old, current)
	for ; int64(n) < f.oldSize; n++ {
		old[n] = 0
	}
	for _, s := range f.segments {
		copy(old[s.off:], s.data)
	}
	l.meter.Copy(f.oldSize)
	return old, true
}

// Reset drops the log for path (after its pending update is uploaded).
func (l *Log) Reset(path string) { delete(l.files, path) }

// Rename moves the log from oldPath to newPath, dropping any log previously
// at newPath.
func (l *Log) Rename(oldPath, newPath string) {
	if f, ok := l.files[oldPath]; ok {
		delete(l.files, oldPath)
		l.files[newPath] = f
	} else {
		delete(l.files, newPath)
	}
}

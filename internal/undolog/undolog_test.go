package undolog

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// memReader adapts a byte slice to the read callback.
func memReader(content []byte) func(off, n int64) ([]byte, error) {
	return func(off, n int64) ([]byte, error) {
		end := off + n
		if end > int64(len(content)) {
			end = int64(len(content))
		}
		if off >= end {
			return nil, nil
		}
		return content[off:end], nil
	}
}

func TestUntrackedIsNoOp(t *testing.T) {
	l := New(nil)
	if err := l.BeforeWrite("f", 0, 10, memReader([]byte("0123456789"))); err != nil {
		t.Fatal(err)
	}
	if _, ok := l.OldVersion("f", nil); ok {
		t.Fatal("OldVersion returned data for untracked file")
	}
	if l.PreservedBytes("f") != 0 {
		t.Fatal("untracked file preserved bytes")
	}
}

func TestReconstructAfterOverwrites(t *testing.T) {
	old := []byte("the quick brown fox jumps over the lazy dog")
	cur := append([]byte(nil), old...)

	l := New(nil)
	l.Track("f", int64(len(old)))

	apply := func(off int64, data []byte) {
		if err := l.BeforeWrite("f", off, int64(len(data)), memReader(cur)); err != nil {
			t.Fatal(err)
		}
		copy(cur[off:], data)
	}
	apply(4, []byte("QUICK"))
	apply(16, []byte("FOX"))
	apply(4, []byte("SLICK")) // second write to same range: old bytes already logged

	got, ok := l.OldVersion("f", cur)
	if !ok || !bytes.Equal(got, old) {
		t.Fatalf("OldVersion = %q, want %q", got, old)
	}
	// Preserved bytes must count each old byte once (5 + 3, not 13).
	if l.PreservedBytes("f") != 8 {
		t.Fatalf("PreservedBytes = %d, want 8", l.PreservedBytes("f"))
	}
}

func TestOverlappingWritesPreserveOnce(t *testing.T) {
	old := []byte("abcdefghij")
	cur := append([]byte(nil), old...)
	l := New(nil)
	l.Track("f", int64(len(old)))

	apply := func(off int64, data []byte) {
		if err := l.BeforeWrite("f", off, int64(len(data)), memReader(cur)); err != nil {
			t.Fatal(err)
		}
		copy(cur[off:], data)
	}
	apply(2, []byte("XXX"))    // logs [2,5)
	apply(0, []byte("YYYYYY")) // logs [0,2) and [5,6) — gap-aware
	got, ok := l.OldVersion("f", cur)
	if !ok || !bytes.Equal(got, old) {
		t.Fatalf("OldVersion = %q, want %q", got, old)
	}
	if l.PreservedBytes("f") != 6 {
		t.Fatalf("PreservedBytes = %d, want 6", l.PreservedBytes("f"))
	}
}

func TestAppendsNeedNoPreservation(t *testing.T) {
	old := []byte("base")
	cur := append([]byte(nil), old...)
	l := New(nil)
	l.Track("f", int64(len(old)))

	// Write entirely beyond the old size.
	if err := l.BeforeWrite("f", 4, 6, memReader(cur)); err != nil {
		t.Fatal(err)
	}
	cur = append(cur, []byte("append")...)
	if l.PreservedBytes("f") != 0 {
		t.Fatalf("append preserved %d bytes, want 0", l.PreservedBytes("f"))
	}
	got, ok := l.OldVersion("f", cur)
	if !ok || !bytes.Equal(got, old) {
		t.Fatalf("OldVersion = %q, want %q", got, old)
	}
}

func TestShrinkingFileReconstructs(t *testing.T) {
	old := []byte("0123456789")
	cur := append([]byte(nil), old...)
	l := New(nil)
	l.Track("f", int64(len(old)))

	if err := l.BeforeTruncate("f", 4, memReader(cur)); err != nil {
		t.Fatal(err)
	}
	cur = cur[:4]
	got, ok := l.OldVersion("f", cur)
	if !ok || !bytes.Equal(got, old) {
		t.Fatalf("OldVersion after truncate = %q, want %q", got, old)
	}
}

func TestTruncateGrowNeedsNothing(t *testing.T) {
	l := New(nil)
	l.Track("f", 4)
	if err := l.BeforeTruncate("f", 100, memReader([]byte("abcd"))); err != nil {
		t.Fatal(err)
	}
	if l.PreservedBytes("f") != 0 {
		t.Fatal("growing truncate preserved bytes")
	}
}

func TestResetAndRename(t *testing.T) {
	l := New(nil)
	l.Track("a", 3)
	l.BeforeWrite("a", 0, 3, memReader([]byte("old")))
	l.Rename("a", "b")
	if l.Tracking("a") || !l.Tracking("b") {
		t.Fatal("Rename did not move the log")
	}
	got, ok := l.OldVersion("b", []byte("new"))
	if !ok || !bytes.Equal(got, []byte("old")) {
		t.Fatalf("OldVersion after rename = %q", got)
	}
	l.Reset("b")
	if l.Tracking("b") {
		t.Fatal("Reset did not drop the log")
	}
}

func TestRenameOverTracked(t *testing.T) {
	l := New(nil)
	l.Track("a", 1)
	l.Track("b", 2)
	l.Rename("a", "b")
	if size, _ := l.OldSize("b"); size != 1 {
		t.Fatalf("OldSize(b) = %d, want 1 (a's log)", size)
	}
	// Renaming an untracked name over a tracked one clears the target.
	l.Rename("ghost", "b")
	if l.Tracking("b") {
		t.Fatal("stale log survived rename from untracked source")
	}
}

// Property: for any sequence of writes and truncates against a tracked file,
// OldVersion always reconstructs the original content exactly.
func TestReconstructionProperty(t *testing.T) {
	type wr struct {
		Off   uint16
		Len   uint8
		Trunc bool
	}
	f := func(seed int64, origLen uint16, ops []wr) bool {
		rng := rand.New(rand.NewSource(seed))
		old := make([]byte, int(origLen))
		rng.Read(old)
		cur := append([]byte(nil), old...)

		l := New(nil)
		l.Track("f", int64(len(old)))
		for _, o := range ops {
			if o.Trunc {
				newSize := int64(o.Off) % (int64(len(cur)) + 64)
				if err := l.BeforeTruncate("f", newSize, memReader(cur)); err != nil {
					return false
				}
				if newSize <= int64(len(cur)) {
					cur = cur[:newSize]
				} else {
					grown := make([]byte, newSize)
					copy(grown, cur)
					cur = grown
				}
				continue
			}
			off := int64(o.Off) % (int64(len(cur)) + 32)
			n := int64(o.Len)
			if err := l.BeforeWrite("f", off, n, memReader(cur)); err != nil {
				return false
			}
			data := make([]byte, n)
			rng.Read(data)
			if off+n > int64(len(cur)) {
				grown := make([]byte, off+n)
				copy(grown, cur)
				cur = grown
			}
			copy(cur[off:], data)
		}
		got, ok := l.OldVersion("f", cur)
		return ok && bytes.Equal(got, old)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Package nfs implements the NFSv4-like baseline [37]: every file operation
// becomes an RPC to the server, moderated by the kernel client's write-back
// page cache. The behaviours the paper measures are modelled explicitly:
//
//   - write RPCs: all written bytes eventually cross the wire (no delta
//     encoding of any kind), buffered briefly by the write-back cache and
//     flushed on close (close-to-open consistency), fsync, or age;
//   - the write-back cache absorbs data that dies young: a journal written
//     and truncated to zero before flush never reaches the server;
//   - fetch-before-write: a partial-block write to an uncached page must
//     first read that page from the server [41] — the download traffic NFS
//     shows on the WeChat trace (Fig 8(d));
//   - stale-handle refetch: renaming a new file over a cached one changes
//     the file handle, so the client's cached content is invalid and the
//     application's next open re-reads the file from the server [40] — why
//     NFS downloads almost as much as it uploads on the Word trace
//     (Fig 8(c)).
package nfs

import (
	"fmt"
	"time"

	"repro/internal/metrics"
	"repro/internal/version"
	"repro/internal/vfs"
	"repro/internal/wire"
)

// PageSize is the client page-cache granularity.
const PageSize = 4096

// DefaultFlushDelay is how long dirty pages may age before write-back.
const DefaultFlushDelay = 5 * time.Second

// Config configures the engine.
type Config struct {
	Backing    vfs.FS
	Endpoint   wire.Endpoint
	Meter      *metrics.CPUMeter
	FlushDelay time.Duration
}

// pending is one buffered operation awaiting write-back, in issue order.
type pending struct {
	node *wire.Node
	at   time.Duration
	open bool // write node still accepting extents
}

// fileCache is the client's view of one file's pages.
type fileCache struct {
	pages  map[int64]bool // block index -> cached
	size   int64          // client's view of the file size
	whole  bool           // full content cached (after a fetch)
	synced bool           // server has this path
}

// Engine is the NFS-like client.
type Engine struct {
	cfg   Config
	obs   *vfs.ObserverFS
	ep    wire.Endpoint
	meter *metrics.CPUMeter

	queue []*pending
	open  map[string]*pending // open write node per path
	cache map[string]*fileCache
	// knownNames is the application-visible working set: names that have
	// existed on this mount. Renaming a fresh file over a known name swaps
	// the file handle beneath the name, which invalidates cached content
	// and forces the application's next open to re-read from the server
	// [40] (the Word-trace download signature).
	knownNames map[string]bool
	counter    *version.Counter
	vers       *version.Map

	now     time.Duration
	pushErr error
}

// New builds the engine and registers with the server.
func New(cfg Config) (*Engine, error) {
	if cfg.FlushDelay <= 0 {
		cfg.FlushDelay = DefaultFlushDelay
	}
	id, err := cfg.Endpoint.Register()
	if err != nil {
		return nil, fmt.Errorf("nfs: register: %w", err)
	}
	e := &Engine{
		cfg:        cfg,
		obs:        vfs.NewObserverFS(cfg.Backing),
		ep:         cfg.Endpoint,
		meter:      cfg.Meter,
		open:       make(map[string]*pending),
		cache:      make(map[string]*fileCache),
		knownNames: make(map[string]bool),
		counter:    version.NewCounter(id),
		vers:       version.NewMap(),
	}
	e.obs.Subscribe(vfs.ObserverFunc(e.onOp))
	return e, nil
}

// FS implements trace.Target.
func (e *Engine) FS() vfs.FS { return e.obs }

// Prime records the seed state as mounted server state: files are known to
// the server and their attributes cached, but no pages are cached yet (a
// fresh mount).
func (e *Engine) Prime() error {
	paths, err := e.cfg.Backing.List("")
	if err != nil {
		return err
	}
	for _, p := range paths {
		st, err := e.cfg.Backing.Stat(p)
		if err != nil {
			return err
		}
		e.cache[p] = &fileCache{pages: make(map[int64]bool), size: st.Size, synced: true}
		e.knownNames[p] = true
		if v, ok, err := e.ep.Head(p); err == nil && ok {
			e.vers.Set(p, v)
		}
	}
	return nil
}

func (e *Engine) fc(path string) *fileCache {
	c, ok := e.cache[path]
	if !ok {
		c = &fileCache{pages: make(map[int64]bool)}
		e.cache[path] = c
	}
	return c
}

func (e *Engine) onOp(op vfs.Op) {
	switch op.Kind {
	case vfs.OpCreate:
		// O_TRUNC: buffered dirty pages for the old content die in cache.
		if n, ok := e.open[op.Path]; ok {
			n.node.Extents = nil
			n.open = false
			delete(e.open, op.Path)
		}
		c := e.fc(op.Path)
		c.size = 0
		c.whole = true // empty file: fully "cached"
		c.pages = make(map[int64]bool)
		node := &wire.Node{Kind: wire.NCreate, Path: op.Path}
		e.stamp(node, op.Path)
		e.queue = append(e.queue, &pending{node: node, at: e.now})
		c.synced = true
		e.knownNames[op.Path] = true

	case vfs.OpWrite:
		e.write(op.Path, op.Off, op.Data)

	case vfs.OpTruncate:
		e.truncate(op.Path, op.Size)

	case vfs.OpRename:
		// Metadata ops are synchronous: flush first, then RPC.
		e.Flush()
		src := e.fc(op.Path)
		staleName := e.knownNames[op.Dst]
		n := &wire.Node{Kind: wire.NRename, Path: op.Path, Dst: op.Dst,
			Base: e.vers.Get(op.Path), Ver: e.counter.Next()}
		e.vers.Rename(op.Path, op.Dst)
		e.vers.Set(op.Dst, n.Ver)
		e.push(&wire.Batch{Nodes: []*wire.Node{n}})
		src.synced = true
		e.cache[op.Dst] = src
		delete(e.cache, op.Path)
		e.knownNames[op.Dst] = true
		if staleName {
			// Stale filehandle: the name's cached content is invalid; the
			// application's re-open pulls the new content from the server
			// [40].
			e.refetch(op.Dst)
		}

	case vfs.OpLink:
		e.Flush()
		n := &wire.Node{Kind: wire.NLink, Path: op.Path, Dst: op.Dst,
			Base: e.vers.Get(op.Path), Ver: e.counter.Next()}
		e.vers.Set(op.Dst, n.Ver)
		e.push(&wire.Batch{Nodes: []*wire.Node{n}})
		st, err := e.cfg.Backing.Stat(op.Dst)
		if err == nil {
			e.cache[op.Dst] = &fileCache{pages: make(map[int64]bool), size: st.Size, synced: true}
		}

	case vfs.OpUnlink:
		e.dropPending(op.Path)
		n := &wire.Node{Kind: wire.NUnlink, Path: op.Path, Base: e.vers.Get(op.Path)}
		e.vers.Delete(op.Path)
		e.push(&wire.Batch{Nodes: []*wire.Node{n}})
		delete(e.cache, op.Path)

	case vfs.OpMkdir:
		e.push(&wire.Batch{Nodes: []*wire.Node{{Kind: wire.NMkdir, Path: op.Path}}})
	case vfs.OpRmdir:
		e.push(&wire.Batch{Nodes: []*wire.Node{{Kind: wire.NRmdir, Path: op.Path}}})

	case vfs.OpClose:
		// Close-to-open consistency: flush on close.
		e.Flush()
	case vfs.OpFsync:
		e.Flush()
	}
}

// write buffers the payload in the write-back cache, fetching uncached
// partial pages first.
func (e *Engine) write(path string, off int64, data []byte) {
	c := e.fc(path)
	end := off + int64(len(data))

	// Fetch-before-write for partial first/last pages inside the known
	// file size, when not already cached.
	if c.synced && !c.whole {
		for _, edge := range []struct {
			partial bool
			page    int64
		}{
			{off%PageSize != 0, off / PageSize},
			{end%PageSize != 0, (end - 1) / PageSize},
		} {
			if !edge.partial || edge.page*PageSize >= c.size || c.pages[edge.page] {
				continue
			}
			if data, err := e.ep.FetchRange(path, edge.page*PageSize, PageSize); err == nil {
				e.meter.Copy(int64(len(data)))
				c.pages[edge.page] = true
			}
		}
	}
	for p := off / PageSize; p <= (end-1)/PageSize; p++ {
		c.pages[p] = true
	}
	if end > c.size {
		c.size = end
	}

	n, ok := e.open[path]
	if !ok {
		node := &wire.Node{Kind: wire.NWrite, Path: path}
		e.stamp(node, path)
		n = &pending{node: node, at: e.now, open: true}
		e.queue = append(e.queue, n)
		e.open[path] = n
	}
	cp := append([]byte(nil), data...)
	e.meter.Copy(int64(len(cp)))
	n.node.Extents = append(n.node.Extents, wire.Extent{Off: off, Data: cp})
	c.synced = true
}

// truncate trims buffered data (the cache absorbing short-lived bytes) and
// buffers a truncate op.
func (e *Engine) truncate(path string, size int64) {
	if n, ok := e.open[path]; ok {
		kept := n.node.Extents[:0]
		for _, ext := range n.node.Extents {
			switch {
			case ext.Off >= size:
			case ext.Off+int64(len(ext.Data)) > size:
				ext.Data = ext.Data[:size-ext.Off]
				kept = append(kept, ext)
			default:
				kept = append(kept, ext)
			}
		}
		n.node.Extents = kept
		n.open = false
		delete(e.open, path)
	}
	c := e.fc(path)
	c.size = size
	node := &wire.Node{Kind: wire.NTruncate, Path: path, Size: size}
	e.stamp(node, path)
	e.queue = append(e.queue, &pending{node: node, at: e.now})
	c.synced = true
}

func (e *Engine) stamp(n *wire.Node, path string) {
	n.Base = e.vers.Get(path)
	n.Ver = e.counter.Next()
	e.vers.Set(path, n.Ver)
}

// dropPending discards buffered ops for a path being unlinked (the cache
// simply forgets dirty pages of a deleted file).
func (e *Engine) dropPending(path string) {
	kept := e.queue[:0]
	for _, p := range e.queue {
		if p.node.Path == path &&
			(p.node.Kind == wire.NWrite || p.node.Kind == wire.NTruncate || p.node.Kind == wire.NCreate) {
			if e.open[path] == p {
				delete(e.open, path)
			}
			continue
		}
		kept = append(kept, p)
	}
	e.queue = kept
}

// refetch downloads a file's full content (stale-handle revalidation).
func (e *Engine) refetch(path string) {
	rep, err := e.ep.Fetch(path)
	if err != nil || !rep.Exists {
		return
	}
	e.meter.Copy(int64(len(rep.Content)))
	c := e.fc(path)
	c.whole = true
	c.size = int64(len(rep.Content))
	c.synced = true
}

// Flush writes back all buffered operations in order.
func (e *Engine) Flush() {
	if len(e.queue) == 0 {
		return
	}
	nodes := make([]*wire.Node, 0, len(e.queue))
	for _, p := range e.queue {
		nodes = append(nodes, p.node)
	}
	e.queue = e.queue[:0]
	for p := range e.open {
		delete(e.open, p)
	}
	e.push(&wire.Batch{Nodes: nodes})
}

func (e *Engine) push(b *wire.Batch) {
	if len(b.Nodes) == 0 {
		return
	}
	reply, err := e.ep.Push(b)
	if err != nil {
		e.pushErr = err
		return
	}
	if reply.Err != "" {
		e.pushErr = fmt.Errorf("nfs: push: %s", reply.Err)
	}
}

// Tick implements trace.Target: age-based write-back.
func (e *Engine) Tick(now time.Duration) {
	e.now = now
	if len(e.queue) > 0 && now-e.queue[0].at >= e.cfg.FlushDelay {
		e.Flush()
	}
}

// Drain flushes everything.
func (e *Engine) Drain() error {
	e.Flush()
	return e.pushErr
}

// LastPushError reports the most recent push failure.
func (e *Engine) LastPushError() error { return e.pushErr }

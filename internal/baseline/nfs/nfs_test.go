package nfs

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/server"
	"repro/internal/vfs"
)

type rig struct {
	backing *vfs.MemFS
	srv     *server.Server
	eng     *Engine
	meter   *metrics.CPUMeter
	traffic *metrics.TrafficMeter
}

func newRig(t *testing.T) *rig {
	t.Helper()
	r := &rig{
		backing: vfs.NewMemFS(),
		srv:     server.New(nil),
		meter:   metrics.NewCPUMeter(metrics.PC),
		traffic: &metrics.TrafficMeter{},
	}
	eng, err := New(Config{
		Backing:  r.backing,
		Endpoint: server.NewLoopback(r.srv, r.meter, r.traffic),
		Meter:    r.meter,
	})
	if err != nil {
		t.Fatal(err)
	}
	r.eng = eng
	return r
}

func (r *rig) seed(t *testing.T, path string, content []byte) {
	t.Helper()
	r.backing.Create(path)
	if len(content) > 0 {
		r.backing.WriteAt(path, 0, content)
	}
	r.srv.SeedFile(path, content)
	if err := r.eng.Prime(); err != nil {
		t.Fatal(err)
	}
}

func (r *rig) assertSynced(t *testing.T, path string) {
	t.Helper()
	local, _ := r.backing.ReadFile(path)
	remote, ok := r.srv.FileContent(path)
	if !ok || !bytes.Equal(local, remote) {
		t.Fatalf("%s diverged (local %d, remote %d, ok=%v)", path, len(local), len(remote), ok)
	}
}

func randBytes(seed int64, n int) []byte {
	p := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(p)
	return p
}

func TestWriteFlushOnClose(t *testing.T) {
	r := newRig(t)
	fs := r.eng.FS()
	fs.Create("f")
	fs.WriteAt("f", 0, []byte("payload"))
	// Buffered: not on the server yet (create RPC is buffered too).
	fs.Close("f")
	if err := r.eng.Drain(); err != nil {
		t.Fatal(err)
	}
	r.assertSynced(t, "f")
}

func TestAgeBasedWriteBack(t *testing.T) {
	r := newRig(t)
	fs := r.eng.FS()
	fs.Create("f")
	fs.WriteAt("f", 0, []byte("aging"))
	r.eng.Tick(time.Second)
	if _, ok := r.srv.FileContent("f"); ok {
		t.Fatal("flushed before the write-back delay")
	}
	r.eng.Tick(DefaultFlushDelay + time.Second)
	r.assertSynced(t, "f")
}

func TestUploadsAllWrittenBytes(t *testing.T) {
	// NFS has no delta encoding: a full rewrite of a seeded file ships
	// every byte.
	r := newRig(t)
	content := randBytes(1, 256<<10)
	r.seed(t, "f", content)
	newContent := append([]byte(nil), content...)
	newContent[0] ^= 0xff // tiny real change, but the app rewrites all of it

	fs := r.eng.FS()
	fs.WriteAt("f", 0, newContent)
	fs.Close("f")
	if err := r.eng.Drain(); err != nil {
		t.Fatal(err)
	}
	r.assertSynced(t, "f")
	if up := r.traffic.Uploaded(); up < int64(len(newContent)) {
		t.Fatalf("uploaded %d < %d: write RPCs must carry all bytes", up, len(newContent))
	}
}

func TestJournalAbsorbedByWriteBackCache(t *testing.T) {
	// Journal created, written and truncated to zero before any flush:
	// its bytes never reach the wire.
	r := newRig(t)
	fs := r.eng.FS()
	fs.Create("j")
	fs.WriteAt("j", 0, randBytes(2, 20<<10))
	fs.Truncate("j", 0)
	if err := r.eng.Drain(); err != nil {
		t.Fatal(err)
	}
	r.assertSynced(t, "j")
	if up := r.traffic.Uploaded(); up > 2048 {
		t.Fatalf("uploaded %d; journal writes not absorbed", up)
	}
}

func TestFetchBeforeWrite(t *testing.T) {
	// A non-aligned small write to an uncached page downloads the page
	// first [41].
	r := newRig(t)
	r.seed(t, "db", randBytes(3, 64<<10))
	fs := r.eng.FS()
	if err := fs.WriteAt("db", 10_000, []byte("rowdata")); err != nil {
		t.Fatal(err)
	}
	if down := r.traffic.Downloaded(); down < PageSize {
		t.Fatalf("downloaded %d; fetch-before-write missing", down)
	}
	fs.Close("db")
	if err := r.eng.Drain(); err != nil {
		t.Fatal(err)
	}
	r.assertSynced(t, "db")
}

func TestAlignedWriteNeedsNoFetch(t *testing.T) {
	r := newRig(t)
	r.seed(t, "db", randBytes(4, 64<<10))
	base := r.traffic.Downloaded() // Prime's Head metadata
	fs := r.eng.FS()
	page := randBytes(5, PageSize)
	if err := fs.WriteAt("db", 2*PageSize, page); err != nil {
		t.Fatal(err)
	}
	if down := r.traffic.Downloaded() - base; down != 0 {
		t.Fatalf("downloaded %d for a block-aligned full-page write", down)
	}
}

func TestAppendNeedsNoFetch(t *testing.T) {
	r := newRig(t)
	r.seed(t, "log", randBytes(6, 8<<10))
	base := r.traffic.Downloaded() // Prime's Head metadata
	fs := r.eng.FS()
	if err := fs.WriteAt("log", 8<<10, []byte("appended")); err != nil {
		t.Fatal(err)
	}
	if down := r.traffic.Downloaded() - base; down != 0 {
		t.Fatalf("downloaded %d for an append at EOF", down)
	}
}

func TestCachedPageFetchedOnce(t *testing.T) {
	r := newRig(t)
	r.seed(t, "db", randBytes(7, 64<<10))
	fs := r.eng.FS()
	fs.WriteAt("db", 10_000, []byte("a"))
	first := r.traffic.Downloaded()
	fs.WriteAt("db", 10_100, []byte("b")) // same page, now cached
	if r.traffic.Downloaded() != first {
		t.Fatal("second write to a cached page re-fetched it")
	}
}

func TestStaleHandleRefetchAfterRename(t *testing.T) {
	// Word on NFS: writing t1 and renaming it over the cached f forces
	// the client to re-read f's content from the server [40].
	r := newRig(t)
	content := randBytes(8, 128<<10)
	r.seed(t, "f", content)

	newContent := randBytes(9, 128<<10)
	fs := r.eng.FS()
	fs.Create("t1")
	fs.WriteAt("t1", 0, newContent)
	fs.Close("t1")

	upBefore := r.traffic.Uploaded()
	downBefore := r.traffic.Downloaded()
	if err := fs.Rename("t1", "f"); err != nil {
		t.Fatal(err)
	}
	if err := r.eng.Drain(); err != nil {
		t.Fatal(err)
	}
	r.assertSynced(t, "f")
	_ = upBefore
	// The refetch downloads roughly the whole new file.
	if got := r.traffic.Downloaded() - downBefore; got < int64(len(newContent)) {
		t.Fatalf("downloaded %d after rename; stale-handle refetch missing", got)
	}
}

func TestRenameOntoUncachedNameNoRefetch(t *testing.T) {
	r := newRig(t)
	fs := r.eng.FS()
	fs.Create("t1")
	fs.WriteAt("t1", 0, randBytes(10, 64<<10))
	fs.Close("t1")
	down := r.traffic.Downloaded()
	if err := fs.Rename("t1", "brand-new"); err != nil {
		t.Fatal(err)
	}
	// RPC replies count as (small) downloads; a refetch would be >=64 KB.
	if got := r.traffic.Downloaded() - down; got > 1024 {
		t.Fatalf("downloaded %d: rename onto a fresh name must not refetch", got)
	}
	if err := r.eng.Drain(); err != nil {
		t.Fatal(err)
	}
	r.assertSynced(t, "brand-new")
}

func TestUnlinkDropsBufferedWrites(t *testing.T) {
	r := newRig(t)
	fs := r.eng.FS()
	fs.Create("tmp")
	fs.WriteAt("tmp", 0, randBytes(11, 32<<10))
	fs.Unlink("tmp")
	if err := r.eng.Drain(); err != nil {
		t.Fatal(err)
	}
	if up := r.traffic.Uploaded(); up > 1024 {
		t.Fatalf("uploaded %d for a file that died in cache", up)
	}
	if _, ok := r.srv.FileContent("tmp"); ok {
		t.Fatal("dead temp file reached the server")
	}
}

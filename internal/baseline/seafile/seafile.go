// Package seafile implements the Seafile-like baseline: content-defined
// chunking with 1 MB average chunks [3], [22]. On each sync cycle the client
// re-chunks the modified file (gear scan + chunk checksums, computed on the
// client and sent to the server, which is why the paper's Table II shows a
// cheap Seafile server) and uploads only the chunks the server lacks. The
// large chunk size is what makes Seafile cheap on CPU but expensive on the
// network — the trade-off Figures 1 and 8 quantify.
package seafile

import (
	"fmt"
	"time"

	"repro/internal/baseline"
	"repro/internal/cdc"
	"repro/internal/metrics"
	"repro/internal/version"
	"repro/internal/vfs"
	"repro/internal/wire"
)

// Config configures the engine.
type Config struct {
	Backing  vfs.FS
	Endpoint wire.Endpoint
	Meter    *metrics.CPUMeter
	Chunking cdc.Config    // default cdc.SeafileConfig()
	Debounce time.Duration // default 1 s
}

// Engine is the Seafile-like client.
type Engine struct {
	cfg   Config
	obs   *vfs.ObserverFS
	ep    wire.Endpoint
	meter *metrics.CPUMeter

	dirty   *baseline.Dirty
	deleted map[string]bool
	renames []rename
	// known tracks the chunk hashes resident in the server's bounded store.
	known *baseline.ChunkTracker
	// synced tracks paths the cloud currently has.
	synced map[string]bool

	counter *version.Counter
	vers    *version.Map

	now     time.Duration
	pushErr error
}

type rename struct{ from, to string }

// New builds the engine and registers with the cloud.
func New(cfg Config) (*Engine, error) {
	if cfg.Chunking.AvgSize == 0 {
		cfg.Chunking = cdc.SeafileConfig()
	}
	if cfg.Debounce <= 0 {
		cfg.Debounce = baseline.DefaultDebounce
	}
	id, err := cfg.Endpoint.Register()
	if err != nil {
		return nil, fmt.Errorf("seafile: register: %w", err)
	}
	e := &Engine{
		cfg:     cfg,
		obs:     vfs.NewObserverFS(cfg.Backing),
		ep:      cfg.Endpoint,
		meter:   cfg.Meter,
		dirty:   baseline.NewDirty(),
		deleted: make(map[string]bool),
		known:   baseline.NewChunkTracker(),
		synced:  make(map[string]bool),
		counter: version.NewCounter(id),
		vers:    version.NewMap(),
	}
	e.obs.Subscribe(vfs.ObserverFunc(e.onOp))
	return e, nil
}

// FS implements trace.Target.
func (e *Engine) FS() vfs.FS { return e.obs }

// Prime marks the seed state's chunks as server-known. The server's chunk
// store must be primed with the same chunks (harness responsibility) so
// dedup references resolve.
func (e *Engine) Prime(seed func(c cdc.Chunk, data []byte)) error {
	paths, err := e.cfg.Backing.List("")
	if err != nil {
		return err
	}
	for _, p := range paths {
		content, err := e.cfg.Backing.ReadFile(p)
		if err != nil {
			return err
		}
		e.synced[p] = true
		if v, ok, err := e.ep.Head(p); err == nil && ok {
			e.vers.Set(p, v)
		}
		for _, c := range cdc.Split(content, e.cfg.Chunking, nil) {
			e.known.Add(c.Hash, c.Len)
			if seed != nil {
				seed(c, content[c.Off:c.Off+c.Len])
			}
		}
	}
	return nil
}

func (e *Engine) onOp(op vfs.Op) {
	switch op.Kind {
	case vfs.OpCreate, vfs.OpWrite, vfs.OpTruncate:
		e.dirty.Mark(op.Path, e.now)
		delete(e.deleted, op.Path)
	case vfs.OpLink:
		e.dirty.Mark(op.Dst, e.now)
	case vfs.OpRename:
		if e.synced[op.Path] {
			e.renames = append(e.renames, rename{from: op.Path, to: op.Dst})
			e.synced[op.Dst] = true
			delete(e.synced, op.Path)
		}
		e.dirty.Forget(op.Path)
		e.dirty.Mark(op.Dst, e.now)
		delete(e.deleted, op.Dst)
	case vfs.OpUnlink:
		e.dirty.Forget(op.Path)
		if e.synced[op.Path] {
			e.deleted[op.Path] = true
			delete(e.synced, op.Path)
		}
	}
}

// Tick implements trace.Target.
func (e *Engine) Tick(now time.Duration) {
	e.now = now
	e.flushStructural()
	for _, p := range baseline.OrderBySize(e.obs.Backing(), e.dirty.Ready(now, e.cfg.Debounce)) {
		e.syncFile(p)
	}
}

// Drain forces everything pending to the cloud.
func (e *Engine) Drain() error {
	e.Tick(1<<62 - 1)
	return e.pushErr
}

// LastPushError reports the most recent push failure.
func (e *Engine) LastPushError() error { return e.pushErr }

func (e *Engine) push(nodes ...*wire.Node) {
	if len(nodes) == 0 {
		return
	}
	reply, err := e.ep.Push(&wire.Batch{Nodes: nodes})
	if err != nil {
		e.pushErr = err
		return
	}
	if reply.Err != "" {
		e.pushErr = fmt.Errorf("seafile: push: %s", reply.Err)
	}
}

func (e *Engine) flushStructural() {
	var nodes []*wire.Node
	for _, r := range e.renames {
		n := &wire.Node{Kind: wire.NRename, Path: r.from, Dst: r.to,
			Base: e.vers.Get(r.from), Ver: e.counter.Next()}
		e.vers.Rename(r.from, r.to)
		e.vers.Set(r.to, n.Ver)
		nodes = append(nodes, n)
	}
	e.renames = nil
	for p := range e.deleted {
		nodes = append(nodes, &wire.Node{Kind: wire.NUnlink, Path: p, Base: e.vers.Get(p)})
		e.vers.Delete(p)
		delete(e.deleted, p)
	}
	e.push(nodes...)
}

// syncFile re-chunks path and uploads missing chunks.
func (e *Engine) syncFile(path string) {
	content, err := e.obs.Backing().ReadFile(path)
	if err != nil {
		e.dirty.Forget(path)
		return
	}
	e.meter.DiskIO(int64(len(content)))
	chunks := cdc.Split(content, e.cfg.Chunking, e.meter)

	node := &wire.Node{Kind: wire.NCDC, Path: path}
	for _, c := range chunks {
		ref := wire.ChunkRef{Hash: c.Hash, Len: c.Len}
		if !e.known.Known(c.Hash) {
			ref.Data = content[c.Off : c.Off+c.Len]
		}
		node.Chunks = append(node.Chunks, ref)
	}
	node.Base = e.vers.Get(path)
	node.Ver = e.counter.Next()
	e.vers.Set(path, node.Ver)
	e.push(node)

	for _, c := range node.Chunks {
		if c.Data != nil {
			// Mirror the server exactly: only carried chunks insert.
			e.known.Add(c.Hash, c.Len)
		}
	}
	e.synced[path] = true
	e.dirty.Forget(path)
}

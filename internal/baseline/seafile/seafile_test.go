package seafile

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/cdc"
	"repro/internal/metrics"
	"repro/internal/server"
	"repro/internal/vfs"
)

type rig struct {
	backing *vfs.MemFS
	srv     *server.Server
	eng     *Engine
	meter   *metrics.CPUMeter
	traffic *metrics.TrafficMeter
}

func newRig(t *testing.T, chunking cdc.Config) *rig {
	t.Helper()
	r := &rig{
		backing: vfs.NewMemFS(),
		srv:     server.New(nil),
		meter:   metrics.NewCPUMeter(metrics.PC),
		traffic: &metrics.TrafficMeter{},
	}
	eng, err := New(Config{
		Backing:  r.backing,
		Endpoint: server.NewLoopback(r.srv, r.meter, r.traffic),
		Meter:    r.meter,
		Chunking: chunking,
	})
	if err != nil {
		t.Fatal(err)
	}
	r.eng = eng
	return r
}

func (r *rig) seed(t *testing.T, path string, content []byte) {
	t.Helper()
	r.backing.Create(path)
	if len(content) > 0 {
		r.backing.WriteAt(path, 0, content)
	}
	r.srv.SeedFile(path, content)
	if err := r.eng.Prime(func(c cdc.Chunk, data []byte) {
		r.srv.SeedChunk(c.Hash, data)
	}); err != nil {
		t.Fatal(err)
	}
}

func (r *rig) settle(t *testing.T) {
	t.Helper()
	r.eng.Tick(1<<62 - 1)
	if err := r.eng.Drain(); err != nil {
		t.Fatal(err)
	}
}

func (r *rig) assertSynced(t *testing.T, path string) {
	t.Helper()
	local, _ := r.backing.ReadFile(path)
	remote, ok := r.srv.FileContent(path)
	if !ok || !bytes.Equal(local, remote) {
		t.Fatalf("%s diverged (local %d, remote %d, ok=%v)", path, len(local), len(remote), ok)
	}
}

func randBytes(seed int64, n int) []byte {
	p := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(p)
	return p
}

// small chunking keeps tests fast while preserving CDC behaviour.
func testChunking() cdc.Config {
	return cdc.Config{MinSize: 4 << 10, AvgSize: 16 << 10, MaxSize: 64 << 10}
}

func TestUploadNewFile(t *testing.T) {
	r := newRig(t, testChunking())
	fs := r.eng.FS()
	fs.Create("f")
	fs.WriteAt("f", 0, randBytes(1, 100<<10))
	fs.Close("f")
	r.settle(t)
	r.assertSynced(t, "f")
}

func TestLargeChunksMakeSmallEditsExpensive(t *testing.T) {
	// The paper's Seafile signature: a tiny edit re-uploads a whole ~1 MB
	// chunk. With the test chunking (16 KB avg), a 10-byte edit must cost
	// at least one whole chunk (min 4 KB), far more than the edit.
	r := newRig(t, testChunking())
	content := randBytes(2, 1<<20)
	r.seed(t, "f", content)

	r.eng.FS().WriteAt("f", 500_000, randBytes(3, 10))
	r.settle(t)
	r.assertSynced(t, "f")
	if up := r.traffic.Uploaded(); up < 4<<10 {
		t.Fatalf("uploaded %d; a full chunk must travel for a 10-byte edit", up)
	}
	// But dedup keeps it far below the file size.
	if up := r.traffic.Uploaded(); up > int64(len(content))/4 {
		t.Fatalf("uploaded %d of %d; dedup not working", up, len(content))
	}
}

func TestCDCCheapOnCPUComparedToWorkDone(t *testing.T) {
	// Seafile's scan charges gear+strong per byte but no rolling pass and
	// no per-block signature exchange.
	r := newRig(t, testChunking())
	content := randBytes(4, 2<<20)
	r.seed(t, "f", content)
	r.eng.FS().WriteAt("f", 0, randBytes(5, 100))
	r.settle(t)
	b := r.meter.Breakdown()
	if b["gear_bytes"] < int64(len(content)) {
		t.Fatalf("gear scan covered %d of %d", b["gear_bytes"], len(content))
	}
	if b["rolling_bytes"] != 0 {
		t.Fatalf("Seafile charged %d rolling bytes; it uses CDC, not rsync", b["rolling_bytes"])
	}
}

func TestInsertOnlyDisturbsNearbyChunks(t *testing.T) {
	r := newRig(t, testChunking())
	content := randBytes(6, 1<<20)
	r.seed(t, "f", content)

	insert := randBytes(7, 64)
	newContent := append(append(append([]byte(nil), content[:300_000]...), insert...), content[300_000:]...)
	fs := r.eng.FS()
	fs.Create("f")
	fs.WriteAt("f", 0, newContent)
	fs.Close("f")
	r.settle(t)
	r.assertSynced(t, "f")
	// Content-defined boundaries: chunks away from the insert keep their
	// hashes, so upload stays near a couple of chunks.
	if up := r.traffic.Uploaded(); up > int64(len(content))/4 {
		t.Fatalf("uploaded %d; CDC shift-resistance failed", up)
	}
}

func TestRenameAndUnlink(t *testing.T) {
	r := newRig(t, testChunking())
	r.seed(t, "a", randBytes(8, 32<<10))
	fs := r.eng.FS()
	if err := fs.Rename("a", "b"); err != nil {
		t.Fatal(err)
	}
	r.settle(t)
	r.assertSynced(t, "b")
	if _, ok := r.srv.FileContent("a"); ok {
		t.Fatal("a survives rename on server")
	}
	fs.Unlink("b")
	r.settle(t)
	if _, ok := r.srv.FileContent("b"); ok {
		t.Fatal("b survives unlink on server")
	}
}

func TestTempFileRenameBeforeSync(t *testing.T) {
	r := newRig(t, testChunking())
	r.seed(t, "f", randBytes(9, 64<<10))
	fs := r.eng.FS()
	fs.Create("tmp")
	fs.WriteAt("tmp", 0, randBytes(10, 64<<10))
	fs.Close("tmp")
	fs.Rename("tmp", "f")
	r.settle(t)
	if err := r.eng.LastPushError(); err != nil {
		t.Fatal(err)
	}
	r.assertSynced(t, "f")
	if _, ok := r.srv.FileContent("tmp"); ok {
		t.Fatal("tmp reached the server")
	}
}

// Package dropbox implements the Dropbox-like baseline: delta sync with
// rsync, as the paper characterizes the desktop Dropbox client.
//
// Mechanisms reproduced (from §II-A, §IV-B and [2], [38] as summarized in
// the paper):
//
//   - inotify-triggered sync: the client learns *that* a file changed, not
//     what changed, so every sync cycle re-reads and re-scans the whole file;
//   - 4 MB deduplication: files are split into 4 MB aligned blocks, hashed,
//     and blocks the server already stores are never re-sent;
//   - rsync confined to the 4 MB block: a missed block is delta-encoded at
//     4 KB granularity against the same-index block of the client's shadow
//     copy (checksum computation offloaded to the client: the client
//     computes the base signature itself, which saves download traffic and
//     burns client CPU);
//   - network compression of literal bytes (DEFLATE).
//
// The upload carries the missing 4 MB blocks' content so the server can
// stay simple, but its wire size is the compressed rsync output — the
// paper's Table II has no Dropbox server column precisely because Dropbox's
// server is opaque; only client CPU and traffic are measured.
package dropbox

import (
	"bytes"
	"compress/flate"
	"fmt"
	"time"

	"repro/internal/baseline"
	"repro/internal/block"
	"repro/internal/metrics"
	"repro/internal/version"
	"repro/internal/vfs"
	"repro/internal/wire"
)

// DedupBlockSize is Dropbox's deduplication granularity [2].
const DedupBlockSize = 4 << 20

// RsyncBlockSize is the delta granularity inside a dedup block.
const RsyncBlockSize = 4096

// Config configures the engine.
type Config struct {
	Backing  vfs.FS
	Endpoint wire.Endpoint
	Meter    *metrics.CPUMeter
	Debounce time.Duration // quiescence before a sync cycle (default 1 s)
	// Untuned disables delta encoding inside missed dedup blocks, leaving
	// 4 MB dedup plus full-block uploads — the behaviour the paper observed
	// before tuning the replay ("otherwise Dropbox would directly upload
	// files without using rsync, which transmits 5 times larger").
	Untuned bool
}

// Engine is the Dropbox-like client.
type Engine struct {
	cfg   Config
	obs   *vfs.ObserverFS
	ep    wire.Endpoint
	meter *metrics.CPUMeter

	dirty   *baseline.Dirty
	deleted map[string]bool
	renames []rename
	// shadow is the client's copy of the last-synced content per path
	// (what the real client keeps in its cache directory).
	shadow map[string][]byte
	// known tracks the 4 MB block hashes resident in the server's bounded
	// chunk store.
	known *baseline.ChunkTracker

	counter *version.Counter
	vers    *version.Map

	now     time.Duration
	pushErr error
}

type rename struct{ from, to string }

// New builds the engine and registers with the cloud.
func New(cfg Config) (*Engine, error) {
	if cfg.Debounce <= 0 {
		cfg.Debounce = baseline.DefaultDebounce
	}
	id, err := cfg.Endpoint.Register()
	if err != nil {
		return nil, fmt.Errorf("dropbox: register: %w", err)
	}
	e := &Engine{
		cfg:     cfg,
		obs:     vfs.NewObserverFS(cfg.Backing),
		ep:      cfg.Endpoint,
		meter:   cfg.Meter,
		dirty:   baseline.NewDirty(),
		deleted: make(map[string]bool),
		shadow:  make(map[string][]byte),
		known:   baseline.NewChunkTracker(),
		counter: version.NewCounter(id),
		vers:    version.NewMap(),
	}
	e.obs.Subscribe(vfs.ObserverFunc(e.onOp))
	return e, nil
}

// FS implements trace.Target.
func (e *Engine) FS() vfs.FS { return e.obs }

// Prime initializes the shadow copies and server-known hashes from the
// already-synced seed state (no traffic: both sides start identical). seed,
// when non-nil, receives each 4 MB block so the harness can install it in
// the server's chunk store.
func (e *Engine) Prime(seed func(h block.Strong, data []byte)) error {
	paths, err := e.cfg.Backing.List("")
	if err != nil {
		return err
	}
	for _, p := range paths {
		content, err := e.cfg.Backing.ReadFile(p)
		if err != nil {
			return err
		}
		e.shadow[p] = content
		if v, ok, err := e.ep.Head(p); err == nil && ok {
			e.vers.Set(p, v)
		}
		for off := 0; off < len(content); off += DedupBlockSize {
			end := off + DedupBlockSize
			if end > len(content) {
				end = len(content)
			}
			h := block.StrongSum(content[off:end])
			e.known.Add(h, int64(end-off))
			if seed != nil {
				seed(h, content[off:end])
			}
		}
	}
	return nil
}

// onOp is the inotify stand-in.
func (e *Engine) onOp(op vfs.Op) {
	switch op.Kind {
	case vfs.OpCreate, vfs.OpWrite, vfs.OpTruncate:
		e.dirty.Mark(op.Path, e.now)
		delete(e.deleted, op.Path)
	case vfs.OpLink:
		e.dirty.Mark(op.Dst, e.now)
	case vfs.OpRename:
		if sh, ok := e.shadow[op.Path]; ok {
			// The cloud knows the source: a real server-side move. The
			// shadow is copied, not moved: if the old name is immediately
			// re-created (transactional update), the retained shadow is
			// the rsync base that makes Dropbox's "tuned best performance"
			// possible (the client cache keys blocks by content).
			e.renames = append(e.renames, rename{from: op.Path, to: op.Dst})
			e.shadow[op.Dst] = sh
		} else {
			// Source never synced (a freshly written temp file renamed
			// into place): the destination just looks modified.
			e.dirty.Forget(op.Path)
		}
		e.dirty.Mark(op.Dst, e.now)
		delete(e.deleted, op.Dst)
	case vfs.OpUnlink:
		e.dirty.Forget(op.Path)
		if _, hadShadow := e.shadow[op.Path]; hadShadow {
			e.deleted[op.Path] = true
		}
		delete(e.shadow, op.Path)
	}
}

// Tick implements trace.Target: run sync cycles for quiescent dirty files.
func (e *Engine) Tick(now time.Duration) {
	e.now = now
	// Structural changes first (renames/deletes are cheap metadata ops the
	// client sends promptly).
	e.flushStructural()
	for _, p := range baseline.OrderBySize(e.obs.Backing(), e.dirty.Ready(now, e.cfg.Debounce)) {
		e.syncFile(p)
	}
}

// Drain forces all pending state to the cloud.
func (e *Engine) Drain() error {
	e.Tick(1<<62 - 1)
	return e.pushErr
}

// LastPushError reports the most recent push failure.
func (e *Engine) LastPushError() error { return e.pushErr }

func (e *Engine) push(nodes ...*wire.Node) {
	if len(nodes) == 0 {
		return
	}
	reply, err := e.ep.Push(&wire.Batch{Nodes: nodes})
	if err != nil {
		e.pushErr = err
		return
	}
	if reply.Err != "" {
		e.pushErr = fmt.Errorf("dropbox: push: %s", reply.Err)
	}
}

func (e *Engine) flushStructural() {
	var nodes []*wire.Node
	for _, r := range e.renames {
		n := &wire.Node{Kind: wire.NRename, Path: r.from, Dst: r.to,
			Base: e.vers.Get(r.from), Ver: e.counter.Next()}
		e.vers.Rename(r.from, r.to)
		e.vers.Set(r.to, n.Ver)
		nodes = append(nodes, n)
	}
	e.renames = nil
	for p := range e.deleted {
		nodes = append(nodes, &wire.Node{Kind: wire.NUnlink, Path: p, Base: e.vers.Get(p)})
		e.vers.Delete(p)
		delete(e.deleted, p)
	}
	e.push(nodes...)
}

// syncFile runs one delta-sync cycle for path.
func (e *Engine) syncFile(path string) {
	content, err := e.obs.Backing().ReadFile(path)
	if err != nil {
		e.dirty.Forget(path)
		return
	}
	// The whole file is re-read and re-scanned — the IO cost the paper
	// calls out ("Dropbox issues over 700MB data read in that test").
	e.meter.DiskIO(int64(len(content)))
	// Beyond the 4 MB dedup hashes, the client refreshes its 4 KB-chunk
	// hash index over the full content every cycle (the client-side
	// checksum recalculation [38] that Table II charges Dropbox for).
	e.meter.StrongHash(int64(len(content)))
	e.meter.RollingHash(int64(len(content)))

	shadow := e.shadow[path]
	node := e.buildUpdate(path, content, shadow)
	node.Base = e.vers.Get(path)
	node.Ver = e.counter.Next()
	e.vers.Set(path, node.Ver)
	e.push(node)

	e.shadow[path] = content
	for _, c := range node.Chunks {
		if c.Data != nil {
			// Mirror the server exactly: only carried chunks are inserted
			// (a reference never refreshes or re-inserts store position).
			e.known.Add(c.Hash, c.Len)
		}
	}
	e.dirty.Forget(path)
}

// buildUpdate produces the upload for one file: an NCDC node over fixed
// 4 MB blocks whose wire size reflects dedup, block-confined rsync, and
// compression.
func (e *Engine) buildUpdate(path string, content, shadow []byte) *wire.Node {
	node := &wire.Node{Kind: wire.NCDC, Path: path}
	var wireBytes int64
	for off := int64(0); off < int64(len(content)); off += DedupBlockSize {
		end := off + DedupBlockSize
		if end > int64(len(content)) {
			end = int64(len(content))
		}
		blk := content[off:end]
		e.meter.StrongHash(int64(len(blk))) // dedup hash
		h := block.StrongSum(blk)
		ref := wire.ChunkRef{Hash: h, Len: int64(len(blk))}
		if !e.known.Known(h) {
			ref.Data = blk
			wireBytes += e.missedBlockWireSize(blk, shadow, off)
		} else {
			wireBytes += 24 // hash reference
		}
		node.Chunks = append(node.Chunks, ref)
	}
	node.PayloadWire = wireBytes + 24
	return node
}

// missedBlockWireSize computes the delta between the new 4 MB block and the
// same-index block of the shadow copy at Dropbox's 4 KB chunk granularity:
// aligned 4 KB chunks are compared by strong checksum (the base checksums
// recomputed on the client — the offloading [38] that burns client CPU), and
// mismatching chunks ship as compressed literals. The aligned comparison is
// what the paper's measurements pin down: a 1010-byte random write costs a
// full 4 KB chunk (Fig 8(b): "every random write is 1010 bytes while
// Dropbox's chunk size is 4KB"), and an insertion misaligns every following
// chunk, "impacting the effect of delta encoding a lot" on the Word trace.
func (e *Engine) missedBlockWireSize(blk, shadow []byte, off int64) int64 {
	var base []byte
	if off < int64(len(shadow)) {
		bend := off + DedupBlockSize
		if bend > int64(len(shadow)) {
			bend = int64(len(shadow))
		}
		base = shadow[off:bend]
	}
	if len(base) == 0 || e.cfg.Untuned {
		// New block with no base (or delta encoding not engaged): full
		// content, compressed.
		return e.compressedSize(blk)
	}
	// Client-side checksum offloading: the base chunk checksums are
	// recomputed locally rather than downloaded.
	e.meter.StrongHash(int64(len(base)))
	e.meter.StrongHash(int64(len(blk)))
	var literal []byte
	refs := 0
	for lo := 0; lo < len(blk); lo += RsyncBlockSize {
		hi := lo + RsyncBlockSize
		if hi > len(blk) {
			hi = len(blk)
		}
		if hi <= len(base) && block.StrongSum(blk[lo:hi]) == block.StrongSum(base[lo:hi]) {
			refs++
			continue
		}
		literal = append(literal, blk[lo:hi]...)
	}
	return e.compressedSize(literal) + int64(refs)*20
}

// compressedSize DEFLATEs p and returns the output size, charging the
// compression pass.
func (e *Engine) compressedSize(p []byte) int64 {
	if len(p) == 0 {
		return 0
	}
	e.meter.Compress(int64(len(p)))
	var buf bytes.Buffer
	w, err := flate.NewWriter(&buf, flate.BestSpeed)
	if err != nil {
		return int64(len(p))
	}
	if _, err := w.Write(p); err != nil {
		return int64(len(p))
	}
	if err := w.Close(); err != nil {
		return int64(len(p))
	}
	return int64(buf.Len())
}

package dropbox

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/wire"
)

// TestChunkEvictionStaysConsistent is the regression test for the bounded
// chunk store: with a budget small enough to force constant eviction, many
// sync cycles over a mutating file must never produce an "unknown chunk"
// error or diverge — the client's tracker and the server's store must evict
// in lockstep, and references within one upload must resolve before that
// upload's own insertions can evict them.
func TestChunkEvictionStaysConsistent(t *testing.T) {
	oldBudget := wire.ChunkStoreBudget
	wire.ChunkStoreBudget = 24 << 20 // 6 dedup blocks
	defer func() { wire.ChunkStoreBudget = oldBudget }()

	r := newRig(t)
	content := randBytes(100, 16<<20) // 4 dedup blocks
	r.seed(t, "f", content)
	if err := r.eng.Prime(r.srv.SeedChunk); err != nil {
		t.Fatal(err)
	}

	fs := r.eng.FS()
	now := time.Duration(0)
	for round := 0; round < 12; round++ {
		now += 10 * time.Second
		r.eng.Tick(now) // set the engine's notion of time before the write
		// Mutate one block per round; the other blocks stay references,
		// some of which the rolling eviction has pushed to the edge.
		off := int64(round%4) * (4 << 20)
		if err := fs.WriteAt("f", off+512, randBytes(int64(round), 64<<10)); err != nil {
			t.Fatal(err)
		}
		if err := fs.Close("f"); err != nil {
			t.Fatal(err)
		}
		now += 5 * time.Second
		r.eng.Tick(now) // quiescent past the debounce: sync cycle runs
		if err := r.eng.LastPushError(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		local, _ := r.backing.ReadFile("f")
		remote, ok := r.srv.FileContent("f")
		if !ok || !bytes.Equal(local, remote) {
			t.Fatalf("round %d: content diverged", round)
		}
	}
}

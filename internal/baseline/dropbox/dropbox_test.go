package dropbox

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/server"
	"repro/internal/vfs"
)

type rig struct {
	backing *vfs.MemFS
	srv     *server.Server
	eng     *Engine
	meter   *metrics.CPUMeter
	traffic *metrics.TrafficMeter
}

func newRig(t *testing.T) *rig {
	t.Helper()
	r := &rig{
		backing: vfs.NewMemFS(),
		srv:     server.New(nil),
		meter:   metrics.NewCPUMeter(metrics.PC),
		traffic: &metrics.TrafficMeter{},
	}
	eng, err := New(Config{
		Backing:  r.backing,
		Endpoint: server.NewLoopback(r.srv, r.meter, r.traffic),
		Meter:    r.meter,
	})
	if err != nil {
		t.Fatal(err)
	}
	r.eng = eng
	return r
}

func (r *rig) seed(t *testing.T, path string, content []byte) {
	t.Helper()
	if err := r.backing.Create(path); err != nil {
		t.Fatal(err)
	}
	if len(content) > 0 {
		if err := r.backing.WriteAt(path, 0, content); err != nil {
			t.Fatal(err)
		}
	}
	r.srv.SeedFile(path, content)
}

func (r *rig) settle(t *testing.T) {
	t.Helper()
	r.eng.Tick(1<<62 - 1)
	if err := r.eng.Drain(); err != nil {
		t.Fatal(err)
	}
}

func (r *rig) assertSynced(t *testing.T, path string) {
	t.Helper()
	local, err := r.backing.ReadFile(path)
	if err != nil {
		t.Fatalf("local %s: %v", path, err)
	}
	remote, ok := r.srv.FileContent(path)
	if !ok || !bytes.Equal(local, remote) {
		t.Fatalf("%s diverged (local %d, remote %d, ok=%v)", path, len(local), len(remote), ok)
	}
}

func randBytes(seed int64, n int) []byte {
	p := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(p)
	return p
}

func TestUploadNewFile(t *testing.T) {
	r := newRig(t)
	fs := r.eng.FS()
	fs.Create("f")
	fs.WriteAt("f", 0, []byte("new content"))
	fs.Close("f")
	r.settle(t)
	r.assertSynced(t, "f")
}

func TestRescanWholeFilePerCycle(t *testing.T) {
	// The inotify model: a 1-byte change to a big file costs a full
	// re-read plus hashing of every block — the paper's core complaint.
	r := newRig(t)
	content := randBytes(1, 8<<20)
	r.seed(t, "big", content)
	if err := r.eng.Prime(r.srv.SeedChunk); err != nil {
		t.Fatal(err)
	}

	before := r.meter.Breakdown()
	r.eng.FS().WriteAt("big", 4<<20, []byte{0xFF})
	r.settle(t)
	after := r.meter.Breakdown()

	if scanned := after["disk_bytes"] - before["disk_bytes"]; scanned < 8<<20 {
		t.Fatalf("read only %d bytes; full rescan expected", scanned)
	}
	if hashed := after["strong_bytes"] - before["strong_bytes"]; hashed < 8<<20 {
		t.Fatalf("hashed only %d bytes; dedup hashing covers the file", hashed)
	}
	r.assertSynced(t, "big")
}

func TestDedupSkipsUnchangedBlocks(t *testing.T) {
	// 12 MB file, 1 byte changed in the last 4 MB block: only that block
	// misses dedup, and rsync-within-the-block shrinks it to ~a literal
	// region, compressed.
	r := newRig(t)
	content := randBytes(2, 12<<20)
	r.seed(t, "f", content)
	if err := r.eng.Prime(r.srv.SeedChunk); err != nil {
		t.Fatal(err)
	}

	r.eng.FS().WriteAt("f", 9<<20, []byte("edit!"))
	r.settle(t)
	r.assertSynced(t, "f")
	// Traffic: two clean blocks are references; the dirty block rsyncs to
	// about one 4 KB rsync block of literal + op headers.
	if up := r.traffic.Uploaded(); up > 256<<10 {
		t.Fatalf("uploaded %d; dedup+rsync ineffective", up)
	}
}

func TestShiftConfinedToBlockBoundaries(t *testing.T) {
	// Insert 100 bytes near the start: every 4 MB block hash changes and
	// every 4 KB chunk after the insertion point misaligns.
	r := newRig(t)
	content := randBytes(3, 12<<20)
	r.seed(t, "f", content)
	if err := r.eng.Prime(r.srv.SeedChunk); err != nil {
		t.Fatal(err)
	}

	insert := randBytes(4, 100)
	newContent := append(append(append([]byte(nil), content[:1000]...), insert...), content[1000:]...)
	fs := r.eng.FS()
	fs.Create("f")
	fs.WriteAt("f", 0, newContent)
	fs.Close("f")
	r.settle(t)
	r.assertSynced(t, "f")

	// Aligned 4 KB chunk comparison: the insertion misaligns every chunk
	// after offset 1000, so nearly the whole file ships — the shift
	// penalty the paper measures on the Word trace.
	up := r.traffic.Uploaded()
	if up < int64(len(content))/2 {
		t.Fatalf("uploaded %d: shift penalty missing under aligned chunking", up)
	}
}

func TestTransactionalSaveUsesRetainedShadow(t *testing.T) {
	// Word pattern: rename f->t0, write t1, rename t1->f, unlink t0.
	// The retained shadow for f lets the new content rsync against the
	// old version ("tuned best performance").
	r := newRig(t)
	content := randBytes(5, 6<<20)
	r.seed(t, "f", content)
	if err := r.eng.Prime(r.srv.SeedChunk); err != nil {
		t.Fatal(err)
	}

	newContent := append([]byte(nil), content...)
	copy(newContent[3<<20:(3<<20)+500], randBytes(6, 500))

	fs := r.eng.FS()
	fs.Rename("f", "t0")
	r.eng.Tick(10 * time.Millisecond)
	fs.Create("t1")
	fs.WriteAt("t1", 0, newContent)
	fs.Close("t1")
	fs.Rename("t1", "f")
	fs.Unlink("t0")
	r.settle(t)

	r.assertSynced(t, "f")
	if _, ok := r.srv.FileContent("t0"); ok {
		t.Fatal("t0 lingers on server")
	}
	if up := r.traffic.Uploaded(); up > 1<<20 {
		t.Fatalf("uploaded %d for a 500-byte edit; shadow rsync not used", up)
	}
}

func TestUnlinkPropagates(t *testing.T) {
	r := newRig(t)
	r.seed(t, "f", []byte("x"))
	if err := r.eng.Prime(r.srv.SeedChunk); err != nil {
		t.Fatal(err)
	}
	r.eng.FS().Unlink("f")
	r.settle(t)
	if _, ok := r.srv.FileContent("f"); ok {
		t.Fatal("unlink did not reach server")
	}
}

func TestNeverSyncedTempFileNotRenamedOnServer(t *testing.T) {
	// A temp file created and renamed before any sync cycle must not
	// produce a server-side rename of a nonexistent path.
	r := newRig(t)
	fs := r.eng.FS()
	fs.Create("tmp")
	fs.WriteAt("tmp", 0, []byte("data"))
	fs.Rename("tmp", "final")
	r.settle(t)
	if err := r.eng.LastPushError(); err != nil {
		t.Fatalf("push error: %v", err)
	}
	r.assertSynced(t, "final")
	if _, ok := r.srv.FileContent("tmp"); ok {
		t.Fatal("tmp reached the server")
	}
}

func TestCompressionCharged(t *testing.T) {
	r := newRig(t)
	fs := r.eng.FS()
	fs.Create("f")
	fs.WriteAt("f", 0, bytes.Repeat([]byte("compressible "), 10000))
	fs.Close("f")
	r.settle(t)
	if r.meter.Breakdown()["compress_bytes"] == 0 {
		t.Fatal("no compression work charged")
	}
	// Highly compressible data: wire bytes well under the payload.
	if up := r.traffic.Uploaded(); up > 20000 {
		t.Fatalf("uploaded %d of 130000 compressible bytes", up)
	}
	r.assertSynced(t, "f")
}

package baseline

import (
	"testing"
	"time"
)

func TestDirtyMarkReady(t *testing.T) {
	d := NewDirty()
	d.Mark("a", 0)
	d.Mark("b", 500*time.Millisecond)

	if got := d.Ready(time.Second-time.Millisecond, time.Second); len(got) != 0 {
		t.Fatalf("ready too early: %v", got)
	}
	if got := d.Ready(time.Second, time.Second); len(got) != 1 || got[0] != "a" {
		t.Fatalf("ready = %v, want [a]", got)
	}
	if got := d.Ready(2*time.Second, time.Second); len(got) != 2 {
		t.Fatalf("ready = %v, want both", got)
	}
}

func TestDirtyTouchResetsQuiescence(t *testing.T) {
	d := NewDirty()
	d.Mark("a", 0)
	d.Mark("a", 900*time.Millisecond) // touched again
	if got := d.Ready(time.Second, time.Second); len(got) != 0 {
		t.Fatalf("file ready despite recent touch: %v", got)
	}
	if got := d.Ready(1900*time.Millisecond, time.Second); len(got) != 1 {
		t.Fatalf("file not ready after quiescence: %v", got)
	}
}

func TestDirtyForget(t *testing.T) {
	d := NewDirty()
	d.Mark("a", 0)
	if !d.IsDirty("a") || d.Len() != 1 {
		t.Fatal("Mark did not register")
	}
	d.Forget("a")
	if d.IsDirty("a") || d.Len() != 0 {
		t.Fatal("Forget did not clear")
	}
	if got := d.Ready(time.Hour, 0); len(got) != 0 {
		t.Fatalf("forgotten path still ready: %v", got)
	}
}

func TestDirtyReadySorted(t *testing.T) {
	d := NewDirty()
	for _, p := range []string{"z", "a", "m"} {
		d.Mark(p, 0)
	}
	got := d.Ready(time.Hour, 0)
	if len(got) != 3 || got[0] != "a" || got[1] != "m" || got[2] != "z" {
		t.Fatalf("ready not sorted: %v", got)
	}
}

package baseline

import (
	"testing"

	"repro/internal/block"
	"repro/internal/vfs"
	"repro/internal/wire"
)

func h(b byte) block.Strong {
	var out block.Strong
	out[0] = b
	return out
}

func TestChunkTrackerFIFOEviction(t *testing.T) {
	old := wire.ChunkStoreBudget
	wire.ChunkStoreBudget = 100
	defer func() { wire.ChunkStoreBudget = old }()

	tr := NewChunkTracker()
	tr.Add(h(1), 40)
	tr.Add(h(2), 40)
	if !tr.Known(h(1)) || !tr.Known(h(2)) {
		t.Fatal("chunks within budget not known")
	}
	tr.Add(h(3), 40) // 120 > 100: evict h(1)
	if tr.Known(h(1)) {
		t.Fatal("oldest chunk not evicted")
	}
	if !tr.Known(h(2)) || !tr.Known(h(3)) {
		t.Fatal("younger chunks evicted")
	}
	if tr.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tr.Len())
	}
}

func TestChunkTrackerReAddIsNoOp(t *testing.T) {
	old := wire.ChunkStoreBudget
	wire.ChunkStoreBudget = 100
	defer func() { wire.ChunkStoreBudget = old }()

	tr := NewChunkTracker()
	tr.Add(h(1), 40)
	tr.Add(h(2), 40)
	tr.Add(h(1), 40) // re-add: must NOT refresh position
	tr.Add(h(3), 40) // evicts h(1), the true oldest
	if tr.Known(h(1)) {
		t.Fatal("re-add refreshed FIFO position")
	}
	if !tr.Known(h(2)) {
		t.Fatal("h(2) wrongly evicted")
	}
}

func TestChunkTrackerEvictedThenReInserted(t *testing.T) {
	old := wire.ChunkStoreBudget
	wire.ChunkStoreBudget = 50
	defer func() { wire.ChunkStoreBudget = old }()

	tr := NewChunkTracker()
	tr.Add(h(1), 30)
	tr.Add(h(2), 30) // evicts h(1)
	tr.Add(h(1), 30) // re-insert after eviction: valid
	if !tr.Known(h(1)) {
		t.Fatal("re-inserted chunk not known")
	}
}

func TestOrderBySize(t *testing.T) {
	fs := vfs.NewMemFS()
	sizes := map[string]int{"big": 3000, "mid": 200, "tiny": 5}
	for p, n := range sizes {
		fs.Create(p)
		fs.WriteAt(p, 0, make([]byte, n))
	}
	got := OrderBySize(fs, []string{"big", "tiny", "mid"})
	want := []string{"tiny", "mid", "big"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("OrderBySize = %v, want %v", got, want)
		}
	}
	// Missing files keep their relative order without panicking.
	got = OrderBySize(fs, []string{"ghost", "tiny"})
	if len(got) != 2 {
		t.Fatalf("OrderBySize dropped entries: %v", got)
	}
}

// Package baseline holds the building blocks shared by the comparison sync
// systems the paper evaluates against DeltaCFS: Dropbox (rsync inside 4 MB
// dedup blocks, client-side checksum offloading, network compression),
// Seafile (CDC with 1 MB chunks), NFSv4 (write RPCs with a write-back cache
// and close-to-open consistency), and Dropsync (whole-file upload on
// change, the mobile Dropbox auto-sync client).
//
// Each baseline implements trace.Target (FS() + Tick) plus Drain, exactly
// like the DeltaCFS engine, so the benchmark harness swaps engines over
// identical trace replays.
package baseline

import (
	"sort"
	"time"

	"repro/internal/vfs"
)

// Dirty tracks inotify-style modification state per path: when the file
// first became dirty and when it was last touched. Sync cycles fire when a
// file has been quiescent for the debounce interval (Dropbox-like clients
// coalesce the event storm a single save produces).
type Dirty struct {
	first map[string]time.Duration
	last  map[string]time.Duration
}

// NewDirty returns an empty tracker.
func NewDirty() *Dirty {
	return &Dirty{
		first: make(map[string]time.Duration),
		last:  make(map[string]time.Duration),
	}
}

// Mark records a modification event for path at time now.
func (d *Dirty) Mark(path string, now time.Duration) {
	if _, ok := d.first[path]; !ok {
		d.first[path] = now
	}
	d.last[path] = now
}

// Forget drops path (synced, or removed).
func (d *Dirty) Forget(path string) {
	delete(d.first, path)
	delete(d.last, path)
}

// IsDirty reports whether path has unsynced modifications.
func (d *Dirty) IsDirty(path string) bool {
	_, ok := d.first[path]
	return ok
}

// Ready returns (sorted) paths quiescent for at least debounce at time now.
// A huge now (Drain) releases everything.
func (d *Dirty) Ready(now, debounce time.Duration) []string {
	var out []string
	for p, last := range d.last {
		if now-last >= debounce {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// Len returns the number of dirty paths.
func (d *Dirty) Len() int { return len(d.first) }

// DefaultDebounce is the quiescence window before a baseline client syncs a
// modified file.
const DefaultDebounce = time.Second

// OrderBySize reorders paths by current file size, smallest first. It models
// the completion order of the baselines’ parallel uploads: small files
// finish first, which is exactly the causal-ordering violation the paper's
// Table IV observes ("small files are often uploaded first"). DeltaCFS, by
// contrast, uploads in strict Sync Queue order.
func OrderBySize(fs vfs.FS, paths []string) []string {
	sort.SliceStable(paths, func(i, j int) bool {
		si, erri := fs.Stat(paths[i])
		sj, errj := fs.Stat(paths[j])
		if erri != nil || errj != nil {
			return false
		}
		return si.Size < sj.Size
	})
	return paths
}

package dropsync

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/server"
	"repro/internal/vfs"
)

type rig struct {
	backing *vfs.MemFS
	srv     *server.Server
	eng     *Engine
	meter   *metrics.CPUMeter
	traffic *metrics.TrafficMeter
}

func newRig(t *testing.T) *rig {
	t.Helper()
	r := &rig{
		backing: vfs.NewMemFS(),
		srv:     server.New(nil),
		meter:   metrics.NewCPUMeter(metrics.Mobile),
		traffic: &metrics.TrafficMeter{},
	}
	eng, err := New(Config{
		Backing:  r.backing,
		Endpoint: server.NewLoopback(r.srv, r.meter, r.traffic),
		Meter:    r.meter,
		Traffic:  r.traffic,
	})
	if err != nil {
		t.Fatal(err)
	}
	r.eng = eng
	return r
}

func randBytes(seed int64, n int) []byte {
	p := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(p)
	return p
}

func TestFullFileUpload(t *testing.T) {
	r := newRig(t)
	content := randBytes(1, 200<<10)
	fs := r.eng.FS()
	fs.Create("f")
	fs.WriteAt("f", 0, content)
	fs.Close("f")
	r.eng.Tick(10 * time.Second)
	if err := r.eng.Drain(); err != nil {
		t.Fatal(err)
	}
	got, ok := r.srv.FileContent("f")
	if !ok || !bytes.Equal(got, content) {
		t.Fatal("content not synced")
	}
	if up := r.traffic.Uploaded(); up < int64(len(content)) {
		t.Fatalf("uploaded %d < file size %d: Dropsync ships whole files", up, len(content))
	}
}

func TestEverySyncShipsWholeFile(t *testing.T) {
	// 1-byte change to a seeded file: the whole file travels again.
	r := newRig(t)
	content := randBytes(2, 500<<10)
	r.backing.Create("f")
	r.backing.WriteAt("f", 0, content)
	r.srv.SeedFile("f", content)
	if err := r.eng.Prime(); err != nil {
		t.Fatal(err)
	}

	r.eng.FS().WriteAt("f", 100, []byte{1})
	r.eng.FS().Close("f")
	r.eng.Tick(time.Hour)
	if err := r.eng.Drain(); err != nil {
		t.Fatal(err)
	}
	if up := r.traffic.Uploaded(); up < int64(len(content)) {
		t.Fatalf("uploaded %d for a 1-byte change; no delta encoding exists here", up)
	}
}

func TestBandwidthBatching(t *testing.T) {
	// While an upload occupies the link, further modifications coalesce:
	// fewer sync cycles than modifications.
	r := newRig(t)
	fs := r.eng.FS()
	fs.Create("f")
	now := time.Duration(0)
	const mods = 20
	for i := 0; i < mods; i++ {
		fs.WriteAt("f", int64(i)*500<<10, randBytes(int64(i), 500<<10))
		fs.Close("f")
		now += 1200 * time.Millisecond // faster than the link drains the growing file
		r.eng.Tick(now)
	}
	if err := r.eng.Drain(); err != nil {
		t.Fatal(err)
	}
	if c := r.eng.SyncCycles(); c >= mods {
		t.Fatalf("cycles = %d, want < %d (bandwidth batching)", c, mods)
	}
	if c := r.eng.SyncCycles(); c == 0 {
		t.Fatal("no sync cycles at all")
	}
	// Final state still converges.
	local, _ := r.backing.ReadFile("f")
	remote, _ := r.srv.FileContent("f")
	if !bytes.Equal(local, remote) {
		t.Fatal("content diverged under batching")
	}
}

func TestMetadataDownloads(t *testing.T) {
	r := newRig(t)
	fs := r.eng.FS()
	fs.Create("f")
	fs.WriteAt("f", 0, []byte("x"))
	fs.Close("f")
	r.eng.Tick(time.Hour)
	if err := r.eng.Drain(); err != nil {
		t.Fatal(err)
	}
	if down := r.traffic.Downloaded(); down < MetadataPerCycle {
		t.Fatalf("downloaded %d; metadata poll missing", down)
	}
}

func TestMobileMeterScale(t *testing.T) {
	r := newRig(t)
	fs := r.eng.FS()
	fs.Create("f")
	fs.WriteAt("f", 0, randBytes(3, 1<<20))
	fs.Close("f")
	r.eng.Tick(time.Hour)
	r.eng.Drain()
	if r.meter.Platform() != metrics.Mobile {
		t.Fatal("meter not mobile")
	}
	if r.meter.NanoTicks() == 0 {
		t.Fatal("no CPU charged")
	}
}

func TestRenameAndUnlinkPropagate(t *testing.T) {
	r := newRig(t)
	r.backing.Create("a")
	r.backing.WriteAt("a", 0, []byte("x"))
	r.srv.SeedFile("a", []byte("x"))
	if err := r.eng.Prime(); err != nil {
		t.Fatal(err)
	}
	fs := r.eng.FS()
	fs.Rename("a", "b")
	r.eng.Tick(time.Hour)
	r.eng.Drain()
	if _, ok := r.srv.FileContent("a"); ok {
		t.Fatal("a survives rename")
	}
	if _, ok := r.srv.FileContent("b"); !ok {
		t.Fatal("b missing after rename")
	}
	fs.Unlink("b")
	r.eng.Tick(2 * time.Hour)
	r.eng.Drain()
	if _, ok := r.srv.FileContent("b"); ok {
		t.Fatal("b survives unlink")
	}
}

// Package dropsync implements the Dropsync baseline [24]: the third-party
// auto-sync client for Dropbox on Android that the paper uses for the
// mobile experiments. Dropsync has no delta encoding at all — every time a
// watched file changes, the whole file is re-read and re-uploaded. On a
// mobile WAN link the uploads are slow, so changes arriving while an upload
// is in flight coalesce ("it only completed limited numbers of sync
// actions, which has the effect of batching file updates"), and every sync
// cycle also pulls account metadata, which is where Dropsync's nonzero
// download traffic in Fig 9(b) comes from.
package dropsync

import (
	"fmt"
	"time"

	"repro/internal/baseline"
	"repro/internal/metrics"
	"repro/internal/version"
	"repro/internal/vfs"
	"repro/internal/wire"
)

// DefaultBandwidth is the modelled mobile upload bandwidth (bytes/second).
const DefaultBandwidth = 1500 * 1024

// MetadataPerCycle is the account-metadata download per sync cycle.
const MetadataPerCycle = 96 << 10

// Config configures the engine.
type Config struct {
	Backing   vfs.FS
	Endpoint  wire.Endpoint
	Meter     *metrics.CPUMeter
	Traffic   *metrics.TrafficMeter // for the metadata download accounting
	Debounce  time.Duration
	Bandwidth int64 // upload bytes/second
}

// Engine is the Dropsync-like client.
type Engine struct {
	cfg   Config
	obs   *vfs.ObserverFS
	ep    wire.Endpoint
	meter *metrics.CPUMeter

	dirty   *baseline.Dirty
	deleted map[string]bool
	renames []rename
	synced  map[string]bool
	counter *version.Counter
	vers    *version.Map

	busyUntil time.Duration
	now       time.Duration
	pushErr   error
	cycles    int
}

type rename struct{ from, to string }

// New builds the engine and registers with the cloud.
func New(cfg Config) (*Engine, error) {
	if cfg.Debounce <= 0 {
		cfg.Debounce = baseline.DefaultDebounce
	}
	if cfg.Bandwidth <= 0 {
		cfg.Bandwidth = DefaultBandwidth
	}
	id, err := cfg.Endpoint.Register()
	if err != nil {
		return nil, fmt.Errorf("dropsync: register: %w", err)
	}
	e := &Engine{
		cfg:     cfg,
		obs:     vfs.NewObserverFS(cfg.Backing),
		ep:      cfg.Endpoint,
		meter:   cfg.Meter,
		dirty:   baseline.NewDirty(),
		deleted: make(map[string]bool),
		synced:  make(map[string]bool),
		counter: version.NewCounter(id),
		vers:    version.NewMap(),
	}
	e.obs.Subscribe(vfs.ObserverFunc(e.onOp))
	return e, nil
}

// FS implements trace.Target.
func (e *Engine) FS() vfs.FS { return e.obs }

// Prime records the seed state as already synced.
func (e *Engine) Prime() error {
	paths, err := e.cfg.Backing.List("")
	if err != nil {
		return err
	}
	for _, p := range paths {
		e.synced[p] = true
		if v, ok, err := e.ep.Head(p); err == nil && ok {
			e.vers.Set(p, v)
		}
	}
	return nil
}

// SyncCycles reports how many upload cycles completed (the batching effect
// shows as far fewer cycles than file modifications).
func (e *Engine) SyncCycles() int { return e.cycles }

func (e *Engine) onOp(op vfs.Op) {
	switch op.Kind {
	case vfs.OpCreate, vfs.OpWrite, vfs.OpTruncate:
		e.dirty.Mark(op.Path, e.now)
		delete(e.deleted, op.Path)
	case vfs.OpLink:
		e.dirty.Mark(op.Dst, e.now)
	case vfs.OpRename:
		if e.synced[op.Path] {
			e.renames = append(e.renames, rename{from: op.Path, to: op.Dst})
			e.synced[op.Dst] = true
			delete(e.synced, op.Path)
		}
		e.dirty.Forget(op.Path)
		e.dirty.Mark(op.Dst, e.now)
	case vfs.OpUnlink:
		e.dirty.Forget(op.Path)
		if e.synced[op.Path] {
			e.deleted[op.Path] = true
			delete(e.synced, op.Path)
		}
	}
}

// Tick implements trace.Target: when the link is free and a file has
// quiesced, upload its full content; the link stays busy for size/bandwidth
// of logical time, batching any updates that arrive meanwhile.
func (e *Engine) Tick(now time.Duration) {
	e.now = now
	e.flushStructural()
	if now < e.busyUntil {
		return
	}
	for _, p := range baseline.OrderBySize(e.obs.Backing(), e.dirty.Ready(now, e.cfg.Debounce)) {
		if now < e.busyUntil {
			break // link saturated; remaining files batch into later cycles
		}
		e.syncFile(p, now)
	}
}

// Drain uploads everything pending regardless of the link.
func (e *Engine) Drain() error {
	e.flushStructural()
	for _, p := range e.dirty.Ready(1<<62-1, 0) {
		e.syncFile(p, e.busyUntil)
	}
	return e.pushErr
}

// LastPushError reports the most recent push failure.
func (e *Engine) LastPushError() error { return e.pushErr }

func (e *Engine) flushStructural() {
	var nodes []*wire.Node
	for _, r := range e.renames {
		n := &wire.Node{Kind: wire.NRename, Path: r.from, Dst: r.to,
			Base: e.vers.Get(r.from), Ver: e.counter.Next()}
		e.vers.Rename(r.from, r.to)
		e.vers.Set(r.to, n.Ver)
		nodes = append(nodes, n)
	}
	e.renames = nil
	for p := range e.deleted {
		nodes = append(nodes, &wire.Node{Kind: wire.NUnlink, Path: p, Base: e.vers.Get(p)})
		e.vers.Delete(p)
		delete(e.deleted, p)
	}
	if len(nodes) == 0 {
		return
	}
	if _, err := e.ep.Push(&wire.Batch{Nodes: nodes}); err != nil {
		e.pushErr = err
	}
}

// syncFile uploads the file's entire current content.
func (e *Engine) syncFile(path string, now time.Duration) {
	content, err := e.obs.Backing().ReadFile(path)
	if err != nil {
		e.dirty.Forget(path)
		return
	}
	// Whole-file read + upload: the CPU profile the paper measures for
	// Dropsync ("it has to load the file from disk and transmit the whole
	// file through network every time the file is modified").
	e.meter.DiskIO(int64(len(content)))
	e.meter.Copy(int64(len(content)))

	node := &wire.Node{Kind: wire.NFull, Path: path, Full: content,
		Base: e.vers.Get(path), Ver: e.counter.Next()}
	e.vers.Set(path, node.Ver)
	reply, err := e.ep.Push(&wire.Batch{Nodes: []*wire.Node{node}})
	if err != nil {
		e.pushErr = err
		return
	}
	if reply.Err != "" {
		e.pushErr = fmt.Errorf("dropsync: push: %s", reply.Err)
	}

	// Account-metadata poll accompanying the cycle.
	e.cfg.Traffic.Download(MetadataPerCycle)
	e.meter.Net(MetadataPerCycle)

	e.cycles++
	e.synced[path] = true
	e.dirty.Forget(path)
	if e.busyUntil < now {
		e.busyUntil = now
	}
	e.busyUntil += time.Duration(int64(len(content)) * int64(time.Second) / e.cfg.Bandwidth)
}

package baseline

import (
	"repro/internal/block"
	"repro/internal/wire"
)

// ChunkTracker is the client-side mirror of the cloud's bounded chunk store:
// it records which chunk hashes the server holds, inserting and evicting
// (FIFO, by bytes) in exactly the order the server does, so a hash the
// tracker reports as known is guaranteed still resident server-side.
type ChunkTracker struct {
	known  map[block.Strong]int64 // hash -> size
	fifo   []block.Strong
	bytes  int64
	budget int64
}

// NewChunkTracker returns a tracker with the protocol's chunk-store budget.
func NewChunkTracker() *ChunkTracker {
	return &ChunkTracker{
		known:  make(map[block.Strong]int64),
		budget: wire.ChunkStoreBudget,
	}
}

// Known reports whether the server still holds the chunk.
func (t *ChunkTracker) Known(h block.Strong) bool {
	_, ok := t.known[h]
	return ok
}

// Add records that the chunk was (or is about to be) stored server-side.
// Re-adding a resident chunk is a no-op, matching the server.
func (t *ChunkTracker) Add(h block.Strong, size int64) {
	if _, ok := t.known[h]; ok {
		return
	}
	t.known[h] = size
	t.fifo = append(t.fifo, h)
	t.bytes += size
	for t.bytes > t.budget && len(t.fifo) > 0 {
		old := t.fifo[0]
		t.fifo = t.fifo[1:]
		if sz, ok := t.known[old]; ok {
			t.bytes -= sz
			delete(t.known, old)
		}
	}
}

// Len returns the number of resident chunks.
func (t *ChunkTracker) Len() int { return len(t.known) }

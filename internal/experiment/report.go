package experiment

import (
	"encoding/json"
	"os"

	"repro/internal/filebench"
)

// Report is the machine-readable form of a benchall run: every table and
// figure number in one JSON document, so the perf trajectory can be tracked
// across revisions without scraping the human-oriented tables.
type Report struct {
	// Meta pins the report to the revision and machine that produced it.
	Meta *RunMeta `json:"meta,omitempty"`

	Scale float64 `json:"scale"`

	// MatrixPC and MatrixMobile are the Table II / Fig 8 / Fig 9 source
	// measurements, in the sweep's trace-major order.
	MatrixPC     []*Result `json:"matrix_pc,omitempty"`
	MatrixMobile []*Result `json:"matrix_mobile,omitempty"`

	Fig1   []Fig1Result        `json:"fig1,omitempty"`
	Fig2   *Fig2Result         `json:"fig2,omitempty"`
	Table3 []filebench.Result  `json:"table3,omitempty"`
	Table4 []ReliabilityResult `json:"table4,omitempty"`

	// Chaos is the fault-tolerance sweep: convergence and transport-retry
	// counters per fault profile (not a paper artifact; tracks the
	// robustness of the sync path across revisions).
	Chaos []ChaosResult `json:"chaos,omitempty"`

	// CrashStorm is the storage-fault sweep (-exp crashstorm): crash-point
	// exploration coverage per storage failure profile. Coverage counters are
	// reported for the trajectory; violations additionally fail the run.
	CrashStorm []CrashStormResult `json:"crashstorm,omitempty"`

	// Scaling is the multi-client throughput sweep: sharded vs global-lock
	// server push throughput per client count (not a paper artifact; tracks
	// the server's concurrency headroom across revisions).
	Scaling []ScalingResult `json:"scaling,omitempty"`

	// Load is the real-TCP load sweep (-exp loadsweep): striped applied log
	// vs 1-stripe baseline per client count, over actual loopback
	// connections through the bounded transport.
	Load []LoadResult `json:"load,omitempty"`

	// CommitWindows is the journal group-commit sweep that backs the
	// server's -commit-window default.
	CommitWindows []CommitWindowResult `json:"commit_windows,omitempty"`
}

// AddMatrix records the evaluation matrix in the report.
func (rep *Report) AddMatrix(m *Matrix) {
	rep.Scale = m.Scale
	rep.MatrixPC = m.PC
	rep.MatrixMobile = m.Mobile
}

// WriteFile writes the report as indented JSON.
func (rep *Report) WriteFile(path string) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

package experiment

import (
	"strings"
	"testing"
)

// TestCrashStormSweepShapes runs a one-seed sweep and checks every profile
// reports coverage and zero violations — the benchall -exp crashstorm path
// end to end, small enough for the default test run.
func TestCrashStormSweepShapes(t *testing.T) {
	rs, err := CrashStormSweep(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != len(stormProfiles)+1 {
		t.Fatalf("got %d rows, want %d profiles + composed", len(rs), len(stormProfiles))
	}
	byName := map[string]CrashStormResult{}
	for _, r := range rs {
		byName[r.Profile] = r
		if r.Runs != 1 {
			t.Errorf("%s: runs = %d, want 1", r.Profile, r.Runs)
		}
		if len(r.Violations) != 0 {
			t.Errorf("%s: violations: %v", r.Profile, r.Violations)
		}
		if r.Recoveries == 0 {
			t.Errorf("%s: no recoveries recorded", r.Profile)
		}
	}
	if byName["clean-crash"].CrashPoints == 0 {
		t.Error("clean-crash explored no crash points")
	}
	if byName["torn-writes"].TornPoints == 0 {
		t.Error("torn-writes explored no torn points")
	}
	if byName["fsync-fail"].FsyncPoints == 0 {
		t.Error("fsync-fail ran no live fsync failures")
	}
	if byName["nospace"].NoSpaceRuns == 0 {
		t.Error("nospace ran no ENOSPC runs")
	}
	if byName["net+storage"].Converged != 1 || byName["net+storage"].StorageCrashes == 0 {
		t.Errorf("net+storage: %+v", byName["net+storage"])
	}
	if err := CheckCrashStorm(rs); err != nil {
		t.Errorf("CheckCrashStorm on a clean sweep: %v", err)
	}

	// A synthetic violation must fail the check and name its profile.
	bad := append([]CrashStormResult{}, rs...)
	bad[0].Violations = []string{"clean-crash seed 1: synthetic"}
	err = CheckCrashStorm(bad)
	if err == nil || !strings.Contains(err.Error(), "clean-crash") {
		t.Errorf("CheckCrashStorm missed the violation: %v", err)
	}
}

package experiment

import (
	"fmt"
	"io"
	"math/rand"
	"text/tabwriter"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/filebench"
	"repro/internal/metrics"
	"repro/internal/version"
	"repro/internal/vfs"
	"repro/internal/wire"
)

// FSConfig is one column of Table III.
type FSConfig string

// The four file-system configurations of Table III.
const (
	CfgNative    FSConfig = "Native"
	CfgFUSE      FSConfig = "FUSE"
	CfgDeltaCFS  FSConfig = "DeltaCFS"
	CfgDeltaCFSc FSConfig = "DeltaCFSc"
)

// FSConfigs lists the Table III columns in order.
var FSConfigs = []FSConfig{CfgNative, CfgFUSE, CfgDeltaCFS, CfgDeltaCFSc}

// sinkEndpoint drops every upload — the paper's Table III methodology ("we
// drop the data dequeued from Sync Queue rather than sending them to the
// server, in order to eliminate the impact of limited network bandwidth").
type sinkEndpoint struct{}

func (sinkEndpoint) Register() (uint32, error) { return 1, nil }
func (sinkEndpoint) Push(b *wire.Batch) (*wire.PushReply, error) {
	return &wire.PushReply{Statuses: make([]wire.ApplyStatus, len(b.Nodes))}, nil
}
func (sinkEndpoint) Fetch(path string) (*wire.FetchReply, error) {
	return &wire.FetchReply{}, nil
}
func (sinkEndpoint) Head(path string) (version.ID, bool, error) {
	return version.ID{}, false, nil
}
func (sinkEndpoint) FetchRange(path string, off, n int64) ([]byte, error) { return nil, nil }
func (sinkEndpoint) Poll() ([]*wire.Batch, error)                         { return nil, nil }
func (sinkEndpoint) Close() error                                         { return nil }

// Table3 runs the three personalities against the four configurations.
// iterations controls workload length (the paper's runs are time-bound;
// 2000 iterations gives stable ratios).
func Table3(iterations int) ([]filebench.Result, error) {
	personalities := []filebench.Personality{
		filebench.Fileserver(iterations),
		filebench.Varmail(iterations),
		filebench.Webserver(iterations),
	}
	var out []filebench.Result
	for _, p := range personalities {
		for _, cfg := range FSConfigs {
			r, err := runTable3Cell(p, cfg)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", p.Name, cfg, err)
			}
			out = append(out, r)
		}
	}
	return out, nil
}

// Table3Cell runs a single (personality, configuration) cell. name is one
// of "Fileserver", "Varmail", "Webserver".
func Table3Cell(name string, cfg FSConfig, iterations int) (filebench.Result, error) {
	var p filebench.Personality
	switch name {
	case "Fileserver":
		p = filebench.Fileserver(iterations)
	case "Varmail":
		p = filebench.Varmail(iterations)
	case "Webserver":
		p = filebench.Webserver(iterations)
	default:
		return filebench.Result{}, fmt.Errorf("unknown personality %q", name)
	}
	return runTable3Cell(p, cfg)
}

func runTable3Cell(p filebench.Personality, cfg FSConfig) (filebench.Result, error) {
	backing := vfs.NewMemFS()
	meter := metrics.NewCPUMeter(metrics.PC)
	clk := &clock.Clock{}

	var fs vfs.FS
	var eng *core.Engine
	switch cfg {
	case CfgNative:
		fs = backing
	case CfgFUSE:
		// The FUSE passthrough: per-operation user/kernel double crossing,
		// no other work.
		obs := vfs.NewObserverFS(backing)
		obs.Subscribe(vfs.ObserverFunc(func(op vfs.Op) { meter.FSOp(1) }))
		fs = obs
	case CfgDeltaCFS, CfgDeltaCFSc:
		var err error
		eng, err = core.New(core.Config{
			Backing:   backing,
			Endpoint:  sinkEndpoint{},
			Clock:     clk,
			Meter:     meter,
			Checksums: cfg == CfgDeltaCFSc,
		})
		if err != nil {
			return filebench.Result{}, err
		}
		fs = eng
	default:
		return filebench.Result{}, fmt.Errorf("unknown config %q", cfg)
	}

	rng := rand.New(rand.NewSource(7))
	if p.Setup != nil {
		// Setup runs outside the measured window, directly on the backing
		// store (pre-existing state).
		if err := p.Setup(backing, rng); err != nil {
			return filebench.Result{}, err
		}
		if eng != nil && cfg == CfgDeltaCFSc {
			if err := eng.PrimeChecksums(); err != nil {
				return filebench.Result{}, err
			}
		}
	}

	acct := &filebench.Account{FS: fs, Model: filebench.DefaultDiskModel()}
	if eng != nil {
		acct.OnOp = func(elapsed time.Duration) {
			clk.Set(elapsed)
			eng.Tick(clk.Now())
		}
	}
	if err := p.Run(acct, rng); err != nil {
		return filebench.Result{}, err
	}
	if eng != nil {
		if err := eng.Drain(); err != nil {
			return filebench.Result{}, err
		}
	}
	return filebench.Measure(p, string(cfg), acct, meter.NanoTicks()), nil
}

// PrintTable3 renders the throughput table in the paper's layout.
func PrintTable3(w io.Writer, rs []filebench.Result) {
	fmt.Fprintln(w, "TABLE III: COMPARISON OF PERFORMANCE ON MICROBENCHMARKS (MB/s)")
	tw := tabwriter.NewWriter(w, 4, 0, 2, ' ', 0)
	fmt.Fprint(tw, "Workload")
	for _, cfg := range FSConfigs {
		fmt.Fprintf(tw, "\t%s", cfg)
	}
	fmt.Fprintln(tw)
	for _, name := range []string{"Fileserver", "Varmail", "Webserver"} {
		fmt.Fprint(tw, name)
		for _, cfg := range FSConfigs {
			for _, r := range rs {
				if r.Personality == name && r.Config == string(cfg) {
					fmt.Fprintf(tw, "\t%.1f", r.MBps)
				}
			}
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}

package experiment

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"text/tabwriter"
	"time"

	"repro/internal/baseline/dropbox"
	"repro/internal/baseline/seafile"
	"repro/internal/cdc"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/server"
	"repro/internal/vfs"
	"repro/internal/wire"
)

// ReliabilityResult is one row of Table IV.
type ReliabilityResult struct {
	System System
	// Corrupted: what happens to disk-corrupted data — "upload" (propagated
	// to the cloud) or "detect".
	Corrupted string
	// Inconsistent: what happens to crash-inconsistent data — "upload/omit"
	// or "detect".
	Inconsistent string
	// Causal: is the update order preserved when uploading ("Y"/"N").
	Causal string
}

// relRig is a fresh (system, server) pair for a reliability scenario.
type relRig struct {
	backing *vfs.MemFS
	srv     *server.Server
	clk     *clock.Clock
	tgt     target
	fs      vfs.FS
	eng     *core.Engine // non-nil for DeltaCFS
	mk      func(r *relRig) error
}

func newRelRig(sys System) (*relRig, error) {
	r := &relRig{
		backing: vfs.NewMemFS(),
		srv:     server.New(nil),
		clk:     &clock.Clock{},
	}
	mk := func(r *relRig) error {
		ep := server.NewLoopback(r.srv, nil, nil)
		switch sys {
		case SysDeltaCFS:
			eng, err := core.New(core.Config{
				Backing: r.backing, Endpoint: ep, Clock: r.clk, Checksums: true,
			})
			if err != nil {
				return err
			}
			if err := eng.PrimeChecksums(); err != nil {
				return err
			}
			r.eng, r.tgt = eng, eng
		case SysDropbox:
			e, err := dropbox.New(dropbox.Config{Backing: r.backing, Endpoint: ep})
			if err != nil {
				return err
			}
			if err := e.Prime(r.srv.SeedChunk); err != nil {
				return err
			}
			r.eng, r.tgt = nil, e
		case SysSeafile:
			e, err := seafile.New(seafile.Config{Backing: r.backing, Endpoint: ep,
				Chunking: cdc.Config{MinSize: 16 << 10, AvgSize: 64 << 10, MaxSize: 256 << 10}})
			if err != nil {
				return err
			}
			if err := e.Prime(func(c cdc.Chunk, data []byte) { r.srv.SeedChunk(c.Hash, data) }); err != nil {
				return err
			}
			r.eng, r.tgt = nil, e
		default:
			return fmt.Errorf("reliability: unsupported system %s", sys)
		}
		r.fs = r.tgt.FS()
		return nil
	}
	r.mk = mk
	if err := mk(r); err != nil {
		return nil, err
	}
	return r, nil
}

// restart models a client restart: the engine process is replaced; only its
// persistent state (for DeltaCFS, the checksum kvstore would persist — the
// scenario keeps the same engine and drops volatile state instead; for the
// baselines a fresh engine re-primed from local+cloud state).
func (r *relRig) restart() error {
	if r.eng != nil {
		r.eng.DropVolatileState()
		return nil
	}
	return r.mk(r)
}

func (r *relRig) settle() error {
	r.clk.Advance(time.Minute)
	r.tgt.Tick(r.clk.Now())
	if err := r.tgt.Drain(); err != nil {
		return err
	}
	return r.tgt.LastPushError()
}

// corruptionScenario reproduces the paper's data-corruption experiment:
// flip a bit in a synced file, restart the client, write one byte, and see
// whether the corruption reaches the cloud.
func corruptionScenario(sys System) (string, error) {
	r, err := newRelRig(sys)
	if err != nil {
		return "", err
	}
	content := make([]byte, 64<<10)
	rand.New(rand.NewSource(42)).Read(content)
	if err := r.fs.Create("victim"); err != nil {
		return "", err
	}
	if err := r.fs.WriteAt("victim", 0, content); err != nil {
		return "", err
	}
	if err := r.fs.Close("victim"); err != nil {
		return "", err
	}
	if err := r.settle(); err != nil {
		return "", err
	}

	const corruptOff = 20 << 10
	if err := faultinject.FlipBit(r.backing, "victim", corruptOff); err != nil {
		return "", err
	}
	if err := r.restart(); err != nil {
		return "", err
	}
	// Touch the file with a 1-byte write, as the paper does.
	if err := r.fs.WriteAt("victim", 100, []byte{0x5A}); err != nil {
		return "", err
	}
	if err := r.fs.Close("victim"); err != nil {
		return "", err
	}
	if err := r.settle(); err != nil {
		return "", err
	}

	srvContent, _ := r.srv.FileContent("victim")
	corruptedOnCloud := int64(len(srvContent)) > corruptOff &&
		srvContent[corruptOff] != content[corruptOff]
	if corruptedOnCloud {
		return "upload", nil
	}
	// DeltaCFS: confirm it actively detects (a read triggers verification).
	if r.eng != nil {
		if _, err := r.fs.ReadFile("victim"); err != nil {
			return "", err
		}
		if r.eng.Stats().Corruptions == 0 {
			return "silent", nil // corruption neither uploaded nor detected
		}
	}
	return "detect", nil
}

// inconsistencyScenario reproduces the crash-inconsistency experiment:
// a crash interrupts an update, data changes without metadata (torn write),
// and the question is whether the inconsistent content is uploaded.
func inconsistencyScenario(sys System) (string, error) {
	r, err := newRelRig(sys)
	if err != nil {
		return "", err
	}
	content := make([]byte, 64<<10)
	rand.New(rand.NewSource(43)).Read(content)
	if err := r.fs.Create("doc"); err != nil {
		return "", err
	}
	if err := r.fs.WriteAt("doc", 0, content); err != nil {
		return "", err
	}
	if err := r.fs.Close("doc"); err != nil {
		return "", err
	}
	if err := r.settle(); err != nil {
		return "", err
	}

	// New update in flight when the power goes out...
	if err := r.fs.WriteAt("doc", 0, []byte("committed part")); err != nil {
		return "", err
	}
	// ...leaving a torn write the file system's ordered journaling never
	// told anyone about.
	torn := make([]byte, 300)
	rand.New(rand.NewSource(44)).Read(torn)
	if err := faultinject.TornWrite(r.backing, "doc", 32<<10, torn); err != nil {
		return "", err
	}
	if err := r.restart(); err != nil {
		return "", err
	}

	if r.eng != nil {
		// DeltaCFS scans recently-modified files after the crash.
		rep, err := r.eng.CrashScan(false)
		if err != nil {
			return "", err
		}
		for _, p := range rep.Inconsistent {
			if p == "doc" {
				return "detect", nil
			}
		}
		return "silent", nil
	}

	// Baselines: whether they notice depends on further activity; touch
	// the file so they do (the paper's "upload" subcase).
	if err := r.fs.WriteAt("doc", 100, []byte{1}); err != nil {
		return "", err
	}
	if err := r.fs.Close("doc"); err != nil {
		return "", err
	}
	if err := r.settle(); err != nil {
		return "", err
	}
	srvContent, _ := r.srv.FileContent("doc")
	if int64(len(srvContent)) > 32<<10 && bytes.Equal(srvContent[32<<10:(32<<10)+300], torn) {
		return "upload/omit", nil
	}
	return "omit", nil
}

// causalScenario reproduces the upload-order experiment: files of different
// sizes created in order; does the cloud apply them in creation order?
func causalScenario(sys System) (string, error) {
	r, err := newRelRig(sys)
	if err != nil {
		return "", err
	}
	big := make([]byte, 8<<20)
	rand.New(rand.NewSource(45)).Read(big)
	// Big file first, then a small one — causal order says big arrives
	// first.
	if err := r.fs.Create("big.bin"); err != nil {
		return "", err
	}
	if err := r.fs.WriteAt("big.bin", 0, big); err != nil {
		return "", err
	}
	if err := r.fs.Close("big.bin"); err != nil {
		return "", err
	}
	if err := r.fs.Create("small.txt"); err != nil {
		return "", err
	}
	if err := r.fs.WriteAt("small.txt", 0, []byte("tiny")); err != nil {
		return "", err
	}
	if err := r.fs.Close("small.txt"); err != nil {
		return "", err
	}
	if err := r.settle(); err != nil {
		return "", err
	}

	for _, op := range r.srv.AppliedLog() {
		switch {
		case op.Path == "big.bin" && op.Kind != wire.NUnlink:
			return "Y", nil
		case op.Path == "small.txt":
			return "N", nil
		}
	}
	return "", fmt.Errorf("causal: neither file reached the server")
}

// Table4 runs all reliability scenarios for the three systems the paper
// compares.
func Table4() ([]ReliabilityResult, error) {
	var out []ReliabilityResult
	for _, sys := range []System{SysDropbox, SysSeafile, SysDeltaCFS} {
		corr, err := corruptionScenario(sys)
		if err != nil {
			return nil, fmt.Errorf("%s corruption: %w", sys, err)
		}
		inc, err := inconsistencyScenario(sys)
		if err != nil {
			return nil, fmt.Errorf("%s inconsistency: %w", sys, err)
		}
		causal, err := causalScenario(sys)
		if err != nil {
			return nil, fmt.Errorf("%s causal: %w", sys, err)
		}
		out = append(out, ReliabilityResult{
			System: sys, Corrupted: corr, Inconsistent: inc, Causal: causal,
		})
	}
	return out, nil
}

// PrintTable4 renders the reliability results in the paper's layout.
func PrintTable4(w io.Writer, rs []ReliabilityResult) {
	fmt.Fprintln(w, "TABLE IV: RESULTS OF RELIABILITY TESTS")
	tw := tabwriter.NewWriter(w, 4, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "Services\tCorrupted\tInconsistent\tCausal upload")
	for _, r := range rs {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\n", r.System, r.Corrupted, r.Inconsistent, r.Causal)
	}
	tw.Flush()
}

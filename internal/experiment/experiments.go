package experiment

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"text/tabwriter"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// Matrix holds the results of the main evaluation sweep: every PC system on
// every trace, plus the mobile systems, measured in one pass (the paper:
// "During measuring CPU consumption of different solutions using various
// traces, we also measured their data transmission"). Table II, Fig 8 and
// Fig 9 are different projections of this matrix.
type Matrix struct {
	Scale  float64
	PC     []*Result // PCSystems x Traces
	Mobile []*Result // MobileSystems x Traces
}

// matrixWorkers bounds the concurrent (system, trace) cells RunMatrix runs;
// 0 means GOMAXPROCS. A variable so tests can force a specific fan-out.
var matrixWorkers = 0

// RunMatrix executes the full sweep at the given trace scale. Cells are
// independent — each gets its own backing store, server, meters and freshly
// generated trace — so they run on a worker pool, filling index-addressed
// slots that reproduce the serial trace-major layout. The meters are
// deterministic (they charge for algorithmic work, not wall time), so the
// resulting tables are byte-identical to a serial sweep.
func RunMatrix(scale float64) (*Matrix, error) {
	m := &Matrix{Scale: scale}
	nTraces := len(Traces(scale))
	m.PC = make([]*Result, nTraces*len(PCSystems))
	m.Mobile = make([]*Result, nTraces*len(MobileSystems))

	type cell struct {
		out      []*Result
		slot     int
		traceIdx int
		sys      System
		platform metrics.Platform
	}
	var cells []cell
	for ti := 0; ti < nTraces; ti++ {
		for si, sys := range PCSystems {
			cells = append(cells, cell{m.PC, ti*len(PCSystems) + si, ti, sys, metrics.PC})
		}
	}
	for ti := 0; ti < nTraces; ti++ {
		for si, sys := range MobileSystems {
			cells = append(cells, cell{m.Mobile, ti*len(MobileSystems) + si, ti, sys, metrics.Mobile})
		}
	}

	workers := matrixWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	workers = min(workers, len(cells))
	jobs := make(chan cell)
	var wg sync.WaitGroup
	var errMu sync.Mutex
	var firstErr error
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range jobs {
				// Each cell generates its own trace objects: the generator
				// closures carry per-run state and must not be shared
				// across goroutines.
				r, err := RunTrace(c.sys, Traces(scale)[c.traceIdx], c.platform)
				if err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					continue
				}
				c.out[c.slot] = r
			}
		}()
	}
	for _, c := range cells {
		jobs <- c
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return m, nil
}

// find returns the result for (sys, trace) in rs, or nil.
func find(rs []*Result, sys System, traceName string) *Result {
	for _, r := range rs {
		if r.System == sys && r.Trace == traceName {
			return r
		}
	}
	return nil
}

var traceOrder = []string{"append", "random", "word", "wechat"}
var traceTitle = map[string]string{
	"append": "Append write", "random": "Random write",
	"word": "Word trace", "wechat": "WeChat trace",
}

// PrintTable2 renders the CPU-usage table in the paper's Table II layout.
// Dropbox's server is opaque (no server column); NFS client CPU runs in
// kernel callbacks (not measured) — both printed as "-", as in the paper.
func (m *Matrix) PrintTable2(w io.Writer) {
	fmt.Fprintln(w, "TABLE II: CPU USAGE OF DIFFERENT SYNC SOLUTIONS (unit: CPU tick)")
	fmt.Fprintf(w, "trace scale %.2f; first four rows PC, last two rows mobile\n", m.Scale)
	tw := tabwriter.NewWriter(w, 4, 0, 2, ' ', 0)
	fmt.Fprint(tw, "Solutions")
	for _, tn := range traceOrder {
		fmt.Fprintf(tw, "\t%s Cli\tSrv", traceTitle[tn])
	}
	fmt.Fprintln(tw)
	for _, sys := range PCSystems {
		fmt.Fprint(tw, string(sys))
		for _, tn := range traceOrder {
			r := find(m.PC, sys, tn)
			if r == nil {
				fmt.Fprint(tw, "\t-\t-")
				continue
			}
			cli := fmt.Sprint(r.ClientTicks)
			srv := fmt.Sprint(r.ServerTicks)
			if sys == SysDropbox {
				srv = "-" // opaque, as in the paper
			}
			if sys == SysNFS {
				cli = "-" // kernel callbacks, as in the paper
			}
			fmt.Fprintf(tw, "\t%s\t%s", cli, srv)
		}
		fmt.Fprintln(tw)
	}
	for _, sys := range MobileSystems {
		fmt.Fprintf(tw, "%s (mobile)", sys)
		for _, tn := range traceOrder {
			r := find(m.Mobile, sys, tn)
			if r == nil {
				fmt.Fprint(tw, "\t-\t-")
				continue
			}
			srv := fmt.Sprint(r.ServerTicks)
			if sys == SysDropsync {
				srv = "-"
			}
			fmt.Fprintf(tw, "\t%d\t%s", r.ClientTicks, srv)
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}

// PrintFig8 renders the PC network-traffic series (one sub-plot per trace).
func (m *Matrix) PrintFig8(w io.Writer) {
	fmt.Fprintln(w, "FIG 8: NETWORK TRAFFIC OF EXPERIMENTS ON PC (MB)")
	fmt.Fprintf(w, "trace scale %.2f\n", m.Scale)
	tw := tabwriter.NewWriter(w, 4, 0, 2, ' ', 0)
	for i, tn := range traceOrder {
		fmt.Fprintf(tw, "(%c) %s\tupload\tdownload\n", 'a'+i, traceTitle[tn])
		for _, sys := range PCSystems {
			r := find(m.PC, sys, tn)
			if r == nil {
				continue
			}
			fmt.Fprintf(tw, "  %s\t%.2f\t%.2f\n", sys, r.UploadMB, r.DownloadMB)
		}
	}
	tw.Flush()
}

// PrintFig9 renders the mobile network-traffic series.
func (m *Matrix) PrintFig9(w io.Writer) {
	fmt.Fprintln(w, "FIG 9: NETWORK TRAFFIC OF EXPERIMENTS ON MOBILE (MB)")
	fmt.Fprintf(w, "trace scale %.2f\n", m.Scale)
	tw := tabwriter.NewWriter(w, 4, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "(a) upload\tappend\trandom\tword\twechat")
	for _, sys := range MobileSystems {
		fmt.Fprintf(tw, "  %s", sys)
		for _, tn := range traceOrder {
			r := find(m.Mobile, sys, tn)
			fmt.Fprintf(tw, "\t%.2f", r.UploadMB)
		}
		fmt.Fprintln(tw)
	}
	fmt.Fprintln(tw, "(b) download\tappend\trandom\tword\twechat")
	for _, sys := range MobileSystems {
		fmt.Fprintf(tw, "  %s", sys)
		for _, tn := range traceOrder {
			r := find(m.Mobile, sys, tn)
			fmt.Fprintf(tw, "\t%.2f", r.DownloadMB)
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}

// Fig1Result holds one client-resource measurement of Fig 1.
type Fig1Result struct {
	System   System
	Workload string // "word" (12 MB, 23 saves) or "wechat" (130 MB SQLite)
	Ticks    int64
	UploadMB float64
}

// Fig1 measures client resource consumption for the motivation figure:
// Dropbox vs Seafile on the Fig 1 Word and SQLite workloads.
func Fig1(scale float64) ([]Fig1Result, error) {
	workloads := []struct {
		name string
		tr   *trace.Trace
	}{
		{"word", trace.Word(trace.Fig1WordConfig().Scaled(scale))},
		{"wechat", trace.WeChat(trace.Fig1WeChatConfig().Scaled(scale))},
	}
	var out []Fig1Result
	for _, wl := range workloads {
		for _, sys := range []System{SysDropbox, SysSeafile} {
			r, err := RunTrace(sys, wl.tr, metrics.PC)
			if err != nil {
				return nil, err
			}
			out = append(out, Fig1Result{
				System: sys, Workload: wl.name,
				Ticks: r.ClientTicks, UploadMB: r.UploadMB,
			})
		}
	}
	return out, nil
}

// PrintFig1 renders the Fig 1 measurements.
func PrintFig1(w io.Writer, rs []Fig1Result) {
	fmt.Fprintln(w, "FIG 1: CLIENT RESOURCE CONSUMPTION (Dropbox vs Seafile)")
	tw := tabwriter.NewWriter(w, 4, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "workload\tsystem\tclient CPU ticks\tupload MB")
	for _, r := range rs {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%.2f\n", r.Workload, r.System, r.Ticks, r.UploadMB)
	}
	tw.Flush()
}

// Fig2Result summarizes Dropsync syncing WeChat data on mobile.
type Fig2Result struct {
	UploadMB   float64
	DownloadMB float64
	UpdateMB   float64
	TUE        float64
	Ticks      int64
	Cycles     int64
}

// Fig2 reproduces the Dropsync/WeChat motivation measurement.
func Fig2(scale float64) (*Fig2Result, error) {
	tr := trace.WeChat(trace.PaperWeChatConfig().Scaled(scale))
	r, err := RunTrace(SysDropsync, tr, metrics.Mobile)
	if err != nil {
		return nil, err
	}
	return &Fig2Result{
		UploadMB:   r.UploadMB,
		DownloadMB: r.DownloadMB,
		UpdateMB:   float64(r.UpdateBytes) / (1 << 20),
		TUE:        r.TUE,
		Ticks:      r.ClientTicks,
	}, nil
}

// PrintFig2 renders the Fig 2 measurement.
func PrintFig2(w io.Writer, r *Fig2Result) {
	fmt.Fprintln(w, "FIG 2: SYNCHRONIZING WECHAT DATA THROUGH DROPSYNC (mobile)")
	fmt.Fprintf(w, "  total traffic  %.2f MB up / %.2f MB down\n", r.UploadMB, r.DownloadMB)
	fmt.Fprintf(w, "  data update    %.2f MB\n", r.UpdateMB)
	fmt.Fprintf(w, "  TUE            %.1f\n", r.TUE)
	fmt.Fprintf(w, "  client CPU     %d ticks\n", r.Ticks)
}

package experiment

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"sync"
	"text/tabwriter"
	"time"

	"repro/internal/server"
	"repro/internal/version"
	"repro/internal/wire"
)

// ScalingResult is one row of the multi-client throughput sweep: N clients
// pushing concurrently against the sharded server versus the same workload
// against the 1-shard (global-lock) configuration. Unlike the paper tables
// these are wall-clock numbers: they vary run to run and with core count,
// which is why the sweep is opt-in (-exp scaling) rather than part of "all".
type ScalingResult struct {
	Clients int `json:"clients"`
	// Ops is the total number of pushes across all clients.
	Ops int `json:"ops"`

	ShardedOpsPerSec float64 `json:"sharded_ops_per_sec"`
	ShardedP50Micros float64 `json:"sharded_p50_micros"`
	ShardedP99Micros float64 `json:"sharded_p99_micros"`

	GlobalOpsPerSec float64 `json:"global_ops_per_sec"`
	GlobalP50Micros float64 `json:"global_p50_micros"`
	GlobalP99Micros float64 `json:"global_p99_micros"`

	// Speedup is sharded over global-lock throughput.
	Speedup float64 `json:"speedup"`
}

// scalingRun drives opsPerClient pushes from each of n concurrent clients
// against srv and returns elapsed wall time plus every push latency. Each
// client writes its own path universe (the no-false-sharing case striping is
// designed for) and drains its forwarding outbox every 32 pushes, as a real
// sync client would.
func scalingRun(srv *server.Server, n, opsPerClient int) (time.Duration, []time.Duration) {
	const pathsPerClient = 8
	ids := make([]uint32, n)
	for i := range ids {
		ids[i] = srv.Register()
	}
	payloads := make([][]byte, 16)
	r := rand.New(rand.NewSource(42))
	for i := range payloads {
		payloads[i] = make([]byte, 1024)
		r.Read(payloads[i])
	}

	lats := make([][]time.Duration, n)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < n; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			ctr := version.NewCounter(ids[c])
			vers := make([]version.ID, pathsPerClient)
			lats[c] = make([]time.Duration, 0, opsPerClient)
			for i := 0; i < opsPerClient; i++ {
				p := i % pathsPerClient
				n := &wire.Node{
					Kind: wire.NFull,
					Path: fmt.Sprintf("c%d/f%d", ids[c], p),
					Base: vers[p],
					Ver:  ctr.Next(),
					Full: payloads[i%len(payloads)],
				}
				vers[p] = n.Ver
				b := &wire.Batch{Client: ids[c], Seq: uint64(i + 1), Nodes: []*wire.Node{n}}
				t0 := time.Now()
				srv.Push(ids[c], b)
				lats[c] = append(lats[c], time.Since(t0))
				if i%32 == 31 {
					srv.Poll(ids[c])
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	return elapsed, all
}

func percentileMicros(lats []time.Duration, p float64) float64 {
	if len(lats) == 0 {
		return 0
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	idx := int(p * float64(len(lats)-1))
	return float64(lats[idx]) / float64(time.Microsecond)
}

// ScalingSweep measures push throughput and latency for each client count,
// on the sharded server and on the 1-shard global-lock baseline.
func ScalingSweep(clientCounts []int, opsPerClient int) ([]ScalingResult, error) {
	if opsPerClient <= 0 {
		opsPerClient = 1500
	}
	var out []ScalingResult
	for _, n := range clientCounts {
		if n <= 0 {
			return nil, fmt.Errorf("scaling: invalid client count %d", n)
		}
		row := ScalingResult{Clients: n, Ops: n * opsPerClient}

		elapsed, lats := scalingRun(server.New(nil), n, opsPerClient)
		row.ShardedOpsPerSec = float64(row.Ops) / elapsed.Seconds()
		row.ShardedP50Micros = percentileMicros(lats, 0.50)
		row.ShardedP99Micros = percentileMicros(lats, 0.99)

		elapsed, lats = scalingRun(server.NewWithShards(nil, 1), n, opsPerClient)
		row.GlobalOpsPerSec = float64(row.Ops) / elapsed.Seconds()
		row.GlobalP50Micros = percentileMicros(lats, 0.50)
		row.GlobalP99Micros = percentileMicros(lats, 0.99)

		if row.GlobalOpsPerSec > 0 {
			row.Speedup = row.ShardedOpsPerSec / row.GlobalOpsPerSec
		}
		out = append(out, row)
	}
	return out, nil
}

// PrintScaling renders the sweep as a table.
func PrintScaling(w io.Writer, rs []ScalingResult) {
	fmt.Fprintln(w, "Multi-client push throughput: sharded server vs global-lock (1-shard) baseline")
	fmt.Fprintln(w, "(wall-clock; scales with available cores — on a single-core host expect ~1x)")
	tw := tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "clients\tsharded ops/s\tp50 us\tp99 us\tglobal ops/s\tp50 us\tp99 us\tspeedup")
	for _, r := range rs {
		fmt.Fprintf(tw, "%d\t%.0f\t%.1f\t%.1f\t%.0f\t%.1f\t%.1f\t%.2fx\n",
			r.Clients, r.ShardedOpsPerSec, r.ShardedP50Micros, r.ShardedP99Micros,
			r.GlobalOpsPerSec, r.GlobalP50Micros, r.GlobalP99Micros, r.Speedup)
	}
	tw.Flush()
}

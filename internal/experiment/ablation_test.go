package experiment

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/baseline/dropbox"
	"repro/internal/cdc"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/rsync"
	"repro/internal/server"
	"repro/internal/trace"
	"repro/internal/vfs"
)

// Ablations for the design choices DESIGN.md calls out: the bitwise-compare
// local rsync (§III-A), the adaptive delta triggering, the CDC chunk-size
// trade-off (§II-A), and the Sync Queue upload delay (§III-B). Each is a
// benchmark (regenerable measurement) plus, where the claim is directional,
// a test asserting the direction.

func ablationRandBytes(seed int64, n int) []byte {
	p := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(p)
	return p
}

// BenchmarkAblationLocalVsRemoteRsync quantifies §III-A's "use bitwise
// comparison to replace strong checksum": same inputs, both rsync modes.
func BenchmarkAblationLocalVsRemoteRsync(b *testing.B) {
	base := ablationRandBytes(1, 8<<20)
	target := append([]byte(nil), base...)
	copy(target[1<<20:(1<<20)+4096], ablationRandBytes(2, 4096))

	b.Run("remote-md5", func(b *testing.B) {
		meter := metrics.NewCPUMeter(metrics.PC)
		b.SetBytes(int64(len(target)))
		for i := 0; i < b.N; i++ {
			sig := rsync.Signature(base, 4096, meter)
			if _, err := rsync.DeltaRemote(sig, target, meter); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(meter.Ticks())/float64(b.N), "cpu-ticks/op")
	})
	b.Run("local-bitwise", func(b *testing.B) {
		meter := metrics.NewCPUMeter(metrics.PC)
		b.SetBytes(int64(len(target)))
		for i := 0; i < b.N; i++ {
			rsync.DeltaLocal(base, target, 4096, meter)
		}
		b.ReportMetric(float64(meter.Ticks())/float64(b.N), "cpu-ticks/op")
	})
}

func TestAblationLocalRsyncCheaper(t *testing.T) {
	base := ablationRandBytes(3, 4<<20)
	target := append([]byte(nil), base...)
	copy(target[2<<20:], ablationRandBytes(4, 2048))

	remote := metrics.NewCPUMeter(metrics.PC)
	sig := rsync.Signature(base, 4096, remote)
	if _, err := rsync.DeltaRemote(sig, target, remote); err != nil {
		t.Fatal(err)
	}
	local := metrics.NewCPUMeter(metrics.PC)
	rsync.DeltaLocal(base, target, 4096, local)

	if local.NanoTicks()*2 > remote.NanoTicks() {
		t.Errorf("local rsync %d nanoticks vs remote %d: want >= 2x saving",
			local.NanoTicks(), remote.NanoTicks())
	}
}

// BenchmarkAblationDeltaTriggers compares full DeltaCFS against the pure
// NFS-RPC engine (DisableDelta) on the Word trace: the relation table's
// whole value is the upload difference here.
func BenchmarkAblationDeltaTriggers(b *testing.B) {
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"adaptive", false}, {"rpc-only", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var upMB float64
			for i := 0; i < b.N; i++ {
				r, err := runDeltaCFSVariant(trace.Word(trace.PaperWordConfig().Scaled(0.1)),
					func(c *core.Config) { c.DisableDelta = mode.disable })
				if err != nil {
					b.Fatal(err)
				}
				upMB = r.upMB
			}
			b.ReportMetric(upMB, "upload-MB/op")
		})
	}
}

func TestAblationDeltaTriggersSaveTraffic(t *testing.T) {
	tr := func() *trace.Trace { return trace.Word(trace.PaperWordConfig().Scaled(0.05)) }
	adaptive, err := runDeltaCFSVariant(tr(), nil)
	if err != nil {
		t.Fatal(err)
	}
	rpcOnly, err := runDeltaCFSVariant(tr(), func(c *core.Config) { c.DisableDelta = true })
	if err != nil {
		t.Fatal(err)
	}
	// Without triggers every save uploads the full rewrite.
	if rpcOnly.upMB < 4*adaptive.upMB {
		t.Errorf("rpc-only %.2f MB vs adaptive %.2f MB: triggers save less than 4x",
			rpcOnly.upMB, adaptive.upMB)
	}
}

type variantResult struct {
	upMB  float64
	ticks int64
}

// runDeltaCFSVariant replays tr through a DeltaCFS engine with the given
// config mutation.
func runDeltaCFSVariant(tr *trace.Trace, mutate func(*core.Config)) (*variantResult, error) {
	backing := vfs.NewMemFS()
	if tr.Setup != nil {
		if err := tr.Setup(backing); err != nil {
			return nil, err
		}
	}
	srv := server.New(nil)
	paths, err := backing.List("")
	if err != nil {
		return nil, err
	}
	for _, p := range paths {
		content, err := backing.ReadFile(p)
		if err != nil {
			return nil, err
		}
		srv.SeedFile(p, content)
	}
	meter := metrics.NewCPUMeter(metrics.PC)
	traffic := &metrics.TrafficMeter{}
	clk := &clock.Clock{}
	cfg := core.Config{
		Backing:  backing,
		Endpoint: server.NewLoopback(srv, meter, traffic),
		Clock:    clk,
		Meter:    meter,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	eng, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	if err := trace.Replay(tr, eng, clk); err != nil {
		return nil, err
	}
	if err := eng.Drain(); err != nil {
		return nil, err
	}
	if err := eng.LastPushError(); err != nil {
		return nil, err
	}
	return &variantResult{
		upMB:  float64(traffic.Uploaded()) / (1 << 20),
		ticks: meter.Ticks(),
	}, nil
}

// BenchmarkAblationChunkSize sweeps the CDC chunk size: Seafile's 1 MB
// against LBFS's 4 KB, the CPU/network trade-off §II-A describes.
func BenchmarkAblationChunkSize(b *testing.B) {
	data := ablationRandBytes(5, 32<<20)
	edited := append([]byte(nil), data...)
	copy(edited[10<<20:(10<<20)+1000], ablationRandBytes(6, 1000))

	for _, cs := range []struct {
		name string
		cfg  cdc.Config
	}{
		{"seafile-1MB", cdc.SeafileConfig()},
		{"lbfs-4KB", cdc.LBFSConfig()},
	} {
		b.Run(cs.name, func(b *testing.B) {
			meter := metrics.NewCPUMeter(metrics.PC)
			var missing int64
			for i := 0; i < b.N; i++ {
				store := cdc.NewStore()
				for _, c := range cdc.Split(data, cs.cfg, meter) {
					store.Add(c.Hash)
				}
				_, missing = store.MissingBytes(cdc.Split(edited, cs.cfg, meter))
			}
			b.ReportMetric(float64(missing)/(1<<20), "upload-MB/op")
			b.ReportMetric(float64(meter.Ticks())/float64(b.N), "cpu-ticks/op")
		})
	}
}

func TestAblationChunkSizeTradeoff(t *testing.T) {
	data := ablationRandBytes(7, 8<<20)
	edited := append([]byte(nil), data...)
	copy(edited[4<<20:(4<<20)+100], ablationRandBytes(8, 100))

	missingFor := func(cfg cdc.Config) int64 {
		store := cdc.NewStore()
		for _, c := range cdc.Split(data, cfg, nil) {
			store.Add(c.Hash)
		}
		_, missing := store.MissingBytes(cdc.Split(edited, cfg, nil))
		return missing
	}
	big := missingFor(cdc.SeafileConfig())
	small := missingFor(cdc.LBFSConfig())
	if small*4 > big {
		t.Errorf("4KB chunks upload %d, 1MB chunks %d: want >= 4x network saving from small chunks",
			small, big)
	}
}

// BenchmarkAblationUploadDelay sweeps the Sync Queue delay on the WeChat
// trace: longer delays give truncate elision and batching more opportunity.
func BenchmarkAblationUploadDelay(b *testing.B) {
	// time.Nanosecond stands in for "no delay": a zero UploadDelay would
	// fall back to the default.
	for _, d := range []time.Duration{time.Nanosecond, 3 * time.Second, 10 * time.Second} {
		b.Run(d.String(), func(b *testing.B) {
			var upMB float64
			for i := 0; i < b.N; i++ {
				r, err := runDeltaCFSVariant(trace.WeChat(trace.PaperWeChatConfig().Scaled(0.05)),
					func(c *core.Config) { c.UploadDelay = d })
				if err != nil {
					b.Fatal(err)
				}
				upMB = r.upMB
			}
			b.ReportMetric(upMB, "upload-MB/op")
		})
	}
}

func TestAblationDelayEnablesJournalElision(t *testing.T) {
	tr := func() *trace.Trace { return trace.WeChat(trace.PaperWeChatConfig().Scaled(0.03)) }
	// A tiny delay uploads the journal before its truncate supersedes it.
	instant, err := runDeltaCFSVariant(tr(), func(c *core.Config) { c.UploadDelay = time.Nanosecond })
	if err != nil {
		t.Fatal(err)
	}
	delayed, err := runDeltaCFSVariant(tr(), nil) // default 3 s
	if err != nil {
		t.Fatal(err)
	}
	if delayed.upMB >= instant.upMB {
		t.Errorf("delayed %.2f MB >= instant %.2f MB: delay buys no elision", delayed.upMB, instant.upMB)
	}
}

// BenchmarkAblationDropboxTuning reproduces the paper's tuning remark: the
// untuned Dropbox replay "transmits 5 times larger" on the Word trace
// because rsync never engages inside missed dedup blocks.
func BenchmarkAblationDropboxTuning(b *testing.B) {
	for _, mode := range []struct {
		name    string
		untuned bool
	}{{"tuned", false}, {"untuned", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var upMB float64
			for i := 0; i < b.N; i++ {
				r, err := runDropboxVariant(trace.Word(trace.PaperWordConfig().Scaled(0.1)), mode.untuned)
				if err != nil {
					b.Fatal(err)
				}
				upMB = r
			}
			b.ReportMetric(upMB, "upload-MB/op")
		})
	}
}

func TestAblationDropboxUntunedUploadsMore(t *testing.T) {
	tr := func() *trace.Trace { return trace.Word(trace.PaperWordConfig().Scaled(0.05)) }
	tuned, err := runDropboxVariant(tr(), false)
	if err != nil {
		t.Fatal(err)
	}
	untuned, err := runDropboxVariant(tr(), true)
	if err != nil {
		t.Fatal(err)
	}
	if untuned < tuned*1.2 {
		t.Errorf("untuned %.2f MB vs tuned %.2f MB: tuning gap missing", untuned, tuned)
	}
}

// runDropboxVariant replays tr through a Dropbox engine and returns MB
// uploaded.
func runDropboxVariant(tr *trace.Trace, untuned bool) (float64, error) {
	backing := vfs.NewMemFS()
	if tr.Setup != nil {
		if err := tr.Setup(backing); err != nil {
			return 0, err
		}
	}
	srv := server.New(nil)
	paths, err := backing.List("")
	if err != nil {
		return 0, err
	}
	for _, p := range paths {
		content, err := backing.ReadFile(p)
		if err != nil {
			return 0, err
		}
		srv.SeedFile(p, content)
	}
	traffic := &metrics.TrafficMeter{}
	eng, err := dropbox.New(dropbox.Config{
		Backing:  backing,
		Endpoint: server.NewLoopback(srv, nil, traffic),
		Untuned:  untuned,
	})
	if err != nil {
		return 0, err
	}
	if err := eng.Prime(srv.SeedChunk); err != nil {
		return 0, err
	}
	clk := &clock.Clock{}
	if err := trace.Replay(tr, eng, clk); err != nil {
		return 0, err
	}
	if err := eng.Drain(); err != nil {
		return 0, err
	}
	return float64(traffic.Uploaded()) / (1 << 20), nil
}

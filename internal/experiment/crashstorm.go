package experiment

import (
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/chaos"
	"repro/internal/faultinject"
)

// CrashStormResult is one row of the storage-fault sweep: the crash-point
// exploration harness run over a block of seeds with one failure mode
// enabled, plus the composed network+storage profile. Coverage counters are
// reported (how many crash points, torn points, fsync-failure runs the sweep
// actually explored); violations are both reported and fatal — a non-empty
// violation list is a recovery-invariant breach, not a perf regression.
type CrashStormResult struct {
	Profile string `json:"profile"`
	Runs    int    `json:"runs"`
	// CrashPoints / TornPoints / FsyncPoints / NoSpaceRuns total the explored
	// crash surface across the block's seeds.
	CrashPoints int `json:"crash_points"`
	TornPoints  int `json:"torn_points,omitempty"`
	FsyncPoints int `json:"fsync_points,omitempty"`
	NoSpaceRuns int `json:"nospace_runs,omitempty"`
	// Recoveries counts successful recover+re-push convergences.
	Recoveries int `json:"recoveries"`
	// Composed rows only: net-fault counters and convergence.
	Converged      int `json:"converged,omitempty"`
	StorageCrashes int `json:"storage_crashes,omitempty"`
	// Violations lists every invariant breach across the block (empty =
	// the profile passed; CheckCrashStorm fails the run otherwise).
	Violations []string `json:"violations,omitempty"`
}

// stormProfiles is the benchall sweep: one profile per storage failure mode
// plus the composed network+storage storm. Each runs over the same seed
// block so a violation names "<profile> seed N" reproducibly.
var stormProfiles = []struct {
	name string
	cfg  chaos.StormConfig
}{
	{name: "clean-crash", cfg: chaos.StormConfig{}},
	{name: "torn-writes", cfg: chaos.StormConfig{Torn: true}},
	{name: "fsync-fail", cfg: chaos.StormConfig{FsyncFailures: true}},
	{name: "nospace", cfg: chaos.StormConfig{NoSpace: true}},
}

// CrashStormSweep runs the crash-point exploration harness over seedsPerProfile
// seeds for every storage failure mode, then the composed network+storage
// profile. Coverage is reported; violations fail the run via CheckCrashStorm.
func CrashStormSweep(seedsPerProfile int) ([]CrashStormResult, error) {
	if seedsPerProfile <= 0 {
		seedsPerProfile = 5
	}
	var out []CrashStormResult
	for _, prof := range stormProfiles {
		row := CrashStormResult{Profile: prof.name}
		for seed := int64(1); seed <= int64(seedsPerProfile); seed++ {
			cfg := prof.cfg
			cfg.Seed = seed
			res, err := chaos.CrashStorm(cfg)
			if err != nil {
				return nil, fmt.Errorf("crashstorm %s seed %d: %w", prof.name, seed, err)
			}
			row.Runs++
			row.CrashPoints += res.CrashPoints
			row.TornPoints += res.TornPoints
			row.FsyncPoints += res.FsyncPoints
			row.NoSpaceRuns += res.NoSpaceRuns
			row.Recoveries += res.Recoveries
			for _, v := range res.Violations {
				row.Violations = append(row.Violations, fmt.Sprintf("%s seed %d: %s", prof.name, seed, v))
			}
		}
		out = append(out, row)
	}

	// Composed profile: storage crash mid-run under a lossy network, journal
	// replay as the only recovery path, resilient clients driving convergence.
	comp := CrashStormResult{Profile: "net+storage"}
	for seed := int64(1); seed <= int64(seedsPerProfile); seed++ {
		res, err := chaos.RunComposed(chaos.ComposedConfig{
			Seed:   seed,
			Faults: faultinject.NetFaultConfig{Seed: seed, DropProb: 0.05, PartialProb: 0.03},
		})
		if err != nil {
			return nil, fmt.Errorf("crashstorm net+storage seed %d: %w", seed, err)
		}
		comp.Runs++
		comp.StorageCrashes += res.StorageCrashes
		if res.Converged {
			comp.Converged++
			comp.Recoveries++
		} else {
			comp.Violations = append(comp.Violations,
				fmt.Sprintf("net+storage seed %d: did not converge: %s", seed, res.Mismatch))
		}
		if res.DuplicateApplies != 0 {
			comp.Violations = append(comp.Violations,
				fmt.Sprintf("net+storage seed %d: %d duplicate applies", seed, res.DuplicateApplies))
		}
	}
	out = append(out, comp)
	return out, nil
}

// CheckCrashStorm fails the run if any profile recorded a violation: unlike
// throughput, recovery invariants are asserted, not eyeballed.
func CheckCrashStorm(rs []CrashStormResult) error {
	for _, r := range rs {
		if len(r.Violations) > 0 {
			return fmt.Errorf("crashstorm %s: %d invariant violations, first: %s",
				r.Profile, len(r.Violations), r.Violations[0])
		}
	}
	return nil
}

// PrintCrashStorm renders the sweep as a table.
func PrintCrashStorm(w io.Writer, rs []CrashStormResult) {
	fmt.Fprintln(w, "Crash-storm sweep (every-prefix crash exploration across storage failure modes)")
	tw := tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "profile\truns\tcrash pts\ttorn pts\tfsync pts\tnospace\trecoveries\tviolations")
	for _, r := range rs {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
			r.Profile, r.Runs, r.CrashPoints, r.TornPoints, r.FsyncPoints,
			r.NoSpaceRuns, r.Recoveries, len(r.Violations))
	}
	tw.Flush()
	for _, r := range rs {
		for _, v := range r.Violations {
			fmt.Fprintf(w, "VIOLATION %s\n", v)
		}
	}
}

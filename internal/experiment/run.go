// Package experiment is the evaluation harness: it reproduces every table
// and figure of the paper's §IV by replaying the paper's traces through
// DeltaCFS and the baseline systems under identical conditions, collecting
// deterministic CPU ticks (internal/metrics) and wire-accurate traffic.
//
// The per-experiment entry points are:
//
//	Fig1, Fig2          – client resource consumption / Dropsync TUE
//	Table2 (+ Fig8/9)   – CPU and network for all systems on all traces
//	Table3              – local IO throughput (filebench personalities)
//	Table4              – reliability: corruption, crash, causal order
package experiment

import (
	"fmt"
	"time"

	"repro/internal/baseline/dropbox"
	"repro/internal/baseline/dropsync"
	"repro/internal/baseline/nfs"
	"repro/internal/baseline/seafile"
	"repro/internal/cdc"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/server"
	"repro/internal/trace"
	"repro/internal/vfs"
)

// System identifies a sync solution under test.
type System string

// The evaluated systems.
const (
	SysDropbox  System = "Dropbox"
	SysSeafile  System = "Seafile"
	SysNFS      System = "NFSv4"
	SysDeltaCFS System = "DeltaCFS"
	SysDropsync System = "Dropsync"
)

// PCSystems is the system set of the paper's PC experiments.
var PCSystems = []System{SysDropbox, SysSeafile, SysNFS, SysDeltaCFS}

// MobileSystems is the system set of the paper's mobile experiments.
var MobileSystems = []System{SysDropsync, SysDeltaCFS}

// Result is the measurement of one (system, trace, platform) run.
type Result struct {
	System   System
	Trace    string
	Platform metrics.Platform

	ClientTicks int64
	ServerTicks int64
	UploadMB    float64
	DownloadMB  float64
	TUE         float64

	UpdateBytes int64
	WriteBytes  int64
	Wall        time.Duration

	// DeltaTriggers and InPlaceDeltas are DeltaCFS-only counters.
	DeltaTriggers int
	InPlaceDeltas int

	ClientBreakdown map[string]int64
}

// target extends trace.Target with the draining the harness needs.
type target interface {
	trace.Target
	Drain() error
	LastPushError() error
}

// RunTrace replays tr through the given system and returns its measurements.
// The initial state (tr.Setup) is installed on both sides before measuring.
func RunTrace(sys System, tr *trace.Trace, platform metrics.Platform) (*Result, error) {
	backing := vfs.NewMemFS()
	if tr.Setup != nil {
		if err := tr.Setup(backing); err != nil {
			return nil, fmt.Errorf("setup: %w", err)
		}
	}

	clientMeter := metrics.NewCPUMeter(platform)
	serverMeter := metrics.NewCPUMeter(metrics.PC) // the cloud stays a PC
	traffic := &metrics.TrafficMeter{}
	srv := server.New(serverMeter)

	// Seed the server with the identical pre-sync state.
	paths, err := backing.List("")
	if err != nil {
		return nil, err
	}
	for _, p := range paths {
		content, err := backing.ReadFile(p)
		if err != nil {
			return nil, err
		}
		srv.SeedFile(p, content)
	}

	ep := server.NewLoopback(srv, clientMeter, traffic)
	clk := &clock.Clock{}

	var tgt target
	var eng *core.Engine
	switch sys {
	case SysDeltaCFS:
		eng, err = core.New(core.Config{
			Backing: backing, Endpoint: ep, Clock: clk, Meter: clientMeter,
		})
		tgt = eng
	case SysDropbox:
		var e *dropbox.Engine
		e, err = dropbox.New(dropbox.Config{Backing: backing, Endpoint: ep, Meter: clientMeter})
		if err == nil {
			err = e.Prime(srv.SeedChunk)
		}
		tgt = e
	case SysSeafile:
		var e *seafile.Engine
		e, err = seafile.New(seafile.Config{Backing: backing, Endpoint: ep, Meter: clientMeter})
		if err == nil {
			err = e.Prime(func(c cdc.Chunk, data []byte) { srv.SeedChunk(c.Hash, data) })
		}
		tgt = e
	case SysNFS:
		var e *nfs.Engine
		e, err = nfs.New(nfs.Config{Backing: backing, Endpoint: ep, Meter: clientMeter})
		if err == nil {
			err = e.Prime()
		}
		tgt = e
	case SysDropsync:
		var e *dropsync.Engine
		e, err = dropsync.New(dropsync.Config{
			Backing: backing, Endpoint: ep, Meter: clientMeter, Traffic: traffic,
		})
		if err == nil {
			err = e.Prime()
		}
		tgt = e
	default:
		return nil, fmt.Errorf("unknown system %q", sys)
	}
	if err != nil {
		return nil, fmt.Errorf("%s: %w", sys, err)
	}

	start := time.Now()
	if err := trace.Replay(tr, tgt, clk); err != nil {
		return nil, fmt.Errorf("%s on %s: %w", sys, tr.Name, err)
	}
	if err := tgt.Drain(); err != nil {
		return nil, fmt.Errorf("%s on %s: drain: %w", sys, tr.Name, err)
	}
	if err := tgt.LastPushError(); err != nil {
		return nil, fmt.Errorf("%s on %s: push: %w", sys, tr.Name, err)
	}
	wall := time.Since(start)

	res := &Result{
		System:          sys,
		Trace:           tr.Name,
		Platform:        platform,
		ClientTicks:     clientMeter.Ticks(),
		ServerTicks:     serverMeter.Ticks(),
		UploadMB:        float64(traffic.Uploaded()) / (1 << 20),
		DownloadMB:      float64(traffic.Downloaded()) / (1 << 20),
		TUE:             metrics.TUE(traffic.Uploaded()+traffic.Downloaded(), tr.UpdateBytes),
		UpdateBytes:     tr.UpdateBytes,
		WriteBytes:      tr.WriteBytes,
		Wall:            wall,
		ClientBreakdown: clientMeter.Breakdown(),
	}
	if eng != nil {
		st := eng.Stats()
		res.DeltaTriggers = st.DeltaTriggers
		res.InPlaceDeltas = st.InPlaceDeltas
	}
	return res, nil
}

// Traces returns the paper's four evaluation traces at the given scale
// (1.0 = the paper's dimensions).
func Traces(scale float64) []*trace.Trace {
	return []*trace.Trace{
		trace.Append(trace.PaperAppendConfig().Scaled(scale)),
		trace.Random(trace.PaperRandomConfig().Scaled(scale)),
		trace.Word(trace.PaperWordConfig().Scaled(scale)),
		trace.WeChat(trace.PaperWeChatConfig().Scaled(scale)),
	}
}

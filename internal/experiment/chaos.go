package experiment

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"repro/internal/chaos"
	"repro/internal/faultinject"
)

// ChaosResult is one row of the fault-tolerance sweep: a named fault
// profile replayed over several seeds, with the aggregated transport
// counters behind it.
type ChaosResult struct {
	Profile string `json:"profile"`
	Runs    int    `json:"runs"`
	// Converged counts runs whose faulty stack reached byte-identical server
	// state with the fault-free reference.
	Converged int `json:"converged"`
	// DuplicateApplies must stay zero: replayed ambiguous pushes absorbed by
	// the idempotency layer, never re-applied.
	DuplicateApplies int                       `json:"duplicate_applies"`
	Faults           faultinject.NetFaultStats `json:"faults"`
	Sync             chaosSyncTotals           `json:"sync"`
}

// chaosSyncTotals aggregates metrics.SyncStats across a profile's runs.
// Unlike the paper tables these counters are not byte-deterministic: how
// many retries and dedup hits a schedule produces depends on goroutine
// scheduling (e.g. whether a lingering server connection consumes a fault
// verdict before or after a retransmit lands).
type chaosSyncTotals struct {
	Retries         int64   `json:"retries"`
	Reconnects      int64   `json:"reconnects"`
	DedupHits       int64   `json:"dedup_hits"`
	DegradedSeconds float64 `json:"degraded_seconds"`
}

// chaosProfiles is the benchall sweep: one profile per fault dimension plus
// the combined storm, smaller than the test matrix but exercising the same
// convergence oracle.
var chaosProfiles = []struct {
	name      string
	faults    faultinject.NetFaultConfig
	checksums bool
}{
	{name: "drops", faults: faultinject.NetFaultConfig{DropProb: 0.08}},
	{name: "partial-writes", faults: faultinject.NetFaultConfig{PartialProb: 0.06, DropProb: 0.02}},
	{name: "corruption", faults: faultinject.NetFaultConfig{CorruptProb: 0.05}, checksums: true},
	{name: "partitions", faults: faultinject.NetFaultConfig{PartitionProb: 0.02, PartitionOps: 15}},
	{name: "everything", faults: faultinject.NetFaultConfig{
		DropProb: 0.03, StallProb: 0.02, StallDur: 200 * time.Microsecond,
		CorruptProb: 0.02, PartialProb: 0.02,
		PartitionProb: 0.01, PartitionOps: 10,
	}, checksums: true},
}

// ChaosSweep runs seedsPerProfile chaos schedules through every fault
// profile and aggregates per profile.
func ChaosSweep(seedsPerProfile int) ([]ChaosResult, error) {
	if seedsPerProfile <= 0 {
		seedsPerProfile = 5
	}
	var out []ChaosResult
	for _, prof := range chaosProfiles {
		row := ChaosResult{Profile: prof.name}
		for seed := int64(1); seed <= int64(seedsPerProfile); seed++ {
			res, err := chaos.Run(chaos.Config{
				Seed:      seed,
				Faults:    prof.faults,
				Checksums: prof.checksums,
			})
			if err != nil {
				return nil, fmt.Errorf("chaos %s seed %d: %w", prof.name, seed, err)
			}
			row.Runs++
			if res.Converged {
				row.Converged++
			}
			row.DuplicateApplies += res.DuplicateApplies
			row.Faults.Drops += res.Faults.Drops
			row.Faults.Stalls += res.Faults.Stalls
			row.Faults.Corruptions += res.Faults.Corruptions
			row.Faults.PartialWrites += res.Faults.PartialWrites
			row.Faults.Partitions += res.Faults.Partitions
			row.Faults.PartitionedOps += res.Faults.PartitionedOps
			row.Sync.Retries += res.Sync.Retries
			row.Sync.Reconnects += res.Sync.Reconnects
			row.Sync.DedupHits += res.Sync.DedupHits
			row.Sync.DegradedSeconds += res.Sync.DegradedSeconds
		}
		out = append(out, row)
	}
	return out, nil
}

// PrintChaos renders the sweep as a table.
func PrintChaos(w io.Writer, rs []ChaosResult) {
	fmt.Fprintln(w, "Fault-tolerance sweep (faulty stack vs fault-free reference)")
	tw := tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "profile\tconverged\tdup applies\tfaults\tretries\treconnects\tdedup hits\tdegraded s")
	for _, r := range rs {
		fmt.Fprintf(tw, "%s\t%d/%d\t%d\t%d\t%d\t%d\t%d\t%.1f\n",
			r.Profile, r.Converged, r.Runs, r.DuplicateApplies, r.Faults.Total(),
			r.Sync.Retries, r.Sync.Reconnects, r.Sync.DedupHits, r.Sync.DegradedSeconds)
	}
	tw.Flush()
}

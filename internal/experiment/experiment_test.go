package experiment

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// smokeScale keeps the full-matrix test fast; the shape assertions below
// hold at every scale (verified at 1.0 by the benchmark harness).
const smokeScale = 0.1

func TestMatrixShapes(t *testing.T) {
	m, err := RunMatrix(smokeScale)
	if err != nil {
		t.Fatal(err)
	}

	get := func(sys System, tn string) *Result {
		t.Helper()
		r := find(m.PC, sys, tn)
		if r == nil {
			t.Fatalf("missing result %s/%s", sys, tn)
		}
		return r
	}

	// Table II shape, artificial traces: Dropbox client CPU >> Seafile >>
	// DeltaCFS.
	for _, tn := range []string{"append", "random"} {
		db, sf, dc := get(SysDropbox, tn), get(SysSeafile, tn), get(SysDeltaCFS, tn)
		if !(db.ClientTicks > sf.ClientTicks && sf.ClientTicks > dc.ClientTicks) {
			t.Errorf("%s CPU ordering: dropbox %d, seafile %d, deltacfs %d",
				tn, db.ClientTicks, sf.ClientTicks, dc.ClientTicks)
		}
	}

	// WeChat: DeltaCFS CPU at least an order of magnitude below Dropbox.
	db, dc := get(SysDropbox, "wechat"), get(SysDeltaCFS, "wechat")
	if db.ClientTicks < 10*dc.ClientTicks {
		t.Errorf("wechat: dropbox %d ticks vs deltacfs %d — gap too small",
			db.ClientTicks, dc.ClientTicks)
	}

	// Server CPU: DeltaCFS server stays low (it only applies increments).
	for _, tn := range []string{"append", "random", "wechat"} {
		sf, dcr := get(SysSeafile, tn), get(SysDeltaCFS, tn)
		if dcr.ServerTicks > sf.ServerTicks*4 {
			t.Errorf("%s server: deltacfs %d vs seafile %d", tn, dcr.ServerTicks, sf.ServerTicks)
		}
	}

	// Fig 8 shapes.
	// (a) append: Dropbox, NFS and DeltaCFS upload ~the update size;
	// Seafile ships far more (1 MB chunks).
	ap := get(SysSeafile, "append")
	updMB := float64(ap.UpdateBytes) / (1 << 20)
	for _, sys := range []System{SysNFS, SysDeltaCFS} {
		r := get(sys, "append")
		if r.UploadMB > updMB*1.5+0.5 {
			t.Errorf("append %s upload %.2f MB vs update %.2f MB", sys, r.UploadMB, updMB)
		}
	}
	if ap.UploadMB < updMB*1.2 {
		t.Errorf("append seafile upload %.2f MB should exceed update %.2f MB", ap.UploadMB, updMB)
	}

	// (c) Word: NFS uploads the most and downloads nearly as much
	// (stale-handle refetch); DeltaCFS uploads the least; download ~0.
	nfsW, dbW, sfW, dcW := get(SysNFS, "word"), get(SysDropbox, "word"),
		get(SysSeafile, "word"), get(SysDeltaCFS, "word")
	if !(nfsW.UploadMB > sfW.UploadMB && sfW.UploadMB > dcW.UploadMB) {
		t.Errorf("word upload ordering: nfs %.1f, seafile %.1f, deltacfs %.1f",
			nfsW.UploadMB, sfW.UploadMB, dcW.UploadMB)
	}
	// At smoke scale the document fits in one 4 MB dedup block, so
	// Dropbox's rsync is nearly as effective as DeltaCFS's; the full
	// confinement penalty is asserted in TestWordShapeAtLargerScale.
	if dbW.UploadMB < dcW.UploadMB*0.8 {
		t.Errorf("word: dropbox %.2f far below deltacfs %.2f", dbW.UploadMB, dcW.UploadMB)
	}
	if nfsW.DownloadMB < nfsW.UploadMB/3 {
		t.Errorf("word NFS download %.1f vs upload %.1f: refetch missing",
			nfsW.DownloadMB, nfsW.UploadMB)
	}
	if dcW.DownloadMB > 0.5 {
		t.Errorf("word DeltaCFS download %.2f MB, want ~0", dcW.DownloadMB)
	}
	if dcW.DeltaTriggers == 0 {
		t.Error("word DeltaCFS: no delta triggers")
	}

	// (d) WeChat: Seafile worst; DeltaCFS near NFS; NFS has nonzero
	// download (fetch-before-write).
	sfC, nfsC, dcC := get(SysSeafile, "wechat"), get(SysNFS, "wechat"), get(SysDeltaCFS, "wechat")
	if sfC.UploadMB < 2*dcC.UploadMB {
		t.Errorf("wechat: seafile %.1f MB should dwarf deltacfs %.1f MB", sfC.UploadMB, dcC.UploadMB)
	}
	if nfsC.DownloadMB <= 0 {
		t.Error("wechat NFS download = 0; fetch-before-write missing")
	}
	if dcC.UploadMB > 3*float64(dcC.UpdateBytes)/(1<<20) {
		t.Errorf("wechat DeltaCFS upload %.1f MB vs update %.1f MB",
			dcC.UploadMB, float64(dcC.UpdateBytes)/(1<<20))
	}

	// Fig 9 / mobile: Dropsync uploads massively more than DeltaCFS.
	for _, tn := range []string{"append", "random"} {
		ds := find(m.Mobile, SysDropsync, tn)
		dcm := find(m.Mobile, SysDeltaCFS, tn)
		if ds == nil || dcm == nil {
			t.Fatalf("missing mobile results for %s", tn)
		}
		if ds.UploadMB < 1.5*dcm.UploadMB {
			t.Errorf("mobile %s: dropsync %.1f MB vs deltacfs %.1f MB", tn, ds.UploadMB, dcm.UploadMB)
		}
		if ds.ClientTicks < 2*dcm.ClientTicks {
			t.Errorf("mobile %s CPU: dropsync %d vs deltacfs %d", tn, ds.ClientTicks, dcm.ClientTicks)
		}
	}

	// Rendering must not panic and must mention every system.
	var buf bytes.Buffer
	m.PrintTable2(&buf)
	m.PrintFig8(&buf)
	m.PrintFig9(&buf)
	out := buf.String()
	for _, sys := range append(PCSystems, SysDropsync) {
		if !strings.Contains(out, string(sys)) {
			t.Errorf("report missing system %s", sys)
		}
	}
}

func TestWordShapeAtLargerScale(t *testing.T) {
	// At 40%% scale the document spans multiple 4 MB dedup blocks, so the
	// paper's Fig 8(c) gap appears: Dropbox's block-confined rsync plus
	// insertion shifts cost several times DeltaCFS's whole-file local
	// rsync.
	if testing.Short() {
		t.Skip("larger-scale word run")
	}
	tr := trace.Word(trace.PaperWordConfig().Scaled(0.4))
	db, err := RunTrace(SysDropbox, tr, metrics.PC)
	if err != nil {
		t.Fatal(err)
	}
	dc, err := RunTrace(SysDeltaCFS, tr, metrics.PC)
	if err != nil {
		t.Fatal(err)
	}
	if db.UploadMB < 2*dc.UploadMB {
		t.Errorf("word@0.4: dropbox %.1f MB vs deltacfs %.1f MB — confinement gap missing",
			db.UploadMB, dc.UploadMB)
	}
	// The paper reports ~11x; a work-proportional cost model reproduces
	// ~4x — the remainder is the real Dropbox client's implementation
	// inefficiency (see EXPERIMENTS.md). The ordering and a multi-x gap
	// must hold.
	if db.ClientTicks < 3*dc.ClientTicks {
		t.Errorf("word@0.4 CPU: dropbox %d vs deltacfs %d", db.ClientTicks, dc.ClientTicks)
	}
}

func TestFig1AndFig2(t *testing.T) {
	rs, err := Fig1(smokeScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 4 {
		t.Fatalf("Fig1 results = %d, want 4", len(rs))
	}
	// Dropbox burns more client CPU than Seafile on both workloads.
	for _, wl := range []string{"word", "wechat"} {
		var db, sf *Fig1Result
		for i := range rs {
			if rs[i].Workload != wl {
				continue
			}
			switch rs[i].System {
			case SysDropbox:
				db = &rs[i]
			case SysSeafile:
				sf = &rs[i]
			}
		}
		if db == nil || sf == nil {
			t.Fatalf("missing Fig1 results for %s", wl)
		}
		if db.Ticks <= sf.Ticks {
			t.Errorf("fig1 %s: dropbox %d ticks <= seafile %d", wl, db.Ticks, sf.Ticks)
		}
		// Seafile ships more bytes than Dropbox on both (large chunks).
		if sf.UploadMB <= db.UploadMB {
			t.Errorf("fig1 %s: seafile upload %.1f <= dropbox %.1f", wl, sf.UploadMB, db.UploadMB)
		}
	}
	var buf bytes.Buffer
	PrintFig1(&buf, rs)

	f2, err := Fig2(smokeScale)
	if err != nil {
		t.Fatal(err)
	}
	// Whole-file re-uploads make TUE enormous.
	if f2.TUE < 5 {
		t.Errorf("Fig2 TUE = %.1f, want >> 1", f2.TUE)
	}
	PrintFig2(&buf, f2)
	if buf.Len() == 0 {
		t.Fatal("empty report")
	}
}

func TestTable3Shapes(t *testing.T) {
	rs, err := Table3(300)
	if err != nil {
		t.Fatal(err)
	}
	get := func(p string, cfg FSConfig) float64 {
		for _, r := range rs {
			if r.Personality == p && r.Config == string(cfg) {
				return r.MBps
			}
		}
		t.Fatalf("missing %s/%s", p, cfg)
		return 0
	}

	// Fileserver: Native ~ FUSE > DeltaCFS > DeltaCFSc.
	n, f, d, dc := get("Fileserver", CfgNative), get("Fileserver", CfgFUSE),
		get("Fileserver", CfgDeltaCFS), get("Fileserver", CfgDeltaCFSc)
	if f > n {
		t.Errorf("fileserver FUSE %.1f > native %.1f", f, n)
	}
	if f < n*0.85 {
		t.Errorf("fileserver FUSE %.1f too far below native %.1f", f, n)
	}
	if !(d < f && dc < d) {
		t.Errorf("fileserver ordering: native %.1f fuse %.1f deltacfs %.1f deltacfsc %.1f",
			n, f, d, dc)
	}
	// Webserver: all four within a modest band (read-dominated).
	wn, wdc := get("Webserver", CfgNative), get("Webserver", CfgDeltaCFS)
	if wdc < wn*0.7 {
		t.Errorf("webserver DeltaCFS %.1f too far below native %.1f", wdc, wn)
	}
	// Varmail: fsync-bound, DeltaCFS within half of native.
	vn, vd := get("Varmail", CfgNative), get("Varmail", CfgDeltaCFS)
	if vd < vn*0.5 {
		t.Errorf("varmail DeltaCFS %.1f below half of native %.1f", vd, vn)
	}

	var buf bytes.Buffer
	PrintTable3(&buf, rs)
	if !strings.Contains(buf.String(), "Fileserver") {
		t.Fatal("Table III report malformed")
	}
}

func TestTable4(t *testing.T) {
	rs, err := Table4()
	if err != nil {
		t.Fatal(err)
	}
	want := map[System]ReliabilityResult{
		SysDropbox:  {Corrupted: "upload", Inconsistent: "upload/omit", Causal: "N"},
		SysSeafile:  {Corrupted: "upload", Inconsistent: "upload/omit", Causal: "N"},
		SysDeltaCFS: {Corrupted: "detect", Inconsistent: "detect", Causal: "Y"},
	}
	for _, r := range rs {
		w := want[r.System]
		if r.Corrupted != w.Corrupted || r.Inconsistent != w.Inconsistent || r.Causal != w.Causal {
			t.Errorf("%s: got (%s, %s, %s), want (%s, %s, %s)", r.System,
				r.Corrupted, r.Inconsistent, r.Causal,
				w.Corrupted, w.Inconsistent, w.Causal)
		}
	}
	var buf bytes.Buffer
	PrintTable4(&buf, rs)
	if !strings.Contains(buf.String(), "DeltaCFS") {
		t.Fatal("Table IV report malformed")
	}
}

func TestRunTraceUnknownSystem(t *testing.T) {
	tr := trace.Append(trace.PaperAppendConfig().Scaled(0.01))
	if _, err := RunTrace(System("bogus"), tr, metrics.PC); err == nil {
		t.Fatal("unknown system accepted")
	}
}

// TestMatrixParallelDeterministic checks that the worker-pool sweep renders
// the same tables as a serial sweep: the meters are deterministic, cells are
// independent, and slots are index-addressed, so fan-out must not change a
// single byte of output.
func TestMatrixParallelDeterministic(t *testing.T) {
	render := func(m *Matrix) string {
		var buf bytes.Buffer
		m.PrintTable2(&buf)
		m.PrintFig8(&buf)
		m.PrintFig9(&buf)
		return buf.String()
	}

	defer func(old int) { matrixWorkers = old }(matrixWorkers)

	matrixWorkers = 1
	serial, err := RunMatrix(0.02)
	if err != nil {
		t.Fatal(err)
	}
	matrixWorkers = 6
	parallel, err := RunMatrix(0.02)
	if err != nil {
		t.Fatal(err)
	}

	if s, p := render(serial), render(parallel); s != p {
		t.Errorf("parallel sweep output differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", s, p)
	}
}

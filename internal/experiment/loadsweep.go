package experiment

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"runtime/debug"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/loadgen"
	"repro/internal/wire"
)

// RunMeta pins a benchmark report to the machine and revision that produced
// it, so a committed BENCH_*.json trajectory stays comparable across
// revisions: a throughput change only means something when GOMAXPROCS and
// the commit hash say what actually ran.
type RunMeta struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	// Commit is the VCS revision baked into the binary ("unknown" when the
	// build carries no VCS stamp, e.g. `go test` binaries).
	Commit string `json:"commit"`
	Dirty  bool   `json:"dirty,omitempty"`
	// Codec is the wire codec the run's clients negotiated ("binary" or
	// "gob"). Throughput numbers are only comparable across reports that
	// agree here: the codec change alone moves every TCP rung.
	Codec string `json:"codec,omitempty"`
}

// NewRunMeta captures the current process's run metadata.
func NewRunMeta() *RunMeta {
	m := &RunMeta{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Commit:     "unknown",
	}
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, s := range info.Settings {
			switch s.Key {
			case "vcs.revision":
				m.Commit = s.Value
			case "vcs.modified":
				m.Dirty = s.Value == "true"
			}
		}
	}
	// `go run` and `go test` binaries carry no VCS stamp, which would let a
	// dirty tree masquerade as clean. Fall back to asking git directly; if
	// git is unavailable or this is not a checkout, stay conservative and
	// report dirty so an unattributable report is never published as clean.
	if m.Commit == "unknown" {
		if rev, err := exec.Command("git", "rev-parse", "HEAD").Output(); err == nil {
			m.Commit = strings.TrimSpace(string(rev))
		}
		if st, err := exec.Command("git", "status", "--porcelain").Output(); err == nil {
			m.Dirty = len(bytes.TrimSpace(st)) > 0
		} else {
			m.Dirty = true
		}
	}
	return m
}

// LoadResult is one rung of the real-TCP load sweep: the same client herd
// driven against the striped applied-log server and against the 1-stripe
// configuration that serializes applied-op commits the way the old global
// appliedMu did. Everything else — TCP, the bounded transport, sharded file
// state — is identical, so the speedup isolates the applied-log change.
type LoadResult struct {
	Clients int `json:"clients"`

	Striped *loadgen.Result `json:"striped"`
	Global  *loadgen.Result `json:"global"`

	// Speedup is striped over 1-stripe throughput.
	Speedup float64 `json:"speedup"`

	// Gob, when the sweep compares codecs, is the striped-server rung driven
	// by gob-codec clients — the same herd as Striped with only the wire
	// codec changed, so CodecSpeedup isolates the binary codec's effect.
	Gob *loadgen.Result `json:"gob,omitempty"`
	// CodecSpeedup is binary (Striped) over gob throughput.
	CodecSpeedup float64 `json:"codec_speedup,omitempty"`
}

// LoadSweepConfig parameterizes LoadSweep.
type LoadSweepConfig struct {
	// ClientCounts are the sweep rungs (e.g. 64, 512, 2048, 10000).
	ClientCounts []int
	// TotalOps targets this many pushes per rung, split evenly across
	// clients (min 2 per client), so every rung measures comparable work.
	TotalOps int
	// GroupSize is how many clients share each sync group.
	GroupSize int
	// Workers sizes the transport worker pool (0 = auto).
	Workers int
	// WorkerCmd re-invokes this program as a load worker subprocess; needed
	// for rungs whose descriptors cannot fit in one process.
	WorkerCmd []string
	// Repeat runs each configuration this many times (alternating striped
	// and 1-stripe) and keeps each configuration's best run, damping
	// scheduler and neighbor noise (default 2).
	Repeat int
	// Codec selects the clients' wire codec for the striped/global runs
	// ("" = auto, which negotiates binary).
	Codec wire.Codec
	// CompareCodecs additionally drives the striped server with gob-codec
	// clients each repeat, populating LoadResult.Gob and CodecSpeedup —
	// the gob-vs-binary dimension of the sweep.
	CompareCodecs bool
}

// LoadSweep measures real-TCP push throughput and latency for each client
// count, striped applied log versus the 1-stripe (global commit lock)
// baseline.
func LoadSweep(cfg LoadSweepConfig) ([]LoadResult, error) {
	if cfg.TotalOps <= 0 {
		cfg.TotalOps = 40000
	}
	if cfg.GroupSize <= 0 {
		cfg.GroupSize = 4
	}
	if cfg.Repeat <= 0 {
		cfg.Repeat = 2
	}
	var out []LoadResult
	for _, n := range cfg.ClientCounts {
		if n <= 0 {
			return nil, fmt.Errorf("loadsweep: invalid client count %d", n)
		}
		ops := cfg.TotalOps / n
		if ops < 2 {
			ops = 2
		}
		base := loadgen.Config{
			Clients:      n,
			GroupSize:    cfg.GroupSize,
			OpsPerClient: ops,
			Workers:      cfg.Workers,
			WorkerCmd:    cfg.WorkerCmd,
			Codec:        cfg.Codec,
		}
		row := LoadResult{Clients: n}

		// Interleave striped and 1-stripe runs — alternating which goes
		// first — and keep each side's best, so a noisy neighbor, a GC
		// pause, or any run-first/run-second asymmetry hits both sides
		// evenly instead of whichever configuration happened to be running.
		runStriped := func() error {
			res, err := loadgen.Run(base)
			if err != nil {
				return fmt.Errorf("loadsweep: %d clients (striped): %w", n, err)
			}
			if row.Striped == nil || res.OpsPerSec > row.Striped.OpsPerSec {
				row.Striped = res
			}
			return nil
		}
		runGlobal := func() error {
			global := base
			global.AppliedStripes = 1
			res, err := loadgen.Run(global)
			if err != nil {
				return fmt.Errorf("loadsweep: %d clients (1-stripe): %w", n, err)
			}
			if row.Global == nil || res.OpsPerSec > row.Global.OpsPerSec {
				row.Global = res
			}
			return nil
		}
		runGob := func() error {
			gob := base
			gob.Codec = wire.CodecGob
			res, err := loadgen.Run(gob)
			if err != nil {
				return fmt.Errorf("loadsweep: %d clients (gob): %w", n, err)
			}
			if row.Gob == nil || res.OpsPerSec > row.Gob.OpsPerSec {
				row.Gob = res
			}
			return nil
		}
		for rep := 0; rep < cfg.Repeat; rep++ {
			order := []func() error{runStriped, runGlobal}
			if cfg.CompareCodecs {
				order = append(order, runGob)
			}
			if rep%2 == 1 {
				order[0], order[len(order)-1] = order[len(order)-1], order[0]
			}
			for _, f := range order {
				if err := f(); err != nil {
					return nil, err
				}
			}
		}

		if row.Global.OpsPerSec > 0 {
			row.Speedup = row.Striped.OpsPerSec / row.Global.OpsPerSec
		}
		if row.Gob != nil && row.Gob.OpsPerSec > 0 {
			row.CodecSpeedup = row.Striped.OpsPerSec / row.Gob.OpsPerSec
		}
		out = append(out, row)
	}
	return out, nil
}

// CheckLoad returns an error when any rung failed to converge or saw client
// errors — the only failure conditions a load run enforces (throughput
// numbers are reported, never asserted).
func CheckLoad(rs []LoadResult) error {
	for _, r := range rs {
		for _, res := range []*loadgen.Result{r.Striped, r.Global, r.Gob} {
			if res == nil {
				continue
			}
			if res.Errors > 0 || !res.Converged {
				return fmt.Errorf("loadsweep: %d clients: errors=%d mismatches=%d duplicate_applies=%d converged=%v",
					r.Clients, res.Errors, res.Mismatches, res.DuplicateApplies, res.Converged)
			}
		}
	}
	return nil
}

// PrintLoad renders the load sweep as a table.
func PrintLoad(w io.Writer, rs []LoadResult) {
	fmt.Fprintln(w, "Real-TCP load sweep: striped applied log vs 1-stripe (global commit lock) baseline")
	fmt.Fprintln(w, "(wall-clock over loopback TCP; conns = peak concurrent connections, all polled unless noted)")
	tw := tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "clients\tconns\tgoroutines\tstriped ops/s\tp50 us\tp99 us\tthrottles\t1-stripe ops/s\tp99 us\tspeedup")
	for _, r := range rs {
		fmt.Fprintf(tw, "%d\t%d\t%d\t%.0f\t%.1f\t%.1f\t%d\t%.0f\t%.1f\t%.2fx\n",
			r.Clients, r.Striped.PeakConns, r.Striped.GoroutinesAtPeak,
			r.Striped.OpsPerSec, r.Striped.P50Micros, r.Striped.P99Micros, r.Striped.Throttles,
			r.Global.OpsPerSec, r.Global.P99Micros, r.Speedup)
	}
	tw.Flush()
	if len(rs) > 0 && rs[0].Gob != nil {
		fmt.Fprintln(w)
		fmt.Fprintf(w, "Wire codec comparison: %s clients vs gob clients, striped server\n",
			orCodec(rs[0].Striped.Codec))
		tw = tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "clients\tbinary ops/s\tp99 us\tgob ops/s\tp99 us\tspeedup")
		for _, r := range rs {
			if r.Gob == nil {
				continue
			}
			fmt.Fprintf(tw, "%d\t%.0f\t%.1f\t%.0f\t%.1f\t%.2fx\n",
				r.Clients, r.Striped.OpsPerSec, r.Striped.P99Micros,
				r.Gob.OpsPerSec, r.Gob.P99Micros, r.CodecSpeedup)
		}
		tw.Flush()
	}
}

func orCodec(c string) string {
	if c == "" {
		return "binary"
	}
	return c
}

// CommitWindowResult is one rung of the journal group-commit sweep: the
// same write-heavy herd with the push journal enabled, varying only the
// commit window. Window 0 fsyncs every push (full durability, fsync-bound);
// wider windows coalesce more pushes per fsync at the cost of a larger
// post-crash ack-loss window. The sweep is what picks the server's default.
type CommitWindowResult struct {
	WindowMicros int64           `json:"window_micros"`
	Result       *loadgen.Result `json:"result"`
}

// CommitWindowSweep measures journaled push throughput across commit
// windows with `clients` concurrent TCP clients.
func CommitWindowSweep(windows []time.Duration, clients, totalOps int, workerCmd []string) ([]CommitWindowResult, error) {
	if clients <= 0 {
		clients = 64
	}
	if totalOps <= 0 {
		totalOps = 6400
	}
	ops := totalOps / clients
	if ops < 2 {
		ops = 2
	}
	var out []CommitWindowResult
	for _, w := range windows {
		dir, err := os.MkdirTemp("", "loadsweep-journal-*")
		if err != nil {
			return nil, err
		}
		res, err := loadgen.Run(loadgen.Config{
			Clients:      clients,
			GroupSize:    1,
			OpsPerClient: ops,
			JournalDir:   dir,
			CommitWindow: w,
			WorkerCmd:    workerCmd,
		})
		os.RemoveAll(dir)
		if err != nil {
			return nil, fmt.Errorf("commit-window %v: %w", w, err)
		}
		if res.Errors > 0 || !res.Converged {
			return nil, fmt.Errorf("commit-window %v: errors=%d converged=%v", w, res.Errors, res.Converged)
		}
		out = append(out, CommitWindowResult{WindowMicros: w.Microseconds(), Result: res})
	}
	return out, nil
}

// PrintCommitWindows renders the journal commit-window sweep as a table.
func PrintCommitWindows(w io.Writer, rs []CommitWindowResult) {
	fmt.Fprintln(w, "Journal group-commit window sweep (write-heavy, journal on, fsyncs counted)")
	tw := tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "window\tops/s\tp50 us\tp99 us\tfsyncs\tcoalesced\tfsyncs/op")
	for _, r := range rs {
		win := time.Duration(r.WindowMicros) * time.Microsecond
		label := win.String()
		if win == 0 {
			label = "0 (per-push)"
		}
		perOp := float64(r.Result.Fsyncs) / float64(r.Result.Ops)
		fmt.Fprintf(tw, "%s\t%.0f\t%.1f\t%.1f\t%d\t%d\t%.3f\n",
			label, r.Result.OpsPerSec, r.Result.P50Micros, r.Result.P99Micros,
			r.Result.Fsyncs, r.Result.SyncCoalesced, perOp)
	}
	tw.Flush()
}

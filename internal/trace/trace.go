// Package trace defines the workload traces of the paper's evaluation
// (§IV-A) and a deterministic replayer.
//
// Four traces drive Table II, Fig 8 and Fig 9:
//
//   - append write: 40 appends of ~800 KB, 15 s apart, file grows to 32 MB;
//   - random write: 40 writes of 1010 bytes into a pre-existing 20 MB file;
//   - Word trace: 61 transactional saves (Fig 3's rename/create-write/
//     rename/delete pattern) growing a document from 12.1 MB to 16.7 MB;
//   - WeChat trace: 373 SQLite-style in-place update rounds (journal
//     create-write, small page writes, journal truncate) growing a chat
//     database from 131 MB to 137 MB.
//
// The paper collected the Word and WeChat traces from the real applications;
// those traces are not public, so the generators here synthesize op
// sequences with the documented shapes (op pattern, file sizes, update
// counts and sizes). A Scale parameter shrinks everything proportionally for
// quick runs; Scale=1 reproduces the paper's dimensions.
//
// Traces are streamed: Run re-generates ops on each call (deterministic
// seeds), so a 900 MB op stream never needs to be materialized. Op.Data
// buffers are only valid during the emit call, like a write(2) buffer —
// consumers must copy what they retain.
package trace

import (
	"fmt"
	"time"

	"repro/internal/clock"
	"repro/internal/vfs"
)

// Emit delivers one operation at a logical timestamp. Returning an error
// aborts the trace.
type Emit func(op vfs.Op, at time.Duration) error

// Trace is a replayable workload.
type Trace struct {
	// Name identifies the trace in reports ("append", "word", ...).
	Name string
	// Desc is a one-line description for harness output.
	Desc string
	// UpdateBytes is the logical size of the data update — the denominator
	// of TUE. For in-place workloads it is the bytes written to the durable
	// file (journal and other transient files excluded); for transactional
	// workloads it is the bytes that actually differ between consecutive
	// versions (edits plus insertions), not the full rewritten content.
	UpdateBytes int64
	// WriteBytes is the total payload of all write operations in the trace,
	// which is what a write-forwarding system (NFS) would ship.
	WriteBytes int64
	// Setup seeds the initial file state. It is applied outside any sync
	// engine — both the client's backing store and the cloud are assumed to
	// already hold this state when the measured run starts.
	Setup func(fs vfs.FS) error
	// Run streams the operation sequence.
	Run func(emit Emit) error
}

// Target is what Replay drives: a sync engine exposing its interception
// file system and a logical-time tick for background processing (upload
// delays, relation-table expiry).
type Target interface {
	FS() vfs.FS
	Tick(now time.Duration)
}

// DrainGrace is how far past the last operation Replay advances the clock so
// engines flush their queues (comfortably beyond the paper's 3 s upload
// delay and 2 s relation timeout).
const DrainGrace = 30 * time.Second

// Replay applies the trace's operation stream to tgt, advancing clk to each
// op's timestamp and ticking the target after every advance. After the last
// op it advances the clock by DrainGrace and ticks again so delayed uploads
// complete. Setup is NOT applied; the harness seeds state beforehand.
func Replay(tr *Trace, tgt Target, clk *clock.Clock) error {
	fs := tgt.FS()
	err := tr.Run(func(op vfs.Op, at time.Duration) error {
		clk.Set(at)
		tgt.Tick(clk.Now())
		if err := vfs.Apply(fs, op); err != nil {
			return fmt.Errorf("trace %s: %v: %w", tr.Name, op, err)
		}
		return nil
	})
	if err != nil {
		return err
	}
	clk.Advance(DrainGrace)
	tgt.Tick(clk.Now())
	return nil
}

// Collect materializes the trace ops (with timestamps) into memory. Only for
// tests and small traces; Op.Data is copied so the result is stable.
func Collect(tr *Trace) ([]vfs.Op, []time.Duration, error) {
	var ops []vfs.Op
	var ats []time.Duration
	err := tr.Run(func(op vfs.Op, at time.Duration) error {
		cp := op
		cp.Data = append([]byte(nil), op.Data...)
		ops = append(ops, cp)
		ats = append(ats, at)
		return nil
	})
	return ops, ats, err
}

package trace

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/vfs"
)

// PageSize is the SQLite page size used by the WeChat trace.
const PageSize = 4096

// journalHeader is the rollback-journal header size.
const journalHeader = 512

// WeChatConfig parameterizes the SQLite in-place-update trace. Each update
// round follows the Fig 3 WeChat pattern:
//
//	1-2 create-write f_journal, 3 write f, 4 truncate f_journal 0
//
// where the writes to f are a mix of small non-aligned row updates inside
// existing pages, a 100-byte header update, and whole appended pages (chat
// history growth).
type WeChatConfig struct {
	Path        string
	JournalPath string
	InitialSize int // initial database size (rounded up to whole pages)
	Rounds      int // update rounds ("the file is modified N times")
	SmallWrites int // sub-page in-place writes per round
	SmallMax    int // max bytes per small write (min is SmallMax/8)
	AppendPages int // whole pages appended per round
	Interval    time.Duration
	Seed        int64
}

// PaperWeChatConfig is the paper's WeChat trace: the chat-history SQLite
// file is modified 373 times and grows from 131 MB to 137 MB.
func PaperWeChatConfig() WeChatConfig {
	return WeChatConfig{
		Path:        "EnMicroMsg.db",
		JournalPath: "EnMicroMsg.db-journal",
		InitialSize: 131 << 20,
		Rounds:      373,
		SmallWrites: 4,
		SmallMax:    1500,
		AppendPages: 4, // ~16 KB growth per round -> ~6 MB total
		Interval:    2 * time.Second,
		Seed:        104,
	}
}

// Fig1WeChatConfig is the Fig 1 variant: a 130 MB database, 4 modifications
// composed of 85 writes, ~688 KB changed in total.
func Fig1WeChatConfig() WeChatConfig {
	return WeChatConfig{
		Path:        "EnMicroMsg.db",
		JournalPath: "EnMicroMsg.db-journal",
		InitialSize: 130 << 20,
		Rounds:      4,
		SmallWrites: 16,
		SmallMax:    1500,
		AppendPages: 40, // ~160 KB per round -> ~690 KB total with small writes
		Interval:    30 * time.Second,
		Seed:        105,
	}
}

// Scaled returns the config with sizes and counts scaled by s.
func (c WeChatConfig) Scaled(s float64) WeChatConfig {
	c.InitialSize = scaleInt(c.InitialSize, s)
	c.Rounds = scaleInt(c.Rounds, s)
	return c
}

// pages returns the initial page count (size rounded up to whole pages).
func (c WeChatConfig) pages() int {
	return (c.InitialSize + PageSize - 1) / PageSize
}

// smallWriteSize returns the (deterministic) size of small write w in round
// r, spread across [SmallMax/8, SmallMax]. Keeping sizes a pure function of
// (r, w) lets UpdateBytes be computed exactly up front.
func (c WeChatConfig) smallWriteSize(r, w int) int {
	lo := c.SmallMax / 8
	span := c.SmallMax - lo + 1
	return lo + (r*31+w*17)%span
}

// WeChat builds the SQLite in-place-update trace.
func WeChat(c WeChatConfig) *Trace {
	var update int64
	for r := 0; r < c.Rounds; r++ {
		for w := 0; w < c.SmallWrites; w++ {
			update += int64(c.smallWriteSize(r, w))
		}
		update += int64(c.AppendPages*PageSize + 100)
	}
	journalPerRound := int64(journalHeader + (c.SmallWrites+1)*PageSize) // +1: header page image
	writeBytes := update + int64(c.Rounds)*journalPerRound

	return &Trace{
		Name:        "wechat",
		Desc:        fmt.Sprintf("%d SQLite update rounds on %d MB db", c.Rounds, c.InitialSize>>20),
		UpdateBytes: update,
		WriteBytes:  writeBytes,
		Setup: func(fs vfs.FS) error {
			rng := rand.New(rand.NewSource(c.Seed))
			if err := fs.Create(c.Path); err != nil {
				return err
			}
			return writeAll(fs, c.Path, rng, c.pages()*PageSize)
		},
		Run: func(emit Emit) error {
			rng := rand.New(rand.NewSource(c.Seed + 1))
			nPages := c.pages()
			small := make([]byte, c.SmallMax)
			page := make([]byte, PageSize)
			header := make([]byte, 100)
			jimage := make([]byte, journalHeader+(c.SmallWrites+1)*PageSize)

			at := time.Duration(0)
			for r := 0; r < c.Rounds; r++ {
				at += c.Interval

				// 1-2: create and write the rollback journal (old images of
				// the pages about to change; content does not matter to the
				// sync engines, only its size and lifetime).
				fill(rng, jimage)
				ops := []vfs.Op{
					{Kind: vfs.OpCreate, Path: c.JournalPath},
					{Kind: vfs.OpWrite, Path: c.JournalPath, Off: 0, Data: jimage},
				}
				for _, op := range ops {
					if err := emit(op, at); err != nil {
						return err
					}
				}

				// 3: write f — header update, small in-place row updates,
				// appended pages.
				fill(rng, header)
				if err := emit(vfs.Op{Kind: vfs.OpWrite, Path: c.Path, Off: 24, Data: header}, at); err != nil {
					return err
				}
				for w := 0; w < c.SmallWrites; w++ {
					n := c.smallWriteSize(r, w)
					fill(rng, small[:n])
					pg := rng.Intn(nPages)
					inPage := rng.Intn(PageSize - n + 1)
					off := int64(pg)*PageSize + int64(inPage)
					if err := emit(vfs.Op{Kind: vfs.OpWrite, Path: c.Path, Off: off, Data: small[:n]}, at); err != nil {
						return err
					}
				}
				for p := 0; p < c.AppendPages; p++ {
					fill(rng, page)
					off := int64(nPages) * PageSize
					if err := emit(vfs.Op{Kind: vfs.OpWrite, Path: c.Path, Off: off, Data: page}, at); err != nil {
						return err
					}
					nPages++
				}

				// 4: commit — truncate the journal to zero.
				if err := emit(vfs.Op{Kind: vfs.OpTruncate, Path: c.JournalPath, Size: 0},
					at+time.Millisecond); err != nil {
					return err
				}
			}
			return nil
		},
	}
}

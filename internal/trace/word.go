package trace

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/vfs"
)

// WordConfig parameterizes the Microsoft-Word transactional-update trace.
// Each save follows the Fig 3 pattern:
//
//	1 rename f t0, 2-3 create-write t1, 4 rename t1 f, 5 delete t0
//
// and mutates the document by editing a few regions in place and inserting
// Growth bytes at a random offset — the insertion shifts all following
// content, which is what defeats Dropbox's 4 MB-aligned deduplication in the
// paper's analysis ("file content usually shifts for a certain offset").
type WordConfig struct {
	Path        string
	InitialSize int
	Saves       int
	Growth      int // bytes inserted per save
	Edits       int // in-place edited regions per save
	EditSize    int // bytes per edited region
	Interval    time.Duration
	Seed        int64
}

// PaperWordConfig is the paper's Word trace: 61 saves growing the document
// from 12.1 MB to 16.7 MB (~77 KB inserted per save).
func PaperWordConfig() WordConfig {
	return WordConfig{
		Path:        "report.docx",
		InitialSize: 12691456, // 12.1 MB
		Saves:       61,
		Growth:      77 << 10,
		Edits:       8,
		EditSize:    200,
		Interval:    10 * time.Second,
		Seed:        103,
	}
}

// Fig1WordConfig is the Fig 1 variant: a 12 MB document saved 23 times.
func Fig1WordConfig() WordConfig {
	c := PaperWordConfig()
	c.InitialSize = 12 << 20
	c.Saves = 23
	return c
}

// Scaled returns the config with sizes and counts scaled by s.
func (c WordConfig) Scaled(s float64) WordConfig {
	c.InitialSize = scaleInt(c.InitialSize, s)
	c.Saves = scaleInt(c.Saves, s)
	c.Growth = scaleInt(c.Growth, s)
	return c
}

// Word builds the transactional-update trace.
func Word(c WordConfig) *Trace {
	update := int64(c.Saves) * int64(c.Growth+c.Edits*c.EditSize)
	// Every save rewrites the whole (growing) document into the temp file.
	var writeBytes int64
	size := int64(c.InitialSize)
	for i := 0; i < c.Saves; i++ {
		size += int64(c.Growth)
		writeBytes += size
	}
	return &Trace{
		Name:        "word",
		Desc:        fmt.Sprintf("%d transactional saves, %d->%d MB", c.Saves, c.InitialSize>>20, int(size)>>20),
		UpdateBytes: update,
		WriteBytes:  writeBytes,
		Setup: func(fs vfs.FS) error {
			rng := rand.New(rand.NewSource(c.Seed))
			if err := fs.Create(c.Path); err != nil {
				return err
			}
			return writeAll(fs, c.Path, rng, c.InitialSize)
		},
		Run: func(emit Emit) error {
			rng := rand.New(rand.NewSource(c.Seed))
			content := make([]byte, c.InitialSize)
			fill(rng, content) // identical stream to Setup

			edits := rand.New(rand.NewSource(c.Seed + 1))
			at := time.Duration(0)
			for i := 0; i < c.Saves; i++ {
				at += c.Interval
				content = mutateDocument(content, c, edits)

				tmpOld := fmt.Sprintf("~WRL%04d.tmp", i)
				tmpNew := fmt.Sprintf("~WRD%04d.tmp", i)
				steps := []vfs.Op{
					{Kind: vfs.OpRename, Path: c.Path, Dst: tmpOld},
					{Kind: vfs.OpCreate, Path: tmpNew},
				}
				for _, op := range steps {
					if err := emit(op, at); err != nil {
						return err
					}
				}
				if err := emitFullWrite(emit, tmpNew, content, at); err != nil {
					return err
				}
				tail := []vfs.Op{
					{Kind: vfs.OpClose, Path: tmpNew},
					{Kind: vfs.OpRename, Path: tmpNew, Dst: c.Path},
					{Kind: vfs.OpUnlink, Path: tmpOld},
				}
				// The whole save completes quickly (well under the
				// relation-table timeout), so all steps share one
				// timestamp plus a small epsilon per step.
				for j, op := range tail {
					if err := emit(op, at+time.Duration(j+1)*time.Millisecond); err != nil {
						return err
					}
				}
			}
			return nil
		},
	}
}

// mutateDocument applies one save's worth of changes: Edits in-place region
// rewrites plus a Growth-byte insertion at a random offset.
func mutateDocument(content []byte, c WordConfig, rng *rand.Rand) []byte {
	for e := 0; e < c.Edits; e++ {
		if len(content) <= c.EditSize {
			break
		}
		off := rng.Intn(len(content) - c.EditSize)
		fill(rng, content[off:off+c.EditSize])
	}
	insert := make([]byte, c.Growth)
	fill(rng, insert)
	pos := rng.Intn(len(content) + 1)
	grown := make([]byte, 0, len(content)+len(insert))
	grown = append(grown, content[:pos]...)
	grown = append(grown, insert...)
	grown = append(grown, content[pos:]...)
	return grown
}

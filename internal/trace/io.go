package trace

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/vfs"
)

// fileHeader opens a serialized trace: identity, sizes, then a stream of
// records. Setup state is stored as explicit ops so a loaded trace is fully
// self-contained.
type fileHeader struct {
	Version     int
	Name        string
	Desc        string
	UpdateBytes int64
	WriteBytes  int64
}

// record is one serialized element: either a setup op (At < 0) or a timed
// trace op.
type record struct {
	Op vfs.Op
	At time.Duration
}

const fileVersion = 1

// setupMarker distinguishes setup records from trace records in the stream.
const setupMarker = time.Duration(-1)

// Save serializes the trace — including its setup state — to w. The trace's
// Setup and Run are executed once to produce the stream.
func Save(tr *Trace, w io.Writer) error {
	enc := gob.NewEncoder(w)
	if err := enc.Encode(fileHeader{
		Version:     fileVersion,
		Name:        tr.Name,
		Desc:        tr.Desc,
		UpdateBytes: tr.UpdateBytes,
		WriteBytes:  tr.WriteBytes,
	}); err != nil {
		return fmt.Errorf("trace: save header: %w", err)
	}
	if tr.Setup != nil {
		rec := &recordingFS{}
		if err := tr.Setup(rec); err != nil {
			return fmt.Errorf("trace: record setup: %w", err)
		}
		for _, op := range rec.ops {
			if err := enc.Encode(record{Op: op, At: setupMarker}); err != nil {
				return fmt.Errorf("trace: save setup op: %w", err)
			}
		}
	}
	return tr.Run(func(op vfs.Op, at time.Duration) error {
		if at < 0 {
			return errors.New("trace: negative timestamp")
		}
		return enc.Encode(record{Op: op, At: at})
	})
}

// Load reads a trace serialized by Save. The returned trace's Run streams
// records from the decoded payload held in memory.
func Load(r io.Reader) (*Trace, error) {
	dec := gob.NewDecoder(r)
	var hdr fileHeader
	if err := dec.Decode(&hdr); err != nil {
		return nil, fmt.Errorf("trace: load header: %w", err)
	}
	if hdr.Version != fileVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", hdr.Version)
	}
	var setup []vfs.Op
	var ops []record
	for {
		var rec record
		if err := dec.Decode(&rec); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, fmt.Errorf("trace: load record: %w", err)
		}
		if rec.At == setupMarker {
			setup = append(setup, rec.Op)
		} else {
			ops = append(ops, rec)
		}
	}
	return &Trace{
		Name:        hdr.Name,
		Desc:        hdr.Desc,
		UpdateBytes: hdr.UpdateBytes,
		WriteBytes:  hdr.WriteBytes,
		Setup: func(fs vfs.FS) error {
			for _, op := range setup {
				if err := vfs.Apply(fs, op); err != nil {
					return err
				}
			}
			return nil
		},
		Run: func(emit Emit) error {
			for _, rec := range ops {
				if err := emit(rec.Op, rec.At); err != nil {
					return err
				}
			}
			return nil
		},
	}, nil
}

// recordingFS captures the op sequence a Setup function issues, so Save can
// serialize setup state without duplicating generator logic.
type recordingFS struct {
	ops []vfs.Op
}

func (r *recordingFS) add(op vfs.Op) error {
	cp := op
	cp.Data = append([]byte(nil), op.Data...)
	r.ops = append(r.ops, cp)
	return nil
}

func (r *recordingFS) Create(p string) error { return r.add(vfs.Op{Kind: vfs.OpCreate, Path: p}) }
func (r *recordingFS) WriteAt(p string, off int64, data []byte) error {
	return r.add(vfs.Op{Kind: vfs.OpWrite, Path: p, Off: off, Data: data})
}
func (r *recordingFS) ReadAt(p string, off, n int64) ([]byte, error) {
	return nil, errors.New("trace: setup must not read")
}
func (r *recordingFS) ReadFile(p string) ([]byte, error) {
	return nil, errors.New("trace: setup must not read")
}
func (r *recordingFS) Truncate(p string, size int64) error {
	return r.add(vfs.Op{Kind: vfs.OpTruncate, Path: p, Size: size})
}
func (r *recordingFS) Rename(oldPath, newPath string) error {
	return r.add(vfs.Op{Kind: vfs.OpRename, Path: oldPath, Dst: newPath})
}
func (r *recordingFS) Link(oldPath, newPath string) error {
	return r.add(vfs.Op{Kind: vfs.OpLink, Path: oldPath, Dst: newPath})
}
func (r *recordingFS) Unlink(p string) error { return r.add(vfs.Op{Kind: vfs.OpUnlink, Path: p}) }
func (r *recordingFS) Mkdir(p string) error  { return r.add(vfs.Op{Kind: vfs.OpMkdir, Path: p}) }
func (r *recordingFS) Rmdir(p string) error  { return r.add(vfs.Op{Kind: vfs.OpRmdir, Path: p}) }
func (r *recordingFS) Close(p string) error  { return r.add(vfs.Op{Kind: vfs.OpClose, Path: p}) }
func (r *recordingFS) Fsync(p string) error  { return r.add(vfs.Op{Kind: vfs.OpFsync, Path: p}) }
func (r *recordingFS) Stat(p string) (vfs.FileInfo, error) {
	return vfs.FileInfo{}, errors.New("trace: setup must not stat")
}
func (r *recordingFS) List(prefix string) ([]string, error) {
	return nil, errors.New("trace: setup must not list")
}

var _ vfs.FS = (*recordingFS)(nil)

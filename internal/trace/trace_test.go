package trace

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/vfs"
)

// testScale keeps unit tests fast; generators are exercised at full scale by
// the benchmark harness.
const testScale = 0.02

// applyTrace runs Setup and Run directly against a fresh MemFS, returning
// the final fs.
func applyTrace(t *testing.T, tr *Trace) *vfs.MemFS {
	t.Helper()
	fs := vfs.NewMemFS()
	if tr.Setup != nil {
		if err := tr.Setup(fs); err != nil {
			t.Fatalf("Setup: %v", err)
		}
	}
	var last time.Duration
	err := tr.Run(func(op vfs.Op, at time.Duration) error {
		if at < last {
			t.Fatalf("timestamps not monotonic: %v after %v", at, last)
		}
		last = at
		return vfs.Apply(fs, op)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return fs
}

func TestAppendTrace(t *testing.T) {
	cfg := PaperAppendConfig().Scaled(testScale)
	tr := Append(cfg)
	fs := applyTrace(t, tr)
	st, err := fs.Stat(cfg.Path)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(cfg.Writes) * int64(cfg.WriteSize)
	if st.Size != want {
		t.Fatalf("final size = %d, want %d", st.Size, want)
	}
	if tr.UpdateBytes != want || tr.WriteBytes != want {
		t.Fatalf("UpdateBytes=%d WriteBytes=%d, want %d", tr.UpdateBytes, tr.WriteBytes, want)
	}
}

func TestAppendPaperDimensions(t *testing.T) {
	cfg := PaperAppendConfig()
	if cfg.Writes != 40 {
		t.Fatalf("writes = %d, want 40", cfg.Writes)
	}
	total := int64(cfg.Writes) * int64(cfg.WriteSize)
	if total != 32000<<10 { // 40 x 800 KB = 32000 KB
		t.Fatalf("total = %d, want 32 MB-ish", total)
	}
}

func TestRandomTrace(t *testing.T) {
	cfg := PaperRandomConfig().Scaled(testScale)
	tr := Random(cfg)
	fs := applyTrace(t, tr)
	st, err := fs.Stat(cfg.Path)
	if err != nil {
		t.Fatal(err)
	}
	// Random writes land inside the file; size should stay put.
	if st.Size != int64(cfg.FileSize) {
		t.Fatalf("final size = %d, want %d", st.Size, cfg.FileSize)
	}
	if tr.UpdateBytes != int64(cfg.Writes)*int64(cfg.WriteSize) {
		t.Fatalf("UpdateBytes = %d", tr.UpdateBytes)
	}
}

func TestRandomSetupDeterministic(t *testing.T) {
	cfg := PaperRandomConfig().Scaled(testScale)
	mk := func() []byte {
		fs := vfs.NewMemFS()
		if err := Random(cfg).Setup(fs); err != nil {
			t.Fatal(err)
		}
		data, _ := fs.ReadFile(cfg.Path)
		return data
	}
	if !bytes.Equal(mk(), mk()) {
		t.Fatal("Setup not deterministic")
	}
}

func TestWordTrace(t *testing.T) {
	cfg := PaperWordConfig().Scaled(testScale)
	tr := Word(cfg)
	fs := applyTrace(t, tr)

	st, err := fs.Stat(cfg.Path)
	if err != nil {
		t.Fatalf("document missing after saves: %v", err)
	}
	wantSize := int64(cfg.InitialSize) + int64(cfg.Saves)*int64(cfg.Growth)
	if st.Size != wantSize {
		t.Fatalf("final size = %d, want %d", st.Size, wantSize)
	}
	// Temp files must all be gone (renamed away or unlinked).
	files, _ := fs.List("")
	if len(files) != 1 || files[0] != cfg.Path {
		t.Fatalf("leftover files after saves: %v", files)
	}
	if tr.UpdateBytes != int64(cfg.Saves)*int64(cfg.Growth+cfg.Edits*cfg.EditSize) {
		t.Fatalf("UpdateBytes = %d", tr.UpdateBytes)
	}
	if tr.WriteBytes <= int64(cfg.Saves)*int64(cfg.InitialSize) {
		t.Fatalf("WriteBytes = %d, should exceed saves x initial size", tr.WriteBytes)
	}
}

func TestWordRunMatchesSetupInitialContent(t *testing.T) {
	// The Run stream's in-memory document must start from exactly the
	// Setup content (same seed), or deltas computed against the seeded
	// base would be garbage.
	cfg := PaperWordConfig().Scaled(testScale)
	cfg.Saves = 1
	cfg.Edits = 0
	cfg.Growth = 1 // nearly pure rewrite of the same content

	setupFS := vfs.NewMemFS()
	if err := Word(cfg).Setup(setupFS); err != nil {
		t.Fatal(err)
	}
	initial, _ := setupFS.ReadFile(cfg.Path)

	final := applyTrace(t, Word(cfg))
	got, _ := final.ReadFile(cfg.Path)
	if len(got) != len(initial)+1 {
		t.Fatalf("got %d bytes, want %d", len(got), len(initial)+1)
	}
	// With zero edits and a 1-byte insert, all but one byte must be the
	// initial content (split at the insertion point).
	diff := 0
	for i := 0; i < len(initial); i++ {
		if got[i] != initial[i] {
			diff = i
			break
		}
	}
	if !bytes.Equal(got[diff+1:], initial[diff:]) {
		t.Fatal("content after insertion point does not match initial content")
	}
}

func TestWeChatTrace(t *testing.T) {
	cfg := PaperWeChatConfig().Scaled(testScale)
	tr := WeChat(cfg)
	fs := applyTrace(t, tr)

	st, err := fs.Stat(cfg.Path)
	if err != nil {
		t.Fatal(err)
	}
	wantSize := int64(cfg.pages())*PageSize + int64(cfg.Rounds)*int64(cfg.AppendPages)*PageSize
	if st.Size != wantSize {
		t.Fatalf("db size = %d, want %d", st.Size, wantSize)
	}
	// Journal exists but is truncated to zero after the last commit.
	jst, err := fs.Stat(cfg.JournalPath)
	if err != nil {
		t.Fatal(err)
	}
	if jst.Size != 0 {
		t.Fatalf("journal size = %d after commit, want 0", jst.Size)
	}
	if tr.UpdateBytes <= 0 || tr.WriteBytes <= tr.UpdateBytes {
		t.Fatalf("UpdateBytes=%d WriteBytes=%d: journal bytes missing", tr.UpdateBytes, tr.WriteBytes)
	}
}

func TestWeChatUpdateBytesExact(t *testing.T) {
	cfg := PaperWeChatConfig().Scaled(testScale)
	tr := WeChat(cfg)
	var dbWrites int64
	err := tr.Run(func(op vfs.Op, at time.Duration) error {
		if op.Kind == vfs.OpWrite && op.Path == cfg.Path {
			dbWrites += int64(len(op.Data))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if dbWrites != tr.UpdateBytes {
		t.Fatalf("measured db writes %d != UpdateBytes %d", dbWrites, tr.UpdateBytes)
	}
}

func TestFig1Configs(t *testing.T) {
	w := Fig1WordConfig()
	if w.Saves != 23 || w.InitialSize != 12<<20 {
		t.Fatalf("Fig1 word config: %+v", w)
	}
	c := Fig1WeChatConfig()
	tr := WeChat(c)
	// Paper: ~688 KB changed in total across 85 writes.
	if tr.UpdateBytes < 600<<10 || tr.UpdateBytes > 800<<10 {
		t.Fatalf("Fig1 wechat UpdateBytes = %d, want ~688 KB", tr.UpdateBytes)
	}
}

func TestTraceRunsAreReplayable(t *testing.T) {
	// Two runs of the same trace must produce identical op streams.
	cfg := PaperWordConfig().Scaled(testScale)
	ops1, ats1, err := Collect(Word(cfg))
	if err != nil {
		t.Fatal(err)
	}
	ops2, ats2, err := Collect(Word(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if len(ops1) != len(ops2) {
		t.Fatalf("op counts differ: %d vs %d", len(ops1), len(ops2))
	}
	for i := range ops1 {
		if ops1[i].Kind != ops2[i].Kind || ops1[i].Path != ops2[i].Path ||
			ops1[i].Off != ops2[i].Off || !bytes.Equal(ops1[i].Data, ops2[i].Data) ||
			ats1[i] != ats2[i] {
			t.Fatalf("op %d differs between runs", i)
		}
	}
}

// tickRecorder is a minimal Target for Replay tests.
type tickRecorder struct {
	fs    vfs.FS
	ticks []time.Duration
}

func (r *tickRecorder) FS() vfs.FS             { return r.fs }
func (r *tickRecorder) Tick(now time.Duration) { r.ticks = append(r.ticks, now) }

func TestReplayAdvancesClockAndDrains(t *testing.T) {
	cfg := PaperAppendConfig().Scaled(testScale)
	tr := Append(cfg)
	tgt := &tickRecorder{fs: vfs.NewMemFS()}
	if err := tr.Setup(tgt.fs); err != nil {
		t.Fatal(err)
	}
	var clk clock.Clock
	if err := Replay(tr, tgt, &clk); err != nil {
		t.Fatal(err)
	}
	if len(tgt.ticks) == 0 {
		t.Fatal("no ticks delivered")
	}
	lastOpAt := time.Duration(cfg.Writes) * cfg.Interval
	if got := tgt.ticks[len(tgt.ticks)-1]; got != lastOpAt+DrainGrace {
		t.Fatalf("final tick at %v, want %v", got, lastOpAt+DrainGrace)
	}
	for i := 1; i < len(tgt.ticks); i++ {
		if tgt.ticks[i] < tgt.ticks[i-1] {
			t.Fatal("ticks not monotonic")
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	cfg := PaperWeChatConfig().Scaled(testScale)
	orig := WeChat(cfg)

	var buf bytes.Buffer
	if err := Save(orig, &buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if loaded.Name != orig.Name || loaded.UpdateBytes != orig.UpdateBytes ||
		loaded.WriteBytes != orig.WriteBytes {
		t.Fatalf("header mismatch: %+v", loaded)
	}

	// Applying the loaded trace must give the same final state as the
	// original.
	want := applyTrace(t, orig)
	got := applyTrace(t, loaded)
	wantData, _ := want.ReadFile(cfg.Path)
	gotData, _ := got.ReadFile(cfg.Path)
	if !bytes.Equal(wantData, gotData) {
		t.Fatal("loaded trace produced different final content")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a trace"))); err == nil {
		t.Fatal("Load accepted garbage")
	}
}

func TestScaledMinimums(t *testing.T) {
	c := PaperAppendConfig().Scaled(0.000001)
	if c.Writes < 1 || c.WriteSize < 1 {
		t.Fatalf("Scaled produced zero dimensions: %+v", c)
	}
}
